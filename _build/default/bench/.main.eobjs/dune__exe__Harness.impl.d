bench/harness.ml: Array Filename List Marshal Option Printf R3_core R3_mcf R3_net R3_sim R3_te R3_util Sys
