bench/experiments.ml: Array Float Harness Lazy List Option Printf R3_core R3_mcf R3_mplsff R3_net R3_sim R3_util
