bench/main.ml: Array Experiments Harness List Micro Printf R3_util String Sys
