bench/main.mli:
