bench/micro.ml: Analyze Array Bechamel Benchmark Harness Hashtbl Instance Lazy List Measure Printf R3_core R3_mcf R3_mplsff R3_net R3_util Staged String Test Time Toolkit
