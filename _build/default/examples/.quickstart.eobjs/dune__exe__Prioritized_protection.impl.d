examples/prioritized_protection.ml: Array Float Format List R3_core R3_net R3_sim R3_util
