examples/penalty_envelope_tradeoff.ml: Array Format List Printf R3_core R3_mcf R3_net R3_sim R3_util
