examples/quickstart.ml: Array Format Option R3_core R3_net
