examples/abilene_failover.ml: Array Format Int List Option R3_core R3_mplsff R3_net R3_sim R3_util
