examples/srlg_maintenance.mli:
