examples/quickstart.mli:
