examples/srlg_maintenance.ml: Format List R3_core R3_net R3_util
