examples/prioritized_protection.mli:
