(* Realistic failure structure (Section 3.5, formulation (18)): shared-risk
   link groups (fiber conduits taking several IP links down together) and
   maintenance link groups (operator-scheduled shutdowns, at most one at a
   time). Protecting the structured envelope is much cheaper than
   protecting the same number of arbitrary failures.

   Run with:  dune exec examples/srlg_maintenance.exe *)

module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Offline = R3_core.Offline
module S = R3_core.Structured

let () =
  (* A 10-PoP fixture keeps each structured LP under a few seconds. *)
  let g =
    R3_net.Topology.random ~seed:8 ~nodes:10 ~undirected_links:18
      ~capacities:[ (100.0, 1.0) ] ()
  in
  let rng = R3_util.Prng.create 9 in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (Offline.default_config ~f:2) with solve_method = Offline.Constraint_gen }
  in
  (* Risk model: fiber-sharing SRLGs and scheduled maintenance groups,
     keeping only groups whose loss does not partition the network (a
     partitioning group has no congestion-free protection at all). *)
  let keeps_connected grp =
    G.strongly_connected g ~failed:(G.fail_links g grp) ()
  in
  let srlgs =
    R3_net.Topology.synthetic_srlgs ~seed:3 g ~count:8 |> List.filter keeps_connected
  in
  let mlgs =
    R3_net.Topology.synthetic_mlgs ~seed:4 g ~count:6 |> List.filter keeps_connected
  in
  Format.printf "%d SRLGs and %d MLGs; protecting K=1 concurrent SRLG + 1 MLG@.@."
    (List.length srlgs) (List.length mlgs);
  let groups = { S.srlgs; mlgs; k = 1 } in
  match S.compute cfg g tm groups (Offline.Fixed base) with
  | Error msg -> Format.printf "structured compute failed: %s@." msg
  | Ok plan ->
    Format.printf "structured plan MLU over the (18) envelope: %.3f@." plan.Offline.mlu;
    Format.printf "independent audit of the same plan:         %.3f@.@."
      (S.audit_mlu plan groups);
    (* Apply one SRLG plus one MLG together - the protected event class. *)
    let scenario = List.hd srlgs @ List.hd mlgs in
    let st =
      R3_core.Reconfig.apply_failures (R3_core.Reconfig.of_plan plan) scenario
    in
    Format.printf "SRLG+MLG event (%d directed links down): MLU = %.3f, delivered = %.1f%%@."
      (List.length scenario) (R3_core.Reconfig.mlu st)
      (100.0 *. R3_core.Reconfig.delivered_fraction st);
    (* Contrast: covering the same |links| as arbitrary failures needs a
       much larger envelope. *)
    let worst_links = List.length scenario in
    let arb_cfg = { cfg with Offline.f = worst_links } in
    (match Offline.compute arb_cfg g tm (Offline.Fixed base) with
    | Ok arb ->
      Format.printf
        "@.for comparison, protecting %d ARBITRARY directed failures needs MLU %.3f@."
        worst_links arb.Offline.mlu
    | Error m -> Format.printf "arbitrary-failure plan failed: %s@." m)
