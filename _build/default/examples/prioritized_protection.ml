(* Prioritized resilient routing (Section 3.5): three traffic classes with
   different SLAs share one base routing and one protection routing, but
   get different failure budgets - the paper's TPRT / TPP / IP example.

   Run with:  dune exec examples/prioritized_protection.exe *)

module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Offline = R3_core.Offline
module P = R3_core.Priority

let () =
  (* A small fixture keeps the three-class LP interactive. *)
  let g =
    R3_net.Topology.random ~seed:8 ~nodes:8 ~undirected_links:13
      ~capacities:[ (100.0, 1.0) ] ()
  in
  let rng = R3_util.Prng.create 5 in
  let total = Traffic.gravity rng g ~load_factor:0.3 () in
  (* TPRT (real-time) ~15%, TPP (private transport) ~25%, IP the rest. *)
  let tprt, tpp, ip = Traffic.split3 rng total ~p1:0.15 ~p2:0.25 in
  let d1 = Traffic.add (Traffic.add tprt tpp) ip in
  let d2 = Traffic.add tprt tpp in
  let d3 = tprt in
  let pairs, _ = Traffic.commodities d1 in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let srlgs =
    Array.to_list (R3_sim.Scenarios.physical_links g)
    |> List.map (fun e ->
           match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])
  in
  let cfg =
    { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
  in
  let classes =
    [
      { P.demand = d1; f = 1 };  (* everything survives 1 physical failure *)
      { P.demand = d2; f = 2 };  (* TPRT+TPP survive 2 *)
      { P.demand = d3; f = 3 };  (* TPRT survives 3 *)
    ]
  in
  match P.compute cfg g ~srlgs ~classes (Offline.Fixed base) with
  | Error msg -> Format.printf "prioritized compute failed: %s@." msg
  | Ok { P.plan; class_mlus } ->
    Format.printf "shared plan found; per-class worst-case MLU over d_i + X_{f_i}:@.";
    List.iteri
      (fun i name ->
        Format.printf "  %-22s F=%d  MLU = %.3f%s@." name
          (List.nth classes i).P.f class_mlus.(i)
          (if class_mlus.(i) <= 1.0 then "  (congestion-free guaranteed)" else ""))
      [ "all traffic (IP SLA)"; "TPP and above"; "TPRT only" ];
    (* Sanity: the audit is recomputed here from the plan's raw routing. *)
    let audit = P.audit_class_mlus ~srlgs ~classes plan in
    Array.iteri
      (fun i v -> assert (Float.abs (v -. class_mlus.(i)) < 1e-9))
      audit;
    Format.printf "@.(the audit recomputes the same values from the raw routing: ok)@."
