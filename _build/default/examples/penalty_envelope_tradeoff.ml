(* The penalty-envelope trade-off (Section 3.5, Figure 9): optimizing
   exclusively for failures can hurt the no-failure MLU; bounding it by
   beta * optimal recovers normal-case performance at a small cost in
   failure-case performance. This example sweeps beta.

   Run with:  dune exec examples/penalty_envelope_tradeoff.exe *)

module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Routing = R3_net.Routing
module Offline = R3_core.Offline

let () =
  (* A mid-size fixture keeps each joint LP under a few seconds. *)
  let g =
    R3_net.Topology.random ~seed:5 ~nodes:8 ~undirected_links:14
      ~capacities:[ (100.0, 1.0) ] ()
  in
  let rng = R3_util.Prng.create 12 in
  let tm = Traffic.gravity rng g ~load_factor:0.35 () in
  let pairs, demands = Traffic.commodities tm in
  (* Optimal no-failure MLU (the envelope's reference point). *)
  let opt =
    (R3_mcf.Concurrent_flow.min_mlu g ~epsilon:0.03 ~pairs ~demands ())
      .R3_mcf.Concurrent_flow.mlu
  in
  Format.printf "optimal no-failure MLU: %.3f@.@." opt;
  Format.printf "%-10s %14s %18s@." "beta" "normal MLU" "MLU over d + X_1";
  let groups =
    {
      R3_core.Structured.srlgs =
        Array.to_list (R3_sim.Scenarios.physical_links g)
        |> List.map (fun e ->
               match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ]);
      mlgs = [];
      k = 1;
    }
  in
  List.iter
    (fun beta ->
      let cfg =
        {
          (Offline.default_config ~f:1) with
          solve_method = Offline.Constraint_gen;
          envelope = (match beta with Some b -> Some (b, opt) | None -> None);
        }
      in
      match R3_core.Structured.compute cfg g tm groups Offline.Joint with
      | Error m ->
        Format.printf "%-10s failed: %s@."
          (match beta with Some b -> Printf.sprintf "%.2f" b | None -> "none")
          m
      | Ok plan ->
        let al_demands = Array.map (fun (a, b) -> tm.(a).(b)) plan.Offline.pairs in
        let normal =
          Routing.mlu g ~loads:(Routing.loads g ~demands:al_demands plan.Offline.base)
        in
        Format.printf "%-10s %14.3f %18.3f@."
          (match beta with Some b -> Printf.sprintf "%.2f" b | None -> "none")
          normal plan.Offline.mlu)
    [ None; Some 1.3; Some 1.1; Some 1.02 ];
  Format.printf
    "@.A tight envelope pins the normal-case MLU near optimal; loosening it \
     buys head-room for failures.@."
