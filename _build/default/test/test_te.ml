(* Tests for the traffic-engineering layer: Fortz-Thorup-style weight
   search and the piecewise-linear cost. *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Igp = R3_te.Igp_opt

let test_link_cost_convex_increasing () =
  let cap = 100.0 in
  let prev = ref (-1.0) in
  let prev_slope = ref 0.0 in
  for i = 0 to 24 do
    let load = float_of_int i *. 6.0 in
    let c = Igp.link_cost ~load ~capacity:cap in
    if c < !prev -. 1e-9 then Alcotest.failf "cost decreased at load %g" load;
    let slope = c -. !prev in
    if i > 1 && slope < !prev_slope -. 1e-6 then
      Alcotest.failf "cost not convex at load %g" load;
    prev := c;
    prev_slope := slope
  done

let test_optimize_improves () =
  let g = Topology.usisp_like () in
  let rng = R3_util.Prng.create 71 in
  let tm = Traffic.gravity rng g ~load_factor:0.5 () in
  let initial = R3_net.Ospf.inv_cap_weights g in
  let cost0 = Igp.routing_cost g ~weights:initial tm in
  let config = { Igp.default_config with Igp.iterations = 250; seed = 5 } in
  let weights = Igp.optimize ~config g [ tm ] in
  let cost1 = Igp.routing_cost g ~weights tm in
  Alcotest.(check bool)
    (Printf.sprintf "cost improved or equal (%.1f -> %.1f)" cost0 cost1)
    true
    (cost1 <= cost0 +. 1e-6)

let test_optimize_mlu_objective () =
  let g = Topology.usisp_like () in
  let rng = R3_util.Prng.create 72 in
  let tm = Traffic.gravity rng g ~load_factor:0.5 () in
  let pairs, demands = Traffic.commodities tm in
  let mlu_of weights =
    let r = R3_net.Ospf.routing g ~weights ~pairs () in
    R3_net.Routing.mlu g ~loads:(R3_net.Routing.loads g ~demands r)
  in
  let config =
    { Igp.default_config with Igp.iterations = 250; objective = Igp.Mlu; seed = 6 }
  in
  let weights = Igp.optimize ~config g [ tm ] in
  Alcotest.(check bool) "opt mlu <= invcap mlu" true
    (mlu_of weights <= mlu_of (R3_net.Ospf.inv_cap_weights g) +. 1e-9)

let test_weights_positive_symmetric () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 73 in
  let tm = Traffic.gravity rng g ~load_factor:0.4 () in
  let weights = Igp.optimize ~config:{ Igp.default_config with Igp.iterations = 100 } g [ tm ] in
  Array.iteri
    (fun e w ->
      if w < 1.0 -. 1e-9 then Alcotest.failf "weight %g below 1 on link %d" w e;
      match G.reverse_link g e with
      | Some r ->
        if Float.abs (weights.(r) -. w) > 1e-9 then
          Alcotest.failf "asymmetric weights on %d/%d" e r
      | None -> ())
    weights

let suite =
  [
    Alcotest.test_case "link cost convex increasing" `Quick test_link_cost_convex_increasing;
    Alcotest.test_case "local search improves cost" `Quick test_optimize_improves;
    Alcotest.test_case "MLU objective" `Quick test_optimize_mlu_objective;
    Alcotest.test_case "weights positive and symmetric" `Quick test_weights_positive_symmetric;
  ]
