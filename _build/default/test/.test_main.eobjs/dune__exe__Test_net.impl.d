test/test_net.ml: Alcotest Array Float Hashtbl Int List Option Printf QCheck QCheck_alcotest R3_core R3_net R3_util
