test/test_te.ml: Alcotest Array Float Printf R3_net R3_te R3_util
