test/test_mplsff.ml: Alcotest Array Float Hashtbl List Option Printf R3_core R3_mplsff R3_net R3_util
