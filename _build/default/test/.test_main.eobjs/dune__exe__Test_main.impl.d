test/test_main.ml: Alcotest Test_baselines Test_core Test_extensions Test_lp Test_mcf Test_mplsff Test_net Test_sim Test_te Test_util
