test/test_mcf.ml: Alcotest Array Float Option Printf QCheck QCheck_alcotest R3_mcf R3_net R3_util
