test/test_lp.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest R3_lp R3_util
