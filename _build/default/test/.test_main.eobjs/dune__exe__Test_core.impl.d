test/test_core.ml: Alcotest Array Float Int List Option Printf QCheck QCheck_alcotest R3_core R3_net R3_util
