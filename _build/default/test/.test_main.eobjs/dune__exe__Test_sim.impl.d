test/test_sim.ml: Alcotest Array Int List Option Printf R3_core R3_net R3_sim R3_util
