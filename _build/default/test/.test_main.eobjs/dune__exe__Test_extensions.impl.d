test/test_extensions.ml: Alcotest Array Float Int List Printf QCheck QCheck_alcotest R3_core R3_net R3_sim R3_util String
