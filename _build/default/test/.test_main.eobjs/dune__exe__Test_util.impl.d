test/test_util.ml: Alcotest Array Float Gen Int List QCheck QCheck_alcotest R3_util
