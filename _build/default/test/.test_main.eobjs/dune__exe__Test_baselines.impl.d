test/test_baselines.ml: Alcotest Array Float Option Printf QCheck QCheck_alcotest R3_baselines R3_net R3_sim R3_util
