(* Tests for the approximate min-MLU solver against the exact LP. *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Cf = R3_mcf.Concurrent_flow

let commodities_of g ~seed ~load =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:load () in
  Traffic.commodities tm

let test_exact_triangle () =
  (* Single commodity a->b demand 15 on a capacity-10 full mesh: the direct
     link takes 10 max; optimal splits 10 direct + 5 via c giving MLU
     ... min-MLU solution: x direct, (15-x)/ via c; utilizations x/10 and
     (15-x)/10; balanced at x=7.5 -> MLU 0.75. *)
  let g = Topology.triangle () in
  let pairs = [| (0, 1) |] and demands = [| 15.0 |] in
  match Cf.min_mlu_exact g ~pairs ~demands () with
  | Error m -> Alcotest.fail m
  | Ok (mlu, routing) ->
    Alcotest.(check (float 1e-5)) "exact mlu" 0.75 mlu;
    (match R3_net.Routing.validate g routing with
    | Ok () -> ()
    | Error m -> Alcotest.fail m)

let test_approx_close_to_exact_abilene () =
  let g = Topology.abilene () in
  let pairs, demands = commodities_of g ~seed:5 ~load:0.5 in
  let exact =
    match Cf.min_mlu_exact g ~pairs ~demands () with
    | Ok (m, _) -> m
    | Error e -> Alcotest.fail e
  in
  let approx = Cf.min_mlu g ~epsilon:0.05 ~pairs ~demands () in
  (* Upper bound by construction, and within ~2 epsilon of optimal. *)
  Alcotest.(check bool)
    (Printf.sprintf "approx %.4f >= exact %.4f" approx.Cf.mlu exact)
    true
    (approx.Cf.mlu >= exact -. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "approx %.4f within 15%% of exact %.4f" approx.Cf.mlu exact)
    true
    (approx.Cf.mlu <= exact *. 1.15)

let test_approx_under_failure () =
  let g = Topology.abilene () in
  let pairs, demands = commodities_of g ~seed:6 ~load:0.4 in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "Denver") (id "KansasCity")) in
  let failed = G.fail_bidir g [ e ] in
  let exact =
    match Cf.min_mlu_exact g ~failed ~pairs ~demands () with
    | Ok (m, _) -> m
    | Error e -> Alcotest.fail e
  in
  let approx = Cf.min_mlu g ~failed ~epsilon:0.05 ~pairs ~demands () in
  Alcotest.(check bool)
    (Printf.sprintf "failure: approx %.4f vs exact %.4f" approx.Cf.mlu exact)
    true
    (approx.Cf.mlu >= exact -. 1e-6 && approx.Cf.mlu <= exact *. 1.15)

let test_partition_drops_lost_demand () =
  let g = Topology.abilene () in
  let id n = G.node_id g n in
  (* Isolate Seattle. *)
  let e1 = Option.get (G.find_link g (id "Seattle") (id "Sunnyvale")) in
  let e2 = Option.get (G.find_link g (id "Seattle") (id "Denver")) in
  let failed = G.fail_bidir g [ e1; e2 ] in
  let pairs = [| (id "Seattle", id "NewYork"); (id "Denver", id "Houston") |] in
  let demands = [| 50.0; 10.0 |] in
  let r = Cf.min_mlu g ~failed ~pairs ~demands () in
  (* Only the Denver->Houston demand survives; it fits easily. *)
  Alcotest.(check bool) "positive" true (r.Cf.mlu > 0.0);
  Alcotest.(check bool) "small (lost demand dropped)" true (r.Cf.mlu < 0.5)

let test_zero_demand () =
  let g = Topology.triangle () in
  let r = Cf.min_mlu g ~pairs:[| (0, 1) |] ~demands:[| 0.0 |] () in
  Alcotest.(check (float 0.0)) "zero" 0.0 r.Cf.mlu

(* Scaling property: min-MLU is linear in demand. *)
let scaling_prop =
  QCheck.Test.make ~count:20 ~name:"min-MLU scales linearly with demand"
    QCheck.(pair (int_bound 1_000) (float_range 0.5 3.0))
    (fun (seed, alpha) ->
      let g = Topology.square () in
      let pairs, demands = commodities_of g ~seed ~load:0.3 in
      match
        ( Cf.min_mlu_exact g ~pairs ~demands (),
          Cf.min_mlu_exact g ~pairs
            ~demands:(Array.map (fun d -> d *. alpha) demands)
            () )
      with
      | Ok (m1, _), Ok (m2, _) -> Float.abs ((m1 *. alpha) -. m2) <= 1e-5 *. (1.0 +. m2)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "exact LP on triangle" `Quick test_exact_triangle;
    Alcotest.test_case "approx ~ exact (abilene)" `Slow test_approx_close_to_exact_abilene;
    Alcotest.test_case "approx ~ exact under failure" `Slow test_approx_under_failure;
    Alcotest.test_case "partition drops lost demand" `Quick test_partition_drops_lost_demand;
    Alcotest.test_case "zero demand" `Quick test_zero_demand;
    QCheck_alcotest.to_alcotest scaling_prop;
  ]
