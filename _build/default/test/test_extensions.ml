(* Tests for the Section 3.5 extensions: prioritized classes (19) and
   structured SRLG/MLG failures (18). *)

module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology
module Offline = R3_core.Offline
module Priority = R3_core.Priority
module Structured = R3_core.Structured
module Vd = R3_core.Virtual_demand

let cg_cfg f =
  { (Offline.default_config ~f) with solve_method = Offline.Constraint_gen }

let bidir_groups g =
  Array.to_list (R3_sim.Scenarios.physical_links g)
  |> List.map (fun e ->
         match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])

(* ---- structured oracle ---- *)

let test_structured_oracle_vs_knapsack () =
  (* With one singleton SRLG per link and k = f, (18) degenerates to X_f:
     the structured oracle must equal the knapsack closed form. *)
  let m = 10 in
  let rng = R3_util.Prng.create 3 in
  let weights = Array.init m (fun _ -> R3_util.Prng.float rng 5.0) in
  let groups =
    { Structured.srlgs = List.init m (fun l -> [ l ]); mlgs = []; k = 3 }
  in
  let v_struct, y = Structured.worst_structured_load groups weights in
  let v_knap = Vd.worst_virtual_load ~f:3 weights in
  Alcotest.(check (float 1e-6)) "oracle = knapsack" v_knap v_struct;
  (* intensities recompute the value *)
  let v_y = Array.fold_left ( +. ) 0.0 (Array.mapi (fun l yl -> yl *. weights.(l)) y) in
  Alcotest.(check (float 1e-6)) "y recomputes value" v_struct v_y

let test_structured_oracle_disjoint_pairs () =
  (* Pairs {0,1} {2,3} {4,5}, k=2: best two pair-sums. Exercises the greedy
     fast path; the LP path is checked against it via an overlapping dummy
     MLG that changes nothing. *)
  let weights = [| 5.0; 1.0; 2.0; 2.5; 3.0; 0.5 |] in
  let srlgs = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let fast, _ = Structured.worst_structured_load { Structured.srlgs; mlgs = []; k = 2 } weights in
  Alcotest.(check (float 1e-6)) "greedy best two pairs" 10.5 fast;
  (* LP path: add an MLG that is worthless, forcing the general solver. *)
  let lp_val, _ =
    Structured.worst_structured_load
      { Structured.srlgs; mlgs = [ [ 0 ] ]; k = 2 }
      weights
  in
  (* The MLG adds the option of taking link 0 alone (value 5) on top of two
     SRLGs: best = {0,1} + {4,5} + MLG{0} but y_0 caps at 1, so the MLG
     should add nothing beyond 9.5 here... except it can enable a third
     group: SRLGs {0,1},{4,5} plus MLG covering 0 is redundant; but SRLGs
     {2,3},{4,5} plus MLG {0} = 2+2.5+3+0.5+5 = 13? No: k=2 limits SRLGs
     to two, MLG is separate, so {0,1}+{4,5} (9.5) vs {2,3}+{4,5}+MLG{0}
     = 8 + 5 = 13 -> 13 wins. *)
  Alcotest.(check (float 1e-5)) "LP path uses the MLG" 13.0 lp_val

let test_structured_mlg_budget () =
  (* Only MLGs: at most ONE may be down. *)
  let weights = [| 4.0; 3.0; 2.0 |] in
  let groups = { Structured.srlgs = []; mlgs = [ [ 0 ]; [ 1 ]; [ 2 ] ]; k = 5 } in
  let v, _ = Structured.worst_structured_load groups weights in
  Alcotest.(check (float 1e-6)) "single MLG" 4.0 v

let test_structured_uncovered_links_carry_nothing () =
  let weights = [| 10.0; 10.0 |] in
  let groups = { Structured.srlgs = [ [ 0 ] ]; mlgs = []; k = 2 } in
  let v, y = Structured.worst_structured_load groups weights in
  Alcotest.(check (float 1e-6)) "only covered link counts" 10.0 v;
  Alcotest.(check (float 1e-6)) "uncovered intensity 0" 0.0 y.(1)

let test_structured_compute_and_audit () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 17 in
  let tm = Traffic.gravity rng g ~load_factor:0.2 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let groups = { Structured.srlgs = bidir_groups g; mlgs = []; k = 1 } in
  match Structured.compute (cg_cfg 1) g tm groups (Offline.Fixed base) with
  | Error m -> Alcotest.fail m
  | Ok plan ->
    (* The plan's MLU matches the independent audit. *)
    let audited = Structured.audit_mlu plan groups in
    Alcotest.(check bool)
      (Printf.sprintf "audit %.4f ~ lp %.4f" audited plan.Offline.mlu)
      true
      (Float.abs (audited -. plan.Offline.mlu) <= 1e-4 *. (1.0 +. plan.Offline.mlu));
    (* Congestion-free for every single physical failure when MLU <= 1. *)
    if plan.Offline.mlu <= 1.0 then
      List.iter
        (fun grp ->
          let u = R3_core.Verify.scenario_mlu plan grp in
          if u > 1.0 +. 1e-5 then
            Alcotest.failf "physical failure of [%s] gives MLU %.4f"
              (String.concat ";" (List.map string_of_int grp))
              u)
        groups.Structured.srlgs

let test_structured_cheaper_than_arbitrary () =
  (* Protecting one physical failure must not cost more than protecting two
     arbitrary directed failures (the envelope is a subset). *)
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 19 in
  let tm = Traffic.gravity rng g ~load_factor:0.2 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let groups = { Structured.srlgs = bidir_groups g; mlgs = []; k = 1 } in
  let structured =
    match Structured.compute (cg_cfg 1) g tm groups (Offline.Fixed base) with
    | Ok p -> p.Offline.mlu
    | Error m -> Alcotest.fail m
  in
  let arbitrary =
    match Offline.compute (cg_cfg 2) g tm (Offline.Fixed base) with
    | Ok p -> p.Offline.mlu
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool)
    (Printf.sprintf "structured %.3f <= arbitrary %.3f" structured arbitrary)
    true
    (structured <= arbitrary +. 1e-5)

(* ---- prioritized classes ---- *)

let priority_fixture () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 23 in
  let total = Traffic.gravity rng g ~load_factor:0.25 () in
  let t1, t2, t3 = Traffic.split3 rng total ~p1:0.2 ~p2:0.3 in
  let d1 = Traffic.add (Traffic.add t1 t2) t3 in
  let d2 = Traffic.add t1 t2 in
  let d3 = t1 in
  let pairs, _ = Traffic.commodities d1 in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  (g, d1, d2, d3, base)

let test_priority_class_ordering () =
  let g, d1, d2, d3, base = priority_fixture () in
  let srlgs = bidir_groups g in
  let classes =
    [
      { Priority.demand = d1; f = 1 };
      { Priority.demand = d2; f = 2 };
      { Priority.demand = d3; f = 3 };
    ]
  in
  match Priority.compute (cg_cfg 1) g ~srlgs ~classes (Offline.Fixed base) with
  | Error m -> Alcotest.fail m
  | Ok { Priority.plan; class_mlus } ->
    Alcotest.(check int) "three class MLUs" 3 (Array.length class_mlus);
    (* The LP objective is the max of the class MLUs. *)
    let max_mlu = Array.fold_left Float.max 0.0 class_mlus in
    Alcotest.(check bool)
      (Printf.sprintf "plan mlu %.4f ~ max class mlu %.4f" plan.Offline.mlu max_mlu)
      true
      (Float.abs (plan.Offline.mlu -. max_mlu) <= 1e-4 *. (1.0 +. max_mlu));
    (* Audit is self-consistent. *)
    let audit = Priority.audit_class_mlus ~srlgs ~classes plan in
    Array.iteri
      (fun i v ->
        if Float.abs (v -. class_mlus.(i)) > 1e-9 then
          Alcotest.failf "audit mismatch for class %d" i)
      audit

let test_priority_beats_general_for_top_class () =
  (* The prioritized plan's top class (small demand, big budget) must have
     worst-case MLU no larger than what the general single-budget plan
     gives that same class under the same budget. *)
  let g, d1, d2, d3, base = priority_fixture () in
  let srlgs = bidir_groups g in
  let classes =
    [
      { Priority.demand = d1; f = 1 };
      { Priority.demand = d2; f = 2 };
      { Priority.demand = d3; f = 3 };
    ]
  in
  let prio =
    match Priority.compute (cg_cfg 1) g ~srlgs ~classes (Offline.Fixed base) with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let general =
    match
      Structured.compute (cg_cfg 1) g d1
        { Structured.srlgs; mlgs = []; k = 1 }
        (Offline.Fixed base)
    with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let top_class = [ { Priority.demand = d3; f = 3 } ] in
  let prio_top = (Priority.audit_class_mlus ~srlgs ~classes:top_class prio.Priority.plan).(0) in
  let gen_top = (Priority.audit_class_mlus ~srlgs ~classes:top_class general).(0) in
  Alcotest.(check bool)
    (Printf.sprintf "prioritized top class %.4f <= general %.4f" prio_top gen_top)
    true
    (prio_top <= gen_top +. 1e-6)

let test_priority_reduces_to_offline () =
  (* One class = plain offline computation; optima must agree. *)
  let g, d1, _, _, base = priority_fixture () in
  let classes = [ { Priority.demand = d1; f = 1 } ] in
  let prio =
    match Priority.compute (cg_cfg 1) g ~classes (Offline.Fixed base) with
    | Ok p -> p.Priority.plan.Offline.mlu
    | Error m -> Alcotest.fail m
  in
  let plain =
    match Offline.compute (cg_cfg 1) g d1 (Offline.Fixed base) with
    | Ok p -> p.Offline.mlu
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check (float 1e-4)) "single class = offline" plain prio

(* Structured oracle as a property: the LP value always dominates any
   feasible integral selection of groups. *)
let structured_dominance_prop =
  QCheck.Test.make ~count:60 ~name:"structured oracle dominates integral picks"
    QCheck.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, k) ->
      let rng = R3_util.Prng.create seed in
      let m = 8 in
      let weights = Array.init m (fun _ -> R3_util.Prng.float rng 4.0) in
      let ngroups = 2 + R3_util.Prng.int rng 3 in
      let srlgs =
        List.init ngroups (fun _ ->
            let size = 1 + R3_util.Prng.int rng 3 in
            List.init size (fun _ -> R3_util.Prng.int rng m)
            |> List.sort_uniq Int.compare)
      in
      let groups = { Structured.srlgs; mlgs = []; k } in
      let lp_val, _ = Structured.worst_structured_load groups weights in
      (* any k groups chosen integrally *)
      let rec choose acc rest n =
        if n = 0 then [ acc ]
        else
          match rest with
          | [] -> [ acc ]
          | g :: tl -> choose (g @ acc) tl (n - 1) @ choose acc tl n
      in
      let best_integral =
        choose [] srlgs k
        |> List.map (fun links ->
               List.sort_uniq Int.compare links
               |> List.fold_left (fun a l -> a +. weights.(l)) 0.0)
        |> List.fold_left Float.max 0.0
      in
      lp_val >= best_integral -. 1e-6)

let suite =
  [
    Alcotest.test_case "structured oracle = knapsack (singletons)" `Quick
      test_structured_oracle_vs_knapsack;
    Alcotest.test_case "structured oracle disjoint pairs + MLG" `Quick
      test_structured_oracle_disjoint_pairs;
    Alcotest.test_case "MLG budget is one" `Quick test_structured_mlg_budget;
    Alcotest.test_case "uncovered links carry nothing" `Quick
      test_structured_uncovered_links_carry_nothing;
    Alcotest.test_case "structured compute + audit (abilene)" `Slow
      test_structured_compute_and_audit;
    Alcotest.test_case "structured cheaper than arbitrary" `Slow
      test_structured_cheaper_than_arbitrary;
    Alcotest.test_case "priority class ordering + audit" `Slow test_priority_class_ordering;
    Alcotest.test_case "priority beats general for top class" `Slow
      test_priority_beats_general_for_top_class;
    Alcotest.test_case "single priority class = offline" `Slow test_priority_reduces_to_offline;
    QCheck_alcotest.to_alcotest structured_dominance_prop;
  ]
