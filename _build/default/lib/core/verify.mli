(** Independent verification of R3's guarantees.

    These checks do not reuse the LP: the worst-case virtual load has the
    closed knapsack form of {!Virtual_demand}, so the offline guarantee can
    be audited directly from the routing values, and the online guarantee
    by exhaustively (or randomly) applying failure scenarios. *)

(** [offline_worst_mlu g ~f ~base_loads ~protection] is
    [max_e (base_loads(e) + sum of f largest c_l p_l(e)) / c_e] — the true
    MLU of the plan over [d + X_F]. Must match {!Offline.plan}'s [mlu] up
    to the loop-penalty tolerance (this equality is itself a check of the
    LP dualization). *)
val offline_worst_mlu :
  R3_net.Graph.t -> f:int -> base_loads:float array -> protection:R3_net.Routing.t -> float

(** [scenario_mlu plan links] applies the failure scenario (directed links)
    via online reconfiguration and returns the resulting real-traffic MLU. *)
val scenario_mlu : Offline.plan -> R3_net.Graph.link list -> float

(** [max_mlu_over_scenarios plan scenarios] is the worst {!scenario_mlu}. *)
val max_mlu_over_scenarios : Offline.plan -> R3_net.Graph.link list list -> float

(** Theorem 1 as an executable check: if [plan.mlu <= 1] then every
    scenario of at most [plan.f] directed-link failures keeps MLU <= 1.
    Returns [Error] describing the first violating scenario. Enumerates
    exhaustively when feasible, otherwise samples [samples] random
    scenarios with the given [seed]. *)
val check_theorem1 :
  ?samples:int -> ?seed:int -> ?tol:float -> Offline.plan -> (unit, string) result

(** Theorem 3 as an executable check: all permutations of the scenario
    yield identical final routings (up to [tol]).

    Caveat: the theorem's regime is drop-free reconfiguration. When a
    sequence partitions a destination, the doomed traffic blackholes at a
    head router that depends on the failure order, so upstream flows of
    {e lost} commodities legitimately differ between orders; apply this
    check only to scenarios where all traffic remains deliverable (e.g.
    guard with {!Reconfig.delivered_fraction}). *)
val check_order_independence :
  ?tol:float -> Offline.plan -> R3_net.Graph.link list -> (unit, string) result
