(** The rerouting virtual demand set [X_F] of equation (2):

    {v X_F = { x | 0 <= x_e/c_e <= 1 for all e,  sum_e x_e/c_e <= F } v}

    plus the closed form of the inner maximization (5): because (5) is a
    fractional knapsack with unit weights, the worst-case virtual load on a
    link [e] under protection routing [p] is exactly the sum of the [F]
    largest values of [c_l * p_l(e)]. This closed form powers both the
    congestion-free verifier and the constraint-generation solver. *)

(** [member g ~f x] checks x in X_F (x indexed by link). *)
val member : R3_net.Graph.t -> f:int -> float array -> bool

(** Extreme points of [X_F] on small graphs: every subset of at most [f]
    links at full capacity. Exponential — intended for tests; raises
    [Invalid_argument] when there would be more than [limit] (default
    200_000) points. *)
val extreme_points : ?limit:int -> R3_net.Graph.t -> f:int -> float array list

(** [worst_virtual_load g ~f ~weights] where [weights.(l) = c_l * p_l(e)]
    for a fixed link [e]: the optimal objective of (5), i.e. the sum of the
    [f] largest weights. *)
val worst_virtual_load : f:int -> float array -> float

(** As above but also returning the argmax set of links (the adversarial
    failure scenario for this link), largest first. *)
val worst_virtual_load_set : f:int -> float array -> float * int list
