(** Realistic failure scenarios: shared-risk link groups and maintenance
    link groups (Section 3.5, equation (18)).

    The rerouted-traffic envelope is restricted to what at most [k]
    concurrent SRLG events plus at most one MLG event can produce: a link
    not covered by any down group carries no virtual demand. As in the
    paper we solve the LP relaxation of (18), which upper-bounds the
    integral worst case (conservative, still congestion-free). *)

type groups = {
  srlgs : R3_net.Graph.link list list;  (** shared-risk groups *)
  mlgs : R3_net.Graph.link list list;  (** maintenance groups *)
  k : int;  (** max concurrent SRLG events *)
}

(** Worst-case virtual load on a fixed link given per-link weights
    [w_l = c_l * p_l(e)] — the optimal objective of the LP relaxation of
    (18), solved exactly as a small LP. Returns the value and the optimal
    fractional failure intensities [y_l = x_l / c_l] per link, which are
    the coefficients of the corresponding cutting plane. *)
val worst_structured_load : groups -> float array -> float * float array

(** Offline computation under structured failures, by constraint
    generation ([config.f] is ignored; [groups.k] plays its role). The
    resulting plan's [f] field is set to [groups.k]. *)
val compute :
  Offline.config ->
  R3_net.Graph.t ->
  R3_net.Traffic.t ->
  groups ->
  Offline.base_spec ->
  (Offline.plan, string) result

(** Audit the worst-case MLU of a plan under the structured envelope. *)
val audit_mlu : Offline.plan -> groups -> float
