lib/core/structured.ml: Array Float Fun Hashtbl List Lp_build Offline Option Printf R3_lp R3_net
