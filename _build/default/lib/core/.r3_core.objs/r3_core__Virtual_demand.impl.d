lib/core/virtual_demand.ml: Array Float Int List Printf R3_net
