lib/core/lp_build.ml: Array Float List Option Printf R3_lp R3_net
