lib/core/lp_build.mli: R3_lp R3_net
