lib/core/verify.ml: Array Float Int List Offline Printf R3_net R3_util Reconfig String Virtual_demand
