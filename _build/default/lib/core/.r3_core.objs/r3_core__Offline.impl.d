lib/core/offline.ml: Array Float Hashtbl Int List Lp_build Option Printf R3_lp R3_net Virtual_demand
