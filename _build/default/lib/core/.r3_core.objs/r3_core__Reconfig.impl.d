lib/core/reconfig.ml: Array List Offline R3_net
