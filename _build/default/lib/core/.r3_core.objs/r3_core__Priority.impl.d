lib/core/priority.ml: Array Float Hashtbl Int List Lp_build Offline Option R3_lp R3_net Structured Verify Virtual_demand
