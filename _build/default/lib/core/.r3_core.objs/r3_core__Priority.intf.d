lib/core/priority.mli: Offline R3_net
