lib/core/structured.mli: Offline R3_net
