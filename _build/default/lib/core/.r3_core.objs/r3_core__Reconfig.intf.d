lib/core/reconfig.mli: Offline R3_net
