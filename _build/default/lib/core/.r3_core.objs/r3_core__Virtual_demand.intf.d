lib/core/virtual_demand.mli: R3_net
