lib/core/offline.mli: R3_net
