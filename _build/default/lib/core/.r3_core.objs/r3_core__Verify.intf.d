lib/core/verify.mli: Offline R3_net
