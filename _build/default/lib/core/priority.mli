(** Prioritized resilient routing (Section 3.5, equation (19)).

    Each traffic class [i] carries the {e cumulative} demand [d_i] (all
    traffic requiring protection level [i] or higher) and a failure budget
    [f_i]; the plan must keep [d_i + X_{f_i}] congestion-free for every
    class simultaneously. One shared base routing [r] and protection
    routing [p] serve all classes; the per-class virtual-load duals are
    separate.

    Example from the paper: TPRT (real-time) protected against 3+ failures,
    TPP (private transport) against 2, general IP against 1 — pass
    [ (d_F + d_P + d_I, 1); (d_F + d_P, 2); (d_F, 3) ]. *)

type class_spec = {
  demand : R3_net.Traffic.t;  (** cumulative demand of this class and above *)
  f : int;  (** failure budget for this class *)
}

type plan = {
  plan : Offline.plan;  (** [plan.f] is the largest class budget *)
  class_mlus : float array;  (** per-class worst-case MLU over [d_i + X_{f_i}] *)
}

(** Solve with constraint generation (the per-class oracle is the same
    knapsack, with budget [f_i]). The [f] field of [config] is ignored.

    When [srlgs] is given, class [i]'s envelope is the structured one of
    equation (18) restricted to at most [f_i] concurrent SRLG events —
    e.g. pass one group per bidirectional link pair to express "protect
    class [i] against [f_i] physical failures". *)
val compute :
  Offline.config ->
  R3_net.Graph.t ->
  ?srlgs:R3_net.Graph.link list list ->
  classes:class_spec list ->
  Offline.base_spec ->
  (plan, string) result

(** Audit: per-class worst-case MLU of an arbitrary plan, by the knapsack
    closed form (or the structured oracle when [srlgs] is given). *)
val audit_class_mlus :
  ?srlgs:R3_net.Graph.link list list ->
  classes:class_spec list ->
  Offline.plan ->
  float array
