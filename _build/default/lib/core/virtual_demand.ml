let member g ~f x =
  let m = R3_net.Graph.num_links g in
  if Array.length x <> m then invalid_arg "Virtual_demand.member: bad length";
  let budget = ref 0.0 in
  let ok = ref true in
  for e = 0 to m - 1 do
    let u = x.(e) /. R3_net.Graph.capacity g e in
    if u < -1e-9 || u > 1.0 +. 1e-9 then ok := false;
    budget := !budget +. u
  done;
  !ok && !budget <= float_of_int f +. 1e-9

let extreme_points ?(limit = 200_000) g ~f =
  let m = R3_net.Graph.num_links g in
  (* Count subsets of size <= f before materializing. *)
  let count = ref 0 in
  let rec binom n k = if k = 0 || k = n then 1 else binom (n - 1) (k - 1) + binom (n - 1) k in
  for k = 0 to Int.min f m do
    count := !count + binom m k
  done;
  if !count > limit then
    invalid_arg
      (Printf.sprintf "Virtual_demand.extreme_points: %d points exceeds limit %d" !count limit);
  let acc = ref [] in
  let x = Array.make m 0.0 in
  let rec enumerate start remaining =
    acc := Array.copy x :: !acc;
    if remaining > 0 then
      for e = start to m - 1 do
        x.(e) <- R3_net.Graph.capacity g e;
        enumerate (e + 1) (remaining - 1);
        x.(e) <- 0.0
      done
  in
  enumerate 0 f;
  !acc

let worst_virtual_load ~f weights =
  let sorted = Array.copy weights in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let acc = ref 0.0 in
  for i = 0 to Int.min f (Array.length sorted) - 1 do
    if sorted.(i) > 0.0 then acc := !acc +. sorted.(i)
  done;
  !acc

let worst_virtual_load_set ~f weights =
  let idx = Array.init (Array.length weights) (fun i -> i) in
  Array.sort (fun a b -> Float.compare weights.(b) weights.(a)) idx;
  let acc = ref 0.0 and links = ref [] in
  for i = 0 to Int.min f (Array.length weights) - 1 do
    if weights.(idx.(i)) > 0.0 then begin
      acc := !acc +. weights.(idx.(i));
      links := idx.(i) :: !links
    end
  done;
  (!acc, List.rev !links)
