module G = R3_net.Graph
module Routing = R3_net.Routing
module B = R3_baselines

type algorithm =
  | Ospf_cspf_detour
  | Ospf_recon
  | Fcp
  | Path_splice
  | Ospf_r3
  | Ospf_opt
  | Mplsff_r3

let algorithm_name = function
  | Ospf_cspf_detour -> "OSPF+CSPF-detour"
  | Ospf_recon -> "OSPF+recon"
  | Fcp -> "FCP"
  | Path_splice -> "PathSplice"
  | Ospf_r3 -> "OSPF+R3"
  | Ospf_opt -> "OSPF+opt"
  | Mplsff_r3 -> "MPLS-ff+R3"

let all_algorithms =
  [ Ospf_cspf_detour; Ospf_recon; Fcp; Path_splice; Ospf_r3; Ospf_opt; Mplsff_r3 ]

type env = {
  graph : G.t;
  weights : float array;
  pairs : (G.node * G.node) array;
  demands : float array;
  ospf_base : Routing.t;
  ospf_r3 : R3_core.Offline.plan option;
  mplsff_r3 : R3_core.Offline.plan option;
  mcf_epsilon : float;
}

let make_env g ~weights ~pairs ~demands ?ospf_r3 ?mplsff_r3 ?(mcf_epsilon = 0.06) () =
  let ospf_base = R3_net.Ospf.routing g ~weights ~pairs () in
  { graph = g; weights; pairs; demands; ospf_base; ospf_r3; mplsff_r3; mcf_epsilon }

let r3_bottleneck env plan scenario =
  (* Evaluate the plan's routing against the env's demands (the plan may
     have been computed for a different - e.g. peak - matrix). *)
  let plan_pairs = plan.R3_core.Offline.pairs in
  let demands =
    if plan_pairs == env.pairs then env.demands
    else begin
      (* align env demands onto plan commodities *)
      let idx = Hashtbl.create 64 in
      Array.iteri (fun k pr -> Hashtbl.replace idx pr k) env.pairs;
      Array.map
        (fun pr ->
          match Hashtbl.find_opt idx pr with
          | Some k -> env.demands.(k)
          | None -> 0.0)
        plan_pairs
    end
  in
  let st =
    R3_core.Reconfig.make env.graph ~pairs:plan_pairs ~demands
      ~base:plan.R3_core.Offline.base ~protection:plan.R3_core.Offline.protection
  in
  let st = R3_core.Reconfig.apply_failures st scenario in
  R3_core.Reconfig.mlu st

let bottleneck env alg scenario =
  let g = env.graph in
  let failed = G.fail_links g scenario in
  match alg with
  | Ospf_recon ->
    let o =
      B.Ospf_recon.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
        ~demands:env.demands ()
    in
    B.Types.bottleneck g ~failed o
  | Ospf_cspf_detour ->
    let o =
      B.Cspf_detour.evaluate g ~failed ~weights:env.weights ~base:env.ospf_base
        ~demands:env.demands ()
    in
    B.Types.bottleneck g ~failed o
  | Fcp ->
    let o =
      B.Fcp.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
        ~demands:env.demands ()
    in
    B.Types.bottleneck g ~failed o
  | Path_splice ->
    let o =
      B.Path_splicing.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
        ~demands:env.demands ()
    in
    B.Types.bottleneck g ~failed o
  | Ospf_opt -> begin
    match B.Opt_detour.mlu g ~failed ~base:env.ospf_base ~demands:env.demands () with
    | Ok u -> u
    | Error _ ->
      (* fall back to reconvergence if the detour LP fails *)
      let o =
        B.Ospf_recon.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
          ~demands:env.demands ()
      in
      B.Types.bottleneck g ~failed o
  end
  | Ospf_r3 -> begin
    match env.ospf_r3 with
    | Some plan -> r3_bottleneck env plan scenario
    | None -> invalid_arg "Eval: OSPF+R3 requested without a plan"
  end
  | Mplsff_r3 -> begin
    match env.mplsff_r3 with
    | Some plan -> r3_bottleneck env plan scenario
    | None -> invalid_arg "Eval: MPLS-ff+R3 requested without a plan"
  end

let optimal_bottleneck env scenario =
  let failed = G.fail_links env.graph scenario in
  let r =
    R3_mcf.Concurrent_flow.min_mlu env.graph ~failed ~epsilon:env.mcf_epsilon
      ~pairs:env.pairs ~demands:env.demands ()
  in
  r.R3_mcf.Concurrent_flow.mlu

let performance_ratio env alg scenario =
  let opt = optimal_bottleneck env scenario in
  if opt <= 0.0 then nan else bottleneck env alg scenario /. opt

let sorted_curves env ~algorithms ~scenarios ?(metric = `Ratio) () =
  let algs = Array.of_list algorithms in
  let values = Array.map (fun _ -> ref []) algs in
  List.iter
    (fun scenario ->
      let opt =
        match metric with
        | `Ratio -> optimal_bottleneck env scenario
        | `Bottleneck -> 1.0
      in
      Array.iteri
        (fun i alg ->
          let v = bottleneck env alg scenario in
          let v = match metric with `Ratio -> if opt > 0.0 then v /. opt else nan | `Bottleneck -> v in
          if not (Float.is_nan v) then values.(i) := v :: !(values.(i)))
        algs)
    scenarios;
  Array.map
    (fun l ->
      let arr = Array.of_list !l in
      Array.sort Float.compare arr;
      arr)
    values
