(** Fluid traffic simulator standing in for the paper's Emulab testbed
    (Figures 11–13): time-stepped link loads, per-OD throughput, loss at
    overloaded links aggregated per egress router, and RTT of probe flows.

    A scripted run fails physical links at given instants; the routing
    reacts per the scheme under test (R3 online reconfiguration or OSPF
    reconvergence, which converges only after its reconvergence delay).
    Demands get a small deterministic burst modulation to mimic the
    paper's bursty generator. *)

type scheme =
  | R3_plan of R3_core.Offline.plan
  | Ospf of { weights : float array; reconvergence_s : float }

type event = { at_s : float; fail : R3_net.Graph.link }
(** [fail] is a physical link: its reverse goes down too. *)

type config = {
  duration_s : float;
  dt_s : float;
  burstiness : float;  (** 0 = constant bitrate; 0.2 = ±20% modulation *)
  seed : int;
}

val default_config : config

type step = {
  time_s : float;
  loads : float array;  (** per-link offered load *)
  utilization : float array;  (** load / capacity, live links; 0 on failed *)
  delivered : float array;  (** per-commodity delivered volume this step *)
  offered : float array;  (** per-commodity offered volume this step *)
  rtt_ms : float array;  (** per-commodity RTT estimate *)
}

type run = {
  steps : step list;  (** chronological *)
  pairs : (R3_net.Graph.node * R3_net.Graph.node) array;
}

val run :
  ?config:config ->
  R3_net.Graph.t ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  scheme:scheme ->
  events:event list ->
  unit ->
  run

(** {2 Figure-shaped summaries} *)

(** Steady-state (last quarter of the window between events) per-commodity
    throughput normalized by total capacity — Figure 11(a)'s series. *)
val throughput_by_phase : run -> events:event list -> float array list

(** Per-link mean utilization per phase — Figure 11(b). *)
val utilization_by_phase : run -> events:event list -> float array list

(** Aggregated loss rate per egress router per phase — Figure 11(c). *)
val egress_loss_by_phase :
  R3_net.Graph.t -> run -> events:event list -> float array list

(** RTT time series of one OD pair — Figure 12. *)
val rtt_series : run -> src:R3_net.Graph.node -> dst:R3_net.Graph.node -> (float * float) list
