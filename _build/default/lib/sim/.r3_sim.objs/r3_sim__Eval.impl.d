lib/sim/eval.ml: Array Float Hashtbl List R3_baselines R3_core R3_mcf R3_net
