lib/sim/eval.mli: R3_core R3_net
