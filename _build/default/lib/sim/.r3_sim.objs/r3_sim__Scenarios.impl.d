lib/sim/scenarios.ml: Array Hashtbl Int List R3_net R3_util
