lib/sim/scenarios.mli: R3_net
