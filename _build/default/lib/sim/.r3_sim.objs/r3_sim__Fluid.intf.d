lib/sim/fluid.mli: R3_core R3_net
