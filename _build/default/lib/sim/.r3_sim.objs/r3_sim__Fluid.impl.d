lib/sim/fluid.ml: Array Float List R3_core R3_net R3_util
