(** The evaluation engine behind Figures 3–10: run every protection
    algorithm on a failure scenario and report the bottleneck traffic
    intensity (worst live-link utilization) and the performance ratio
    against optimal flow-based routing. *)

type algorithm =
  | Ospf_cspf_detour  (** OSPF base + CSPF fast-reroute bypasses *)
  | Ospf_recon  (** OSPF reconvergence on the surviving topology *)
  | Fcp  (** failure-carrying packets *)
  | Path_splice  (** path splicing, k=10 slices *)
  | Ospf_r3  (** R3 protection over the OSPF base routing *)
  | Ospf_opt  (** per-scenario optimal link detour over the OSPF base *)
  | Mplsff_r3  (** R3 protection over the jointly-optimized base *)

val algorithm_name : algorithm -> string

val all_algorithms : algorithm list

(** Precomputed inputs shared across scenarios. *)
type env = {
  graph : R3_net.Graph.t;
  weights : float array;  (** OSPF weights for the OSPF-based schemes *)
  pairs : (R3_net.Graph.node * R3_net.Graph.node) array;
  demands : float array;
  ospf_base : R3_net.Routing.t;
  ospf_r3 : R3_core.Offline.plan option;  (** plan with the OSPF base *)
  mplsff_r3 : R3_core.Offline.plan option;  (** plan with optimized base *)
  mcf_epsilon : float;  (** accuracy of the optimal-routing normalizer *)
}

(** Build an environment: computes the OSPF routing; R3 plans are supplied
    by the caller (they may be shared across intervals). *)
val make_env :
  R3_net.Graph.t ->
  weights:float array ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  ?ospf_r3:R3_core.Offline.plan ->
  ?mplsff_r3:R3_core.Offline.plan ->
  ?mcf_epsilon:float ->
  unit ->
  env

(** Bottleneck traffic intensity of one algorithm under one scenario
    (directed failed links). R3 rows require the corresponding plan. *)
val bottleneck : env -> algorithm -> R3_net.Graph.link list -> float

(** Approximately optimal bottleneck intensity (flow-based optimal routing
    on the surviving topology). *)
val optimal_bottleneck : env -> R3_net.Graph.link list -> float

(** [performance_ratio env alg scenario] divides by
    {!optimal_bottleneck}; returns [nan] when the optimum is 0. *)
val performance_ratio : env -> algorithm -> R3_net.Graph.link list -> float

(** Evaluate several algorithms over many scenarios; result.(i) lists, for
    algorithm i, the per-scenario values sorted ascending (the shape the
    paper's sorted-ratio figures plot). [metric] defaults to
    performance ratio; [`Bottleneck] gives raw intensities. *)
val sorted_curves :
  env ->
  algorithms:algorithm list ->
  scenarios:R3_net.Graph.link list list ->
  ?metric:[ `Ratio | `Bottleneck ] ->
  unit ->
  float array array
