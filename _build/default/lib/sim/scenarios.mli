(** Failure-scenario generation (Section 5.1).

    The paper enumerates all single- and two-link failures and randomly
    samples ~1100 three- and four-link scenarios. Failures are {e physical}:
    a failed link takes its reverse direction down with it. A scenario is
    the list of directed links that are down. *)

(** Canonical physical links: one directed representative per bidirectional
    pair (the lower id), plus any unpaired directed links. *)
val physical_links : R3_net.Graph.t -> R3_net.Graph.link array

(** Expand physical picks into the full directed-link scenario. *)
val expand : R3_net.Graph.t -> R3_net.Graph.link list -> R3_net.Graph.link list

(** All scenarios failing exactly [k] physical links (enumerated).
    Scenarios that partition the graph are kept — algorithms must cope. *)
val all_k : R3_net.Graph.t -> k:int -> R3_net.Graph.link list list

(** [sample_k g ~k ~count ~seed] distinct random scenarios of [k] physical
    links (fewer if the space is smaller than [count]). *)
val sample_k :
  R3_net.Graph.t -> k:int -> count:int -> seed:int -> R3_net.Graph.link list list

(** Single failure events from structured groups: each SRLG or MLG down as
    one event (already closed under reversal by construction). *)
val group_events : R3_net.Graph.link list list -> R3_net.Graph.link list list

(** Drop scenarios that disconnect the graph (used where the paper's metric
    is only defined on connected survivors). *)
val connected_only :
  R3_net.Graph.t -> R3_net.Graph.link list list -> R3_net.Graph.link list list
