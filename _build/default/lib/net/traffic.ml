type t = float array array

let zeros n = Array.init n (fun _ -> Array.make n 0.0)

let copy tm = Array.map Array.copy tm

let total tm = Array.fold_left (fun a row -> Array.fold_left ( +. ) a row) 0.0 tm

let scale tm k = Array.map (Array.map (fun x -> x *. k)) tm

let add x y =
  if Array.length x <> Array.length y then invalid_arg "Traffic.add: size mismatch";
  Array.mapi (fun i row -> Array.mapi (fun j v -> v +. y.(i).(j)) row) x

let sub_clamped x y =
  if Array.length x <> Array.length y then invalid_arg "Traffic.sub_clamped: size mismatch";
  Array.mapi (fun i row -> Array.mapi (fun j v -> Float.max 0.0 (v -. y.(i).(j))) row) x

let gravity rng g ?(jitter = 0.4) ~load_factor () =
  let n = Graph.num_nodes g in
  let mass = Array.make n 0.0 in
  for e = 0 to Graph.num_links g - 1 do
    mass.(Graph.src g e) <- mass.(Graph.src g e) +. Graph.capacity g e
  done;
  let mass_total = Array.fold_left ( +. ) 0.0 mass in
  let tm = zeros n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        let noise = exp (jitter *. R3_util.Prng.gaussian rng) in
        tm.(a).(b) <- mass.(a) *. mass.(b) /. mass_total *. noise
      end
    done
  done;
  (* Scale so that total demand ~= load_factor * (bisection-ish capacity):
     we use load_factor * total capacity / average path length 3 as a
     rough, deterministic normalization; callers needing an exact MLU use
     the TE layer to rescale. *)
  let cap = Graph.total_capacity g in
  let t0 = total tm in
  if t0 <= 0.0 then tm else scale tm (load_factor *. cap /. 3.0 /. t0)

let diurnal_factor ~interval =
  let hour = interval mod 24 in
  let day = interval / 24 mod 7 in
  let h = float_of_int hour in
  (* Peak around 14:00, trough around 04:00. *)
  let daily = 0.675 +. (0.325 *. cos ((h -. 14.0) /. 24.0 *. 2.0 *. Float.pi)) in
  let weekly = if day >= 5 then 0.8 else 1.0 in
  daily *. weekly

let commodities tm =
  let n = Array.length tm in
  let pairs = ref [] and demands = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto 0 do
      if a <> b && tm.(a).(b) > 0.0 then begin
        pairs := (a, b) :: !pairs;
        demands := tm.(a).(b) :: !demands
      end
    done
  done;
  (Array.of_list !pairs, Array.of_list !demands)

let split3 rng tm ~p1 ~p2 =
  if p1 < 0.0 || p2 < 0.0 || p1 +. p2 > 1.0 then invalid_arg "Traffic.split3";
  let n = Array.length tm in
  let t1 = zeros n and t2 = zeros n and t3 = zeros n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if tm.(a).(b) > 0.0 then begin
        (* Jitter the class proportions per OD pair, keeping them in [0,1]. *)
        let j1 = Float.max 0.0 (p1 *. (0.5 +. R3_util.Prng.float rng 1.0)) in
        let j2 = Float.max 0.0 (p2 *. (0.5 +. R3_util.Prng.float rng 1.0)) in
        let j1 = Float.min j1 1.0 in
        let j2 = Float.min j2 (1.0 -. j1) in
        t1.(a).(b) <- tm.(a).(b) *. j1;
        t2.(a).(b) <- tm.(a).(b) *. j2;
        t3.(a).(b) <- tm.(a).(b) *. (1.0 -. j1 -. j2)
      end
    done
  done;
  (t1, t2, t3)
