(** Shortest-path first (Dijkstra) over link weights, failure-aware. *)

(** [distances g ?failed ~weights ~src] returns per-node distance from
    [src]; unreachable nodes get [infinity]. [weights] is per-link and must
    be positive. *)
val distances :
  Graph.t -> ?failed:Graph.link_set -> weights:float array -> src:Graph.node -> unit
  -> float array

(** Distances {e to} [dst] (Dijkstra on the reversed graph). *)
val distances_to :
  Graph.t -> ?failed:Graph.link_set -> weights:float array -> dst:Graph.node -> unit
  -> float array

(** One shortest path as a link list, or [None] if unreachable.
    Deterministic tie-breaking by lowest link id. *)
val shortest_path :
  Graph.t ->
  ?failed:Graph.link_set ->
  weights:float array ->
  src:Graph.node ->
  dst:Graph.node ->
  unit ->
  Graph.link list option

(** Smallest end-to-end propagation delay between two nodes (uses link
    delays as weights); [infinity] if unreachable. *)
val min_propagation_delay :
  Graph.t -> ?failed:Graph.link_set -> src:Graph.node -> dst:Graph.node -> unit -> float
