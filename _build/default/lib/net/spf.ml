(* O(n^2) Dijkstra: the topologies in this repository have at most a few
   hundred nodes, where the simple scan beats heap overhead. *)

let check_weights g weights =
  if Array.length weights <> Graph.num_links g then
    invalid_arg "Spf: weights length mismatch";
  Array.iter (fun w -> if w <= 0.0 then invalid_arg "Spf: weights must be positive") weights

let dijkstra g failed weights ~start ~links_of ~other_end =
  let n = Graph.num_nodes g in
  let dist = Array.make n infinity in
  let visited = Array.make n false in
  dist.(start) <- 0.0;
  let rec loop () =
    let best = ref (-1) and best_d = ref infinity in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < !best_d then begin
        best := v;
        best_d := dist.(v)
      end
    done;
    if !best >= 0 then begin
      let u = !best in
      visited.(u) <- true;
      Array.iter
        (fun e ->
          if not failed.(e) then begin
            let v = other_end e in
            let nd = dist.(u) +. weights.(e) in
            if nd < dist.(v) then dist.(v) <- nd
          end)
        (links_of u);
      loop ()
    end
  in
  loop ();
  dist

let distances g ?failed ~weights ~src () =
  check_weights g weights;
  let failed = match failed with Some f -> f | None -> Graph.no_failures g in
  dijkstra g failed weights ~start:src
    ~links_of:(Graph.out_links g)
    ~other_end:(Graph.dst g)

let distances_to g ?failed ~weights ~dst () =
  check_weights g weights;
  let failed = match failed with Some f -> f | None -> Graph.no_failures g in
  dijkstra g failed weights ~start:dst
    ~links_of:(Graph.in_links g)
    ~other_end:(Graph.src g)

let shortest_path g ?failed ~weights ~src ~dst () =
  let failed_set = match failed with Some f -> f | None -> Graph.no_failures g in
  let dist_to = distances_to g ?failed ~weights ~dst () in
  if dist_to.(src) = infinity then None
  else begin
    (* Walk greedily along the shortest-path DAG, lowest link id first. *)
    let tol = 1e-9 in
    let rec walk v acc =
      if v = dst then Some (List.rev acc)
      else begin
        let next = ref None in
        Array.iter
          (fun e ->
            if !next = None && not failed_set.(e) then begin
              let w = Graph.dst g e in
              if Float.abs (weights.(e) +. dist_to.(w) -. dist_to.(v)) <= tol then
                next := Some e
            end)
          (Graph.out_links g v);
        match !next with
        | Some e -> walk (Graph.dst g e) (e :: acc)
        | None -> None
      end
    in
    walk src []
  end

let min_propagation_delay g ?failed ~src ~dst () =
  let delays = Array.init (Graph.num_links g) (fun e -> Float.max (Graph.delay g e) 1e-9) in
  let d = distances g ?failed ~weights:delays ~src () in
  d.(dst)
