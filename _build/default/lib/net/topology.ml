type named = { tag : string; description : string; graph : Graph.t }

(* Expand undirected (a, b, cap, delay) specs into both directed links. *)
let bidir specs =
  Array.of_list
    (List.concat_map (fun (a, b, cap, d) -> [ (a, b, cap, d); (b, a, cap, d) ]) specs)

let abilene () =
  let names =
    [|
      "Seattle"; "Sunnyvale"; "LosAngeles"; "Denver"; "KansasCity"; "Houston";
      "Chicago"; "Indianapolis"; "Atlanta"; "Washington"; "NewYork";
    |]
  in
  let cap = 100.0 (* Mbps; Emulab scale-down used in the paper's testbed *) in
  let links =
    bidir
      [
        (0, 1, cap, 5.5);   (* Seattle - Sunnyvale *)
        (0, 3, cap, 8.2);   (* Seattle - Denver *)
        (1, 2, cap, 2.9);   (* Sunnyvale - LosAngeles *)
        (1, 3, cap, 6.4);   (* Sunnyvale - Denver *)
        (2, 5, cap, 11.0);  (* LosAngeles - Houston *)
        (3, 4, cap, 4.5);   (* Denver - KansasCity *)
        (4, 5, cap, 5.8);   (* KansasCity - Houston *)
        (4, 7, cap, 3.9);   (* KansasCity - Indianapolis *)
        (5, 8, cap, 7.1);   (* Houston - Atlanta *)
        (6, 7, cap, 1.8);   (* Chicago - Indianapolis *)
        (6, 10, cap, 5.9);  (* Chicago - NewYork *)
        (7, 8, cap, 4.3);   (* Indianapolis - Atlanta *)
        (8, 9, cap, 4.8);   (* Atlanta - Washington *)
        (9, 10, cap, 2.1);  (* Washington - NewYork *)
      ]
  in
  Graph.create ~node_names:names ~links

let draw_capacity rng capacities =
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 capacities in
  let x = R3_util.Prng.float rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Topology.random: empty capacity list"
    | [ (c, _) ] -> c
    | (c, w) :: rest -> if x < acc +. w then c else pick (acc +. w) rest
  in
  pick 0.0 capacities

let random ~seed ~nodes ~undirected_links ~capacities () =
  if nodes < 2 then invalid_arg "Topology.random: need at least 2 nodes";
  if undirected_links < nodes - 1 then
    invalid_arg "Topology.random: not enough links for connectivity";
  if undirected_links > nodes * (nodes - 1) / 2 then
    invalid_arg "Topology.random: more links than node pairs";
  let rng = R3_util.Prng.create seed in
  let xs = Array.init nodes (fun _ -> R3_util.Prng.float rng 4000.0) in
  let ys = Array.init nodes (fun _ -> R3_util.Prng.float rng 2500.0) in
  let dist a b = sqrt (((xs.(a) -. xs.(b)) ** 2.0) +. ((ys.(a) -. ys.(b)) ** 2.0)) in
  let edge_set = Hashtbl.create (4 * undirected_links) in
  let edges = ref [] and n_edges = ref 0 in
  let degree = Array.make nodes 0 in
  let add a b =
    let key = (Int.min a b * nodes) + Int.max a b in
    if a <> b && not (Hashtbl.mem edge_set key) then begin
      Hashtbl.add edge_set key ();
      edges := (a, b) :: !edges;
      incr n_edges;
      degree.(a) <- degree.(a) + 1;
      degree.(b) <- degree.(b) + 1;
      true
    end
    else false
  in
  (* Spanning tree: attach each node to the closest of three random already-
     connected candidates, giving geography-respecting trees. *)
  for v = 1 to nodes - 1 do
    let best = ref (R3_util.Prng.int rng v) in
    for _ = 1 to 2 do
      let c = R3_util.Prng.int rng v in
      if dist v c < dist v !best then best := c
    done;
    ignore (add v !best)
  done;
  (* The paper merges Rocketfuel leaf nodes until none has degree one; PoP
     backbones end up with degree >= 3 cores. Raise deficient nodes first
     (closest non-adjacent peer), budget permitting. *)
  let target_min_degree = if undirected_links * 2 >= 3 * nodes then 3 else 2 in
  let deficient () =
    let worst = ref (-1) in
    for v = 0 to nodes - 1 do
      if degree.(v) < target_min_degree
         && (!worst < 0 || degree.(v) < degree.(!worst))
      then worst := v
    done;
    !worst
  in
  let rec raise_degrees guard =
    if guard > 0 && !n_edges < undirected_links then begin
      let v = deficient () in
      if v >= 0 then begin
        let best = ref (-1) in
        for u = 0 to nodes - 1 do
          let key = (Int.min u v * nodes) + Int.max u v in
          if u <> v && not (Hashtbl.mem edge_set key) then
            if !best < 0 || dist v u < dist v !best then best := u
        done;
        if !best >= 0 then ignore (add v !best);
        raise_degrees (guard - 1)
      end
    end
  in
  raise_degrees (4 * nodes);
  (* Extra links: candidates biased toward high-degree nodes (hub-and-spoke
     PoP structure) and shorter distances. *)
  while !n_edges < undirected_links do
    let pick_endpoint () =
      if R3_util.Prng.bool rng 0.6 then begin
        (* degree-biased *)
        let total = Array.fold_left ( + ) 0 degree in
        let x = R3_util.Prng.int rng (Int.max 1 total) in
        let acc = ref 0 and chosen = ref 0 in
        Array.iteri
          (fun v d ->
            if !acc <= x then begin
              chosen := v;
              acc := !acc + d
            end)
          degree;
        !chosen
      end
      else R3_util.Prng.int rng nodes
    in
    let a = pick_endpoint () in
    let b = ref (R3_util.Prng.int rng nodes) in
    for _ = 1 to 2 do
      let c = R3_util.Prng.int rng nodes in
      if c <> a && dist a c < dist a !b then b := c
    done;
    ignore (add a !b)
  done;
  let specs =
    List.rev_map
      (fun (a, b) ->
        let cap = draw_capacity rng capacities in
        let d = Float.max 0.5 (dist a b /. 200.0) in
        (a, b, cap, d))
      !edges
  in
  let names = Array.init nodes (Printf.sprintf "n%d") in
  Graph.create ~node_names:names ~links:(bidir specs)

let oc192 = 10_000.0

let level3_like () =
  random ~seed:1003 ~nodes:17 ~undirected_links:36 ~capacities:[ (oc192, 1.0) ] ()

let sbc_like () =
  random ~seed:1019 ~nodes:19 ~undirected_links:35 ~capacities:[ (oc192, 1.0) ] ()

let uunet_like () =
  random ~seed:1047 ~nodes:47 ~undirected_links:168 ~capacities:[ (oc192, 1.0) ] ()

let generated () =
  random ~seed:1100 ~nodes:100 ~undirected_links:230 ~capacities:[ (oc192, 1.0) ] ()

(* The paper withholds US-ISP's size ("-" in Table 1). We size the stand-in
   so that the offline LP stays within the from-scratch simplex's range
   (DESIGN.md §5) while keeping heterogeneous PoP-like capacities. *)
let usisp_like () =
  random ~seed:77 ~nodes:14 ~undirected_links:24 ~capacities:[ (10_000.0, 1.0) ] ()

let catalog () =
  [
    { tag = "abilene"; description = "Abilene backbone 2006 (router-level)"; graph = abilene () };
    { tag = "level3"; description = "Level-3-like PoP topology (synthetic)"; graph = level3_like () };
    { tag = "sbc"; description = "SBC-like PoP topology (synthetic)"; graph = sbc_like () };
    { tag = "uunet"; description = "UUNet-like PoP topology (synthetic)"; graph = uunet_like () };
    { tag = "generated"; description = "GT-ITM-style generated backbone (synthetic)"; graph = generated () };
    { tag = "usisp"; description = "US-ISP-like PoP topology (synthetic stand-in)"; graph = usisp_like () };
  ]

let find tag = List.find_opt (fun n -> n.tag = tag) (catalog ())

let parallel_links ~capacities =
  let links =
    List.concat_map
      (fun c -> [ (0, 1, c, 1.0); (1, 0, c, 1.0) ])
      capacities
  in
  Graph.create ~node_names:[| "i"; "j" |] ~links:(Array.of_list links)

let triangle () =
  Graph.create ~node_names:[| "a"; "b"; "c" |]
    ~links:(bidir [ (0, 1, 10.0, 1.0); (1, 2, 10.0, 1.0); (0, 2, 10.0, 1.0) ])

let square () =
  Graph.create
    ~node_names:[| "a"; "b"; "c"; "d" |]
    ~links:
      (bidir
         [
           (0, 1, 10.0, 1.0); (1, 2, 10.0, 1.0); (2, 3, 10.0, 1.0);
           (3, 0, 10.0, 1.0); (0, 2, 10.0, 1.0);
         ])

(* Groups of bidirectional links sharing an endpoint, closed under
   reversal; used both for SRLGs (fiber sharing) and MLGs (maintenance). *)
let link_groups ~seed g ~count ~min_size ~max_size =
  let rng = R3_util.Prng.create seed in
  let groups = ref [] in
  let n = Graph.num_nodes g in
  let attempts = ref 0 in
  while List.length !groups < count && !attempts < count * 50 do
    incr attempts;
    let v = R3_util.Prng.int rng n in
    let out = Graph.out_links g v in
    if Array.length out >= 1 then begin
      let size = min_size + R3_util.Prng.int rng (max_size - min_size + 1) in
      let size = Int.min size (Array.length out) in
      let chosen = R3_util.Prng.sample rng size out in
      let with_reverse =
        Array.to_list chosen
        |> List.concat_map (fun e ->
               match Graph.reverse_link g e with
               | Some r -> [ e; r ]
               | None -> [ e ])
        |> List.sort_uniq Int.compare
      in
      if not (List.mem with_reverse !groups) then groups := with_reverse :: !groups
    end
  done;
  List.rev !groups

let synthetic_srlgs ~seed g ~count = link_groups ~seed g ~count ~min_size:2 ~max_size:3

let synthetic_mlgs ~seed g ~count =
  link_groups ~seed:(seed + 7919) g ~count ~min_size:1 ~max_size:3
