(** Flow representation of routing (Section 2 of the paper).

    A routing assigns, for each commodity [k] (an OD pair for the base
    routing [r], a protected link for the protection routing [p]), the
    fraction [frac k e] of the commodity's traffic crossing each directed
    link [e]. Validity is conditions [R1]–[R4] of equation (1). *)

type t = {
  pairs : (Graph.node * Graph.node) array;  (** commodity k -> (origin, tail) *)
  frac : float array array;  (** [frac.(k).(e)] in [0,1] *)
}

(** All-zero routing for the given commodities. *)
val create : Graph.t -> pairs:(Graph.node * Graph.node) array -> t

val num_commodities : t -> int

(** Deep copy. *)
val copy : t -> t

(** [validate g ?tol ?failed ?partial t] checks [R1]–[R4] for every
    commodity and additionally that no flow crosses a failed link. When
    [partial] is true, commodities are also allowed to route {e none} of
    their traffic (all-zero rows) — the state R3 reaches when a partition
    removes reachability. Returns a human-readable error for the first
    violated condition. *)
val validate :
  Graph.t ->
  ?tol:float ->
  ?failed:Graph.link_set ->
  ?partial:bool ->
  t ->
  (unit, string) result

(** [loads g ~demands t] sums [demands.(k) *. frac.(k).(e)] per link.
    [demands] must be parallel to [t.pairs]. *)
val loads : Graph.t -> demands:float array -> t -> float array

(** Add [loads] of this routing into an accumulator array. *)
val add_loads : Graph.t -> demands:float array -> t -> into:float array -> unit

(** Maximum link utilization given per-link loads. *)
val mlu : Graph.t -> loads:float array -> float

(** The link attaining the MLU (lowest id on ties). *)
val bottleneck : Graph.t -> loads:float array -> Graph.link

(** Expected end-to-end propagation delay of commodity [k] under the
    routing: [sum_e frac.(k).(e) * delay e]. *)
val mean_delay : Graph.t -> t -> int -> float

(** Per-commodity delivered fraction at the destination: 1 for a valid
    total routing, less when the commodity is partially dropped. Computed
    as net flow into the destination. *)
val delivered : Graph.t -> t -> int -> float
