(** Topology catalog: the six networks of Table 1 plus small fixtures.

    Abilene is the real 2006 router-level backbone (11 nodes, 14
    bidirectional = 28 directed links) with approximate great-circle
    propagation delays and the 100 Mbps Emulab scale-down of the paper.
    The Rocketfuel PoP maps (Level-3, SBC, UUNet), the GT-ITM generated
    network, and the proprietary US-ISP map are replaced by seeded synthetic
    topologies with the paper's exact node/link counts (DESIGN.md §4). *)

type named = {
  tag : string;  (** short identifier used by the CLI and benches *)
  description : string;
  graph : Graph.t;
}

(** The real Abilene backbone; capacities 100 Mbps, delays in ms. *)
val abilene : unit -> Graph.t

(** Synthetic stand-ins with Table 1's node / directed-link counts. *)
val level3_like : unit -> Graph.t

val sbc_like : unit -> Graph.t
val uunet_like : unit -> Graph.t

(** GT-ITM-style generated backbone: 100 nodes, 460 directed links. *)
val generated : unit -> Graph.t

(** US-ISP stand-in: 22 PoPs, heterogeneous capacities. *)
val usisp_like : unit -> Graph.t

(** Everything above, in Table 1 order. *)
val catalog : unit -> named list

val find : string -> named option

(** {2 Random generator} *)

(** [random ~seed ~nodes ~undirected_links ~capacities ()] produces a
    connected topology: geometric node placement, a random spanning tree
    biased toward short links, then degree-and-distance-biased extra links.
    Capacities are drawn from [capacities] (capacity, weight) pairs,
    symmetric per undirected link. Raises [Invalid_argument] if
    [undirected_links < nodes - 1] or exceeds the complete graph. *)
val random :
  seed:int ->
  nodes:int ->
  undirected_links:int ->
  capacities:(float * float) list ->
  unit ->
  Graph.t

(** {2 Fixtures for tests and examples} *)

(** Two nodes joined by parallel directed-link pairs, one per capacity
    (Figure 1 of the paper). *)
val parallel_links : capacities:float list -> Graph.t

(** Full mesh on 3 nodes, unit-ish capacities. *)
val triangle : unit -> Graph.t

(** 4-cycle plus one diagonal. *)
val square : unit -> Graph.t

(** {2 Structured failure events (Section 3.5)} *)

(** [synthetic_srlgs ~seed g ~count] builds shared-risk link groups: each
    group is 2–3 bidirectional links sharing an endpoint (fiber-conduit
    sharing), closed under link reversal. *)
val synthetic_srlgs : seed:int -> Graph.t -> count:int -> Graph.link list list

(** Maintenance link groups: 1–3 bidirectional links touching a common
    node, closed under reversal. *)
val synthetic_mlgs : seed:int -> Graph.t -> count:int -> Graph.link list list
