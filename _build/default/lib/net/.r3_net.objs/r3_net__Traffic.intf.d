lib/net/traffic.mli: Graph R3_util
