lib/net/topology.ml: Array Float Graph Hashtbl Int List Printf R3_util
