lib/net/flow_decompose.mli: Format Graph Routing
