lib/net/routing.ml: Array Float Graph Printf
