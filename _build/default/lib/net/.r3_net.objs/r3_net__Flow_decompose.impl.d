lib/net/flow_decompose.ml: Array Float Format Graph List Routing
