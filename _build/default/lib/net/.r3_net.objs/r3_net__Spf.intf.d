lib/net/spf.mli: Graph
