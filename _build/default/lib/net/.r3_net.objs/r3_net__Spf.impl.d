lib/net/spf.ml: Array Float Graph List
