lib/net/ospf.ml: Array Float Graph Hashtbl List Option Routing Spf
