lib/net/graph.ml: Array Format Hashtbl List Option Printf
