lib/net/routing.mli: Graph
