lib/net/topology.mli: Graph
