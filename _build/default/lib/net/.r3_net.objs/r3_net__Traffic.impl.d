lib/net/traffic.ml: Array Float Graph R3_util
