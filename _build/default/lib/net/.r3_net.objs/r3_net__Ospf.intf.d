lib/net/ospf.mli: Graph Routing
