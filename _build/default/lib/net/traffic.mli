(** Traffic matrices and synthetic demand generation.

    The paper evaluates on real US-ISP hourly matrices (proprietary) and on
    gravity-model synthetic matrices for the Rocketfuel topologies [30, 45].
    We implement the gravity model plus a diurnal/weekly modulation used to
    stand in for the US-ISP week-long trace (see DESIGN.md §4). *)

type t = float array array
(** [t.(a).(b)] is the demand from node [a] to node [b]; diagonal is 0. *)

val zeros : int -> t

val copy : t -> t

(** Sum of all entries. *)
val total : t -> float

(** Multiply every entry by a scalar. *)
val scale : t -> float -> t

(** Entrywise sum. Raises [Invalid_argument] on dimension mismatch. *)
val add : t -> t -> t

(** Entrywise difference, clamped at 0. *)
val sub_clamped : t -> t -> t

(** Gravity model: node mass = total adjacent capacity, demand(a,b)
    proportional to mass(a)*mass(b), scaled so the busiest link would see
    roughly [load_factor] utilization under even spreading. Deterministic
    given the generator; a lognormal jitter keeps the matrix non-uniform. *)
val gravity :
  R3_util.Prng.t -> Graph.t -> ?jitter:float -> load_factor:float -> unit -> t

(** [diurnal_factor ~interval] is a smooth 24h-periodic factor in [0.35, 1.0]
    with a weekly dip, where [interval] counts hours from Monday 00:00. *)
val diurnal_factor : interval:int -> float

(** The commodity view used by the routing and LP layers: pairs with nonzero
    demand and the parallel demand array. *)
val commodities : t -> (Graph.node * Graph.node) array * float array

(** [split3 rng tm ~p1 ~p2] partitions a matrix into three classes (e.g.
    TPRT / TPP / IP) with expected fractions [p1], [p2], [1-p1-p2] per OD
    pair (independent random proportions). The three parts sum back to
    [tm]. *)
val split3 : R3_util.Prng.t -> t -> p1:float -> p2:float -> t * t * t
