(** Directed network graphs with stable link identifiers.

    Nodes and links are dense integer ids. Link ids are {e stable}: failures
    never renumber links — algorithms receive a {!link_set} marking failed
    links instead of a rebuilt graph, mirroring how R3 keeps protection
    routing indexed by the original topology. *)

type node = int
type link = int

type t

(** [create ~node_names ~links] where each entry of [links] is
    [(src, dst, capacity, delay_ms)] describing one directed link.
    Raises [Invalid_argument] on out-of-range endpoints, self-loops,
    nonpositive capacities, or duplicate directed links. *)
val create : node_names:string array -> links:(int * int * float * float) array -> t

val num_nodes : t -> int
val num_links : t -> int

val node_name : t -> node -> string

(** Node id from its name. Raises [Not_found]. *)
val node_id : t -> string -> node

val src : t -> link -> node
val dst : t -> link -> node
val capacity : t -> link -> float
val delay : t -> link -> float

(** Outgoing / incoming link ids of a node (do not mutate). *)
val out_links : t -> node -> link array

val in_links : t -> node -> link array

(** [find_link t a b] is the directed link a->b if present. *)
val find_link : t -> node -> node -> link option

(** The opposite-direction link, if the topology has one. *)
val reverse_link : t -> link -> link option

(** {2 Failure sets}

    A link set marks failed links by id; the graph itself is immutable. *)

type link_set = bool array

val no_failures : t -> link_set

(** [fail_links t links] marks exactly [links]. *)
val fail_links : t -> link list -> link_set

(** [fail_bidir t links] marks [links] and their reverse directions —
    the physical-failure model used throughout the paper. *)
val fail_bidir : t -> link list -> link_set

val failed_list : link_set -> link list

(** {2 Connectivity} *)

(** [reachable t ?failed a] marks nodes reachable from [a] over live links. *)
val reachable : t -> ?failed:link_set -> node -> bool array

(** True iff every ordered node pair is connected over live links. *)
val strongly_connected : t -> ?failed:link_set -> unit -> bool

(** [partitions_pair t failed a b] is true iff [b] is unreachable from [a]. *)
val partitions_pair : t -> link_set -> node -> node -> bool

(** Sum of capacities, a scale reference for normalization. *)
val total_capacity : t -> float

val pp : Format.formatter -> t -> unit
