(** Flow decomposition (Section 4.1 of the paper).

    A flow-representation routing can be implemented over standard MPLS by
    decomposing each commodity's link fractions into at most [|E|] weighted
    paths and signalling one LSP per path. The paper rejects this for the
    protection routing because every post-failure rescaling decomposes to a
    {e new} path set that must be re-signalled — the churn MPLS-ff avoids —
    and this module lets us quantify that argument (see the test suite and
    the ablation bench).

    Decomposition is the classic peeling procedure: repeatedly trace a
    source-to-destination path through positive-fraction links, peel off its
    bottleneck fraction, and continue; circulation (flow on cycles, e.g.
    loop slack left by an LP) is removed first and reported separately. *)

type path = { weight : float; links : Graph.link list }

val pp_path : Graph.t -> Format.formatter -> path -> unit

(** [decompose g t k] splits commodity [k] of routing [t] into weighted
    simple paths. The weights sum to the commodity's delivered fraction
    (1 for a valid total routing); the second component is the total
    circulation flow removed. At most [|E|] paths are produced. *)
val decompose : Graph.t -> Routing.t -> int -> path list * float

(** Rebuild link fractions from paths (inverse of {!decompose} up to the
    removed circulation). *)
val recompose : Graph.t -> path list -> float array

(** Number of LSPs needed to implement every commodity of [t]. *)
val total_paths : Graph.t -> Routing.t -> int

(** [path_churn g ~before ~after] — how many of [after]'s paths (per
    commodity) are not present in [before]: the LSPs that would need fresh
    signalling after a reconfiguration. Returns (new_paths, total_after). *)
val path_churn : Graph.t -> before:Routing.t -> after:Routing.t -> int * int
