module G = R3_net.Graph

let evaluate g ?failed ~weights ~pairs ~demands () =
  let failed = match failed with Some f -> f | None -> G.no_failures g in
  let routing = R3_net.Ospf.routing g ~failed ~weights ~pairs () in
  let loads = R3_net.Routing.loads g ~demands routing in
  let total = Array.fold_left ( +. ) 0.0 demands in
  let delivered =
    if total <= 0.0 then 1.0
    else begin
      let got = ref 0.0 in
      Array.iteri
        (fun k d ->
          if d > 0.0 then
            got := !got +. (d *. R3_net.Routing.delivered g routing k))
        demands;
      !got /. total
    end
  in
  { Types.loads; delivered }
