(** Flow-based optimal link detour routing — the paper's "opt" baseline.

    For a {e specific} failure scenario, solves a small LP for the jointly
    optimal detours: each failed directed link's pre-failure load is
    rerouted from its head to its tail over the surviving topology so that
    the resulting MLU is minimized. This is the best any link-based
    protection can do for that scenario, but — as the paper stresses — it
    must be recomputed per scenario, which is why it serves only as a
    bound. Failed links whose endpoints are disconnected lose their
    traffic. *)

val evaluate :
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  base:R3_net.Routing.t ->
  demands:float array ->
  unit ->
  (Types.outcome, string) result

(** Optimal post-failure MLU only (convenience). *)
val mlu :
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  base:R3_net.Routing.t ->
  demands:float array ->
  unit ->
  (float, string) result
