(** Failure-carrying packets (Lakshminarayanan et al., SIGCOMM 2007) —
    the paper's FCP baseline.

    Packets start with the pre-failure link-state map; when a packet's next
    hop (the OSPF next hop on its current map) is a failed link, the packet
    records the failure, recomputes its route from the current node, and
    continues. Reachability is guaranteed absent partitions, but paths can
    be far from capacity-aware, which is exactly the congestion behaviour
    the paper measures. Deterministic single-path forwarding with
    lowest-link-id tie-breaking. *)

val evaluate :
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  weights:float array ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  unit ->
  Types.outcome
