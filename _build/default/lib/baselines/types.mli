(** Common result shape for protection baselines. *)

type outcome = {
  loads : float array;  (** per-link traffic load after the scheme reacts *)
  delivered : float;  (** fraction of total demand delivered, in [0,1] *)
}

(** Utilization of the worst live link. *)
val bottleneck :
  R3_net.Graph.t -> ?failed:R3_net.Graph.link_set -> outcome -> float
