module G = R3_net.Graph
module Routing = R3_net.Routing

let evaluate g ~failed ~weights ~base ~demands () =
  let base_loads = Routing.loads g ~demands base in
  let loads = Array.copy base_loads in
  let total_demand = Array.fold_left ( +. ) 0.0 demands in
  let lost = ref 0.0 in
  (* Remove the failed links' loads and re-add them along the bypass. *)
  for e = 0 to G.num_links g - 1 do
    if failed.(e) && base_loads.(e) > 0.0 then begin
      loads.(e) <- 0.0;
      match
        R3_net.Spf.shortest_path g ~failed ~weights ~src:(G.src g e)
          ~dst:(G.dst g e) ()
      with
      | Some path -> List.iter (fun l -> loads.(l) <- loads.(l) +. base_loads.(e)) path
      | None -> lost := !lost +. base_loads.(e)
    end
  done;
  (* [lost] is load, not demand; convert to a conservative delivered
     fraction relative to total demand (a lost link-load unit corresponds
     to at least that much undelivered demand). *)
  let delivered =
    if total_demand <= 0.0 then 1.0
    else Float.max 0.0 (1.0 -. (!lost /. total_demand))
  in
  { Types.loads; delivered }
