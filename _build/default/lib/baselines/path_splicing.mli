(** Path Splicing (Motiwala et al., SIGCOMM 2008) — the paper's PathSplice
    baseline, with the paper's evaluation parameters: [k = 10] slices,
    [a = 0], [b = 3], and
    [Weight(a,b,i,j) = (degree i + degree j) / degree_max].

    Slice 0 uses the base weights; slice [s >= 1] perturbs each link weight
    by a factor in [1, 1 + b * Weight(i,j)] drawn deterministically from the
    slice seed. Traffic splits uniformly across slices at the ingress; when
    the slice next hop at a node is a failed link, the flow re-splits
    uniformly across the other slices whose next hop there is alive. Flow
    that exceeds the hop budget (loops between slices) is counted as lost. *)

type config = {
  slices : int;  (** k, default 10 *)
  b : float;  (** perturbation strength, default 3.0 *)
  seed : int;
}

val default_config : config

val evaluate :
  ?config:config ->
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  weights:float array ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  unit ->
  Types.outcome
