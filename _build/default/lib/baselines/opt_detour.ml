module P = R3_lp.Problem
module G = R3_net.Graph
module Routing = R3_net.Routing

let evaluate g ~failed ~base ~demands () =
  let m = G.num_links g in
  let base_loads = Routing.loads g ~demands base in
  let failed_links =
    List.filter (fun e -> base_loads.(e) > 0.0) (G.failed_list failed)
  in
  let surviving e = not failed.(e) in
  (* Commodities: failed links with positive load and connected endpoints. *)
  let routable, lost =
    List.partition
      (fun e -> (G.reachable g ~failed (G.src g e)).(G.dst g e))
      failed_links
  in
  let lp = P.create ~name:"opt-detour" () in
  let mlu = P.var lp ~lb:0.0 "MLU" in
  let vars = Hashtbl.create 64 in
  List.iter
    (fun fe ->
      let a = G.src g fe in
      for e = 0 to m - 1 do
        if surviving e && G.dst g e <> a then
          Hashtbl.replace vars (fe, e) (P.var lp ~lb:0.0 (Printf.sprintf "xi%d_%d" fe e))
      done)
    routable;
  let term fe e = Option.map (fun v -> (1.0, v)) (Hashtbl.find_opt vars (fe, e)) in
  let n = G.num_nodes g in
  List.iter
    (fun fe ->
      let a = G.src g fe and b = G.dst g fe in
      let outs = Array.to_list (G.out_links g a) |> List.filter_map (term fe) in
      P.constr lp outs P.Eq 1.0;
      for v = 0 to n - 1 do
        if v <> a && v <> b then begin
          let outs = Array.to_list (G.out_links g v) |> List.filter_map (term fe) in
          let ins =
            Array.to_list (G.in_links g v)
            |> List.filter_map (fun e ->
                   Option.map (fun (c, var) -> (-.c, var)) (term fe e))
          in
          P.constr lp (outs @ ins) P.Eq 0.0
        end
      done)
    routable;
  for e = 0 to m - 1 do
    if surviving e then begin
      let terms =
        List.filter_map
          (fun fe ->
            Option.map
              (fun v -> (base_loads.(fe), v))
              (Hashtbl.find_opt vars (fe, e)))
          routable
      in
      P.constr lp
        (((-.G.capacity g e), mlu) :: terms)
        P.Le (-.base_loads.(e))
    end
  done;
  P.minimize lp [ (1.0, mlu) ];
  Hashtbl.iter (fun _ v -> P.add_objective_term lp 1e-7 v) vars;
  match P.solve lp with
  | P.Infeasible -> Error "opt-detour: infeasible"
  | P.Unbounded -> Error "opt-detour: unbounded"
  | P.Iteration_limit -> Error "opt-detour: pivot budget exhausted"
  | P.Optimal sol ->
    let loads = Array.copy base_loads in
    List.iter (fun e -> loads.(e) <- 0.0) failed_links;
    List.iter
      (fun fe ->
        for e = 0 to m - 1 do
          match Hashtbl.find_opt vars (fe, e) with
          | Some v -> loads.(e) <- loads.(e) +. (base_loads.(fe) *. sol.P.value v)
          | None -> ()
        done)
      routable;
    let total = Array.fold_left ( +. ) 0.0 demands in
    let lost_load = List.fold_left (fun a e -> a +. base_loads.(e)) 0.0 lost in
    let delivered =
      if total <= 0.0 then 1.0 else Float.max 0.0 (1.0 -. (lost_load /. total))
    in
    Ok { Types.loads; delivered }

let mlu g ~failed ~base ~demands () =
  match evaluate g ~failed ~base ~demands () with
  | Ok outcome -> Ok (Types.bottleneck g ~failed outcome)
  | Error _ as e -> e
