type outcome = { loads : float array; delivered : float }

let bottleneck g ?failed outcome =
  let failed = match failed with Some f -> f | None -> R3_net.Graph.no_failures g in
  let worst = ref 0.0 in
  for e = 0 to R3_net.Graph.num_links g - 1 do
    if not failed.(e) then begin
      let u = outcome.loads.(e) /. R3_net.Graph.capacity g e in
      if u > !worst then worst := u
    end
  done;
  !worst
