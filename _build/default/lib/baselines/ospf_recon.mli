(** OSPF reconvergence: after failures, SPF is simply recomputed on the
    surviving topology with unchanged weights (the paper's OSPF+recon).
    Demand whose destination became unreachable is lost. *)

val evaluate :
  R3_net.Graph.t ->
  ?failed:R3_net.Graph.link_set ->
  weights:float array ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  unit ->
  Types.outcome
