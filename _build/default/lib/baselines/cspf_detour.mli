(** OSPF with CSPF fast-reroute (the paper's OSPF+CSPF-detour).

    The base routing stays in place; the traffic that crossed each failed
    link is tunneled along the constrained shortest path from the link's
    head to its tail computed on the surviving topology — the standard
    MPLS FRR bypass. Traffic of failed links whose endpoints are
    disconnected is lost. *)

val evaluate :
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  weights:float array ->
  base:R3_net.Routing.t ->
  demands:float array ->
  unit ->
  Types.outcome
