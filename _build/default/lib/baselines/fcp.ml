module G = R3_net.Graph

let evaluate g ~failed ~weights ~pairs ~demands () =
  let m = G.num_links g in
  let loads = Array.make m 0.0 in
  let total = Array.fold_left ( +. ) 0.0 demands in
  let delivered = ref 0.0 in
  (* Distance tables keyed by (destination, known failure set): packets
     sharing knowledge share routes. *)
  let cache = Hashtbl.create 64 in
  let dist_to b known known_list =
    let key = (b, known_list) in
    match Hashtbl.find_opt cache key with
    | Some d -> d
    | None ->
      let d = R3_net.Spf.distances_to g ~failed:known ~weights ~dst:b () in
      Hashtbl.replace cache key d;
      d
  in
  let tol = 1e-9 in
  Array.iteri
    (fun kq (a, b) ->
      let d = demands.(kq) in
      if d > 0.0 then begin
        (* One representative packet per OD pair; its (deterministic) path
           carries the whole demand. *)
        let known = Array.make m false in
        let known_list = ref [] in
        let record e =
          let mark l =
            if not known.(l) then begin
              known.(l) <- true;
              known_list := List.sort Int.compare (l :: !known_list)
            end
          in
          mark e;
          match G.reverse_link g e with Some r -> mark r | None -> ()
        in
        let max_steps = 4 * (G.num_nodes g + (2 * m)) in
        let rec walk v steps path =
          if v = b then Some path
          else if steps > max_steps then None
          else begin
            let dist = dist_to b (Array.copy known) !known_list in
            if dist.(v) = infinity then None
            else begin
              (* Lowest-id outgoing link on the shortest-path DAG. *)
              let next = ref None in
              Array.iter
                (fun e ->
                  if !next = None && not known.(e) then begin
                    let w = G.dst g e in
                    if
                      dist.(w) < infinity
                      && Float.abs (weights.(e) +. dist.(w) -. dist.(v))
                         <= tol *. (1.0 +. dist.(v))
                    then next := Some e
                  end)
                (G.out_links g v);
              match !next with
              | None -> None
              | Some e ->
                if failed.(e) then begin
                  (* FCP: record the failure and reroute from here. *)
                  record e;
                  walk v (steps + 1) path
                end
                else walk (G.dst g e) (steps + 1) (e :: path)
            end
          end
        in
        match walk a 0 [] with
        | Some path ->
          List.iter (fun e -> loads.(e) <- loads.(e) +. d) path;
          delivered := !delivered +. d
        | None -> ()
      end)
    pairs;
  let delivered = if total <= 0.0 then 1.0 else !delivered /. total in
  { Types.loads; delivered }
