module G = R3_net.Graph

type config = { slices : int; b : float; seed : int }

let default_config = { slices = 10; b = 3.0; seed = 97 }

(* Degree-based perturbation from the paper: Weight(a,b,i,j) =
   (degree i + degree j) / degree_max, with a = 0. *)
let slice_weights cfg g base =
  let n = G.num_nodes g in
  let degree = Array.make n 0 in
  for e = 0 to G.num_links g - 1 do
    degree.(G.src g e) <- degree.(G.src g e) + 1
  done;
  let deg_max = Array.fold_left Int.max 1 degree in
  let rng = R3_util.Prng.create cfg.seed in
  List.init cfg.slices (fun s ->
      if s = 0 then Array.copy base
      else
        Array.mapi
          (fun e w ->
            let i = G.src g e and j = G.dst g e in
            let wt = float_of_int (degree.(i) + degree.(j)) /. float_of_int deg_max in
            (* Multiplier drawn from [a, b * wt] with a = 0: factors below 1
               let slices genuinely reorder paths (a floor keeps weights
               positive). *)
            let u = R3_util.Prng.float rng 1.0 in
            w *. Float.max 0.5 (u *. cfg.b *. wt))
          base)

(* Per-slice, per-destination single next hop (lowest link id on the
   shortest-path DAG of the slice, computed on the original topology). *)
let next_hop_tables g slice_ws ~dst =
  List.map
    (fun weights ->
      let dist = R3_net.Spf.distances_to g ~weights ~dst () in
      Array.init (G.num_nodes g) (fun v ->
          if v = dst || dist.(v) = infinity then None
          else begin
            let best = ref None in
            Array.iter
              (fun e ->
                if !best = None then begin
                  let w = G.dst g e in
                  if
                    dist.(w) < infinity
                    && Float.abs (weights.(e) +. dist.(w) -. dist.(v))
                       <= 1e-9 *. (1.0 +. dist.(v))
                  then best := Some e
                end)
              (G.out_links g v);
            !best
          end))
    slice_ws

let evaluate ?(config = default_config) g ~failed ~weights ~pairs ~demands () =
  let m = G.num_links g in
  let loads = Array.make m 0.0 in
  let total = Array.fold_left ( +. ) 0.0 demands in
  let delivered = ref 0.0 in
  let slice_ws = slice_weights config g weights in
  (* Group OD pairs by destination: next-hop tables are per destination. *)
  let by_dst = Hashtbl.create 16 in
  Array.iteri
    (fun k (_, b) ->
      let l = Option.value (Hashtbl.find_opt by_dst b) ~default:[] in
      Hashtbl.replace by_dst b (k :: l))
    pairs;
  let max_hops = 10 * G.num_nodes g in
  let min_flow = 1e-9 in
  Hashtbl.iter
    (fun b ks ->
      let tables = next_hop_tables g slice_ws ~dst:b in
      let tables = Array.of_list tables in
      let nslices = Array.length tables in
      let alive_hop s v =
        match tables.(s).(v) with
        | Some e when not failed.(e) -> Some e
        | Some _ | None -> None
      in
      List.iter
        (fun k ->
          let a, _ = pairs.(k) in
          let d = demands.(k) in
          if d > 0.0 then begin
            (* Flow propagation over (node, slice) states, level by level. *)
            let frontier = Hashtbl.create 16 in
            Hashtbl.replace frontier (a, 0) d;
            let hops = ref 0 in
            while Hashtbl.length frontier > 0 && !hops < max_hops do
              incr hops;
              let next = Hashtbl.create 16 in
              let push key flow =
                let prev = Option.value (Hashtbl.find_opt next key) ~default:0.0 in
                Hashtbl.replace next key (prev +. flow)
              in
              Hashtbl.iter
                (fun (v, s) flow ->
                  if flow >= min_flow then begin
                    if v = b then delivered := !delivered +. flow
                    else begin
                      match alive_hop s v with
                      | Some e ->
                        loads.(e) <- loads.(e) +. flow;
                        push (G.dst g e, s) flow
                      | None ->
                        (* Splice: uniform split across other slices with a
                           live next hop here. *)
                        let alts =
                          List.init nslices (fun s' -> s')
                          |> List.filter (fun s' -> s' <> s && alive_hop s' v <> None)
                        in
                        let n_alt = List.length alts in
                        if n_alt > 0 then begin
                          let share = flow /. float_of_int n_alt in
                          List.iter
                            (fun s' ->
                              match alive_hop s' v with
                              | Some e ->
                                loads.(e) <- loads.(e) +. share;
                                push (G.dst g e, s') share
                              | None -> ())
                            alts
                        end
                    end
                  end)
                frontier;
              Hashtbl.reset frontier;
              Hashtbl.iter (fun k v -> Hashtbl.replace frontier k v) next
            done;
            (* Anything still in flight at the hop budget: delivered if at
               the destination, lost otherwise. *)
            Hashtbl.iter
              (fun (v, _) flow -> if v = b then delivered := !delivered +. flow)
              frontier
          end)
        ks)
    by_dst;
  let delivered = if total <= 0.0 then 1.0 else !delivered /. total in
  { Types.loads; delivered }
