lib/baselines/types.mli: R3_net
