lib/baselines/cspf_detour.mli: R3_net Types
