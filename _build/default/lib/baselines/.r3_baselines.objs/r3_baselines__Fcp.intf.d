lib/baselines/fcp.mli: R3_net Types
