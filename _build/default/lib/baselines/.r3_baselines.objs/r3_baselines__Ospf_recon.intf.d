lib/baselines/ospf_recon.mli: R3_net Types
