lib/baselines/opt_detour.ml: Array Float Hashtbl List Option Printf R3_lp R3_net Types
