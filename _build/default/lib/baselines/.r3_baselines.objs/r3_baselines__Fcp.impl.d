lib/baselines/fcp.ml: Array Float Hashtbl Int List R3_net Types
