lib/baselines/types.ml: Array R3_net
