lib/baselines/cspf_detour.ml: Array Float List R3_net Types
