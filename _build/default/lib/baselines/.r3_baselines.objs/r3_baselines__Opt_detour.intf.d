lib/baselines/opt_detour.mli: R3_net Types
