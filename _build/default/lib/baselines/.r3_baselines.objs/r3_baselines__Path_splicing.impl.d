lib/baselines/path_splicing.ml: Array Float Hashtbl Int List Option R3_net R3_util Types
