lib/baselines/ospf_recon.ml: Array R3_net Types
