lib/baselines/path_splicing.mli: R3_net Types
