(** Deterministic pseudo-random number generator (SplitMix64).

    All workload generation in this repository goes through this module so
    that every experiment is reproducible bit-for-bit across runs and
    machines, independently of the OCaml stdlib [Random] implementation. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] returns an independent generator with the same state. *)
val copy : t -> t

(** [split t] derives a new independent generator and advances [t]. *)
val split : t -> t

(** Next raw 64-bit value (as an OCaml [int], so 63 bits retained). *)
val bits : t -> int

(** [int t n] is uniform in [0, n). Raises [Invalid_argument] if [n <= 0]. *)
val int : t -> int -> int

(** [float t x] is uniform in [0, x). *)
val float : t -> float -> float

(** Uniform in [lo, hi). *)
val uniform : t -> float -> float -> float

(** Standard normal via Box–Muller. *)
val gaussian : t -> float

(** Exponential with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Pareto with shape [alpha] and scale [xmin] (heavy-tailed flow sizes). *)
val pareto : t -> alpha:float -> xmin:float -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [sample t k arr] draws [k] distinct elements uniformly (reservoir).
    Raises [Invalid_argument] if [k > Array.length arr]. *)
val sample : t -> int -> 'a array -> 'a array

(** [choose t arr] draws one element uniformly. *)
val choose : t -> 'a array -> 'a
