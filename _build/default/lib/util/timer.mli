(** Wall-clock timing helpers for the benchmark harness. *)

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] runs [f ()] for effects and returns the elapsed seconds. *)
val time_only : (unit -> unit) -> float
