type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 core step: advance by the golden gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Keep 62 bits so the result is always a nonnegative OCaml int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod n in
    if r - v > max_int - n + 1 then draw () else v
  in
  draw ()

let float t x =
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. x

let uniform t lo hi = lo +. float t (hi -. lo)

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let pareto t ~alpha ~xmin =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  xmin /. (nonzero () ** (1.0 /. alpha))

let bool t p = float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Prng.sample: k exceeds array length";
  if k = n then (
    let out = Array.copy arr in
    shuffle t out;
    out)
  else begin
    let out = Array.sub arr 0 k in
    for i = k to n - 1 do
      let j = int t (i + 1) in
      if j < k then out.(j) <- arr.(i)
    done;
    out
  end

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))
