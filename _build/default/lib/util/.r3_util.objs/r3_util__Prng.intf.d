lib/util/prng.mli:
