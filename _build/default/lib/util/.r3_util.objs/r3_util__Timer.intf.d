lib/util/timer.mli:
