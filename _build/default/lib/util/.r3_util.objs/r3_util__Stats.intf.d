lib/util/stats.mli:
