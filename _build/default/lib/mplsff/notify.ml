module G = R3_net.Graph

type config = { detection_ms : float; per_hop_ms : float }

let default_config = { detection_ms = 30.0; per_hop_ms = 1.0 }

let arrival_times ?(config = default_config) g ~failed ~link =
  let weights =
    Array.init (G.num_links g) (fun e ->
        Float.max 1e-6 (G.delay g e +. config.per_hop_ms))
  in
  let head = G.src g link in
  let dist = R3_net.Spf.distances g ~failed ~weights ~src:head () in
  Array.map (fun d -> config.detection_ms +. d) dist

let convergence_time ?config g ~failed ~link =
  let times = arrival_times ?config g ~failed ~link in
  Array.fold_left
    (fun acc t -> if t < infinity then Float.max acc t else acc)
    0.0 times
