lib/mplsff/flow_hash.ml: Array Int64
