lib/mplsff/forward.mli: Fib Flow_hash Hashtbl R3_net R3_util
