lib/mplsff/storage.mli: Fib Format R3_net
