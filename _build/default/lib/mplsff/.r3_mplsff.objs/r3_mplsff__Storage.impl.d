lib/mplsff/storage.ml: Fib Format Printf R3_net
