lib/mplsff/flow_hash.mli:
