lib/mplsff/notify.mli: R3_net
