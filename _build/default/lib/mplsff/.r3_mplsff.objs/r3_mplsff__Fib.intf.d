lib/mplsff/fib.mli: Hashtbl R3_net
