lib/mplsff/forward.ml: Array Fib Flow_hash Hashtbl Int List R3_net R3_util
