lib/mplsff/fib.ml: Array Hashtbl Int List R3_net
