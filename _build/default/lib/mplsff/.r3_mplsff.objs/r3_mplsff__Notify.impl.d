lib/mplsff/notify.ml: Array Float R3_net
