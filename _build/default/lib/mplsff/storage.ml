type report = {
  ilm_entries : int;
  nhlfe_entries : int;
  fib_bytes : int;
  rib_bytes : int;
}

let ilm_entry_bytes = 32
let nhlfe_entry_bytes = 96
let rib_entry_bytes = 104
let fib_overhead_bytes = 256

let of_fib fib =
  let ilm, nhlfe = Fib.max_table_sizes fib in
  let m = R3_net.Graph.num_links fib.Fib.graph in
  {
    ilm_entries = ilm;
    nhlfe_entries = nhlfe;
    fib_bytes = (ilm * ilm_entry_bytes) + (nhlfe * nhlfe_entry_bytes) + fib_overhead_bytes;
    rib_bytes = m * m * rib_entry_bytes;
  }

let of_protection g p = of_fib (Fib.of_protection g p)

let human_bytes b =
  if b >= 1_048_576 then Printf.sprintf "%.1f MB" (float_of_int b /. 1_048_576.0)
  else if b >= 1_024 then Printf.sprintf "%.1f KB" (float_of_int b /. 1_024.0)
  else Printf.sprintf "%d B" b

let pp ppf r =
  Format.fprintf ppf "ILM %d, NHLFE %d, FIB %s, RIB %s" r.ilm_entries
    r.nhlfe_entries (human_bytes r.fib_bytes) (human_bytes r.rib_bytes)
