(** Packet-level MPLS-ff forwarding with label stacking (Section 4.3).

    A packet follows the base routing of its OD pair hop by hop; at each
    router the next hop is chosen by the router-salted flow hash over the
    base splitting ratios. When the chosen next-hop link has failed, the
    head router pushes the link's protection label and the packet follows
    the label's NHLFE ratios until the protected link's tail pops the
    label (Figure 2's example). A second failure met while protected
    pushes a second label — the transient stacking the paper describes;
    after routers rescale [p] the ratios avoid failed links and stacks
    stay shallow. *)

type network = {
  graph : R3_net.Graph.t;
  base : R3_net.Routing.t;  (** base routing, one commodity per OD pair *)
  pair_index : (R3_net.Graph.node * R3_net.Graph.node, int) Hashtbl.t;
  fib : Fib.t;
  failed : R3_net.Graph.link_set;
  hash_seed : int;
}

val make :
  R3_net.Graph.t ->
  base:R3_net.Routing.t ->
  fib:Fib.t ->
  ?failed:R3_net.Graph.link_set ->
  ?hash_seed:int ->
  unit ->
  network

(** Outcome of forwarding one packet. *)
type trace = {
  links : R3_net.Graph.link list;  (** traversed links, in order *)
  delivered : bool;
  max_stack_depth : int;
  rtt_ms : float;  (** round-trip propagation delay of the path taken *)
}

(** [forward net ~flow ~src ~dst] walks one packet. [Error] cases: no
    route, hop budget exceeded, stack overflow. *)
val forward :
  network ->
  flow:Flow_hash.flow ->
  src:R3_net.Graph.node ->
  dst:R3_net.Graph.node ->
  (trace, string) result

(** Empirical split check helper: forward [count] random flows of one OD
    pair and return per-link traversal frequencies (fraction of flows). *)
val split_frequencies :
  network ->
  rng:R3_util.Prng.t ->
  count:int ->
  src:R3_net.Graph.node ->
  dst:R3_net.Graph.node ->
  float array
