(** Failure detection and notification flooding (Section 4.3).

    A failure is detected at the failed link's head by layer-2 interface
    monitoring after [detection_ms]; the notification (ICMP type 42 in the
    prototype) floods over surviving links, taking per-link propagation
    delay plus [per_hop_ms] processing. Routers rescale their local [p]
    on arrival; Theorem 3 makes the arrival order irrelevant. *)

type config = {
  detection_ms : float;  (** layer-2 detection latency (default 30 ms) *)
  per_hop_ms : float;  (** per-router flooding overhead (default 1 ms) *)
}

val default_config : config

(** [arrival_times ?config g ~failed ~link] gives, per router, the absolute
    time (ms, from the failure instant) at which the notification for
    [link] arrives; [infinity] for routers partitioned from the detector.
    The head router itself gets [detection_ms]. *)
val arrival_times :
  ?config:config ->
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  link:R3_net.Graph.link ->
  float array

(** Time by which every (reachable) router has been notified. *)
val convergence_time :
  ?config:config ->
  R3_net.Graph.t ->
  failed:R3_net.Graph.link_set ->
  link:R3_net.Graph.link ->
  float
