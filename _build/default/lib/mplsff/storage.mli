(** Router storage accounting for Table 3.

    Cost model (bytes), chosen to match the magnitudes the paper reports
    for its Linux prototype:
    - an ILM entry costs 32 B, an NHLFE 96 B; the FIB of a router is the
      sum over its tables plus a 256 B fixed overhead;
    - the RIB stores the router's local copy of the full protection routing
      [p] — one entry per (protected link, link) pair at 104 B (label, link
      ids, splitting ratio, bookkeeping), i.e. [|E|^2 * 104] B.

    With these constants Abilene comes to < 9 KB FIB and < 83 KB RIB and
    UUNet to < 11 MB RIB, the paper's Table 3 envelope. *)

type report = {
  ilm_entries : int;  (** largest ILM across routers *)
  nhlfe_entries : int;  (** largest NHLFE table across routers *)
  fib_bytes : int;  (** FIB of the largest router *)
  rib_bytes : int;  (** per-router protection RIB *)
}

val ilm_entry_bytes : int
val nhlfe_entry_bytes : int
val rib_entry_bytes : int

(** Account a built forwarding state. *)
val of_fib : Fib.t -> report

(** Account a protection plan directly (builds the FIB internally). *)
val of_protection : R3_net.Graph.t -> R3_net.Routing.t -> report

val pp : Format.formatter -> report -> unit
