type flow = { src_ip : int; dst_ip : int; src_port : int; dst_port : int }

let mix64 z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 33)) 2)

let router_salt ~seed ~router =
  (mix64 ((seed * 1_000_003) + router), mix64 ((router * 69_069) + seed + 7))

let hash6 ~salt flow =
  let s1, s2 = salt in
  let h =
    mix64
      (flow.src_ip lxor mix64 (flow.dst_ip + s1)
      lxor mix64 ((flow.src_port * 65_537) + flow.dst_port + s2))
  in
  h land 63

let pick ~salt flow weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Flow_hash.pick: no weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Flow_hash.pick: zero weights";
  let h = float_of_int (hash6 ~salt flow) /. 64.0 *. total in
  let rec find i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if h < acc then i else find (i + 1) acc
    end
  in
  find 0 0.0
