(** Per-flow consistent hashing for next-hop selection (Section 4.2).

    Two properties required by the paper:
    - packets of the same flow hash identically at the same router (no
      reordering);
    - hashes of one flow at different routers are independent (a 96-bit
      router-private salt enters the hash), so splits do not skew
      downstream. The output is a 6-bit integer, as in the prototype. *)

type flow = {
  src_ip : int;
  dst_ip : int;
  src_port : int;
  dst_port : int;
}

(** Deterministic 96-bit-equivalent router salt derived from the router id
    and a network-wide seed. *)
val router_salt : seed:int -> router:int -> int * int

(** [hash6 ~salt flow] in [0, 64). *)
val hash6 : salt:int * int -> flow -> int

(** Pick an index from cumulative split weights: [pick ~salt flow weights]
    returns the NHLFE index selected by the flow's hash, distributing flows
    across indices proportionally to [weights]. Raises [Invalid_argument]
    on an empty or all-zero weight vector. *)
val pick : salt:int * int -> flow -> float array -> int
