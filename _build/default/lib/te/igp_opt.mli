(** IGP (OSPF/IS-IS) link-weight optimization by local search, in the
    spirit of Fortz–Thorup [13], which the paper uses to build its
    optimized-OSPF baselines.

    The search minimizes a piecewise-linear congestion cost (or optionally
    the plain MLU) of the ECMP routing induced by the weights, over one or
    several traffic matrices, by single-weight perturbations with a
    deterministic PRNG. *)

type objective = Cost | Mlu

type config = {
  iterations : int;  (** candidate moves to try (default 600) *)
  max_weight : int;  (** weight range is [1, max_weight] (default 20) *)
  objective : objective;
  seed : int;
}

val default_config : config

(** [optimize ?config g tms] returns optimized weights.
    Starts from inverse-capacity weights. *)
val optimize : ?config:config -> R3_net.Graph.t -> R3_net.Traffic.t list -> float array

(** The Fortz–Thorup piecewise-linear link cost of a load/capacity point,
    exposed for tests: convex, slope 1 below 1/3 utilization rising to 5000
    above 110%. *)
val link_cost : load:float -> capacity:float -> float

(** Total cost of a routing for a TM under the given weights. *)
val routing_cost : R3_net.Graph.t -> weights:float array -> R3_net.Traffic.t -> float
