module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Ospf = R3_net.Ospf
module Routing = R3_net.Routing

type objective = Cost | Mlu

type config = { iterations : int; max_weight : int; objective : objective; seed : int }

let default_config = { iterations = 600; max_weight = 20; objective = Cost; seed = 1 }

(* Fortz-Thorup piecewise-linear increasing cost Phi(load/cap). *)
let link_cost ~load ~capacity =
  let u = load /. capacity in
  let seg =
    [ (1.0 /. 3.0, 1.0); (2.0 /. 3.0, 3.0); (0.9, 10.0); (1.0, 70.0); (1.1, 500.0) ]
  in
  (* Integrate the slope pieces up to u; final slope 5000 beyond 1.1. *)
  let rec go u_prev cost = function
    | [] -> cost +. (Float.max 0.0 (u -. u_prev) *. 5000.0 *. capacity)
    | (brk, slope) :: rest ->
      if u <= brk then cost +. (Float.max 0.0 (u -. u_prev) *. slope *. capacity)
      else go brk (cost +. ((brk -. u_prev) *. slope *. capacity)) rest
  in
  go 0.0 0.0 seg

let tm_cost g weights objective tm =
  let pairs, demands = Traffic.commodities tm in
  let routing = Ospf.routing g ~weights ~pairs () in
  let loads = Routing.loads g ~demands routing in
  match objective with
  | Mlu -> Routing.mlu g ~loads
  | Cost ->
    let acc = ref 0.0 in
    for e = 0 to G.num_links g - 1 do
      acc := !acc +. link_cost ~load:loads.(e) ~capacity:(G.capacity g e)
    done;
    !acc

let routing_cost g ~weights tm = tm_cost g weights Cost tm

let total_cost g weights objective tms =
  List.fold_left (fun a tm -> a +. tm_cost g weights objective tm) 0.0 tms

let optimize ?(config = default_config) g tms =
  let m = G.num_links g in
  let rng = R3_util.Prng.create config.seed in
  (* Start from inverse-capacity weights quantized into [1, max_weight]. *)
  let inv = Ospf.inv_cap_weights g in
  let inv_max = Array.fold_left Float.max 1.0 inv in
  let weights =
    Array.map
      (fun w ->
        let q = Float.round (w /. inv_max *. float_of_int config.max_weight) in
        Float.max 1.0 q)
      inv
  in
  let best_cost = ref (total_cost g weights config.objective tms) in
  for _ = 1 to config.iterations do
    let e = R3_util.Prng.int rng m in
    let old_w = weights.(e) in
    let new_w = float_of_int (1 + R3_util.Prng.int rng config.max_weight) in
    if new_w <> old_w then begin
      (* Symmetric change keeps forward/reverse paths aligned, which is how
         operators configure IGP metrics. *)
      let rev = G.reverse_link g e in
      let old_rev = Option.map (fun r -> weights.(r)) rev in
      weights.(e) <- new_w;
      (match rev with Some r -> weights.(r) <- new_w | None -> ());
      let cost = total_cost g weights config.objective tms in
      if cost < !best_cost -. 1e-12 then best_cost := cost
      else begin
        weights.(e) <- old_w;
        match (rev, old_rev) with
        | Some r, Some w -> weights.(r) <- w
        | _ -> ()
      end
    end
  done;
  weights
