lib/te/igp_opt.ml: Array Float List Option R3_net R3_util
