lib/te/igp_opt.mli: R3_net
