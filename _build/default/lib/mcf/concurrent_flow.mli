(** Approximate maximum concurrent flow / minimum MLU.

    Garg–Könemann / Fleischer multiplicative-weights FPTAS: repeatedly route
    each commodity along its current shortest path under exponential link
    lengths. The maximum concurrent throughput λ* satisfies
    [min-MLU = 1 / λ*], so this gives a (1+ε)-approximate optimal MLU — the
    "optimal flow-based routing" normalizer that the paper's performance
    ratio divides by, computed once per failure scenario. An exact LP per
    scenario would be prohibitively slow at that cadence (DESIGN.md §5). *)

type result = {
  mlu : float;  (** approximately optimal maximum link utilization *)
  iterations : int;  (** shortest-path computations performed *)
}

(** [min_mlu g ?failed ?epsilon ~pairs ~demands ()] ignores commodities made
    unreachable by [failed] (as the paper's optimal baseline does after a
    partition). [epsilon] defaults to 0.05. Returns [mlu = 0] when no
    demand is routable. *)
val min_mlu :
  R3_net.Graph.t ->
  ?failed:R3_net.Graph.link_set ->
  ?epsilon:float ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  unit ->
  result

(** As {!min_mlu}, additionally extracting the (1+ε)-optimal fractional
    routing accumulated by the algorithm — a cheap near-optimal flow-based
    base routing (used as the MPLS-ff base where the joint LP (7) exceeds
    the simplex's practical range; see DESIGN.md §5). Unreachable or
    zero-demand commodities get all-zero rows. *)
val min_mlu_routing :
  R3_net.Graph.t ->
  ?failed:R3_net.Graph.link_set ->
  ?epsilon:float ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  unit ->
  result * R3_net.Routing.t

(** Exact min-MLU via the LP substrate (routing variables per commodity).
    Exponentially cleaner reference for tests and for small instances;
    do not call on large topologies. *)
val min_mlu_exact :
  R3_net.Graph.t ->
  ?failed:R3_net.Graph.link_set ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  unit ->
  (float * R3_net.Routing.t, string) Stdlib.result
