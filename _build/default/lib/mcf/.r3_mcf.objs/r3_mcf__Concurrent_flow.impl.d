lib/mcf/concurrent_flow.ml: Array Float Hashtbl List Option Printf R3_lp R3_net
