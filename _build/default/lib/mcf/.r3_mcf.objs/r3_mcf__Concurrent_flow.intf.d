lib/mcf/concurrent_flow.mli: R3_net Stdlib
