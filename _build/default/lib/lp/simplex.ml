type cmp = Le | Ge | Eq

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit

type outcome = {
  status : status;
  x : float array;
  objective : float;
  pivots : int;
}

let eps = 1e-9
let feas_tol = 1e-7

(* Mutable solver state. The tableau stores, for each active row, the full
   dense row over [width] columns (structural + slack + artificial). Two
   reduced-cost rows are maintained simultaneously so that phase 2 can start
   immediately once phase 1 ends. *)
type state = {
  m : int;
  width : int;
  n_struct : int;
  n_art : int;  (* artificial columns occupy [width - n_art, width) *)
  tab : float array array;
  b : float array;
  basis : int array;
  active : bool array;
  cost1 : float array;  (* phase-1 reduced costs *)
  cost2 : float array;  (* phase-2 reduced costs *)
  devex : float array;  (* Devex reference weights for pricing *)
  mutable obj1 : float;  (* phase-1 objective (sum of artificials) *)
  mutable obj2 : float;  (* phase-2 objective (c . x) *)
  mutable pivots : int;
  mutable degenerate_run : int;
}

let is_artificial st j = j >= st.width - st.n_art

(* Pivot on (row [ip], column [jp]): normalize the pivot row, eliminate the
   column from every other active row and from both cost rows. *)
let pivot st ip jp =
  let tab = st.tab and b = st.b in
  let prow = tab.(ip) in
  let piv = prow.(jp) in
  let inv = 1.0 /. piv in
  let width = st.width in
  for j = 0 to width - 1 do
    Array.unsafe_set prow j (Array.unsafe_get prow j *. inv)
  done;
  prow.(jp) <- 1.0;
  b.(ip) <- b.(ip) *. inv;
  let brow = b.(ip) in
  for i = 0 to st.m - 1 do
    if i <> ip && st.active.(i) then begin
      let row = Array.unsafe_get tab i in
      let factor = Array.unsafe_get row jp in
      if Float.abs factor > 1e-13 then begin
        for j = 0 to width - 1 do
          Array.unsafe_set row j
            (Array.unsafe_get row j -. (factor *. Array.unsafe_get prow j))
        done;
        row.(jp) <- 0.0;
        b.(i) <- b.(i) -. (factor *. brow);
        if b.(i) < 0.0 && b.(i) > -1e-11 then b.(i) <- 0.0
      end
    end
  done;
  let eliminate cost =
    let factor = cost.(jp) in
    if Float.abs factor > 1e-13 then begin
      for j = 0 to width - 1 do
        Array.unsafe_set cost j
          (Array.unsafe_get cost j -. (factor *. Array.unsafe_get prow j))
      done;
      cost.(jp) <- 0.0
    end;
    factor
  in
  let f1 = eliminate st.cost1 in
  st.obj1 <- st.obj1 +. (f1 *. brow);
  let f2 = eliminate st.cost2 in
  st.obj2 <- st.obj2 +. (f2 *. brow);
  (* Devex weight update over the (normalized) pivot row. *)
  let wq = Float.max st.devex.(jp) 1.0 in
  for j = 0 to width - 1 do
    let a = Array.unsafe_get prow j in
    if a <> 0.0 then begin
      let cand = a *. a *. wq in
      if cand > Array.unsafe_get st.devex j then Array.unsafe_set st.devex j cand
    end
  done;
  st.devex.(jp) <- Float.max (wq /. (piv *. piv)) 1.0;
  (* Reset the reference framework when weights blow up. *)
  if st.devex.(jp) > 1e10 || wq > 1e10 then Array.fill st.devex 0 width 1.0;
  st.basis.(ip) <- jp;
  st.pivots <- st.pivots + 1

(* Entering column: Dantzig (most negative reduced cost), switching to
   Bland's rule (lowest eligible index) after a long degenerate run.
   [allow] filters columns (artificials are barred in phase 2). *)
let entering st cost ~allow =
  if st.degenerate_run > 100 then begin
    let rec first j =
      if j >= st.width then None
      else if cost.(j) < -.eps && allow j then Some j
      else first (j + 1)
    in
    first 0
  end
  else begin
    (* Devex pricing: maximize d_j^2 / w_j over eligible columns. *)
    let best = ref (-1) and best_score = ref 0.0 in
    for j = 0 to st.width - 1 do
      let c = Array.unsafe_get cost j in
      if c < -.eps && allow j then begin
        let score = c *. c /. Array.unsafe_get st.devex j in
        if score > !best_score then begin
          best := j;
          best_score := score
        end
      end
    done;
    if !best < 0 then None else Some !best
  end

(* Leaving row for entering column [jp]: minimum ratio test; among near-tied
   ratios prefer the largest pivot element for numerical stability, breaking
   remaining ties by smallest basis index (anti-cycling aid). *)
let leaving st jp =
  let best = ref (-1) and best_ratio = ref infinity and best_piv = ref 0.0 in
  for i = 0 to st.m - 1 do
    if st.active.(i) then begin
      let a = st.tab.(i).(jp) in
      if a > eps then begin
        let ratio = st.b.(i) /. a in
        let improves =
          ratio < !best_ratio -. 1e-10
          || (ratio < !best_ratio +. 1e-10
              && (a > !best_piv +. 1e-12
                  || (Float.abs (a -. !best_piv) <= 1e-12
                      && !best >= 0
                      && st.basis.(i) < st.basis.(!best))))
        in
        if improves then begin
          best := i;
          best_ratio := ratio;
          best_piv := a
        end
      end
    end
  done;
  if !best < 0 then None else Some (!best, !best_ratio)

type phase_end = Phase_optimal | Phase_unbounded | Phase_limit

let run_phase st cost ~allow ~max_pivots =
  let rec loop () =
    if st.pivots >= max_pivots then Phase_limit
    else begin
      match entering st cost ~allow with
      | None -> Phase_optimal
      | Some jp -> begin
          match leaving st jp with
          | None -> Phase_unbounded
          | Some (ip, ratio) ->
            if ratio < 1e-10 then
              st.degenerate_run <- st.degenerate_run + 1
            else st.degenerate_run <- 0;
            pivot st ip jp;
            loop ()
        end
    end
  in
  loop ()

(* After phase 1, no artificial variable may remain basic with a nonzero
   value. Basic artificials at zero are pivoted out on any usable column;
   if the whole row is zero over real columns the constraint was redundant
   and the row is deactivated. *)
let purge_artificials st =
  for i = 0 to st.m - 1 do
    if st.active.(i) && is_artificial st st.basis.(i) then begin
      let row = st.tab.(i) in
      let jp = ref (-1) in
      let j = ref 0 in
      let real_width = st.width - st.n_art in
      while !jp < 0 && !j < real_width do
        if Float.abs row.(!j) > 1e-7 then jp := !j;
        incr j
      done;
      if !jp >= 0 then pivot st i !jp else st.active.(i) <- false
    end
  done

let solve ?max_pivots ~obj ~rows ~cmps ~rhs () =
  let n = Array.length obj in
  let m = Array.length rows in
  if Array.length cmps <> m || Array.length rhs <> m then
    invalid_arg "Simplex.solve: rows/cmps/rhs length mismatch";
  (* Normalize every row: scale by max |coeff|, then flip sign so rhs >= 0. *)
  let scaled_rows = Array.make m ([||], [||]) in
  let cmps = Array.copy cmps in
  let b0 = Array.copy rhs in
  let n_slack = ref 0 in
  for i = 0 to m - 1 do
    let idx, coef = rows.(i) in
    let coef = Array.copy coef in
    let scale = Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 coef in
    let scale = if scale > 0.0 then scale else 1.0 in
    let flip = b0.(i) /. scale < 0.0 in
    let k = if flip then -1.0 /. scale else 1.0 /. scale in
    Array.iteri (fun t c -> coef.(t) <- c *. k) coef;
    b0.(i) <- b0.(i) *. k;
    if flip then
      cmps.(i) <- (match cmps.(i) with Le -> Ge | Ge -> Le | Eq -> Eq);
    scaled_rows.(i) <- (idx, coef);
    (match cmps.(i) with Le | Ge -> incr n_slack | Eq -> ())
  done;
  (* A row needs an artificial unless its (+1) slack can start basic. *)
  let needs_art = Array.map (fun c -> c <> Le) cmps in
  let n_art = Array.fold_left (fun a v -> if v then a + 1 else a) 0 needs_art in
  let width = n + !n_slack + n_art in
  let st =
    {
      m;
      width;
      n_struct = n;
      n_art;
      tab = Array.init m (fun _ -> Array.make width 0.0);
      b = b0;
      basis = Array.make m (-1);
      active = Array.make m true;
      cost1 = Array.make width 0.0;
      cost2 = Array.make width 0.0;
      devex = Array.make width 1.0;
      obj1 = 0.0;
      obj2 = 0.0;
      pivots = 0;
      degenerate_run = 0;
    }
  in
  Array.blit obj 0 st.cost2 0 n;
  let next_slack = ref n and next_art = ref (n + !n_slack) in
  for i = 0 to m - 1 do
    let idx, coef = scaled_rows.(i) in
    let row = st.tab.(i) in
    Array.iteri (fun t j -> row.(j) <- row.(j) +. coef.(t)) idx;
    (match cmps.(i) with
    | Le ->
      row.(!next_slack) <- 1.0;
      st.basis.(i) <- !next_slack;
      incr next_slack
    | Ge ->
      row.(!next_slack) <- -1.0;
      incr next_slack
    | Eq -> ());
    if needs_art.(i) then begin
      row.(!next_art) <- 1.0;
      st.basis.(i) <- !next_art;
      (* Phase-1 reduced costs: c1_j - (row sums over artificial rows). *)
      for j = 0 to width - 1 do
        if j <> !next_art then st.cost1.(j) <- st.cost1.(j) -. row.(j)
      done;
      st.obj1 <- st.obj1 +. st.b.(i);
      incr next_art
    end
  done;
  let max_pivots =
    match max_pivots with Some k -> k | None -> Int.max 100_000 (40 * (m + n))
  in
  let allow_all _ = true in
  let fail status = { status; x = Array.make n 0.0; objective = 0.0; pivots = st.pivots } in
  let phase1 =
    if n_art = 0 then Phase_optimal
    else run_phase st st.cost1 ~allow:allow_all ~max_pivots
  in
  match phase1 with
  | Phase_limit -> fail Iteration_limit
  | Phase_unbounded ->
    (* Phase-1 objective is bounded below by 0; cannot be unbounded. *)
    fail Infeasible
  | Phase_optimal ->
    if st.obj1 > feas_tol then fail Infeasible
    else begin
      purge_artificials st;
      st.degenerate_run <- 0;
      let allow j = not (is_artificial st j) in
      match run_phase st st.cost2 ~allow ~max_pivots with
      | Phase_limit -> fail Iteration_limit
      | Phase_unbounded -> fail Unbounded
      | Phase_optimal ->
        let x = Array.make n 0.0 in
        for i = 0 to m - 1 do
          if st.active.(i) && st.basis.(i) < n then x.(st.basis.(i)) <- st.b.(i)
        done;
        let objective = Array.fold_left ( +. ) 0.0 (Array.mapi (fun j c -> c *. x.(j)) obj) in
        { status = Optimal; x; objective; pivots = st.pivots }
    end
