(** Dense two-phase primal simplex over standard nonnegative variables.

    This is the numerical core under {!Problem}; it solves

    {v  min c . x   s.t.  A x (<= | = | >=) b,   x >= 0  v}

    Phase 1 drives artificial variables to zero starting from a slack basis;
    phase 2 optimizes the true objective. Dantzig pricing with a Bland
    fallback after a run of degenerate pivots provides anti-cycling. Rows are
    equilibrated (scaled by their max absolute coefficient) for numerical
    robustness. *)

type cmp = Le | Ge | Eq

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit

type outcome = {
  status : status;
  x : float array;  (** primal values (length = num variables); zeros unless [Optimal] *)
  objective : float;  (** c . x at termination *)
  pivots : int;  (** total pivot count across both phases *)
}

(** [solve ~obj ~rows ~cmps ~rhs] where [rows.(i)] is the sparse row
    [(indices, coefficients)] of constraint [i]. All variable indices must
    be in [0, Array.length obj). [max_pivots] caps total pivots. *)
val solve :
  ?max_pivots:int ->
  obj:float array ->
  rows:(int array * float array) array ->
  cmps:cmp array ->
  rhs:float array ->
  unit ->
  outcome
