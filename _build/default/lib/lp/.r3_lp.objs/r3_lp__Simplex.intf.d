lib/lp/simplex.mli:
