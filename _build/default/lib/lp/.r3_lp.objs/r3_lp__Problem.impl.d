lib/lp/problem.ml: Array Format Hashtbl Int List Option Printf Simplex
