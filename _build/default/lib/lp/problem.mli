(** Linear-program builder.

    Models of the form

    {v  min/max  c . x
        s.t.     sum_j a_ij x_j  (<= | = | >=)  b_i     for each row i
                 lb_j <= x_j <= ub_j                     for each var j  v}

    Variables default to [lb = 0], [ub = +inf]. The builder is mutable and
    append-only; [solve] snapshots it. Duplicate variables inside one term
    list are summed, so callers may emit terms incrementally. *)

type t

(** Opaque variable handle, valid only for the problem that created it. *)
type var

type cmp = Le | Ge | Eq

type solution = {
  objective : float;  (** optimal objective value, in the user's sense *)
  value : var -> float;  (** value of each variable at the optimum *)
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit  (** solver hit its pivot budget before proving a status *)

val create : ?name:string -> unit -> t

val name : t -> string

(** [var t name] adds a variable. Default bounds [0, +inf).
    Raises [Invalid_argument] if [lb > ub]. *)
val var : t -> ?lb:float -> ?ub:float -> string -> var

(** A variable unbounded in both directions. *)
val free_var : t -> string -> var

(** [constr t terms cmp rhs] adds the row [sum terms cmp rhs]. *)
val constr : t -> ?name:string -> (float * var) list -> cmp -> float -> unit

(** Set the objective (replacing any previous one). *)
val minimize : t -> (float * var) list -> unit

val maximize : t -> (float * var) list -> unit

(** [add_objective_term t coef v] adds [coef * v] to the current objective
    without changing its sense. *)
val add_objective_term : t -> float -> var -> unit

val num_vars : t -> int
val num_constraints : t -> int

(** Human-readable variable name (for debugging and error messages). *)
val var_name : t -> var -> string

(** Solve with the built-in two-phase primal simplex.
    [max_pivots] defaults to a budget proportional to the problem size. *)
val solve : ?max_pivots:int -> t -> result

(** Pretty-print a small problem in LP-like text format (tests/debugging). *)
val pp : Format.formatter -> t -> unit
