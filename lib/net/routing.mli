(** Flow representation of routing (Section 2 of the paper).

    A routing assigns, for each commodity [k] (an OD pair for the base
    routing [r], a protected link for the protection routing [p]), the
    fraction [get t k e] of the commodity's traffic crossing each directed
    link [e]. Validity is conditions [R1]–[R4] of equation (1).

    Storage is abstract: each row is held either {e dense} (a
    [float array] over all [m] links) or {e sparse} (an
    {!R3_util.Rowvec.t} over its support). Protection and detour rows have
    support the size of a short path, so sparse rows turn the online
    reconfiguration kernels ({!fold_failure}, {!add_loads}) from O(m) into
    O(nnz) per row. The two representations are {b bit-identical}: sparse
    rows use an exact-zero drop tolerance, every kernel iterates in
    increasing link order, and {!set} normalizes [-0.0] to [+0.0], so any
    sequence of builder calls and failure folds yields the same float
    bits under every backend (property-tested in [test/test_substrate.ml]).

    Rows are copy-on-write: {!copy} and {!fold_failure} share untouched
    row payloads between states, and {!set} un-shares a row before
    mutating it, so holding many stepped states costs O(changed rows).

    Concurrency: {!fold_failure} (and the read-only consumers) may be
    called on the same routing from any number of domains at once — all
    sharing metadata it updates is atomic, and the column support index
    is published atomically only once fully built. Mutators ({!set},
    {!set_row_dense}) still require exclusive access to the routing. *)

module Backend : sig
  type t =
    | Dense  (** every row a [float array] of length [m] *)
    | Sparse  (** every row an [R3_util.Rowvec.t] *)
    | Auto
        (** per-row: sparse while the row's support stays under
            {!auto_nnz_ratio} of [m], dense otherwise *)

  val to_string : t -> string
  val of_string : string -> t option
end

(** Rows under [Auto] switch to dense storage when
    [nnz > auto_nnz_ratio *. m]. *)
val auto_nnz_ratio : float

type t

(** All-zero routing for the given commodities (default backend
    [Backend.Dense]). *)
val create :
  ?backend:Backend.t -> Graph.t -> pairs:(Graph.node * Graph.node) array -> t

val backend : t -> Backend.t

val num_commodities : t -> int

(** Number of links [m] the routing was built over. *)
val num_links : t -> int

(** The commodity array. Treat as read-only. *)
val pairs : t -> (Graph.node * Graph.node) array

(** [pair t k] is commodity [k]'s (origin, destination). *)
val pair : t -> int -> Graph.node * Graph.node

(** O(rows) copy-on-write copy: row payloads are shared until either side
    mutates them through {!set} or {!set_row_dense}. *)
val copy : t -> t

(** {2 Row access}

    All iteration visits stored nonzeros in increasing link order; dense
    rows skip exact zeros. *)

(** [get t k e] is the fraction of commodity [k] on link [e]. O(1) dense,
    O(log nnz) sparse. *)
val get : t -> int -> Graph.link -> float

(** [set t k e x] writes one entry ([-0.0] is normalized to [+0.0];
    exact zeros are structural in sparse rows). Un-shares the row first. *)
val set : t -> int -> Graph.link -> float -> unit

(** Apply [f e x] to commodity [k]'s nonzero entries, ascending [e]. *)
val iter_row : t -> int -> (Graph.link -> float -> unit) -> unit

val fold_row : t -> int -> init:'a -> f:('a -> Graph.link -> float -> 'a) -> 'a

(** Stored nonzeros of row [k] (dense rows are scanned). *)
val row_nnz : t -> int -> int

(** Fresh dense copy of row [k]. *)
val row_dense : t -> int -> float array

(** Fresh sparse copy of row [k] (exact-zero drop tolerance). *)
val row_vec : t -> int -> R3_util.Rowvec.t

(** [set_row_dense t k row] replaces row [k] with the given dense values
    (converted to the row's backend representation; [row] not retained). *)
val set_row_dense : t -> int -> float array -> unit

(** [row_storage t k] is the exact stored representation of row [k] —
    dense rows come back dense, sparse rows sparse (fresh copies). The
    plan store uses this so a snapshot preserves the payload mix, not
    just the values. *)
val row_storage : t -> int -> [ `Dense of float array | `Sparse of R3_util.Rowvec.t ]

(** [set_row_storage t k s] installs exactly the given representation as
    row [k] (taking ownership of the array/vector), bypassing the
    backend's usual conversion — the inverse of {!row_storage}. Raises
    [Invalid_argument] on a dense length or sparse index that does not
    fit the link space. *)
val set_row_storage :
  t -> int -> [ `Dense of float array | `Sparse of R3_util.Rowvec.t ] -> unit

(** [to_dense_matrix t] is every row as a fresh dense array — the
    representation-independent image used by equality checks and tests. *)
val to_dense_matrix : t -> float array array

(** {2 Storage statistics} *)

(** Rows currently held sparse / dense. *)
val sparse_rows : t -> int

val dense_rows : t -> int

(** Total stored nonzeros across all rows. *)
val nnz : t -> int

(** {2 Failure folding (the R3 online kernels)} *)

(** Pre-build the column support index {!fold_failure} uses to find
    candidate rows (no-op for the [Dense] backend, or when already
    built). [Reconfig.make] calls this so parallel workers stepping a
    shared root state find the index ready instead of each building it
    on their first fold. *)
val prepare : t -> unit

(** [rescale_detour t e] is the detour [xi_e] of equation (8) computed
    from row [e] of the protection routing [t]: entry [e] removed, the
    rest scaled by [1 / (1 - p_e(e))]; all-zero when [p_e(e) >= 1 - tol]
    (default [tol = 1e-9]). *)
val rescale_detour : ?tol:float -> t -> Graph.link -> R3_util.Rowvec.t

(** [fold_failure t ~e ~xi ~replace_with_detour] applies equations
    (9)/(10): every row [k] with [on_e = get t k e > 0.0] becomes
    [row + on_e * xi] with entry [e] zeroed; rows with [on_e = +0.0] (or
    structurally absent) are {b shared} with [t] unchanged; negative or
    [-0.0] solver noise only zeroes entry [e]. When [replace_with_detour]
    is true (the protection routing), row [e] itself becomes [xi].
    Returns the new routing plus [(shared, copied)] row counts. [t]'s
    rows are not touched (the only update to [t] is an atomic
    sharing-generation bump protecting the now-shared payloads), so
    concurrent folds from the same [t] are safe and any number of
    children may be derived from one state. *)
val fold_failure :
  t ->
  e:Graph.link ->
  xi:R3_util.Rowvec.t ->
  replace_with_detour:bool ->
  t * (int * int)

(** {2 Aggregate consumers} *)

(** [validate g ?tol ?failed ?partial t] checks [R1]–[R4] for every
    commodity and additionally that no flow crosses a failed link. When
    [partial] is true, commodities are also allowed to route {e none} of
    their traffic (all-zero rows) — the state R3 reaches when a partition
    removes reachability. Returns a human-readable error for the first
    violated condition. *)
val validate :
  Graph.t ->
  ?tol:float ->
  ?failed:Graph.link_set ->
  ?partial:bool ->
  t ->
  (unit, string) result

(** [loads g ~demands t] sums [demands.(k) *. get t k e] per link.
    [demands] must be parallel to the commodity array. *)
val loads : Graph.t -> demands:float array -> t -> float array

(** Add [loads] of this routing into an accumulator array. Sparse rows
    contribute O(nnz) work. *)
val add_loads : Graph.t -> demands:float array -> t -> into:float array -> unit

(** Maximum link utilization given per-link loads. *)
val mlu : Graph.t -> loads:float array -> float

(** The link attaining the MLU (lowest id on ties). *)
val bottleneck : Graph.t -> loads:float array -> Graph.link

(** Expected end-to-end propagation delay of commodity [k] under the
    routing: [sum_e get t k e * delay e]. *)
val mean_delay : Graph.t -> t -> int -> float

(** Per-commodity delivered fraction at the destination: 1 for a valid
    total routing, less when the commodity is partially dropped. Computed
    as net flow into the destination. *)
val delivered : Graph.t -> t -> int -> float
