let unit_weights g = Array.make (Graph.num_links g) 1.0

let inv_cap_weights g =
  let max_cap = ref 0.0 in
  for e = 0 to Graph.num_links g - 1 do
    if Graph.capacity g e > !max_cap then max_cap := Graph.capacity g e
  done;
  Array.init (Graph.num_links g) (fun e -> !max_cap /. Graph.capacity g e)

let dag_tol = 1e-9

(* Per-destination shortest-path DAG membership: live link e = (i,j) is on a
   shortest path to dst iff dist_to(i) = w(e) + dist_to(j). *)
let on_dag g failed weights dist_to e =
  (not failed.(e))
  && dist_to.(Graph.src g e) < infinity
  && dist_to.(Graph.dst g e) < infinity
  && Float.abs (weights.(e) +. dist_to.(Graph.dst g e) -. dist_to.(Graph.src g e))
     <= dag_tol *. (1.0 +. dist_to.(Graph.src g e))

let next_hops g ?failed ~weights ~dst () =
  let failed = match failed with Some f -> f | None -> Graph.no_failures g in
  let dist_to = Spf.distances_to g ~failed ~weights ~dst () in
  Array.init (Graph.num_nodes g) (fun v ->
      if v = dst then []
      else
        Array.to_list (Graph.out_links g v)
        |> List.filter (on_dag g failed weights dist_to))

(* Propagate one unit of flow from [a] down the ECMP DAG toward [dst],
   splitting equally at every node. Nodes are processed in decreasing
   distance-to-destination order, which topologically orders the DAG. *)
let ecmp_fractions g failed weights dist_to ~a ~dst row =
  let n = Graph.num_nodes g in
  let node_flow = Array.make n 0.0 in
  node_flow.(a) <- 1.0;
  let order = Array.init n (fun v -> v) in
  Array.sort (fun u v -> Float.compare dist_to.(v) dist_to.(u)) order;
  Array.iter
    (fun v ->
      if node_flow.(v) > 0.0 && v <> dst && dist_to.(v) < infinity then begin
        let hops =
          Array.to_list (Graph.out_links g v)
          |> List.filter (on_dag g failed weights dist_to)
        in
        let k = List.length hops in
        if k > 0 then begin
          let share = node_flow.(v) /. float_of_int k in
          List.iter
            (fun e ->
              row.(e) <- row.(e) +. share;
              let w = Graph.dst g e in
              node_flow.(w) <- node_flow.(w) +. share)
            hops
        end
      end)
    order

let routing g ?backend ?failed ~weights ~pairs () =
  let failed = match failed with Some f -> f | None -> Graph.no_failures g in
  let t = Routing.create ?backend g ~pairs in
  let row = Array.make (Graph.num_links g) 0.0 in
  (* Group commodities by destination so each destination needs exactly one
     reverse-Dijkstra pass. *)
  let by_dst = Hashtbl.create 16 in
  Array.iteri
    (fun k (_, b) ->
      let l = Option.value (Hashtbl.find_opt by_dst b) ~default:[] in
      Hashtbl.replace by_dst b (k :: l))
    pairs;
  Hashtbl.iter
    (fun b ks ->
      let dist_to = Spf.distances_to g ~failed ~weights ~dst:b () in
      List.iter
        (fun k ->
          let a, _ = pairs.(k) in
          if dist_to.(a) < infinity then begin
            Array.fill row 0 (Array.length row) 0.0;
            ecmp_fractions g failed weights dist_to ~a ~dst:b row;
            Routing.set_row_dense t k row
          end)
        ks)
    by_dst;
  t
