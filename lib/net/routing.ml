type t = {
  pairs : (Graph.node * Graph.node) array;
  frac : float array array;
}

let create g ~pairs =
  let m = Graph.num_links g in
  { pairs; frac = Array.init (Array.length pairs) (fun _ -> Array.make m 0.0) }

let num_commodities t = Array.length t.pairs

let copy t = { pairs = Array.copy t.pairs; frac = Array.map Array.copy t.frac }

let validate g ?(tol = 1e-6) ?failed ?(partial = false) t =
  let failed = match failed with Some f -> f | None -> Graph.no_failures g in
  let m = Graph.num_links g in
  let n = Graph.num_nodes g in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_commodity k =
    let a, b = t.pairs.(k) in
    let row = t.frac.(k) in
    if Array.length row <> m then err "commodity %d: row length mismatch" k
    else begin
      let bad = ref None in
      for e = 0 to m - 1 do
        if !bad = None then begin
          if row.(e) < -.tol || row.(e) > 1.0 +. tol then
            bad := Some (Printf.sprintf "commodity %d: frac %g on link %d outside [0,1]" k row.(e) e)
          else if failed.(e) && row.(e) > tol then
            bad := Some (Printf.sprintf "commodity %d: flow %g on failed link %d" k row.(e) e)
        end
      done;
      match !bad with
      | Some msg -> Error msg
      | None ->
        let inflow = Array.make n 0.0 and outflow = Array.make n 0.0 in
        for e = 0 to m - 1 do
          inflow.(Graph.dst g e) <- inflow.(Graph.dst g e) +. row.(e);
          outflow.(Graph.src g e) <- outflow.(Graph.src g e) +. row.(e)
        done;
        (* [R3]: nothing returns to the source. *)
        if inflow.(a) > tol then
          err "commodity %d (%d->%d): flow %g returns to source" k a b inflow.(a)
        else begin
          (* [R2]: the source emits 1 (or 0 when partial routing allowed). *)
          let emitted = outflow.(a) in
          let total_ok =
            Float.abs (emitted -. 1.0) <= tol || (partial && Float.abs emitted <= tol)
          in
          if not total_ok then
            err "commodity %d (%d->%d): source emits %g, expected 1" k a b emitted
          else begin
            (* [R1]: conservation at intermediate nodes. *)
            let violation = ref None in
            for v = 0 to n - 1 do
              if v <> a && v <> b && !violation = None then
                if Float.abs (inflow.(v) -. outflow.(v)) > tol then
                  violation :=
                    Some
                      (Printf.sprintf
                         "commodity %d (%d->%d): conservation violated at node %d (in %g, out %g)"
                         k a b v inflow.(v) outflow.(v))
            done;
            match !violation with Some msg -> Error msg | None -> Ok ()
          end
        end
    end
  in
  let rec check k =
    if k >= num_commodities t then Ok ()
    else match check_commodity k with Ok () -> check (k + 1) | Error _ as e -> e
  in
  check 0

let add_loads g ~demands t ~into =
  let m = Graph.num_links g in
  if Array.length into <> m then invalid_arg "Routing.add_loads: bad accumulator";
  if Array.length demands <> num_commodities t then
    invalid_arg "Routing.add_loads: demands length mismatch";
  Array.iteri
    (fun k d ->
      if d <> 0.0 then begin
        let row = t.frac.(k) in
        for e = 0 to m - 1 do
          Array.unsafe_set into e
            (Array.unsafe_get into e +. (d *. Array.unsafe_get row e))
        done
      end)
    demands

let loads g ~demands t =
  let acc = Array.make (Graph.num_links g) 0.0 in
  add_loads g ~demands t ~into:acc;
  acc

let mlu g ~loads =
  let u = ref 0.0 in
  for e = 0 to Graph.num_links g - 1 do
    let x = loads.(e) /. Graph.capacity g e in
    if x > !u then u := x
  done;
  !u

let bottleneck g ~loads =
  let best = ref 0 and best_u = ref neg_infinity in
  for e = 0 to Graph.num_links g - 1 do
    let x = loads.(e) /. Graph.capacity g e in
    if x > !best_u then begin
      best := e;
      best_u := x
    end
  done;
  !best

let mean_delay g t k =
  let row = t.frac.(k) in
  let acc = ref 0.0 in
  for e = 0 to Graph.num_links g - 1 do
    acc := !acc +. (row.(e) *. Graph.delay g e)
  done;
  !acc

let delivered g t k =
  let _, b = t.pairs.(k) in
  let row = t.frac.(k) in
  let inflow = ref 0.0 and outflow = ref 0.0 in
  Array.iter (fun e -> inflow := !inflow +. row.(e)) (Graph.in_links g b);
  Array.iter (fun e -> outflow := !outflow +. row.(e)) (Graph.out_links g b);
  !inflow -. !outflow
