module Rowvec = R3_util.Rowvec

module Backend = struct
  type t = Dense | Sparse | Auto

  let to_string = function
    | Dense -> "dense"
    | Sparse -> "sparse"
    | Auto -> "auto"

  let of_string = function
    | "dense" -> Some Dense
    | "sparse" -> Some Sparse
    | "auto" -> Some Auto
    | _ -> None
end

let auto_nnz_ratio = 0.25

(* New-row materializations per representation; row *sharing* (copy,
   untouched fold_failure rows) deliberately does not count. *)
module Obs = struct
  module M = R3_util.Metrics

  let dense_rows = M.counter "r3.routing.dense_rows"
  let sparse_rows = M.counter "r3.routing.sparse_rows"
end

type payload = D of float array | S of Rowvec.t

(* Row payloads are shared between routings (copy-on-write). Sharing is
   tracked by generations: row [k] is exclusively owned iff
   [own_gen.(k) >= Atomic.get share_gen]. Handing payloads out
   ([fold_failure], [copy]) "seals" the giver with one [Atomic.incr] of
   [share_gen] — every row whose [own_gen] predates the bump reads as
   shared, and a later in-place mutation copies it first ([own]),
   recording the current generation. The seal is the ONLY write
   [fold_failure] performs on its input, and it is atomic, so any number
   of domains may fold the same parent concurrently (the contract
   [Sim.Sweep] relies on when workers step a shared root state); the
   sticky seal merely costs a spurious copy if the giver is mutated
   later.

   [cols] is the column support index: for link [e] it enumerates the
   rows whose support MAY include [e] (a superset is fine — every
   candidate's coefficient is re-read, and stale entries simply re-read
   a zero). It turns the failure fold from a scan of all rows into a
   visit of just the rows the failed link touches. It is built from the
   rows (lazily, or eagerly via [prepare]) and published through an
   [Atomic.t] only once fully constructed, so concurrent folders either
   see [None] (and build an identical index from the same frozen rows)
   or a complete index — never a partially built one. Folded children
   inherit the parent's base array untouched and push one overlay
   [(xi, touched)] meaning "these rows may now have support anywhere in
   xi's support" — no per-fold array copy, no per-entry conses. Overlay
   chains are capped at [max_overlays]: past that a child drops the
   inherited index and rebuilds from its own rows on its next fold, so
   long failure sequences keep O(1) overlays per candidate lookup and do
   not retain every ancestor's detour vector. Any direct row mutation
   invalidates the whole index. *)
type colidx = {
  cbase : int list array;
  overlays : (Rowvec.t * int list) list;
}

let max_overlays = 8

(* Rows live in chunks of 128 payload pointers, not one flat array: a
   folded child needs its own row table, and a flat [nk]-entry pointer
   array is a major-heap allocation (beyond the minor limit) whose copy
   pays a write-barrier per element and whose garbage drives major GC
   slices — a per-fold tax both backends paid equally. Chunks stay in
   the minor heap: copying is plain memcpy and dead children vanish in
   the next minor collection. Chunks are always exclusively owned by
   their routing (only payloads are copy-on-write shared). *)
let chunk_bits = 7

let chunk_size = 1 lsl chunk_bits

type t = {
  prs : (Graph.node * Graph.node) array;
  m : int;
  bk : Backend.t;
  rows : payload array array;
  own_gen : int array;  (* row [k] owned iff own_gen.(k) >= share_gen *)
  share_gen : int Atomic.t;
  cols : colidx option Atomic.t;
}

let rget rows k =
  Array.unsafe_get
    (Array.unsafe_get rows (k lsr chunk_bits))
    (k land (chunk_size - 1))

let rset rows k p =
  Array.unsafe_set
    (Array.unsafe_get rows (k lsr chunk_bits))
    (k land (chunk_size - 1))
    p

let rows_init nk f =
  Array.init
    ((nk + chunk_size - 1) / chunk_size)
    (fun c ->
      let lo = c * chunk_size in
      Array.init (Int.min chunk_size (nk - lo)) (fun i -> f (lo + i)))

let rows_copy rows = Array.map Array.copy rows

let count_payload = function
  | D _ -> R3_util.Metrics.incr Obs.dense_rows
  | S _ -> R3_util.Metrics.incr Obs.sparse_rows

let copy_payload = function
  | D a -> D (Array.copy a)
  | S r -> S (Rowvec.copy r)

let create ?(backend = Backend.Dense) g ~pairs =
  let m = Graph.num_links g in
  let nk = Array.length pairs in
  let mk _ =
    match backend with
    | Backend.Dense -> D (Array.make m 0.0)
    | Backend.Sparse | Backend.Auto -> S (Rowvec.create ~cap:4 ())
  in
  (match backend with
  | Backend.Dense -> R3_util.Metrics.add Obs.dense_rows nk
  | Backend.Sparse | Backend.Auto -> R3_util.Metrics.add Obs.sparse_rows nk);
  {
    prs = pairs;
    m;
    bk = backend;
    rows = rows_init nk mk;
    own_gen = Array.make nk 0;
    share_gen = Atomic.make 0;
    cols = Atomic.make None;
  }

let backend t = t.bk

let num_commodities t = Array.length t.prs

let num_links t = t.m

let pairs t = t.prs

let pair t k = t.prs.(k)

let copy t =
  let nk = num_commodities t in
  Atomic.incr t.share_gen;
  {
    t with
    prs = Array.copy t.prs;
    rows = rows_copy t.rows;
    own_gen = Array.make nk 0;
    share_gen = Atomic.make 1;
    (* Same rows, same supports: the built index stays valid. *)
    cols = Atomic.make (Atomic.get t.cols);
  }

let payload_get data e =
  match data with D a -> a.(e) | S r -> Rowvec.get r e

let get t k e = payload_get (rget t.rows k) e

(* Un-share a row before mutating it in place. Mutators require exclusive
   access to [t], so the plain [own_gen] read/write cannot race. *)
let own t k =
  let gen = Atomic.get t.share_gen in
  if t.own_gen.(k) < gen then begin
    let data = copy_payload (rget t.rows k) in
    count_payload data;
    rset t.rows k data;
    t.own_gen.(k) <- gen
  end

(* Under [Auto], a sparse row that outgrew the ratio flips to dense. *)
let maybe_densify t data =
  match (t.bk, data) with
  | Backend.Auto, S r
    when float_of_int (Rowvec.nnz r) > auto_nnz_ratio *. float_of_int t.m ->
    let d = D (Rowvec.to_dense t.m r) in
    count_payload d;
    d
  | _ -> data

let set t k e x =
  (* Normalize -0.0 to +0.0 so dense storage cannot diverge (by sign bit
     alone) from sparse storage, which drops exact zeros structurally. *)
  let x = x +. 0.0 in
  own t k;
  (match rget t.rows k with
  | D a -> a.(e) <- x
  | S r ->
    Rowvec.set r e x;
    rset t.rows k (maybe_densify t (S r)));
  Atomic.set t.cols None

let iter_row t k f =
  match rget t.rows k with
  | D a ->
    for e = 0 to Array.length a - 1 do
      let x = Array.unsafe_get a e in
      if x <> 0.0 then f e x
    done
  | S r -> Rowvec.iter f r

let fold_row t k ~init ~f =
  let acc = ref init in
  iter_row t k (fun e x -> acc := f !acc e x);
  !acc

let row_nnz t k =
  match rget t.rows k with
  | D a ->
    let c = ref 0 in
    Array.iter (fun x -> if x <> 0.0 then incr c) a;
    !c
  | S r -> Rowvec.nnz r

let row_dense t k =
  match rget t.rows k with
  | D a -> Array.copy a
  | S r -> Rowvec.to_dense t.m r

let row_vec t k =
  match rget t.rows k with D a -> Rowvec.of_dense a | S r -> Rowvec.copy r

let set_row_dense t k row =
  if Array.length row <> t.m then invalid_arg "Routing.set_row_dense: bad length";
  let data =
    match t.bk with
    | Backend.Dense -> D (Array.map (fun x -> x +. 0.0) row)
    | Backend.Sparse -> S (Rowvec.of_dense row)
    | Backend.Auto ->
      let r = Rowvec.of_dense row in
      if float_of_int (Rowvec.nnz r) > auto_nnz_ratio *. float_of_int t.m then
        D (Array.map (fun x -> x +. 0.0) row)
      else S r
  in
  count_payload data;
  rset t.rows k data;
  t.own_gen.(k) <- Atomic.get t.share_gen;
  Atomic.set t.cols None

(* Exact-representation accessors for the plan store: a snapshot must
   round-trip the payload kind itself (not just the values), so a reloaded
   plan keeps its dense/sparse row mix bit-for-bit. *)
let row_storage t k =
  match rget t.rows k with
  | D a -> `Dense (Array.copy a)
  | S r -> `Sparse (Rowvec.copy r)

let set_row_storage t k storage =
  let data =
    match storage with
    | `Dense a ->
      if Array.length a <> t.m then
        invalid_arg "Routing.set_row_storage: bad dense length";
      D a
    | `Sparse r ->
      Rowvec.iter
        (fun e _ ->
          if e < 0 || e >= t.m then
            invalid_arg "Routing.set_row_storage: sparse index out of range")
        r;
      S r
  in
  count_payload data;
  rset t.rows k data;
  t.own_gen.(k) <- Atomic.get t.share_gen;
  Atomic.set t.cols None

let to_dense_matrix t = Array.init (num_commodities t) (row_dense t)

let sparse_rows t =
  let acc = ref 0 in
  for k = 0 to num_commodities t - 1 do
    match rget t.rows k with S _ -> incr acc | D _ -> ()
  done;
  !acc

let dense_rows t =
  let acc = ref 0 in
  for k = 0 to num_commodities t - 1 do
    match rget t.rows k with D _ -> incr acc | S _ -> ()
  done;
  !acc

let nnz t =
  let acc = ref 0 in
  for k = 0 to num_commodities t - 1 do
    acc := !acc + row_nnz t k
  done;
  !acc

(* ---- column support index ---- *)

let ensure_cols t =
  match Atomic.get t.cols with
  | Some c -> c
  | None ->
    let c = Array.make t.m [] in
    for k = num_commodities t - 1 downto 0 do
      match rget t.rows k with
      | D a ->
        for e = t.m - 1 downto 0 do
          if Array.unsafe_get a e <> 0.0 then c.(e) <- k :: c.(e)
        done
      | S r -> Rowvec.iter (fun e _ -> c.(e) <- k :: c.(e)) r
    done;
    let ci = { cbase = c; overlays = [] } in
    (* Published only once fully built: a reader that observes [Some ci]
       observes its contents. Concurrent builders construct identical
       indexes from the same frozen rows; last publication wins. *)
    Atomic.set t.cols (Some ci);
    ci

let prepare t =
  match t.bk with
  | Backend.Dense -> ()
  | Backend.Sparse | Backend.Auto -> ignore (ensure_cols t : colidx)

(* Visit every row that may have support at [e]: the base column plus any
   overlay whose detour support contains [e]. Duplicates are possible and
   harmless (the caller re-reads the live coefficient each time). *)
let iter_candidates ci e f =
  List.iter f ci.cbase.(e);
  List.iter
    (fun (vec, rows) -> if Rowvec.get vec e <> 0.0 then List.iter f rows)
    ci.overlays

(* ---- failure folding (equations (8)-(10)) ---- *)

let rescale_detour ?(tol = 1e-9) t e =
  let data = rget t.rows e in
  let self = payload_get data e in
  if self >= 1.0 -. tol then Rowvec.create ~cap:1 ()
  else begin
    let scale = 1.0 /. (1.0 -. self) in
    match data with
    | D a ->
      let r = Rowvec.create ~cap:8 () in
      for l = 0 to t.m - 1 do
        if l <> e then begin
          let x = Array.unsafe_get a l *. scale in
          (* ascending indices: Rowvec.set appends in O(1) *)
          if Float.abs x > 0.0 then Rowvec.set r l x
        end
      done;
      r
    | S row ->
      let r = Rowvec.copy row in
      Rowvec.clear r e;
      Rowvec.scale r scale;
      r
  end

(* (9)/(10) on one row: [row + on_e * xi], entry [e] zeroed. The dense
   branch updates only xi's support — identical arithmetic to a full
   [for l] loop because adding [on_e *. 0.0 = +0.0] to a non-negative
   entry is the identity. The sparse branch is [Rowvec.merged]: one
   ascending merge pass, [r]-only entries verbatim, [xi]-only entries
   [on_e *. x] (same bits as dense's [0.0 +. (on_e *. x)] since [xi]
   never stores [-0.0]), collisions [rv +. (on_e *. x)], exact zeros
   dropped (the dense image is unchanged either way). *)
let fold_payload ~e ~xi data on_e =
  match data with
  | D a ->
    let a' = Array.copy a in
    if on_e > 0.0 then
      Rowvec.iter
        (fun l x ->
          Array.unsafe_set a' l (Array.unsafe_get a' l +. (on_e *. x)))
        xi;
    (* Unconditional, as in the paper kernel: also normalizes a stray
       [-0.0] (negative solver noise gets zeroed, not detoured). *)
    a'.(e) <- 0.0;
    D a'
  | S r -> S (Rowvec.merged ~skip:e ~y:r ~x:xi on_e)

let fold_failure t ~e ~xi ~replace_with_detour =
  let nk = num_commodities t in
  (* Seal the parent: one atomic generation bump marks every parent row
     "possibly shared". This is the only write to [t] on the fold path,
     so concurrent folds from the same parent are race-free. The child
     starts as a full payload share ([own_gen] all behind its
     generation); only candidate rows (support possibly containing [e])
     are re-read, everything else is untouched by construction. *)
  Atomic.incr t.share_gen;
  let rows = rows_copy t.rows in
  let own_gen = Array.make nk 0 in
  let touched = ref [] and copied = ref 0 in
  (* Counter deltas are batched and published once per fold: a per-row
     atomic increment costs as much as the row copy it is counting. *)
  let new_dense = ref 0 and new_sparse = ref 0 in
  let install k data =
    let data = maybe_densify t data in
    (match data with D _ -> incr new_dense | S _ -> incr new_sparse);
    rset rows k data;
    own_gen.(k) <- 1;
    incr copied;
    touched := k :: !touched
  in
  let visit k =
    if not (replace_with_detour && k = e) then begin
      (* Read through [rows]: superset indices can list a row twice, and
         after the first fold its [e] entry is gone. *)
      let on_e = payload_get (rget rows k) e in
      if on_e > 0.0 then install k (fold_payload ~e ~xi (rget rows k) on_e)
      else if on_e <> 0.0 || Float.sign_bit on_e then
        (* -0.0 or negative solver noise: only entry [e] is zeroed. *)
        install k
          (match rget rows k with
          | D a ->
            let a' = Array.copy a in
            a'.(e) <- 0.0;
            D a'
          | S r ->
            let r' = Rowvec.copy r in
            Rowvec.clear r' e;
            S r')
      (* on_e = +0.0: a stored zero; the row stays shared. *)
    end
  in
  (* The support index is the sparse substrate's fold strategy: candidate
     rows come from column [e]'s support. The pure-dense backend keeps
     the historical semantics — scan every commodity row — both because
     a dense matrix has no support structure to index without paying the
     O(nk * m) scan the index exists to avoid, and so the benchmark
     compares substrate-on against substrate-off. Either way every row
     with a nonzero at [e] is visited, so results are bit-identical. *)
  let cols' =
    match t.bk with
    | Backend.Dense ->
      for k = 0 to nk - 1 do
        visit k
      done;
      None
    | Backend.Sparse | Backend.Auto ->
      let ci = ensure_cols t in
      iter_candidates ci e visit;
      Some ci
  in
  if replace_with_detour then
    install e
      (match t.bk with
      | Backend.Dense -> D (Rowvec.to_dense t.m xi)
      | Backend.Sparse | Backend.Auto -> S (Rowvec.copy xi));
  (* Inherit the support index: touched rows' supports grew by at most
     xi's support, recorded as one overlay. Stale entries (column [e],
     rows that shrank) are harmless supersets. A chain of folds would
     accumulate one overlay per ancestor, degrading candidate lookup
     back toward a full scan and retaining every ancestor's xi — so past
     [max_overlays] the child drops the index and lazily rebuilds it
     from its own rows on its next fold (O(nnz), amortized over the
     chain). *)
  let cols' =
    match (cols', !touched) with
    | None, _ -> None
    | Some ci, [] -> Some ci
    | Some ci, tch ->
      if List.length ci.overlays >= max_overlays then None
      else Some { ci with overlays = (Rowvec.copy xi, tch) :: ci.overlays }
  in
  if !new_dense > 0 then R3_util.Metrics.add Obs.dense_rows !new_dense;
  if !new_sparse > 0 then R3_util.Metrics.add Obs.sparse_rows !new_sparse;
  ( { t with rows; own_gen; share_gen = Atomic.make 1; cols = Atomic.make cols' },
    (nk - !copied, !copied) )

(* ---- aggregate consumers ---- *)

let validate g ?(tol = 1e-6) ?failed ?(partial = false) t =
  let failed = match failed with Some f -> f | None -> Graph.no_failures g in
  let n = Graph.num_nodes g in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_commodity k =
    let a, b = t.prs.(k) in
    let bad = ref None in
    iter_row t k (fun e x ->
        if !bad = None then begin
          if x < -.tol || x > 1.0 +. tol then
            bad :=
              Some
                (Printf.sprintf "commodity %d: frac %g on link %d outside [0,1]"
                   k x e)
          else if failed.(e) && x > tol then
            bad :=
              Some (Printf.sprintf "commodity %d: flow %g on failed link %d" k x e)
        end);
    match !bad with
    | Some msg -> Error msg
    | None ->
      let inflow = Array.make n 0.0 and outflow = Array.make n 0.0 in
      iter_row t k (fun e x ->
          inflow.(Graph.dst g e) <- inflow.(Graph.dst g e) +. x;
          outflow.(Graph.src g e) <- outflow.(Graph.src g e) +. x);
      (* [R3]: nothing returns to the source. *)
      if inflow.(a) > tol then
        err "commodity %d (%d->%d): flow %g returns to source" k a b inflow.(a)
      else begin
        (* [R2]: the source emits 1 (or 0 when partial routing allowed). *)
        let emitted = outflow.(a) in
        let total_ok =
          Float.abs (emitted -. 1.0) <= tol || (partial && Float.abs emitted <= tol)
        in
        if not total_ok then
          err "commodity %d (%d->%d): source emits %g, expected 1" k a b emitted
        else begin
          (* [R1]: conservation at intermediate nodes. *)
          let violation = ref None in
          for v = 0 to n - 1 do
            if v <> a && v <> b && !violation = None then
              if Float.abs (inflow.(v) -. outflow.(v)) > tol then
                violation :=
                  Some
                    (Printf.sprintf
                       "commodity %d (%d->%d): conservation violated at node %d (in %g, out %g)"
                       k a b v inflow.(v) outflow.(v))
          done;
          match !violation with Some msg -> Error msg | None -> Ok ()
        end
      end
  in
  let rec check k =
    if k >= num_commodities t then Ok ()
    else match check_commodity k with Ok () -> check (k + 1) | Error _ as e -> e
  in
  check 0

let add_loads g ~demands t ~into =
  let m = Graph.num_links g in
  if Array.length into <> m then invalid_arg "Routing.add_loads: bad accumulator";
  if Array.length demands <> num_commodities t then
    invalid_arg "Routing.add_loads: demands length mismatch";
  Array.iteri
    (fun k d ->
      if d <> 0.0 then begin
        match rget t.rows k with
        | D row ->
          for e = 0 to m - 1 do
            Array.unsafe_set into e
              (Array.unsafe_get into e +. (d *. Array.unsafe_get row e))
          done
        | S row -> Rowvec.scatter_add ~scale:d row ~into
      end)
    demands

let loads g ~demands t =
  let acc = Array.make (Graph.num_links g) 0.0 in
  add_loads g ~demands t ~into:acc;
  acc

let mlu g ~loads =
  let u = ref 0.0 in
  for e = 0 to Graph.num_links g - 1 do
    let x = loads.(e) /. Graph.capacity g e in
    if x > !u then u := x
  done;
  !u

let bottleneck g ~loads =
  let best = ref 0 and best_u = ref neg_infinity in
  for e = 0 to Graph.num_links g - 1 do
    let x = loads.(e) /. Graph.capacity g e in
    if x > !best_u then begin
      best := e;
      best_u := x
    end
  done;
  !best

let mean_delay g t k =
  let acc = ref 0.0 in
  iter_row t k (fun e x -> acc := !acc +. (x *. Graph.delay g e));
  !acc

let delivered g t k =
  let _, b = t.prs.(k) in
  let inflow = ref 0.0 and outflow = ref 0.0 in
  Array.iter (fun e -> inflow := !inflow +. get t k e) (Graph.in_links g b);
  Array.iter (fun e -> outflow := !outflow +. get t k e) (Graph.out_links g b);
  !inflow -. !outflow
