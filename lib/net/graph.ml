type node = int
type link = int

type t = {
  node_names : string array;
  name_index : (string, int) Hashtbl.t;
  link_src : int array;
  link_dst : int array;
  link_capacity : float array;
  link_delay : float array;
  out_links : int array array;
  in_links : int array array;
  reverse : int array;  (* -1 when the opposite direction is absent *)
  pair_index : (int, int) Hashtbl.t;  (* src * n + dst -> link id *)
}

let create ~node_names ~links =
  let n = Array.length node_names in
  let m = Array.length links in
  let link_src = Array.make m 0
  and link_dst = Array.make m 0
  and link_capacity = Array.make m 0.0
  and link_delay = Array.make m 0.0 in
  let pair_index = Hashtbl.create (2 * m) in
  Array.iteri
    (fun e (a, b, cap, dly) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg (Printf.sprintf "Graph.create: link %d endpoint out of range" e);
      if a = b then invalid_arg (Printf.sprintf "Graph.create: self-loop at node %d" a);
      if cap <= 0.0 then
        invalid_arg (Printf.sprintf "Graph.create: nonpositive capacity on link %d" e);
      if dly < 0.0 then
        invalid_arg (Printf.sprintf "Graph.create: negative delay on link %d" e);
      (* Parallel links are allowed (Fig. 1 of the paper uses them);
         [find_link] returns the first one registered. *)
      let key = (a * n) + b in
      if not (Hashtbl.mem pair_index key) then Hashtbl.add pair_index key e;
      link_src.(e) <- a;
      link_dst.(e) <- b;
      link_capacity.(e) <- cap;
      link_delay.(e) <- dly)
    links;
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  for e = 0 to m - 1 do
    out_count.(link_src.(e)) <- out_count.(link_src.(e)) + 1;
    in_count.(link_dst.(e)) <- in_count.(link_dst.(e)) + 1
  done;
  let out_links = Array.init n (fun v -> Array.make out_count.(v) 0)
  and in_links = Array.init n (fun v -> Array.make in_count.(v) 0) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  for e = 0 to m - 1 do
    let a = link_src.(e) and b = link_dst.(e) in
    out_links.(a).(out_fill.(a)) <- e;
    out_fill.(a) <- out_fill.(a) + 1;
    in_links.(b).(in_fill.(b)) <- e;
    in_fill.(b) <- in_fill.(b) + 1
  done;
  (* Pair opposite-direction links one-to-one so parallel links each get a
     distinct reverse partner. *)
  let reverse = Array.make m (-1) in
  let by_pair = Hashtbl.create m in
  (* Buckets are consed newest-first, then reversed once: link order in
     each bucket must stay ascending (pairing picks the head), and the
     append-per-link alternative is quadratic in the number of parallel
     links. *)
  for e = 0 to m - 1 do
    let key = (link_src.(e) * n) + link_dst.(e) in
    let q = Option.value (Hashtbl.find_opt by_pair key) ~default:[] in
    Hashtbl.replace by_pair key (e :: q)
  done;
  Hashtbl.filter_map_inplace (fun _ q -> Some (List.rev q)) by_pair;
  for e = 0 to m - 1 do
    if reverse.(e) < 0 then begin
      let rkey = (link_dst.(e) * n) + link_src.(e) in
      match Hashtbl.find_opt by_pair rkey with
      | Some (r :: rest) ->
        reverse.(e) <- r;
        reverse.(r) <- e;
        Hashtbl.replace by_pair rkey rest;
        let key = (link_src.(e) * n) + link_dst.(e) in
        (match Hashtbl.find_opt by_pair key with
        | Some q -> Hashtbl.replace by_pair key (List.filter (fun x -> x <> e) q)
        | None -> ())
      | Some [] | None -> ()
    end
  done;
  let name_index = Hashtbl.create n in
  Array.iteri (fun i nm -> Hashtbl.replace name_index nm i) node_names;
  {
    node_names;
    name_index;
    link_src;
    link_dst;
    link_capacity;
    link_delay;
    out_links;
    in_links;
    reverse;
    pair_index;
  }

let num_nodes t = Array.length t.node_names
let num_links t = Array.length t.link_src
let node_name t v = t.node_names.(v)
let node_id t name = Hashtbl.find t.name_index name
let src t e = t.link_src.(e)
let dst t e = t.link_dst.(e)
let capacity t e = t.link_capacity.(e)
let delay t e = t.link_delay.(e)
let out_links t v = t.out_links.(v)
let in_links t v = t.in_links.(v)

let find_link t a b = Hashtbl.find_opt t.pair_index ((a * num_nodes t) + b)

let reverse_link t e =
  let r = t.reverse.(e) in
  if r < 0 then None else Some r

type link_set = bool array

let no_failures t = Array.make (num_links t) false

let fail_links t links =
  let s = no_failures t in
  List.iter
    (fun e ->
      if e < 0 || e >= num_links t then invalid_arg "Graph.fail_links: bad link id";
      s.(e) <- true)
    links;
  s

let fail_bidir t links =
  let s = fail_links t links in
  List.iter
    (fun e -> match reverse_link t e with Some r -> s.(r) <- true | None -> ())
    links;
  s

let failed_list s =
  let acc = ref [] in
  for e = Array.length s - 1 downto 0 do
    if s.(e) then acc := e :: !acc
  done;
  !acc

let reachable t ?failed a =
  let failed = match failed with Some f -> f | None -> no_failures t in
  let seen = Array.make (num_nodes t) false in
  let stack = ref [ a ] in
  seen.(a) <- true;
  let rec walk () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Array.iter
        (fun e ->
          if not failed.(e) then begin
            let w = dst t e in
            if not seen.(w) then begin
              seen.(w) <- true;
              stack := w :: !stack
            end
          end)
        t.out_links.(v);
      walk ()
  in
  walk ();
  seen

let strongly_connected t ?failed () =
  let n = num_nodes t in
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    let seen = reachable t ?failed !v in
    if Array.exists not seen then ok := false;
    incr v
  done;
  !ok

let partitions_pair t failed a b = not (reachable t ~failed a).(b)

let total_capacity t = Array.fold_left ( +. ) 0.0 t.link_capacity

let pp ppf t =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d directed links@," (num_nodes t)
    (num_links t);
  for e = 0 to num_links t - 1 do
    Format.fprintf ppf "  %s -> %s  cap=%g delay=%gms@," (node_name t (src t e))
      (node_name t (dst t e)) (capacity t e) (delay t e)
  done;
  Format.fprintf ppf "@]"
