type path = { weight : float; links : Graph.link list }

let pp_path g ppf { weight; links } =
  Format.fprintf ppf "%.4f:" weight;
  List.iter
    (fun e ->
      Format.fprintf ppf " %s->%s" (Graph.node_name g (Graph.src g e))
        (Graph.node_name g (Graph.dst g e)))
    links

let eps = 1e-9

(* Remove circulation: repeatedly find a cycle in the positive-flow
   subgraph (ignoring source emission) and peel its bottleneck. Returns the
   total flow removed. A routing produced by an LP with a loop penalty has
   none, but defensive callers should not rely on that. *)
let strip_cycles g frac =
  let removed = ref 0.0 in
  let n = Graph.num_nodes g in
  let rec find_cycle () =
    (* DFS over positive-flow links looking for a back edge. *)
    let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
    let cycle = ref None in
    let rec dfs v stack =
      if !cycle = None then begin
        state.(v) <- 1;
        Array.iter
          (fun e ->
            if !cycle = None && frac.(e) > eps then begin
              let w = Graph.dst g e in
              if state.(w) = 1 then begin
                (* back edge: extract the cycle from the stack *)
                let rec take acc = function
                  | [] -> acc
                  | x :: _ when Graph.src g x = w -> x :: acc
                  | x :: tl -> take (x :: acc) tl
                in
                cycle := Some (take [] (e :: stack))
              end
              else if state.(w) = 0 then dfs w (e :: stack)
            end)
          (Graph.out_links g v);
        if !cycle = None then state.(v) <- 2
      end
    in
    for v = 0 to n - 1 do
      if state.(v) = 0 && !cycle = None then dfs v []
    done;
    match !cycle with
    | None -> ()
    | Some links ->
      let bottleneck = List.fold_left (fun a e -> Float.min a frac.(e)) infinity links in
      List.iter (fun e -> frac.(e) <- Float.max 0.0 (frac.(e) -. bottleneck)) links;
      removed := !removed +. bottleneck;
      find_cycle ()
  in
  find_cycle ();
  !removed

let decompose g t k =
  let a, b = Routing.pair t k in
  let frac = Routing.row_dense t k in
  let circulation = strip_cycles g frac in
  let paths = ref [] in
  let guard = ref (Graph.num_links g + 4) in
  let rec peel () =
    decr guard;
    if !guard >= 0 then begin
      (* Trace a positive-flow path a -> b: DFS preferring the largest
         fraction first, backtracking past dead ends (a partially-dropped
         routing can strand flow at a failure point). The flow subgraph is
         acyclic after strip_cycles, so the search terminates. *)
      let rec trace v acc =
        if v = b then Some (List.rev acc)
        else begin
          let candidates =
            Array.to_list (Graph.out_links g v)
            |> List.filter (fun e -> frac.(e) > eps)
            |> List.sort (fun e1 e2 -> Float.compare frac.(e2) frac.(e1))
          in
          let rec try_each = function
            | [] -> None
            | e :: rest -> (
              match trace (Graph.dst g e) (e :: acc) with
              | Some _ as found -> found
              | None -> try_each rest)
          in
          try_each candidates
        end
      in
      match trace a [] with
      | None -> ()
      | Some links ->
        let weight = List.fold_left (fun acc e -> Float.min acc frac.(e)) infinity links in
        if weight > eps then begin
          List.iter (fun e -> frac.(e) <- frac.(e) -. weight) links;
          paths := { weight; links } :: !paths;
          peel ()
        end
    end
  in
  peel ();
  (List.rev !paths, circulation)

let recompose g paths =
  let frac = Array.make (Graph.num_links g) 0.0 in
  List.iter
    (fun { weight; links } -> List.iter (fun e -> frac.(e) <- frac.(e) +. weight) links)
    paths;
  frac

let total_paths g t =
  let acc = ref 0 in
  for k = 0 to Routing.num_commodities t - 1 do
    let paths, _ = decompose g t k in
    acc := !acc + List.length paths
  done;
  !acc

(* Paths compare equal when they traverse the same links; weights may be
   retuned without re-signalling, so churn counts link-sequence changes. *)
let path_churn g ~before ~after =
  if Routing.num_commodities before <> Routing.num_commodities after then
    invalid_arg "Flow_decompose.path_churn: commodity mismatch";
  let fresh = ref 0 and total = ref 0 in
  for k = 0 to Routing.num_commodities after - 1 do
    let old_paths, _ = decompose g before k in
    let new_paths, _ = decompose g after k in
    let old_set = List.map (fun p -> p.links) old_paths in
    List.iter
      (fun p ->
        incr total;
        if not (List.mem p.links old_set) then incr fresh)
      new_paths
  done;
  (!fresh, !total)
