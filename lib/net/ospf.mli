(** OSPF-style routing: shortest paths with equal-cost multi-path (ECMP)
    splitting, expressed in the flow representation. *)

(** Unit weights. *)
val unit_weights : Graph.t -> float array

(** Cisco-default weights: inversely proportional to capacity. *)
val inv_cap_weights : Graph.t -> float array

(** [routing g ?backend ?failed ~weights ~pairs] builds the ECMP flow
    routing for the given commodities on the surviving topology, stored
    under [backend] (default dense — base-routing rows touch most of the
    network). Commodities whose destination is unreachable get an
    all-zero row (traffic is lost), matching OSPF behaviour under
    partition. *)
val routing :
  Graph.t ->
  ?backend:Routing.Backend.t ->
  ?failed:Graph.link_set ->
  weights:float array ->
  pairs:(Graph.node * Graph.node) array ->
  unit ->
  Routing.t

(** The ECMP next-hop links of [v] toward [dst] under [weights] (live links
    on shortest paths only). Used by the forwarding-plane emulation. *)
val next_hops :
  Graph.t ->
  ?failed:Graph.link_set ->
  weights:float array ->
  dst:Graph.node ->
  unit ->
  Graph.link list array
