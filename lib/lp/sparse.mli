(** Sparse row vectors for the simplex tableau.

    A row is a pair of parallel arrays [(idx, v)] holding the column
    indices (strictly increasing) and values of its nonzeros, with an
    explicit length so rows can grow in place (CSR-style storage, one row
    at a time). R3's constraint rows carry a handful of nonzeros out of
    thousands of columns, so every kernel here is O(nnz), never O(width).

    This module is the shared {!R3_util.Rowvec} kernel set instantiated
    with the tableau's {!val-drop} tolerance; the routing storage
    substrate ([R3_net.Routing]) uses the same kernels with an exact-zero
    tolerance.

    Values with magnitude below {!val-drop} are treated as structural
    zeros and removed by the mutating kernels; this bounds fill-in during
    long pivot sequences without disturbing equilibrated rows (all
    coefficients are O(1) after row scaling). *)

type t

(** Magnitude below which entries are dropped by {!scale} and {!axpy}. *)
val drop : float

(** [create ?cap ()] is an empty row with initial capacity [cap]. *)
val create : ?cap:int -> unit -> t

(** [of_pairs idx v] builds a row from parallel index/value arrays. Indices
    need not be sorted or unique: duplicates are summed, zeros dropped.
    The input arrays are not retained. *)
val of_pairs : int array -> float array -> t

val copy : t -> t

(** Number of stored nonzeros. *)
val nnz : t -> int

(** [get r j] is the coefficient at column [j] (0 if absent); O(log nnz). *)
val get : t -> int -> float

(** [set r j x] writes coefficient [x] at column [j], inserting or removing
    the entry as needed. O(nnz) worst case on insert. *)
val set : t -> int -> float -> unit

(** Remove the entry at column [j] (exact structural zero). *)
val clear : t -> int -> unit

(** [scale r k] multiplies every entry by [k], dropping entries that fall
    below the drop tolerance. *)
val scale : t -> float -> unit

(** Reusable merge buffer for {!axpy}; never share one across domains. *)
type scratch

val scratch : unit -> scratch

(** [axpy ~y ~x factor] computes [y := y - factor * x] by merging the two
    sorted nonzero streams; entries below the drop tolerance are removed.
    [x] is unchanged. With [?scratch] the merge output buffer is recycled
    between calls (swap against [y]'s old storage), eliminating the
    per-call allocation on the simplex pivot hot path. *)
val axpy : ?scratch:scratch -> y:t -> x:t -> float -> unit

(** [iter f r] applies [f j v] to each nonzero in increasing column order. *)
val iter : (int -> float -> unit) -> t -> unit

(** [raw r] exposes [(idx, v, n)]: the first [n] entries of the parallel
    arrays are the nonzeros. Read-only view for allocation-free hot loops
    (a closure passed to {!iter} boxes every float crossing the call);
    invalidated by any mutating operation. *)
val raw : t -> int array * float array * int

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a

(** [dot r dense] is [sum_j r_j * dense.(j)]; O(nnz). *)
val dot : t -> float array -> float

val to_dense : int -> t -> float array
