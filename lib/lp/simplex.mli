(** Two-phase primal simplex over standard nonnegative variables.

    This is the numerical core under {!Problem}; it solves

    {v  min c . x   s.t.  A x (<= | = | >=) b,   x >= 0  v}

    Phase 1 drives artificial variables to zero starting from a slack basis;
    phase 2 optimizes the true objective. Devex pricing with a Bland
    fallback after a run of degenerate pivots provides anti-cycling. Rows are
    equilibrated (scaled by their max absolute coefficient) for numerical
    robustness.

    Three interchangeable backends share this pivoting discipline:

    - [`Revised] holds the basis as a sparse LU factorization ({!Lu})
      instead of a pivoted tableau: each iteration is one BTRAN (pivot
      row), one FTRAN (entering column) and an eta-file append, so
      per-pivot work scales with the touched nonzeros, not the total
      column count. Pricing is Devex over a cached candidate list. This
      is the fast path for large constraint-generation workloads.
    - [`Sparse] (default) keeps every tableau row as a {!Sparse.t}; pivots,
      cost-row eliminations and Devex updates run in O(nnz) rather than
      O(columns), but every pivot still rewrites all rows.
    - [`Dense] is the original full-tableau implementation, kept as the
      reference oracle for tests and benchmarks.

    All backends return the same statuses and (within numerical tolerance)
    the same objectives. *)

type cmp = Le | Ge | Eq

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit

type outcome = {
  status : status;
  x : float array;  (** primal values (length = num variables); zeros unless [Optimal] *)
  objective : float;  (** c . x at termination *)
  pivots : int;  (** total pivot count across both phases *)
}

type backend = [ `Dense | `Sparse | `Revised ]

(** [solve ~obj ~rows ~cmps ~rhs] where [rows.(i)] is the sparse row
    [(indices, coefficients)] of constraint [i]. All variable indices must
    be in [0, Array.length obj). [max_pivots] caps total pivots.
    [backend] selects the tableau representation (default [`Sparse]). *)
val solve :
  ?backend:backend ->
  ?max_pivots:int ->
  obj:float array ->
  rows:(int array * float array) array ->
  cmps:cmp array ->
  rhs:float array ->
  unit ->
  outcome

(** Warm-startable solver handle.

    {!Session.create} runs the full two-phase solve once; {!Session.add_row}
    then appends constraints, and {!Session.resolve} restores primal
    feasibility with dual-simplex pivots instead of re-solving from
    scratch - the classic cutting-plane work-loop. On the [`Sparse]
    tableau engine each new row is expressed over the current basis and
    given its own slack; on [`Revised] the appended row keeps its
    original coefficients and the carried-over LU factorization is
    refreshed at the next {!resolve}. Pivot counts accumulate across the
    session, so [pivots (resolve s)] is the total effort since
    [create]. *)
module Session : sig
  type t

  (** Build the solver state and run the initial two-phase solve; the
      result is available via {!outcome}. [backend] picks the engine
      ([`Dense] maps to the [`Sparse] tableau; default [`Sparse]) - a
      [`Revised] session whose basis turns out numerically singular
      falls back to the tableau engine transparently. [max_pivots] is
      the pivot budget for the initial solve and for each subsequent
      {!resolve}. *)
  val create :
    ?backend:backend ->
    ?max_pivots:int ->
    obj:float array ->
    rows:(int array * float array) array ->
    cmps:cmp array ->
    rhs:float array ->
    unit ->
    t

  (** Result of the last (re-)solve. *)
  val outcome : t -> outcome

  (** [add_row s (idx, coef) cmp rhs] appends a constraint over existing
      variables. [Eq] rows are added as a [Le]/[Ge] pair. Takes effect at
      the next {!resolve}. *)
  val add_row : t -> int array * float array -> cmp -> float -> unit

  (** Re-solve after {!add_row}s, reusing the current basis. Returns
      [Iteration_limit] when the warm state is unusable (initial solve was
      not optimal, or the dual repair exhausted its budget); callers should
      then fall back to a cold solve. *)
  val resolve : t -> outcome

  (** Cumulative pivots since [create]. *)
  val pivots : t -> int

  (** Whether the session can warm-restart (last solve ended [Optimal]). *)
  val warm_ok : t -> bool

  (** Basis refactorizations so far; 0 on the tableau engine. *)
  val refactorizations : t -> int
end
