(* The simplex-tableau sparse row is the shared [R3_util.Rowvec] kernel
   instantiated with the [Tol.sparse_drop] drop tolerance: long pivot
   sequences need fill-in bounded, and after row equilibration every
   coefficient is O(1) so the tolerance never disturbs a meaningful
   entry. The routing substrate uses the same kernels with drop = 0.0
   (bit-exactness). *)

module R = R3_util.Rowvec

type t = R.t

let drop = Tol.sparse_drop

let create ?cap () = R.create ?cap ()

let nnz = R.nnz

let copy = R.copy

let of_pairs idx v = R.of_pairs ~drop idx v

let get = R.get

let clear = R.clear

let set r j x = R.set ~drop r j x

let scale r k = R.scale ~drop r k

type scratch = R.scratch

let scratch = R.scratch

let axpy ?scratch ~y ~x factor = R.axpy ~drop ?scratch ~y ~x factor

let raw = R.raw

let iter = R.iter

let fold = R.fold

let dot = R.dot

let to_dense = R.to_dense
