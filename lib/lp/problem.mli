(** Linear-program builder.

    Models of the form

    {v  min/max  c . x
        s.t.     sum_j a_ij x_j  (<= | = | >=)  b_i     for each row i
                 lb_j <= x_j <= ub_j                     for each var j  v}

    Variables default to [lb = 0], [ub = +inf]. The builder is mutable and
    append-only; [solve] snapshots it. Duplicate variables inside one term
    list are summed, so callers may emit terms incrementally. *)

type t

(** Opaque variable handle, valid only for the problem that created it. *)
type var

type cmp = Le | Ge | Eq

(** Simplex engine: [`Revised] runs the LU-factorized revised simplex
    (per-pivot work scales with touched nonzeros, the fast path for
    constraint generation); [`Sparse] (default) is the sparse-row
    tableau; [`Dense] is the reference full-tableau implementation.
    Identical statuses, objectives within numerical tolerance. *)
type backend = [ `Dense | `Sparse | `Revised ]

(** ["dense"], ["tableau"] (alias ["sparse"]) or ["revised"],
    case-insensitive; [None] on anything else. *)
val backend_of_string : string -> backend option

(** Inverse of {!backend_of_string} on its canonical spellings. *)
val backend_name : backend -> string

type solution = {
  objective : float;  (** optimal objective value, in the user's sense *)
  value : var -> float;  (** value of each variable at the optimum *)
  pivots : int;  (** simplex pivots spent producing this solution *)
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit  (** solver hit its pivot budget before proving a status *)

val create : ?name:string -> unit -> t

val name : t -> string

(** [var t name] adds a variable. Default bounds [0, +inf).
    Raises [Invalid_argument] if [lb > ub]. *)
val var : t -> ?lb:float -> ?ub:float -> string -> var

(** A variable unbounded in both directions. *)
val free_var : t -> string -> var

(** [constr t terms cmp rhs] adds the row [sum terms cmp rhs]. *)
val constr : t -> ?name:string -> (float * var) list -> cmp -> float -> unit

(** Set the objective (replacing any previous one). *)
val minimize : t -> (float * var) list -> unit

val maximize : t -> (float * var) list -> unit

(** [add_objective_term t coef v] adds [coef * v] to the current objective
    without changing its sense. *)
val add_objective_term : t -> float -> var -> unit

val num_vars : t -> int
val num_constraints : t -> int

(** Human-readable variable name (for debugging and error messages). *)
val var_name : t -> var -> string

(** Solve with the built-in two-phase primal simplex.
    [max_pivots] defaults to a budget proportional to the problem size. *)
val solve : ?backend:backend -> ?max_pivots:int -> t -> result

(** {2 Incremental solving}

    A session translates the problem once, solves it, and keeps the final
    simplex basis alive. Rows appended to the problem with {!constr} after
    a solve are picked up by the next {!resolve} and repaired with
    dual-simplex pivots instead of a from-scratch two-phase solve - the
    work-loop of cutting-plane methods like {!R3_core.Offline}'s
    constraint generation. Adding {e variables} after the first solve
    forces a transparent cold rebuild (still correct, just not warm). *)

(** Incremental solve handle over a problem. All row additions must go
    through the underlying problem's {!constr}; the session notices them
    by row count. *)
type session

(** [session t] prepares an incremental handle; nothing is solved until
    the first {!resolve}. [backend] picks the warm engine ([`Dense] maps
    to the sparse tableau); [max_pivots] bounds each individual
    (re-)solve. *)
val session : ?backend:backend -> ?max_pivots:int -> t -> session

(** Solve, or re-solve warm after rows were added. Falls back to a cold
    solve automatically when the warm basis is unusable. *)
val resolve : session -> result

(** Total simplex pivots spent by this session so far (initial solve plus
    all warm repairs and cold fallbacks). *)
val session_pivots : session -> int

(** Pretty-print a small problem in LP-like text format (tests/debugging). *)
val pp : Format.formatter -> t -> unit
