(** Sparse LU basis factorization with a product-form eta file — the
    numerical engine of the revised simplex backend in {!Simplex}.

    {!refactor} factors the current basis with a left-looking column LU:
    columns in ascending-nonzero order, threshold partial pivoting
    ({!Tol.lu_threshold}) with a static-row-count Markowitz bias inside
    the admissible window. Each simplex basis change then appends one
    sparse eta column via {!update}; {!ftran_pat}/{!btran_pat} run the
    two triangular solves plus the eta file on a caller-owned dense
    workspace, driven by the right-hand side's nonzero pattern: only the
    elimination steps reachable from it are visited (heap-ordered, with
    transposed factor adjacency for the BTRAN direction), and the
    result's pattern is returned so downstream consumers never rescan
    the whole vector. A solve costs O(touched nonzeros * log),
    independent of the basis dimension and of how many columns the LP
    has. {!ftran}/{!btran} are the dense entry points (one O(m) scan to
    recover the pattern).

    The eta file should be folded back into a fresh factorization every
    [refactor_every] updates ({!needs_refactor}) or when a pivot looks
    unstable — policy is the caller's; this module only reports. *)

type t

(** Raised when no pivot above {!Tol.lu_singular} remains for a column
    ({!refactor}), or an eta pivot is below it ({!update}). *)
exception Singular

val create : ?refactor_every:int -> unit -> t

(** [refactor t ~m ~col] factors the [m]-dimensional basis whose
    position-[k] column is [col k] = (row indices, values, used length).
    Clears the eta file. Raises {!Singular} on a numerically singular
    basis. *)
val refactor : t -> m:int -> col:(int -> int array * float array * int) -> unit

(** [ftran_pat t x pat n] solves [B x = b] in place: on entry [x] holds
    [b] indexed by row with its [n] nonzero rows listed in [pat], on
    exit the solution indexed by basis position with its positions
    written back into [pat]. [pat] must have room for [dim t] entries.
    Returns the result's count. *)
val ftran_pat : t -> float array -> int array -> int -> int

(** [btran_pat t x pat n] solves [B^T y = c] in place: on entry indexed
    by basis position (pattern = positions), on exit by row (pattern =
    rows). Same contract as {!ftran_pat}. *)
val btran_pat : t -> float array -> int array -> int -> int

(** Dense entry points: scan the vector for its pattern, then solve as
    {!ftran_pat}/{!btran_pat}. Return the result's nonzero count. *)
val ftran : t -> float array -> int

val btran : t -> float array -> int

(** [update_pat t ~r ~w ~pat ~n] records the basis change that replaced
    position [r] by the column whose FTRAN result is [w] (dense,
    basis-position space, nonzeros listed in [pat]). Raises {!Singular}
    when [|w.(r)|] is below {!Tol.lu_singular}. *)
val update_pat : t -> r:int -> w:float array -> pat:int array -> n:int -> unit

(** As {!update_pat}, recovering the pattern with an O(m) scan. *)
val update : t -> r:int -> w:float array -> unit

val dim : t -> int
val factored : t -> bool

(** Eta columns since the last {!refactor}. *)
val eta_count : t -> int

(** Stored eta entries since the last {!refactor}. *)
val eta_entries : t -> int

(** Lifetime refactorization count. *)
val refactor_count : t -> int

(** Nonzeros stored in the current L and U factors. *)
val fill_entries : t -> int

(** Whether the eta file has reached [refactor_every]. *)
val needs_refactor : t -> bool
