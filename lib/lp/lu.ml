(* Sparse LU basis factorization for the revised simplex.

   [refactor] runs a left-looking (Gilbert-Peierls style) column LU over
   the basis columns with threshold partial pivoting: columns are
   processed in ascending-nonzero order and, within a column, the pivot
   row is the sparsest one (static row count, an approximate Markowitz
   rule) among rows within [Tol.lu_threshold] of the largest eligible
   magnitude. Between refactorizations the basis evolves by product-form
   eta updates: each simplex pivot appends one sparse eta column, and
   FTRAN/BTRAN apply the eta file after/before the triangular solves.

   Solves are hypersparse: the caller hands in the nonzero pattern of
   the right-hand side, the triangular sweeps visit only the elimination
   steps reachable from it (a heap keeps them in topological order, and
   scatter-form transposed adjacency built at refactorization serves the
   BTRAN direction), and the result's pattern is handed back. The work
   is O(touched nonzeros * log) and never scales with the basis
   dimension, let alone the LP's total column count. Past an input
   density cutoff the solves fall back to plain dense sweeps — cheaper
   than paying the heap's log factor on a vector that touches most
   steps anyway.

   The factors live in flat CSC arrays ([l_ptr]/[l_idx]/[l_v], likewise
   for U) that persist across refactorizations: factoring allocates
   nothing per column, which matters when the simplex refactorizes every
   few dozen pivots. *)

exception Singular

type t = {
  refactor_every : int;
  mutable m : int;  (* dimension of the factored basis; 0 = empty *)
  mutable factored : bool;
  (* Elimination step [k] pivots original row [pivrow.(k)] for basis
     position [colorder.(k)]; [rowpos] is the inverse of [pivrow] and
     [posstep] the inverse of [colorder]. *)
  mutable pivrow : int array;
  mutable rowpos : int array;
  mutable colorder : int array;
  mutable posstep : int array;
  (* L: unit lower triangular in pivot order, flat CSC. Column [k]
     holds the multipliers (original-row index, value) of rows unpivoted
     at step [k]. U: column [k] holds entries at earlier steps, plus the
     pivot [u_diag.(k)]. *)
  mutable l_ptr : int array;  (* length m+1 *)
  mutable l_idx : int array;
  mutable l_v : float array;
  mutable u_ptr : int array;
  mutable u_idx : int array;
  mutable u_v : float array;
  mutable u_diag : float array;
  (* Transposed adjacency (CSR), rebuilt at refactorization, for the
     scatter-form BTRAN sweeps: [ur] maps step [tt] to the later columns
     holding a U entry at [tt]; [lr] maps original row [i] to the steps
     whose L column holds [i]. *)
  mutable ur_ptr : int array;
  mutable ur_idx : int array;
  mutable ur_v : float array;
  mutable lr_ptr : int array;
  mutable lr_idx : int array;
  mutable lr_v : float array;
  (* Product-form eta file, in basis-position space. *)
  mutable n_eta : int;
  mutable eta_r : int array;
  mutable eta_piv : float array;
  mutable eta_idx : int array array;
  mutable eta_v : float array array;
  mutable eta_nnz : int;
  mutable refactors : int;  (* lifetime refactorization count *)
  (* scratch, all persistent across calls *)
  mutable wx : float array;  (* dense accumulation column *)
  mutable wmark : Bytes.t;
  mutable wtouch : int array;
  mutable ws : float array;  (* step-space vector for the solves *)
  mutable wv : float array;  (* second step-space vector (BTRAN) *)
  mutable wpat : int array;  (* pattern buffer for the dense entry points *)
  mutable rcount : int array;  (* static row counts (Markowitz bias) *)
  mutable order : int array;
  mutable colnnz : int array;
  mutable u_tt : int array;  (* per-column U assembly, popped ascending *)
  mutable u_xv : float array;
  mutable tr_cur : int array;  (* transpose fill cursors, length m+1 *)
  (* min/max-heap of pending elimination steps, with a membership byte
     per step so each is queued once *)
  mutable heap : int array;
  mutable hmark : Bytes.t;
}

let create ?(refactor_every = Tol.refactor_every) () =
  {
    refactor_every = Int.max refactor_every 1;
    m = 0;
    factored = false;
    pivrow = [||];
    rowpos = [||];
    colorder = [||];
    posstep = [||];
    l_ptr = [| 0 |];
    l_idx = [||];
    l_v = [||];
    u_ptr = [| 0 |];
    u_idx = [||];
    u_v = [||];
    u_diag = [||];
    ur_ptr = [||];
    ur_idx = [||];
    ur_v = [||];
    lr_ptr = [||];
    lr_idx = [||];
    lr_v = [||];
    n_eta = 0;
    eta_r = Array.make 8 0;
    eta_piv = Array.make 8 0.0;
    eta_idx = Array.make 8 [||];
    eta_v = Array.make 8 [||];
    eta_nnz = 0;
    refactors = 0;
    wx = [||];
    wmark = Bytes.empty;
    wtouch = [||];
    ws = [||];
    wv = [||];
    wpat = [||];
    rcount = [||];
    order = [||];
    colnnz = [||];
    u_tt = [||];
    u_xv = [||];
    tr_cur = [||];
    heap = [||];
    hmark = Bytes.empty;
  }

let dim t = t.m
let factored t = t.factored
let eta_count t = t.n_eta
let eta_entries t = t.eta_nnz
let refactor_count t = t.refactors
let needs_refactor t = t.n_eta >= t.refactor_every
let fill_entries t = if t.m = 0 then 0 else t.l_ptr.(t.m) + t.u_ptr.(t.m) + t.m

let ensure_dim t m =
  if Array.length t.pivrow < m then begin
    t.pivrow <- Array.make m 0;
    t.rowpos <- Array.make m (-1);
    t.colorder <- Array.make m 0;
    t.posstep <- Array.make m 0;
    t.l_ptr <- Array.make (m + 1) 0;
    t.u_ptr <- Array.make (m + 1) 0;
    t.u_diag <- Array.make m 0.0;
    t.ur_ptr <- Array.make (m + 1) 0;
    t.lr_ptr <- Array.make (m + 1) 0;
    t.wx <- Array.make m 0.0;
    t.wmark <- Bytes.make m '\000';
    t.wtouch <- Array.make m 0;
    t.ws <- Array.make m 0.0;
    t.wv <- Array.make m 0.0;
    t.wpat <- Array.make m 0;
    t.rcount <- Array.make m 0;
    t.order <- Array.make m 0;
    t.colnnz <- Array.make m 0;
    t.u_tt <- Array.make m 0;
    t.u_xv <- Array.make m 0.0;
    t.tr_cur <- Array.make (m + 1) 0;
    t.heap <- Array.make m 0;
    t.hmark <- Bytes.make m '\000'
  end;
  t.m <- m

let grow_int a need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (Int.max need (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float a need =
  if Array.length a >= need then a
  else begin
    let b = Array.make (Int.max need (2 * Array.length a)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* Heap of pending elimination steps over [t.heap]/[t.hmark]; [sign] is
   [1] for a min-heap (forward sweeps) and [-1] for a max-heap (backward
   sweeps). The membership byte makes pushes idempotent, which is what
   keeps every step processed exactly once per sweep. *)

let hpush t hn ~sign tt =
  if Bytes.unsafe_get t.hmark tt = '\000' then begin
    Bytes.unsafe_set t.hmark tt '\001';
    let heap = t.heap in
    let i = ref !hn in
    incr hn;
    heap.(!i) <- tt;
    while !i > 0 && sign * (heap.((!i - 1) / 2) - heap.(!i)) > 0 do
      let p = (!i - 1) / 2 in
      let tmp = heap.(p) in
      heap.(p) <- heap.(!i);
      heap.(!i) <- tmp;
      i := p
    done
  end

let hpop t hn ~sign =
  let heap = t.heap in
  let top = heap.(0) in
  Bytes.unsafe_set t.hmark top '\000';
  decr hn;
  heap.(0) <- heap.(!hn);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    let s = ref !i in
    if l < !hn && sign * (heap.(l) - heap.(!s)) < 0 then s := l;
    if l + 1 < !hn && sign * (heap.(l + 1) - heap.(!s)) < 0 then s := l + 1;
    if !s = !i then continue := false
    else begin
      let tmp = heap.(!s) in
      heap.(!s) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !s
    end
  done;
  top

(* Factor the basis whose position-[k] column is [col k] (row indices,
   values, used length). Raises {!Singular} when no acceptable pivot
   remains for some column. Clears the eta file. *)
let refactor t ~m ~col =
  ensure_dim t m;
  t.factored <- false;
  t.n_eta <- 0;
  t.eta_nnz <- 0;
  Array.fill t.rowpos 0 m (-1);
  Array.fill t.rcount 0 m 0;
  (* Column order: ascending nonzero count (approximate Markowitz column
     rule), stable counting sort; row counts of B for the within-column
     row tie-break. *)
  let maxnnz = ref 0 in
  for c = 0 to m - 1 do
    let idx, _, n = col c in
    t.colnnz.(c) <- n;
    if n > !maxnnz then maxnnz := n;
    for s = 0 to n - 1 do
      t.rcount.(idx.(s)) <- t.rcount.(idx.(s)) + 1
    done
  done;
  let cnt = Array.make (!maxnnz + 2) 0 in
  for c = 0 to m - 1 do
    cnt.(t.colnnz.(c) + 1) <- cnt.(t.colnnz.(c) + 1) + 1
  done;
  for i = 1 to !maxnnz + 1 do
    cnt.(i) <- cnt.(i) + cnt.(i - 1)
  done;
  for c = 0 to m - 1 do
    let b = t.colnnz.(c) in
    t.order.(cnt.(b)) <- c;
    cnt.(b) <- cnt.(b) + 1
  done;
  let wx = t.wx and wmark = t.wmark and wtouch = t.wtouch in
  let hn = ref 0 in
  let touched = ref 0 in
  let lp = ref 0 and up = ref 0 in
  t.l_ptr.(0) <- 0;
  t.u_ptr.(0) <- 0;
  for k = 0 to m - 1 do
    let c = t.order.(k) in
    t.colorder.(k) <- c;
    (* load column c; entries on already-pivoted rows queue their step *)
    touched := 0;
    let touch i =
      if Bytes.unsafe_get wmark i = '\000' then begin
        Bytes.unsafe_set wmark i '\001';
        wtouch.(!touched) <- i;
        incr touched;
        let tt = t.rowpos.(i) in
        if tt >= 0 then hpush t hn ~sign:1 tt
      end
    in
    let idx, v, n = col c in
    for s = 0 to n - 1 do
      let i = idx.(s) in
      touch i;
      wx.(i) <- wx.(i) +. v.(s)
    done;
    (* left-looking elimination in ascending step order: the heap holds
       exactly the earlier steps whose pivot row carries a nonzero, and
       eliminating step [tt] only fills rows pivoted later, so the
       traversal is complete without scanning steps 0..k-1. *)
    let u_count = ref 0 in
    while !hn > 0 do
      let tt = hpop t hn ~sign:1 in
      let xt = wx.(t.pivrow.(tt)) in
      if Float.abs xt > Tol.pivot_drop then begin
        t.u_tt.(!u_count) <- tt;
        t.u_xv.(!u_count) <- xt;
        incr u_count;
        for s = t.l_ptr.(tt) to t.l_ptr.(tt + 1) - 1 do
          let i = Array.unsafe_get t.l_idx s in
          touch i;
          wx.(i) <- wx.(i) -. (Array.unsafe_get t.l_v s *. xt)
        done
      end
    done;
    (* pivot choice among not-yet-pivoted rows *)
    let amax = ref 0.0 in
    for s = 0 to !touched - 1 do
      let i = wtouch.(s) in
      if t.rowpos.(i) < 0 then begin
        let a = Float.abs wx.(i) in
        if a > !amax then amax := a
      end
    done;
    if !amax <= Tol.lu_singular then raise Singular;
    let cutoff = Tol.lu_threshold *. !amax in
    let best = ref (-1) and best_rc = ref max_int and best_a = ref 0.0 in
    for s = 0 to !touched - 1 do
      let i = wtouch.(s) in
      if t.rowpos.(i) < 0 then begin
        let a = Float.abs wx.(i) in
        if a >= cutoff then begin
          let rc = t.rcount.(i) in
          if rc < !best_rc || (rc = !best_rc && a > !best_a) then begin
            best := i;
            best_rc := rc;
            best_a := a
          end
        end
      end
    done;
    let p = !best in
    let d = wx.(p) in
    t.pivrow.(k) <- p;
    t.rowpos.(p) <- k;
    t.u_diag.(k) <- d;
    (* L column: multipliers on the remaining unpivoted rows *)
    t.l_idx <- grow_int t.l_idx (!lp + !touched);
    t.l_v <- grow_float t.l_v (!lp + !touched);
    for s = 0 to !touched - 1 do
      let i = wtouch.(s) in
      if t.rowpos.(i) < 0 && Float.abs wx.(i) > Tol.pivot_drop then begin
        t.l_idx.(!lp) <- i;
        t.l_v.(!lp) <- wx.(i) /. d;
        incr lp
      end
    done;
    t.l_ptr.(k + 1) <- !lp;
    (* U column (entries at earlier steps, ascending pop order) *)
    t.u_idx <- grow_int t.u_idx (!up + !u_count);
    t.u_v <- grow_float t.u_v (!up + !u_count);
    Array.blit t.u_tt 0 t.u_idx !up !u_count;
    Array.blit t.u_xv 0 t.u_v !up !u_count;
    up := !up + !u_count;
    t.u_ptr.(k + 1) <- !up;
    (* reset workspace *)
    for s = 0 to !touched - 1 do
      let i = wtouch.(s) in
      wx.(i) <- 0.0;
      Bytes.unsafe_set wmark i '\000'
    done
  done;
  for k = 0 to m - 1 do
    t.posstep.(t.colorder.(k)) <- k
  done;
  (* Transposed adjacency for the BTRAN scatter sweeps. *)
  let unnz = t.u_ptr.(m) and lnnz = t.l_ptr.(m) in
  t.ur_idx <- grow_int t.ur_idx unnz;
  t.ur_v <- grow_float t.ur_v unnz;
  t.lr_idx <- grow_int t.lr_idx lnnz;
  t.lr_v <- grow_float t.lr_v lnnz;
  let cur = t.tr_cur in
  Array.fill t.ur_ptr 0 (m + 1) 0;
  for s = 0 to unnz - 1 do
    t.ur_ptr.(t.u_idx.(s) + 1) <- t.ur_ptr.(t.u_idx.(s) + 1) + 1
  done;
  for i = 1 to m do
    t.ur_ptr.(i) <- t.ur_ptr.(i) + t.ur_ptr.(i - 1)
  done;
  Array.blit t.ur_ptr 0 cur 0 (m + 1);
  for k = 0 to m - 1 do
    for s = t.u_ptr.(k) to t.u_ptr.(k + 1) - 1 do
      let w = cur.(t.u_idx.(s)) in
      t.ur_idx.(w) <- k;
      t.ur_v.(w) <- t.u_v.(s);
      cur.(t.u_idx.(s)) <- w + 1
    done
  done;
  Array.fill t.lr_ptr 0 (m + 1) 0;
  for s = 0 to lnnz - 1 do
    t.lr_ptr.(t.l_idx.(s) + 1) <- t.lr_ptr.(t.l_idx.(s) + 1) + 1
  done;
  for i = 1 to m do
    t.lr_ptr.(i) <- t.lr_ptr.(i) + t.lr_ptr.(i - 1)
  done;
  Array.blit t.lr_ptr 0 cur 0 (m + 1);
  for k = 0 to m - 1 do
    for s = t.l_ptr.(k) to t.l_ptr.(k + 1) - 1 do
      let w = cur.(t.l_idx.(s)) in
      t.lr_idx.(w) <- k;
      t.lr_v.(w) <- t.l_v.(s);
      cur.(t.l_idx.(s)) <- w + 1
    done
  done;
  t.refactors <- t.refactors + 1;
  t.factored <- true

(* The heap-ordered sweeps win when the right-hand side touches few
   elimination steps; past this input density the plain dense sweeps
   (O(m + nnz factors), no log factor, no per-entry heap traffic) are
   cheaper. *)
let dense_cutoff t n = n * 8 > t.m

let scan_out t x pat =
  let rn = ref 0 in
  for i = 0 to t.m - 1 do
    if Array.unsafe_get x i <> 0.0 then begin
      pat.(!rn) <- i;
      incr rn
    end
  done;
  !rn

let apply_etas_fwd t x =
  for e = 0 to t.n_eta - 1 do
    let r = t.eta_r.(e) in
    let xr = x.(r) in
    if xr <> 0.0 then begin
      let tv = xr /. t.eta_piv.(e) in
      x.(r) <- tv;
      let ei = t.eta_idx.(e) and ev = t.eta_v.(e) in
      for s = 0 to Array.length ei - 1 do
        let i = Array.unsafe_get ei s in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (Array.unsafe_get ev s *. tv))
      done
    end
  done

let ftran_dense t x pat =
  let ws = t.ws in
  (* L z = b ascending: row [pivrow tt] is final once step [tt] runs *)
  for tt = 0 to t.m - 1 do
    let p = t.pivrow.(tt) in
    let v = x.(p) in
    ws.(tt) <- v;
    x.(p) <- 0.0;
    if v <> 0.0 then
      for s = t.l_ptr.(tt) to t.l_ptr.(tt + 1) - 1 do
        let i = Array.unsafe_get t.l_idx s in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (Array.unsafe_get t.l_v s *. v))
      done
  done;
  (* U y = z descending *)
  for tt = t.m - 1 downto 0 do
    let v = ws.(tt) /. t.u_diag.(tt) in
    ws.(tt) <- 0.0;
    if v <> 0.0 then begin
      x.(t.colorder.(tt)) <- v;
      for s = t.u_ptr.(tt) to t.u_ptr.(tt + 1) - 1 do
        let k2 = Array.unsafe_get t.u_idx s in
        Array.unsafe_set ws k2
          (Array.unsafe_get ws k2 -. (Array.unsafe_get t.u_v s *. v))
      done
    end
  done;
  apply_etas_fwd t x;
  scan_out t x pat

let btran_dense t x pat =
  (* eta transposes, newest first *)
  for e = t.n_eta - 1 downto 0 do
    let r = t.eta_r.(e) in
    let acc = ref x.(r) in
    let ei = t.eta_idx.(e) and ev = t.eta_v.(e) in
    for s = 0 to Array.length ei - 1 do
      acc :=
        !acc
        -. (Array.unsafe_get ev s *. Array.unsafe_get x (Array.unsafe_get ei s))
    done;
    x.(r) <- !acc /. t.eta_piv.(e)
  done;
  let ws = t.ws in
  (* U^T v = s ascending, gathering the earlier steps *)
  for tt = 0 to t.m - 1 do
    let p = t.colorder.(tt) in
    let acc = ref x.(p) in
    x.(p) <- 0.0;
    for s = t.u_ptr.(tt) to t.u_ptr.(tt + 1) - 1 do
      acc :=
        !acc
        -. (Array.unsafe_get t.u_v s *. Array.unsafe_get ws (Array.unsafe_get t.u_idx s))
    done;
    ws.(tt) <- !acc /. t.u_diag.(tt)
  done;
  (* L^T y = v descending: rows in L column [tt] were pivoted later, so
     their solution values already sit in [x] *)
  for tt = t.m - 1 downto 0 do
    let acc = ref ws.(tt) in
    ws.(tt) <- 0.0;
    for s = t.l_ptr.(tt) to t.l_ptr.(tt + 1) - 1 do
      acc :=
        !acc
        -. (Array.unsafe_get t.l_v s *. Array.unsafe_get x (Array.unsafe_get t.l_idx s))
    done;
    x.(t.pivrow.(tt)) <- !acc
  done;
  scan_out t x pat

(* Hypersparse FTRAN: [x] holds [b] over rows on entry and the solution
   over basis positions on exit; [pat]/[n] list the input nonzero rows
   and are overwritten with the result's positions. Returns the result
   count. Work is O(touched nonzeros * log), independent of [t.m]. *)
let ftran_sparse t x pat n =
  let hn = ref 0 in
  (* forward: L z = b, z living at the pivot rows; steps pop ascending
     because L fill only lands on rows pivoted later *)
  for s = 0 to n - 1 do
    hpush t hn ~sign:1 t.rowpos.(pat.(s))
  done;
  let wtouch = t.wtouch in
  let zn = ref 0 in
  while !hn > 0 do
    let tt = hpop t hn ~sign:1 in
    let v = x.(t.pivrow.(tt)) in
    if v <> 0.0 then begin
      wtouch.(!zn) <- tt;
      incr zn;
      for s = t.l_ptr.(tt) to t.l_ptr.(tt + 1) - 1 do
        let i = Array.unsafe_get t.l_idx s in
        hpush t hn ~sign:1 t.rowpos.(i);
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (Array.unsafe_get t.l_v s *. v))
      done
    end
  done;
  (* move z into step space, clearing x back to all-zero *)
  let ws = t.ws in
  for s = 0 to !zn - 1 do
    let p = t.pivrow.(wtouch.(s)) in
    ws.(wtouch.(s)) <- x.(p);
    x.(p) <- 0.0
  done;
  (* back: U y = z, descending; U fill lands on earlier steps *)
  for s = 0 to !zn - 1 do
    hpush t hn ~sign:(-1) wtouch.(s)
  done;
  let rn = ref 0 in
  while !hn > 0 do
    let tt = hpop t hn ~sign:(-1) in
    let v = ws.(tt) /. t.u_diag.(tt) in
    ws.(tt) <- 0.0;
    if v <> 0.0 then begin
      x.(t.colorder.(tt)) <- v;
      pat.(!rn) <- t.colorder.(tt);
      incr rn;
      for s = t.u_ptr.(tt) to t.u_ptr.(tt + 1) - 1 do
        let k2 = Array.unsafe_get t.u_idx s in
        hpush t hn ~sign:(-1) k2;
        Array.unsafe_set ws k2
          (Array.unsafe_get ws k2 -. (Array.unsafe_get t.u_v s *. v))
      done
    end
  done;
  (* eta file, oldest first, in position space *)
  if t.n_eta > 0 then begin
    let wmark = t.wmark in
    for s = 0 to !rn - 1 do
      Bytes.unsafe_set wmark pat.(s) '\001'
    done;
    for e = 0 to t.n_eta - 1 do
      let r = t.eta_r.(e) in
      let xr = x.(r) in
      if xr <> 0.0 then begin
        let tv = xr /. t.eta_piv.(e) in
        x.(r) <- tv;
        let ei = t.eta_idx.(e) and ev = t.eta_v.(e) in
        for s = 0 to Array.length ei - 1 do
          let i = Array.unsafe_get ei s in
          if Bytes.unsafe_get wmark i = '\000' then begin
            Bytes.unsafe_set wmark i '\001';
            pat.(!rn) <- i;
            incr rn
          end;
          Array.unsafe_set x i
            (Array.unsafe_get x i -. (Array.unsafe_get ev s *. tv))
        done
      end
    done;
    for s = 0 to !rn - 1 do
      Bytes.unsafe_set wmark pat.(s) '\000'
    done
  end;
  !rn

let ftran_pat t x pat n =
  if dense_cutoff t n then ftran_dense t x pat else ftran_sparse t x pat n

(* Hypersparse BTRAN: [x] holds [c] over basis positions on entry and
   the solution over rows on exit; [pat]/[n] list the input positions
   and are overwritten with the result's rows. Returns the result
   count. *)
let btran_sparse t x pat n =
  let rn = ref n in
  (* eta transposes, newest first (gather form; the file is short) *)
  if t.n_eta > 0 then begin
    let wmark = t.wmark in
    for s = 0 to n - 1 do
      Bytes.unsafe_set wmark pat.(s) '\001'
    done;
    for e = t.n_eta - 1 downto 0 do
      let r = t.eta_r.(e) in
      let acc = ref x.(r) in
      let ei = t.eta_idx.(e) and ev = t.eta_v.(e) in
      for s = 0 to Array.length ei - 1 do
        acc :=
          !acc
          -. (Array.unsafe_get ev s *. Array.unsafe_get x (Array.unsafe_get ei s))
      done;
      let v = !acc /. t.eta_piv.(e) in
      x.(r) <- v;
      if v <> 0.0 && Bytes.unsafe_get wmark r = '\000' then begin
        Bytes.unsafe_set wmark r '\001';
        pat.(!rn) <- r;
        incr rn
      end
    done;
    for s = 0 to !rn - 1 do
      Bytes.unsafe_set wmark pat.(s) '\000'
    done
  end;
  (* move into step space, clearing x *)
  let hn = ref 0 in
  let ws = t.ws in
  for s = 0 to !rn - 1 do
    let p = pat.(s) in
    if x.(p) <> 0.0 then begin
      let tt = t.posstep.(p) in
      ws.(tt) <- x.(p);
      x.(p) <- 0.0;
      hpush t hn ~sign:1 tt
    end
  done;
  (* forward: U^T v = s, ascending, scatter via the U row adjacency *)
  let wv = t.wv and wtouch = t.wtouch in
  let zn = ref 0 in
  while !hn > 0 do
    let tt = hpop t hn ~sign:1 in
    let v = ws.(tt) /. t.u_diag.(tt) in
    ws.(tt) <- 0.0;
    if v <> 0.0 then begin
      wv.(tt) <- v;
      wtouch.(!zn) <- tt;
      incr zn;
      for s = t.ur_ptr.(tt) to t.ur_ptr.(tt + 1) - 1 do
        let k2 = Array.unsafe_get t.ur_idx s in
        hpush t hn ~sign:1 k2;
        Array.unsafe_set ws k2
          (Array.unsafe_get ws k2 -. (Array.unsafe_get t.ur_v s *. v))
      done
    end
  done;
  (* back: L^T y = v, descending, scatter via the L row adjacency;
     step [tt]'s result lands on original row [pivrow tt] and feeds the
     strictly earlier steps whose L column holds that row *)
  for s = 0 to !zn - 1 do
    hpush t hn ~sign:(-1) wtouch.(s)
  done;
  let rn = ref 0 in
  while !hn > 0 do
    let tt = hpop t hn ~sign:(-1) in
    let v = wv.(tt) in
    wv.(tt) <- 0.0;
    if v <> 0.0 then begin
      let p = t.pivrow.(tt) in
      x.(p) <- v;
      pat.(!rn) <- p;
      incr rn;
      for s = t.lr_ptr.(p) to t.lr_ptr.(p + 1) - 1 do
        let k2 = Array.unsafe_get t.lr_idx s in
        hpush t hn ~sign:(-1) k2;
        Array.unsafe_set wv k2
          (Array.unsafe_get wv k2 -. (Array.unsafe_get t.lr_v s *. v))
      done
    end
  done;
  !rn

let btran_pat t x pat n =
  if dense_cutoff t n then btran_dense t x pat else btran_sparse t x pat n

(* Dense entry points: one O(m) scan builds the pattern. *)

let ftran t x = ftran_pat t x t.wpat (scan_out t x t.wpat)
let btran t x = btran_pat t x t.wpat (scan_out t x t.wpat)

(* Append the product-form eta of a basis change at position [r] with
   FTRAN'd entering column [w] ([pat]/[n]: its nonzero positions). *)
let update_pat t ~r ~w ~pat ~n =
  let piv = w.(r) in
  if Float.abs piv <= Tol.lu_singular then raise Singular;
  if Array.length t.eta_r = t.n_eta then begin
    let cap = 2 * t.n_eta in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.n_eta;
      b
    in
    t.eta_r <- grow t.eta_r 0;
    t.eta_piv <- grow t.eta_piv 0.0;
    t.eta_idx <- grow t.eta_idx [||];
    t.eta_v <- grow t.eta_v [||]
  end;
  let c = ref 0 in
  for s = 0 to n - 1 do
    let i = pat.(s) in
    if i <> r && Float.abs w.(i) > Tol.pivot_drop then incr c
  done;
  let ei = Array.make !c 0 and ev = Array.make !c 0.0 in
  let k = ref 0 in
  for s = 0 to n - 1 do
    let i = pat.(s) in
    if i <> r && Float.abs w.(i) > Tol.pivot_drop then begin
      ei.(!k) <- i;
      ev.(!k) <- w.(i);
      incr k
    end
  done;
  let e = t.n_eta in
  t.eta_r.(e) <- r;
  t.eta_piv.(e) <- piv;
  t.eta_idx.(e) <- ei;
  t.eta_v.(e) <- ev;
  t.n_eta <- e + 1;
  t.eta_nnz <- t.eta_nnz + !c

let update t ~r ~w = update_pat t ~r ~w ~pat:t.wpat ~n:(scan_out t w t.wpat)
