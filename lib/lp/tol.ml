(* Single home for every numeric tolerance in the LP stack. The dense
   reference, the sparse-tableau backend, the revised-simplex backend and
   the Sparse row kernel all read from here, so the thresholds cannot
   silently diverge between implementations (they used to be scattered
   magic literals). A root-dune grep guard forbids new bare negative-
   exponent float literals anywhere else under lib/lp/. *)

(* Reduced-cost / pivot-element significance: entries smaller than this
   are treated as zero by pricing and the ratio test. *)
let eps = 1e-9

(* Phase-1 objective above this value means primal infeasible. *)
let feas = 1e-7

(* Skip eliminating a row (or cost row) when the factor is below this;
   also the drop threshold for stored eta-file entries. *)
let pivot_drop = 1e-13

(* Basic values in (-rhs_snap, 0) are numerical drift; snap them to 0. *)
let rhs_snap = 1e-11

(* Harris two-pass ratio test: pass 2 accepts rows whose ratio is within
   [theta + harris_rel * (1 + theta)] of the pass-1 minimum. *)
let harris_rel = 1e-7

(* A pivot with ratio below this counts as degenerate (anti-cycling
   bookkeeping feeds the Bland fallback). *)
let degenerate_ratio = 1e-10

(* Reset the Devex reference framework when weights exceed this. *)
let devex_reset = 1e10

(* Minimum |coefficient| on which a basic artificial may be pivoted out. *)
let purge = 1e-7

(* Dual simplex: a basic value below [-dual_feas] needs repair; ratio
   ties within [dual_ratio_tie] break toward the larger pivot element. *)
let dual_feas = 1e-9

let dual_ratio_tie = 1e-12

(* Drop tolerance of the simplex sparse-row kernel (fill-in control);
   the routing substrate uses the same kernels with drop 0.0. *)
let sparse_drop = 1e-14

(* LU factorization: a column whose remaining entries are all below
   [lu_singular] makes the basis numerically singular. *)
let lu_singular = 1e-11

(* Threshold partial pivoting: rows within [lu_threshold * amax] of the
   largest eligible magnitude compete on (Markowitz) sparsity instead of
   pure magnitude. *)
let lu_threshold = 0.1

(* An FTRAN'd pivot element below this (with a nonempty eta file)
   triggers refactorization before the pivot is trusted. *)
let lu_unstable = 1e-7

(* Default eta-file length between refactorizations. *)
let refactor_every = 128
