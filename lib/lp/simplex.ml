type cmp = Le | Ge | Eq

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit

type outcome = {
  status : status;
  x : float array;
  objective : float;
  pivots : int;
}

type backend = [ `Dense | `Sparse | `Revised ]

let eps = Tol.eps
let feas_tol = Tol.feas

type phase_end = Phase_optimal | Phase_unbounded | Phase_limit

let default_budget m n = Int.max 100_000 (40 * (m + n))

(* ---- observability ----
   Per-solve numerical-behaviour counters. The pivot loops bump plain
   mutable ints on the solver state (free next to a pivot's O(nnz) work);
   the totals flush into the sharded process-wide Metrics registry once
   per (re-)solve, so the hot loops never touch an atomic. *)
module Obs = struct
  module M = R3_util.Metrics

  let solves = M.counter "lp.solves"
  let pivots = M.counter "lp.pivots"
  let degenerate = M.counter "lp.degenerate_pivots"
  let harris_rejections = M.counter "lp.harris_rejections"
  let devex_resets = M.counter "lp.devex_resets"
  let phase1_pivots = M.counter "lp.phase1_pivots"
  let phase2_pivots = M.counter "lp.phase2_pivots"
  let dual_pivots = M.counter "lp.dual_pivots"
  let resolves = M.counter "lp.resolves"
  let solve_seconds = M.histogram "lp.solve.seconds"
  let rev_refactors = M.counter "lp.rev.refactorizations"
  let rev_eta_entries = M.counter "lp.rev.eta_entries"
  let rev_ftran_nnz = M.counter "lp.rev.ftran_nnz"
  let rev_btran_nnz = M.counter "lp.rev.btran_nnz"
  let rev_cand_hits = M.counter "lp.rev.candidate_hits"
  let rev_cand_refreshes = M.counter "lp.rev.candidate_refreshes"
  let rev_fallbacks = M.counter "lp.rev.fallbacks"

  (* Revised-backend factorization and pricing counters, flushed once per
     (re-)solve next to {!record_solve}/{!record_resolve}. *)
  let record_rev ~refactors ~eta ~ftran ~btran ~hits ~refreshes =
    M.add rev_refactors refactors;
    M.add rev_eta_entries eta;
    M.add rev_ftran_nnz ftran;
    M.add rev_btran_nnz btran;
    M.add rev_cand_hits hits;
    M.add rev_cand_refreshes refreshes

  (* One finished two-phase solve. [p1] = pivots spent in phase 1. *)
  let record_solve ~pivots:p ~p1 ~degen ~harris ~resets ~dt =
    M.incr solves;
    M.add pivots p;
    M.add phase1_pivots p1;
    M.add phase2_pivots (p - p1);
    M.add degenerate degen;
    M.add harris_rejections harris;
    M.add devex_resets resets;
    M.observe solve_seconds dt

  (* One warm re-solve (dual repair + cleanup pivots). *)
  let record_resolve ~pivots:p ~dual ~degen ~harris ~resets ~dt =
    M.incr resolves;
    M.add pivots p;
    M.add dual_pivots dual;
    M.add phase2_pivots (p - dual);
    M.add degenerate degen;
    M.add harris_rejections harris;
    M.add devex_resets resets;
    M.observe solve_seconds dt
end

(* ---- shared preprocessing ----
   Equilibrate the constraint matrix, then normalize every row: scale by
   max |coeff| and flip sign so rhs >= 0.

   Column scaling matters on the R3 dualized LPs: capacities (1e2..1e4),
   demands and unit routing coefficients coexist in one matrix, and an
   unequilibrated tableau forces pivots on relatively tiny elements whose
   huge ratios wreck primal feasibility of the excluded rows. Each column
   is scaled by 1/sqrt(max.min) of its nonzero magnitudes (geometric
   equilibration); the caller multiplies objective coefficients by
   [col_scale] and recovers [x_j = y_j * col_scale.(j)].

   Returns the scaled rows, the (possibly flipped) comparators, the scaled
   rhs, the slack count, the per-row artificial-variable flags, the
   artificial count and the column scales. *)
let prepare ~n ~rows ~cmps ~rhs =
  let m = Array.length rows in
  if Array.length cmps <> m || Array.length rhs <> m then
    invalid_arg "Simplex: rows/cmps/rhs length mismatch";
  let col_max = Array.make n 0.0 and col_min = Array.make n infinity in
  Array.iter
    (fun (idx, coef) ->
      Array.iteri
        (fun t j ->
          let a = Float.abs coef.(t) in
          if a > 0.0 then begin
            if a > col_max.(j) then col_max.(j) <- a;
            if a < col_min.(j) then col_min.(j) <- a
          end)
        idx)
    rows;
  let col_scale =
    Array.init n (fun j ->
        if col_max.(j) > 0.0 then 1.0 /. sqrt (col_max.(j) *. col_min.(j))
        else 1.0)
  in
  let scaled_rows = Array.make m ([||], [||]) in
  let cmps = Array.copy cmps in
  let b0 = Array.copy rhs in
  let n_slack = ref 0 in
  for i = 0 to m - 1 do
    let idx, coef = rows.(i) in
    let coef = Array.mapi (fun t c -> c *. col_scale.(idx.(t))) coef in
    let scale = Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 coef in
    let scale = if scale > 0.0 then scale else 1.0 in
    let flip = b0.(i) /. scale < 0.0 in
    let k = if flip then -1.0 /. scale else 1.0 /. scale in
    Array.iteri (fun t c -> coef.(t) <- c *. k) coef;
    b0.(i) <- b0.(i) *. k;
    if flip then
      cmps.(i) <- (match cmps.(i) with Le -> Ge | Ge -> Le | Eq -> Eq);
    scaled_rows.(i) <- (idx, coef);
    (match cmps.(i) with Le | Ge -> incr n_slack | Eq -> ())
  done;
  (* A row needs an artificial unless its (+1) slack can start basic. *)
  let needs_art = Array.map (fun c -> c <> Le) cmps in
  let n_art = Array.fold_left (fun a v -> if v then a + 1 else a) 0 needs_art in
  (scaled_rows, cmps, b0, !n_slack, needs_art, n_art, col_scale)

(* ==================================================================== *)
(* Dense backend: full tableau rows, kept as the reference
   implementation (and for benchmarking the sparse core against).       *)
(* ==================================================================== *)

module Dense = struct
  (* Mutable solver state. The tableau stores, for each active row, the full
     dense row over [width] columns (structural + slack + artificial). Two
     reduced-cost rows are maintained simultaneously so that phase 2 can start
     immediately once phase 1 ends. *)
  type state = {
    m : int;
    width : int;
    n_struct : int;
    n_art : int;  (* artificial columns occupy [width - n_art, width) *)
    tab : float array array;
    b : float array;
    basis : int array;
    active : bool array;
    cost1 : float array;  (* phase-1 reduced costs *)
    cost2 : float array;  (* phase-2 reduced costs *)
    devex : float array;  (* Devex reference weights for pricing *)
    mutable obj1 : float;  (* phase-1 objective (sum of artificials) *)
    mutable obj2 : float;  (* phase-2 objective (c . x) *)
    mutable pivots : int;
    mutable degenerate_run : int;
    mutable degen : int;  (* total degenerate (ratio ~ 0) pivots *)
    mutable harris_rej : int;  (* rows rejected by the Harris pass-2 window *)
    mutable devex_resets : int;  (* reference-framework resets *)
  }

  let is_artificial st j = j >= st.width - st.n_art

  (* Pivot on (row [ip], column [jp]): normalize the pivot row, eliminate the
     column from every other active row and from both cost rows. *)
  let pivot st ip jp =
    let tab = st.tab and b = st.b in
    let prow = tab.(ip) in
    let piv = prow.(jp) in
    let inv = 1.0 /. piv in
    let width = st.width in
    for j = 0 to width - 1 do
      Array.unsafe_set prow j (Array.unsafe_get prow j *. inv)
    done;
    prow.(jp) <- 1.0;
    b.(ip) <- b.(ip) *. inv;
    let brow = b.(ip) in
    for i = 0 to st.m - 1 do
      if i <> ip && st.active.(i) then begin
        let row = Array.unsafe_get tab i in
        let factor = Array.unsafe_get row jp in
        if Float.abs factor > Tol.pivot_drop then begin
          for j = 0 to width - 1 do
            Array.unsafe_set row j
              (Array.unsafe_get row j -. (factor *. Array.unsafe_get prow j))
          done;
          row.(jp) <- 0.0;
          b.(i) <- b.(i) -. (factor *. brow);
          if b.(i) < 0.0 && b.(i) > -.Tol.rhs_snap then b.(i) <- 0.0
        end
      end
    done;
    let eliminate cost =
      let factor = cost.(jp) in
      if Float.abs factor > Tol.pivot_drop then begin
        for j = 0 to width - 1 do
          Array.unsafe_set cost j
            (Array.unsafe_get cost j -. (factor *. Array.unsafe_get prow j))
        done;
        cost.(jp) <- 0.0
      end;
      factor
    in
    let f1 = eliminate st.cost1 in
    st.obj1 <- st.obj1 +. (f1 *. brow);
    let f2 = eliminate st.cost2 in
    st.obj2 <- st.obj2 +. (f2 *. brow);
    (* Devex weight update over the (normalized) pivot row. *)
    let wq = Float.max st.devex.(jp) 1.0 in
    for j = 0 to width - 1 do
      let a = Array.unsafe_get prow j in
      if a <> 0.0 then begin
        let cand = a *. a *. wq in
        if cand > Array.unsafe_get st.devex j then Array.unsafe_set st.devex j cand
      end
    done;
    st.devex.(jp) <- Float.max (wq /. (piv *. piv)) 1.0;
    (* Reset the reference framework when weights blow up. *)
    if st.devex.(jp) > Tol.devex_reset || wq > Tol.devex_reset then begin
      Array.fill st.devex 0 width 1.0;
      st.devex_resets <- st.devex_resets + 1
    end;
    st.basis.(ip) <- jp;
    st.pivots <- st.pivots + 1

  (* Entering column: Devex pricing, switching to Bland's rule (lowest
     eligible index) after a long degenerate run. [allow] filters columns
     (artificials are barred in phase 2). *)
  let entering st cost ~allow =
    if st.degenerate_run > 100 then begin
      let rec first j =
        if j >= st.width then None
        else if cost.(j) < -.eps && allow j then Some j
        else first (j + 1)
      in
      first 0
    end
    else begin
      (* Devex pricing: maximize d_j^2 / w_j over eligible columns. *)
      let best = ref (-1) and best_score = ref 0.0 in
      for j = 0 to st.width - 1 do
        let c = Array.unsafe_get cost j in
        if c < -.eps && allow j then begin
          let score = c *. c /. Array.unsafe_get st.devex j in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end
      done;
      if !best < 0 then None else Some !best
    end

  (* Leaving row for entering column [jp]: Harris-style two-pass ratio test.
     Pass 1 finds the tightest ratio; pass 2 picks, among rows whose ratio is
     within a *relative* tolerance of it, the one with the largest pivot
     element (smallest basis index on exact ties, an anti-cycling aid).
     An absolute tie window is useless here: at ratios of 1e6 it degenerates
     to "first minimum", which happily pivots on near-[eps] elements and
     destroys the tableau. Negative basic values (numerical drift) are
     treated as zero, so their rows surface as degenerate ratio-0 pivots
     that restore feasibility instead of producing negative ratios. *)
  let leaving st jp =
    let theta = ref infinity in
    for i = 0 to st.m - 1 do
      if st.active.(i) then begin
        let a = st.tab.(i).(jp) in
        if a > eps then begin
          let ratio = Float.max st.b.(i) 0.0 /. a in
          if ratio < !theta then theta := ratio
        end
      end
    done;
    if !theta = infinity then None
    else begin
      let lim = !theta +. (Tol.harris_rel *. (1.0 +. !theta)) in
      let best = ref (-1) and best_piv = ref 0.0 in
      for i = 0 to st.m - 1 do
        if st.active.(i) then begin
          let a = st.tab.(i).(jp) in
          if a > eps then
            if Float.max st.b.(i) 0.0 /. a <= lim then begin
              if
                a > !best_piv
                || (a = !best_piv && !best >= 0 && st.basis.(i) < st.basis.(!best))
              then begin
                best := i;
                best_piv := a
              end
            end
            else st.harris_rej <- st.harris_rej + 1
        end
      done;
      Some (!best, Float.max st.b.(!best) 0.0 /. !best_piv)
    end

  let run_phase st cost ~allow ~max_pivots =
    let rec loop () =
      if st.pivots >= max_pivots then Phase_limit
      else begin
        match entering st cost ~allow with
        | None -> Phase_optimal
        | Some jp -> begin
            match leaving st jp with
            | None -> Phase_unbounded
            | Some (ip, ratio) ->
              if ratio < Tol.degenerate_ratio then begin
                st.degenerate_run <- st.degenerate_run + 1;
                st.degen <- st.degen + 1
              end
              else st.degenerate_run <- 0;
              (* A drifted-negative basic value leaves on a ratio-0 pivot;
                 make the repair exact. *)
              if st.b.(ip) < 0.0 then st.b.(ip) <- 0.0;
              pivot st ip jp;
              loop ()
          end
      end
    in
    loop ()

  (* After phase 1, no artificial variable may remain basic with a nonzero
     value. Basic artificials at zero are pivoted out on any usable column;
     if the whole row is zero over real columns the constraint was redundant
     and the row is deactivated. *)
  let purge_artificials st =
    for i = 0 to st.m - 1 do
      if st.active.(i) && is_artificial st st.basis.(i) then begin
        let row = st.tab.(i) in
        let jp = ref (-1) in
        let j = ref 0 in
        let real_width = st.width - st.n_art in
        while !jp < 0 && !j < real_width do
          if Float.abs row.(!j) > Tol.purge then jp := !j;
          incr j
        done;
        if !jp >= 0 then pivot st i !jp else st.active.(i) <- false
      end
    done

  let solve ?max_pivots ~obj ~rows ~cmps ~rhs () =
    let n = Array.length obj in
    let m = Array.length rows in
    let scaled_rows, cmps, b0, n_slack, needs_art, n_art, col_scale =
      prepare ~n ~rows ~cmps ~rhs
    in
    let width = n + n_slack + n_art in
    let st =
      {
        m;
        width;
        n_struct = n;
        n_art;
        tab = Array.init m (fun _ -> Array.make width 0.0);
        b = b0;
        basis = Array.make m (-1);
        active = Array.make m true;
        cost1 = Array.make width 0.0;
        cost2 = Array.make width 0.0;
        devex = Array.make width 1.0;
        obj1 = 0.0;
        obj2 = 0.0;
        pivots = 0;
        degenerate_run = 0;
        degen = 0;
        harris_rej = 0;
        devex_resets = 0;
      }
    in
    for j = 0 to n - 1 do
      st.cost2.(j) <- obj.(j) *. col_scale.(j)
    done;
    let next_slack = ref n and next_art = ref (n + n_slack) in
    for i = 0 to m - 1 do
      let idx, coef = scaled_rows.(i) in
      let row = st.tab.(i) in
      Array.iteri (fun t j -> row.(j) <- row.(j) +. coef.(t)) idx;
      (match cmps.(i) with
      | Le ->
        row.(!next_slack) <- 1.0;
        st.basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        row.(!next_slack) <- -1.0;
        incr next_slack
      | Eq -> ());
      if needs_art.(i) then begin
        row.(!next_art) <- 1.0;
        st.basis.(i) <- !next_art;
        (* Phase-1 reduced costs: c1_j - (row sums over artificial rows). *)
        for j = 0 to width - 1 do
          if j <> !next_art then st.cost1.(j) <- st.cost1.(j) -. row.(j)
        done;
        st.obj1 <- st.obj1 +. st.b.(i);
        incr next_art
      end
    done;
    let max_pivots =
      match max_pivots with Some k -> k | None -> default_budget m n
    in
    let elapsed = R3_util.Timer.stopwatch () in
    let p1 = ref 0 in
    let finish out =
      Obs.record_solve ~pivots:st.pivots ~p1:!p1 ~degen:st.degen
        ~harris:st.harris_rej ~resets:st.devex_resets ~dt:(elapsed ());
      out
    in
    let allow_all _ = true in
    let fail status =
      finish { status; x = Array.make n 0.0; objective = 0.0; pivots = st.pivots }
    in
    let phase1 =
      if n_art = 0 then Phase_optimal
      else run_phase st st.cost1 ~allow:allow_all ~max_pivots
    in
    p1 := st.pivots;
    match phase1 with
    | Phase_limit -> fail Iteration_limit
    | Phase_unbounded ->
      (* Phase-1 objective is bounded below by 0; cannot be unbounded. *)
      fail Infeasible
    | Phase_optimal ->
      if st.obj1 > feas_tol then fail Infeasible
      else begin
        purge_artificials st;
        st.degenerate_run <- 0;
        let allow j = not (is_artificial st j) in
        match run_phase st st.cost2 ~allow ~max_pivots with
        | Phase_limit -> fail Iteration_limit
        | Phase_unbounded -> fail Unbounded
        | Phase_optimal ->
          let x = Array.make n 0.0 in
          for i = 0 to m - 1 do
            if st.active.(i) && st.basis.(i) < n then
              x.(st.basis.(i)) <- st.b.(i) *. col_scale.(st.basis.(i))
          done;
          let objective =
            Array.fold_left ( +. ) 0.0 (Array.mapi (fun j c -> c *. x.(j)) obj)
          in
          finish { status = Optimal; x; objective; pivots = st.pivots }
      end
end

(* ==================================================================== *)
(* Sparse backend: tableau rows are Sparse.t, so pivoting, cost-row
   elimination and Devex updates all run in O(nnz) instead of O(width).
   The same state doubles as a warm-startable session - columns and rows
   may be appended after a solve, and dual-simplex pivots restore primal
   feasibility without re-running the two-phase method.                 *)
(* ==================================================================== *)

module Sp = struct
  type state = {
    n_struct : int;
    art_lo : int;  (* initial artificial columns occupy [art_lo, art_hi) *)
    art_hi : int;
    budget : int;  (* pivot budget per (re-)solve *)
    obj : float array;
    col_scale : float array;  (* structural-column equilibration factors *)
    scratch : Sparse.scratch;  (* recycled axpy merge buffer *)
    mutable cand_i : int array;  (* ratio-test candidates, reused per call *)
    mutable cand_a : float array;
    mutable col_j : int;  (* column cached in [col_v], or -1 *)
    mutable col_v : float array;  (* per-row coefficients of column [col_j] *)
    mutable m : int;
    mutable width : int;
    mutable rows : Sparse.t array;  (* capacity-managed, first [m] used *)
    mutable b : float array;
    mutable basis : int array;
    mutable active : bool array;
    mutable cost1 : float array;  (* capacity-managed, first [width] used *)
    mutable cost2 : float array;
    mutable devex : float array;
    mutable obj1 : float;
    mutable obj2 : float;
    mutable pivots : int;
    mutable degenerate_run : int;
    mutable degen : int;  (* total degenerate (ratio ~ 0) pivots *)
    mutable harris_rej : int;  (* rows rejected by the Harris pass-2 window *)
    mutable devex_resets : int;  (* reference-framework resets *)
    mutable valid : bool;  (* last solve ended [Optimal]: warm restart ok *)
  }

  let is_artificial st j = j >= st.art_lo && j < st.art_hi

  let grow_cols st extra =
    let need = st.width + extra in
    if Array.length st.cost1 < need then begin
      let cap = Int.max need (2 * Array.length st.cost1) in
      let grow a fill =
        let b = Array.make cap fill in
        Array.blit a 0 b 0 st.width;
        b
      in
      st.cost1 <- grow st.cost1 0.0;
      st.cost2 <- grow st.cost2 0.0;
      st.devex <- grow st.devex 1.0
    end

  let grow_rows st extra =
    let need = st.m + extra in
    if Array.length st.b < need then begin
      let cap = Int.max need (2 * Array.length st.b) in
      let rows = Array.make cap (Sparse.create ~cap:1 ()) in
      Array.blit st.rows 0 rows 0 st.m;
      let b = Array.make cap 0.0 in
      Array.blit st.b 0 b 0 st.m;
      let basis = Array.make cap (-1) in
      Array.blit st.basis 0 basis 0 st.m;
      let active = Array.make cap false in
      Array.blit st.active 0 active 0 st.m;
      st.rows <- rows;
      st.b <- b;
      st.basis <- basis;
      st.active <- active;
      st.cand_i <- Array.make cap 0;
      st.cand_a <- Array.make cap 0.0;
      st.col_j <- -1;
      st.col_v <- Array.make cap 0.0
    end

  (* Pivot on (row [ip], column [jp]); mirrors {!Dense.pivot} but touches
     only stored nonzeros. When [leaving] just scanned column [jp] its
     per-row coefficients are in [col_v], saving a second round of binary
     searches. *)
  let pivot st ip jp =
    let prow = st.rows.(ip) in
    let piv = Sparse.get prow jp in
    Sparse.scale prow (1.0 /. piv);
    Sparse.set prow jp 1.0;
    st.b.(ip) <- st.b.(ip) /. piv;
    let brow = st.b.(ip) in
    let cached = st.col_j = jp in
    for i = 0 to st.m - 1 do
      if i <> ip && st.active.(i) then begin
        let row = st.rows.(i) in
        let factor =
          if cached then Array.unsafe_get st.col_v i else Sparse.get row jp
        in
        if Float.abs factor > Tol.pivot_drop then begin
          Sparse.axpy ~scratch:st.scratch ~y:row ~x:prow factor;
          Sparse.clear row jp;
          st.b.(i) <- st.b.(i) -. (factor *. brow);
          if st.b.(i) < 0.0 && st.b.(i) > -.Tol.rhs_snap then st.b.(i) <- 0.0
        end
      end
    done;
    st.col_j <- -1;
    let pidx, pv, pn = Sparse.raw prow in
    let eliminate cost =
      let factor = cost.(jp) in
      if Float.abs factor > Tol.pivot_drop then begin
        for s = 0 to pn - 1 do
          let j = Array.unsafe_get pidx s in
          Array.unsafe_set cost j
            (Array.unsafe_get cost j -. (factor *. Array.unsafe_get pv s))
        done;
        cost.(jp) <- 0.0
      end;
      factor
    in
    let f1 = eliminate st.cost1 in
    st.obj1 <- st.obj1 +. (f1 *. brow);
    let f2 = eliminate st.cost2 in
    st.obj2 <- st.obj2 +. (f2 *. brow);
    (* Devex weight update over the (normalized) pivot row. *)
    let wq = Float.max st.devex.(jp) 1.0 in
    for s = 0 to pn - 1 do
      let a = Array.unsafe_get pv s in
      let cand = a *. a *. wq in
      let j = Array.unsafe_get pidx s in
      if cand > Array.unsafe_get st.devex j then Array.unsafe_set st.devex j cand
    done;
    st.devex.(jp) <- Float.max (wq /. (piv *. piv)) 1.0;
    if st.devex.(jp) > Tol.devex_reset || wq > Tol.devex_reset then begin
      Array.fill st.devex 0 st.width 1.0;
      st.devex_resets <- st.devex_resets + 1
    end;
    st.basis.(ip) <- jp;
    st.pivots <- st.pivots + 1

  let entering st cost ~allow =
    if st.degenerate_run > 100 then begin
      let rec first j =
        if j >= st.width then None
        else if cost.(j) < -.eps && allow j then Some j
        else first (j + 1)
      in
      first 0
    end
    else begin
      let best = ref (-1) and best_score = ref 0.0 in
      for j = 0 to st.width - 1 do
        let c = Array.unsafe_get cost j in
        if c < -.eps && allow j then begin
          let score = c *. c /. Array.unsafe_get st.devex j in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end
      done;
      if !best < 0 then None else Some !best
    end

  (* Harris-style two-pass ratio test; see {!Dense.leaving}. The column
     lookups are binary searches here, so pass 1 records the (usually few)
     candidate rows and pass 2 revisits only those. The full column is
     cached in [col_v] for the {!pivot} that typically follows. *)
  let leaving st jp =
    let cand_i = st.cand_i and cand_a = st.cand_a in
    let nc = ref 0 and theta = ref infinity in
    for i = 0 to st.m - 1 do
      if st.active.(i) then begin
        let a = Sparse.get st.rows.(i) jp in
        st.col_v.(i) <- a;
        if a > eps then begin
          cand_i.(!nc) <- i;
          cand_a.(!nc) <- a;
          incr nc;
          let ratio = Float.max st.b.(i) 0.0 /. a in
          if ratio < !theta then theta := ratio
        end
      end
    done;
    st.col_j <- jp;
    if !nc = 0 then None
    else begin
      let lim = !theta +. (Tol.harris_rel *. (1.0 +. !theta)) in
      (* Largest pivot element within the tolerance, ties to the smallest
         basis index, exactly as in {!Dense.leaving}. (A Markowitz-style
         sparsest-row tie-break was tried here to curb fill-in: accepting
         pivots down to half the largest admissible element let feasibility
         drift below the true optimum on fill-heavy instances. Keeping the
         pure largest-pivot rule keeps both backends on certified optima.) *)
      let best = ref (-1) and best_piv = ref 0.0 in
      for s = 0 to !nc - 1 do
        let i = cand_i.(s) and a = cand_a.(s) in
        if Float.max st.b.(i) 0.0 /. a <= lim then begin
          if
            a > !best_piv
            || (a = !best_piv && !best >= 0 && st.basis.(i) < st.basis.(!best))
          then begin
            best := i;
            best_piv := a
          end
        end
        else st.harris_rej <- st.harris_rej + 1
      done;
      Some (!best, Float.max st.b.(!best) 0.0 /. !best_piv)
    end

  let run_phase st cost ~allow ~max_pivots =
    let rec loop () =
      if st.pivots >= max_pivots then Phase_limit
      else begin
        match entering st cost ~allow with
        | None -> Phase_optimal
        | Some jp -> begin
            match leaving st jp with
            | None -> Phase_unbounded
            | Some (ip, ratio) ->
              if ratio < Tol.degenerate_ratio then begin
                st.degenerate_run <- st.degenerate_run + 1;
                st.degen <- st.degen + 1
              end
              else st.degenerate_run <- 0;
              if st.b.(ip) < 0.0 then st.b.(ip) <- 0.0;
              pivot st ip jp;
              loop ()
          end
      end
    in
    loop ()

  let purge_artificials st =
    for i = 0 to st.m - 1 do
      if st.active.(i) && is_artificial st st.basis.(i) then begin
        let row = st.rows.(i) in
        (* first real (non-artificial) column with a usable coefficient;
           sparse iteration visits columns in increasing order. *)
        let jp = ref (-1) in
        (try
           Sparse.iter
             (fun j x ->
               if (not (is_artificial st j)) && Float.abs x > Tol.purge then begin
                 jp := j;
                 raise Exit
               end)
             row
         with Exit -> ());
        if !jp >= 0 then pivot st i !jp else st.active.(i) <- false
      end
    done

  let build ?max_pivots ~obj ~rows ~cmps ~rhs () =
    let n = Array.length obj in
    let m = Array.length rows in
    let scaled_rows, cmps, b0, n_slack, needs_art, n_art, col_scale =
      prepare ~n ~rows ~cmps ~rhs
    in
    let width = n + n_slack + n_art in
    let cap_w = Int.max width 1 and cap_m = Int.max m 1 in
    let st =
      {
        n_struct = n;
        art_lo = n + n_slack;
        art_hi = width;
        budget = (match max_pivots with Some k -> k | None -> default_budget m n);
        obj = Array.copy obj;
        col_scale;
        scratch = Sparse.scratch ();
        cand_i = Array.make cap_m 0;
        cand_a = Array.make cap_m 0.0;
        col_j = -1;
        col_v = Array.make cap_m 0.0;
        m;
        width;
        rows = Array.init cap_m (fun _ -> Sparse.create ~cap:1 ());
        b = (let b = Array.make cap_m 0.0 in Array.blit b0 0 b 0 m; b);
        basis = Array.make cap_m (-1);
        active = Array.make cap_m true;
        cost1 = Array.make cap_w 0.0;
        cost2 = Array.make cap_w 0.0;
        devex = Array.make cap_w 1.0;
        obj1 = 0.0;
        obj2 = 0.0;
        pivots = 0;
        degenerate_run = 0;
        degen = 0;
        harris_rej = 0;
        devex_resets = 0;
        valid = false;
      }
    in
    for j = 0 to n - 1 do
      st.cost2.(j) <- obj.(j) *. col_scale.(j)
    done;
    let next_slack = ref n and next_art = ref (n + n_slack) in
    for i = 0 to m - 1 do
      let idx, coef = scaled_rows.(i) in
      let row = Sparse.of_pairs idx coef in
      st.rows.(i) <- row;
      (match cmps.(i) with
      | Le ->
        Sparse.set row !next_slack 1.0;
        st.basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        Sparse.set row !next_slack (-1.0);
        incr next_slack
      | Eq -> ());
      if needs_art.(i) then begin
        Sparse.set row !next_art 1.0;
        st.basis.(i) <- !next_art;
        let own = !next_art in
        Sparse.iter
          (fun j x -> if j <> own then st.cost1.(j) <- st.cost1.(j) -. x)
          row;
        st.obj1 <- st.obj1 +. st.b.(i);
        incr next_art
      end
    done;
    st

  let fail st status =
    { status; x = Array.make st.n_struct 0.0; objective = 0.0; pivots = st.pivots }

  let extract st =
    let n = st.n_struct in
    let x = Array.make n 0.0 in
    for i = 0 to st.m - 1 do
      if st.active.(i) && st.basis.(i) < n then
        x.(st.basis.(i)) <- st.b.(i) *. st.col_scale.(st.basis.(i))
    done;
    let objective = ref 0.0 in
    Array.iteri (fun j c -> objective := !objective +. (c *. x.(j))) st.obj;
    { status = Optimal; x; objective = !objective; pivots = st.pivots }

  let first_solve st =
    let max_pivots = st.budget in
    let elapsed = R3_util.Timer.stopwatch () in
    let p1 = ref 0 in
    let finish out =
      Obs.record_solve ~pivots:st.pivots ~p1:!p1 ~degen:st.degen
        ~harris:st.harris_rej ~resets:st.devex_resets ~dt:(elapsed ());
      out
    in
    let allow_all _ = true in
    let phase1 =
      if st.art_hi = st.art_lo then Phase_optimal
      else run_phase st st.cost1 ~allow:allow_all ~max_pivots
    in
    p1 := st.pivots;
    match phase1 with
    | Phase_limit -> finish (fail st Iteration_limit)
    | Phase_unbounded -> finish (fail st Infeasible)
    | Phase_optimal ->
      if st.obj1 > feas_tol then finish (fail st Infeasible)
      else begin
        purge_artificials st;
        st.degenerate_run <- 0;
        let allow j = not (is_artificial st j) in
        (match run_phase st st.cost2 ~allow ~max_pivots with
        | Phase_limit -> finish (fail st Iteration_limit)
        | Phase_unbounded -> finish (fail st Unbounded)
        | Phase_optimal ->
          st.valid <- true;
          finish (extract st))
      end

  (* Append [lhs <= rhs], expressed over the current basis: basic columns
     are eliminated against their (unit-column) rows, then the row enters
     with its own fresh slack variable as basis. The resulting [b] may be
     negative - {!resolve}'s dual simplex repairs that. *)
  let append_le st (idx, coef) rhs =
    st.col_j <- -1;
    (* Same column equilibration as the initial rows, then row scaling. *)
    let coef = Array.mapi (fun t c -> c *. st.col_scale.(idx.(t))) coef in
    let scale = Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 coef in
    let scale = if scale > 0.0 then scale else 1.0 in
    let k = 1.0 /. scale in
    Array.iteri (fun t c -> coef.(t) <- c *. k) coef;
    let rhs = ref (rhs *. k) in
    let r = Sparse.of_pairs idx coef in
    for i = 0 to st.m - 1 do
      if st.active.(i) then begin
        let jb = st.basis.(i) in
        let factor = Sparse.get r jb in
        if factor <> 0.0 then begin
          Sparse.axpy ~scratch:st.scratch ~y:r ~x:st.rows.(i) factor;
          Sparse.clear r jb;
          rhs := !rhs -. (factor *. st.b.(i))
        end
      end
    done;
    grow_cols st 1;
    let s = st.width in
    st.width <- st.width + 1;
    st.cost1.(s) <- 0.0;
    st.cost2.(s) <- 0.0;
    st.devex.(s) <- 1.0;
    Sparse.set r s 1.0;
    grow_rows st 1;
    let i = st.m in
    st.m <- st.m + 1;
    st.rows.(i) <- r;
    st.b.(i) <- !rhs;
    st.basis.(i) <- s;
    st.active.(i) <- true

  let add_row st (idx, coef) cmp rhs =
    match cmp with
    | Le -> append_le st (idx, coef) rhs
    | Ge -> append_le st (idx, Array.map Float.neg coef) (-.rhs)
    | Eq ->
      append_le st (idx, coef) rhs;
      append_le st (idx, Array.map Float.neg coef) (-.rhs)

  (* Dual simplex: while some basic value is negative, leave on the most
     negative row and enter on the column minimizing the dual ratio
     [cost2_j / -a_j] over the row's negative entries, which preserves
     dual feasibility (all reduced costs stay >= 0). *)
  let dual_restore st =
    let limit = st.pivots + st.budget in
    let rec loop () =
      if st.pivots >= limit then Phase_limit
      else begin
        let ip = ref (-1) and bmin = ref (-.Tol.dual_feas) in
        for i = 0 to st.m - 1 do
          if st.active.(i) && st.b.(i) < !bmin then begin
            ip := i;
            bmin := st.b.(i)
          end
        done;
        if !ip < 0 then Phase_optimal
        else begin
          let prow = st.rows.(!ip) in
          let jp = ref (-1) and best = ref infinity and best_a = ref 0.0 in
          Sparse.iter
            (fun j a ->
              if a < -.eps && not (is_artificial st j) then begin
                let ratio = st.cost2.(j) /. -.a in
                if
                  ratio < !best -. Tol.dual_ratio_tie
                  || (ratio < !best +. Tol.dual_ratio_tie
                     && Float.abs a > Float.abs !best_a)
                then begin
                  jp := j;
                  best := ratio;
                  best_a := a
                end
              end)
            prow;
          if !jp < 0 then Phase_unbounded (* dual unbounded = primal infeasible *)
          else begin
            pivot st !ip !jp;
            loop ()
          end
        end
      end
    in
    loop ()

  let resolve st =
    (* Session counters accumulate across solves, so report this resolve's
       contribution as deltas from the entry snapshot. *)
    let elapsed = R3_util.Timer.stopwatch () in
    let pivots0 = st.pivots and degen0 = st.degen in
    let harris0 = st.harris_rej and resets0 = st.devex_resets in
    let dual = ref 0 in
    let finish out =
      Obs.record_resolve ~pivots:(st.pivots - pivots0) ~dual:!dual
        ~degen:(st.degen - degen0) ~harris:(st.harris_rej - harris0)
        ~resets:(st.devex_resets - resets0) ~dt:(elapsed ());
      out
    in
    if not st.valid then finish (fail st Iteration_limit)
    else begin
      st.degenerate_run <- 0;
      let dual_outcome = dual_restore st in
      dual := st.pivots - pivots0;
      match dual_outcome with
      | Phase_limit ->
        st.valid <- false;
        finish (fail st Iteration_limit)
      | Phase_unbounded ->
        st.valid <- false;
        finish (fail st Infeasible)
      | Phase_optimal -> begin
        (* Clean up any residual negative reduced costs (numerical drift). *)
        let allow j = not (is_artificial st j) in
        match run_phase st st.cost2 ~allow ~max_pivots:(st.pivots + st.budget) with
        | Phase_limit ->
          st.valid <- false;
          finish (fail st Iteration_limit)
        | Phase_unbounded ->
          st.valid <- false;
          finish (fail st Unbounded)
        | Phase_optimal -> finish (extract st)
      end
    end
end

(* ==================================================================== *)
(* Revised backend: the basis is held as a sparse LU factorization (see
   {!Lu}) instead of an explicitly pivoted tableau. Each iteration costs
   one BTRAN (pivot row), one FTRAN (entering column) and an eta append,
   all O(touched nonzeros) - per-pivot work no longer scales with the
   total column count. Pricing is Devex over a cached candidate list;
   the Harris ratio test runs on the FTRAN result. The same state is a
   warm-startable session: appended rows keep the factorization, and
   [resolve] repairs primal feasibility with dual-simplex pivots through
   the carried-over LU.                                                 *)
(* ==================================================================== *)

module Rev = struct
  module R = R3_util.Rowvec
  module T = R3_util.Trace

  (* Entering candidates retained by one pricing refresh. *)
  let cand_cap = 64

  type state = {
    n_struct : int;
    art_lo : int;  (* artificial columns occupy [art_lo, art_hi) *)
    art_hi : int;
    budget : int;  (* pivot budget per (re-)solve *)
    obj : float array;
    col_scale : float array;
    lu : Lu.t;
    mutable m : int;
    mutable width : int;
    mutable cols : R.t array;  (* per column: row entries, first [width] used *)
    mutable arows : R.t array;  (* per row: all column entries (static) *)
    mutable b0 : float array;  (* scaled rhs *)
    mutable basis : int array;  (* basis position -> column *)
    mutable pos_of : int array;  (* column -> basis position, or -1 *)
    mutable xb : float array;  (* basic values by position *)
    mutable dj : float array;  (* reduced costs of the current phase *)
    mutable cost2 : float array;  (* scaled phase-2 objective per column *)
    mutable devex : float array;
    (* Solve workspaces, length >= m. Invariant: zero outside the first
       [w_n]/[rho_n] entries of their pattern arrays — producers clear
       the previous support and hand the new one to the pattern-aware LU
       solves, consumers iterate the support, so per-pivot work tracks
       the nonzeros actually touched rather than [m]. *)
    mutable w : float array;  (* FTRAN workspace *)
    mutable w_pat : int array;
    mutable w_n : int;
    mutable rho : float array;  (* BTRAN workspace *)
    mutable rho_pat : int array;
    mutable rho_n : int;
    mutable alpha : float array;  (* pivot-row workspace, length >= width *)
    mutable alpha_mark : Bytes.t;
    mutable alpha_sup : int array;  (* pivot-row support (column indices) *)
    mutable alpha_n : int;
    cand : int array;  (* pricing candidate list *)
    mutable cand_n : int;
    mutable in_phase1 : bool;
    mutable pivots : int;
    mutable degenerate_run : int;
    mutable degen : int;
    mutable harris_rej : int;
    mutable devex_resets : int;
    mutable refactors : int;  (* with the five below: Obs accumulators *)
    mutable eta_app : int;
    mutable ftran_nnz : int;
    mutable btran_nnz : int;
    mutable cand_hits : int;
    mutable cand_refreshes : int;
    mutable valid : bool;  (* last solve ended [Optimal]: warm restart ok *)
  }

  let is_artificial st j = j >= st.art_lo && j < st.art_hi

  let clear_alpha st =
    for s = 0 to st.alpha_n - 1 do
      let j = st.alpha_sup.(s) in
      st.alpha.(j) <- 0.0;
      Bytes.unsafe_set st.alpha_mark j '\000'
    done;
    st.alpha_n <- 0

  let grow_cols st extra =
    let need = st.width + extra in
    if Array.length st.dj < need then begin
      (* The mark bytes and alpha values are dirty from the last
         [pivot_row]; they are cleared lazily through [alpha_sup], so
         flush them while the support still matches before replacing it
         with a fresh (empty) one. *)
      clear_alpha st;
      let cap = Int.max need (2 * Array.length st.dj) in
      let grow a fill =
        let b = Array.make cap fill in
        Array.blit a 0 b 0 st.width;
        b
      in
      st.dj <- grow st.dj 0.0;
      st.cost2 <- grow st.cost2 0.0;
      st.devex <- grow st.devex 1.0;
      st.alpha <- grow st.alpha 0.0;
      let mk = Bytes.make cap '\000' in
      Bytes.blit st.alpha_mark 0 mk 0 st.width;
      st.alpha_mark <- mk;
      st.alpha_sup <- Array.make cap 0;
      let pos = Array.make cap (-1) in
      Array.blit st.pos_of 0 pos 0 st.width;
      st.pos_of <- pos;
      let cols = Array.init cap (fun _ -> R.create ~cap:4 ()) in
      Array.blit st.cols 0 cols 0 st.width;
      st.cols <- cols
    end

  let grow_rows st extra =
    let need = st.m + extra in
    if Array.length st.b0 < need then begin
      let cap = Int.max need (2 * Array.length st.b0) in
      let grow a fill =
        let b = Array.make cap fill in
        Array.blit a 0 b 0 st.m;
        b
      in
      st.b0 <- grow st.b0 0.0;
      st.xb <- grow st.xb 0.0;
      (* fresh all-zero workspaces: the empty pattern is correct *)
      st.w <- Array.make cap 0.0;
      st.rho <- Array.make cap 0.0;
      st.w_pat <- Array.make cap 0;
      st.rho_pat <- Array.make cap 0;
      st.w_n <- 0;
      st.rho_n <- 0;
      let basis = Array.make cap (-1) in
      Array.blit st.basis 0 basis 0 st.m;
      st.basis <- basis;
      let arows = Array.init cap (fun _ -> R.create ~cap:1 ()) in
      Array.blit st.arows 0 arows 0 st.m;
      st.arows <- arows
    end

  let refactor_lu st =
    Lu.refactor st.lu ~m:st.m ~col:(fun k -> R.raw st.cols.(st.basis.(k)));
    st.refactors <- st.refactors + 1

  (* Pattern-aware solves: callers stage the right-hand side's support
     in [w_pat]/[rho_pat]; the LU solve leaves the result's support
     there. *)
  let ftran st =
    st.w_n <- Lu.ftran_pat st.lu st.w st.w_pat st.w_n;
    st.ftran_nnz <- st.ftran_nnz + st.w_n

  let btran st =
    st.rho_n <- Lu.btran_pat st.lu st.rho st.rho_pat st.rho_n;
    st.btran_nnz <- st.btran_nnz + st.rho_n

  (* Seed rho := e_ip (clearing the previous support) and BTRAN. *)
  let btran_unit st ip =
    for s = 0 to st.rho_n - 1 do
      st.rho.(st.rho_pat.(s)) <- 0.0
    done;
    st.rho.(ip) <- 1.0;
    st.rho_pat.(0) <- ip;
    st.rho_n <- 1;
    btran st

  (* Load column [jq] into the workspace and solve B w = A_jq. *)
  let ftran_col st jq =
    for s = 0 to st.w_n - 1 do
      st.w.(st.w_pat.(s)) <- 0.0
    done;
    let idx, v, n = R.raw st.cols.(jq) in
    for s = 0 to n - 1 do
      st.w.(idx.(s)) <- v.(s);
      st.w_pat.(s) <- idx.(s)
    done;
    st.w_n <- n;
    ftran st

  let compute_xb st =
    (* dense rhs: the blit wipes the previous support, so rescan *)
    Array.blit st.b0 0 st.w 0 st.m;
    let n = ref 0 in
    for i = 0 to st.m - 1 do
      if st.w.(i) <> 0.0 then begin
        st.w_pat.(!n) <- i;
        incr n
      end
    done;
    st.w_n <- !n;
    ftran st;
    for i = 0 to st.m - 1 do
      let v = st.w.(i) in
      st.xb.(i) <- (if v < 0.0 && v > -.Tol.rhs_snap then 0.0 else v)
    done

  let cost st j =
    if st.in_phase1 then if is_artificial st j then 1.0 else 0.0
    else st.cost2.(j)

  (* Reprice everything from scratch: y = B^-T c_B, then
     d_j = c_j - y . A_j over stored column nonzeros (O(nnz A)). *)
  let price st =
    (* dense basic-cost vector overwrites the previous support *)
    let n = ref 0 in
    for i = 0 to st.m - 1 do
      let c = cost st st.basis.(i) in
      st.rho.(i) <- c;
      if c <> 0.0 then begin
        st.rho_pat.(!n) <- i;
        incr n
      end
    done;
    st.rho_n <- !n;
    btran st;
    for j = 0 to st.width - 1 do
      if st.pos_of.(j) >= 0 then st.dj.(j) <- 0.0
      else st.dj.(j) <- cost st j -. R.dot st.cols.(j) st.rho
    done

  (* Refactorize and rebuild xb and dj from scratch; also the recovery
     path after an unstable pivot. Raises {!Lu.Singular}. *)
  let refresh st =
    refactor_lu st;
    compute_xb st;
    price st;
    st.cand_n <- 0

  (* Warm-resolve variant: appended rows extend the basis
     block-triangularly ([[B 0] [C I]], new slacks basic), so the old
     duals are unchanged and the new slacks price to zero — the carried
     reduced costs are already exact and the O(width) reprice can be
     skipped. Only the factorization and the primal values must be
     rebuilt at the grown dimension. *)
  let refresh_keep_dj st =
    refactor_lu st;
    compute_xb st;
    st.cand_n <- 0

  (* rho := B^-T e_ip, then alpha := rho^T A gathered over the rows rho
     touches; [alpha_sup] records the sparse support. *)
  let pivot_row st ip =
    clear_alpha st;
    btran_unit st ip;
    for s = 0 to st.rho_n - 1 do
      let i = st.rho_pat.(s) in
      let ri = Array.unsafe_get st.rho i in
      if ri <> 0.0 then begin
        let idx, v, n = R.raw st.arows.(i) in
        for e = 0 to n - 1 do
          let j = Array.unsafe_get idx e in
          let a = ri *. Array.unsafe_get v e in
          if Bytes.unsafe_get st.alpha_mark j = '\000' then begin
            Bytes.unsafe_set st.alpha_mark j '\001';
            Array.unsafe_set st.alpha_sup st.alpha_n j;
            st.alpha_n <- st.alpha_n + 1;
            Array.unsafe_set st.alpha j a
          end
          else
            Array.unsafe_set st.alpha j (Array.unsafe_get st.alpha j +. a)
        done
      end
    done

  (* Reduced-cost and Devex updates for a primal pivot: entering [jq]
     replaces basis position [ip]. Needs the FTRAN'd entering column
     still in [w]. The pivot row [alpha] is gathered over the rows the
     hypersparse BTRAN actually touched — O(support * row nnz), not
     O(nnz A) — so every nonbasic reduced cost stays exact and
     {!entering}'s optimality verdict needs no reprice. *)
  let update_primal st ip jq =
    let jl = st.basis.(ip) in
    let aq = st.w.(ip) in
    let t = st.dj.(jq) /. aq in
    let wq = Float.max st.devex.(jq) 1.0 in
    pivot_row st ip;
    for s = 0 to st.alpha_n - 1 do
      let j = Array.unsafe_get st.alpha_sup s in
      if Array.unsafe_get st.pos_of j < 0 && j <> jq then begin
        let a = Array.unsafe_get st.alpha j in
        if a <> 0.0 then begin
          Array.unsafe_set st.dj j (Array.unsafe_get st.dj j -. (t *. a));
          let r = a /. aq in
          let c = r *. r *. wq in
          if c > Array.unsafe_get st.devex j then
            Array.unsafe_set st.devex j c
        end
      end
    done;
    st.dj.(jl) <- -.t;
    st.dj.(jq) <- 0.0;
    st.devex.(jl) <- Float.max (wq /. (aq *. aq)) 1.0;
    if st.devex.(jl) > Tol.devex_reset || wq > Tol.devex_reset then begin
      Array.fill st.devex 0 st.width 1.0;
      st.devex_resets <- st.devex_resets + 1
    end

  (* Commit the basis change: step the basic values along the FTRAN'd
     column, append the eta, swap the basis bookkeeping. *)
  let commit st ip jq theta =
    for s = 0 to st.w_n - 1 do
      let i = Array.unsafe_get st.w_pat s in
      if i <> ip then begin
        let wi = Array.unsafe_get st.w i in
        if wi <> 0.0 then begin
          let v = Array.unsafe_get st.xb i -. (theta *. wi) in
          Array.unsafe_set st.xb i
            (if v < 0.0 && v > -.Tol.rhs_snap then 0.0 else v)
        end
      end
    done;
    st.xb.(ip) <- theta;
    let e0 = Lu.eta_entries st.lu in
    Lu.update_pat st.lu ~r:ip ~w:st.w ~pat:st.w_pat ~n:st.w_n;
    st.eta_app <- st.eta_app + (Lu.eta_entries st.lu - e0);
    let jl = st.basis.(ip) in
    st.basis.(ip) <- jq;
    st.pos_of.(jq) <- ip;
    st.pos_of.(jl) <- -1;
    st.pivots <- st.pivots + 1

  (* Artificials never (re-)enter: once nonbasic they are fixed at 0. *)
  let eligible st j =
    st.dj.(j) < -.eps && st.pos_of.(j) < 0 && not (is_artificial st j)

  let score st j =
    let d = st.dj.(j) in
    d *. d /. st.devex.(j)

  (* Full pricing scan retaining the [cand_cap] best Devex scores. *)
  let refresh_cands st =
    st.cand_refreshes <- st.cand_refreshes + 1;
    st.cand_n <- 0;
    let worst = ref 0 and worst_s = ref infinity in
    let recompute_worst () =
      worst_s := infinity;
      for s = 0 to st.cand_n - 1 do
        let v = score st st.cand.(s) in
        if v < !worst_s then begin
          worst := s;
          worst_s := v
        end
      done
    in
    for j = 0 to st.width - 1 do
      if eligible st j then
        if st.cand_n < cand_cap then begin
          st.cand.(st.cand_n) <- j;
          st.cand_n <- st.cand_n + 1;
          if st.cand_n = cand_cap then recompute_worst ()
        end
        else if score st j > !worst_s then begin
          st.cand.(!worst) <- j;
          recompute_worst ()
        end
    done

  (* Entering column: best current Devex score among the cached
     candidates (compacting out entries that went basic or lost
     eligibility); a full rescan only when the list runs dry. Bland's
     lowest-index rule takes over on long degenerate runs. *)
  let entering st =
    if st.degenerate_run > 100 then begin
      let rec first j =
        if j >= st.width then None
        else if eligible st j then Some j
        else first (j + 1)
      in
      first 0
    end
    else begin
      let pick () =
        let best = ref (-1) and best_score = ref 0.0 in
        let w = ref 0 in
        for s = 0 to st.cand_n - 1 do
          let j = st.cand.(s) in
          if eligible st j then begin
            st.cand.(!w) <- j;
            incr w;
            let v = score st j in
            if v > !best_score then begin
              best := j;
              best_score := v
            end
          end
        done;
        st.cand_n <- !w;
        !best
      in
      let b = pick () in
      if b >= 0 then begin
        st.cand_hits <- st.cand_hits + 1;
        Some b
      end
      else begin
        (* Candidate list ran dry: rescan (reduced costs are exact). *)
        refresh_cands st;
        let b = pick () in
        if b >= 0 then Some b else None
      end
    end

  (* Harris two-pass ratio test on the FTRAN'd column; see
     {!Dense.leaving} for the rationale. One extra rule: a row holding a
     basic artificial at (numerical) zero whose coefficient is negative
     is eligible at ratio 0 - the exchange drives the artificial out
     nonbasic instead of letting its value grow. *)
  let leaving st =
    let art_kick st i a =
      a < -.eps && st.xb.(i) <= feas_tol && is_artificial st st.basis.(i)
    in
    let theta = ref infinity in
    for s = 0 to st.w_n - 1 do
      let i = Array.unsafe_get st.w_pat s in
      let a = Array.unsafe_get st.w i in
      if a > eps then begin
        let ratio = Float.max st.xb.(i) 0.0 /. a in
        if ratio < !theta then theta := ratio
      end
      else if art_kick st i a then theta := 0.0
    done;
    if !theta = infinity then None
    else begin
      let lim = !theta +. (Tol.harris_rel *. (1.0 +. !theta)) in
      let best = ref (-1) and best_piv = ref 0.0 in
      for s = 0 to st.w_n - 1 do
        let i = Array.unsafe_get st.w_pat s in
        let a = Array.unsafe_get st.w i in
        let mag, ratio =
          if a > eps then (a, Float.max st.xb.(i) 0.0 /. a)
          else if art_kick st i a then (-.a, 0.0)
          else (0.0, infinity)
        in
        if mag > 0.0 then
          if ratio <= lim then begin
            if
              mag > !best_piv
              || (mag = !best_piv && !best >= 0
                 && st.basis.(i) < st.basis.(!best))
            then begin
              best := i;
              best_piv := mag
            end
          end
          else st.harris_rej <- st.harris_rej + 1
      done;
      let i = !best in
      let ratio =
        if st.w.(i) > 0.0 then Float.max st.xb.(i) 0.0 /. st.w.(i) else 0.0
      in
      Some (i, ratio)
    end

  (* [~certify] is a drift guard for callers that reach this loop with
     incrementally-maintained reduced costs (the warm-resolve cleanup,
     whose dual sweep refactorizes without repricing): a claimed optimum
     is only trusted after one fresh O(nnz A) reprice confirms no
     candidate reappears. The cold path repricess at every phase start
     and eta-threshold refactorization, so it skips the check. *)
  let run_phase st ~max_pivots ?(certify = false) () =
    let rec loop certified =
      if st.pivots >= max_pivots then Phase_limit
      else begin
        match entering st with
        | None ->
          if certified then Phase_optimal
          else begin
            price st;
            st.cand_n <- 0;
            loop true
          end
        | Some jq -> begin
            ftran_col st jq;
            match leaving st with
            | None -> Phase_unbounded
            | Some (ip, ratio) ->
              if
                Float.abs st.w.(ip) < Tol.lu_unstable
                && Lu.eta_count st.lu > 0
              then begin
                (* Pivot too small to trust through the eta file:
                   refactorize and retry the iteration. *)
                refresh st;
                loop false
              end
              else begin
                if ratio < Tol.degenerate_ratio then begin
                  st.degenerate_run <- st.degenerate_run + 1;
                  st.degen <- st.degen + 1
                end
                else st.degenerate_run <- 0;
                if st.xb.(ip) < 0.0 then st.xb.(ip) <- 0.0;
                update_primal st ip jq;
                commit st ip jq ratio;
                (* Full refresh, not [refresh_keep_dj]: resealing dj
                   drift here keeps Devex honest on long degenerate
                   runs — skipping the reprice inflates the dualized
                   LP's pivot count by ~30%. *)
                if Lu.needs_refactor st.lu then refresh st;
                loop false
              end
          end
      end
    in
    loop (not certify)

  (* Phase-1 residual: total value still sitting on basic artificials. *)
  let art_residual st =
    let s = ref 0.0 in
    for i = 0 to st.m - 1 do
      if is_artificial st st.basis.(i) then s := !s +. Float.max st.xb.(i) 0.0
    done;
    !s

  (* Pivot basic-at-zero artificials out on any usable real column (a
     degenerate ratio-0 exchange). A row with no usable entry is
     redundant: its artificial stays basic at zero and, because the
     pivot row is zero over real columns, never interferes again. *)
  let purge_artificials st =
    for ip = 0 to st.m - 1 do
      if is_artificial st st.basis.(ip) then begin
        pivot_row st ip;
        let jq = ref (-1) in
        for s = 0 to st.alpha_n - 1 do
          let j = st.alpha_sup.(s) in
          if
            st.pos_of.(j) < 0
            && (not (is_artificial st j))
            && Float.abs st.alpha.(j) > Tol.purge
            && (!jq < 0 || j < !jq)
          then jq := j
        done;
        if !jq >= 0 then begin
          ftran_col st !jq;
          if Float.abs st.w.(ip) > Tol.lu_singular then begin
            st.xb.(ip) <- 0.0;
            commit st ip !jq 0.0;
            if Lu.needs_refactor st.lu then refresh st
          end
        end
      end
    done

  let build ?max_pivots ~obj ~rows ~cmps ~rhs () =
    let n = Array.length obj in
    let m = Array.length rows in
    let scaled_rows, cmps, b0, n_slack, needs_art, n_art, col_scale =
      prepare ~n ~rows ~cmps ~rhs
    in
    let width = n + n_slack + n_art in
    let cap_w = Int.max width 1 and cap_m = Int.max m 1 in
    let st =
      {
        n_struct = n;
        art_lo = n + n_slack;
        art_hi = width;
        budget = (match max_pivots with Some k -> k | None -> default_budget m n);
        obj = Array.copy obj;
        col_scale;
        lu = Lu.create ();
        m;
        width;
        cols = Array.init cap_w (fun _ -> R.create ~cap:4 ());
        arows = Array.init cap_m (fun _ -> R.create ~cap:1 ());
        b0 = (let b = Array.make cap_m 0.0 in Array.blit b0 0 b 0 m; b);
        basis = Array.make cap_m (-1);
        pos_of = Array.make cap_w (-1);
        xb = Array.make cap_m 0.0;
        dj = Array.make cap_w 0.0;
        cost2 = Array.make cap_w 0.0;
        devex = Array.make cap_w 1.0;
        w = Array.make cap_m 0.0;
        w_pat = Array.make cap_m 0;
        w_n = 0;
        rho = Array.make cap_m 0.0;
        rho_pat = Array.make cap_m 0;
        rho_n = 0;
        alpha = Array.make cap_w 0.0;
        alpha_mark = Bytes.make cap_w '\000';
        alpha_sup = Array.make cap_w 0;
        alpha_n = 0;
        cand = Array.make cand_cap 0;
        cand_n = 0;
        in_phase1 = n_art > 0;
        pivots = 0;
        degenerate_run = 0;
        degen = 0;
        harris_rej = 0;
        devex_resets = 0;
        refactors = 0;
        eta_app = 0;
        ftran_nnz = 0;
        btran_nnz = 0;
        cand_hits = 0;
        cand_refreshes = 0;
        valid = false;
      }
    in
    for j = 0 to n - 1 do
      st.cost2.(j) <- obj.(j) *. col_scale.(j)
    done;
    let next_slack = ref n and next_art = ref (n + n_slack) in
    for i = 0 to m - 1 do
      let idx, coef = scaled_rows.(i) in
      let arow = R.of_pairs idx coef in
      (* Mirror the (duplicate-merged) row into the column store; row
         index [i] is the highest so far, so [R.set] appends. *)
      R.iter (fun j v -> R.set st.cols.(j) i v) arow;
      (match cmps.(i) with
      | Le ->
        R.set arow !next_slack 1.0;
        R.set st.cols.(!next_slack) i 1.0;
        st.basis.(i) <- !next_slack;
        st.pos_of.(!next_slack) <- i;
        incr next_slack
      | Ge ->
        R.set arow !next_slack (-1.0);
        R.set st.cols.(!next_slack) i (-1.0);
        incr next_slack
      | Eq -> ());
      if needs_art.(i) then begin
        R.set arow !next_art 1.0;
        R.set st.cols.(!next_art) i 1.0;
        st.basis.(i) <- !next_art;
        st.pos_of.(!next_art) <- i;
        incr next_art
      end;
      st.arows.(i) <- arow
    done;
    st

  let fail st status =
    { status; x = Array.make st.n_struct 0.0; objective = 0.0; pivots = st.pivots }

  let extract st =
    let n = st.n_struct in
    let x = Array.make n 0.0 in
    for i = 0 to st.m - 1 do
      let j = st.basis.(i) in
      if j < n then x.(j) <- st.xb.(i) *. st.col_scale.(j)
    done;
    let objective = ref 0.0 in
    Array.iteri (fun j c -> objective := !objective +. (c *. x.(j))) st.obj;
    { status = Optimal; x; objective = !objective; pivots = st.pivots }

  let record_rev_delta st ~refac0 ~eta0 ~ft0 ~bt0 ~hits0 ~refr0 =
    Obs.record_rev ~refactors:(st.refactors - refac0)
      ~eta:(st.eta_app - eta0) ~ftran:(st.ftran_nnz - ft0)
      ~btran:(st.btran_nnz - bt0) ~hits:(st.cand_hits - hits0)
      ~refreshes:(st.cand_refreshes - refr0)

  let first_solve st =
    T.with_span "lp.rev.solve"
      ~attrs:[ ("rows", T.Int st.m); ("cols", T.Int st.width) ]
    @@ fun () ->
    let max_pivots = st.budget in
    let elapsed = R3_util.Timer.stopwatch () in
    let p1 = ref 0 in
    let finish out =
      Obs.record_solve ~pivots:st.pivots ~p1:!p1 ~degen:st.degen
        ~harris:st.harris_rej ~resets:st.devex_resets ~dt:(elapsed ());
      record_rev_delta st ~refac0:0 ~eta0:0 ~ft0:0 ~bt0:0 ~hits0:0 ~refr0:0;
      T.add_attr "pivots" (T.Int st.pivots);
      T.add_attr "refactorizations" (T.Int st.refactors);
      out
    in
    (* Initial basis is slacks + artificials: B = I, trivially factored. *)
    refresh st;
    let phase1 =
      if not st.in_phase1 then Phase_optimal else run_phase st ~max_pivots ()
    in
    p1 := st.pivots;
    match phase1 with
    | Phase_limit -> finish (fail st Iteration_limit)
    | Phase_unbounded -> finish (fail st Infeasible)
    | Phase_optimal ->
      if st.in_phase1 && art_residual st > feas_tol then
        finish (fail st Infeasible)
      else begin
        st.in_phase1 <- false;
        purge_artificials st;
        st.degenerate_run <- 0;
        st.cand_n <- 0;
        price st;
        match run_phase st ~max_pivots () with
        | Phase_limit -> finish (fail st Iteration_limit)
        | Phase_unbounded -> finish (fail st Unbounded)
        | Phase_optimal ->
          st.valid <- true;
          finish (extract st)
      end

  (* Append [lhs <= rhs] with a fresh basic slack. Unlike the tableau
     backend nothing is eliminated against the basis: the revised method
     works off original rows, so appending is O(nnz row). The
     factorization is stale afterwards; {!resolve} refactorizes first. *)
  let append_le st (idx, coef) rhs =
    let coef = Array.mapi (fun t c -> c *. st.col_scale.(idx.(t))) coef in
    let scale = Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 coef in
    let scale = if scale > 0.0 then scale else 1.0 in
    let k = 1.0 /. scale in
    Array.iteri (fun t c -> coef.(t) <- c *. k) coef;
    grow_cols st 1;
    grow_rows st 1;
    let s = st.width and i = st.m in
    st.width <- st.width + 1;
    st.m <- st.m + 1;
    let arow = R.of_pairs idx coef in
    R.iter (fun j v -> R.set st.cols.(j) i v) arow;
    R.set arow s 1.0;
    st.arows.(i) <- arow;
    st.cols.(s) <- R.of_pairs [| i |] [| 1.0 |];
    st.cost2.(s) <- 0.0;
    st.dj.(s) <- 0.0;
    st.devex.(s) <- 1.0;
    st.b0.(i) <- rhs *. k;
    st.basis.(i) <- s;
    st.pos_of.(s) <- i;
    st.xb.(i) <- 0.0

  let add_row st (idx, coef) cmp rhs =
    match cmp with
    | Le -> append_le st (idx, coef) rhs
    | Ge -> append_le st (idx, Array.map Float.neg coef) (-.rhs)
    | Eq ->
      append_le st (idx, coef) rhs;
      append_le st (idx, Array.map Float.neg coef) (-.rhs)

  (* Warm re-solve after appended rows: refactorize (the dimension
     changed) and reprice - the previous optimum keeps every reduced
     cost >= 0, so the state is dual feasible - then repair primal
     feasibility with dual-simplex pivots through the carried-over
     factorization and finish with a primal cleanup phase. *)
  let resolve st =
    T.with_span "lp.rev.resolve"
      ~attrs:[ ("rows", T.Int st.m); ("cols", T.Int st.width) ]
    @@ fun () ->
    let elapsed = R3_util.Timer.stopwatch () in
    let pivots0 = st.pivots and degen0 = st.degen in
    let harris0 = st.harris_rej and resets0 = st.devex_resets in
    let refac0 = st.refactors and eta0 = st.eta_app in
    let ft0 = st.ftran_nnz and bt0 = st.btran_nnz in
    let hits0 = st.cand_hits and refr0 = st.cand_refreshes in
    let dual = ref 0 in
    let finish out =
      Obs.record_resolve ~pivots:(st.pivots - pivots0) ~dual:!dual
        ~degen:(st.degen - degen0) ~harris:(st.harris_rej - harris0)
        ~resets:(st.devex_resets - resets0) ~dt:(elapsed ());
      record_rev_delta st ~refac0 ~eta0 ~ft0 ~bt0 ~hits0 ~refr0;
      out
    in
    if not st.valid then finish (fail st Iteration_limit)
    else begin
      st.valid <- false;
      st.in_phase1 <- false;
      st.degenerate_run <- 0;
      let result =
        try
          refresh_keep_dj st;
          let limit = st.pivots + st.budget in
          let rec dual_loop () =
            if st.pivots >= limit then Phase_limit
            else begin
              let ip = ref (-1) and bmin = ref (-.Tol.dual_feas) in
              for i = 0 to st.m - 1 do
                (* Rows still holding a basic artificial are redundant
                   (see {!purge_artificials}): their value is zero up to
                   drift and their pivot row has no usable entry, so
                   selecting one would misreport dual unboundedness. *)
                if st.xb.(i) < !bmin && not (is_artificial st st.basis.(i))
                then begin
                  ip := i;
                  bmin := st.xb.(i)
                end
              done;
              if !ip < 0 then Phase_optimal
              else begin
                let ip = !ip in
                pivot_row st ip;
                let jq = ref (-1) and best = ref infinity and best_a = ref 0.0 in
                for s = 0 to st.alpha_n - 1 do
                  let j = st.alpha_sup.(s) in
                  let a = st.alpha.(j) in
                  if a < -.eps && st.pos_of.(j) < 0 && not (is_artificial st j)
                  then begin
                    let ratio = st.dj.(j) /. -.a in
                    if
                      ratio < !best -. Tol.dual_ratio_tie
                      || (ratio < !best +. Tol.dual_ratio_tie
                         && Float.abs a > Float.abs !best_a)
                    then begin
                      jq := j;
                      best := ratio;
                      best_a := a
                    end
                  end
                done;
                if !jq < 0 then
                  Phase_unbounded (* dual unbounded = primal infeasible *)
                else begin
                  let jq = !jq in
                  ftran_col st jq;
                  let aq = st.w.(ip) in
                  if Float.abs aq < Tol.lu_unstable && Lu.eta_count st.lu > 0
                  then begin
                    refresh st;
                    dual_loop ()
                  end
                  else if aq >= -.eps then
                    (* FTRAN disagrees with the BTRAN'd row even on a
                       fresh factorization: give up on the warm state. *)
                    Phase_limit
                  else begin
                    let t = st.dj.(jq) /. -.aq in
                    let jl = st.basis.(ip) in
                    for s = 0 to st.alpha_n - 1 do
                      let j = st.alpha_sup.(s) in
                      if st.pos_of.(j) < 0 && j <> jq then
                        st.dj.(j) <- st.dj.(j) +. (t *. st.alpha.(j))
                    done;
                    st.dj.(jl) <- t;
                    st.dj.(jq) <- 0.0;
                    let theta = st.xb.(ip) /. aq in
                    if theta < Tol.degenerate_ratio then begin
                      st.degenerate_run <- st.degenerate_run + 1;
                      st.degen <- st.degen + 1
                    end
                    else st.degenerate_run <- 0;
                    commit st ip jq theta;
                    if Lu.needs_refactor st.lu then refresh_keep_dj st;
                    dual_loop ()
                  end
                end
              end
            end
          in
          let out = dual_loop () in
          dual := st.pivots - pivots0;
          (match out with
          | Phase_limit -> `Fail Iteration_limit
          | Phase_unbounded -> `Fail Infeasible
          | Phase_optimal -> begin
            (* Primal cleanup: repair residual negative reduced costs. *)
            st.cand_n <- 0;
            match run_phase st ~max_pivots:(st.pivots + st.budget)
                    ~certify:true ()
            with
            | Phase_limit -> `Fail Iteration_limit
            | Phase_unbounded -> `Fail Unbounded
            | Phase_optimal -> `Ok
          end)
        with Lu.Singular -> `Fail Iteration_limit
      in
      match result with
      | `Ok ->
        st.valid <- true;
        finish (extract st)
      | `Fail status -> finish (fail st status)
    end
end

let solve ?(backend = `Sparse) ?max_pivots ~obj ~rows ~cmps ~rhs () =
  match backend with
  | `Dense -> Dense.solve ?max_pivots ~obj ~rows ~cmps ~rhs ()
  | `Sparse ->
    let st = Sp.build ?max_pivots ~obj ~rows ~cmps ~rhs () in
    Sp.first_solve st
  | `Revised -> (
    try
      let st = Rev.build ?max_pivots ~obj ~rows ~cmps ~rhs () in
      Rev.first_solve st
    with Lu.Singular ->
      (* Numerically singular basis mid-solve: the tableau backend
         pivots through such bases, so retry there. *)
      R3_util.Metrics.incr Obs.rev_fallbacks;
      let st = Sp.build ?max_pivots ~obj ~rows ~cmps ~rhs () in
      Sp.first_solve st)

module Session = struct
  type engine = Tab of Sp.state | Rev of Rev.state
  type t = { eng : engine; mutable last : outcome }

  let create ?(backend = `Sparse) ?max_pivots ~obj ~rows ~cmps ~rhs () =
    match backend with
    | `Dense | `Sparse ->
      let st = Sp.build ?max_pivots ~obj ~rows ~cmps ~rhs () in
      { eng = Tab st; last = Sp.first_solve st }
    | `Revised -> (
      try
        let st = Rev.build ?max_pivots ~obj ~rows ~cmps ~rhs () in
        let last = Rev.first_solve st in
        { eng = Rev st; last }
      with Lu.Singular ->
        R3_util.Metrics.incr Obs.rev_fallbacks;
        let st = Sp.build ?max_pivots ~obj ~rows ~cmps ~rhs () in
        { eng = Tab st; last = Sp.first_solve st })

  let outcome s = s.last

  let add_row s row cmp rhs =
    match s.eng with
    | Tab st -> Sp.add_row st row cmp rhs
    | Rev st -> Rev.add_row st row cmp rhs

  let resolve s =
    let o =
      match s.eng with Tab st -> Sp.resolve st | Rev st -> Rev.resolve st
    in
    s.last <- o;
    o

  let pivots s =
    match s.eng with Tab st -> st.Sp.pivots | Rev st -> st.Rev.pivots

  let warm_ok s =
    match s.eng with Tab st -> st.Sp.valid | Rev st -> st.Rev.valid

  let refactorizations s =
    match s.eng with Tab _ -> 0 | Rev st -> st.Rev.refactors
end
