type var = int

type cmp = Le | Ge | Eq

type backend = [ `Dense | `Sparse | `Revised ]

let backend_of_string s =
  match String.lowercase_ascii s with
  | "dense" -> Some `Dense
  | "tableau" | "sparse" -> Some `Sparse
  | "revised" -> Some `Revised
  | _ -> None

let backend_name = function
  | `Dense -> "dense"
  | `Sparse -> "tableau"
  | `Revised -> "revised"

type var_info = { vname : string; lb : float; ub : float }

type row = { rname : string; terms : (float * var) list; cmp : cmp; rhs : float }

type t = {
  pname : string;
  mutable vars : var_info list;  (* reversed *)
  mutable nvars : int;
  mutable vars_cache : var_info array option;  (* memoized [vars_array] *)
  mutable rows : row list;  (* reversed *)
  mutable nrows : int;
  mutable sense_minimize : bool;
  mutable obj_terms : (float * var) list;
}

type solution = { objective : float; value : var -> float; pivots : int }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

let create ?(name = "lp") () =
  {
    pname = name;
    vars = [];
    nvars = 0;
    vars_cache = None;
    rows = [];
    nrows = 0;
    sense_minimize = true;
    obj_terms = [];
  }

let name t = t.pname

let var t ?(lb = 0.0) ?(ub = infinity) vname =
  if lb > ub then invalid_arg ("Problem.var: lb > ub for " ^ vname);
  let v = t.nvars in
  t.vars <- { vname; lb; ub } :: t.vars;
  t.nvars <- t.nvars + 1;
  t.vars_cache <- None;
  v

let free_var t vname = var t ~lb:neg_infinity ~ub:infinity vname

let constr t ?name terms cmp rhs =
  let rname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" t.nrows
  in
  t.rows <- { rname; terms; cmp; rhs } :: t.rows;
  t.nrows <- t.nrows + 1

let minimize t terms =
  t.sense_minimize <- true;
  t.obj_terms <- terms

let maximize t terms =
  t.sense_minimize <- false;
  t.obj_terms <- terms

let add_objective_term t coef v = t.obj_terms <- (coef, v) :: t.obj_terms

let num_vars t = t.nvars
let num_constraints t = t.nrows

let vars_array t =
  match t.vars_cache with
  | Some arr -> arr
  | None ->
    let arr = Array.make t.nvars { vname = ""; lb = 0.0; ub = 0.0 } in
    List.iteri (fun i vi -> arr.(t.nvars - 1 - i) <- vi) t.vars;
    t.vars_cache <- Some arr;
    arr

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Problem.var_name: bad var";
  (vars_array t).(v).vname

(* Combine duplicate variables in a term list into a sparse (idx, coef)
   pair of arrays, dropping exact zeros. *)
let compact_terms nvars terms =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      if v < 0 || v >= nvars then invalid_arg "Problem: variable out of range";
      let prev = Option.value (Hashtbl.find_opt acc v) ~default:0.0 in
      Hashtbl.replace acc v (prev +. c))
    terms;
  let pairs =
    Hashtbl.fold (fun v c l -> if c <> 0.0 then (v, c) :: l else l) acc []
  in
  let pairs = List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs in
  (Array.of_list (List.map fst pairs), Array.of_list (List.map snd pairs))

(* Mapping of a user variable onto solver columns:
   - Shifted: one nonnegative column, x = lb + col
   - Split:   two nonnegative columns, x = col_pos - col_neg (free var) *)
type col_map = Shifted of int * float | Split of int * int

(* Snapshot of the user problem translated onto solver columns: variable
   mapping, objective over columns, and all rows (user rows in order,
   then upper-bound rows). Shared by [solve] and [session]. *)
type translated = {
  mapping : col_map array;
  n_user : int;
  obj : float array;
  obj_const : float;
  sense : float;
  rows : (int array * float array) array;
  cmps : Simplex.cmp array;
  rhs : float array;
}

(* One constraint row through the column mapping. *)
let translate_row mapping n_user { terms; cmp; rhs; _ } =
  let idx, coef = compact_terms n_user terms in
  let cols = ref [] and vals = ref [] in
  let rhs_shift = ref 0.0 in
  Array.iteri
    (fun k v ->
      let c = coef.(k) in
      match mapping.(v) with
      | Shifted (col, lb) ->
        cols := col :: !cols;
        vals := c :: !vals;
        rhs_shift := !rhs_shift +. (c *. lb)
      | Split (p, m) ->
        cols := m :: p :: !cols;
        vals := -.c :: c :: !vals)
    idx;
  let cmp =
    match cmp with Le -> Simplex.Le | Ge -> Simplex.Ge | Eq -> Simplex.Eq
  in
  ( Array.of_list (List.rev !cols),
    Array.of_list (List.rev !vals),
    cmp,
    rhs -. !rhs_shift )

let translate t =
  let infos = vars_array t in
  let n_user = t.nvars in
  let mapping = Array.make n_user (Shifted (0, 0.0)) in
  let next_col = ref 0 in
  let extra_rows = ref [] in
  for v = 0 to n_user - 1 do
    let { lb; ub; _ } = infos.(v) in
    if lb = neg_infinity then begin
      let p = !next_col in
      let m = !next_col + 1 in
      next_col := !next_col + 2;
      mapping.(v) <- Split (p, m);
      if ub < infinity then
        extra_rows := ([| p; m |], [| 1.0; -1.0 |], Simplex.Le, ub) :: !extra_rows
    end
    else begin
      let c = !next_col in
      incr next_col;
      mapping.(v) <- Shifted (c, lb);
      if ub < infinity then
        extra_rows := ([| c |], [| 1.0 |], Simplex.Le, ub -. lb) :: !extra_rows
    end
  done;
  let n_cols = !next_col in
  (* Objective over solver columns; constant offset from lower bounds. *)
  let obj = Array.make n_cols 0.0 in
  let obj_const = ref 0.0 in
  let idx, coef = compact_terms n_user t.obj_terms in
  let sense = if t.sense_minimize then 1.0 else -1.0 in
  Array.iteri
    (fun k v ->
      let c = coef.(k) *. sense in
      match mapping.(v) with
      | Shifted (col, lb) ->
        obj.(col) <- obj.(col) +. c;
        obj_const := !obj_const +. (c *. lb)
      | Split (p, m) ->
        obj.(p) <- obj.(p) +. c;
        obj.(m) <- obj.(m) -. c)
    idx;
  let user_rows = List.rev t.rows in
  let all_rows =
    List.map (translate_row mapping n_user) user_rows @ List.rev !extra_rows
  in
  let m = List.length all_rows in
  let rows = Array.make m ([||], [||]) in
  let cmps = Array.make m Simplex.Eq in
  let rhs = Array.make m 0.0 in
  List.iteri
    (fun i (ix, cf, c, r) ->
      rows.(i) <- (ix, cf);
      cmps.(i) <- c;
      rhs.(i) <- r)
    all_rows;
  { mapping; n_user; obj; obj_const = !obj_const; sense; rows; cmps; rhs }

let wrap tr (out : Simplex.outcome) =
  match out.Simplex.status with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Iteration_limit -> Iteration_limit
  | Simplex.Optimal ->
    let x = out.Simplex.x in
    let value v =
      if v < 0 || v >= tr.n_user then invalid_arg "solution value: bad var";
      match tr.mapping.(v) with
      | Shifted (col, lb) -> lb +. x.(col)
      | Split (p, mi) -> x.(p) -. x.(mi)
    in
    let objective = tr.sense *. (out.Simplex.objective +. tr.obj_const) in
    Optimal { objective; value; pivots = out.Simplex.pivots }

let solve ?backend ?max_pivots t =
  let tr = translate t in
  wrap tr
    (Simplex.solve ?backend ?max_pivots ~obj:tr.obj ~rows:tr.rows ~cmps:tr.cmps
       ~rhs:tr.rhs ())

(* ---- incremental solve handle ---- *)

module Obs = struct
  module M = R3_util.Metrics

  let cold_starts = M.counter "lp.session.cold_starts"
  let warm_resolves = M.counter "lp.session.warm_resolves"
  let rows_added = M.counter "lp.session.rows_added"
end

type session = {
  sp : t;
  sbackend : backend option;
  smax_pivots : int option;
  mutable core : (Simplex.Session.t * translated) option;
  mutable seen_rows : int;  (* rows of [sp] already in [core] *)
  mutable seen_vars : int;
  mutable retired_pivots : int;  (* pivots spent in discarded cores *)
}

let session ?backend ?max_pivots t =
  { sp = t; sbackend = backend; smax_pivots = max_pivots; core = None;
    seen_rows = 0; seen_vars = 0; retired_pivots = 0 }

let session_pivots s =
  s.retired_pivots
  + (match s.core with Some (c, _) -> Simplex.Session.pivots c | None -> 0)

let retire s =
  (match s.core with
  | Some (c, _) -> s.retired_pivots <- s.retired_pivots + Simplex.Session.pivots c
  | None -> ());
  s.core <- None

(* Full cold (re)build: translate the whole problem and run two-phase. *)
let cold_start s =
  let t = s.sp in
  R3_util.Metrics.incr Obs.cold_starts;
  let tr = translate t in
  let core =
    Simplex.Session.create ?backend:s.sbackend ?max_pivots:s.smax_pivots
      ~obj:tr.obj ~rows:tr.rows ~cmps:tr.cmps ~rhs:tr.rhs ()
  in
  s.core <- Some (core, tr);
  s.seen_rows <- t.nrows;
  s.seen_vars <- t.nvars;
  wrap tr (Simplex.Session.outcome core)

let resolve s =
  let t = s.sp in
  match s.core with
  | None -> cold_start s
  | Some _ when t.nvars <> s.seen_vars ->
    (* New variables (or a changed objective shape) need a fresh tableau. *)
    retire s;
    cold_start s
  | Some (core, tr) ->
    let fresh = t.nrows - s.seen_rows in
    if fresh = 0 then wrap tr (Simplex.Session.outcome core)
    else begin
      (* [t.rows] is reversed: the first [fresh] entries are the new rows. *)
      let rec take k acc = function
        | r :: rest when k > 0 -> take (k - 1) (r :: acc) rest
        | _ -> acc
      in
      let new_rows = take fresh [] t.rows in
      List.iter
        (fun r ->
          let idx, vals, cmp, rhs = translate_row tr.mapping tr.n_user r in
          Simplex.Session.add_row core (idx, vals) cmp rhs)
        new_rows;
      s.seen_rows <- t.nrows;
      R3_util.Metrics.incr Obs.warm_resolves;
      R3_util.Metrics.add Obs.rows_added fresh;
      let out = Simplex.Session.resolve core in
      match out.Simplex.status with
      | Simplex.Iteration_limit when not (Simplex.Session.warm_ok core) ->
        (* Warm state unusable (numerical trouble or budget blown during
           the dual repair): fall back to one cold solve. *)
        retire s;
        cold_start s
      | _ -> wrap tr out
    end

let pp ppf t =
  let infos = vars_array t in
  let pp_terms ppf terms =
    let idx, coef = compact_terms t.nvars terms in
    if Array.length idx = 0 then Format.fprintf ppf "0"
    else
      Array.iteri
        (fun k v ->
          let c = coef.(k) in
          if k = 0 then Format.fprintf ppf "%g %s" c infos.(v).vname
          else if c >= 0.0 then Format.fprintf ppf " + %g %s" c infos.(v).vname
          else Format.fprintf ppf " - %g %s" (-.c) infos.(v).vname)
        idx
  in
  Format.fprintf ppf "@[<v>%s: %s %a@,subject to:@,"
    t.pname
    (if t.sense_minimize then "minimize" else "maximize")
    pp_terms t.obj_terms;
  List.iter
    (fun { rname; terms; cmp; rhs } ->
      let op = match cmp with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf ppf "  %s: %a %s %g@," rname pp_terms terms op rhs)
    (List.rev t.rows);
  Array.iter
    (fun { vname; lb; ub } ->
      if lb <> 0.0 || ub <> infinity then
        Format.fprintf ppf "  %g <= %s <= %g@," lb vname ub)
    infos;
  Format.fprintf ppf "@]"
