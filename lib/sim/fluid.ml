module G = R3_net.Graph
module Routing = R3_net.Routing

type scheme =
  | R3_plan of R3_core.Offline.plan
  | Ospf of { weights : float array; reconvergence_s : float }

type event = { at_s : float; fail : G.link }

type config = { duration_s : float; dt_s : float; burstiness : float; seed : int }

let default_config = { duration_s = 300.0; dt_s = 1.0; burstiness = 0.15; seed = 2024 }

type step = {
  time_s : float;
  loads : float array;
  utilization : float array;
  delivered : float array;
  offered : float array;
  rtt_ms : float array;
}

type run = { steps : step list; pairs : (G.node * G.node) array }

(* Queueing-aware per-link one-way delay: propagation plus a small factor
   that blows up near saturation. *)
let link_delay g e ~util =
  let rho = Float.min util 0.98 in
  G.delay g e *. (1.0 +. (0.25 *. rho /. (1.0 -. rho)))

let run ?(config = default_config) g ~pairs ~demands ~scheme ~events () =
  let m = G.num_links g in
  let nk = Array.length pairs in
  let rng = R3_util.Prng.create config.seed in
  (* Deterministic per-commodity burst phases. *)
  let phase = Array.init nk (fun _ -> R3_util.Prng.float rng (2.0 *. Float.pi)) in
  let freq = Array.init nk (fun _ -> 0.05 +. R3_util.Prng.float rng 0.2) in
  (* Incremental routing state carried across timesteps. The old code
     rebuilt [Reconfig.make] from the pristine plan (and, on the OSPF arm,
     re-ran a full SPF routing) at every dt and re-folded every fallen
     link one singleton at a time — quadratic in the event count and
     linear in the run length even with no topology change. Instead the
     chronologically sorted events are consumed by advance-only cursors:
     the R3 arm folds newly fallen links as one canonical {!Scenario.t}
     delta on the copy-on-write substrate (Theorem 3 makes that
     bit-identical to the from-scratch rebuild), and the OSPF arm caches
     the SPF routing keyed by the converged prefix, re-solving only when
     that prefix grows. *)
  let ev =
    Array.of_list
      (List.stable_sort (fun a b -> Float.compare a.at_s b.at_s) events)
  in
  let nev = Array.length ev in
  let r3_st =
    match scheme with
    | R3_plan plan ->
      Some
        (ref
           (R3_core.Reconfig.make g ~pairs ~demands
              ~base:plan.R3_core.Offline.base
              ~protection:plan.R3_core.Offline.protection))
    | Ospf _ -> None
  in
  let r3_cursor = ref 0 in
  let ospf_fall = ref 0 and ospf_conv = ref 0 in
  let ospf_basis = ref None in
  let routing_at time =
    match scheme with
    | R3_plan _ ->
      (* R3 reacts within a detection interval (sub-second); model as
         immediate at our timestep resolution. *)
      let st = Option.get r3_st in
      let fresh = ref [] in
      while !r3_cursor < nev && ev.(!r3_cursor).at_s <= time do
        fresh := ev.(!r3_cursor).fail :: !fresh;
        incr r3_cursor
      done;
      if !fresh <> [] then
        st := R3_core.Reconfig.fail !st (Scenario.of_links g !fresh);
      ((!st).R3_core.Reconfig.base, (!st).R3_core.Reconfig.failed)
    | Ospf { weights; reconvergence_s } ->
      (* OSPF only sees failures older than its reconvergence delay;
         younger ones blackhole the traffic crossing them (we zero those
         links' flow, modelling drops at the failure point). *)
      while !ospf_fall < nev && ev.(!ospf_fall).at_s <= time do
        incr ospf_fall
      done;
      while
        !ospf_conv < nev && ev.(!ospf_conv).at_s +. reconvergence_s <= time
      do
        incr ospf_conv
      done;
      let prefix n = List.init n (fun i -> ev.(i).fail) in
      let basis =
        match !ospf_basis with
        | Some (n, r) when n = !ospf_conv -> r
        | _ ->
          let r =
            R3_net.Ospf.routing g
              ~failed:(G.fail_bidir g (prefix !ospf_conv))
              ~weights ~pairs ()
          in
          ospf_basis := Some (!ospf_conv, r);
          r
      in
      let failed_now = G.fail_bidir g (prefix !ospf_fall) in
      if !ospf_fall = !ospf_conv then (basis, failed_now)
      else begin
        (* Zero the not-yet-converged links on a copy-on-write copy so
           the cached converged basis stays pristine for later steps. *)
        let r = Routing.copy basis in
        for e = 0 to m - 1 do
          if failed_now.(e) then
            for k = 0 to Routing.num_commodities r - 1 do
              if Routing.get r k e > 0.0 then Routing.set r k e 0.0
            done
        done;
        (r, failed_now)
      end
  in
  let steps = ref [] in
  let nsteps = int_of_float (config.duration_s /. config.dt_s) in
  for i = 0 to nsteps - 1 do
    let time = float_of_int i *. config.dt_s in
    let offered =
      Array.init nk (fun k ->
          demands.(k)
          *. (1.0 +. (config.burstiness *. sin ((freq.(k) *. time) +. phase.(k)))))
    in
    let routing, failed = routing_at time in
    let loads = Routing.loads g ~demands:offered routing in
    let utilization =
      Array.init m (fun e ->
          if failed.(e) then 0.0 else loads.(e) /. G.capacity g e)
    in
    (* Per-link drop fraction; first-order per-commodity loss. *)
    let drop = Array.init m (fun e -> Float.max 0.0 (1.0 -. (1.0 /. Float.max 1.0 utilization.(e)))) in
    let delivered =
      Array.init nk (fun k ->
          let routed = Routing.delivered g routing k in
          let lost =
            Routing.fold_row routing k ~init:0.0 ~f:(fun acc e x ->
                if x > 0.0 then acc +. (x *. drop.(e)) else acc)
          in
          offered.(k) *. Float.max 0.0 (Float.min routed (routed -. lost)))
    in
    let rtt_ms =
      Array.init nk (fun k ->
          let acc =
            Routing.fold_row routing k ~init:0.0 ~f:(fun acc e x ->
                if x > 0.0 then
                  acc +. (x *. link_delay g e ~util:utilization.(e))
                else acc)
          in
          2.0 *. acc)
    in
    steps := { time_s = time; loads; utilization; delivered; offered; rtt_ms } :: !steps
  done;
  { steps = List.rev !steps; pairs }

(* Phase boundaries: start, each event, end. A phase's steady window is its
   last 40%. *)
let phase_windows run ~events =
  let times = List.map (fun s -> s.time_s) run.steps in
  let t_end = List.fold_left Float.max 0.0 times +. 1.0 in
  let bounds = 0.0 :: List.map (fun ev -> ev.at_s) events @ [ t_end ] in
  let rec windows = function
    | a :: (b :: _ as rest) -> (a +. (0.6 *. (b -. a)), b) :: windows rest
    | _ -> []
  in
  windows bounds

let steps_in run (a, b) = List.filter (fun s -> s.time_s >= a && s.time_s < b) run.steps

let mean_over steps extract n =
  let acc = Array.make n 0.0 in
  let count = List.length steps in
  if count = 0 then acc
  else begin
    List.iter
      (fun s ->
        let v = extract s in
        for i = 0 to n - 1 do
          acc.(i) <- acc.(i) +. v.(i)
        done)
      steps;
    Array.map (fun x -> x /. float_of_int count) acc
  end

let throughput_by_phase run ~events =
  let nk = Array.length run.pairs in
  phase_windows run ~events
  |> List.map (fun w -> mean_over (steps_in run w) (fun s -> s.delivered) nk)

let utilization_by_phase run ~events =
  match run.steps with
  | [] -> []
  | s :: _ ->
    let m = Array.length s.utilization in
    phase_windows run ~events
    |> List.map (fun w -> mean_over (steps_in run w) (fun s -> s.utilization) m)

let egress_loss_by_phase g run ~events =
  let nk = Array.length run.pairs in
  let n = G.num_nodes g in
  phase_windows run ~events
  |> List.map (fun w ->
         let steps = steps_in run w in
         let offered = mean_over steps (fun s -> s.offered) nk in
         let delivered = mean_over steps (fun s -> s.delivered) nk in
         let lost_by_egress = Array.make n 0.0 and off_by_egress = Array.make n 0.0 in
         Array.iteri
           (fun k (_, b) ->
             lost_by_egress.(b) <-
               lost_by_egress.(b) +. Float.max 0.0 (offered.(k) -. delivered.(k));
             off_by_egress.(b) <- off_by_egress.(b) +. offered.(k))
           run.pairs;
         Array.init n (fun v ->
             if off_by_egress.(v) <= 0.0 then 0.0 else lost_by_egress.(v) /. off_by_egress.(v)))

let rtt_series run ~src ~dst =
  let k = ref (-1) in
  Array.iteri (fun i (a, b) -> if a = src && b = dst then k := i) run.pairs;
  if !k < 0 then []
  else List.map (fun s -> (s.time_s, s.rtt_ms.(!k))) run.steps
