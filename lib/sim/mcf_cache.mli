(** Memo cache for the optimal-MCF normalizer.

    The per-scenario optimal bottleneck ([Eval.optimal]) is by far the most
    expensive quantity a sweep computes, and it is a pure function of
    (topology, commodities, demands, epsilon, failure set). This cache keys
    on exactly that: a {e context digest} over everything but the failure
    set picks the table (and the on-disk file), and {!Scenario.key} picks
    the entry. Values survive the disk round-trip bit-identically (hex
    floats), so warm runs reproduce cold runs exactly.

    Concurrency: {!find} is safe from parallel sweep workers {e only while
    no writer runs}; {!add}/{!flush} must be called from a single domain
    between parallel sections (the discipline [Sweep.run] follows). *)

type t

(** [create ?dir ~graph ~pairs ~demands ~epsilon ()] — in-memory table,
    optionally backed by [dir/mcf-<context>.cache] (created by {!flush};
    loaded eagerly if present). The conventional [dir] is [".bench-cache"]. *)
val create :
  ?dir:string ->
  graph:R3_net.Graph.t ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  epsilon:float ->
  unit ->
  t

(** The context digest (hex MD5) this cache is keyed under. *)
val context : t -> string

val size : t -> int
val find : t -> Scenario.t -> float option
val add : t -> Scenario.t -> float -> unit

(** Persist to disk (no-op for purely in-memory caches or when clean).
    Crash-safe: the file is written to a temp sibling and renamed into
    place, so an interrupted flush (or a concurrent one from another
    process) leaves the previous file readable. *)
val flush : t -> unit
