(** Failure-scenario generation (Section 5.1).

    The paper enumerates all single- and two-link failures and randomly
    samples ~1100 three- and four-link scenarios. Failures are {e physical}:
    a failed link takes its reverse direction down with it. Scenarios are
    the canonical {!Scenario.t}; the raw directed-link-list entry points
    below are deprecated compatibility wrappers. *)

(** Canonical physical links: one directed representative per bidirectional
    pair (the lower id), plus any unpaired directed links. *)
val physical_links : R3_net.Graph.t -> R3_net.Graph.link array

(** All scenarios failing exactly [k] physical links, in lexicographic
    (sweep-tree DFS) order. Scenarios that partition the graph are kept —
    algorithms must cope. *)
val enumerate : R3_net.Graph.t -> k:int -> Scenario.t list

(** [sample g ~k ~count ~seed] distinct random scenarios of [k] physical
    links. Deterministic in [seed]; draws the same scenarios the legacy
    [sample_k] drew. Returns exactly [min count C(n,k)] scenarios except
    in one documented case: when the space is too large to enumerate yet
    rejection sampling exhausts its [100 * count]-attempt guard (possible
    only when [count] is close to [C(n,k)]), the result is shorter. Such
    a shortfall is never silent — the missing scenario count is added to
    the [sim.scenarios.sample_shortfall] metrics counter. *)
val sample :
  R3_net.Graph.t -> k:int -> count:int -> seed:int -> Scenario.t list

(** Single failure events from structured groups (SRLGs, MLGs): each group
    becomes one canonical scenario. *)
val of_groups :
  R3_net.Graph.t -> R3_net.Graph.link list list -> Scenario.t list

(** Drop scenarios that disconnect the graph (used where the paper's metric
    is only defined on connected survivors). *)
val connected : R3_net.Graph.t -> Scenario.t list -> Scenario.t list

(** {2 Deprecated raw-list interface}

    Kept for one PR; every entry point has a {!Scenario.t} replacement. *)

(** Expand physical picks into the full directed-link scenario. *)
val expand : R3_net.Graph.t -> R3_net.Graph.link list -> R3_net.Graph.link list
[@@ocaml.deprecated "use Scenario.of_links / Scenario.links"]

(** All scenarios failing exactly [k] physical links (enumerated). *)
val all_k : R3_net.Graph.t -> k:int -> R3_net.Graph.link list list
[@@ocaml.deprecated "use Scenarios.enumerate"]

(** [sample_k g ~k ~count ~seed] distinct random scenarios of [k] physical
    links (fewer if the space is smaller than [count]). *)
val sample_k :
  R3_net.Graph.t -> k:int -> count:int -> seed:int -> R3_net.Graph.link list list
[@@ocaml.deprecated "use Scenarios.sample"]

(** Single failure events from structured groups: each SRLG or MLG down as
    one event (already closed under reversal by construction). *)
val group_events : R3_net.Graph.link list list -> R3_net.Graph.link list list
[@@ocaml.deprecated "use Scenarios.of_groups"]

(** Drop scenarios that disconnect the graph. *)
val connected_only :
  R3_net.Graph.t -> R3_net.Graph.link list list -> R3_net.Graph.link list list
[@@ocaml.deprecated "use Scenarios.connected"]
