(* Forwarding module: Scenario moved into R3_core so the Reconfig
   fail/recover API can key on scenario deltas (it cannot depend on
   r3_sim). Sim-layer call sites keep reading [Scenario.…]; the types are
   definitionally equal, so R3_sim.Scenario.t = R3_core.Scenario.t. *)
include R3_core.Scenario
