module G = R3_net.Graph
module Routing = R3_net.Routing
module B = R3_baselines

type algorithm =
  | Ospf_cspf_detour
  | Ospf_recon
  | Fcp
  | Path_splice
  | Ospf_r3
  | Ospf_opt
  | Mplsff_r3

let algorithm_name = function
  | Ospf_cspf_detour -> "OSPF+CSPF-detour"
  | Ospf_recon -> "OSPF+recon"
  | Fcp -> "FCP"
  | Path_splice -> "PathSplice"
  | Ospf_r3 -> "OSPF+R3"
  | Ospf_opt -> "OSPF+opt"
  | Mplsff_r3 -> "MPLS-ff+R3"

let all_algorithms =
  [ Ospf_cspf_detour; Ospf_recon; Fcp; Path_splice; Ospf_r3; Ospf_opt; Mplsff_r3 ]

type env = {
  graph : G.t;
  weights : float array;
  pairs : (G.node * G.node) array;
  demands : float array;
  ospf_base : Routing.t;
  ospf_r3 : R3_core.Offline.plan option;
  mplsff_r3 : R3_core.Offline.plan option;
  mcf_epsilon : float;
}

let make_env g ~weights ~pairs ~demands ?ospf_r3 ?mplsff_r3 ?(mcf_epsilon = 0.06) () =
  let ospf_base = R3_net.Ospf.routing g ~weights ~pairs () in
  { graph = g; weights; pairs; demands; ospf_base; ospf_r3; mplsff_r3; mcf_epsilon }

let mcf_cache ?dir env =
  Mcf_cache.create ?dir ~graph:env.graph ~pairs:env.pairs ~demands:env.demands
    ~epsilon:env.mcf_epsilon ()

let r3_root_of_plan env plan =
  (* Evaluate the plan's routing against the env's demands (the plan may
     have been computed for a different - e.g. peak - matrix). *)
  let plan_pairs = plan.R3_core.Offline.pairs in
  let demands =
    if plan_pairs == env.pairs then env.demands
    else begin
      (* align env demands onto plan commodities *)
      let idx = Hashtbl.create 64 in
      Array.iteri (fun k pr -> Hashtbl.replace idx pr k) env.pairs;
      Array.map
        (fun pr ->
          match Hashtbl.find_opt idx pr with
          | Some k -> env.demands.(k)
          | None -> 0.0)
        plan_pairs
    end
  in
  R3_core.Reconfig.make env.graph ~pairs:plan_pairs ~demands
    ~base:plan.R3_core.Offline.base ~protection:plan.R3_core.Offline.protection

let r3_root env alg =
  match alg with
  | Ospf_r3 -> begin
    match env.ospf_r3 with
    | Some plan -> Some (r3_root_of_plan env plan)
    | None -> invalid_arg "Eval: OSPF+R3 requested without a plan"
  end
  | Mplsff_r3 -> begin
    match env.mplsff_r3 with
    | Some plan -> Some (r3_root_of_plan env plan)
    | None -> invalid_arg "Eval: MPLS-ff+R3 requested without a plan"
  end
  | Ospf_cspf_detour | Ospf_recon | Fcp | Path_splice | Ospf_opt -> None

(* Fraction of demand whose OD pair keeps reachability — the delivery
   ceiling of any flow-based scheme, reported for Ospf_opt (whose LP has no
   explicit drop accounting). *)
let reachable_fraction env ~failed =
  let total = Array.fold_left ( +. ) 0.0 env.demands in
  if total <= 0.0 then 1.0
  else begin
    let got = ref 0.0 in
    Array.iteri
      (fun k (a, b) ->
        if env.demands.(k) > 0.0 && not (G.partitions_pair env.graph failed a b)
        then got := !got +. env.demands.(k))
      env.pairs;
    !got /. total
  end

(* Bottleneck intensity and delivered fraction of one algorithm under one
   scenario given as directed failed links. *)
let outcome_links env alg scenario =
  let g = env.graph in
  let failed = G.fail_links g scenario in
  let of_baseline o = (B.Types.bottleneck g ~failed o, o.B.Types.delivered) in
  match alg with
  | Ospf_recon ->
    of_baseline
      (B.Ospf_recon.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
         ~demands:env.demands ())
  | Ospf_cspf_detour ->
    of_baseline
      (B.Cspf_detour.evaluate g ~failed ~weights:env.weights ~base:env.ospf_base
         ~demands:env.demands ())
  | Fcp ->
    of_baseline
      (B.Fcp.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
         ~demands:env.demands ())
  | Path_splice ->
    of_baseline
      (B.Path_splicing.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
         ~demands:env.demands ())
  | Ospf_opt -> begin
    match B.Opt_detour.mlu g ~failed ~base:env.ospf_base ~demands:env.demands () with
    | Ok u -> (u, reachable_fraction env ~failed)
    | Error _ ->
      (* fall back to reconvergence if the detour LP fails *)
      of_baseline
        (B.Ospf_recon.evaluate g ~failed ~weights:env.weights ~pairs:env.pairs
           ~demands:env.demands ())
  end
  | Ospf_r3 | Mplsff_r3 ->
    let st = Option.get (r3_root env alg) in
    let st = R3_core.Reconfig.apply_failures st scenario in
    (R3_core.Reconfig.mlu st, R3_core.Reconfig.delivered_fraction st)

let bottleneck_links env alg scenario = fst (outcome_links env alg scenario)

let scenario_bottleneck env alg scenario =
  bottleneck_links env alg (Scenario.links scenario)

let solve_optimal env scenario =
  let failed = G.fail_links env.graph (Scenario.links scenario) in
  let r =
    R3_mcf.Concurrent_flow.min_mlu env.graph ~failed ~epsilon:env.mcf_epsilon
      ~pairs:env.pairs ~demands:env.demands ()
  in
  r.R3_mcf.Concurrent_flow.mlu

let optimal ?cache env scenario =
  match cache with
  | None -> solve_optimal env scenario
  | Some c -> begin
    match Mcf_cache.find c scenario with
    | Some v -> v
    | None ->
      let v = solve_optimal env scenario in
      Mcf_cache.add c scenario v;
      v
  end

type result = {
  bottleneck : float;
  optimal : float;
  ratio : float option;
  delivered : float;
}

let evaluate ?cache ?(with_optimal = true) env alg scenario =
  let b, d = outcome_links env alg (Scenario.links scenario) in
  if with_optimal then begin
    let opt = optimal ?cache env scenario in
    {
      bottleneck = b;
      optimal = opt;
      ratio = (if opt > 0.0 then Some (b /. opt) else None);
      delivered = d;
    }
  end
  else { bottleneck = b; optimal = nan; ratio = None; delivered = d }

(* ---- legacy entry point (deprecated in the mli) ---- *)

(* The serial reference the sweep bench compares the prefix-sharing
   engine against; the removed [bottleneck]/[optimal_bottleneck]/
   [performance_ratio] wrappers collapsed into {!evaluate}. *)
let sorted_curves env ~algorithms ~scenarios ?(metric = `Ratio) () =
  let raw_optimal links =
    let failed = G.fail_links env.graph links in
    let r =
      R3_mcf.Concurrent_flow.min_mlu env.graph ~failed ~epsilon:env.mcf_epsilon
        ~pairs:env.pairs ~demands:env.demands ()
    in
    r.R3_mcf.Concurrent_flow.mlu
  in
  let algs = Array.of_list algorithms in
  let values = Array.map (fun _ -> ref []) algs in
  List.iter
    (fun scenario ->
      let opt =
        match metric with
        | `Ratio -> raw_optimal scenario
        | `Bottleneck -> 1.0
      in
      Array.iteri
        (fun i alg ->
          let v = bottleneck_links env alg scenario in
          let v = match metric with `Ratio -> if opt > 0.0 then v /. opt else nan | `Bottleneck -> v in
          if not (Float.is_nan v) then values.(i) := v :: !(values.(i)))
        algs)
    scenarios;
  Array.map
    (fun l ->
      let arr = Array.of_list !l in
      Array.sort Float.compare arr;
      arr)
    values
