(** Prefix-sharing parallel scenario sweeps — the bulk evaluation engine
    behind the paper's sorted-curve figures.

    The paper's evaluation replays thousands of failure scenarios (all one-
    and two-link failures plus sampled three/four-link ones). Evaluating
    each scenario independently rebuilds the R3 reconfiguration state from
    the pristine plan and re-solves the optimal-MCF normalizer every time.
    This engine instead:

    - organizes the canonical scenarios ({!Scenario.t}) into a prefix tree
      over sorted physical-link combinations and walks it depth-first,
      advancing R3 states with the copy-on-write {!R3_core.Reconfig.fail}
      — Theorem 3 (order-independent rescaling) guarantees the state at a
      shared prefix is exactly the state every descendant scenario needs,
      and stepped states are bit-identical to per-scenario rebuilds;
    - fans out dynamically over the persistent work-stealing pool
      ({!R3_util.Pool}): every tree node becomes a task that submits its
      children as subtasks and awaits them in child order, so skewed
      prefix trees balance across domains and assembly reproduces the
      serial DFS preorder — results never depend on scheduling;
    - memoizes optimal-MCF solves in an {!Mcf_cache.t} (optionally disk-
      backed under [.bench-cache/]), reading it concurrently during the
      sweep and updating it once afterwards;
    - streams per-algorithm aggregates (sorted curves, undefined-ratio
      counts, worst-case witnesses) without retaining per-scenario states.

    Output is bit-identical to the naive serial path (per-scenario
    {!Eval.evaluate}) for any domain count. *)

type metric = [ `Bottleneck | `Ratio ]

type summary = {
  algorithms : Eval.algorithm array;
  metric : metric;
  scenario_count : int;  (** distinct scenarios evaluated *)
  curves : float array array;
      (** per algorithm: per-scenario values sorted ascending, undefined
          ratios dropped (see [undefined]) — the shape the paper's sorted
          figures plot *)
  undefined : int array;
      (** per algorithm: values dropped because the ratio was undefined
          (optimum 0) or non-finite *)
  worst : (Scenario.t * float) option array;
      (** per algorithm: a scenario attaining the worst (largest) value —
          the earliest one in tree order on ties *)
  mcf_hits : int;  (** optimal-MCF lookups served by the cache *)
  mcf_misses : int;  (** optimal-MCF solves performed by this run *)
}

(** [run env ~algorithms scenarios] sweeps the deduplicated canonical
    scenario set. [metric] defaults to [`Ratio] (which is what solves the
    MCF normalizer; [`Bottleneck] never does). [cache] memoizes those
    solves across runs. [domains = 1] forces the serial walk; any larger
    value (default: the pool size) fans out. [fanout] selects the
    parallel arm: [`Tasks] (default) submits one pool task per tree
    node; [`Forkjoin] is the retired per-call spawn/join fan-out over
    depth-1 subtrees, kept as the bench baseline. All paths are
    bit-identical. Duplicate scenarios are evaluated once. *)
val run :
  ?cache:Mcf_cache.t ->
  ?metric:metric ->
  ?domains:int ->
  ?fanout:[ `Tasks | `Forkjoin ] ->
  Eval.env ->
  algorithms:Eval.algorithm list ->
  Scenario.t list ->
  summary

(** The sorted curves alone — the drop-in bulk replacement for the
    deprecated [Eval.sorted_curves]. *)
val curves :
  ?cache:Mcf_cache.t ->
  ?metric:metric ->
  ?domains:int ->
  Eval.env ->
  algorithms:Eval.algorithm list ->
  Scenario.t list ->
  float array array
