(** Event-driven online reconfiguration runtime.

    The paper's online phase (§3.2, §4) is a distributed protocol: when a
    link fails or recovers, the detecting router floods a notification and
    every router {e locally} rescales its copy of the protection routing —
    Theorem 3 proves the rescaling is order-independent, so routers need no
    coordination. The batch entry points ({!R3_core.Reconfig.fail}) exercise
    only the synchronous limit of that protocol. This engine simulates the
    asynchronous reality:

    - it consumes a timestamped stream of physical link failure/recovery
      {!event}s (write your own or use the seeded {!generate});
    - per-router notifications travel through a pluggable {!Channel}: the
      ideal channel uses the flooding latencies of {!R3_mplsff.Notify},
      the fault-injected one adds jitter (reordering), duplication, and
      drop-with-retry/backoff;
    - each router maintains a per-link event-version vector and its own
      believed failure set; an accepted notification advances the router's
      routing view by incremental {!R3_core.Reconfig.fail}/[recover] deltas
      on the copy-on-write substrate (views of equal believed sets share
      one memoized state, so the whole run costs O(distinct sets) folds);
    - router views are always the {e canonical} batch state of the believed
      set, so at quiescence every router must be bit-identical to
      [Reconfig.fail root final_scenario] — the order-independence theorem
      as an executable property, checked on every {!run};
    - optionally it maintains per-router MPLS-ff FIBs through
      {!R3_mplsff.Fib.update_router} in notification-arrival order and
      checks the result against a full rebuild;
    - the data-plane state (failures activated at their head router) is
      tracked between deliveries: transient MLU-above-bound windows and the
      convergence latency of every event are recorded in {!stats} and the
      [r3.online.*] metrics. *)

type event_kind = Fail | Recover

type event = {
  at_ms : float;  (** absolute event time *)
  link : R3_net.Graph.link;
      (** physical link, by canonical representative (lower id of the
          bidirectional pair); both directions fail/recover together *)
  kind : event_kind;
}

(** Deterministic seeded failure/recovery schedule: exponential gaps with
    the given mean, never more than [max_concurrent] links down at once
    (default 2), never disconnecting the surviving graph (so notification
    flooding always reaches every router), recovering a downed link with
    probability [recover_bias] (default 0.6) when both moves are legal.
    Equal seeds give equal schedules. *)
val generate :
  R3_net.Graph.t ->
  seed:int ->
  events:int ->
  ?max_concurrent:int ->
  ?mean_gap_ms:float ->
  ?recover_bias:float ->
  unit ->
  event list

module Channel : sig
  (** Fault-injection knobs of the notification channel. Every parameter
      is per notification copy; dropped copies are retransmitted after
      [backoff_ms] up to [max_retries] times, and the last attempt always
      arrives — the channel is reliable-eventually, which is what the
      terminal-state guarantee needs (a permanently partitioned router
      could never converge). *)
  type faults = {
    jitter_ms : float;  (** uniform extra latency in [0, jitter) — reorders *)
    dup_prob : float;  (** probability of an extra duplicate copy (geometric) *)
    drop_prob : float;  (** probability an attempt is lost *)
    max_retries : int;  (** retransmissions before the guaranteed attempt *)
    backoff_ms : float;  (** wait between retransmissions *)
  }

  (** 15 ms jitter, 20% duplication, 20% drop, 5 retries, 40 ms backoff. *)
  val default_faults : faults

  type t

  (** Flooding latencies from {!R3_mplsff.Notify.arrival_times} (layer-2
      detection plus per-hop processing), no faults. *)
  val ideal : ?notify:R3_mplsff.Notify.config -> unit -> t

  (** {!ideal} plus fault injection. *)
  val faulty : ?notify:R3_mplsff.Notify.config -> faults -> t

  val name : t -> string
end

type stats = {
  events : int;
  deliveries : int;  (** notification copies processed *)
  stale : int;  (** copies ignored as duplicates or superseded versions *)
  drops : int;  (** copies lost by the channel *)
  retries : int;  (** retransmissions that followed those losses *)
  distinct_states : int;  (** memoized canonical states materialized *)
  convergence_ms : float array;
      (** per event (schedule order): time from the event until every
          router had accepted a version >= that event's *)
  transient_mlu_peak : float;
      (** worst data-plane MLU observed between deliveries *)
  min_delivered : float;
      (** worst data-plane delivered fraction observed *)
  violation_windows : (float * float) list;
      (** maximal [(start_ms, end_ms)] windows where the data-plane MLU
          exceeded the bound, oldest first *)
}

type outcome = {
  terminal : R3_core.Reconfig.state;
      (** the canonical state of the schedule's final failed set *)
  order_independent : bool;
      (** every router's terminal view is bit-identical to batch
          [Reconfig.fail root final_scenario] — Theorem 3, executable *)
  fib_consistent : bool;
      (** per-router FIB updates in delivery order landed on the full
          rebuild ([true] when [fibs:false]) *)
  quiescent_mlu : float;  (** MLU of {!terminal} *)
  stats : stats;
}

(** Crash-safe snapshots of a paused run's protocol state (per-router
    version vectors and believed-failure views, data-plane beliefs,
    convergence accounting, transient-MLU bookkeeping). The delivery
    schedule itself is {e not} stored — it is a deterministic function of
    (root, events, channel, seed) and is re-expanded on resume; a digest
    of that tuple is stored instead, so resuming against a different
    plan, schedule, channel or seed is rejected. Persisted via
    {!R3_util.Codec} frames (magic ["R3ONLNCK"]): atomic writes,
    CRC/version-checked loads. *)
module Checkpoint : sig
  type t

  (** Deliveries already processed when the checkpoint was taken. *)
  val cursor : t -> int

  val save : string -> t -> unit
  val load : string -> (t, string) result
end

(** [run root events] drives the engine to quiescence. [channel] defaults
    to {!Channel.ideal}; [seed] (default 0) seeds the channel's fault
    streams; [mlu_bound] (default [infinity]) is the plan's congestion
    bound MLU* for transient-violation accounting; [fibs] (default
    [false]) also maintains per-router MPLS-ff FIBs. Deterministic in
    ([root], [events], [channel], [seed]). *)
val run :
  ?channel:Channel.t ->
  ?seed:int ->
  ?mlu_bound:float ->
  ?fibs:bool ->
  R3_core.Reconfig.state ->
  event list ->
  outcome

(** [run_to ?resume ?stop_after root events] is {!run} with pause/resume:
    with [stop_after:k] it processes at most [k] further notification
    deliveries and returns [`Paused checkpoint] if the schedule is not
    exhausted; with [resume:ck] it restores a checkpoint (rebuilding
    router views, FIBs and the data-plane state from the believed sets)
    and continues where the paused run stopped. A completed
    resumed run returns an {!outcome} whose terminal state — and every
    per-router view — is bit-identical to the uninterrupted run's
    ([stats.distinct_states] may legitimately differ: states that were
    only visited before the pause are not re-materialized). Raises
    [Invalid_argument] if [resume] was recorded for a different
    (root, events, channel, seed, mlu_bound, fibs) tuple. *)
val run_to :
  ?channel:Channel.t ->
  ?seed:int ->
  ?mlu_bound:float ->
  ?fibs:bool ->
  ?resume:Checkpoint.t ->
  ?stop_after:int ->
  R3_core.Reconfig.state ->
  event list ->
  [ `Done of outcome | `Paused of Checkpoint.t ]
