(* Prefix-sharing scenario-sweep engine.

   Scenarios are canonical sorted sets of physical links, so the whole
   scenario population forms a prefix tree; Theorem 3 (order-independence
   of R3's online rescaling) means the reconfigured state after failing
   {e1..ej} is the same whichever order the links fail in, so the state at
   a tree node serves every scenario below it. The engine walks the tree
   depth-first, advancing the R3 algorithms' states with the copy-on-write
   [Reconfig.fail] over singleton scenario deltas (bit-identical to the
   naive per-scenario rebuild), evaluates per-scenario algorithms at the
   leaves, and fans out dynamically: every tree node becomes a task on
   the persistent work-stealing pool ([R3_util.Pool]), submitted to the
   running worker's own deque and stolen by idle ones, so skewed prefix
   trees keep every domain busy. Each node awaits its children in child
   order and concatenates, so assembly reproduces the serial DFS preorder
   exactly and output never depends on scheduling. *)

module G = R3_net.Graph
module Reconfig = R3_core.Reconfig

type metric = [ `Bottleneck | `Ratio ]

module Obs = struct
  module M = R3_util.Metrics

  let runs = M.counter "sweep.runs"
  let scenarios = M.counter "sweep.scenarios"
  let tree_nodes = M.counter "sweep.tree_nodes"
  let cow_steps = M.counter "sweep.cow_steps"

  (* Incremented in the executing domain, one per executor task: a tree
     node on the pool path, a depth-1 subtree on the serial and fork/join
     paths. The per-shard breakdown is the per-domain task count. *)
  let tasks = M.counter "sweep.tasks"
  let cache_hits = M.counter "sweep.cache.hits"
  let cache_misses = M.counter "sweep.cache.misses"
  let run_seconds = M.histogram "sweep.run.seconds"
end

type summary = {
  algorithms : Eval.algorithm array;
  metric : metric;
  scenario_count : int;
  curves : float array array;
  undefined : int array;
  worst : (Scenario.t * float) option array;
  mcf_hits : int;
  mcf_misses : int;
}

(* ---- scenario prefix tree ---- *)

type tree = {
  link : int;  (* physical link failed on entering this node *)
  mutable terminal : Scenario.t option;
  mutable children : tree list;  (* built newest-first, reversed once *)
}

(* Scenarios arrive sorted lexicographically, so each insertion extends
   either the newest child chain or opens a new sibling — O(total size). *)
let build_forest scenarios =
  let scenarios = List.sort_uniq Scenario.compare scenarios in
  let root = { link = -1; terminal = None; children = [] } in
  let rec insert node phys sc =
    match phys with
    | [] -> node.terminal <- Some sc
    | e :: rest ->
      let child =
        match node.children with
        | c :: _ when c.link = e -> c
        | _ ->
          let c = { link = e; terminal = None; children = [] } in
          node.children <- c :: node.children;
          c
      in
      insert child rest sc
  in
  List.iter (fun sc -> insert root (Scenario.physical sc) sc) scenarios;
  let rec finalize n =
    n.children <- List.rev n.children;
    List.iter finalize n.children
  in
  finalize root;
  root

(* ---- per-scenario evaluation ---- *)

type cell = {
  scenario : Scenario.t;
  values : float array;  (* bottleneck intensity per algorithm *)
  opt : float;  (* nan under `Bottleneck *)
  fresh_opt : bool;  (* true when this run solved the MCF (cache miss) *)
}

let eval_cell env algs metric cache sc states =
  let values =
    Array.mapi
      (fun i alg ->
        match states.(i) with
        | Some st -> Reconfig.mlu st
        | None -> Eval.scenario_bottleneck env alg sc)
      algs
  in
  let opt, fresh_opt =
    match metric with
    | `Bottleneck -> (nan, false)
    | `Ratio -> begin
      match Option.bind cache (fun c -> Mcf_cache.find c sc) with
      | Some v -> (v, false)
      | None -> (Eval.optimal env sc, true)
    end
  in
  { scenario = sc; values; opt; fresh_opt }

(* Advance the R3 algorithms' states across one tree edge: COW-fail the
   node's singleton delta into every stateful slot ([None] slots are
   per-scenario algorithms). *)
let advance_states env node states =
  R3_util.Metrics.incr Obs.tree_nodes;
  let delta = Scenario.of_links env.Eval.graph [ node.link ] in
  let cow = ref 0 in
  let states =
    Array.map
      (Option.map (fun st ->
           incr cow;
           Reconfig.fail st delta))
      states
  in
  R3_util.Metrics.add Obs.cow_steps !cow;
  states

(* Serial DFS of one subtree; the cache is read-only here — executors
   run concurrently. Used when one domain does everything, and by the
   fork/join reference arm the bench measures the pool against. *)
let eval_subtree env algs metric cache root_states subtree =
  R3_util.Metrics.incr Obs.tasks;
  let out = ref [] in
  let rec walk node states =
    let states = advance_states env node states in
    (match node.terminal with
    | Some sc -> out := eval_cell env algs metric cache sc states :: !out
    | None -> ());
    List.iter (fun c -> walk c states) node.children
  in
  walk subtree root_states;
  Array.of_list (List.rev !out)

(* Dynamic fan-out: one pool task per tree node. Submissions from inside
   a task land on the submitting worker's own deque (and are stolen from
   the other end by idle workers), so a skewed forest balances itself.
   Awaiting the children in child order and consing [here] in front
   reproduces the serial DFS preorder exactly — bit-identity with the
   serial path for any pool size. COW states are safe to fold from a
   shared parent concurrently (DESIGN.md §14: sealing is an atomic
   generation bump). *)
let rec eval_node env algs metric cache states node =
  R3_util.Metrics.incr Obs.tasks;
  let states = advance_states env node states in
  let here =
    match node.terminal with
    | Some sc -> [| eval_cell env algs metric cache sc states |]
    | None -> [||]
  in
  let futs =
    List.map
      (fun c -> R3_util.Pool.submit (fun () -> eval_node env algs metric cache states c))
      node.children
  in
  let below = List.map R3_util.Pool.await futs in
  Array.concat (here :: below)

(* ---- the sweep ---- *)

let run ?cache ?(metric = `Ratio) ?domains
    ?(fanout : [ `Tasks | `Forkjoin ] = `Tasks) env ~algorithms scenarios =
  R3_util.Metrics.incr Obs.runs;
  R3_util.Metrics.time Obs.run_seconds @@ fun () ->
  R3_util.Trace.with_span "sweep.run" @@ fun () ->
  let algs = Array.of_list algorithms in
  let forest = build_forest scenarios in
  let root_states = Array.map (fun alg -> Eval.r3_root env alg) algs in
  let d =
    match domains with
    | Some d -> Int.max 1 d
    | None -> R3_util.Parallel.domains ()
  in
  let subtree_cells =
    match fanout with
    | _ when d = 1 ->
      Array.map
        (eval_subtree env algs metric cache root_states)
        (Array.of_list forest.children)
    | `Forkjoin ->
      R3_util.Pool.Forkjoin.map ~domains:d
        (eval_subtree env algs metric cache root_states)
        (Array.of_list forest.children)
    | `Tasks ->
      let futs =
        List.map
          (fun c ->
            R3_util.Pool.submit (fun () ->
                eval_node env algs metric cache root_states c))
          forest.children
      in
      Array.of_list (List.map R3_util.Pool.await futs)
  in
  let empty_cells =
    match forest.terminal with
    | Some sc -> [| eval_cell env algs metric cache sc root_states |]
    | None -> [||]
  in
  let cells = Array.concat (empty_cells :: Array.to_list subtree_cells) in
  (* Single-domain cache update after the parallel section. *)
  let hits = ref 0 and misses = ref 0 in
  (match metric with
  | `Ratio ->
    Array.iter
      (fun c ->
        if c.fresh_opt then begin
          incr misses;
          match cache with
          | Some cch -> Mcf_cache.add cch c.scenario c.opt
          | None -> ()
        end
        else incr hits)
      cells;
    Option.iter Mcf_cache.flush cache
  | `Bottleneck -> ());
  R3_util.Metrics.add Obs.scenarios (Array.length cells);
  R3_util.Metrics.add Obs.cache_hits !hits;
  R3_util.Metrics.add Obs.cache_misses !misses;
  R3_util.Trace.add_attr "scenarios" (R3_util.Trace.Int (Array.length cells));
  R3_util.Trace.add_attr "mcf_hits" (R3_util.Trace.Int !hits);
  R3_util.Trace.add_attr "mcf_misses" (R3_util.Trace.Int !misses);
  let n_alg = Array.length algs in
  let curves = Array.make n_alg [||] in
  let undefined = Array.make n_alg 0 in
  let worst = Array.make n_alg None in
  for i = 0 to n_alg - 1 do
    let vals = ref [] in
    let undef = ref 0 in
    let w = ref None in
    Array.iter
      (fun c ->
        let v =
          match metric with
          | `Bottleneck -> c.values.(i)
          | `Ratio -> if c.opt > 0.0 then c.values.(i) /. c.opt else nan
        in
        if Float.is_nan v then incr undef
        else begin
          vals := v :: !vals;
          match !w with
          | Some (_, best) when best >= v -> ()
          | _ -> w := Some (c.scenario, v)
        end)
      cells;
    let arr = Array.of_list !vals in
    Array.sort Float.compare arr;
    curves.(i) <- arr;
    undefined.(i) <- !undef;
    worst.(i) <- !w
  done;
  {
    algorithms = algs;
    metric;
    scenario_count = Array.length cells;
    curves;
    undefined;
    worst;
    mcf_hits = !hits;
    mcf_misses = !misses;
  }

let curves ?cache ?metric ?domains env ~algorithms scenarios =
  (run ?cache ?metric ?domains env ~algorithms scenarios).curves
