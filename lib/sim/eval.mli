(** The evaluation engine behind Figures 3–10: run every protection
    algorithm on a failure scenario and report the bottleneck traffic
    intensity (worst live-link utilization), the performance ratio against
    optimal flow-based routing, and the delivered fraction.

    Single scenarios go through {!evaluate}; bulk sweeps (thousands of
    scenarios) go through [Sweep], which shares reconfiguration prefixes
    and memoizes the MCF normalizer. The raw-link-list entry points at the
    bottom are deprecated compatibility wrappers. *)

type algorithm =
  | Ospf_cspf_detour  (** OSPF base + CSPF fast-reroute bypasses *)
  | Ospf_recon  (** OSPF reconvergence on the surviving topology *)
  | Fcp  (** failure-carrying packets *)
  | Path_splice  (** path splicing, k=10 slices *)
  | Ospf_r3  (** R3 protection over the OSPF base routing *)
  | Ospf_opt  (** per-scenario optimal link detour over the OSPF base *)
  | Mplsff_r3  (** R3 protection over the jointly-optimized base *)

val algorithm_name : algorithm -> string

val all_algorithms : algorithm list

(** Precomputed inputs shared across scenarios. *)
type env = {
  graph : R3_net.Graph.t;
  weights : float array;  (** OSPF weights for the OSPF-based schemes *)
  pairs : (R3_net.Graph.node * R3_net.Graph.node) array;
  demands : float array;
  ospf_base : R3_net.Routing.t;
  ospf_r3 : R3_core.Offline.plan option;  (** plan with the OSPF base *)
  mplsff_r3 : R3_core.Offline.plan option;  (** plan with optimized base *)
  mcf_epsilon : float;  (** accuracy of the optimal-routing normalizer *)
}

(** Build an environment: computes the OSPF routing; R3 plans are supplied
    by the caller (they may be shared across intervals). *)
val make_env :
  R3_net.Graph.t ->
  weights:float array ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  ?ospf_r3:R3_core.Offline.plan ->
  ?mplsff_r3:R3_core.Offline.plan ->
  ?mcf_epsilon:float ->
  unit ->
  env

(** An {!Mcf_cache.t} keyed for this environment (pass [~dir:".bench-cache"]
    to persist across runs). *)
val mcf_cache : ?dir:string -> env -> Mcf_cache.t

(** Everything {!evaluate} knows about one (algorithm, scenario) pair. *)
type result = {
  bottleneck : float;  (** worst live-link utilization *)
  optimal : float;  (** optimal flow-based bottleneck; [nan] if skipped *)
  ratio : float option;  (** [bottleneck /. optimal]; [None] when the
                             optimum is 0 (the ratio is undefined) or when
                             the optimum was skipped *)
  delivered : float;  (** fraction of total demand delivered, in [0,1] *)
}

(** [evaluate env alg scenario] — the single-scenario evaluation API.
    [cache] memoizes the expensive optimal-MCF solve (sequential use only);
    [with_optimal:false] skips it entirely ([optimal] is [nan], [ratio] is
    [None]). R3 rows require the corresponding plan in [env]. *)
val evaluate :
  ?cache:Mcf_cache.t -> ?with_optimal:bool -> env -> algorithm -> Scenario.t -> result

(** Approximately optimal bottleneck intensity (flow-based optimal routing
    on the surviving topology), optionally memoized. *)
val optimal : ?cache:Mcf_cache.t -> env -> Scenario.t -> float

(** {2 Building blocks for the bulk sweep engine}

    Most callers want {!evaluate}; these expose the pieces [Sweep] composes
    differently. *)

(** Bottleneck intensity only — {!evaluate} without the optimal solve or
    delivery accounting. *)
val scenario_bottleneck : env -> algorithm -> Scenario.t -> float

(** The pristine {!R3_core.Reconfig} root for an R3 algorithm, with the
    env's demands aligned onto the plan's commodities — the state the sweep
    engine steps through the scenario tree. [None] for the per-scenario
    algorithms; raises [Invalid_argument] if the required plan is missing. *)
val r3_root : env -> algorithm -> R3_core.Reconfig.state option

(** {2 Deprecated raw-list interface}

    The [bottleneck]/[optimal_bottleneck]/[performance_ratio] wrappers
    deprecated in PR 2 are gone — use {!evaluate}/{!optimal}. Only the
    serial curve builder remains (the sweep bench's naive reference). *)

(** Evaluate several algorithms over many scenarios; result.(i) lists, for
    algorithm i, the per-scenario values sorted ascending. Undefined ratios
    are silently dropped — [Sweep] reports their count. *)
val sorted_curves :
  env ->
  algorithms:algorithm list ->
  scenarios:R3_net.Graph.link list list ->
  ?metric:[ `Ratio | `Bottleneck ] ->
  unit ->
  float array array
[@@ocaml.deprecated "use Sweep.curves"]
