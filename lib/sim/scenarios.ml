module G = R3_net.Graph

let physical_links g =
  let m = G.num_links g in
  let keep = ref [] in
  for e = m - 1 downto 0 do
    match G.reverse_link g e with
    | Some r -> if e < r then keep := e :: !keep
    | None -> keep := e :: !keep
  done;
  Array.of_list !keep

let expand g links =
  List.concat_map
    (fun e ->
      match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])
    links

let enumerate g ~k =
  let phys = physical_links g in
  let n = Array.length phys in
  let acc = ref [] in
  let rec choose start chosen remaining =
    if remaining = 0 then
      acc := Scenario.of_links g (List.rev chosen) :: !acc
    else
      for i = start to n - remaining do
        choose (i + 1) (phys.(i) :: chosen) (remaining - 1)
      done
  in
  choose 0 [] k;
  List.rev !acc

(* C(n,k) via the multiplicative formula: O(k) float operations. The old
   unmemoized Pascal recursion performed O(C(n,k)) additions — minutes on
   the larger topologies (C(230,5) ~ 5e9 calls on `generated`). Saturates
   at infinity for huge spaces, which the threshold test below handles. *)
let binom n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = Int.min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let shortfall_counter = R3_util.Metrics.counter "sim.scenarios.sample_shortfall"

let sample g ~k ~count ~seed =
  let phys = physical_links g in
  let n = Array.length phys in
  let total = binom n k in
  if total <= float_of_int count *. 1.5 && total <= 50_000.0 then begin
    (* Space is small: enumerate and subsample deterministically. *)
    let all = Array.of_list (enumerate g ~k) in
    let rng = R3_util.Prng.create seed in
    if Array.length all <= count then Array.to_list all
    else Array.to_list (R3_util.Prng.sample rng count all)
  end
  else begin
    let rng = R3_util.Prng.create seed in
    let seen = Hashtbl.create count in
    let out = ref [] in
    let guard = ref 0 in
    while Hashtbl.length seen < count && !guard < count * 100 do
      incr guard;
      let picks = R3_util.Prng.sample rng k phys in
      let key = List.sort Int.compare (Array.to_list picks) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := Scenario.of_links g key :: !out
      end
    done;
    (* The guard bounds rejection sampling on pathological spaces (total
       barely above the enumeration threshold). A shortfall is part of the
       return contract, but never a silent one: it is recorded in the
       metrics registry for the caller's --metrics export. *)
    let found = Hashtbl.length seen in
    if found < count then
      R3_util.Metrics.add shortfall_counter (count - found);
    List.rev !out
  end

let of_groups g groups = List.map (Scenario.of_links g) groups

let connected g scenarios =
  List.filter
    (fun s ->
      G.strongly_connected g ~failed:(G.fail_links g (Scenario.links s)) ())
    scenarios

(* ---- legacy raw-list entry points (deprecated in the mli) ---- *)

let all_k g ~k = List.map Scenario.links (enumerate g ~k)

let sample_k g ~k ~count ~seed =
  List.map Scenario.links (sample g ~k ~count ~seed)

let group_events groups = groups

let connected_only g scenarios =
  List.filter
    (fun s -> G.strongly_connected g ~failed:(G.fail_links g s) ())
    scenarios
