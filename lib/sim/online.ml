module G = R3_net.Graph
module Reconfig = R3_core.Reconfig
module Notify = R3_mplsff.Notify
module Fib = R3_mplsff.Fib
module Prng = R3_util.Prng
module Metrics = R3_util.Metrics
module Trace = R3_util.Trace

type event_kind = Fail | Recover

type event = { at_ms : float; link : G.link; kind : event_kind }

let phys_rep g e =
  match G.reverse_link g e with Some r when r < e -> r | _ -> e

(* ---- seeded schedule generation ---- *)

let generate g ~seed ~events ?(max_concurrent = 2) ?(mean_gap_ms = 250.0)
    ?(recover_bias = 0.6) () =
  if events < 0 then invalid_arg "Online.generate: negative event count";
  if max_concurrent < 1 then invalid_arg "Online.generate: max_concurrent < 1";
  let phys = Scenarios.physical_links g in
  if Array.length phys = 0 then []
  else begin
    let rng = Prng.create seed in
    let down = Hashtbl.create 8 in
    let down_reps () =
      Hashtbl.fold (fun e () acc -> e :: acc) down [] |> List.sort compare
    in
    let failed_with extra =
      let sc = Scenario.of_physical g (extra @ down_reps ()) in
      G.fail_links g (Scenario.links sc)
    in
    (* A failure pick must keep the survivors strongly connected, both so
       the congestion-free guarantee is in scope and so notification
       flooding reaches every router. Rejection-sample a few times; links
       whose loss would partition (e.g. bridges) simply stay up. *)
    let try_fail () =
      let rec go k =
        if k = 0 then None
        else begin
          let e = Prng.choose rng phys in
          if Hashtbl.mem down e then go (k - 1)
          else if G.strongly_connected g ~failed:(failed_with [ e ]) () then
            Some e
          else go (k - 1)
        end
      in
      go 32
    in
    let out = ref [] in
    let t = ref 0.0 in
    for _ = 1 to events do
      t := !t +. Prng.exponential rng ~mean:mean_gap_ms;
      let n_down = Hashtbl.length down in
      let recover () =
        let reps = Array.of_list (down_reps ()) in
        let e = Prng.choose rng reps in
        Hashtbl.remove down e;
        out := { at_ms = !t; link = e; kind = Recover } :: !out
      in
      let want_recover =
        n_down > 0 && (n_down >= max_concurrent || Prng.bool rng recover_bias)
      in
      if want_recover then recover ()
      else begin
        match try_fail () with
        | Some e ->
          Hashtbl.add down e ();
          out := { at_ms = !t; link = e; kind = Fail } :: !out
        | None -> if n_down > 0 then recover ()
      end
    done;
    List.rev !out
  end

(* ---- channel model ---- *)

module Channel = struct
  type faults = {
    jitter_ms : float;
    dup_prob : float;
    drop_prob : float;
    max_retries : int;
    backoff_ms : float;
  }

  let default_faults =
    {
      jitter_ms = 15.0;
      dup_prob = 0.2;
      drop_prob = 0.2;
      max_retries = 5;
      backoff_ms = 40.0;
    }

  type t = {
    notify : Notify.config;
    faults : faults option;
    cname : string;
  }

  let ideal ?(notify = Notify.default_config) () =
    { notify; faults = None; cname = "ideal" }

  let faulty ?(notify = Notify.default_config) faults =
    { notify; faults = Some faults; cname = "faulty" }

  let name c = c.cname
end

type stats = {
  events : int;
  deliveries : int;
  stale : int;
  drops : int;
  retries : int;
  distinct_states : int;
  convergence_ms : float array;
  transient_mlu_peak : float;
  min_delivered : float;
  violation_windows : (float * float) list;
}

type outcome = {
  terminal : Reconfig.state;
  order_independent : bool;
  fib_consistent : bool;
  quiescent_mlu : float;
  stats : stats;
}

(* One notification copy en route to one router. *)
type delivery = { at : float; seq : int; ev : int; router : G.node }

let c_events = Metrics.counter "r3.online.events"
let c_deliveries = Metrics.counter "r3.online.deliveries"
let c_stale = Metrics.counter "r3.online.stale"
let c_drops = Metrics.counter "r3.online.drops"
let c_retries = Metrics.counter "r3.online.retries"
let c_states = Metrics.counter "r3.online.states"

let h_convergence =
  Metrics.histogram
    ~bounds:[| 10.0; 30.0; 60.0; 100.0; 200.0; 400.0; 800.0; 1600.0 |]
    "r3.online.convergence_ms"

let h_violation =
  Metrics.histogram
    ~bounds:[| 1.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]
    "r3.online.violation_ms"

let g_quiescent = Metrics.gauge "r3.online.quiescent_mlu"

(* Deterministic per-(event, router) fault stream, independent of how many
   draws other streams made. *)
let copy_rng ~seed ~ev ~router =
  Prng.create ((seed * 0x2545F49) lxor ((ev + 1) * 1_000_003) lxor ((router + 1) * 7919))

let run ?(channel = Channel.ideal ()) ?(seed = 0) ?(mlu_bound = infinity)
    ?(fibs = false) root events =
  Trace.with_span "online.run" @@ fun () ->
  let g = root.Reconfig.graph in
  let n = G.num_nodes g in
  let m = G.num_links g in
  let events =
    Array.of_list (List.stable_sort (fun a b -> Float.compare a.at_ms b.at_ms) events)
  in
  let ne = Array.length events in
  Array.iteri
    (fun i ev ->
      if ev.link < 0 || ev.link >= m then invalid_arg "Online.run: bad link";
      if ev.link <> phys_rep g ev.link then
        invalid_arg "Online.run: event links must be physical representatives";
      ignore i)
    events;
  Metrics.add c_events ne;
  (* True failed set after each event, for notification flooding. *)
  let scenario_after = Array.make ne (Scenario.of_physical g []) in
  let arrival_after = Array.make ne [||] in
  begin
    let down = Hashtbl.create 8 in
    Array.iteri
      (fun i ev ->
        (match ev.kind with
        | Fail -> Hashtbl.replace down ev.link ()
        | Recover -> Hashtbl.remove down ev.link);
        let reps =
          Hashtbl.fold (fun e () acc -> e :: acc) down [] |> List.sort compare
        in
        let sc = Scenario.of_physical g reps in
        scenario_after.(i) <- sc;
        arrival_after.(i) <-
          Notify.arrival_times ~config:channel.Channel.notify g
            ~failed:(G.fail_links g (Scenario.links sc))
            ~link:ev.link)
      events
  end;
  (* Expand every (event, router) notification into its delivery copies.
     Faults are precomputable: drops, retransmissions and duplicates do not
     depend on receiver state, so the whole delivery schedule is known
     upfront and a sort replaces a priority queue. *)
  let stat_drops = ref 0 and stat_retries = ref 0 in
  let deliveries = ref [] in
  let n_copies = ref 0 in
  let push at ev router =
    deliveries := { at; seq = !n_copies; ev; router } :: !deliveries;
    incr n_copies
  in
  for i = 0 to ne - 1 do
    let ev = events.(i) in
    for v = 0 to n - 1 do
      let flood = arrival_after.(i).(v) in
      (* [infinity] = router partitioned from the detector; with the
         connectivity-preserving generator this cannot happen, but a
         hand-built schedule may do it — the router then simply never
         hears about this event. *)
      if flood < infinity then begin
        let base = ev.at_ms +. flood in
        match channel.Channel.faults with
        | None -> push base i v
        | Some f ->
          let rng = copy_rng ~seed ~ev:i ~router:v in
          let lost = ref 0 in
          while !lost < f.Channel.max_retries && Prng.bool rng f.Channel.drop_prob do
            incr lost
          done;
          stat_drops := !stat_drops + !lost;
          stat_retries := !stat_retries + !lost;
          let attempt_base =
            base +. (float_of_int !lost *. f.Channel.backoff_ms)
          in
          let jitter () =
            if f.Channel.jitter_ms > 0.0 then Prng.float rng f.Channel.jitter_ms
            else 0.0
          in
          push (attempt_base +. jitter ()) i v;
          let dups = ref 0 in
          while !dups < 3 && Prng.bool rng f.Channel.dup_prob do
            push (attempt_base +. jitter ()) i v;
            incr dups
          done
      end
    done
  done;
  let deliveries = Array.of_list !deliveries in
  Array.sort
    (fun a b ->
      match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c)
    deliveries;
  (* Memoized canonical states: every believed failed set maps to the
     batch application of that set in canonical scenario order, built by
     prefix recursion — so a router view's float bits depend only on its
     believed set, never on delivery order (Theorem 3, executably). *)
  let memo = Scenario.Tbl.create 64 in
  Scenario.Tbl.add memo (Scenario.of_physical g []) root;
  let rec canonical sc =
    match Scenario.Tbl.find_opt memo sc with
    | Some st -> st
    | None ->
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: tl -> split_last (x :: acc) tl
      in
      let prefix, last = split_last [] (Scenario.physical sc) in
      let parent = canonical (Scenario.of_physical g prefix) in
      let st = Reconfig.fail parent (Scenario.of_physical g [ last ]) in
      Scenario.Tbl.add memo sc st;
      st
  in
  (* Per-router protocol state. *)
  let seen = Array.make_matrix n m 0 in
  let belief = Array.make_matrix n m false in
  let view = Array.make n root in
  let fib = ref (if fibs then Some (Fib.of_protection g root.Reconfig.protection) else None) in
  (* Convergence accounting: event i is converged once every router has
     accepted some version >= i+1 for its link. *)
  let events_by_link = Array.make m [] in
  for i = ne - 1 downto 0 do
    events_by_link.(events.(i).link) <- i :: events_by_link.(events.(i).link)
  done;
  let pending = Array.make ne n in
  let convergence = Array.make ne nan in
  (* Data-plane state: a physical event takes effect on traffic when the
     canonical direction's head router accepts it. *)
  let dp_belief = Array.make m false in
  let dp_state = ref root in
  let peak = ref (Reconfig.mlu root) in
  let min_delivered = ref (Reconfig.delivered_fraction root) in
  let violation_start = ref (if !peak > mlu_bound then Some 0.0 else None) in
  let violations = ref [] in
  let observe_dp now =
    let u = Reconfig.mlu !dp_state in
    if u > !peak then peak := u;
    let d = Reconfig.delivered_fraction !dp_state in
    if d < !min_delivered then min_delivered := d;
    match (!violation_start, u > mlu_bound) with
    | None, true -> violation_start := Some now
    | Some t0, false ->
      violations := (t0, now) :: !violations;
      Metrics.observe h_violation (now -. t0);
      violation_start := None
    | None, false | Some _, true -> ()
  in
  let stat_stale = ref 0 in
  let last_at = ref 0.0 in
  Array.iter
    (fun d ->
      Metrics.incr c_deliveries;
      last_at := d.at;
      let ev = events.(d.ev) in
      let ver = d.ev + 1 in
      let v = d.router in
      let rep = ev.link in
      let prev = seen.(v).(rep) in
      if ver <= prev then incr stat_stale
      else begin
        seen.(v).(rep) <- ver;
        belief.(v).(rep) <- (ev.kind = Fail);
        (* Credit every event on this link whose version the acceptance
           covers (a newer notification subsumes the older ones a lossy
           channel may never deliver to this router). *)
        List.iter
          (fun j ->
            let vj = j + 1 in
            if vj > prev && vj <= ver && pending.(j) > 0 then begin
              pending.(j) <- pending.(j) - 1;
              if pending.(j) = 0 then begin
                convergence.(j) <- d.at -. events.(j).at_ms;
                Metrics.observe h_convergence convergence.(j)
              end
            end)
          events_by_link.(rep);
        let reps = ref [] in
        for e = m - 1 downto 0 do
          if belief.(v).(e) then reps := e :: !reps
        done;
        view.(v) <- canonical (Scenario.of_physical g !reps);
        (match !fib with
        | Some f ->
          fib := Some (Fib.update_router f ~router:v view.(v).Reconfig.protection)
        | None -> ());
        if v = G.src g rep then begin
          dp_belief.(rep) <- (ev.kind = Fail);
          let dreps = ref [] in
          for e = m - 1 downto 0 do
            if dp_belief.(e) then dreps := e :: !dreps
          done;
          dp_state := canonical (Scenario.of_physical g !dreps);
          observe_dp d.at
        end
      end)
    deliveries;
  (match !violation_start with
  | Some t0 when !last_at > t0 ->
    violations := (t0, !last_at) :: !violations;
    Metrics.observe h_violation (!last_at -. t0)
  | _ -> ());
  Metrics.add c_stale !stat_stale;
  Metrics.add c_drops !stat_drops;
  Metrics.add c_retries !stat_retries;
  (* Quiescence: the terminal scenario is the true final failed set; the
     reference is an independent one-shot batch application from the root,
     so the memoized prefix recursion is itself under test. *)
  let final_sc = if ne = 0 then Scenario.of_physical g [] else scenario_after.(ne - 1) in
  let terminal = canonical final_sc in
  let batch = Reconfig.fail root final_sc in
  let order_independent =
    Reconfig.states_bit_identical terminal batch
    && Array.for_all (fun v -> Reconfig.states_bit_identical v batch) view
  in
  let fib_consistent =
    match !fib with
    | None -> true
    | Some f -> Fib.equal f (Fib.of_protection g batch.Reconfig.protection)
  in
  let quiescent_mlu = Reconfig.mlu terminal in
  Metrics.set_gauge g_quiescent quiescent_mlu;
  let distinct_states = Scenario.Tbl.length memo in
  Metrics.add c_states distinct_states;
  Trace.add_attr "events" (Trace.Int ne);
  Trace.add_attr "deliveries" (Trace.Int (Array.length deliveries));
  Trace.add_attr "states" (Trace.Int distinct_states);
  {
    terminal;
    order_independent;
    fib_consistent;
    quiescent_mlu;
    stats =
      {
        events = ne;
        deliveries = Array.length deliveries;
        stale = !stat_stale;
        drops = !stat_drops;
        retries = !stat_retries;
        distinct_states;
        convergence_ms = convergence;
        transient_mlu_peak = !peak;
        min_delivered = !min_delivered;
        violation_windows = List.rev !violations;
      };
  }
