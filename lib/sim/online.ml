module G = R3_net.Graph
module Reconfig = R3_core.Reconfig
module Notify = R3_mplsff.Notify
module Fib = R3_mplsff.Fib
module Prng = R3_util.Prng
module Metrics = R3_util.Metrics
module Trace = R3_util.Trace

type event_kind = Fail | Recover

type event = { at_ms : float; link : G.link; kind : event_kind }

let phys_rep g e =
  match G.reverse_link g e with Some r when r < e -> r | _ -> e

(* ---- seeded schedule generation ---- *)

let generate g ~seed ~events ?(max_concurrent = 2) ?(mean_gap_ms = 250.0)
    ?(recover_bias = 0.6) () =
  if events < 0 then invalid_arg "Online.generate: negative event count";
  if max_concurrent < 1 then invalid_arg "Online.generate: max_concurrent < 1";
  let phys = Scenarios.physical_links g in
  if Array.length phys = 0 then []
  else begin
    let rng = Prng.create seed in
    let down = Hashtbl.create 8 in
    let down_reps () =
      Hashtbl.fold (fun e () acc -> e :: acc) down [] |> List.sort compare
    in
    let failed_with extra =
      let sc = Scenario.of_physical g (extra @ down_reps ()) in
      G.fail_links g (Scenario.links sc)
    in
    (* A failure pick must keep the survivors strongly connected, both so
       the congestion-free guarantee is in scope and so notification
       flooding reaches every router. Rejection-sample a few times; links
       whose loss would partition (e.g. bridges) simply stay up. *)
    let try_fail () =
      let rec go k =
        if k = 0 then None
        else begin
          let e = Prng.choose rng phys in
          if Hashtbl.mem down e then go (k - 1)
          else if G.strongly_connected g ~failed:(failed_with [ e ]) () then
            Some e
          else go (k - 1)
        end
      in
      go 32
    in
    let out = ref [] in
    let t = ref 0.0 in
    for _ = 1 to events do
      t := !t +. Prng.exponential rng ~mean:mean_gap_ms;
      let n_down = Hashtbl.length down in
      let recover () =
        let reps = Array.of_list (down_reps ()) in
        let e = Prng.choose rng reps in
        Hashtbl.remove down e;
        out := { at_ms = !t; link = e; kind = Recover } :: !out
      in
      let want_recover =
        n_down > 0 && (n_down >= max_concurrent || Prng.bool rng recover_bias)
      in
      if want_recover then recover ()
      else begin
        match try_fail () with
        | Some e ->
          Hashtbl.add down e ();
          out := { at_ms = !t; link = e; kind = Fail } :: !out
        | None -> if n_down > 0 then recover ()
      end
    done;
    List.rev !out
  end

(* ---- channel model ---- *)

module Channel = struct
  type faults = {
    jitter_ms : float;
    dup_prob : float;
    drop_prob : float;
    max_retries : int;
    backoff_ms : float;
  }

  let default_faults =
    {
      jitter_ms = 15.0;
      dup_prob = 0.2;
      drop_prob = 0.2;
      max_retries = 5;
      backoff_ms = 40.0;
    }

  type t = {
    notify : Notify.config;
    faults : faults option;
    cname : string;
  }

  let ideal ?(notify = Notify.default_config) () =
    { notify; faults = None; cname = "ideal" }

  let faulty ?(notify = Notify.default_config) faults =
    { notify; faults = Some faults; cname = "faulty" }

  let name c = c.cname
end

type stats = {
  events : int;
  deliveries : int;
  stale : int;
  drops : int;
  retries : int;
  distinct_states : int;
  convergence_ms : float array;
  transient_mlu_peak : float;
  min_delivered : float;
  violation_windows : (float * float) list;
}

type outcome = {
  terminal : Reconfig.state;
  order_independent : bool;
  fib_consistent : bool;
  quiescent_mlu : float;
  stats : stats;
}

(* One notification copy en route to one router. *)
type delivery = { at : float; seq : int; ev : int; router : G.node }

let c_events = Metrics.counter "r3.online.events"
let c_deliveries = Metrics.counter "r3.online.deliveries"
let c_stale = Metrics.counter "r3.online.stale"
let c_drops = Metrics.counter "r3.online.drops"
let c_retries = Metrics.counter "r3.online.retries"
let c_states = Metrics.counter "r3.online.states"

let h_convergence =
  Metrics.histogram
    ~bounds:[| 10.0; 30.0; 60.0; 100.0; 200.0; 400.0; 800.0; 1600.0 |]
    "r3.online.convergence_ms"

let h_violation =
  Metrics.histogram
    ~bounds:[| 1.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]
    "r3.online.violation_ms"

let g_quiescent = Metrics.gauge "r3.online.quiescent_mlu"

(* Deterministic per-(event, router) fault stream, independent of how many
   draws other streams made. *)
let copy_rng ~seed ~ev ~router =
  Prng.create ((seed * 0x2545F49) lxor ((ev + 1) * 1_000_003) lxor ((router + 1) * 7919))

(* ---- checkpoints ---- *)

module Checkpoint = struct
  module Codec = R3_util.Codec
  module W = Codec.W
  module R = Codec.R

  (* Everything the delivery loop accumulates; the delivery schedule
     itself is NOT stored — it is a deterministic function of
     (root, events, channel, seed) and is re-expanded on resume, with
     [digest] guaranteeing the checkpoint belongs to that same run. *)
  type t = {
    digest : string;
    cursor : int;  (* deliveries already processed *)
    stale : int;
    seen : int array array;
    belief : bool array array;
    dp_belief : bool array;
    pending : int array;
    convergence : float array;
    peak : float;
    min_delivered : float;
    violation_start : float option;
    violations : (float * float) list;  (* newest first, like the run *)
    last_at : float;
  }

  let magic = "R3ONLNCK"
  let version = 1
  let cursor t = t.cursor

  let bools_to_string a =
    String.init (Array.length a) (fun i -> if a.(i) then '\001' else '\000')

  let bools_of_string s =
    Array.init (String.length s) (fun i ->
        match s.[i] with
        | '\000' -> false
        | '\001' -> true
        | c -> raise (R.Corrupt (Printf.sprintf "bad bool byte %d" (Char.code c))))

  let save path t =
    let w = W.create () in
    W.string w t.digest;
    W.int w t.cursor;
    W.int w t.stale;
    W.i32 w (Array.length t.seen);
    Array.iter (W.int_array w) t.seen;
    Array.iter (fun row -> W.string w (bools_to_string row)) t.belief;
    W.string w (bools_to_string t.dp_belief);
    W.int_array w t.pending;
    W.float_array w t.convergence;
    W.float w t.peak;
    W.float w t.min_delivered;
    (match t.violation_start with
    | None -> W.bool w false
    | Some v ->
      W.bool w true;
      W.float w v);
    W.i32 w (List.length t.violations);
    List.iter
      (fun (a, b) ->
        W.float w a;
        W.float w b)
      t.violations;
    W.float w t.last_at;
    Codec.write_framed path ~magic ~version (W.contents w)

  let load path =
    match Codec.read_framed path ~magic ~version with
    | Error _ as e -> e
    | Ok payload -> (
      try
        let r = R.of_string payload in
        let digest = R.string r in
        let cursor = R.int r in
        let stale = R.int r in
        let n = R.i32 r in
        if n < 0 then raise (R.Corrupt "negative router count");
        let seen = Array.init n (fun _ -> R.int_array r) in
        let belief = Array.init n (fun _ -> bools_of_string (R.string r)) in
        let dp_belief = bools_of_string (R.string r) in
        let pending = R.int_array r in
        let convergence = R.float_array r in
        let peak = R.float r in
        let min_delivered = R.float r in
        let violation_start = if R.bool r then Some (R.float r) else None in
        let nv = R.i32 r in
        if nv < 0 || nv > R.remaining r / 16 then
          raise (R.Corrupt "bad violation window count");
        let violations =
          List.init nv (fun _ ->
              let a = R.float r in
              let b = R.float r in
              (a, b))
        in
        let last_at = R.float r in
        R.expect_end r;
        Ok
          {
            digest;
            cursor;
            stale;
            seen;
            belief;
            dp_belief;
            pending;
            convergence;
            peak;
            min_delivered;
            violation_start;
            violations;
            last_at;
          }
      with R.Corrupt msg ->
        Error (Printf.sprintf "%s: malformed checkpoint: %s" path msg))
end

(* Identity of a run: the checkpointed protocol state is only meaningful
   against the exact same root plan, event schedule, channel and seed. *)
let run_digest ~channel ~seed ~mlu_bound ~fibs root events =
  let module W = R3_util.Codec.W in
  let w = W.create () in
  W.string w (R3_core.Plan_store.graph_fingerprint root.Reconfig.graph);
  W.i32 w (Array.length root.Reconfig.pairs);
  Array.iter
    (fun (a, b) ->
      W.i32 w a;
      W.i32 w b)
    root.Reconfig.pairs;
  W.float_array w root.Reconfig.demands;
  W.i32 w (Array.length events);
  Array.iter
    (fun ev ->
      W.float w ev.at_ms;
      W.i32 w ev.link;
      W.u8 w (match ev.kind with Fail -> 0 | Recover -> 1))
    events;
  W.string w channel.Channel.cname;
  W.float w channel.Channel.notify.Notify.detection_ms;
  W.float w channel.Channel.notify.Notify.per_hop_ms;
  (match channel.Channel.faults with
  | None -> W.bool w false
  | Some f ->
    W.bool w true;
    W.float w f.Channel.jitter_ms;
    W.float w f.Channel.dup_prob;
    W.float w f.Channel.drop_prob;
    W.int w f.Channel.max_retries;
    W.float w f.Channel.backoff_ms);
  W.int w seed;
  W.float w mlu_bound;
  W.bool w fibs;
  Digest.to_hex (Digest.string (W.contents w))

let run_to ?(channel = Channel.ideal ()) ?(seed = 0) ?(mlu_bound = infinity)
    ?(fibs = false) ?resume ?stop_after root events =
  Trace.with_span "online.run" @@ fun () ->
  let g = root.Reconfig.graph in
  let n = G.num_nodes g in
  let m = G.num_links g in
  let events =
    Array.of_list (List.stable_sort (fun a b -> Float.compare a.at_ms b.at_ms) events)
  in
  let ne = Array.length events in
  Array.iteri
    (fun i ev ->
      if ev.link < 0 || ev.link >= m then invalid_arg "Online.run: bad link";
      if ev.link <> phys_rep g ev.link then
        invalid_arg "Online.run: event links must be physical representatives";
      ignore i)
    events;
  (* On resume the pre-pause portion already counted its events. *)
  (match resume with None -> Metrics.add c_events ne | Some _ -> ());
  (* True failed set after each event, for notification flooding. The
     down-set fold is stateful and cheap; the per-event SPF flood times
     are pure given the failed set, so they fan out over the pool in
     slot order. *)
  let scenario_after = Array.make ne (Scenario.of_physical g []) in
  begin
    let down = Hashtbl.create 8 in
    Array.iteri
      (fun i ev ->
        (match ev.kind with
        | Fail -> Hashtbl.replace down ev.link ()
        | Recover -> Hashtbl.remove down ev.link);
        let reps =
          Hashtbl.fold (fun e () acc -> e :: acc) down [] |> List.sort compare
        in
        scenario_after.(i) <- Scenario.of_physical g reps)
      events
  end;
  let arrival_after =
    R3_util.Parallel.init ne (fun i ->
        Notify.arrival_times ~config:channel.Channel.notify g
          ~failed:(G.fail_links g (Scenario.links scenario_after.(i)))
          ~link:events.(i).link)
  in
  (* Expand every (event, router) notification into its delivery copies.
     Faults are precomputable: drops, retransmissions and duplicates do not
     depend on receiver state, so the whole delivery schedule is known
     upfront and a sort replaces a priority queue. Per-event streams are
     independent — the per-copy RNG is keyed by (seed, event, router) —
     so events expand in parallel; the global [seq] tiebreaker is then
     assigned sequentially in the same event/router/attempt order the
     serial loop used, keeping the sorted schedule bit-identical for any
     domain count. *)
  let expanded =
    R3_util.Parallel.init ne (fun i ->
        let ev = events.(i) in
        let drops = ref 0 in
        let copies = ref [] in
        (* built newest-first, reversed once below *)
        let push at router = copies := (at, router) :: !copies in
        for v = 0 to n - 1 do
          let flood = arrival_after.(i).(v) in
          (* [infinity] = router partitioned from the detector; with the
             connectivity-preserving generator this cannot happen, but a
             hand-built schedule may do it — the router then simply never
             hears about this event. *)
          if flood < infinity then begin
            let base = ev.at_ms +. flood in
            match channel.Channel.faults with
            | None -> push base v
            | Some f ->
              let rng = copy_rng ~seed ~ev:i ~router:v in
              let lost = ref 0 in
              while
                !lost < f.Channel.max_retries && Prng.bool rng f.Channel.drop_prob
              do
                incr lost
              done;
              drops := !drops + !lost;
              let attempt_base =
                base +. (float_of_int !lost *. f.Channel.backoff_ms)
              in
              let jitter () =
                if f.Channel.jitter_ms > 0.0 then
                  Prng.float rng f.Channel.jitter_ms
                else 0.0
              in
              push (attempt_base +. jitter ()) v;
              let dups = ref 0 in
              while !dups < 3 && Prng.bool rng f.Channel.dup_prob do
                push (attempt_base +. jitter ()) v;
                incr dups
              done
          end
        done;
        (List.rev !copies, !drops))
  in
  let stat_drops = ref 0 and stat_retries = ref 0 in
  let deliveries = ref [] in
  let n_copies = ref 0 in
  Array.iteri
    (fun i (copies, drops) ->
      stat_drops := !stat_drops + drops;
      stat_retries := !stat_retries + drops;
      List.iter
        (fun (at, router) ->
          deliveries := { at; seq = !n_copies; ev = i; router } :: !deliveries;
          incr n_copies)
        copies)
    expanded;
  let deliveries = Array.of_list !deliveries in
  Array.sort
    (fun a b ->
      match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c)
    deliveries;
  (* Memoized canonical states: every believed failed set maps to the
     batch application of that set in canonical scenario order, built by
     prefix recursion — so a router view's float bits depend only on its
     believed set, never on delivery order (Theorem 3, executably). *)
  let memo = Scenario.Tbl.create 64 in
  Scenario.Tbl.add memo (Scenario.of_physical g []) root;
  let rec canonical sc =
    match Scenario.Tbl.find_opt memo sc with
    | Some st -> st
    | None ->
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: tl -> split_last (x :: acc) tl
      in
      let prefix, last = split_last [] (Scenario.physical sc) in
      let parent = canonical (Scenario.of_physical g prefix) in
      let st = Reconfig.fail parent (Scenario.of_physical g [ last ]) in
      Scenario.Tbl.add memo sc st;
      st
  in
  (* Per-router protocol state. *)
  let seen = Array.make_matrix n m 0 in
  let belief = Array.make_matrix n m false in
  let view = Array.make n root in
  let fib = ref (if fibs then Some (Fib.of_protection g root.Reconfig.protection) else None) in
  (* Convergence accounting: event i is converged once every router has
     accepted some version >= i+1 for its link. *)
  let events_by_link = Array.make m [] in
  for i = ne - 1 downto 0 do
    events_by_link.(events.(i).link) <- i :: events_by_link.(events.(i).link)
  done;
  let pending = Array.make ne n in
  let convergence = Array.make ne nan in
  (* Data-plane state: a physical event takes effect on traffic when the
     canonical direction's head router accepts it. *)
  let dp_belief = Array.make m false in
  let dp_state = ref root in
  let peak = ref (Reconfig.mlu root) in
  let min_delivered = ref (Reconfig.delivered_fraction root) in
  let violation_start = ref (if !peak > mlu_bound then Some 0.0 else None) in
  let violations = ref [] in
  let observe_dp now =
    let u = Reconfig.mlu !dp_state in
    if u > !peak then peak := u;
    let d = Reconfig.delivered_fraction !dp_state in
    if d < !min_delivered then min_delivered := d;
    match (!violation_start, u > mlu_bound) with
    | None, true -> violation_start := Some now
    | Some t0, false ->
      violations := (t0, now) :: !violations;
      Metrics.observe h_violation (now -. t0);
      violation_start := None
    | None, false | Some _, true -> ()
  in
  let stat_stale = ref 0 in
  let last_at = ref 0.0 in
  let nd = Array.length deliveries in
  let digest = run_digest ~channel ~seed ~mlu_bound ~fibs root events in
  let start =
    match resume with
    | None -> 0
    | Some (ck : Checkpoint.t) ->
      if ck.Checkpoint.digest <> digest then
        invalid_arg
          "Online.run_to: checkpoint was recorded for a different run \
           (plan, events, channel or seed differ)";
      if ck.Checkpoint.cursor < 0 || ck.Checkpoint.cursor > nd then
        invalid_arg "Online.run_to: checkpoint cursor out of range";
      (* Restore the protocol state, then rebuild everything derived from
         it: router views re-fold through [canonical] (memo repopulates
         from the believed sets), the data-plane state from [dp_belief],
         and FIBs from a fresh rebuild patched per router — exactly what
         the incremental updates of the pre-pause loop left behind, since
         [Fib.update_router] derives a router's entry from the given
         protection alone. *)
      for v = 0 to n - 1 do
        Array.blit ck.Checkpoint.seen.(v) 0 seen.(v) 0 m;
        Array.blit ck.Checkpoint.belief.(v) 0 belief.(v) 0 m;
        let reps = ref [] in
        for e = m - 1 downto 0 do
          if belief.(v).(e) then reps := e :: !reps
        done;
        view.(v) <- canonical (Scenario.of_physical g !reps)
      done;
      (match !fib with
      | None -> ()
      | Some f0 ->
        let f = ref f0 in
        for v = 0 to n - 1 do
          f := Fib.update_router !f ~router:v view.(v).Reconfig.protection
        done;
        fib := Some !f);
      Array.blit ck.Checkpoint.dp_belief 0 dp_belief 0 m;
      let dreps = ref [] in
      for e = m - 1 downto 0 do
        if dp_belief.(e) then dreps := e :: !dreps
      done;
      dp_state := canonical (Scenario.of_physical g !dreps);
      Array.blit ck.Checkpoint.pending 0 pending 0 ne;
      Array.blit ck.Checkpoint.convergence 0 convergence 0 ne;
      peak := ck.Checkpoint.peak;
      min_delivered := ck.Checkpoint.min_delivered;
      violation_start := ck.Checkpoint.violation_start;
      violations := ck.Checkpoint.violations;
      last_at := ck.Checkpoint.last_at;
      stat_stale := ck.Checkpoint.stale;
      ck.Checkpoint.cursor
  in
  let stop =
    match stop_after with
    | None -> nd
    | Some k ->
      if k < 0 then invalid_arg "Online.run_to: negative stop_after";
      Int.min nd (start + k)
  in
  for di = start to stop - 1 do
    let d = deliveries.(di) in
      Metrics.incr c_deliveries;
      last_at := d.at;
      let ev = events.(d.ev) in
      let ver = d.ev + 1 in
      let v = d.router in
      let rep = ev.link in
      let prev = seen.(v).(rep) in
      if ver <= prev then incr stat_stale
      else begin
        seen.(v).(rep) <- ver;
        belief.(v).(rep) <- (ev.kind = Fail);
        (* Credit every event on this link whose version the acceptance
           covers (a newer notification subsumes the older ones a lossy
           channel may never deliver to this router). *)
        List.iter
          (fun j ->
            let vj = j + 1 in
            if vj > prev && vj <= ver && pending.(j) > 0 then begin
              pending.(j) <- pending.(j) - 1;
              if pending.(j) = 0 then begin
                convergence.(j) <- d.at -. events.(j).at_ms;
                Metrics.observe h_convergence convergence.(j)
              end
            end)
          events_by_link.(rep);
        let reps = ref [] in
        for e = m - 1 downto 0 do
          if belief.(v).(e) then reps := e :: !reps
        done;
        view.(v) <- canonical (Scenario.of_physical g !reps);
        (match !fib with
        | Some f ->
          fib := Some (Fib.update_router f ~router:v view.(v).Reconfig.protection)
        | None -> ());
        if v = G.src g rep then begin
          dp_belief.(rep) <- (ev.kind = Fail);
          let dreps = ref [] in
          for e = m - 1 downto 0 do
            if dp_belief.(e) then dreps := e :: !dreps
          done;
          dp_state := canonical (Scenario.of_physical g !dreps);
          observe_dp d.at
        end
      end
  done;
  if stop < nd then
    `Paused
      Checkpoint.
        {
          digest;
          cursor = stop;
          stale = !stat_stale;
          seen = Array.map Array.copy seen;
          belief = Array.map Array.copy belief;
          dp_belief = Array.copy dp_belief;
          pending = Array.copy pending;
          convergence = Array.copy convergence;
          peak = !peak;
          min_delivered = !min_delivered;
          violation_start = !violation_start;
          violations = !violations;
          last_at = !last_at;
        }
  else begin
  (match !violation_start with
  | Some t0 when !last_at > t0 ->
    violations := (t0, !last_at) :: !violations;
    Metrics.observe h_violation (!last_at -. t0)
  | _ -> ());
  Metrics.add c_stale !stat_stale;
  Metrics.add c_drops !stat_drops;
  Metrics.add c_retries !stat_retries;
  (* Quiescence: the terminal scenario is the true final failed set; the
     reference is an independent one-shot batch application from the root,
     so the memoized prefix recursion is itself under test. *)
  let final_sc = if ne = 0 then Scenario.of_physical g [] else scenario_after.(ne - 1) in
  let terminal = canonical final_sc in
  let batch = Reconfig.fail root final_sc in
  let order_independent =
    Reconfig.states_bit_identical terminal batch
    && Array.for_all (fun v -> Reconfig.states_bit_identical v batch) view
  in
  let fib_consistent =
    match !fib with
    | None -> true
    | Some f -> Fib.equal f (Fib.of_protection g batch.Reconfig.protection)
  in
  let quiescent_mlu = Reconfig.mlu terminal in
  Metrics.set_gauge g_quiescent quiescent_mlu;
  let distinct_states = Scenario.Tbl.length memo in
  Metrics.add c_states distinct_states;
  Trace.add_attr "events" (Trace.Int ne);
  Trace.add_attr "deliveries" (Trace.Int (Array.length deliveries));
  Trace.add_attr "states" (Trace.Int distinct_states);
  `Done
    {
      terminal;
      order_independent;
      fib_consistent;
      quiescent_mlu;
      stats =
        {
          events = ne;
          deliveries = Array.length deliveries;
          stale = !stat_stale;
          drops = !stat_drops;
          retries = !stat_retries;
          distinct_states;
          convergence_ms = convergence;
          transient_mlu_peak = !peak;
          min_delivered = !min_delivered;
          violation_windows = List.rev !violations;
        };
    }
  end

let run ?channel ?seed ?mlu_bound ?fibs root events =
  match run_to ?channel ?seed ?mlu_bound ?fibs root events with
  | `Done outcome -> outcome
  | `Paused _ -> assert false (* no stop_after: the loop runs to the end *)
