(* Memo table for the optimal-MCF normalizer. The key scheme has two
   levels: a context digest (MD5 over the topology, commodities, demands
   and solver epsilon — everything the solve depends on besides the failure
   set) selects the table, and Scenario.key selects the entry. Values
   round-trip through the disk file as hex floats, so cache hits are
   bit-identical to the cold solves that produced them. *)

module G = R3_net.Graph

module Obs = struct
  module M = R3_util.Metrics

  let hits = M.counter "mcf_cache.hits"
  let misses = M.counter "mcf_cache.misses"
  let flushes = M.counter "mcf_cache.flushes"
  let loaded = M.counter "mcf_cache.entries_loaded"
end

type t = {
  table : (string, float) Hashtbl.t;
  file : string option;
  context : string;
  mutable dirty : bool;
}

let context_digest ~graph ~pairs ~demands ~epsilon =
  let buf = Buffer.create 4096 in
  let add_int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  let add_float f = Buffer.add_int64_le buf (Int64.bits_of_float f) in
  add_int (G.num_nodes graph);
  add_int (G.num_links graph);
  for e = 0 to G.num_links graph - 1 do
    add_int (G.src graph e);
    add_int (G.dst graph e);
    add_float (G.capacity graph e)
  done;
  add_int (Array.length pairs);
  Array.iter (fun (a, b) -> add_int a; add_int b) pairs;
  Array.iter add_float demands;
  add_float epsilon;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let load_file table path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         let line = input_line ic in
         match String.index_opt line ' ' with
         | Some i ->
           let key = String.sub line 0 i in
           let v = String.sub line (i + 1) (String.length line - i - 1) in
           (match float_of_string_opt v with
           | Some f -> Hashtbl.replace table key f
           | None -> ())
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic
  end

let create ?dir ~graph ~pairs ~demands ~epsilon () =
  let context = context_digest ~graph ~pairs ~demands ~epsilon in
  let table = Hashtbl.create 256 in
  let file =
    match dir with
    | None -> None
    | Some d ->
      let path = Filename.concat d (Printf.sprintf "mcf-%s.cache" context) in
      load_file table path;
      R3_util.Metrics.add Obs.loaded (Hashtbl.length table);
      Some path
  in
  { table; file; context; dirty = false }

let context t = t.context
let size t = Hashtbl.length t.table

let find t scenario =
  let r = Hashtbl.find_opt t.table (Scenario.key scenario) in
  (match r with
  | Some _ -> R3_util.Metrics.incr Obs.hits
  | None -> R3_util.Metrics.incr Obs.misses);
  r

let add t scenario value =
  let key = Scenario.key scenario in
  (* Bit-level equality: [v = value] is false for NaN = NaN, which would
     mark the table dirty (and rewrite the file) on every re-add of a NaN
     entry. The cache stores whatever the solver produced, bit for bit. *)
  let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  (match Hashtbl.find_opt t.table key with
  | Some v when same_bits v value -> ()
  | _ ->
    Hashtbl.replace t.table key value;
    t.dirty <- true)

(* [mkdir -p]: tolerate both pre-existing components and EEXIST races with
   a concurrent sweep creating the same directory. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let flush t =
  match t.file with
  | None -> ()
  | Some path when t.dirty ->
    mkdir_p (Filename.dirname path);
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    (* Write-to-temp + rename: a crash mid-write (or a second concurrent
       sweep flushing the same context) leaves the old file intact instead
       of truncated or interleaved. The temp name embeds the pid so two
       processes never share one. *)
    let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
    let oc = open_out tmp in
    (try
       List.iter (fun (k, v) -> Printf.fprintf oc "%s %h\n" k v) entries;
       close_out oc;
       Sys.rename tmp path;
       R3_util.Metrics.incr Obs.flushes
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    t.dirty <- false
  | Some _ -> ()
