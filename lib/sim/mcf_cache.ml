(* Memo table for the optimal-MCF normalizer. The key scheme has two
   levels: a context digest (MD5 over the topology, commodities, demands
   and solver epsilon — everything the solve depends on besides the failure
   set) selects the table, and Scenario.key selects the entry. Values
   round-trip through the disk file as hex floats, so cache hits are
   bit-identical to the cold solves that produced them. *)

module G = R3_net.Graph

type t = {
  table : (string, float) Hashtbl.t;
  file : string option;
  context : string;
  mutable dirty : bool;
}

let context_digest ~graph ~pairs ~demands ~epsilon =
  let buf = Buffer.create 4096 in
  let add_int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  let add_float f = Buffer.add_int64_le buf (Int64.bits_of_float f) in
  add_int (G.num_nodes graph);
  add_int (G.num_links graph);
  for e = 0 to G.num_links graph - 1 do
    add_int (G.src graph e);
    add_int (G.dst graph e);
    add_float (G.capacity graph e)
  done;
  add_int (Array.length pairs);
  Array.iter (fun (a, b) -> add_int a; add_int b) pairs;
  Array.iter add_float demands;
  add_float epsilon;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let load_file table path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         let line = input_line ic in
         match String.index_opt line ' ' with
         | Some i ->
           let key = String.sub line 0 i in
           let v = String.sub line (i + 1) (String.length line - i - 1) in
           (match float_of_string_opt v with
           | Some f -> Hashtbl.replace table key f
           | None -> ())
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic
  end

let create ?dir ~graph ~pairs ~demands ~epsilon () =
  let context = context_digest ~graph ~pairs ~demands ~epsilon in
  let table = Hashtbl.create 256 in
  let file =
    match dir with
    | None -> None
    | Some d ->
      let path = Filename.concat d (Printf.sprintf "mcf-%s.cache" context) in
      load_file table path;
      Some path
  in
  { table; file; context; dirty = false }

let context t = t.context
let size t = Hashtbl.length t.table

let find t scenario = Hashtbl.find_opt t.table (Scenario.key scenario)

let add t scenario value =
  let key = Scenario.key scenario in
  (match Hashtbl.find_opt t.table key with
  | Some v when v = value -> ()
  | _ ->
    Hashtbl.replace t.table key value;
    t.dirty <- true)

let flush t =
  match t.file with
  | None -> ()
  | Some path when t.dirty ->
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let oc = open_out path in
    List.iter (fun (k, v) -> Printf.fprintf oc "%s %h\n" k v) entries;
    close_out oc;
    t.dirty <- false
  | Some _ -> ()
