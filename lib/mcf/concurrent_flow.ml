module G = R3_net.Graph

type result = { mlu : float; iterations : int }

(* Dijkstra under current lengths, returning predecessor links toward each
   node from [src]. O(n^2), adequate for backbone-scale graphs. *)
let dijkstra_tree g failed lengths src =
  let n = G.num_nodes g in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  let rec loop () =
    let best = ref (-1) and best_d = ref infinity in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < !best_d then begin
        best := v;
        best_d := dist.(v)
      end
    done;
    if !best >= 0 then begin
      let u = !best in
      visited.(u) <- true;
      Array.iter
        (fun e ->
          if not failed.(e) then begin
            let v = G.dst g e in
            let nd = dist.(u) +. lengths.(e) in
            if nd < dist.(v) -. 1e-15 then begin
              dist.(v) <- nd;
              pred.(v) <- e
            end
          end)
        (G.out_links g u);
      loop ()
    end
  in
  loop ();
  (dist, pred)

let path_links pred ~src ~dst g =
  let rec walk v acc =
    if v = src then Some acc
    else begin
      let e = pred.(v) in
      if e < 0 then None else walk (G.src g e) (e :: acc)
    end
  in
  walk dst []

module Obs = struct
  module M = R3_util.Metrics

  let runs = M.counter "mcf.runs"
  let phases = M.counter "mcf.phases"
  let iterations = M.counter "mcf.iterations"
  let exact_solves = M.counter "mcf.exact_solves"
  let solve_seconds = M.histogram "mcf.solve.seconds"
end

let run_gk_body g ?failed ~epsilon ~track ~pairs ~demands () =
  let failed = match failed with Some f -> f | None -> G.no_failures g in
  let m = G.num_links g in
  (* Keep only routable commodities with positive demand. *)
  let reach = Hashtbl.create 8 in
  let reachable_from a =
    match Hashtbl.find_opt reach a with
    | Some r -> r
    | None ->
      let r = G.reachable g ~failed a in
      Hashtbl.replace reach a r;
      r
  in
  let live =
    Array.to_list (Array.mapi (fun k (a, b) -> (k, a, b)) pairs)
    |> List.filter (fun (k, a, b) -> demands.(k) > 0.0 && (reachable_from a).(b))
  in
  let zero_routing () = R3_net.Routing.create g ~pairs in
  if live = [] then ({ mlu = 0.0; iterations = 0 }, zero_routing ())
  else begin
    (* Pre-scale demands so the optimal concurrent throughput is near 1:
       min-MLU is linear in demand, and the ECMP-OSPF MLU is an upper
       bound on it. *)
    let pre_pairs = Array.of_list (List.map (fun (_, a, b) -> (a, b)) live) in
    let pre_dem = Array.of_list (List.map (fun (k, _, _) -> demands.(k)) live) in
    let ospf =
      R3_net.Ospf.routing g ~failed ~weights:(R3_net.Ospf.unit_weights g)
        ~pairs:pre_pairs ()
    in
    let ospf_loads = R3_net.Routing.loads g ~demands:pre_dem ospf in
    let ospf_mlu = R3_net.Routing.mlu g ~loads:ospf_loads in
    if ospf_mlu <= 0.0 then ({ mlu = 0.0; iterations = 0 }, zero_routing ())
    else begin
      let scale = 1.0 /. ospf_mlu in
      let dem = Array.map (fun d -> d *. scale) pre_dem in
      (* Garg-Konemann with exponential lengths. *)
      let delta = (1.0 +. epsilon) *. (((1.0 +. epsilon) *. float_of_int m) ** (-1.0 /. epsilon)) in
      let lengths = Array.init m (fun e -> delta /. G.capacity g e) in
      let flows = Array.make m 0.0 in
      let nlive = Array.length pre_pairs in
      let kflows = if track then Array.make_matrix nlive m 0.0 else [||] in
      let iterations = ref 0 in
      let dual () =
        let acc = ref 0.0 in
        for e = 0 to m - 1 do
          if not failed.(e) then acc := !acc +. (lengths.(e) *. G.capacity g e)
        done;
        !acc
      in
      (* Group commodities by source to share Dijkstra trees. *)
      let by_src = Hashtbl.create 8 in
      Array.iteri
        (fun k (a, _) ->
          let l = Option.value (Hashtbl.find_opt by_src a) ~default:[] in
          Hashtbl.replace by_src a (k :: l))
        pre_pairs;
      let phases = ref 0 in
      let max_iterations = 200_000 in
      while dual () < 1.0 && !iterations < max_iterations do
        Hashtbl.iter
          (fun src ks ->
            let tree = ref None in
            let get_tree () =
              match !tree with
              | Some t -> t
              | None ->
                incr iterations;
                let t = dijkstra_tree g failed lengths src in
                tree := Some t;
                t
            in
            List.iter
              (fun k ->
                let _, b = pre_pairs.(k) in
                let remaining = ref dem.(k) in
                let guard = ref 0 in
                while !remaining > 1e-12 && !guard < 200 do
                  incr guard;
                  let _, pred = get_tree () in
                  match path_links pred ~src ~dst:b g with
                  | None -> remaining := 0.0 (* unreachable: should not happen *)
                  | Some path ->
                    let bottleneck =
                      List.fold_left
                        (fun a e -> Float.min a (G.capacity g e))
                        infinity path
                    in
                    let gamma = Float.min !remaining bottleneck in
                    List.iter
                      (fun e ->
                        flows.(e) <- flows.(e) +. gamma;
                        if track then kflows.(k).(e) <- kflows.(k).(e) +. gamma;
                        lengths.(e) <-
                          lengths.(e) *. (1.0 +. (epsilon *. gamma /. G.capacity g e)))
                      path;
                    remaining := !remaining -. gamma;
                    (* lengths changed; refresh the tree on the next loop *)
                    if !remaining > 1e-12 then tree := None
                done)
              ks)
          by_src;
        incr phases
      done;
      let t = Float.max 1.0 (float_of_int !phases) in
      let worst = ref 0.0 in
      for e = 0 to m - 1 do
        if not failed.(e) then begin
          let u = flows.(e) /. G.capacity g e in
          if u > !worst then worst := u
        end
      done;
      (* flows route t * dem; divide by t for one unit of dem, then undo the
         pre-scaling. *)
      let routing = zero_routing () in
      if track then begin
        List.iteri
          (fun i (orig_k, _, _) ->
            if dem.(i) > 0.0 then begin
              let denom = t *. dem.(i) in
              for e = 0 to m - 1 do
                R3_net.Routing.set routing orig_k e
                  (Float.max 0.0 (Float.min 1.0 (kflows.(i).(e) /. denom)))
              done
            end)
          live
      end;
      let mlu = !worst /. t /. scale in
      R3_util.Metrics.add Obs.phases !phases;
      R3_util.Metrics.add Obs.iterations !iterations;
      R3_util.Trace.add_attr "phases" (R3_util.Trace.Int !phases);
      R3_util.Trace.add_attr "iterations" (R3_util.Trace.Int !iterations);
      R3_util.Trace.add_attr "mlu" (R3_util.Trace.Float mlu);
      ({ mlu; iterations = !iterations }, routing)
    end
  end

let run_gk g ?failed ?(epsilon = 0.05) ~track ~pairs ~demands () =
  R3_util.Metrics.incr Obs.runs;
  R3_util.Metrics.time Obs.solve_seconds (fun () ->
      R3_util.Trace.with_span "mcf.solve"
        ~attrs:[ ("epsilon", R3_util.Trace.Float epsilon) ]
        (fun () -> run_gk_body g ?failed ~epsilon ~track ~pairs ~demands ()))

let min_mlu g ?failed ?epsilon ~pairs ~demands () =
  fst (run_gk g ?failed ?epsilon ~track:false ~pairs ~demands ())

let min_mlu_routing g ?failed ?epsilon ~pairs ~demands () =
  run_gk g ?failed ?epsilon ~track:true ~pairs ~demands ()

module P = R3_lp.Problem

let min_mlu_exact g ?failed ~pairs ~demands () =
  R3_util.Metrics.incr Obs.exact_solves;
  R3_util.Trace.with_span "mcf.exact" @@ fun () ->
  let failed = match failed with Some f -> f | None -> G.no_failures g in
  let m = G.num_links g in
  let n = G.num_nodes g in
  let live =
    Array.to_list (Array.mapi (fun k (a, b) -> (k, a, b)) pairs)
    |> List.filter (fun (k, a, b) ->
           demands.(k) > 0.0 && (G.reachable g ~failed a).(b))
  in
  let lp = P.create ~name:"min-mlu-exact" () in
  let mlu = P.var lp ~lb:0.0 "MLU" in
  let vars = Hashtbl.create 64 in
  List.iter
    (fun (k, a, _) ->
      for e = 0 to m - 1 do
        if (not failed.(e)) && G.dst g e <> a then
          Hashtbl.replace (vars : (int * int, P.var) Hashtbl.t) (k, e)
            (P.var lp ~lb:0.0 (Printf.sprintf "r%d_%d" k e))
      done)
    live;
  let term k e = Option.map (fun v -> (1.0, v)) (Hashtbl.find_opt vars (k, e)) in
  List.iter
    (fun (k, a, b) ->
      let outs =
        Array.to_list (G.out_links g a) |> List.filter_map (fun e -> term k e)
      in
      P.constr lp outs P.Eq 1.0;
      for v = 0 to n - 1 do
        if v <> a && v <> b then begin
          let outs =
            Array.to_list (G.out_links g v) |> List.filter_map (fun e -> term k e)
          in
          let ins =
            Array.to_list (G.in_links g v)
            |> List.filter_map (fun e ->
                   Option.map (fun (c, v) -> (-.c, v)) (term k e))
          in
          P.constr lp (outs @ ins) P.Eq 0.0
        end
      done)
    live;
  for e = 0 to m - 1 do
    if not failed.(e) then begin
      let terms =
        List.filter_map
          (fun (k, _, _) ->
            Option.map (fun v -> (demands.(k), v)) (Hashtbl.find_opt vars (k, e)))
          live
      in
      if terms <> [] then
        P.constr lp ((-.G.capacity g e, mlu) :: terms) P.Le 0.0
    end
  done;
  P.minimize lp [ (1.0, mlu) ];
  (* small loop suppression *)
  Hashtbl.iter (fun _ v -> P.add_objective_term lp 1e-7 v) vars;
  match P.solve lp with
  | P.Optimal sol ->
    let routing = R3_net.Routing.create g ~pairs in
    List.iter
      (fun (k, _, _) ->
        for e = 0 to m - 1 do
          match Hashtbl.find_opt vars (k, e) with
          | Some v ->
            R3_net.Routing.set routing k e
              (Float.max 0.0 (Float.min 1.0 (sol.P.value v)))
          | None -> ()
        done)
      live;
    Ok (sol.P.value mlu, routing)
  | P.Infeasible -> Error "min_mlu_exact: infeasible"
  | P.Unbounded -> Error "min_mlu_exact: unbounded"
  | P.Iteration_limit -> Error "min_mlu_exact: iteration limit"
