let pair_key a b = (Int.min a b, Int.max a b)

(* Remove node [v]: its links, demands and events go with it; higher ids
   shift down so the case stays dense. *)
let drop_node (c : Case.t) v =
  let remap x = if x > v then x - 1 else x in
  let links =
    Array.to_list c.links
    |> List.filter (fun (a, b, _, _) -> a <> v && b <> v)
    |> List.map (fun (a, b, cap, d) -> (remap a, remap b, cap, d))
    |> Array.of_list
  in
  let demands =
    Array.to_list c.demands
    |> List.filter (fun (a, b, _) -> a <> v && b <> v)
    |> List.map (fun (a, b, d) -> (remap a, remap b, d))
    |> Array.of_list
  in
  let events =
    List.filter_map
      (fun (ev : Case.event) ->
        if ev.a = v || ev.b = v then None
        else Some { ev with Case.a = remap ev.a; b = remap ev.b })
      c.events
  in
  { c with Case.nodes = c.nodes - 1; links; demands; events }

(* Remove one physical link (both directions). *)
let drop_link_pair (c : Case.t) pr =
  let links =
    Array.to_list c.links
    |> List.filter (fun (a, b, _, _) -> pair_key a b <> pr)
    |> Array.of_list
  in
  { c with Case.links = links }

let minimize ?(budget = 300) ~fails case =
  let tries = ref 0 in
  (* [attempt old cand] is [Some cand] iff [cand] is a genuine
     simplification that is still valid and still failing. *)
  let attempt old cand =
    if cand = old || !tries >= budget then None
    else begin
      incr tries;
      if Case.valid cand && fails cand then Some cand else None
    end
  in
  (* Remove [chunk]-sized slices while any removal sticks, halving the
     chunk size down to single elements (ddmin-lite). Chunks are tried
     from the tail first: for events that means suffix truncation, which
     cannot break per-link fail/recover alternation. *)
  let rec drop_chunks ~get ~set c chunk =
    if chunk < 1 then c
    else begin
      let c = ref c in
      let i = ref (Array.length (get !c) - chunk) in
      while !i >= 0 do
        let items = get !c in
        let n = Array.length items in
        let lo = Int.max 0 !i in
        let hi = Int.min n (lo + chunk) in
        if hi > lo then begin
          let cand =
            set !c (Array.append (Array.sub items 0 lo) (Array.sub items hi (n - hi)))
          in
          match attempt !c cand with
          | Some c' -> c := c'
          | None -> ()
        end;
        i := !i - chunk
      done;
      drop_chunks ~get ~set !c (chunk / 2)
    end
  in
  let pass (c : Case.t) =
    (* 1. event chunks *)
    let c =
      drop_chunks
        ~get:(fun (c : Case.t) -> Array.of_list c.events)
        ~set:(fun c ev -> { c with Case.events = Array.to_list ev })
        c
        (List.length c.events / 2)
    in
    (* 2. whole per-physical-link event groups *)
    let event_pairs =
      List.fold_left
        (fun acc (ev : Case.event) ->
          let k = pair_key ev.a ev.b in
          if List.mem k acc then acc else k :: acc)
        [] c.events
      |> List.rev
    in
    let c =
      List.fold_left
        (fun c pr ->
          let cand =
            {
              c with
              Case.events =
                List.filter
                  (fun (ev : Case.event) -> pair_key ev.a ev.b <> pr)
                  c.Case.events;
            }
          in
          match attempt c cand with Some c' -> c' | None -> c)
        c event_pairs
    in
    (* 3. demand chunks *)
    let c =
      drop_chunks
        ~get:(fun (c : Case.t) -> c.demands)
        ~set:(fun c d -> { c with Case.demands = d })
        c
        (Array.length c.demands / 2)
    in
    (* 4. physical links *)
    let link_pairs =
      Array.fold_left
        (fun acc (a, b, _, _) ->
          let k = pair_key a b in
          if List.mem k acc then acc else k :: acc)
        [] c.links
      |> List.rev
    in
    let c =
      List.fold_left
        (fun c pr ->
          match attempt c (drop_link_pair c pr) with
          | Some c' -> c'
          | None -> c)
        c link_pairs
    in
    (* 5. nodes, highest id first (cheapest renumbering) *)
    let c =
      let rec go c v =
        if v < 0 then c
        else
          match attempt c (drop_node c v) with
          | Some c' -> go c' (Int.min (v - 1) (c'.Case.nodes - 1))
          | None -> go c (v - 1)
      in
      go c (c.Case.nodes - 1)
    in
    (* 6. scalar knobs toward 1 *)
    let scalar c get set =
      List.fold_left
        (fun c target ->
          if get c <= target then c
          else match attempt c (set c target) with Some c' -> c' | None -> c)
        c [ 1; 2; 5 ]
    in
    let c = scalar c (fun (c : Case.t) -> c.count) (fun c v -> { c with Case.count = v }) in
    let c = scalar c (fun (c : Case.t) -> c.k) (fun c v -> { c with Case.k = v }) in
    let c = scalar c (fun (c : Case.t) -> c.f) (fun c v -> { c with Case.f = v }) in
    c
  in
  let rec fix c =
    let c' = pass c in
    if c' = c || !tries >= budget then c' else fix c'
  in
  fix case
