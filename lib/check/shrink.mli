(** Greedy structural case minimization (DESIGN.md §18).

    Classic delta-debugging flavour: repeatedly try structurally smaller
    candidates, keep any candidate that is still {!Case.valid} and still
    fails the oracle, stop at a fixpoint or when the oracle-invocation
    budget runs out. Passes, in order:

    - drop event chunks (halving chunk sizes — suffixes go first, which
      preserves per-link fail/recover alternation);
    - drop all events of one physical link at a time;
    - drop demand chunks (at least one demand always survives);
    - drop one physical link (both directions) at a time — candidates
      that disconnect the graph are rejected by {!Case.valid};
    - drop one node at a time, renumbering ids and dropping the links,
      demands and events that referenced it;
    - shrink the scalar knobs [count], [k], [f] toward 1.

    Every candidate is checked with the same oracle the case failed, so
    the minimized case is failing by construction. *)

(** [minimize ~fails case] assumes [fails case = true] and returns a
    smaller (or equal) case for which [fails] still holds. [budget]
    (default 300) caps the number of [fails] invocations. *)
val minimize : ?budget:int -> fails:(Case.t -> bool) -> Case.t -> Case.t
