module G = R3_net.Graph
module Routing = R3_net.Routing
module Spf = R3_net.Spf
module Prng = R3_util.Prng
module Metrics = R3_util.Metrics
module Stats = R3_util.Stats
module Codec = R3_util.Codec
module Reconfig = R3_core.Reconfig
module Scenario = R3_core.Scenario
module Offline = R3_core.Offline
module Online = R3_sim.Online
module Scenarios = R3_sim.Scenarios

exception Failed of string

let failf fmt = Printf.ksprintf (fun s -> raise (Failed s)) fmt

type t = { name : string; doc : string; check : Case.t -> unit }

let run o case =
  match o.check case with
  | () -> Ok ()
  | exception Failed msg -> Error msg
  | exception exn -> Error ("uncaught " ^ Printexc.to_string exn)

(* ---- shared fixtures ---- *)

let ospf_base ?(backend = Routing.Backend.Dense) g pairs =
  R3_net.Ospf.routing g ~backend ~weights:(R3_net.Ospf.unit_weights g) ~pairs ()

(* The SPF detour around each link, or the self row when the failure
   disconnects — the same synthetic protection shape as the reconfig
   bench and the substrate tests. Cheap (no LP), valid for (8)-(10). *)
let synthetic_protection g ~backend =
  let weights = R3_net.Ospf.unit_weights g in
  let m = G.num_links g in
  let p =
    Routing.create ~backend g
      ~pairs:(Array.init m (fun e -> (G.src g e, G.dst g e)))
  in
  for l = 0 to m - 1 do
    let failed = G.fail_links g [ l ] in
    match
      Spf.shortest_path g ~failed ~weights ~src:(G.src g l) ~dst:(G.dst g l) ()
    with
    | Some path -> List.iter (fun e -> Routing.set p l e 1.0) path
    | None -> Routing.set p l l 1.0
  done;
  p

let make_root ?(backend = Routing.Backend.Dense) case =
  let g = Case.graph case in
  let pairs, demands = Case.commodities case in
  ( g,
    Reconfig.make g ~pairs ~demands
      ~base:(ospf_base ~backend g pairs)
      ~protection:(synthetic_protection g ~backend) )

(* Net effect of a schedule: the physical links still down at the end. *)
let final_physical sched =
  let down = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev.Online.kind with
      | Online.Fail -> Hashtbl.replace down ev.Online.link ()
      | Online.Recover -> Hashtbl.remove down ev.Online.link)
    sched;
  Hashtbl.fold (fun e () acc -> e :: acc) down []

let with_temp ext f =
  let path = Filename.temp_file "r3check" ext in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* C(n, k) in O(k) multiplications — exact for every space the sampling
   oracle meets (the magnitudes stay far below 2^53). *)
let binom n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = Int.min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

(* ---- 1. LP backend agreement ---- *)

let lp_agree =
  let check (case : Case.t) =
    let g = Case.graph case in
    let tm = Case.traffic case in
    let pairs, _ = Case.commodities case in
    let base = ospf_base g pairs in
    let solve lp =
      let cfg =
        Offline.default_config ~f:case.f
        |> Offline.with_core R3_core.Config.(default |> with_lp_backend lp)
      in
      let cfg = { cfg with Offline.solve_method = Offline.Constraint_gen } in
      Offline.compute cfg g tm (Offline.Fixed base)
    in
    match
      List.map
        (fun b -> (R3_lp.Problem.backend_name b, solve b))
        [ `Dense; `Sparse; `Revised ]
    with
    | [] -> ()
    | (ref_name, ref_r) :: rest ->
      List.iter
        (fun (name, r) ->
          match (ref_r, r) with
          | Ok p0, Ok p ->
            let m0 = p0.Offline.mlu and m = p.Offline.mlu in
            let tol = 1e-6 *. Float.max 1.0 (Float.max (Float.abs m0) (Float.abs m)) in
            if Float.abs (m0 -. m) > tol then
              failf "backend %s found MLU* %.12g, %s found %.12g" name m
                ref_name m0
          | Error _, Error _ -> ()
          | Ok _, Error e ->
            failf "backend %s failed (%s) while %s solved" name e ref_name
          | Error e, Ok _ ->
            failf "backend %s failed (%s) while %s solved" ref_name e name)
        rest
  in
  {
    name = "lp-agree";
    doc = "dense/tableau/revised simplex agree on constraint-generation plans";
    check;
  }

(* ---- 2. routing storage backend bit-identity ---- *)

let routing_identity =
  let check (case : Case.t) =
    let g = Case.graph case in
    let pairs, demands = Case.commodities case in
    let make b =
      Reconfig.make g ~pairs ~demands
        ~base:(ospf_base ~backend:b g pairs)
        ~protection:(synthetic_protection g ~backend:b)
    in
    let states =
      ref (List.map make Routing.Backend.[ Dense; Sparse; Auto ])
    in
    let rng = Prng.create case.sub_seed in
    let phys = Scenarios.physical_links g in
    for round = 1 to 8 do
      let n = Int.min (1 + Prng.int rng 2) (Array.length phys) in
      let picks = Array.to_list (Prng.sample rng n phys) in
      let sc = Scenario.of_links g picks in
      let op = Prng.bool rng 0.6 in
      states :=
        List.map
          (fun st -> if op then Reconfig.fail st sc else Reconfig.recover st sc)
          !states;
      match !states with
      | dense :: others ->
        List.iteri
          (fun i st ->
            if not (Reconfig.states_bit_identical dense st) then
              failf "round %d: %s backend diverged from Dense" round
                (if i = 0 then "Sparse" else "Auto"))
          others
      | [] -> ()
    done
  in
  {
    name = "routing-backend-identity";
    doc = "Dense/Sparse/Auto routing storage is bit-identical under folding";
    check;
  }

(* ---- 3. order independence (Theorem 3) ---- *)

let reorder_independence =
  let check (case : Case.t) =
    let g, root = make_root case in
    let sched = Case.schedule case g in
    let stepped =
      List.fold_left
        (fun st ev ->
          let sc = Scenario.of_links g [ ev.Online.link ] in
          match ev.Online.kind with
          | Online.Fail -> Reconfig.fail st sc
          | Online.Recover -> Reconfig.recover st sc)
        root sched
    in
    let final = final_physical sched in
    let batch = Reconfig.fail root (Scenario.of_links g final) in
    if not (Reconfig.states_bit_identical stepped batch) then
      failf
        "sequential fail/recover folds differ from the canonical batch state";
    let reversed =
      List.fold_left
        (fun st e -> Reconfig.fail st (Scenario.of_links g [ e ]))
        root
        (List.rev (List.sort compare final))
    in
    if not (Reconfig.states_bit_identical reversed batch) then
      failf "failing the same links in reverse order diverged (Theorem 3)";
    let pristine = Reconfig.recover stepped (Scenario.of_links g final) in
    if not (Reconfig.states_bit_identical pristine root) then
      failf "recovering every failed link did not restore the pristine state"
  in
  {
    name = "reorder-independence";
    doc = "fold order never matters and full recovery is pristine (Theorem 3)";
    check;
  }

(* ---- 4. online runtime vs batch fold ---- *)

let online_vs_batch =
  let check (case : Case.t) =
    let g, root = make_root case in
    let sched = Case.schedule case g in
    let faulty = Online.Channel.faulty Online.Channel.default_faults in
    let o = Online.run ~channel:faulty ~seed:case.sub_seed root sched in
    if not o.Online.order_independent then
      failf "a router's terminal view differs from the batch state";
    let batch = Reconfig.fail root (Scenario.of_links g (final_physical sched)) in
    if not (Reconfig.states_bit_identical o.Online.terminal batch) then
      failf "faulty-channel terminal state differs from the batch fold";
    let ideal = Online.run ~seed:case.sub_seed root sched in
    if not (Reconfig.states_bit_identical ideal.Online.terminal o.Online.terminal)
    then failf "ideal and faulty channels reached different terminal states"
  in
  {
    name = "online-vs-batch";
    doc = "online runtime over a faulty channel matches the batch fold";
    check;
  }

(* ---- 5. checkpoint pause/resume and corruption rejection ---- *)

let checkpoint_resume =
  let check (case : Case.t) =
    let g, root = make_root case in
    let sched = Case.schedule case g in
    let channel = Online.Channel.faulty Online.Channel.default_faults in
    let seed = case.sub_seed in
    let full = Online.run ~channel ~seed root sched in
    let nd = full.Online.stats.Online.deliveries in
    if nd >= 2 then begin
      match Online.run_to ~channel ~seed ~stop_after:(nd / 2) root sched with
      | `Done _ ->
        failf "stop_after %d of %d deliveries did not pause" (nd / 2) nd
      | `Paused ck ->
        with_temp ".ck" (fun path ->
            Online.Checkpoint.save path ck;
            (match Online.Checkpoint.load path with
            | Error e -> failf "checkpoint reload failed: %s" e
            | Ok ck' -> (
              match Online.run_to ~channel ~seed ~resume:ck' root sched with
              | `Paused _ -> failf "resume without stop_after paused again"
              | `Done o ->
                if
                  not
                    (Reconfig.states_bit_identical o.Online.terminal
                       full.Online.terminal)
                then failf "resumed run's terminal state differs";
                if not o.Online.order_independent then
                  failf "resumed run lost order independence"));
            (* Injected corruption must surface as [Error], never as a
               clean load of wrong state and never as an exception. *)
            let bytes = read_bytes path in
            let n = String.length bytes in
            let rng = Prng.create (seed lxor 0x5bd1e995) in
            let expect_reject what =
              match Online.Checkpoint.load path with
              | Error _ -> ()
              | Ok _ -> failf "%s checkpoint loaded cleanly" what
              | exception exn ->
                failf "%s checkpoint raised %s instead of returning Error"
                  what (Printexc.to_string exn)
            in
            let i = Prng.int rng n in
            let b = Bytes.of_string bytes in
            Bytes.set b i
              (Char.chr (Char.code bytes.[i] lxor (1 + Prng.int rng 255)));
            write_bytes path (Bytes.to_string b);
            expect_reject "byte-flipped";
            write_bytes path (String.sub bytes 0 (Prng.int rng n));
            expect_reject "truncated")
    end
  in
  {
    name = "checkpoint-resume";
    doc = "pause/resume is lossless; corrupt checkpoints are rejected";
    check;
  }

(* ---- 6. plan store round-trip and corruption rejection ---- *)

let plan_store =
  let check (case : Case.t) =
    let g = Case.graph case in
    let pairs, demands = Case.commodities case in
    let base = ospf_base g pairs in
    let protection =
      synthetic_protection g ~backend:Routing.Backend.Sparse
    in
    let loads = Routing.loads g ~demands base in
    let plan =
      {
        Offline.graph = g;
        f = case.f;
        pairs;
        demands;
        base;
        protection;
        mlu = Routing.mlu g ~loads;
        lp_vars = 0;
        lp_rows = 0;
        lp_pivots = 0;
      }
    in
    with_temp ".plan" (fun path ->
        R3_core.Plan_store.save path plan;
        (match R3_core.Plan_store.load ~expect_graph:g path with
        | Error e -> failf "snapshot reload failed: %s" e
        | Ok (p, _cfg) ->
          let bits_equal a b =
            let da = Routing.to_dense_matrix a
            and db = Routing.to_dense_matrix b in
            Array.length da = Array.length db
            && Array.for_all2
                 (fun ra rb ->
                   Array.length ra = Array.length rb
                   && Array.for_all2
                        (fun x y ->
                          Int64.equal (Int64.bits_of_float x)
                            (Int64.bits_of_float y))
                        ra rb)
                 da db
          in
          if p.Offline.pairs <> pairs then failf "commodities changed";
          if
            not
              (Array.for_all2
                 (fun x y ->
                   Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
                 p.Offline.demands demands)
          then failf "demands not bit-identical after reload";
          if not (bits_equal p.Offline.base base) then
            failf "base routing not bit-identical after reload";
          if not (bits_equal p.Offline.protection protection) then
            failf "protection routing not bit-identical after reload";
          if
            not
              (Int64.equal
                 (Int64.bits_of_float p.Offline.mlu)
                 (Int64.bits_of_float plan.Offline.mlu))
          then failf "MLU not bit-identical after reload");
        let bytes = read_bytes path in
        let n = String.length bytes in
        let rng = Prng.create (case.sub_seed lxor 0x2545f491) in
        let expect_reject what =
          match R3_core.Plan_store.load path with
          | Error _ -> ()
          | Ok _ -> failf "%s snapshot loaded cleanly" what
          | exception exn ->
            failf "%s snapshot raised %s instead of returning Error" what
              (Printexc.to_string exn)
        in
        write_bytes path (String.sub bytes 0 (Prng.int rng n));
        expect_reject "truncated";
        let i = Prng.int rng n in
        let b = Bytes.of_string bytes in
        Bytes.set b i
          (Char.chr (Char.code bytes.[i] lxor (1 + Prng.int rng 255)));
        write_bytes path (Bytes.to_string b);
        expect_reject "byte-flipped")
  in
  {
    name = "plan-store-roundtrip";
    doc = "plan snapshots round-trip bit-identically; corruption loads Error";
    check;
  }

(* ---- 7. codec round-trip and truncation robustness ---- *)

let codec =
  let module W = Codec.W in
  let module R = Codec.R in
  let check (case : Case.t) =
    let rng = Prng.create case.sub_seed in
    let ints =
      Array.init (Prng.int rng 40) (fun _ -> Prng.bits rng - Prng.bits rng)
    in
    let floats =
      Array.init (Prng.int rng 40) (fun _ ->
          match Prng.int rng 8 with
          | 0 -> Float.nan
          | 1 -> Float.infinity
          | 2 -> Float.neg_infinity
          | 3 -> -0.0
          | 4 -> 0x1p-1074 *. float_of_int (1 + Prng.int rng 5)
          | _ ->
            Prng.gaussian rng *. Float.exp (float_of_int (Prng.int rng 40) -. 20.0))
    in
    let str =
      String.init (Prng.int rng 60) (fun _ -> Char.chr (Prng.int rng 256))
    in
    let w = W.create () in
    W.int_array w ints;
    W.float_array w floats;
    W.string w str;
    W.bool w true;
    W.u8 w (Prng.int rng 256);
    let payload = W.contents w in
    let decode s =
      let r = R.of_string s in
      let ints' = R.int_array r in
      let floats' = R.float_array r in
      let str' = R.string r in
      let b = R.bool r in
      let u = R.u8 r in
      R.expect_end r;
      (ints', floats', str', b, u)
    in
    let ints', floats', str', b, _ = decode payload in
    if ints' <> ints then failf "int array did not round-trip";
    if
      not
        (Array.length floats' = Array.length floats
        && Array.for_all2
             (fun x y ->
               Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
             floats' floats)
    then failf "float array did not round-trip bit-exactly";
    if str' <> str then failf "string did not round-trip";
    if not b then failf "bool did not round-trip";
    (* Truncated payloads must raise Corrupt from some accessor — no
       silent misread, no other exception. *)
    let cut = Prng.int rng (String.length payload) in
    (match decode (String.sub payload 0 cut) with
    | _ -> failf "payload truncated at %d bytes decoded cleanly" cut
    | exception R.Corrupt _ -> ()
    | exception exn ->
      failf "truncated payload raised %s instead of Corrupt"
        (Printexc.to_string exn));
    with_temp ".frame" (fun path ->
        let magic = "R3FUZZCK" in
        Codec.write_framed path ~magic ~version:1 payload;
        (match Codec.read_framed path ~magic ~version:1 with
        | Ok p when p = payload -> ()
        | Ok _ -> failf "framed payload changed through the round-trip"
        | Error e -> failf "framed reload failed: %s" e);
        (match Codec.read_framed path ~magic:"WRONGMGC" ~version:1 with
        | Error _ -> ()
        | Ok _ -> failf "wrong magic accepted");
        (match Codec.read_framed path ~magic ~version:2 with
        | Error _ -> ()
        | Ok _ -> failf "wrong version accepted");
        let bytes = read_bytes path in
        let i = Prng.int rng (String.length bytes) in
        let b = Bytes.of_string bytes in
        Bytes.set b i
          (Char.chr (Char.code bytes.[i] lxor (1 + Prng.int rng 255)));
        write_bytes path (Bytes.to_string b);
        match Codec.read_framed path ~magic ~version:1 with
        | Error _ -> ()
        | Ok _ -> failf "byte-flipped frame accepted")
  in
  {
    name = "codec-robustness";
    doc = "binary codec round-trips bit-exactly and rejects truncation";
    check;
  }

(* ---- 8. Theorems 1-2 as executable properties ---- *)

let theorems =
  let check (case : Case.t) =
    let g = Case.graph case in
    let tm = Case.traffic case in
    let pairs, _ = Case.commodities case in
    let base = ospf_base g pairs in
    let cfg =
      {
        (Offline.default_config ~f:1) with
        Offline.solve_method = Offline.Constraint_gen;
      }
    in
    (* Single-physical-event envelope, as bidirectional SRLGs: higher
       budgets are routinely infeasible on these sparse random graphs
       (degree-2 nodes), which would make the oracle vacuous. *)
    let srlgs =
      Array.to_list (Scenarios.physical_links g)
      |> List.map (fun e ->
             match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])
    in
    match
      R3_core.Structured.compute cfg g tm
        { R3_core.Structured.srlgs; mlgs = []; k = 1 }
        (Offline.Fixed base)
    with
    | Error _ -> () (* envelope infeasible: the theorems claim nothing *)
    | Ok plan ->
      if plan.Offline.mlu <= 1.0 then begin
        let root = Reconfig.of_plan plan in
        Scenarios.enumerate g ~k:1
        |> List.iter (fun sc ->
               let st = Reconfig.fail root sc in
               let failed = G.fail_links g (Scenario.links sc) in
               let mlu = Reconfig.mlu st in
               (* Theorem 2: reconfiguration keeps MLU within the plan's
                  congestion-free bound. *)
               if mlu > 1.0 +. 1e-6 then
                 failf "scenario %s: reconfigured MLU %.9f > 1 (Theorem 2)"
                   (Scenario.describe g sc) mlu;
               (* Theorem 1: no traffic crosses a failed link. (Strict
                  R1-R4 validity is NOT guaranteed here — rescaling (9)
                  may route a detour through another commodity's source,
                  which is the loop the paper's loop_penalty discounts —
                  so the oracle checks exactly what the theorem claims.) *)
               for kc = 0 to Routing.num_commodities st.Reconfig.base - 1 do
                 Routing.iter_row st.Reconfig.base kc (fun e x ->
                     if failed.(e) && x > 1e-9 then
                       failf
                         "scenario %s: commodity %d keeps %g on failed link \
                          %d (Theorem 1)"
                         (Scenario.describe g sc) kc x e)
               done;
               if G.strongly_connected g ~failed () then begin
                 let df = Reconfig.delivered_fraction st in
                 if df < 1.0 -. 1e-6 then
                   failf
                     "scenario %s: delivered fraction %.9f < 1 on a \
                      connected survivor (Theorem 1)"
                     (Scenario.describe g sc) df
               end)
      end
  in
  {
    name = "theorem-congestion-free";
    doc = "congestion-free plans stay congestion-free after failures (Thm 1-2)";
    check;
  }

(* ---- 9. scenario sampling contract ---- *)

let scenario_sampling =
  let check (case : Case.t) =
    let g = Case.graph case in
    let phys = Scenarios.physical_links g in
    let n = Array.length phys in
    let k = case.k in
    if k <= n then begin
      let total = binom n k in
      let expected =
        if total >= float_of_int max_int then case.count
        else Int.min case.count (int_of_float total)
      in
      let before = Metrics.counter_value "sim.scenarios.sample_shortfall" in
      let got = Scenarios.sample g ~k ~count:case.count ~seed:case.sub_seed in
      let after = Metrics.counter_value "sim.scenarios.sample_shortfall" in
      let len = List.length got in
      if len > expected then
        failf "sample returned %d scenarios > min(count=%d, C(%d,%d)=%.0f)"
          len case.count n k total;
      let shortfall = after - before in
      if len + shortfall <> expected then
        failf
          "sample returned %d of %d scenarios with shortfall metric %d — %d \
           missing scenarios went unrecorded"
          len expected shortfall
          (expected - len - shortfall);
      let seen = Hashtbl.create 64 in
      List.iter
        (fun sc ->
          if Scenario.size sc <> k then
            failf "scenario %s fails %d physical links, wanted %d"
              (Scenario.key sc) (Scenario.size sc) k;
          let key = Scenario.key sc in
          if Hashtbl.mem seen key then failf "duplicate scenario %s" key;
          Hashtbl.add seen key ())
        got;
      let again = Scenarios.sample g ~k ~count:case.count ~seed:case.sub_seed in
      if not (List.equal Scenario.equal got again) then
        failf "sample is not deterministic in its seed";
      if total <= 3000.0 then begin
        let all = Scenarios.enumerate g ~k in
        if List.length all <> int_of_float total then
          failf "enumerate found %d scenarios, C(%d,%d) = %.0f"
            (List.length all) n k total
      end
    end
  in
  {
    name = "scenario-sampling";
    doc = "Scenarios.sample honours size, distinctness and the shortfall metric";
    check;
  }

(* ---- 10. Stats / Prng contracts ---- *)

let stats_prng =
  let check (case : Case.t) =
    let rng = Prng.create case.sub_seed in
    let expect_invalid name f =
      match f () with
      | _ -> failf "%s did not raise Invalid_argument" name
      | exception Invalid_argument _ -> ()
    in
    expect_invalid "Stats.mean [||]" (fun () -> Stats.mean [||]);
    expect_invalid "Stats.stddev [||]" (fun () -> Stats.stddev [||]);
    expect_invalid "Stats.min [||]" (fun () -> Stats.min [||]);
    expect_invalid "Stats.max [||]" (fun () -> Stats.max [||]);
    expect_invalid "Stats.mean [nan]" (fun () ->
        Stats.mean [| 1.0; Float.nan |]);
    expect_invalid "Stats.stddev [nan]" (fun () ->
        Stats.stddev [| Float.nan; 1.0 |]);
    let n = 1 + Prng.int rng 60 in
    let xs = Array.init n (fun _ -> Prng.uniform rng (-50.0) 50.0) in
    let mu = Stats.mean xs in
    if not (Stats.min xs -. 1e-9 <= mu && mu <= Stats.max xs +. 1e-9) then
      failf "mean %.9g outside [min, max]" mu;
    let sd = Stats.stddev xs in
    if sd < 0.0 || Float.is_nan sd then failf "stddev %.9g negative or NaN" sd;
    if n = 1 && sd <> 0.0 then failf "stddev of a single sample is %.9g" sd;
    if Stats.percentile 0.0 xs <> Stats.min xs then
      failf "percentile 0 differs from min";
    if Stats.percentile 100.0 xs <> Stats.max xs then
      failf "percentile 100 differs from max";
    let bins = 1 + Prng.int rng 8 in
    let h = Stats.histogram ~bins ~lo:(-10.0) ~hi:10.0 xs in
    if Array.fold_left ( + ) 0 h <> n then
      failf "histogram counts sum to %d, not %d (out-of-range samples lost)"
        (Array.fold_left ( + ) 0 h)
        n;
    let hd = Stats.histogram ~bins ~lo:5.0 ~hi:5.0 xs in
    if hd.(0) <> n then
      failf "degenerate-range histogram put %d of %d samples in bucket 0"
        hd.(0) n;
    (* Prng: determinism across copy, permutation property, distinctness. *)
    let arr = Array.init (4 + Prng.int rng 12) (fun i -> i) in
    let sorted x =
      let c = Array.copy x in
      Array.sort compare c;
      c
    in
    let a = Prng.copy rng and b = Prng.copy rng in
    let sa = Prng.sample a (Array.length arr) arr in
    let sb = Prng.sample b (Array.length arr) arr in
    if sa <> sb then failf "Prng.sample diverged between copied generators";
    if sorted sa <> sorted arr then failf "Prng.sample k=n is not a permutation";
    let ca = Array.copy arr and cb = Array.copy arr in
    let a = Prng.copy rng and b = Prng.copy rng in
    Prng.shuffle a ca;
    Prng.shuffle b cb;
    if ca <> cb then failf "Prng.shuffle diverged between copied generators";
    if sorted ca <> sorted arr then failf "Prng.shuffle is not a permutation";
    let kk = 1 + Prng.int rng (Array.length arr) in
    let s = Prng.sample rng kk arr in
    if Array.length s <> kk then
      failf "Prng.sample returned %d of %d elements" (Array.length s) kk;
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        if Hashtbl.mem seen v then failf "Prng.sample drew a duplicate"
        else Hashtbl.add seen v ())
      s
  in
  {
    name = "stats-prng-contracts";
    doc = "Stats aggregates and Prng sampling honour their documented contracts";
    check;
  }

let all =
  [
    lp_agree;
    routing_identity;
    reorder_independence;
    online_vs_batch;
    checkpoint_resume;
    plan_store;
    codec;
    theorems;
    scenario_sampling;
    stats_prng;
  ]

let names = List.map (fun o -> o.name) all
let find name = List.find_opt (fun o -> o.name = name) all
