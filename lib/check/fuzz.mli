(** The differential fuzz loop behind [r3 fuzz] (DESIGN.md §18).

    One master SplitMix64 seed drives everything: each case gets its own
    seed from the master stream ({!R3_util.Prng.bits}) and an oracle
    round-robin from the {!Oracle.all} registration order, so [--cases N
    --seed S] is one reproducible experiment and any single failing case
    is reproducible from the one-line replay command the runner prints.

    On a failing case the runner greedily shrinks it ({!Shrink.minimize}
    re-running the same oracle), writes the minimized case to the corpus
    directory as [<oracle>-<digest>.json], and reports the failure; it
    never stops early, so one run reports every failing (oracle, case)
    pair it met. {!replay} runs corpus files (or one file) back through
    their recorded oracles and expects every one to PASS — a committed
    corpus entry documents a fixed bug, and replaying it red means the
    bug came back. *)

type failure = {
  oracle : string;
  case_seed : int;  (** regenerate with [Gen.case ~oracle ~seed:case_seed] *)
  message : string;
  shrunk : Case.t;
  corpus_path : string option;  (** where the minimized case was written *)
}

type report = { cases : int; failures : failure list }

(** ["test/corpus"] — where [r3 fuzz] writes minimized failures and
    [dune runtest] replays them from. *)
val default_corpus_dir : string

(** [run ~cases ~seed ()] fuzzes [cases] generated cases. [oracle]
    restricts the round-robin to one registry entry ([Error] on an
    unknown name); [corpus_dir] (default {!default_corpus_dir}) receives
    minimized failing cases; [shrink_budget] caps oracle invocations per
    shrink; [log] receives human-readable progress/failure lines. *)
val run :
  ?oracle:string ->
  ?corpus_dir:string ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  cases:int ->
  seed:int ->
  unit ->
  (report, string) result

(** Regenerate one case from its replay seed and run its oracle. *)
val replay_seed :
  ?log:(string -> unit) ->
  oracle:string ->
  seed:int ->
  unit ->
  (unit, string) result

type replay_outcome = {
  replayed : int;  (** corpus cases that ran and passed *)
  problems : string list;  (** unreadable cases, unknown oracles, failures *)
}

(** [replay path] replays one [.json] case file, or every [*.json] under
    a directory (sorted, for stable output). A missing directory is an
    error; an existing empty one replays zero cases cleanly. *)
val replay : ?log:(string -> unit) -> string -> replay_outcome
