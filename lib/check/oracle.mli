(** The differential-fuzz oracle registry (DESIGN.md §18).

    An oracle is an executable cross-check: it derives every input it
    needs from a {!Case.t} (topology, demands, schedule, [sub_seed] for
    oracle-internal randomness) and checks one equivalence or theorem the
    codebase promises:

    - the three LP backends agree on constraint-generation plans;
    - the Dense/Sparse/Auto routing backends stay bit-identical under
      random failure folding;
    - sequential fail/recover folds land on the canonical batch state and
      recovery restores the pristine plan (Theorem 3);
    - the online runtime over a fault-injected channel reaches the same
      terminal state as the batch fold, on every channel;
    - checkpoint pause/resume is lossless and corrupted checkpoints are
      rejected, never misread;
    - plan-store snapshots round-trip bit-identically and truncated or
      bit-flipped snapshots load as [Error];
    - the binary codec round-trips awkward floats and raises [Corrupt]
      (nothing else) on truncation;
    - a congestion-free plan stays congestion-free after reconfiguration
      under every single-event scenario (Theorems 1–2);
    - {!R3_sim.Scenarios.sample} honours its size/distinctness/shortfall
      contract;
    - {!R3_util.Stats} and {!R3_util.Prng} honour their documented
      contracts.

    Oracles are deterministic in the case: the fuzz runner and the corpus
    replay both call {!run} and expect the same verdict. *)

type t = {
  name : string;  (** stable kebab-case registry key (corpus files use it) *)
  doc : string;  (** one-line description for [r3 fuzz --list] *)
  check : Case.t -> unit;  (** raises {!Failed} (or anything) on violation *)
}

(** Raised by oracle bodies on a violated property. *)
exception Failed of string

(** [run o case] is [Ok ()] or [Error message]; any exception the check
    raises (including {!Failed}) becomes [Error] — the runner never dies
    on a misbehaving oracle. *)
val run : t -> Case.t -> (unit, string) result

(** Registration order is the round-robin order of the fuzz loop. *)
val all : t list

val names : string list
val find : string -> t option
