(** A self-contained differential-fuzz case (DESIGN.md §18).

    One record carries every ingredient an {!Oracle} can need: a directed
    topology (always symmetric — each physical link is stored as both
    directions, so connected implies strongly connected), a demand set, a
    protection budget, a timestamped failure/recovery schedule, and the
    knobs of the sampling and statistics oracles. Everything is spelled
    out by value — {e not} by generator seed — so a case survives
    shrinking (which edits the structure directly) and the committed
    corpus under [test/corpus/] stays replayable after any generator
    change.

    Demands and schedule events reference links by {e endpoints}, not by
    link id: shrinking renumbers ids when it drops nodes or links, and
    endpoint references survive that (entries whose endpoints no longer
    exist are dropped by the shrinker, never silently misresolved).

    Serialization is human-readable JSON via {!R3_util.Json} (floats
    round-trip bit-exactly), one case per corpus file. *)

type event = {
  at_ms : float;
  a : int;  (** physical link endpoints (either direction) *)
  b : int;
  fail : bool;  (** [false] = recovery *)
}

type t = {
  oracle : string;  (** registry name of the oracle this case targets *)
  seed : int;  (** generator seed it was derived from (provenance only) *)
  sub_seed : int;  (** oracle-internal randomness (folds, faults, bytes) *)
  nodes : int;
  links : (int * int * float * float) array;
      (** directed [(src, dst, capacity, delay_ms)], closed under
          reversal *)
  demands : (int * int * float) array;  (** [(src, dst, volume)] *)
  f : int;  (** protection budget *)
  k : int;  (** physical failures per scenario (sampling oracle) *)
  count : int;  (** requested sample size (sampling oracle) *)
  events : event list;  (** chronological failure/recovery schedule *)
}

(** Build the graph. Raises [Invalid_argument] on a malformed link table
    (the shrinker treats that as an invalid candidate). *)
val graph : t -> R3_net.Graph.t

(** The demand triples as a traffic matrix over {!graph}'s nodes. *)
val traffic : t -> R3_net.Traffic.t

(** The commodity view of {!traffic} ([pairs], [demands]). *)
val commodities : t -> (int * int) array * float array

(** Resolve the schedule against a graph: each event becomes an
    {!R3_sim.Online.event} on the physical representative of the (a, b)
    link. Events whose endpoints have no surviving link are dropped. *)
val schedule : t -> R3_net.Graph.t -> R3_sim.Online.event list

(** Structural sanity: the link table builds, the graph is strongly
    connected, at least one demand references valid distinct nodes, and
    [f], [k], [count] are positive. Oracles may assume this; the shrinker
    discards candidates that violate it. *)
val valid : t -> bool

(** Stable content digest (hex, 8 chars) used for corpus file names. *)
val digest : t -> string

val to_json : t -> R3_util.Json.t

(** Inverse of {!to_json}; [Error] on a malformed document. *)
val of_json : R3_util.Json.t -> (t, string) result

(** Write / read one case as a pretty-printed JSON file. [load] returns
    [Error] (never raises) on unreadable, unparsable or invalid input. *)
val save : string -> t -> unit

val load : string -> (t, string) result
