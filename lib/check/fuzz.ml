module Prng = R3_util.Prng

type failure = {
  oracle : string;
  case_seed : int;
  message : string;
  shrunk : Case.t;
  corpus_path : string option;
}

type report = { cases : int; failures : failure list }

let default_corpus_dir = "test/corpus"

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let case_summary (c : Case.t) =
  let phys = Hashtbl.create 16 in
  Array.iter
    (fun (a, b, _, _) -> Hashtbl.replace phys (Int.min a b, Int.max a b) ())
    c.links;
  Printf.sprintf "%d nodes, %d physical links, %d demands, %d events" c.nodes
    (Hashtbl.length phys) (Array.length c.demands) (List.length c.events)

let run ?oracle ?(corpus_dir = default_corpus_dir) ?(shrink_budget = 300)
    ?(log = ignore) ~cases ~seed () =
  let oracles =
    match oracle with
    | None -> Ok Oracle.all
    | Some name -> (
      match Oracle.find name with
      | Some o -> Ok [ o ]
      | None ->
        Error
          (Printf.sprintf "unknown oracle %S (known: %s)" name
             (String.concat ", " Oracle.names)))
  in
  match oracles with
  | Error _ as e -> e
  | Ok oracles ->
    let n_oracles = List.length oracles in
    let master = Prng.create seed in
    let failures = ref [] in
    for i = 0 to cases - 1 do
      let o = List.nth oracles (i mod n_oracles) in
      let case_seed = Prng.bits master in
      let case = Gen.case ~oracle:o.Oracle.name ~seed:case_seed in
      match Oracle.run o case with
      | Ok () -> ()
      | Error message ->
        log
          (Printf.sprintf "FAIL %s (case %d/%d): %s" o.Oracle.name (i + 1)
             cases message);
        log
          (Printf.sprintf "  replay: r3 fuzz --oracle %s --replay-seed %d"
             o.Oracle.name case_seed);
        let fails c =
          match Oracle.run o c with Error _ -> true | Ok () -> false
        in
        let shrunk = Shrink.minimize ~budget:shrink_budget ~fails case in
        let corpus_path =
          let path =
            Filename.concat corpus_dir
              (Printf.sprintf "%s-%s.json" o.Oracle.name (Case.digest shrunk))
          in
          match
            mkdirs corpus_dir;
            Case.save path shrunk
          with
          | () -> Some path
          | exception Sys_error e ->
            log (Printf.sprintf "  (could not write corpus file: %s)" e);
            None
        in
        log
          (Printf.sprintf "  shrunk to %s%s" (case_summary shrunk)
             (match corpus_path with
             | Some p -> " -> " ^ p
             | None -> ""));
        failures :=
          { oracle = o.Oracle.name; case_seed; message; shrunk; corpus_path }
          :: !failures
    done;
    Ok { cases; failures = List.rev !failures }

let replay_seed ?(log = ignore) ~oracle ~seed () =
  match Oracle.find oracle with
  | None ->
    Error
      (Printf.sprintf "unknown oracle %S (known: %s)" oracle
         (String.concat ", " Oracle.names))
  | Some o -> (
    let case = Gen.case ~oracle ~seed in
    log (Printf.sprintf "replaying %s on seed %d: %s" oracle seed
           (case_summary case));
    match Oracle.run o case with
    | Ok () ->
      log "PASS";
      Ok ()
    | Error msg -> Error (Printf.sprintf "%s: %s" oracle msg))

type replay_outcome = { replayed : int; problems : string list }

let replay_file ~log path =
  match Case.load path with
  | Error msg -> Error msg
  | Ok case -> (
    match Oracle.find case.Case.oracle with
    | None ->
      Error
        (Printf.sprintf "%s: recorded oracle %S is not in the registry" path
           case.Case.oracle)
    | Some o -> (
      match Oracle.run o case with
      | Ok () ->
        log (Printf.sprintf "PASS %s (%s)" path o.Oracle.name);
        Ok ()
      | Error msg ->
        Error
          (Printf.sprintf
             "%s: oracle %s fails again — a fixed bug is back: %s" path
             o.Oracle.name msg)))

let replay ?(log = ignore) path =
  let files =
    if not (Sys.file_exists path) then Error (path ^ ": no such file or directory")
    else if Sys.is_directory path then
      Ok
        (Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort compare
        |> List.map (Filename.concat path))
    else Ok [ path ]
  in
  match files with
  | Error msg -> { replayed = 0; problems = [ msg ] }
  | Ok files ->
    List.fold_left
      (fun acc f ->
        match replay_file ~log f with
        | Ok () -> { acc with replayed = acc.replayed + 1 }
        | Error msg -> { acc with problems = acc.problems @ [ msg ] })
      { replayed = 0; problems = [] }
      files
