(** Seeded case generation for the differential fuzzer.

    Every structural choice — node count, topology shape, capacities,
    demand intensity, protection budget, schedule length, oracle-internal
    sub-seed — derives from one SplitMix64 seed through
    {!R3_util.Prng}, so a failing case is reproducible from the one-line
    replay seed the runner prints. Topologies come from
    {!R3_net.Topology.random} (spanning tree + extra links, symmetric
    capacities), so they are always strongly connected; schedules come
    from {!R3_sim.Online.generate}, so they respect the concurrency
    budget and never disconnect the surviving graph. *)

(** [case ~oracle ~seed] builds the deterministic case for a seed.
    The result satisfies {!Case.valid}. *)
val case : oracle:string -> seed:int -> Case.t
