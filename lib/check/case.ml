module G = R3_net.Graph
module J = R3_util.Json

type event = { at_ms : float; a : int; b : int; fail : bool }

type t = {
  oracle : string;
  seed : int;
  sub_seed : int;
  nodes : int;
  links : (int * int * float * float) array;
  demands : (int * int * float) array;
  f : int;
  k : int;
  count : int;
  events : event list;
}

let graph t =
  G.create
    ~node_names:(Array.init t.nodes (Printf.sprintf "n%d"))
    ~links:t.links

let traffic t =
  let tm = R3_net.Traffic.zeros t.nodes in
  Array.iter
    (fun (a, b, d) -> tm.(a).(b) <- tm.(a).(b) +. d)
    t.demands;
  tm

let commodities t = R3_net.Traffic.commodities (traffic t)

let schedule t g =
  List.filter_map
    (fun ev ->
      match G.find_link g ev.a ev.b with
      | None -> None
      | Some e ->
        let rep =
          match G.reverse_link g e with Some r -> Int.min e r | None -> e
        in
        Some
          {
            R3_sim.Online.at_ms = ev.at_ms;
            link = rep;
            kind = (if ev.fail then R3_sim.Online.Fail else R3_sim.Online.Recover);
          })
    t.events
  |> List.stable_sort (fun x y ->
         Float.compare x.R3_sim.Online.at_ms y.R3_sim.Online.at_ms)

let valid t =
  t.nodes >= 2 && t.f >= 1 && t.k >= 1 && t.count >= 1
  && Array.length t.links > 0
  &&
  match graph t with
  | exception Invalid_argument _ -> false
  | g ->
    G.strongly_connected g ()
    && Array.exists
         (fun (a, b, d) ->
           a <> b && a >= 0 && a < t.nodes && b >= 0 && b < t.nodes && d > 0.0)
         t.demands

let to_json t =
  J.Obj
    [
      ("format", J.Int 1);
      ("oracle", J.String t.oracle);
      ("seed", J.Int t.seed);
      ("sub_seed", J.Int t.sub_seed);
      ("nodes", J.Int t.nodes);
      ( "links",
        J.List
          (Array.to_list t.links
          |> List.map (fun (a, b, c, d) ->
                 J.List [ J.Int a; J.Int b; J.Float c; J.Float d ])) );
      ( "demands",
        J.List
          (Array.to_list t.demands
          |> List.map (fun (a, b, d) -> J.List [ J.Int a; J.Int b; J.Float d ]))
      );
      ("f", J.Int t.f);
      ("k", J.Int t.k);
      ("count", J.Int t.count);
      ( "events",
        J.List
          (List.map
             (fun ev ->
               J.List
                 [ J.Float ev.at_ms; J.Int ev.a; J.Int ev.b; J.Bool ev.fail ])
             t.events) );
    ]

let digest t =
  String.sub (Digest.to_hex (Digest.string (J.to_string (to_json t)))) 0 8

(* Tolerant numeric readers: the JSON layer parses "3" as Int and "3.5"
   as Float; corpus files may legitimately contain either for capacities
   and timestamps. *)
let num = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> failwith "expected number"

let int_ = function J.Int i -> i | _ -> failwith "expected int"

let field obj name =
  match List.assoc_opt name obj with
  | Some v -> v
  | None -> failwith ("missing field " ^ name)

let of_json doc =
  match doc with
  | J.Obj obj -> (
    try
      let links =
        match field obj "links" with
        | J.List l ->
          Array.of_list
            (List.map
               (function
                 | J.List [ a; b; c; d ] -> (int_ a, int_ b, num c, num d)
                 | _ -> failwith "malformed link entry")
               l)
        | _ -> failwith "links must be a list"
      in
      let demands =
        match field obj "demands" with
        | J.List l ->
          Array.of_list
            (List.map
               (function
                 | J.List [ a; b; d ] -> (int_ a, int_ b, num d)
                 | _ -> failwith "malformed demand entry")
               l)
        | _ -> failwith "demands must be a list"
      in
      let events =
        match field obj "events" with
        | J.List l ->
          List.map
            (function
              | J.List [ at; a; b; J.Bool fail ] ->
                { at_ms = num at; a = int_ a; b = int_ b; fail }
              | _ -> failwith "malformed event entry")
            l
        | _ -> failwith "events must be a list"
      in
      let oracle =
        match field obj "oracle" with
        | J.String s -> s
        | _ -> failwith "oracle must be a string"
      in
      Ok
        {
          oracle;
          seed = int_ (field obj "seed");
          sub_seed = int_ (field obj "sub_seed");
          nodes = int_ (field obj "nodes");
          links;
          demands;
          f = int_ (field obj "f");
          k = int_ (field obj "k");
          count = int_ (field obj "count");
          events;
        }
    with Failure msg -> Error ("case: " ^ msg))
  | _ -> Error "case: expected a JSON object"

let save path t = J.write_file path (to_json t)

let load path =
  match J.read_file path with
  | exception Sys_error msg -> Error msg
  | exception J.Parse_error msg -> Error (path ^ ": " ^ msg)
  | doc -> (
    match of_json doc with
    | Error msg -> Error (path ^ ": " ^ msg)
    | Ok t when not (valid t) -> Error (path ^ ": case fails validity checks")
    | Ok t -> Ok t)
