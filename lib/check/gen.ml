module G = R3_net.Graph
module Prng = R3_util.Prng

(* Small topologies on purpose: the oracles run LP solves and online
   replays per case, and shrinking converges fast when the starting point
   is already modest. Bug surface scales with structure diversity, not
   node count. *)
let case ~oracle ~seed =
  let rng = Prng.create seed in
  let nodes = 4 + Prng.int rng 6 in
  let max_undirected = nodes * (nodes - 1) / 2 in
  let undirected =
    Int.min max_undirected (nodes - 1 + 1 + Prng.int rng nodes)
  in
  let g =
    R3_net.Topology.random ~seed:(Prng.bits rng) ~nodes
      ~undirected_links:undirected
      ~capacities:[ (10.0, 0.4); (40.0, 0.4); (100.0, 0.2) ]
      ()
  in
  let links =
    Array.init (G.num_links g) (fun e ->
        (G.src g e, G.dst g e, G.capacity g e, G.delay g e))
  in
  let load_factor = 0.12 +. Prng.float rng 0.25 in
  let tm = R3_net.Traffic.gravity (Prng.split rng) g ~load_factor () in
  let pairs, volumes = R3_net.Traffic.commodities tm in
  (* Keep a random subset of commodities (at least one): sparse demand
     sets exercise the all-zero-row paths of the routing substrate. *)
  let keep = Array.map (fun _ -> Prng.bool rng 0.8) pairs in
  if not (Array.exists Fun.id keep) then keep.(0) <- true;
  let demands =
    Array.to_list pairs
    |> List.mapi (fun i (a, b) -> (i, a, b))
    |> List.filter_map (fun (i, a, b) ->
           if keep.(i) then Some (a, b, volumes.(i)) else None)
    |> Array.of_list
  in
  let f = 1 + Prng.int rng 2 in
  let n_events = 4 + Prng.int rng 12 in
  let events =
    R3_sim.Online.generate g ~seed:(Prng.bits rng) ~events:n_events
      ~max_concurrent:f ()
    |> List.map (fun ev ->
           {
             Case.at_ms = ev.R3_sim.Online.at_ms;
             a = G.src g ev.R3_sim.Online.link;
             b = G.dst g ev.R3_sim.Online.link;
             fail = ev.R3_sim.Online.kind = R3_sim.Online.Fail;
           })
  in
  let k = 1 + Prng.int rng 3 in
  let count = 1 + Prng.int rng 50 in
  let sub_seed = Prng.bits rng in
  {
    Case.oracle;
    seed;
    sub_seed;
    nodes;
    links;
    demands;
    f;
    k;
    count;
    events;
  }
