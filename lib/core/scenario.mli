(** Canonical failure scenarios.

    A scenario is a {e set} of physical (bidirectional) link failures. This
    module gives it an abstract canonical form — the ascending list of
    physical representatives, each paired with its reverse direction — so
    that equal scenarios are structurally equal however they were built,
    and so the sweep engine, the MCF cache, and the evaluation API all key
    on the same value instead of threading raw [Graph.link list]s around.

    Construction canonicalizes once: directed links are folded onto their
    physical representative (the lower id of a bidirectional pair),
    deduplicated, and sorted. The derived directed expansion lists, for
    each physical link in ascending order, the representative followed by
    its reverse — the exact order the legacy raw-list API produced, so
    evaluation over [links] is bit-compatible with it. *)

type t

(** Build from directed links; reverse directions and duplicates are
    folded onto the canonical physical set. *)
val of_links : R3_net.Graph.t -> R3_net.Graph.link list -> t

(** Synonym of {!of_links} for callers holding physical picks. *)
val of_physical : R3_net.Graph.t -> R3_net.Graph.link list -> t

(** The directed links down in this scenario (each physical failure
    contributes both directions), in canonical order. *)
val links : t -> R3_net.Graph.link list

(** The canonical physical representatives, ascending. *)
val physical : t -> R3_net.Graph.link list

(** Number of physical links failed. *)
val size : t -> int

val is_empty : t -> bool

(** Lexicographic on the canonical physical sets (prefixes sort first) —
    the DFS order of the sweep engine's scenario tree. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Mixes {e every} physical representative (unlike [Hashtbl.hash], which
    stops after ~10 values and collides all scenarios sharing a prefix). *)
val hash : t -> int

(** Stable textual key, e.g. ["3+7+12"] — the scenario part of the MCF
    cache's key scheme (see DESIGN.md §7). *)
val key : t -> string

(** Human-readable form using node names, for worst-case witnesses. *)
val describe : R3_net.Graph.t -> t -> string

module Tbl : Hashtbl.S with type key = t
