module P = R3_lp.Problem
module G = R3_net.Graph

type routing_vars = P.var option array array

let routing_vars lp g ~prefix ~pairs =
  let m = G.num_links g in
  Array.mapi
    (fun k (a, _) ->
      Array.init m (fun e ->
          if G.dst g e = a then None (* [R3]: no flow back into the origin *)
          else
            Some
              (P.var lp ~lb:0.0
                 (Printf.sprintf "%s%d_%d.%d" prefix k (G.src g e) (G.dst g e)))))
    pairs

let routing_constraints lp g ~pairs vars =
  let n = G.num_nodes g in
  Array.iteri
    (fun k (a, b) ->
      let row = vars.(k) in
      let term e = Option.map (fun v -> (1.0, v)) row.(e) in
      let neg_term e = Option.map (fun v -> (-1.0, v)) row.(e) in
      (* [R2]: the origin emits exactly one unit. *)
      let out_a = Array.to_list (G.out_links g a) |> List.filter_map term in
      P.constr lp ~name:(Printf.sprintf "emit_%d" k) out_a P.Eq 1.0;
      (* [R1]: conservation at every intermediate node. *)
      for v = 0 to n - 1 do
        if v <> a && v <> b then begin
          let outs = Array.to_list (G.out_links g v) |> List.filter_map term in
          let ins = Array.to_list (G.in_links g v) |> List.filter_map neg_term in
          P.constr lp ~name:(Printf.sprintf "cons_%d_%d" k v) (outs @ ins) P.Eq 0.0
        end
      done)
    pairs

let extract_routing ?backend sol g ~pairs vars =
  let t = R3_net.Routing.create ?backend g ~pairs in
  Array.iteri
    (fun k row ->
      Array.iteri
        (fun e v ->
          match v with
          | None -> ()
          | Some var ->
            (* Clamp solver noise into [0, 1]. *)
            let x = sol.P.value var in
            R3_net.Routing.set t k e (Float.max 0.0 (Float.min 1.0 x)))
        row)
    vars;
  t

let link_pairs g = Array.init (G.num_links g) (fun e -> (G.src g e, G.dst g e))

let add_loop_penalty lp penalty vars =
  if penalty > 0.0 then
    Array.iter
      (fun row ->
        Array.iter
          (function Some v -> P.add_objective_term lp penalty v | None -> ())
          row)
      vars

let penalize_self_protection lp g penalty p_vars =
  if penalty > 0.0 then begin
    let weight = penalty *. float_of_int (4 * G.num_nodes g) in
    Array.iteri
      (fun l row ->
        match row.(l) with
        | Some v -> P.add_objective_term lp weight v
        | None -> ())
      p_vars
  end

let penalize_virtual_concentration lp g weight p_vars =
  if weight > 0.0 then
    Array.iteri
      (fun l row ->
        Array.iteri
          (fun e v ->
            match v with
            | Some var ->
              P.add_objective_term lp
                (weight *. G.capacity g l /. G.capacity g e)
                var
            | None -> ())
          row)
      p_vars
