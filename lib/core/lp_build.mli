(** Shared LP-construction helpers for the offline formulations.

    Routing variables follow the flow representation: commodity [k] has one
    variable per link, except links entering the commodity's origin, which
    condition [R3] of (1) forces to zero — those are simply not created. *)

type routing_vars = R3_lp.Problem.var option array array
(** [vars.(k).(e)] is [None] exactly when [R3] forces the fraction to 0. *)

(** Create the variables for all commodities. *)
val routing_vars :
  R3_lp.Problem.t ->
  R3_net.Graph.t ->
  prefix:string ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  routing_vars

(** Add [R1] (conservation) and [R2] (unit emission) rows for every
    commodity. *)
val routing_constraints :
  R3_lp.Problem.t ->
  R3_net.Graph.t ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  routing_vars ->
  unit

(** Read a solved routing back into the flow representation, stored under
    [backend] (default dense). Protection routings should pass
    [Routing.Backend.Sparse]: their rows have support the size of one
    detour path. *)
val extract_routing :
  ?backend:R3_net.Routing.Backend.t ->
  R3_lp.Problem.solution ->
  R3_net.Graph.t ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  routing_vars ->
  R3_net.Routing.t

(** [(src l, dst l)] for every link — the commodities of the protection
    routing [p]. *)
val link_pairs : R3_net.Graph.t -> (R3_net.Graph.node * R3_net.Graph.node) array

(** Add a small penalty on every routing variable to suppress loops
    (the paper's "small penalty term including the sum of routing terms"). *)
val add_loop_penalty : R3_lp.Problem.t -> float -> routing_vars -> unit

(** Extra penalty on each protection commodity's {e self} term [p_e(e)].
    Routing a link's virtual demand over itself is the cheapest way to
    satisfy the constraints when the MLU cannot be driven below 1, but it
    means dropping the link's traffic on failure; pricing the self term
    above any multi-hop detour makes the LP choose real detours whenever
    they exist, without affecting feasibility or the optimal MLU. *)
val penalize_self_protection :
  R3_lp.Problem.t -> R3_net.Graph.t -> float -> routing_vars -> unit

(** Tie-break the protection routing toward spread-out virtual loads:
    add [weight * c_l / c_e] to each [p_l(e)] term. Among the many optima
    of the worst-case LP this prefers solutions whose {e per-event}
    rerouted load is balanced — the behaviour the paper reports
    (near-optimal for individual scenarios, not just the envelope max).
    [weight] must be small enough not to perturb the optimal MLU. *)
val penalize_virtual_concentration :
  R3_lp.Problem.t -> R3_net.Graph.t -> float -> routing_vars -> unit
