(** Crash-safe persistent storage for offline plans (DESIGN.md §16).

    The expensive half of R3 — solving the offline LP for the protection
    routing [p] — happens once; the artifact it produces {e is} the
    deployable object. This module writes a complete {!Offline.plan}
    (graph, commodities, demands, base and protection routings with their
    exact dense/sparse row payloads, optimum MLU, LP statistics, and the
    {!Offline.config} it was solved under) as a versioned, CRC-checked
    binary snapshot via {!R3_util.Codec}, and reads it back bit-identically:
    a reloaded plan steps through {!Reconfig} to exactly the states the
    original would have produced.

    No [Marshal] anywhere — snapshots are stable across compiler versions.
    Writes are atomic (temp + fsync + rename). Loads validate the frame
    (magic, version, CRC) and then the payload's internal fingerprint
    before handing anything back; pass [?expect_graph] to additionally
    require that the plan was solved for a specific topology. *)

(** 8-byte frame magic ("R3PLANSS") and current format version. Bump the
    version on ANY layout change; old files are then rejected with a
    version-mismatch error (there is no migration — plans are cheap to
    regenerate relative to the cost of silently misreading one). *)
val magic : string

val version : int

(** MD5 hex digest over the encoded graph + solver config + commodities +
    demands — everything the solve depended on except the solution itself.
    Stored inside the snapshot; {!load} recomputes it from the decoded
    sections and rejects on mismatch. *)
val fingerprint : config:Offline.config -> Offline.plan -> string

(** Digest of the graph section alone — what [?expect_graph] compares. *)
val graph_fingerprint : R3_net.Graph.t -> string

(** [save path ?config plan] writes the snapshot atomically. [config]
    records the solver configuration the plan was produced under and
    defaults to [Offline.default_config ~f:plan.f]. *)
val save : string -> ?config:Offline.config -> Offline.plan -> unit

(** [load ?expect_graph ?expect_config path] decodes and validates a
    snapshot. Errors (all as [Error msg], never an exception) name the
    failing check: missing/truncated file, wrong magic, version mismatch,
    CRC mismatch, malformed payload, fingerprint mismatch, or — when the
    respective argument is given — a topology/config that differs from
    the one the plan was solved for. *)
val load :
  ?expect_graph:R3_net.Graph.t ->
  ?expect_config:Offline.config ->
  string ->
  (Offline.plan * Offline.config, string) result

(** Snapshot summary for [r3 plan inspect] — decoded headline facts plus
    the on-disk size. *)
type info = {
  version : int;
  bytes : int;
  fingerprint : string;
  nodes : int;
  links : int;
  commodities : int;
  f : int;
  mlu : float;
  solve_method : Offline.method_;
  config : Offline.config;
  base_sparse_rows : int;
  protection_sparse_rows : int;
}

val inspect : string -> (info, string) result

(** {2 Traffic-matrix snapshots}

    Same frame discipline (own magic ["R3TMSNAP"]), for persisting the
    demand matrices plans are solved against. *)

val save_traffic : string -> R3_net.Traffic.t -> unit
val load_traffic : string -> (R3_net.Traffic.t, string) result
