(** Unified backend/workload configuration.

    One record carries every cross-cutting knob that used to be plumbed
    flag-by-flag through [Offline.config], the [r3] CLI and the bench
    harnesses: which simplex engine solves the offline LPs, which row
    storage holds the extracted protection routing, the workload PRNG
    seed, and the two numeric tolerances shared by the online phase
    (detour rescaling) and the evaluation normalizer (optimal-MCF
    accuracy). Build one with {!default} and the builder-style [with_*]
    functions:

    {[ Config.(default |> with_lp_backend `Sparse |> with_seed 7) ]}

    [Offline.default_config ?config] embeds the record in the offline
    configuration; [r3] subcommands build it from [--lp-backend],
    [--routing-backend], [--seed] and [--domains]; bench harnesses
    construct per-backend variants with the builders. *)

type t = {
  lp_backend : R3_lp.Problem.backend;
      (** simplex engine for offline LP solves and warm sessions
          (default [`Revised]) *)
  routing_backend : R3_net.Routing.Backend.t;
      (** row storage for the extracted protection routing
          (default [Sparse]) *)
  seed : int;  (** workload PRNG seed (default 42) *)
  mcf_epsilon : float;
      (** accuracy of the optimal-MCF evaluation normalizer
          (default 0.06, matching [Eval.make_env]) *)
  rescale_tol : float;
      (** [1 - p_e(e)] threshold below which the detour of equation (8)
          is declared undefined (default 1e-9, matching
          [Routing.rescale_detour]) *)
  domains : int option;
      (** preferred {!R3_util.Pool} size; [None] (default) keeps the
          machine-derived size. An execution knob only: results are
          bit-identical for any value, which is why it is {e not} part
          of the {!Plan_store} fingerprint. *)
}

val default : t

(** {2 Builders (pipe style: [Config.(default |> with_seed 7)])} *)

val with_lp_backend : R3_lp.Problem.backend -> t -> t
val with_routing_backend : R3_net.Routing.Backend.t -> t -> t
val with_seed : int -> t -> t
val with_mcf_epsilon : float -> t -> t
val with_rescale_tol : float -> t -> t

(** Clamped to [\[1, 64\]] like {!R3_util.Parallel.set_domains}. *)
val with_domains : int -> t -> t

(** Apply [domains] to the shared pool ({!R3_util.Parallel.set_domains});
    a no-op when [None]. CLI entry points call this once after parsing. *)
val apply_domains : t -> unit

(** {2 String parsing (CLI flags)} *)

(** [with_lp_backend_string s t]: [s] is one of [tableau], [revised],
    [dense] (as accepted by {!R3_lp.Problem.backend_of_string});
    [Error] carries a usable message otherwise. *)
val with_lp_backend_string : string -> t -> (t, string) result

(** [with_routing_backend_string s t]: [s] is one of [dense], [sparse],
    [auto]. *)
val with_routing_backend_string : string -> t -> (t, string) result

(** [with_domains_string s t]: a positive integer, or [auto] to keep the
    machine-derived pool size. *)
val with_domains_string : string -> t -> (t, string) result

(** {2 Export} *)

(** The record as a JSON object — bench artifacts embed it so every
    BENCH_*.json names the exact backends it measured. *)
val to_json : t -> R3_util.Json.t
