(* Canonical failure scenarios. A scenario is a set of physical links; the
   canonical form is the strictly ascending array of physical representatives
   (the lower id of each bidirectional pair), and the directed expansion is
   derived once at construction. *)

module G = R3_net.Graph

type t = {
  phys : int array;  (* canonical physical representatives, ascending *)
  links : G.link list;  (* directed expansion, canonical order *)
}

let rep g e =
  match G.reverse_link g e with Some r when r < e -> r | _ -> e

let expand_phys g phys =
  Array.to_list phys
  |> List.concat_map (fun e ->
         match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])

(* Fast path for enumeration: [phys] is already canonical and ascending. *)
let of_sorted_phys g phys = { phys; links = expand_phys g phys }

let of_links g links =
  let canon = List.sort_uniq Int.compare (List.map (rep g) links) in
  of_sorted_phys g (Array.of_list canon)

let of_physical = of_links

let links t = t.links
let physical t = Array.to_list t.phys
let size t = Array.length t.phys
let is_empty t = Array.length t.phys = 0

let compare a b =
  let na = Array.length a.phys and nb = Array.length b.phys in
  let rec go i =
    if i = na && i = nb then 0
    else if i = na then -1
    else if i = nb then 1
    else
      let c = Int.compare a.phys.(i) b.phys.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

(* [Hashtbl.hash] stops after ~10 meaningful values, so scenarios sharing
   their first 10 physical representatives all collide and [Tbl] degrades
   to a linked list under large failure budgets. Mix every element instead
   (boost-style hash_combine); [land max_int] keeps the result
   non-negative as Hashtbl requires. *)
let hash t =
  let h =
    Array.fold_left
      (fun h x -> h lxor (x + 0x9e3779b9 + (h lsl 6) + (h lsr 2)))
      (Array.length t.phys) t.phys
  in
  h land max_int

let key t =
  String.concat "+" (Array.to_list (Array.map string_of_int t.phys))

let describe g t =
  if is_empty t then "(no failures)"
  else
    String.concat " + "
      (Array.to_list
         (Array.map
            (fun e ->
              Printf.sprintf "%s-%s" (G.node_name g (G.src g e))
                (G.node_name g (G.dst g e)))
            t.phys))

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
