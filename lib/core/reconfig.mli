(** R3 online reconfiguration (Section 3.2).

    After link [e] fails, the precomputed protection routing [p] — defined
    on the original topology, so possibly using [e] itself — is converted
    into a valid detour by rescaling (8):

    {v  xi_e(l) = p_e(l) / (1 - p_e(e))      for l <> e  v}

    and both the base routing and the protection routing are updated by
    (9) and (10) to stop using [e]. The procedure is local, cheap, and
    order-independent (Theorem 3), which this module's tests verify. *)

type state = {
  graph : R3_net.Graph.t;
  pairs : (R3_net.Graph.node * R3_net.Graph.node) array;
  demands : float array;
  base : R3_net.Routing.t;  (** current (possibly reconfigured) r *)
  protection : R3_net.Routing.t;  (** current (possibly rescaled) p *)
  failed : R3_net.Graph.link_set;
}

(** Initial state from an offline plan (no failures yet). *)
val of_plan : Offline.plan -> state

(** Initial state from explicitly given routings. *)
val make :
  R3_net.Graph.t ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  base:R3_net.Routing.t ->
  protection:R3_net.Routing.t ->
  state

(** The detour [xi_e] for a link, per (8), on the {e current} state. When
    [p_e(e) = 1] the detour is all-zero: the link carries nothing that needs
    protection (or the network is partitioned) and its traffic is dropped. *)
val detour : state -> R3_net.Graph.link -> float array

(** Fail a single directed link: rescale and update [r] and [p].
    Idempotent on already-failed links. The parent state is never
    mutated; unmodified routing rows are shared with it (copy-on-write),
    so this is O(rows touched by the failure), not O(whole state). *)
val apply_failure : state -> R3_net.Graph.link -> state

(** Fail a link and its reverse direction (physical failure). *)
val apply_bidir_failure : state -> R3_net.Graph.link -> state

(** Apply a failure sequence left to right (directed links). *)
val apply_failures : state -> R3_net.Graph.link list -> state

(** {2 Persistent steps for scenario-tree traversal}

    [step] and [apply_failure] are the {e same} copy-on-write kernel (one
    shared [fail_one] core — likewise [step_bidir] and
    [apply_bidir_failure]): the returned state shares every routing row
    the failure does not touch with its parent, so a DFS over a scenario
    tree pays O(changed rows) per edge instead of O(whole state). Parent
    states are never mutated; any number of children may be stepped from
    the same state (Theorem 3 makes the traversal order immaterial).
    Stepped states are bit-identical to [apply_failure]'d ones —
    checkable with {!states_bit_identical}. Both names are kept so
    call sites read as intended. *)

(** Copy-on-write [apply_failure]: shares unmodified rows with [state]. *)
val step : state -> R3_net.Graph.link -> state

(** Copy-on-write [apply_bidir_failure]. *)
val step_bidir : state -> R3_net.Graph.link -> state

(** True iff the two states have the same failure set and bit-identical
    base and protection routings (compared via [Int64.bits_of_float] on
    the dense image, so [-0.0] differs from [+0.0] and storage backend
    does not matter). The equivalence check used by the tests for
    [apply_failures]-vs-[step] folds and dense-vs-sparse backends. *)
val states_bit_identical : state -> state -> bool

(** Per-link load of the real traffic under the current base routing. *)
val loads : state -> float array

(** Maximum link utilization of the current state (failed links excluded —
    they carry nothing). *)
val mlu : state -> float

(** Fraction of total demand still delivered (1.0 absent partitions). *)
val delivered_fraction : state -> float
