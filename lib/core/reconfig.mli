(** R3 online reconfiguration (Section 3.2).

    After link [e] fails, the precomputed protection routing [p] — defined
    on the original topology, so possibly using [e] itself — is converted
    into a valid detour by rescaling (8):

    {v  xi_e(l) = p_e(l) / (1 - p_e(e))      for l <> e  v}

    and both the base routing and the protection routing are updated by
    (9) and (10) to stop using [e]. The procedure is local, cheap, and
    order-independent (Theorem 3), which this module's tests verify.

    The primary API is the {!fail}/{!recover} pair over {!Scenario.t}
    deltas: a state is always the canonical batch application of its
    failed set, folded in canonical scenario order, so two states with
    the same failed set are bit-identical however they were reached.
    {!apply_failures} remains for explicitly-directed failure sequences
    (tests and the detour unit checks); the per-directed-link wrappers
    deprecated in the previous cycle are gone. *)

type state = {
  graph : R3_net.Graph.t;
  pairs : (R3_net.Graph.node * R3_net.Graph.node) array;
  demands : float array;
  base : R3_net.Routing.t;  (** current (possibly reconfigured) r *)
  protection : R3_net.Routing.t;  (** current (possibly rescaled) p *)
  failed : R3_net.Graph.link_set;
  pristine_base : R3_net.Routing.t;
      (** the plan's base routing before any failure — what {!recover}
          replays from. Treat as read-only. *)
  pristine_protection : R3_net.Routing.t;
      (** the plan's protection routing before any failure. Treat as
          read-only. *)
}

(** Initial state from an offline plan (no failures yet). *)
val of_plan : Offline.plan -> state

(** Initial state from explicitly given routings. *)
val make :
  R3_net.Graph.t ->
  pairs:(R3_net.Graph.node * R3_net.Graph.node) array ->
  demands:float array ->
  base:R3_net.Routing.t ->
  protection:R3_net.Routing.t ->
  state

(** The detour [xi_e] for a link, per (8), on the {e current} state. When
    [p_e(e) = 1] the detour is all-zero: the link carries nothing that needs
    protection (or the network is partitioned) and its traffic is dropped. *)
val detour : state -> R3_net.Graph.link -> float array

(** {2 The scenario-delta API}

    [fail] and [recover] advance a state between failed sets. Both are
    copy-on-write: routing rows a transition does not touch are shared
    with the parent state, the parent is never mutated, and any number
    of children may be derived from one state (including concurrently —
    see {!R3_net.Routing.fold_failure}). Both fold rescaling steps in
    {e canonical scenario order} (physical representatives ascending,
    each followed by its reverse), so a state's float bits depend only
    on its failed set — Theorem 3 (order independence) made executable,
    and the property the online runtime's randomized delivery-order
    tests pin down. *)

(** [fail st sc] fails every link of [sc] not already down: for each
    directed link, rescale the detour (8) and fold it through (9)/(10).
    O(rows touched); idempotent on already-failed links. *)
val fail : state -> Scenario.t -> state

(** [recover st sc] brings the links of [sc] back up. Rescaling is lossy
    (folding a detour forgets where the folded traffic came from), so
    recovery replays the {e remaining} failed links from the pristine
    plan routings — no LP recompute, just O(remaining links) folds on the
    copy-on-write substrate. Bit-identical to [fail pristine remaining].
    Links of [sc] that were not failed are ignored; recovering everything
    returns a state bit-identical to the pristine one. *)
val recover : state -> Scenario.t -> state

(** Apply a failure sequence left to right (directed links). *)
val apply_failures : state -> R3_net.Graph.link list -> state

(** True iff the two states have the same failure set and bit-identical
    base and protection routings (compared via [Int64.bits_of_float] on
    the dense image, so [-0.0] differs from [+0.0] and storage backend
    does not matter). The equivalence check used by the tests for
    [fail]-vs-replay folds and dense-vs-sparse backends. *)
val states_bit_identical : state -> state -> bool

(** Per-link load of the real traffic under the current base routing. *)
val loads : state -> float array

(** Maximum link utilization of the current state (failed links excluded —
    they carry nothing). *)
val mlu : state -> float

(** Fraction of total demand still delivered (1.0 absent partitions). *)
val delivered_fraction : state -> float
