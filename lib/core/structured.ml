module P = R3_lp.Problem
module G = R3_net.Graph
module Routing = R3_net.Routing

type groups = {
  srlgs : G.link list list;
  mlgs : G.link list list;
  k : int;
}

(* Links covered by at least one group; only they can carry virtual demand
   under (18). *)
let covered_links groups nlinks =
  let covered = Array.make nlinks false in
  List.iter (List.iter (fun l -> covered.(l) <- true)) groups.srlgs;
  List.iter (List.iter (fun l -> covered.(l) <- true)) groups.mlgs;
  covered

(* Fast path: disjoint SRLGs and no MLGs make (18) a unit-weight knapsack
   over groups (the constraint matrix is an interval matrix, so the LP
   relaxation is integral): take the k groups with the largest total
   weight. *)
let disjoint_srlgs_only groups m =
  if groups.mlgs <> [] then None
  else begin
    let seen = Array.make m false in
    let ok =
      List.for_all
        (fun grp ->
          List.for_all
            (fun l ->
              if l < 0 || l >= m || seen.(l) then false
              else begin
                seen.(l) <- true;
                true
              end)
            grp)
        groups.srlgs
    in
    if ok then Some () else None
  end

let worst_disjoint groups weights =
  let m = Array.length weights in
  let values =
    List.map
      (fun grp -> (List.fold_left (fun a l -> a +. weights.(l)) 0.0 grp, grp))
      groups.srlgs
    |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
  in
  let y = Array.make m 0.0 in
  let total = ref 0.0 in
  List.iteri
    (fun i (v, grp) ->
      if i < groups.k && v > 0.0 then begin
        total := !total +. v;
        List.iter (fun l -> y.(l) <- 1.0) grp
      end)
    values;
  (!total, y)

let worst_structured_load groups weights =
  let m = Array.length weights in
  match disjoint_srlgs_only groups m with
  | Some () -> worst_disjoint groups weights
  | None ->
  let covered = covered_links groups m in
  let lp = P.create ~name:"structured-oracle" () in
  let y =
    Array.init m (fun l ->
        if covered.(l) && weights.(l) > 0.0 then
          Some (P.var lp ~lb:0.0 ~ub:1.0 (Printf.sprintf "y%d" l))
        else None)
  in
  let group_vars gs prefix =
    List.mapi (fun i _ -> P.var lp ~lb:0.0 (Printf.sprintf "%s%d" prefix i)) gs
  in
  let srlg_vars = group_vars groups.srlgs "S" in
  let mlg_vars = group_vars groups.mlgs "M" in
  if srlg_vars <> [] then
    P.constr lp (List.map (fun v -> (1.0, v)) srlg_vars) P.Le (float_of_int groups.k);
  if mlg_vars <> [] then
    P.constr lp (List.map (fun v -> (1.0, v)) mlg_vars) P.Le 1.0;
  (* y_l <= sum of I_f over groups containing l *)
  Array.iteri
    (fun l yv ->
      match yv with
      | None -> ()
      | Some yv ->
        let cover =
          List.concat
            [
              List.filteri (fun i _ -> List.mem l (List.nth groups.srlgs i)) srlg_vars;
              List.filteri (fun i _ -> List.mem l (List.nth groups.mlgs i)) mlg_vars;
            ]
        in
        P.constr lp
          ((1.0, yv) :: List.map (fun v -> (-1.0, v)) cover)
          P.Le 0.0)
    y;
  let obj =
    Array.to_list y
    |> List.mapi (fun l yv -> Option.map (fun v -> (weights.(l), v)) yv)
    |> List.filter_map Fun.id
  in
  P.maximize lp obj;
  match P.solve lp with
  | P.Optimal sol ->
    let intensities =
      Array.mapi
        (fun _ yv -> match yv with Some v -> sol.P.value v | None -> 0.0)
        y
    in
    (sol.P.objective, intensities)
  | P.Infeasible | P.Unbounded | P.Iteration_limit ->
    (* The oracle polytope is a nonempty bounded box-like region; failure
       here indicates a solver bug, so fail loudly. *)
    failwith "structured oracle LP failed"

let audit_mlu (plan : Offline.plan) groups =
  let g = plan.Offline.graph in
  let m = G.num_links g in
  let base_loads = Routing.loads g ~demands:plan.Offline.demands plan.Offline.base in
  let utils =
    R3_util.Parallel.init ~chunk:(R3_util.Parallel.chunk_hint m) m (fun e ->
        let weights =
          Array.init m (fun l ->
              G.capacity g l *. Routing.get plan.Offline.protection l e)
        in
        let value, _ = worst_structured_load groups weights in
        (base_loads.(e) +. value) /. G.capacity g e)
  in
  Array.fold_left Float.max 0.0 utils

(* Same instruments as [Offline.Obs]: Metrics interns by name, so these
   handles alias the ones offline.ml registered. *)
module Obs = struct
  module M = R3_util.Metrics
  module T = R3_util.Trace

  let computes = M.counter "offline.computes"
  let cg_rounds = M.counter "offline.cg.rounds"
  let cg_cuts = M.counter "offline.cg.cuts"
  let compute_seconds = M.histogram "offline.compute.seconds"
end

let compute (cfg : Offline.config) g tm groups base_spec =
  Obs.M.incr Obs.computes;
  Obs.M.time Obs.compute_seconds @@ fun () ->
  Obs.T.with_span "offline.compute"
    ~attrs:
      [ ("f", Obs.T.Int groups.k); ("method", Obs.T.String "structured-cg") ]
  @@ fun () ->
  let pairs, demands = R3_net.Traffic.commodities tm in
  let m = G.num_links g in
  let lp = P.create ~name:"r3-structured" () in
  let mlu = P.var lp ~lb:0.0 "MLU" in
  let link_prs = Lp_build.link_pairs g in
  let p_vars = Lp_build.routing_vars lp g ~prefix:"p" ~pairs:link_prs in
  Lp_build.routing_constraints lp g ~pairs:link_prs p_vars;
  let r_vars =
    match base_spec with
    | Offline.Joint ->
      let rv = Lp_build.routing_vars lp g ~prefix:"r" ~pairs in
      Lp_build.routing_constraints lp g ~pairs rv;
      (* Penalty envelope (Section 3.5) on the no-failure MLU. *)
      (match cfg.Offline.envelope with
      | None -> ()
      | Some (beta, mlu_opt) ->
        for e = 0 to m - 1 do
          let terms = ref [] in
          Array.iteri
            (fun k row ->
              match row.(e) with
              | Some v when demands.(k) > 0.0 -> terms := (demands.(k), v) :: !terms
              | Some _ | None -> ())
            rv;
          if !terms <> [] then
            P.constr lp !terms P.Le (beta *. mlu_opt *. G.capacity g e)
        done);
      (* Delay penalty envelope. *)
      (match cfg.Offline.delay_envelope with
      | None -> ()
      | Some gamma ->
        Array.iteri
          (fun k (a, b) ->
            let best = R3_net.Spf.min_propagation_delay g ~src:a ~dst:b () in
            if best < infinity then begin
              let terms = ref [] in
              Array.iteri
                (fun e v ->
                  match v with
                  | Some var when G.delay g e > 0.0 ->
                    terms := (G.delay g e, var) :: !terms
                  | Some _ | None -> ())
                rv.(k);
              if !terms <> [] then P.constr lp !terms P.Le (gamma *. best)
            end)
          pairs);
      Some rv
    | Offline.Fixed r ->
      if Routing.num_commodities r <> Array.length pairs then
        invalid_arg "Structured.compute: fixed base commodities mismatch";
      None
  in
  P.minimize lp [ (1.0, mlu) ];
  Lp_build.add_loop_penalty lp cfg.Offline.loop_penalty p_vars;
  Lp_build.penalize_self_protection lp g cfg.Offline.loop_penalty p_vars;
  Lp_build.penalize_virtual_concentration lp g (50.0 *. cfg.Offline.loop_penalty) p_vars;
  (match r_vars with
  | Some rv -> Lp_build.add_loop_penalty lp cfg.Offline.loop_penalty rv
  | None -> ());
  let base_terms e =
    match (r_vars, base_spec) with
    | Some rv, _ ->
      let acc = ref [] in
      Array.iteri
        (fun k row ->
          match row.(e) with
          | Some v when demands.(k) > 0.0 -> acc := (demands.(k), v) :: !acc
          | Some _ | None -> ())
        rv;
      (!acc, 0.0)
    | None, Offline.Fixed r ->
      let loads = Routing.loads g ~demands r in
      ([], loads.(e))
    | None, Offline.Joint -> assert false
  in
  for e = 0 to m - 1 do
    let terms, const = base_terms e in
    if terms <> [] || const > 0.0 then
      P.constr lp ((-.G.capacity g e, mlu) :: terms) P.Le (-.const)
  done;
  let seen = Hashtbl.create 64 in
  let quantize y = Array.map (fun v -> int_of_float (Float.round (v *. 1000.0))) y in
  (* Same warm-start discipline as [Offline.compute_cg]: keep the simplex
     basis across rounds and repair it after each batch of cuts. *)
  let sess =
    if cfg.Offline.cg_warm_start then
      Some
        (P.session ~backend:cfg.Offline.core.Config.lp_backend
           ?max_pivots:cfg.Offline.max_pivots lp)
    else None
  in
  let cold_pivots = ref 0 in
  let solve_round () =
    Obs.T.with_span "offline.lp_solve" @@ fun () ->
    match sess with
    | Some s -> P.resolve s
    | None ->
      let r = P.solve ~backend:cfg.Offline.core.Config.lp_backend ?max_pivots:cfg.Offline.max_pivots lp in
      (match r with
      | P.Optimal sol -> cold_pivots := !cold_pivots + sol.P.pivots
      | _ -> ());
      r
  in
  let total_pivots () =
    match sess with Some s -> P.session_pivots s | None -> !cold_pivots
  in
  let rec iterate round =
    let budget_left = round <= cfg.Offline.cg_max_rounds in
    Obs.M.incr Obs.cg_rounds;
    begin
      match solve_round () with
      | P.Infeasible -> Error "structured R3: infeasible"
      | P.Unbounded -> Error "structured R3: unbounded"
      | P.Iteration_limit -> Error "structured R3: pivot budget exhausted"
      | P.Optimal sol ->
        let p = Lp_build.extract_routing sol g ~pairs:link_prs p_vars in
        let mlu_val = sol.P.value mlu in
        let base_loads =
          match base_spec with
          | Offline.Fixed r -> Routing.loads g ~demands r
          | Offline.Joint ->
            let r = Lp_build.extract_routing sol g ~pairs (Option.get r_vars) in
            Routing.loads g ~demands r
        in
        (* Separation per link: chunked edge ranges submitted to the
           persistent pool each round; slot-ordered results keep the cut
           order identical to a sequential loop. *)
        let oracle =
          Obs.T.with_span "offline.oracle" @@ fun () ->
          R3_util.Parallel.init ~chunk:(R3_util.Parallel.chunk_hint m) m (fun e ->
              let weights =
                Array.init m (fun l -> G.capacity g l *. Routing.get p l e)
              in
              worst_structured_load groups weights)
        in
        let violated = ref 0 in
        for e = 0 to m - 1 do
          let value, y = oracle.(e) in
          let cap = G.capacity g e in
          if base_loads.(e) +. value > ((mlu_val +. 1e-7) *. cap) +. 1e-7 then begin
            let key = (e, Array.to_list (quantize y)) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              incr violated;
              let terms, const = base_terms e in
              let p_terms = ref [] in
              Array.iteri
                (fun l yl ->
                  if yl > 1e-9 then
                    match p_vars.(l).(e) with
                    | Some v -> p_terms := (yl *. G.capacity g l, v) :: !p_terms
                    | None -> ())
                y;
              P.constr lp
                (((-.cap, mlu) :: terms) @ !p_terms)
                P.Le (-.const)
            end
          end
        done;
        Obs.M.add Obs.cg_cuts !violated;
        if !violated > 0 && budget_left then iterate (round + 1)
        else begin
          Obs.T.add_attr "cg_rounds" (Obs.T.Int round);
          let base =
            match (base_spec, r_vars) with
            | Offline.Fixed r, _ -> r
            | Offline.Joint, Some rv -> Lp_build.extract_routing sol g ~pairs rv
            | Offline.Joint, None -> assert false
          in
          let plan =
            {
              Offline.graph = g;
              f = groups.k;
              pairs;
              demands;
              base;
              protection = p;
              mlu = mlu_val;
              lp_vars = P.num_vars lp;
              lp_rows = P.num_constraints lp;
              lp_pivots = total_pivots ();
            }
          in
          (* audited value when the cut budget ran out *)
          let plan =
            if !violated = 0 then plan
            else { plan with Offline.mlu = audit_mlu plan groups }
          in
          Ok plan
        end
    end
  in
  iterate 1
