module P = R3_lp.Problem
module G = R3_net.Graph
module Routing = R3_net.Routing
module Traffic = R3_net.Traffic

type class_spec = { demand : Traffic.t; f : int }

type plan = { plan : Offline.plan; class_mlus : float array }

let class_demands pairs spec = Array.map (fun (a, b) -> spec.demand.(a).(b)) pairs

let audit_class_mlus ?srlgs ~classes (plan : Offline.plan) =
  let g = plan.Offline.graph in
  let m = R3_net.Graph.num_links g in
  classes
  |> List.map (fun spec ->
         let demands = class_demands plan.Offline.pairs spec in
         let base_loads = Routing.loads g ~demands plan.Offline.base in
         match srlgs with
         | None ->
           Verify.offline_worst_mlu g ~f:spec.f ~base_loads
             ~protection:plan.Offline.protection
         | Some groups ->
           let worst = ref 0.0 in
           for e = 0 to m - 1 do
             let weights =
               Array.init m (fun l ->
                   R3_net.Graph.capacity g l
                   *. Routing.get plan.Offline.protection l e)
             in
             let value, _ =
               Structured.worst_structured_load
                 { Structured.srlgs = groups; mlgs = []; k = spec.f }
                 weights
             in
             let u = (base_loads.(e) +. value) /. R3_net.Graph.capacity g e in
             if u > !worst then worst := u
           done;
           !worst)
  |> Array.of_list

let compute (cfg : Offline.config) g ?srlgs ~classes base_spec =
  if classes = [] then invalid_arg "Priority.compute: no classes";
  List.iter
    (fun c -> if c.f < 0 then invalid_arg "Priority.compute: negative budget")
    classes;
  (* Commodities: union of class supports. *)
  let n = G.num_nodes g in
  let union = Array.make_matrix n n 0.0 in
  List.iter
    (fun c ->
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if c.demand.(a).(b) > union.(a).(b) then union.(a).(b) <- c.demand.(a).(b)
        done
      done)
    classes;
  let pairs, _ = Traffic.commodities union in
  let max_demands = Array.map (fun (a, b) -> union.(a).(b)) pairs in
  let per_class_demands = List.map (class_demands pairs) classes in
  let budgets = List.map (fun c -> c.f) classes in
  let m = G.num_links g in
  let lp = P.create ~name:"r3-prioritized" () in
  let mlu = P.var lp ~lb:0.0 "MLU" in
  let link_prs = Lp_build.link_pairs g in
  let p_vars = Lp_build.routing_vars lp g ~prefix:"p" ~pairs:link_prs in
  Lp_build.routing_constraints lp g ~pairs:link_prs p_vars;
  let r_vars =
    match base_spec with
    | Offline.Joint ->
      let rv = Lp_build.routing_vars lp g ~prefix:"r" ~pairs in
      Lp_build.routing_constraints lp g ~pairs rv;
      Some rv
    | Offline.Fixed r ->
      if Routing.num_commodities r <> Array.length pairs then
        invalid_arg "Priority.compute: fixed base commodities mismatch";
      None
  in
  P.minimize lp [ (1.0, mlu) ];
  Lp_build.add_loop_penalty lp cfg.Offline.loop_penalty p_vars;
  Lp_build.penalize_self_protection lp g cfg.Offline.loop_penalty p_vars;
  (match r_vars with
  | Some rv -> Lp_build.add_loop_penalty lp cfg.Offline.loop_penalty rv
  | None -> ());
  (* Base-load terms of class [ci] on link [e]. *)
  let base_terms ci e =
    let demands = List.nth per_class_demands ci in
    match (r_vars, base_spec) with
    | Some rv, _ ->
      let acc = ref [] in
      Array.iteri
        (fun k row ->
          match row.(e) with
          | Some v when demands.(k) > 0.0 -> acc := (demands.(k), v) :: !acc
          | Some _ | None -> ())
        rv;
      (!acc, 0.0)
    | None, Offline.Fixed r ->
      let loads = Routing.loads g ~demands r in
      ([], loads.(e))
    | None, Offline.Joint -> assert false
  in
  (* Cache fixed-base per-class loads to avoid recomputation each round. *)
  let fixed_loads =
    match base_spec with
    | Offline.Fixed r ->
      Some (List.map (fun demands -> Routing.loads g ~demands r) per_class_demands)
    | Offline.Joint -> None
  in
  (* Initial rows: per class, normal load within MLU. *)
  List.iteri
    (fun ci _ ->
      for e = 0 to m - 1 do
        let terms, const = base_terms ci e in
        if terms <> [] || const > 0.0 then
          P.constr lp ((-.G.capacity g e, mlu) :: terms) P.Le (-.const)
      done)
    per_class_demands;
  let seen = Hashtbl.create 128 in
  (* Warm-started rounds, as in [Offline.compute_cg]. *)
  let sess =
    if cfg.Offline.cg_warm_start then
      Some
        (P.session ~backend:cfg.Offline.core.Config.lp_backend
           ?max_pivots:cfg.Offline.max_pivots lp)
    else None
  in
  let cold_pivots = ref 0 in
  let solve_round () =
    match sess with
    | Some s -> P.resolve s
    | None ->
      let r = P.solve ~backend:cfg.Offline.core.Config.lp_backend ?max_pivots:cfg.Offline.max_pivots lp in
      (match r with
      | P.Optimal sol -> cold_pivots := !cold_pivots + sol.P.pivots
      | _ -> ());
      r
  in
  let total_pivots () =
    match sess with Some s -> P.session_pivots s | None -> !cold_pivots
  in
  let rec iterate round =
    let budget_left = round <= cfg.Offline.cg_max_rounds in
    begin
      match solve_round () with
      | P.Infeasible -> Error "prioritized R3: infeasible"
      | P.Unbounded -> Error "prioritized R3: unbounded"
      | P.Iteration_limit -> Error "prioritized R3: pivot budget exhausted"
      | P.Optimal sol ->
        let p = Lp_build.extract_routing sol g ~pairs:link_prs p_vars in
        let mlu_val = sol.P.value mlu in
        let base_loads_for ci =
          match fixed_loads with
          | Some l -> List.nth l ci
          | None ->
            let r =
              Lp_build.extract_routing sol g ~pairs (Option.get r_vars)
            in
            Routing.loads g ~demands:(List.nth per_class_demands ci) r
        in
        let violated = ref 0 in
        List.iteri
          (fun ci fi ->
            let loads = base_loads_for ci in
            for e = 0 to m - 1 do
              let weights =
                Array.init m (fun l -> G.capacity g l *. Routing.get p l e)
              in
              (* Oracle: plain knapsack for arbitrary failures, or the
                 structured LP restricted to fi concurrent SRLG events.
                 Both yield cut coefficients y_l * c_l per link. *)
              let ml, y =
                match srlgs with
                | None ->
                  let ml, set = Virtual_demand.worst_virtual_load_set ~f:fi weights in
                  let y = Array.make m 0.0 in
                  List.iter (fun l -> y.(l) <- 1.0) set;
                  (ml, y)
                | Some groups ->
                  Structured.worst_structured_load
                    { Structured.srlgs = groups; mlgs = []; k = fi }
                    weights
              in
              let cap = G.capacity g e in
              if loads.(e) +. ml > ((mlu_val +. 1e-7) *. cap) +. 1e-7 then begin
                let key =
                  ( ci,
                    e,
                    Array.to_list
                      (Array.map (fun v -> int_of_float (Float.round (v *. 1000.0))) y) )
                in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  incr violated;
                  let terms, const = base_terms ci e in
                  let p_terms = ref [] in
                  Array.iteri
                    (fun l yl ->
                      if yl > 1e-9 then
                        match p_vars.(l).(e) with
                        | Some v -> p_terms := (yl *. G.capacity g l, v) :: !p_terms
                        | None -> ())
                    y;
                  P.constr lp
                    (((-.cap, mlu) :: terms) @ !p_terms)
                    P.Le (-.const)
                end
              end
            done)
          budgets;
        if !violated > 0 && budget_left then iterate (round + 1)
        else begin
          let base =
            match (base_spec, r_vars) with
            | Offline.Fixed r, _ -> r
            | Offline.Joint, Some rv -> Lp_build.extract_routing sol g ~pairs rv
            | Offline.Joint, None -> assert false
          in
          let max_f = List.fold_left Int.max 0 budgets in
          let off_plan =
            {
              Offline.graph = g;
              f = max_f;
              pairs;
              demands = max_demands;
              base;
              protection = p;
              mlu = mlu_val;
              lp_vars = P.num_vars lp;
              lp_rows = P.num_constraints lp;
              lp_pivots = total_pivots ();
            }
          in
          let class_mlus =
            audit_class_mlus ?srlgs
              ~classes:(List.map (fun c -> { demand = c.demand; f = c.f }) classes)
              off_plan
          in
          (* on budget exhaustion the audited class maxima are the honest
             worst case; the LP value would understate them *)
          let off_plan =
            if !violated = 0 then off_plan
            else { off_plan with Offline.mlu = Array.fold_left Float.max 0.0 class_mlus }
          in
          Ok { plan = off_plan; class_mlus }
        end
    end
  in
  iterate 1
