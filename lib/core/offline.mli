(** R3 offline precomputation (Section 3.1).

    Finds base routing [r] (optionally given) and protection routing [p]
    minimizing the maximum link utilization over the combined demand set
    [d + X_F], by either of two equivalent exact methods:

    - {b Dualized}: the paper's LP (7) — the inner maximization (5) is
      replaced by its LP dual, giving one polynomial-size program.
    - {b Constraint generation}: the semi-infinite program (3) is solved by
      cutting planes. Because (5) is a unit-weight fractional knapsack, the
      exact separation oracle is "sum of the F largest [c_l * p_l(e)]"
      ({!Virtual_demand.worst_virtual_load_set}); violated scenarios are
      added as linear cuts until none remain. This avoids the [O(|E|^2)]
      dual variables and scales to larger topologies.

    Both methods solve the same optimization; tests assert they agree. *)

type base_spec =
  | Joint  (** optimize [r] together with [p] (MPLS-ff style) *)
  | Fixed of R3_net.Routing.t
      (** [r] given (e.g. OSPF); commodities must match the traffic
          matrix's commodity order *)

type method_ = Dualized | Constraint_gen

type config = {
  f : int;  (** protect against up to [f] arbitrary link failures *)
  loop_penalty : float;  (** small objective weight on routing terms *)
  envelope : (float * float) option;
      (** [(beta, mlu_opt)]: bound the no-failure MLU by [beta *. mlu_opt]
          (Section 3.5, penalty envelope). Joint base only. *)
  delay_envelope : float option;
      (** [gamma]: bound each OD pair's mean propagation delay by [gamma]
          times its shortest-path delay. Joint base only. *)
  solve_method : method_;
  max_pivots : int option;  (** simplex pivot budget per LP solve *)
  cg_max_rounds : int;  (** cut-generation rounds cap *)
  cg_warm_start : bool;
      (** re-solve each cut-generation round warm via {!R3_lp.Problem.session}
          (dual-simplex basis repair) instead of a cold two-phase solve.
          Default [true]; [false] is the benchmark baseline. *)
  core : Config.t;
      (** the unified backend/seed/tolerance bundle ({!Config.t}):
          [lp_backend] selects the simplex engine for cold solves and warm
          sessions, [routing_backend] the row storage for the extracted
          {e protection} routing (the base routing is always extracted
          dense). Replaces the per-field [lp_backend]/[routing_backend]
          plumbing. *)
}

val default_config : f:int -> config

(** [with_core core cfg] swaps the backend bundle — builder-style:
    [Offline.default_config ~f |> Offline.with_core Config.(default |> with_lp_backend `Sparse)]. *)
val with_core : Config.t -> config -> config

type plan = {
  graph : R3_net.Graph.t;
  f : int;
  pairs : (R3_net.Graph.node * R3_net.Graph.node) array;  (** OD commodities *)
  demands : float array;  (** parallel to [pairs] *)
  base : R3_net.Routing.t;  (** r *)
  protection : R3_net.Routing.t;  (** p; commodity [e] protects link [e] *)
  mlu : float;  (** optimal MLU over [d + X_F]; congestion-free iff <= 1 *)
  lp_vars : int;
  lp_rows : int;
  lp_pivots : int;  (** total simplex pivots spent across all LP (re-)solves *)
}

(** Compute the plan for a traffic matrix. Fails with a message when the LP
    is infeasible (e.g. [f] failures can partition the graph) or hits its
    pivot budget. *)
val compute :
  config -> R3_net.Graph.t -> R3_net.Traffic.t -> base_spec -> (plan, string) result

(** As {!compute}, over the convex hull of several traffic matrices
    (Section 3.5, "handling traffic variations"): the returned routing is
    congestion-free for [d + X_F] for {e every} [d] in the hull. *)
val compute_multi :
  config ->
  R3_net.Graph.t ->
  R3_net.Traffic.t list ->
  base_spec ->
  (plan, string) result
