module G = R3_net.Graph
module Routing = R3_net.Routing

type state = {
  graph : G.t;
  pairs : (G.node * G.node) array;
  demands : float array;
  base : Routing.t;
  protection : Routing.t;
  failed : G.link_set;
}

let of_plan (plan : Offline.plan) =
  {
    graph = plan.Offline.graph;
    pairs = plan.Offline.pairs;
    demands = plan.Offline.demands;
    base = Routing.copy plan.Offline.base;
    protection = Routing.copy plan.Offline.protection;
    failed = G.no_failures plan.Offline.graph;
  }

let make graph ~pairs ~demands ~base ~protection =
  if Array.length (protection.Routing.pairs) <> G.num_links graph then
    invalid_arg "Reconfig.make: protection must have one commodity per link";
  {
    graph;
    pairs;
    demands;
    base = Routing.copy base;
    protection = Routing.copy protection;
    failed = G.no_failures graph;
  }

let one_tol = 1e-9

let detour st e =
  let m = G.num_links st.graph in
  let pe = st.protection.Routing.frac.(e) in
  let self = pe.(e) in
  let xi = Array.make m 0.0 in
  if self < 1.0 -. one_tol then begin
    let scale = 1.0 /. (1.0 -. self) in
    for l = 0 to m - 1 do
      if l <> e then xi.(l) <- pe.(l) *. scale
    done
  end;
  xi

let apply_failure st e =
  if st.failed.(e) then st
  else begin
    let xi = detour st e in
    let m = G.num_links st.graph in
    (* (9): fold the base traffic of the failed link onto the detour. *)
    let update_row row =
      let on_e = row.(e) in
      if on_e > 0.0 then begin
        for l = 0 to m - 1 do
          if l <> e then row.(l) <- row.(l) +. (on_e *. xi.(l))
        done
      end;
      row.(e) <- 0.0
    in
    let base = Routing.copy st.base in
    Array.iter update_row base.Routing.frac;
    (* (10): same for every other link's protection routing. The failed
       link's own row becomes the detour xi_e itself: its virtual demand
       leaves X_F, but the forwarding plane keeps using xi_e to carry the
       link's real traffic (and later failures keep rescaling it). *)
    let protection = Routing.copy st.protection in
    Array.iteri
      (fun l row -> if l <> e then update_row row)
      protection.Routing.frac;
    Array.blit xi 0 protection.Routing.frac.(e) 0 m;
    let failed = Array.copy st.failed in
    failed.(e) <- true;
    { st with base; protection; failed }
  end

let apply_bidir_failure st e =
  let st = apply_failure st e in
  match G.reverse_link st.graph e with
  | Some r -> apply_failure st r
  | None -> st

let apply_failures st links = List.fold_left apply_failure st links

(* Copy-on-write variant of [update_row] for the persistent [step]: rows
   the failure does not touch are returned as-is and shared with the
   parent state, so a tree traversal pays only for the rows that change.
   Mirrors [apply_failure]'s arithmetic exactly (including the
   unconditional [row.(e) <- 0.0], which can turn a stray [-0.0] into
   [+0.0]) so stepped and copied states are bit-identical. *)
let cow_update_row ~m ~e ~xi row =
  let on_e = row.(e) in
  if on_e > 0.0 then begin
    let row' = Array.copy row in
    for l = 0 to m - 1 do
      if l <> e then
        Array.unsafe_set row' l
          (Array.unsafe_get row' l +. (on_e *. Array.unsafe_get xi l))
    done;
    row'.(e) <- 0.0;
    row'
  end
  else if on_e = 0.0 && not (Float.sign_bit on_e) then row
  else begin
    (* -0.0 or negative solver noise: [apply_failure] only zeroes the
       entry (its add loop is gated on [on_e > 0.0]). *)
    let row' = Array.copy row in
    row'.(e) <- 0.0;
    row'
  end

let step st e =
  if st.failed.(e) then st
  else begin
    let xi = detour st e in
    let m = G.num_links st.graph in
    let base_frac = Array.map (cow_update_row ~m ~e ~xi) st.base.Routing.frac in
    let prot_frac =
      Array.mapi
        (fun l row -> if l = e then row else cow_update_row ~m ~e ~xi row)
        st.protection.Routing.frac
    in
    (* As in [apply_failure]: the failed link's own protection row becomes
       the detour itself. *)
    prot_frac.(e) <- xi;
    let failed = Array.copy st.failed in
    failed.(e) <- true;
    {
      st with
      base = { st.base with Routing.frac = base_frac };
      protection = { st.protection with Routing.frac = prot_frac };
      failed;
    }
  end

let step_bidir st e =
  let st = step st e in
  match G.reverse_link st.graph e with Some r -> step st r | None -> st

let loads st = Routing.loads st.graph ~demands:st.demands st.base

let mlu st =
  let loads = loads st in
  let u = ref 0.0 in
  for e = 0 to G.num_links st.graph - 1 do
    if not st.failed.(e) then begin
      let x = loads.(e) /. G.capacity st.graph e in
      if x > !u then u := x
    end
  done;
  !u

let delivered_fraction st =
  let total = Array.fold_left ( +. ) 0.0 st.demands in
  if total <= 0.0 then 1.0
  else begin
    let got = ref 0.0 in
    Array.iteri
      (fun k d ->
        if d > 0.0 then
          got := !got +. (d *. Routing.delivered st.graph st.base k))
      st.demands;
    !got /. total
  end
