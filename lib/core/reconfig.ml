module G = R3_net.Graph
module Routing = R3_net.Routing
module Rowvec = R3_util.Rowvec

type state = {
  graph : G.t;
  pairs : (G.node * G.node) array;
  demands : float array;
  base : Routing.t;
  protection : Routing.t;
  failed : G.link_set;
  pristine_base : Routing.t;
  pristine_protection : Routing.t;
}

module Obs = struct
  module M = R3_util.Metrics

  let cow_shared_ratio = M.gauge "r3.reconfig.cow_shared_ratio"
  let recoveries = M.counter "r3.reconfig.recoveries"
  let recovery_refolds = M.counter "r3.reconfig.recovery_refolds"
end

(* Pre-building the fold indexes here means parallel workers stepping
   the same root state ([Sim.Sweep]) find them ready instead of each
   constructing one on their first step. *)
let of_plan (plan : Offline.plan) =
  let base = Routing.copy plan.Offline.base in
  let protection = Routing.copy plan.Offline.protection in
  Routing.prepare base;
  Routing.prepare protection;
  {
    graph = plan.Offline.graph;
    pairs = plan.Offline.pairs;
    demands = plan.Offline.demands;
    base;
    protection;
    failed = G.no_failures plan.Offline.graph;
    pristine_base = base;
    pristine_protection = protection;
  }

let make graph ~pairs ~demands ~base ~protection =
  if Routing.num_commodities protection <> G.num_links graph then
    invalid_arg "Reconfig.make: protection must have one commodity per link";
  let base = Routing.copy base in
  let protection = Routing.copy protection in
  Routing.prepare base;
  Routing.prepare protection;
  {
    graph;
    pairs;
    demands;
    base;
    protection;
    failed = G.no_failures graph;
    pristine_base = base;
    pristine_protection = protection;
  }

let one_tol = Config.default.Config.rescale_tol

let detour_vec st e = Routing.rescale_detour ~tol:one_tol st.protection e

let detour st e = Rowvec.to_dense (G.num_links st.graph) (detour_vec st e)

(* The single failure kernel behind every entry point ([fail], the
   deprecated per-link wrappers, and [recover]'s replay): every caller
   provably runs the same arithmetic, so stepped, folded, and
   direction-paired states cannot drift apart. Copy-on-write throughout —
   rows the failure does not touch are shared with the parent, so a
   scenario-tree traversal pays O(changed rows) per edge and nothing here
   mutates [st]. *)
let fail_one st e =
  if st.failed.(e) then st
  else begin
    let xi = detour_vec st e in
    (* (9): fold the base traffic of the failed link onto the detour. *)
    let base, (bs, bc) =
      Routing.fold_failure st.base ~e ~xi ~replace_with_detour:false
    in
    (* (10): same for every other link's protection routing. The failed
       link's own row becomes the detour xi_e itself: its virtual demand
       leaves X_F, but the forwarding plane keeps using xi_e to carry the
       link's real traffic (and later failures keep rescaling it). *)
    let protection, (ps, pc) =
      Routing.fold_failure st.protection ~e ~xi ~replace_with_detour:true
    in
    let shared = bs + ps and copied = bc + pc in
    if shared + copied > 0 then
      R3_util.Metrics.set_gauge Obs.cow_shared_ratio
        (float_of_int shared /. float_of_int (shared + copied));
    let failed = Array.copy st.failed in
    failed.(e) <- true;
    { st with base; protection; failed }
  end

(* Canonical application order of a set of directed links: by physical
   representative ascending, representative before reverse — exactly the
   order [Scenario.links] lists, extended to orphan directed links. Every
   path into the folding kernel sorts by this key, so a state's float
   bits are a function of its failed set alone. *)
let canonical_key g e =
  let rep = match G.reverse_link g e with Some r when r < e -> r | _ -> e in
  (rep * 2) + if e = rep then 0 else 1

let fail st sc =
  (* Scenario.links is already in canonical order. *)
  List.fold_left fail_one st (Scenario.links sc)

let pristine st =
  {
    st with
    base = st.pristine_base;
    protection = st.pristine_protection;
    failed = G.no_failures st.graph;
  }

(* Rescaling is lossy (a fold forgets where the folded traffic came
   from), so un-failing replays the remaining failed links from the
   pristine plan routings — no LP recompute, O(remaining) copy-on-write
   folds, and by construction bit-identical to [fail (pristine st)
   remaining]. *)
let recover st sc =
  let up = Scenario.links sc in
  if not (List.exists (fun e -> st.failed.(e)) up) then st
  else begin
    R3_util.Metrics.incr Obs.recoveries;
    let keep = Array.copy st.failed in
    List.iter (fun e -> keep.(e) <- false) up;
    let remaining = ref [] in
    for e = G.num_links st.graph - 1 downto 0 do
      if keep.(e) then remaining := e :: !remaining
    done;
    let remaining =
      List.sort
        (fun a b ->
          Int.compare (canonical_key st.graph a) (canonical_key st.graph b))
        !remaining
    in
    R3_util.Metrics.add Obs.recovery_refolds (List.length remaining);
    List.fold_left fail_one (pristine st) remaining
  end

let apply_failures st links = List.fold_left fail_one st links

let states_bit_identical a b =
  let matrix_eq x y =
    let bits m =
      Array.map (Array.map Int64.bits_of_float) (Routing.to_dense_matrix m)
    in
    bits x = bits y
  in
  a.failed = b.failed
  && matrix_eq a.base b.base
  && matrix_eq a.protection b.protection

let loads st = Routing.loads st.graph ~demands:st.demands st.base

let mlu st =
  let loads = loads st in
  let u = ref 0.0 in
  for e = 0 to G.num_links st.graph - 1 do
    if not st.failed.(e) then begin
      let x = loads.(e) /. G.capacity st.graph e in
      if x > !u then u := x
    end
  done;
  !u

let delivered_fraction st =
  let total = Array.fold_left ( +. ) 0.0 st.demands in
  if total <= 0.0 then 1.0
  else begin
    let got = ref 0.0 in
    Array.iteri
      (fun k d ->
        if d > 0.0 then
          got := !got +. (d *. Routing.delivered st.graph st.base k))
      st.demands;
    !got /. total
  end
