module G = R3_net.Graph
module Routing = R3_net.Routing
module Rowvec = R3_util.Rowvec

type state = {
  graph : G.t;
  pairs : (G.node * G.node) array;
  demands : float array;
  base : Routing.t;
  protection : Routing.t;
  failed : G.link_set;
}

module Obs = struct
  module M = R3_util.Metrics

  let cow_shared_ratio = M.gauge "r3.reconfig.cow_shared_ratio"
end

(* Pre-building the fold indexes here means parallel workers stepping
   the same root state ([Sim.Sweep]) find them ready instead of each
   constructing one on their first step. *)
let of_plan (plan : Offline.plan) =
  let base = Routing.copy plan.Offline.base in
  let protection = Routing.copy plan.Offline.protection in
  Routing.prepare base;
  Routing.prepare protection;
  {
    graph = plan.Offline.graph;
    pairs = plan.Offline.pairs;
    demands = plan.Offline.demands;
    base;
    protection;
    failed = G.no_failures plan.Offline.graph;
  }

let make graph ~pairs ~demands ~base ~protection =
  if Routing.num_commodities protection <> G.num_links graph then
    invalid_arg "Reconfig.make: protection must have one commodity per link";
  let base = Routing.copy base in
  let protection = Routing.copy protection in
  Routing.prepare base;
  Routing.prepare protection;
  { graph; pairs; demands; base; protection; failed = G.no_failures graph }

let one_tol = 1e-9

let detour_vec st e = Routing.rescale_detour ~tol:one_tol st.protection e

let detour st e = Rowvec.to_dense (G.num_links st.graph) (detour_vec st e)

(* The single failure kernel behind [apply_failure], [step] and both
   bidirectional variants: every caller provably runs the same
   arithmetic, so stepped, folded, and direction-paired states cannot
   drift apart. Copy-on-write throughout — rows the failure does not
   touch are shared with the parent, so a scenario-tree traversal pays
   O(changed rows) per edge and nothing here mutates [st]. *)
let fail_one st e =
  if st.failed.(e) then st
  else begin
    let xi = detour_vec st e in
    (* (9): fold the base traffic of the failed link onto the detour. *)
    let base, (bs, bc) =
      Routing.fold_failure st.base ~e ~xi ~replace_with_detour:false
    in
    (* (10): same for every other link's protection routing. The failed
       link's own row becomes the detour xi_e itself: its virtual demand
       leaves X_F, but the forwarding plane keeps using xi_e to carry the
       link's real traffic (and later failures keep rescaling it). *)
    let protection, (ps, pc) =
      Routing.fold_failure st.protection ~e ~xi ~replace_with_detour:true
    in
    let shared = bs + ps and copied = bc + pc in
    if shared + copied > 0 then
      R3_util.Metrics.set_gauge Obs.cow_shared_ratio
        (float_of_int shared /. float_of_int (shared + copied));
    let failed = Array.copy st.failed in
    failed.(e) <- true;
    { st with base; protection; failed }
  end

let fail_bidir st e =
  let st = fail_one st e in
  match G.reverse_link st.graph e with Some r -> fail_one st r | None -> st

let apply_failure = fail_one

let apply_bidir_failure = fail_bidir

let apply_failures st links = List.fold_left apply_failure st links

let step = fail_one

let step_bidir = fail_bidir

let states_bit_identical a b =
  let matrix_eq x y =
    let bits m =
      Array.map (Array.map Int64.bits_of_float) (Routing.to_dense_matrix m)
    in
    bits x = bits y
  in
  a.failed = b.failed
  && matrix_eq a.base b.base
  && matrix_eq a.protection b.protection

let loads st = Routing.loads st.graph ~demands:st.demands st.base

let mlu st =
  let loads = loads st in
  let u = ref 0.0 in
  for e = 0 to G.num_links st.graph - 1 do
    if not st.failed.(e) then begin
      let x = loads.(e) /. G.capacity st.graph e in
      if x > !u then u := x
    end
  done;
  !u

let delivered_fraction st =
  let total = Array.fold_left ( +. ) 0.0 st.demands in
  if total <= 0.0 then 1.0
  else begin
    let got = ref 0.0 in
    Array.iteri
      (fun k d ->
        if d > 0.0 then
          got := !got +. (d *. Routing.delivered st.graph st.base k))
      st.demands;
    !got /. total
  end
