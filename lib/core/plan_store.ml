(* Versioned binary snapshots of offline plans; format notes in
   plan_store.mli and DESIGN.md §16. *)

module Codec = R3_util.Codec
module Rowvec = R3_util.Rowvec
module G = R3_net.Graph
module Routing = R3_net.Routing
module W = Codec.W
module R = Codec.R

let magic = "R3PLANSS"
let version = 1

(* --- graph section ----------------------------------------------------- *)

let enc_graph g =
  let w = W.create () in
  let n = G.num_nodes g and m = G.num_links g in
  W.i32 w n;
  for v = 0 to n - 1 do
    W.string w (G.node_name g v)
  done;
  W.i32 w m;
  for e = 0 to m - 1 do
    W.i32 w (G.src g e);
    W.i32 w (G.dst g e);
    W.float w (G.capacity g e);
    W.float w (G.delay g e)
  done;
  W.contents w

let dec_graph s =
  let r = R.of_string s in
  let n = R.i32 r in
  if n < 0 then raise (R.Corrupt "negative node count");
  let node_names = Array.init n (fun _ -> R.string r) in
  let m = R.i32 r in
  if m < 0 then raise (R.Corrupt "negative link count");
  let links =
    Array.init m (fun _ ->
        let a = R.i32 r in
        let b = R.i32 r in
        let cap = R.float r in
        let delay = R.float r in
        if a < 0 || a >= n || b < 0 || b >= n then
          raise (R.Corrupt "link endpoint out of range");
        (a, b, cap, delay))
  in
  R.expect_end r;
  G.create ~node_names ~links

let graph_fingerprint g = Digest.to_hex (Digest.string (enc_graph g))

(* --- config section ---------------------------------------------------- *)

let enc_option w enc = function
  | None -> W.bool w false
  | Some v ->
    W.bool w true;
    enc v

let dec_option r dec = if R.bool r then Some (dec ()) else None

let method_tag = function Offline.Dualized -> 0 | Offline.Constraint_gen -> 1

let method_of_tag = function
  | 0 -> Offline.Dualized
  | 1 -> Offline.Constraint_gen
  | n -> raise (R.Corrupt (Printf.sprintf "unknown solve method tag %d" n))

let lp_backend_tag = function `Dense -> 0 | `Sparse -> 1 | `Revised -> 2

let lp_backend_of_tag = function
  | 0 -> `Dense
  | 1 -> `Sparse
  | 2 -> `Revised
  | n -> raise (R.Corrupt (Printf.sprintf "unknown lp backend tag %d" n))

let routing_backend_tag = function
  | Routing.Backend.Dense -> 0
  | Routing.Backend.Sparse -> 1
  | Routing.Backend.Auto -> 2

let routing_backend_of_tag = function
  | 0 -> Routing.Backend.Dense
  | 1 -> Routing.Backend.Sparse
  | 2 -> Routing.Backend.Auto
  | n -> raise (R.Corrupt (Printf.sprintf "unknown routing backend tag %d" n))

let enc_config (cfg : Offline.config) =
  let w = W.create () in
  W.i32 w cfg.f;
  W.float w cfg.loop_penalty;
  enc_option w
    (fun (beta, mlu) ->
      W.float w beta;
      W.float w mlu)
    cfg.envelope;
  enc_option w (W.float w) cfg.delay_envelope;
  W.u8 w (method_tag cfg.solve_method);
  enc_option w (W.int w) cfg.max_pivots;
  W.i32 w cfg.cg_max_rounds;
  W.bool w cfg.cg_warm_start;
  W.u8 w (lp_backend_tag cfg.core.lp_backend);
  W.u8 w (routing_backend_tag cfg.core.routing_backend);
  W.int w cfg.core.seed;
  W.float w cfg.core.mcf_epsilon;
  W.float w cfg.core.rescale_tol;
  W.contents w

let dec_config s : Offline.config =
  let r = R.of_string s in
  let f = R.i32 r in
  let loop_penalty = R.float r in
  let envelope =
    dec_option r (fun () ->
        let beta = R.float r in
        let mlu = R.float r in
        (beta, mlu))
  in
  let delay_envelope = dec_option r (fun () -> R.float r) in
  let solve_method = method_of_tag (R.u8 r) in
  let max_pivots = dec_option r (fun () -> R.int r) in
  let cg_max_rounds = R.i32 r in
  let cg_warm_start = R.bool r in
  let lp_backend = lp_backend_of_tag (R.u8 r) in
  let routing_backend = routing_backend_of_tag (R.u8 r) in
  let seed = R.int r in
  let mcf_epsilon = R.float r in
  let rescale_tol = R.float r in
  R.expect_end r;
  {
    f;
    loop_penalty;
    envelope;
    delay_envelope;
    solve_method;
    max_pivots;
    cg_max_rounds;
    cg_warm_start;
    (* [domains] is an execution knob (results are domain-count
       independent), so it is deliberately not part of the snapshot
       format or its fingerprint. *)
    core =
      { lp_backend; routing_backend; seed; mcf_epsilon; rescale_tol; domains = None };
  }

(* --- workload section (commodities + demands) -------------------------- *)

let enc_workload ~pairs ~demands =
  let w = W.create () in
  W.i32 w (Array.length pairs);
  Array.iter
    (fun (a, b) ->
      W.i32 w a;
      W.i32 w b)
    pairs;
  W.float_array w demands;
  W.contents w

let dec_workload s =
  let r = R.of_string s in
  let nk = R.i32 r in
  if nk < 0 then raise (R.Corrupt "negative commodity count");
  let pairs =
    Array.init nk (fun _ ->
        let a = R.i32 r in
        let b = R.i32 r in
        (a, b))
  in
  let demands = R.float_array r in
  if Array.length demands <> nk then
    raise (R.Corrupt "demand array does not match commodity count");
  R.expect_end r;
  (pairs, demands)

(* --- routings ---------------------------------------------------------- *)

(* Rows are written in their exact stored representation (dense payloads
   dense, sparse payloads sparse) so a reload reproduces not just the
   values but the storage mix — an [Auto] routing keeps whatever
   densification decisions the solve made. *)
let enc_routing w rt =
  W.u8 w (routing_backend_tag (Routing.backend rt));
  let nk = Routing.num_commodities rt in
  W.i32 w nk;
  Array.iter
    (fun (a, b) ->
      W.i32 w a;
      W.i32 w b)
    (Routing.pairs rt);
  for k = 0 to nk - 1 do
    match Routing.row_storage rt k with
    | `Dense a ->
      W.u8 w 0;
      W.float_array w a
    | `Sparse v ->
      W.u8 w 1;
      let idx, vals, n = Rowvec.raw v in
      W.int_array w (Array.sub idx 0 n);
      W.float_array w (Array.sub vals 0 n)
  done

let dec_routing r g =
  let backend = routing_backend_of_tag (R.u8 r) in
  let nk = R.i32 r in
  if nk < 0 then raise (R.Corrupt "negative routing row count");
  let pairs =
    Array.init nk (fun _ ->
        let a = R.i32 r in
        let b = R.i32 r in
        (a, b))
  in
  let rt = Routing.create ~backend g ~pairs in
  for k = 0 to nk - 1 do
    let storage =
      match R.u8 r with
      | 0 -> `Dense (R.float_array r)
      | 1 ->
        let idx = R.int_array r in
        let vals = R.float_array r in
        let n = Array.length idx in
        if Array.length vals <> n then
          raise (R.Corrupt "sparse row index/value length mismatch");
        for i = 1 to n - 1 do
          if idx.(i - 1) >= idx.(i) then
            raise (R.Corrupt "sparse row indices not strictly ascending")
        done;
        `Sparse (Rowvec.of_sorted idx vals n)
      | t -> raise (R.Corrupt (Printf.sprintf "unknown row payload tag %d" t))
    in
    try Routing.set_row_storage rt k storage
    with Invalid_argument msg -> raise (R.Corrupt msg)
  done;
  rt

(* --- plan snapshots ---------------------------------------------------- *)

let sections ~config (plan : Offline.plan) =
  ( enc_graph plan.graph,
    enc_config config,
    enc_workload ~pairs:plan.pairs ~demands:plan.demands )

let fingerprint_of_sections gs cs ws =
  Digest.to_hex (Digest.string (gs ^ cs ^ ws))

let fingerprint ~config plan =
  let gs, cs, ws = sections ~config plan in
  fingerprint_of_sections gs cs ws

let save path ?config (plan : Offline.plan) =
  let config =
    match config with Some c -> c | None -> Offline.default_config ~f:plan.f
  in
  let gs, cs, ws = sections ~config plan in
  let w = W.create ~size:(1 lsl 16) () in
  W.string w (fingerprint_of_sections gs cs ws);
  W.string w gs;
  W.string w cs;
  W.string w ws;
  enc_routing w plan.base;
  enc_routing w plan.protection;
  W.float w plan.mlu;
  W.i32 w plan.f;
  W.int w plan.lp_vars;
  W.int w plan.lp_rows;
  W.int w plan.lp_pivots;
  Codec.write_framed path ~magic ~version (W.contents w)

let decode_payload payload =
  let r = R.of_string payload in
  let stored_fp = R.string r in
  let gs = R.string r in
  let cs = R.string r in
  let ws = R.string r in
  let actual_fp = fingerprint_of_sections gs cs ws in
  if stored_fp <> actual_fp then
    raise
      (R.Corrupt
         (Printf.sprintf "fingerprint mismatch (stored %s, computed %s)"
            stored_fp actual_fp));
  let graph = dec_graph gs in
  let config = dec_config cs in
  let pairs, demands = dec_workload ws in
  let base = dec_routing r graph in
  let protection = dec_routing r graph in
  let mlu = R.float r in
  let f = R.i32 r in
  let lp_vars = R.int r in
  let lp_rows = R.int r in
  let lp_pivots = R.int r in
  R.expect_end r;
  let plan : Offline.plan =
    { graph; f; pairs; demands; base; protection; mlu; lp_vars; lp_rows; lp_pivots }
  in
  (plan, config, actual_fp, gs, cs)

let load ?expect_graph ?expect_config path =
  match Codec.read_framed path ~magic ~version with
  | Error _ as e -> e
  | Ok payload -> (
    match decode_payload payload with
    | exception R.Corrupt msg ->
      Error (Printf.sprintf "%s: malformed plan snapshot: %s" path msg)
    | plan, config, _fp, gs, cs ->
      let graph_ok =
        match expect_graph with
        | Some g when enc_graph g <> gs ->
          Error
            (Printf.sprintf
               "%s: plan was solved for a different topology (%d nodes / %d \
                links in snapshot)"
               path
               (G.num_nodes plan.graph)
               (G.num_links plan.graph))
        | _ -> Ok ()
      in
      let config_ok =
        match expect_config with
        | Some c when enc_config c <> cs ->
          Error
            (Printf.sprintf
               "%s: plan was solved under a different configuration" path)
        | _ -> Ok ()
      in
      (match (graph_ok, config_ok) with
      | Error e, _ | _, Error e -> Error e
      | Ok (), Ok () -> Ok (plan, config)))

type info = {
  version : int;
  bytes : int;
  fingerprint : string;
  nodes : int;
  links : int;
  commodities : int;
  f : int;
  mlu : float;
  solve_method : Offline.method_;
  config : Offline.config;
  base_sparse_rows : int;
  protection_sparse_rows : int;
}

let inspect path =
  match Codec.read_framed path ~magic ~version with
  | Error _ as e -> e
  | Ok payload -> (
    match decode_payload payload with
    | exception R.Corrupt msg ->
      Error (Printf.sprintf "%s: malformed plan snapshot: %s" path msg)
    | plan, config, fp, _gs, _cs ->
      let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
      Ok
        {
          version;
          bytes;
          fingerprint = fp;
          nodes = G.num_nodes plan.graph;
          links = G.num_links plan.graph;
          commodities = Array.length plan.pairs;
          f = plan.f;
          mlu = plan.mlu;
          solve_method = config.solve_method;
          config;
          base_sparse_rows = Routing.sparse_rows plan.base;
          protection_sparse_rows = Routing.sparse_rows plan.protection;
        })

(* --- traffic snapshots ------------------------------------------------- *)

let traffic_magic = "R3TMSNAP"
let traffic_version = 1

let save_traffic path (tm : R3_net.Traffic.t) =
  let w = W.create () in
  W.i32 w (Array.length tm);
  Array.iter (W.float_array w) tm;
  Codec.write_framed path ~magic:traffic_magic ~version:traffic_version
    (W.contents w)

let load_traffic path =
  match Codec.read_framed path ~magic:traffic_magic ~version:traffic_version with
  | Error _ as e -> e
  | Ok payload -> (
    try
      let r = R.of_string payload in
      let n = R.i32 r in
      if n < 0 then raise (R.Corrupt "negative matrix dimension");
      let tm =
        Array.init n (fun _ ->
            let row = R.float_array r in
            if Array.length row <> n then
              raise (R.Corrupt "traffic matrix is not square");
            row)
      in
      R.expect_end r;
      Ok tm
    with R.Corrupt msg ->
      Error (Printf.sprintf "%s: malformed traffic snapshot: %s" path msg))
