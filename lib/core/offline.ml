module P = R3_lp.Problem
module G = R3_net.Graph
module Routing = R3_net.Routing
module Traffic = R3_net.Traffic
module Parallel = R3_util.Parallel

module Obs = struct
  module M = R3_util.Metrics
  module T = R3_util.Trace

  let computes = M.counter "offline.computes"
  let cg_rounds = M.counter "offline.cg.rounds"
  let cg_cuts = M.counter "offline.cg.cuts"
  let compute_seconds = M.histogram "offline.compute.seconds"
end

type base_spec = Joint | Fixed of Routing.t

type method_ = Dualized | Constraint_gen

type config = {
  f : int;
  loop_penalty : float;
  envelope : (float * float) option;
  delay_envelope : float option;
  solve_method : method_;
  max_pivots : int option;
  cg_max_rounds : int;
  cg_warm_start : bool;
  core : Config.t;
}

let default_config ~f =
  {
    f;
    loop_penalty = 1e-6;
    envelope = None;
    delay_envelope = None;
    solve_method = Dualized;
    max_pivots = None;
    cg_max_rounds = 60;
    cg_warm_start = true;
    core = Config.default;
  }

let with_core core cfg = { cfg with core }

type plan = {
  graph : G.t;
  f : int;
  pairs : (G.node * G.node) array;
  demands : float array;
  base : Routing.t;
  protection : Routing.t;
  mlu : float;
  lp_vars : int;
  lp_rows : int;
  lp_pivots : int;
}

(* Commodities shared by all traffic matrices: the union of supports, with
   per-matrix demand vectors aligned on it. *)
let union_commodities g tms =
  let n = G.num_nodes g in
  let union = Array.make_matrix n n 0.0 in
  List.iter
    (fun tm ->
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if tm.(a).(b) > union.(a).(b) then union.(a).(b) <- tm.(a).(b)
        done
      done)
    tms;
  let pairs, _ = Traffic.commodities union in
  let demand_arrays =
    List.map (fun tm -> Array.map (fun (a, b) -> tm.(a).(b)) pairs) tms
  in
  let max_demands = Array.map (fun (a, b) -> union.(a).(b)) pairs in
  (pairs, demand_arrays, max_demands)

(* The base-load expression on link [e] for demand vector [demands]:
   either LP terms over the joint r variables, or a precomputed constant. *)
type base_load = Terms of (float array -> int -> (float * P.var) list) | Const of float array array
(* Const.(h).(e): per traffic matrix h, per link e *)

let status_error = function
  | P.Optimal s -> Ok s
  | P.Infeasible ->
    Error
      "R3 offline: LP infeasible - F failures can partition the network, or \
       the penalty envelope is too tight"
  | P.Unbounded -> Error "R3 offline: LP unbounded (internal error)"
  | P.Iteration_limit -> Error "R3 offline: simplex pivot budget exhausted"

let solve_or_error ?backend lp max_pivots =
  status_error (P.solve ?backend ?max_pivots lp)

let add_envelope_rows lp g (cfg : config) r_vars pairs demand_arrays =
  match cfg.envelope with
  | None -> ()
  | Some (beta, mlu_opt) ->
    List.iter
      (fun demands ->
        for e = 0 to G.num_links g - 1 do
          let terms = ref [] in
          Array.iteri
            (fun k row ->
              match row.(e) with
              | Some v when demands.(k) > 0.0 -> terms := (demands.(k), v) :: !terms
              | Some _ | None -> ())
            r_vars;
          if !terms <> [] then
            P.constr lp
              ~name:(Printf.sprintf "envelope_%d" e)
              !terms P.Le
              (beta *. mlu_opt *. G.capacity g e)
        done)
      demand_arrays;
    ignore pairs

let add_delay_rows lp g (cfg : config) r_vars pairs =
  match cfg.delay_envelope with
  | None -> ()
  | Some gamma ->
    Array.iteri
      (fun k (a, b) ->
        let best = R3_net.Spf.min_propagation_delay g ~src:a ~dst:b () in
        if best < infinity then begin
          let terms = ref [] in
          Array.iteri
            (fun e v ->
              match v with
              | Some var when G.delay g e > 0.0 -> terms := (G.delay g e, var) :: !terms
              | Some _ | None -> ())
            r_vars.(k);
          if !terms <> [] then
            P.constr lp
              ~name:(Printf.sprintf "delay_%d" k)
              !terms P.Le (gamma *. best)
        end)
      pairs

(* Build the parts common to both methods: MLU variable, r variables (or
   fixed base loads), p variables with routing constraints. *)
let build_master lp g (cfg : config) base_spec pairs demand_arrays =
  Obs.T.with_span "offline.build" @@ fun () ->
  let mlu = P.var lp ~lb:0.0 "MLU" in
  let link_prs = Lp_build.link_pairs g in
  let p_vars = Lp_build.routing_vars lp g ~prefix:"p" ~pairs:link_prs in
  Lp_build.routing_constraints lp g ~pairs:link_prs p_vars;
  let r_vars, base_load =
    match base_spec with
    | Joint ->
      let r_vars = Lp_build.routing_vars lp g ~prefix:"r" ~pairs in
      Lp_build.routing_constraints lp g ~pairs r_vars;
      add_envelope_rows lp g cfg r_vars pairs demand_arrays;
      add_delay_rows lp g cfg r_vars pairs;
      let terms demands e =
        let acc = ref [] in
        Array.iteri
          (fun k row ->
            match row.(e) with
            | Some v when demands.(k) > 0.0 -> acc := (demands.(k), v) :: !acc
            | Some _ | None -> ())
          r_vars;
        !acc
      in
      (Some r_vars, Terms terms)
    | Fixed r ->
      if Routing.num_commodities r <> Array.length pairs then
        invalid_arg "Offline: fixed base routing commodities mismatch";
      let loads =
        List.map (fun demands -> Routing.loads g ~demands r) demand_arrays
      in
      (None, Const (Array.of_list loads))
  in
  P.minimize lp [ (1.0, mlu) ];
  Lp_build.add_loop_penalty lp cfg.loop_penalty p_vars;
  Lp_build.penalize_self_protection lp g cfg.loop_penalty p_vars;
  (match r_vars with
  | Some rv -> Lp_build.add_loop_penalty lp cfg.loop_penalty rv
  | None -> ());
  (mlu, p_vars, r_vars, base_load, link_prs)

(* Base-load contribution for matrix index [h] on link [e], as LP terms and
   a constant part. [demand_arrs] is indexed by matrix so the per-link
   loops stay O(1) per lookup. *)
let base_terms base_load (demand_arrs : float array array) h e =
  match base_load with
  | Terms f -> (f demand_arrs.(h) e, 0.0)
  | Const loads -> ([], loads.(h).(e))

let finish ~(cfg : config) lp sol g pairs p_vars r_vars base_spec mlu_var =
  (* Protection rows have support the size of one detour path; the base
     routing spreads over much of the network and stays dense. *)
  let protection =
    Lp_build.extract_routing ~backend:cfg.core.Config.routing_backend sol g
      ~pairs:(Lp_build.link_pairs g) p_vars
  in
  let base =
    match (base_spec, r_vars) with
    | Fixed r, _ -> r
    | Joint, Some rv -> Lp_build.extract_routing sol g ~pairs rv
    | Joint, None -> assert false
  in
  let mlu = sol.P.value mlu_var in
  ignore lp;
  (base, protection, mlu)

(* ---- Method 1: full dualization, the paper's LP (7). ---- *)

let compute_dualized (cfg : config) g tms base_spec =
  let pairs, demand_arrays, max_demands = union_commodities g tms in
  let demand_arrs = Array.of_list demand_arrays in
  let lp = P.create ~name:"r3-offline-dual" () in
  let mlu, p_vars, r_vars, base_load, _ = build_master lp g cfg base_spec pairs demand_arrays in
  let m = G.num_links g in
  (* pi_e(l) exists exactly where p_l(e) exists; lambda_e always. *)
  let lambda = Array.init m (fun e -> P.var lp ~lb:0.0 (Printf.sprintf "lam%d" e)) in
  let pi = Array.make_matrix m m None in
  for e = 0 to m - 1 do
    for l = 0 to m - 1 do
      match p_vars.(l).(e) with
      | None -> ()
      | Some p_le ->
        let v = P.var lp ~lb:0.0 (Printf.sprintf "pi%d_%d" e l) in
        pi.(e).(l) <- Some v;
        (* (6): pi_e(l) + lambda_e >= c_l * p_l(e) *)
        P.constr lp
          ~name:(Printf.sprintf "dual%d_%d" e l)
          [ (1.0, v); (1.0, lambda.(e)); (-.G.capacity g l, p_le) ]
          P.Ge 0.0
    done
  done;
  (* Capacity rows per traffic matrix per link. *)
  for h = 0 to Array.length demand_arrs - 1 do
    for e = 0 to m - 1 do
      let terms, const = base_terms base_load demand_arrs h e in
      let virt = ref [ (float_of_int cfg.f, lambda.(e)) ] in
      for l = 0 to m - 1 do
        match pi.(e).(l) with
        | Some v -> virt := (1.0, v) :: !virt
        | None -> ()
      done;
      P.constr lp
        ~name:(Printf.sprintf "cap%d_%d" h e)
        (((-.G.capacity g e, mlu) :: terms) @ !virt)
        P.Le (-.const)
    done
  done;
  match
    Obs.T.with_span "offline.lp_solve" (fun () ->
        solve_or_error ~backend:cfg.core.Config.lp_backend lp cfg.max_pivots)
  with
  | Error _ as e -> e
  | Ok sol ->
    let base, protection, mlu_val = finish ~cfg lp sol g pairs p_vars r_vars base_spec mlu in
    Ok
      {
        graph = g;
        f = cfg.f;
        pairs;
        demands = max_demands;
        base;
        protection;
        mlu = mlu_val;
        lp_vars = P.num_vars lp;
        lp_rows = P.num_constraints lp;
        lp_pivots = sol.P.pivots;
      }

(* Knapsack audit of a finished routing (same formula as Verify, inlined
   here to avoid a dependency cycle). Embarrassingly parallel per link;
   the merge is a fold over the slot-ordered result array, so the value
   is independent of the domain count. *)
let audit_worst_mlu g ~f ~base_loads ~protection =
  Obs.T.with_span "offline.audit" @@ fun () ->
  let m = G.num_links g in
  let utils =
    Parallel.init ~chunk:(Parallel.chunk_hint m) m (fun e ->
        let weights =
          Array.init m (fun l -> G.capacity g l *. Routing.get protection l e)
        in
        let ml = Virtual_demand.worst_virtual_load ~f weights in
        (base_loads.(e) +. ml) /. G.capacity g e)
  in
  Array.fold_left Float.max 0.0 utils

(* ---- Method 2: constraint generation with the knapsack oracle. ---- *)

let compute_cg (cfg : config) g tms base_spec =
  let pairs, demand_arrays, max_demands = union_commodities g tms in
  let demand_arrs = Array.of_list demand_arrays in
  let nh = Array.length demand_arrs in
  let lp = P.create ~name:"r3-offline-cg" () in
  let mlu, p_vars, r_vars, base_load, link_prs = build_master lp g cfg base_spec pairs demand_arrays in
  let m = G.num_links g in
  (* Initial rows: no-failure load must fit within MLU * capacity. *)
  for h = 0 to nh - 1 do
    for e = 0 to m - 1 do
      let terms, const = base_terms base_load demand_arrs h e in
      if terms <> [] || const > 0.0 then
        P.constr lp
          ~name:(Printf.sprintf "cap0_%d_%d" h e)
          ((-.G.capacity g e, mlu) :: terms)
          P.Le (-.const)
    done
  done;
  (* Warm start: translate the LP once and repair the basis after each
     batch of cuts; cold mode re-solves from scratch every round. *)
  let sess =
    if cfg.cg_warm_start then
      Some (P.session ~backend:cfg.core.Config.lp_backend ?max_pivots:cfg.max_pivots lp)
    else None
  in
  let cold_pivots = ref 0 in
  let solve_round () =
    Obs.T.with_span "offline.lp_solve" @@ fun () ->
    match sess with
    | Some s -> status_error (P.resolve s)
    | None -> (
      match solve_or_error ~backend:cfg.core.Config.lp_backend lp cfg.max_pivots with
      | Ok sol ->
        cold_pivots := !cold_pivots + sol.P.pivots;
        Ok sol
      | Error _ as e -> e)
  in
  let total_pivots () =
    match sess with Some s -> P.session_pivots s | None -> !cold_pivots
  in
  let seen_cuts = Hashtbl.create 256 in
  let rec iterate round =
    (* On budget exhaustion the last solution is still a valid routing;
       report it with its audited (true) worst-case MLU. *)
    let budget_left = round <= cfg.cg_max_rounds in
    R3_util.Metrics.incr Obs.cg_rounds;
    begin
      match solve_round () with
      | Error _ as e -> e
      | Ok sol ->
        let p = Lp_build.extract_routing sol g ~pairs:link_prs p_vars in
        let mlu_val = sol.P.value mlu in
        let base_loads_h =
          match base_load with
          | Const loads -> loads
          | Terms _ ->
            (* joint: evaluate current r against each matrix *)
            let r =
              match r_vars with
              | Some rv -> Lp_build.extract_routing sol g ~pairs rv
              | None -> assert false
            in
            Array.init nh (fun h -> Routing.loads g ~demands:demand_arrs.(h) r)
        in
        (* Separation oracle: chunked (matrix, link) index ranges
           submitted to the persistent pool each round. Each task is
           independent and results come back in slot order, so the cuts
           added below appear in exactly the sequential (h, e) order. *)
        let oracle =
          Obs.T.with_span "offline.oracle" @@ fun () ->
          Parallel.init ~chunk:(Parallel.chunk_hint (nh * m)) (nh * m) (fun i ->
              let h = i / m and e = i mod m in
              let weights =
                Array.init m (fun l -> G.capacity g l *. Routing.get p l e)
              in
              let ml, set = Virtual_demand.worst_virtual_load_set ~f:cfg.f weights in
              (h, e, ml, set))
        in
        let violated = ref 0 in
        Array.iter
          (fun (h, e, ml, set) ->
            let cap = G.capacity g e in
            if base_loads_h.(h).(e) +. ml > ((mlu_val +. 1e-7) *. cap) +. 1e-7 then begin
              let key = (h, e, List.sort Int.compare set) in
              if not (Hashtbl.mem seen_cuts key) then begin
                Hashtbl.add seen_cuts key ();
                incr violated;
                let terms, const = base_terms base_load demand_arrs h e in
                let p_terms =
                  List.filter_map
                    (fun l ->
                      Option.map (fun v -> (G.capacity g l, v)) p_vars.(l).(e))
                    set
                in
                P.constr lp
                  ~name:(Printf.sprintf "cut%d_%d_%d" round h e)
                  (((-.cap, mlu) :: terms) @ p_terms)
                  P.Le (-.const)
              end
            end)
          oracle;
        R3_util.Metrics.add Obs.cg_cuts !violated;
        if !violated = 0 || not budget_left then begin
          Obs.T.add_attr "cg_rounds" (Obs.T.Int round);
          let base, protection, mlu_val = finish ~cfg lp sol g pairs p_vars r_vars base_spec mlu in
          let mlu_val =
            if !violated = 0 then mlu_val
            else begin
              (* budget exhausted: audit the true worst case of this plan *)
              Array.fold_left
                (fun acc demands ->
                  let base_loads = Routing.loads g ~demands base in
                  Float.max acc
                    (audit_worst_mlu g ~f:cfg.f ~base_loads ~protection))
                0.0 demand_arrs
            end
          in
          Ok
            {
              graph = g;
              f = cfg.f;
              pairs;
              demands = max_demands;
              base;
              protection;
              mlu = mlu_val;
              lp_vars = P.num_vars lp;
              lp_rows = P.num_constraints lp;
              lp_pivots = total_pivots ();
            }
        end
        else iterate (round + 1)
    end
  in
  iterate 1

let compute_multi (cfg : config) g tms base_spec =
  if cfg.f < 0 then invalid_arg "Offline: f must be nonnegative";
  if tms = [] then invalid_arg "Offline: need at least one traffic matrix";
  R3_util.Metrics.incr Obs.computes;
  Obs.M.time Obs.compute_seconds @@ fun () ->
  Obs.T.with_span "offline.compute"
    ~attrs:
      [
        ("f", Obs.T.Int cfg.f);
        ( "method",
          Obs.T.String
            (match cfg.solve_method with
            | Dualized -> "dualized"
            | Constraint_gen -> "cg") );
      ]
  @@ fun () ->
  match cfg.solve_method with
  | Dualized -> compute_dualized cfg g tms base_spec
  | Constraint_gen -> compute_cg cfg g tms base_spec

let compute cfg g tm base_spec = compute_multi cfg g [ tm ] base_spec
