type t = {
  lp_backend : R3_lp.Problem.backend;
  routing_backend : R3_net.Routing.Backend.t;
  seed : int;
  mcf_epsilon : float;
  rescale_tol : float;
}

let default =
  {
    lp_backend = `Revised;
    routing_backend = R3_net.Routing.Backend.Sparse;
    seed = 42;
    mcf_epsilon = 0.06;
    rescale_tol = 1e-9;
  }

let with_lp_backend b t = { t with lp_backend = b }
let with_routing_backend b t = { t with routing_backend = b }
let with_seed seed t = { t with seed }
let with_mcf_epsilon mcf_epsilon t = { t with mcf_epsilon }
let with_rescale_tol rescale_tol t = { t with rescale_tol }

let with_lp_backend_string s t =
  match R3_lp.Problem.backend_of_string s with
  | Some b -> Ok (with_lp_backend b t)
  | None ->
    Error (Printf.sprintf "unknown LP backend %S (use tableau, revised or dense)" s)

let with_routing_backend_string s t =
  match R3_net.Routing.Backend.of_string s with
  | Some b -> Ok (with_routing_backend b t)
  | None ->
    Error
      (Printf.sprintf "unknown routing backend %S (use dense, sparse or auto)" s)

let to_json t =
  R3_util.Json.Obj
    [
      ("lp_backend", R3_util.Json.String (R3_lp.Problem.backend_name t.lp_backend));
      ( "routing_backend",
        R3_util.Json.String (R3_net.Routing.Backend.to_string t.routing_backend) );
      ("seed", R3_util.Json.Int t.seed);
      ("mcf_epsilon", R3_util.Json.Float t.mcf_epsilon);
      ("rescale_tol", R3_util.Json.Float t.rescale_tol);
    ]
