type t = {
  lp_backend : R3_lp.Problem.backend;
  routing_backend : R3_net.Routing.Backend.t;
  seed : int;
  mcf_epsilon : float;
  rescale_tol : float;
  domains : int option;
}

let default =
  {
    lp_backend = `Revised;
    routing_backend = R3_net.Routing.Backend.Sparse;
    seed = 42;
    mcf_epsilon = 0.06;
    rescale_tol = 1e-9;
    domains = None;
  }

let with_lp_backend b t = { t with lp_backend = b }
let with_routing_backend b t = { t with routing_backend = b }
let with_seed seed t = { t with seed }
let with_mcf_epsilon mcf_epsilon t = { t with mcf_epsilon }
let with_rescale_tol rescale_tol t = { t with rescale_tol }

let with_domains d t =
  { t with domains = Some (Int.max 1 (Int.min 64 d)) }

(* Resize the shared pool to this config's preference; [None] keeps the
   current (auto) size. Callers apply it once at entry points (the CLI
   config term), not per solve. *)
let apply_domains t =
  match t.domains with
  | Some d -> R3_util.Parallel.set_domains d
  | None -> ()

let with_lp_backend_string s t =
  match R3_lp.Problem.backend_of_string s with
  | Some b -> Ok (with_lp_backend b t)
  | None ->
    Error (Printf.sprintf "unknown LP backend %S (use tableau, revised or dense)" s)

let with_domains_string s t =
  match s with
  | "auto" -> Ok { t with domains = None }
  | _ -> (
    match int_of_string_opt s with
    | Some d when d >= 1 -> Ok (with_domains d t)
    | Some _ | None ->
      Error
        (Printf.sprintf "bad domain count %S (use a positive integer or auto)" s))

let with_routing_backend_string s t =
  match R3_net.Routing.Backend.of_string s with
  | Some b -> Ok (with_routing_backend b t)
  | None ->
    Error
      (Printf.sprintf "unknown routing backend %S (use dense, sparse or auto)" s)

let to_json t =
  R3_util.Json.Obj
    [
      ("lp_backend", R3_util.Json.String (R3_lp.Problem.backend_name t.lp_backend));
      ( "routing_backend",
        R3_util.Json.String (R3_net.Routing.Backend.to_string t.routing_backend) );
      ("seed", R3_util.Json.Int t.seed);
      ("mcf_epsilon", R3_util.Json.Float t.mcf_epsilon);
      ("rescale_tol", R3_util.Json.Float t.rescale_tol);
      ( "domains",
        match t.domains with
        | Some d -> R3_util.Json.Int d
        | None -> R3_util.Json.String "auto" );
    ]
