module G = R3_net.Graph
module Routing = R3_net.Routing

let offline_worst_mlu g ~f ~base_loads ~protection =
  let m = G.num_links g in
  let worst = ref 0.0 in
  for e = 0 to m - 1 do
    let weights =
      Array.init m (fun l -> G.capacity g l *. Routing.get protection l e)
    in
    let ml = Virtual_demand.worst_virtual_load ~f weights in
    let u = (base_loads.(e) +. ml) /. G.capacity g e in
    if u > !worst then worst := u
  done;
  !worst

let scenario_mlu plan links =
  let st = Reconfig.apply_failures (Reconfig.of_plan plan) links in
  Reconfig.mlu st

let max_mlu_over_scenarios plan scenarios =
  List.fold_left (fun acc s -> Float.max acc (scenario_mlu plan s)) 0.0 scenarios

(* All size-<=k subsets of [0, m), shortcut for exhaustive checking. *)
let subsets_upto m k =
  let acc = ref [] in
  let rec go start chosen remaining =
    if chosen <> [] then acc := List.rev chosen :: !acc;
    if remaining > 0 then
      for e = start to m - 1 do
        go (e + 1) (e :: chosen) (remaining - 1)
      done
  in
  go 0 [] k;
  !acc

let count_subsets m k =
  let rec binom n r =
    if r = 0 || r = n then 1.0 else binom (n - 1) (r - 1) +. binom (n - 1) r
  in
  let total = ref 0.0 in
  for i = 1 to Int.min k m do
    total := !total +. binom m i
  done;
  !total

let check_theorem1 ?(samples = 300) ?(seed = 12345) ?(tol = 1e-5) (plan : Offline.plan) =
  let g = plan.Offline.graph in
  let m = G.num_links g in
  let f = plan.Offline.f in
  if plan.Offline.mlu > 1.0 +. tol then
    Error
      (Printf.sprintf
         "theorem 1 precondition not met: offline MLU %.4f > 1 (no guarantee)"
         plan.Offline.mlu)
  else begin
    let scenarios =
      if count_subsets m f <= 5_000.0 then subsets_upto m f
      else begin
        let rng = R3_util.Prng.create seed in
        List.init samples (fun _ ->
            let k = 1 + R3_util.Prng.int rng f in
            Array.to_list
              (R3_util.Prng.sample rng k (Array.init m (fun e -> e))))
      end
    in
    let rec check = function
      | [] -> Ok ()
      | s :: rest ->
        let u = scenario_mlu plan s in
        if u > 1.0 +. tol then
          Error
            (Printf.sprintf "scenario [%s] yields MLU %.6f > 1"
               (String.concat ";" (List.map string_of_int s))
               u)
        else check rest
    in
    check scenarios
  end

let routing_distance a b =
  let acc = ref 0.0 in
  let m = Routing.num_links a in
  for k = 0 to Routing.num_commodities a - 1 do
    let ra = Routing.row_dense a k and rb = Routing.row_dense b k in
    for e = 0 to m - 1 do
      let d = Float.abs (ra.(e) -. rb.(e)) in
      if d > !acc then acc := d
    done
  done;
  !acc

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let check_order_independence ?(tol = 1e-7) (plan : Offline.plan) links =
  match permutations links with
  | [] | [ _ ] -> Ok ()
  | reference :: rest ->
    let final order = Reconfig.apply_failures (Reconfig.of_plan plan) order in
    let ref_state = final reference in
    let rec check = function
      | [] -> Ok ()
      | order :: tl ->
        let st = final order in
        let db = routing_distance ref_state.Reconfig.base st.Reconfig.base in
        let dp = routing_distance ref_state.Reconfig.protection st.Reconfig.protection in
        if db > tol || dp > tol then
          Error
            (Printf.sprintf
               "order [%s] diverges: base distance %.2e, protection distance %.2e"
               (String.concat ";" (List.map string_of_int order))
               db dp)
        else check tl
    in
    check rest
