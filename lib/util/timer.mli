(** Wall-clock timing helpers for the benchmark harness. All elapsed
    deltas are clamped to [>= 0]: [Unix.gettimeofday] is not monotonic and
    an NTP step mid-measurement must not produce negative durations. *)

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] runs [f ()] for effects and returns the elapsed seconds. *)
val time_only : (unit -> unit) -> float

(** [stopwatch ()] returns a function yielding the seconds elapsed since
    the stopwatch was created — for accumulating phase timings without
    nesting {!time} closures. *)
val stopwatch : unit -> unit -> float

(** [best_of ~repeats f] runs [f ()] [repeats] times (default 3) and
    returns the fastest elapsed seconds — the standard low-noise
    measurement for short benchmark sections. Raises [Invalid_argument]
    if [repeats < 1]. *)
val best_of : ?repeats:int -> (unit -> unit) -> float
