(* Wall-clock deltas are clamped to >= 0: [Unix.gettimeofday] is not
   monotonic, and an NTP step between the two readings would otherwise
   yield a negative elapsed time that poisons [best_of] minima and any
   histogram fed from these timings. *)
let clamp dt = if dt > 0.0 then dt else 0.0

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, clamp (t1 -. t0))

let time_only f =
  let _, dt = time f in
  dt

let stopwatch () =
  let t0 = Unix.gettimeofday () in
  fun () -> clamp (Unix.gettimeofday () -. t0)

let best_of ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timer.best_of: repeats < 1";
  let best = ref infinity in
  for _ = 1 to repeats do
    let dt = time_only f in
    if dt < !best then best := dt
  done;
  !best
