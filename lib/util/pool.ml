(* Persistent work-stealing executor. One pool per process: worker
   domains with Chase-Lev deques, a lock-protected injector queue for
   submissions from outside the pool, and an epoch-counted parking
   protocol so idle workers sleep instead of spinning. DESIGN.md §17. *)

(* ---------- observability ---------- *)

module Obs = struct
  let tasks = Metrics.counter "r3.pool.tasks"
  let steals = Metrics.counter "r3.pool.steals"
  let parks = Metrics.counter "r3.pool.parks"
  let resizes = Metrics.counter "r3.pool.resizes"
  let max_queue_depth = Metrics.gauge "r3.pool.max_queue_depth"
  let workers = Metrics.gauge "r3.pool.workers"
end

(* Always-on mirrors of the r3.pool.* counters: the bench harness turns
   Metrics off while measuring instrumentation overhead, and the pool
   stats it reports afterwards must not lose that window. *)
let stat_tasks = Atomic.make 0
let stat_steals = Atomic.make 0
let stat_parks = Atomic.make 0
let stat_resizes = Atomic.make 0
let stat_max_depth = Atomic.make 0

let rec bump_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v

(* ---------- Chase-Lev deque ---------- *)

(* The classic work-stealing deque (Chase & Lev, SPAA'05): the owner
   pushes and pops at [bottom] without synchronization beyond SC atomic
   loads/stores; thieves advance [top] with a CAS. [top] is monotone, so
   there is no ABA. The circular buffer is published through an Atomic
   and grown by doubling; entries [top, bottom) stay valid in the old
   buffer, so a thief holding a stale buffer still reads the element it
   then CASes for. All three cells are SC atomics, which is what makes
   the element read before the CAS safe under the OCaml memory model:
   the owner only reuses a slot after growing (never in place), and a
   slot's job was published by the SC store to [bottom] that made the
   index visible. *)
module Deque = struct
  let dummy : unit -> unit = fun () -> ()

  type t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : (unit -> unit) array Atomic.t;
  }

  let create () =
    { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (Array.make 64 dummy) }

  (* Owner only. *)
  let grow d t b =
    let a = Atomic.get d.buf in
    let len = Array.length a in
    let na = Array.make (2 * len) dummy in
    for i = t to b - 1 do
      na.(i land ((2 * len) - 1)) <- a.(i land (len - 1))
    done;
    Atomic.set d.buf na;
    na

  (* Owner only. *)
  let push d job =
    let b = Atomic.get d.bottom and t = Atomic.get d.top in
    let a = Atomic.get d.buf in
    let a = if b - t >= Array.length a then grow d t b else a in
    a.(b land (Array.length a - 1)) <- job;
    Atomic.set d.bottom (b + 1);
    bump_max stat_max_depth (b + 1 - t)

  (* Owner only. *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      (* was empty *)
      Atomic.set d.bottom t;
      None
    end
    else begin
      let a = Atomic.get d.buf in
      let job = a.(b land (Array.length a - 1)) in
      if b > t then Some job
      else begin
        (* last element: race thieves for it via the CAS on [top] *)
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then Some job else None
      end
    end

  (* Any domain. [None] means empty or a lost race; callers rescan. *)
  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if b - t <= 0 then None
    else begin
      let a = Atomic.get d.buf in
      let job = a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set d.top t (t + 1) then Some job else None
    end
end

(* ---------- pool state ---------- *)

type worker = { id : int; deque : Deque.t }

let lock = Mutex.create ()
let cond = Condition.create ()

(* Guarded by [lock]. *)
let injector : (unit -> unit) Queue.t = Queue.create ()
let n_parked = ref 0
let all_domains : unit Domain.t list ref = ref []
let at_exit_installed = ref false

(* Lock-free fast-path view of [Queue.length injector]. *)
let injector_n = Atomic.make 0

(* Bumped under [lock] whenever work or state changes (submission, task
   completion, resize, shutdown). An executor that found nothing records
   the epoch before its scan and parks only if it is unchanged under the
   lock - any concurrent publish either happened before the scan (and
   was found) or bumped the epoch (and the park is refused). No missed
   wakeups. *)
let epoch = Atomic.make 0

let shutting_down = Atomic.make false

(* Pool size in domains, including the caller; [target - 1] workers. *)
let target =
  Atomic.make (Int.max 1 (Int.min 8 (Domain.recommended_domain_count ())))

let workers : worker array Atomic.t = Atomic.make [||]
let domains () = Atomic.get target

let member w =
  let ws = Atomic.get workers in
  let n = Array.length ws in
  let rec go i = i < n && (ws.(i) == w || go (i + 1)) in
  go 0

(* Worker identity of the current domain, if it is a pool worker. *)
let dls_worker : worker option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Publish "something changed" to parked executors. *)
let wake_all () =
  Mutex.lock lock;
  Atomic.incr epoch;
  if !n_parked > 0 then Condition.broadcast cond;
  Mutex.unlock lock

let inject job =
  Mutex.lock lock;
  Queue.push job injector;
  let len = Queue.length injector in
  Atomic.set injector_n len;
  bump_max stat_max_depth len;
  Atomic.incr epoch;
  if !n_parked > 0 then Condition.broadcast cond;
  Mutex.unlock lock

let pop_injector () =
  if Atomic.get injector_n = 0 then None
  else begin
    Mutex.lock lock;
    let job = Queue.take_opt injector in
    Atomic.set injector_n (Queue.length injector);
    Mutex.unlock lock;
    job
  end

(* Steal rotation origin for executors that are not workers. *)
let steal_rr = Atomic.make 0

(* One scan for work: own deque (workers only), then the injector, then
   one pass over everybody else's deques. *)
let find_work me =
  let own =
    match me with
    | Some w -> Deque.pop w.deque
    | None -> None
  in
  match own with
  | Some _ as job -> job
  | None -> (
    match pop_injector () with
    | Some _ as job -> job
    | None ->
      let ws = Atomic.get workers in
      let n = Array.length ws in
      if n = 0 then None
      else begin
        let start =
          match me with
          | Some w -> w.id + 1
          | None -> Atomic.fetch_and_add steal_rr 1
        in
        let found = ref None in
        let i = ref 0 in
        while !found == None && !i < n do
          let v = ws.((start + !i) mod n) in
          let self = match me with Some w -> v == w | None -> false in
          if not self then begin
            match Deque.steal v.deque with
            | Some job ->
              Atomic.incr stat_steals;
              Metrics.incr Obs.steals;
              found := Some job
            | None -> ()
          end;
          incr i
        done;
        !found
      end)

(* Park until the epoch moves past [e]. Returns immediately if it
   already has. *)
let park e =
  Mutex.lock lock;
  if Atomic.get epoch = e && not (Atomic.get shutting_down) then begin
    incr n_parked;
    Atomic.incr stat_parks;
    Metrics.incr Obs.parks;
    Condition.wait cond lock;
    decr n_parked
  end;
  Mutex.unlock lock

(* ---------- workers ---------- *)

let rec worker_loop w =
  let e = Atomic.get epoch in
  match find_work (Some w) with
  | Some job ->
    job ();
    worker_loop w
  | None ->
    if Atomic.get shutting_down then ()
    else if not (member w) then
      (* Retired by a shrink. The deque is empty (we just failed to pop
         it and nobody else pushes to it), so just exit. *)
      ()
    else begin
      park e;
      worker_loop w
    end

(* Must run after [w] is published in [workers]: a worker that starts
   before its record is visible would read [member w = false] and retire
   on the spot. *)
let spawn_worker_locked w =
  let d =
    Domain.spawn (fun () ->
        (* Backtrace recording is per-domain state; turn it on so
           worker-side exception backtraces survive the re-raise in the
           caller no matter when the worker was spawned. *)
        Printexc.record_backtrace true;
        Domain.DLS.set dls_worker (Some w);
        worker_loop w)
  in
  all_domains := d :: !all_domains

(* Drain at exit: flag the shutdown, wake everyone, and join every
   domain ever spawned (retired ones finish instantly). Workers exit
   only from the "no work anywhere" branch, so queued tasks still run
   before the pool goes down. *)
let shutdown_pool () =
  Mutex.lock lock;
  Atomic.set shutting_down true;
  Atomic.incr epoch;
  Condition.broadcast cond;
  let ds = !all_domains in
  all_domains := [];
  Mutex.unlock lock;
  List.iter Domain.join ds;
  Atomic.set workers [||]

let ensure_workers () =
  let want = Atomic.get target - 1 in
  if Array.length (Atomic.get workers) < want && not (Atomic.get shutting_down)
  then begin
    Mutex.lock lock;
    let ws = Atomic.get workers in
    let have = Array.length ws in
    let want = Int.max 0 (Atomic.get target - 1) in
    if have < want && not (Atomic.get shutting_down) then begin
      if not !at_exit_installed then begin
        at_exit_installed := true;
        Stdlib.at_exit shutdown_pool
      end;
      let extra =
        Array.init (want - have) (fun k ->
            { id = have + k; deque = Deque.create () })
      in
      Atomic.set workers (Array.append ws extra);
      Array.iter spawn_worker_locked extra;
      Metrics.set_gauge Obs.workers (float_of_int want)
    end;
    Mutex.unlock lock
  end

let set_domains n =
  let n = Int.max 1 (Int.min 64 n) in
  Mutex.lock lock;
  if n <> Atomic.get target then begin
    Atomic.set target n;
    Atomic.incr stat_resizes;
    Metrics.incr Obs.resizes;
    let ws = Atomic.get workers in
    if Array.length ws > n - 1 then begin
      (* Shrink now: unpublish the tail workers. Still-running ones keep
         helping until idle, then exit; their deques are only ever fed
         by themselves, so nothing strands. Parked ones are woken to
         notice their retirement. *)
      Atomic.set workers (Array.sub ws 0 (n - 1));
      Metrics.set_gauge Obs.workers (float_of_int (n - 1));
      Atomic.incr epoch;
      if !n_parked > 0 then Condition.broadcast cond
    end
    (* Growth is lazy: the next submission spawns the missing workers. *)
  end;
  Mutex.unlock lock

(* ---------- futures ---------- *)

type 'a outcome = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace
type 'a future = 'a outcome Atomic.t

let submit (f : unit -> 'a) : 'a future =
  Atomic.incr stat_tasks;
  Metrics.incr Obs.tasks;
  let fut = Atomic.make Pending in
  let job () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Atomic.set fut outcome;
    (* Completion may unblock an awaiter parked on this future. *)
    wake_all ()
  in
  (match Domain.DLS.get dls_worker with
  | Some w ->
    Deque.push w.deque job;
    wake_all ()
  | None ->
    ensure_workers ();
    inject job);
  fut

let await (fut : 'a future) : 'a =
  let me = Domain.DLS.get dls_worker in
  let rec go () =
    match Atomic.get fut with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> (
      let e = Atomic.get epoch in
      (* Help: run other tasks while we wait. The submit/await graph is
         a tree, so some runnable task always exists while [fut] is
         pending - either we find it here, or whoever took it bumps the
         epoch on completion and [park] refuses to sleep. *)
      match find_work me with
      | Some job ->
        job ();
        go ()
      | None -> (
        match Atomic.get fut with
        | Done v -> v
        | Failed (ex, bt) -> Printexc.raise_with_backtrace ex bt
        | Pending ->
          park e;
          go ()))
  in
  go ()

(* ---------- indexed batches ---------- *)

let chunk_hint ?domains:d n =
  let d = match d with Some d -> Int.max 1 d | None -> Atomic.get target in
  Int.max 1 (n / (8 * d))

let run_indexed ?domains:d ?chunk n (task : int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let d = match d with Some d -> Int.max 1 (Int.min 64 d) | None -> Atomic.get target in
    if d = 1 || n = 1 then Array.init n task
    else begin
      let chunk =
        match chunk with Some c -> Int.max 1 c | None -> chunk_hint ~domains:d n
      in
      let results : 'a option array = Array.make n None in
      let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
      let next = Atomic.make 0 in
      (* Executors claim [chunk]-sized index ranges from a shared
         counter; every result lands in the slot of its index, so the
         assembled output never depends on scheduling. *)
      let claim () =
        let continue = ref true in
        while !continue do
          let i0 = Atomic.fetch_and_add next chunk in
          if i0 >= n then continue := false
          else
            for i = i0 to Int.min (i0 + chunk) n - 1 do
              match task i with
              | v -> results.(i) <- Some v
              | exception e ->
                (* Captured on the raising stack; re-raising with it in
                   the caller preserves the trace across domains. *)
                errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
            done
        done
      in
      let n_chunks = ((n - 1) / chunk) + 1 in
      let helpers = Int.min (d - 1) (n_chunks - 1) in
      let futs = Array.init helpers (fun _ -> submit claim) in
      claim ();
      Array.iter await futs;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors;
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        results
    end
  end

(* ---------- introspection ---------- *)

type stats = {
  workers : int;
  tasks : int;
  steals : int;
  parks : int;
  max_queue_depth : int;
  resizes : int;
}

let stats () =
  let s =
    {
      workers = Array.length (Atomic.get workers);
      tasks = Atomic.get stat_tasks;
      steals = Atomic.get stat_steals;
      parks = Atomic.get stat_parks;
      max_queue_depth = Atomic.get stat_max_depth;
      resizes = Atomic.get stat_resizes;
    }
  in
  Metrics.set_gauge Obs.max_queue_depth (float_of_int s.max_queue_depth);
  Metrics.set_gauge Obs.workers (float_of_int s.workers);
  s

(* ---------- retired fork/join executor (bench baseline) ---------- *)

module Forkjoin = struct
  (* The pre-pool implementation, verbatim: spawn fresh domains per
     call, claim indices one at a time, join. Lives here (and only
     here) because the root-dune guard bans Domain.spawn outside this
     file; the sweep bench runs it as the baseline the pool is measured
     against. *)
  let run_indexed ~domains:d n (task : int -> 'a) : 'a array =
    if n = 0 then [||]
    else begin
      let results : 'a option array = Array.make n None in
      let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match task i with
            | v -> results.(i) <- Some v
            | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
        done
      in
      let spawned =
        Array.init (Int.min (d - 1) (n - 1)) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join spawned;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors;
      Array.map (function Some v -> v | None -> assert false) results
    end

  let map ~domains f a =
    let n = Array.length a in
    if domains = 1 || n <= 1 then Array.map f a
    else run_indexed ~domains n (fun i -> f a.(i))
end
