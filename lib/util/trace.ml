(* Lightweight span tracing with a bounded ring-buffer collector.

   A span is one timed region ("lp.solve", "offline.oracle", ...) with
   optional attributes. Spans nest lexically per domain: [with_span]
   maintains a domain-local stack, so a span records its depth and its
   parent's name without any cross-domain coordination. Completed spans
   land in one global ring buffer (mutex-guarded; appends happen at span
   exit, so the lock is taken per span, not per event — spans are
   per-solve/per-round granularity, never per-pivot).

   The ring keeps the most recent [capacity] spans; [dropped] counts the
   overwritten ones so exports are honest about truncation. *)

type attr =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type span = {
  name : string;
  attrs : (string * attr) list;
  start : float;  (* Unix.gettimeofday at entry *)
  duration : float;  (* seconds *)
  domain : int;
  depth : int;  (* 0 = top-level within its domain *)
  parent : string option;  (* name of the lexically enclosing span *)
  seq : int;  (* global completion order *)
}

let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ---- ring buffer ---- *)

let default_capacity = 8192

type ring = {
  mutable slots : span option array;
  mutable next : int;  (* total spans ever recorded *)
}

let ring = { slots = Array.make default_capacity None; next = 0 }
let ring_mutex = Mutex.create ()

let with_ring f =
  Mutex.lock ring_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_mutex) f

let set_capacity cap =
  if cap < 1 then invalid_arg "Trace.set_capacity";
  with_ring (fun () ->
      ring.slots <- Array.make cap None;
      ring.next <- 0)

let reset () =
  with_ring (fun () ->
      Array.fill ring.slots 0 (Array.length ring.slots) None;
      ring.next <- 0)

let record span =
  with_ring (fun () ->
      let cap = Array.length ring.slots in
      let seq = ring.next in
      ring.slots.(seq mod cap) <- Some { span with seq };
      ring.next <- seq + 1)

let recorded () = with_ring (fun () -> ring.next)

let dropped () =
  with_ring (fun () -> Int.max 0 (ring.next - Array.length ring.slots))

(* Retained spans, oldest first. *)
let spans () =
  with_ring (fun () ->
      let cap = Array.length ring.slots in
      let lo = Int.max 0 (ring.next - cap) in
      List.init (ring.next - lo) (fun i ->
          Option.get ring.slots.((lo + i) mod cap)))

(* ---- the span stack ---- *)

(* Domain-local stack of (name, pending-attrs ref) for the open spans. *)
type open_span = { o_name : string; mutable o_attrs : (string * attr) list }

let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | p :: _ -> Some p.o_name in
    let depth = List.length !stack in
    let o = { o_name = name; o_attrs = attrs } in
    stack := o :: !stack;
    let t0 = Unix.gettimeofday () in
    let finally () =
      (* clamp: gettimeofday is not monotonic; an NTP step mid-span must
         not record a negative duration. *)
      let dt = Float.max 0.0 (Unix.gettimeofday () -. t0) in
      (stack := match !stack with _ :: rest -> rest | [] -> []);
      record
        {
          name;
          attrs = List.rev o.o_attrs;
          start = t0;
          duration = dt;
          domain = (Domain.self () :> int);
          depth;
          parent;
          seq = 0;
        }
    in
    Fun.protect ~finally f
  end

(* Attach an attribute to the innermost open span (no-op outside one). *)
let add_attr key value =
  if Atomic.get enabled_flag then begin
    let stack = Domain.DLS.get stack_key in
    match !stack with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (key, value) :: o.o_attrs
  end

(* ---- export ---- *)

let attr_to_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s
  | Bool b -> Json.Bool b

let span_to_json s =
  Json.Obj
    ([
       ("name", Json.String s.name);
       ("seq", Json.Int s.seq);
       ("start", Json.Float s.start);
       ("duration_s", Json.Float s.duration);
       ("domain", Json.Int s.domain);
       ("depth", Json.Int s.depth);
     ]
    @ (match s.parent with
      | Some p -> [ ("parent", Json.String p) ]
      | None -> [])
    @
    match s.attrs with
    | [] -> []
    | attrs ->
      [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) attrs)) ])

let to_json () =
  Json.Obj
    [
      ("recorded", Json.Int (recorded ()));
      ("dropped", Json.Int (dropped ()));
      ("spans", Json.List (List.map span_to_json (spans ())));
    ]

(* One span per line — the streaming-friendly form. *)
let export_ndjson path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun s ->
          output_string oc (Json.to_string (span_to_json s));
          output_char oc '\n')
        (spans ()))

(* Aggregate by span name: (count, total seconds), sorted by total time
   descending — the "where did the wall time go" report. *)
let summary () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let c, t = Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0.0) in
      Hashtbl.replace tbl s.name (c + 1, t +. s.duration))
    (spans ());
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
