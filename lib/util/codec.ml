(* Little-endian binary codec + framed snapshot container; see codec.mli
   for the frame layout and design notes. *)

(* --- CRC-32 (IEEE, reflected 0xEDB88320), table-driven ----------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code ch in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- writer ------------------------------------------------------------ *)

module W = struct
  type t = Buffer.t

  let create ?(size = 4096) () = Buffer.create size
  let contents = Buffer.contents
  let u8 b v = Buffer.add_uint8 b (v land 0xFF)
  let i32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let i64 b v = Buffer.add_int64_le b v
  let int b v = Buffer.add_int64_le b (Int64.of_int v)
  let float b v = Buffer.add_int64_le b (Int64.bits_of_float v)
  let bool b v = u8 b (if v then 1 else 0)

  let string b s =
    i32 b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    i32 b (Array.length a);
    Array.iter (int b) a

  let float_array b a =
    i32 b (Array.length a);
    Array.iter (float b) a
end

(* --- reader ------------------------------------------------------------ *)

module R = struct
  type t = { s : string; mutable pos : int }

  exception Corrupt of string

  let of_string s = { s; pos = 0 }
  let remaining r = String.length r.s - r.pos

  let need r n what =
    if n < 0 || remaining r < n then
      raise (Corrupt (Printf.sprintf "truncated input reading %s" what))

  let u8 r =
    need r 1 "u8";
    let v = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let i32 r =
    need r 4 "i32";
    let v = Int32.to_int (String.get_int32_le r.s r.pos) in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8 "i64";
    let v = String.get_int64_le r.s r.pos in
    r.pos <- r.pos + 8;
    v

  let int r =
    let v = i64 r in
    let n = Int64.to_int v in
    if Int64.of_int n <> v then raise (Corrupt "int field exceeds native range");
    n

  let float r = Int64.float_of_bits (i64 r)

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | n -> raise (Corrupt (Printf.sprintf "bool field holds %d" n))

  let length r what =
    let n = i32 r in
    (* the prefix must fit in what's left: a corrupt length can neither
       over-read nor force a giant allocation *)
    if n < 0 || n > remaining r then
      raise (Corrupt (Printf.sprintf "bad %s length %d" what n));
    n

  let string r =
    let n = length r "string" in
    let v = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    v

  let int_array r =
    let n = i32 r in
    if n < 0 || n > remaining r / 8 then
      raise (Corrupt (Printf.sprintf "bad int array length %d" n));
    Array.init n (fun _ -> int r)

  let float_array r =
    let n = i32 r in
    if n < 0 || n > remaining r / 8 then
      raise (Corrupt (Printf.sprintf "bad float array length %d" n));
    Array.init n (fun _ -> float r)

  let expect_end r =
    if remaining r <> 0 then
      raise (Corrupt (Printf.sprintf "%d trailing bytes" (remaining r)))
end

(* --- framed container -------------------------------------------------- *)

let magic_len = 8
let header_len = magic_len + 4 + 8 + 4

let check_magic magic =
  if String.length magic <> magic_len then
    invalid_arg
      (Printf.sprintf "Codec: magic must be %d bytes, got %d" magic_len
         (String.length magic))

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_framed path ~magic ~version payload =
  check_magic magic;
  mkdir_p (Filename.dirname path);
  let header = W.create ~size:header_len () in
  Buffer.add_string header magic;
  W.i32 header version;
  W.i64 header (Int64.of_int (String.length payload));
  Buffer.add_int32_le header (crc32 payload);
  (* temp + fsync + rename: a crash mid-write leaves any previous snapshot
     intact; the pid salt keeps concurrent writers off each other's temp *)
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (W.contents header);
     output_string oc payload;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc;
     Sys.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_framed_any_version path ~magic =
  check_magic magic;
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else begin
    match read_whole_file path with
    | exception Sys_error msg -> Error msg
    | raw ->
      if String.length raw < header_len then
        Error
          (Printf.sprintf "%s: too short for a snapshot header (%d bytes)" path
             (String.length raw))
      else begin
        let file_magic = String.sub raw 0 magic_len in
        if file_magic <> magic then
          Error
            (Printf.sprintf "%s: bad magic %S (want %S) — not a %s snapshot"
               path file_magic magic
               (String.trim magic))
        else begin
          let version = Int32.to_int (String.get_int32_le raw magic_len) in
          let len = String.get_int64_le raw (magic_len + 4) in
          let stored_crc = String.get_int32_le raw (magic_len + 12) in
          let body_len = String.length raw - header_len in
          if Int64.of_int body_len <> len then
            Error
              (Printf.sprintf
                 "%s: truncated payload (header says %Ld bytes, file has %d)"
                 path len body_len)
          else begin
            let payload = String.sub raw header_len body_len in
            let actual = crc32 payload in
            if actual <> stored_crc then
              Error
                (Printf.sprintf
                   "%s: CRC mismatch (stored %08lx, computed %08lx) — snapshot \
                    is corrupt"
                   path stored_crc actual)
            else Ok (version, payload)
          end
        end
      end
  end

let read_framed path ~magic ~version =
  match read_framed_any_version path ~magic with
  | Error _ as e -> e
  | Ok (v, payload) ->
    if v <> version then
      Error
        (Printf.sprintf "%s: snapshot format version %d, this build reads %d"
           path v version)
    else Ok payload
