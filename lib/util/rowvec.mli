(** Shared sparse-row numeric kernels.

    One sorted-index sparse row (CSR-style: parallel [idx]/[v] arrays with
    an explicit length), used both by the simplex tableau
    ([R3_lp.Sparse], drop tolerance 1e-14) and by the routing storage
    substrate ([R3_net.Routing], drop tolerance exactly [0.0] so sparse
    and dense backends stay bit-identical).

    Every kernel takes the drop tolerance as an explicit [?drop]
    parameter, defaulting to [0.0]: an entry is {e kept} iff
    [Float.abs x > drop], so with the default only exact (signed) zeros
    are structural. All iteration is in strictly increasing index order,
    which is what makes sparse arithmetic reproduce dense left-to-right
    loops bit for bit. *)

type t

(** [create ?cap ()] is an empty row with initial capacity [cap]. *)
val create : ?cap:int -> unit -> t

(** [of_pairs ?drop idx v] builds a row from parallel index/value arrays.
    Indices need not be sorted or unique: duplicates are summed, entries
    with [|x| <= drop] removed. The input arrays are not retained. *)
val of_pairs : ?drop:float -> int array -> float array -> t

(** [of_dense ?drop a] keeps the entries of [a] with [|x| > drop]
    (default: every nonzero, dropping exact zeros of either sign). *)
val of_dense : ?drop:float -> float array -> t

(** [of_sorted idx v n] wraps the first [n] entries of the given parallel
    arrays as a row, {b taking ownership} of both arrays (they must not be
    mutated afterwards). The caller guarantees indices are strictly
    increasing and values already satisfy its drop policy — nothing is
    checked. Single-allocation constructor for merge kernels that build a
    row in one pass. *)
val of_sorted : int array -> float array -> int -> t

(** [to_dense width r] scatters into a fresh zero-filled array. *)
val to_dense : int -> t -> float array

val copy : t -> t

(** Number of stored entries. *)
val nnz : t -> int

(** [get r j] is the coefficient at index [j] (0 if absent); O(log nnz). *)
val get : t -> int -> float

(** [set ?drop r j x] writes coefficient [x] at index [j], inserting or
    removing the entry as needed. O(nnz) worst case on insert; O(1)
    amortized when indices arrive in increasing order. *)
val set : ?drop:float -> t -> int -> float -> unit

(** Remove the entry at index [j] (exact structural zero). *)
val clear : t -> int -> unit

(** [scale ?drop r k] multiplies every entry by [k], dropping entries
    whose magnitude falls to [drop] or below. *)
val scale : ?drop:float -> t -> float -> unit

(** Reusable merge buffer for {!axpy}; never share one across domains. *)
type scratch

val scratch : unit -> scratch

(** [axpy ?drop ?scratch ~y ~x factor] computes [y := y - factor * x] by
    merging the two sorted nonzero streams; entries with magnitude at or
    below [drop] are removed. [x] is unchanged. With [?scratch] the merge
    output buffer is recycled between calls (swapped against [y]'s old
    storage), eliminating the per-call allocation on hot paths. Safe when
    [y == x] (the merge writes into a separate buffer). Each merged entry
    is computed as [y_j -. (factor *. x_j)], so calling with
    [factor = -.c] reproduces a dense [y_j +. c *. x_j] bit for bit. *)
val axpy : ?drop:float -> ?scratch:scratch -> y:t -> x:t -> float -> unit

(** [merged ?drop ~skip ~y ~x factor] is a fresh row [y + factor * x]
    with any entry at index [skip] removed; [y] and [x] are unchanged
    (copy-on-write companion to {!axpy}). Entries are produced in
    ascending index order: a [y]-only entry is copied verbatim, an
    [x]-only entry contributes [factor *. x_j], a collision contributes
    [y_j +. (factor *. x_j)]; results with [|value| <= drop] are
    dropped. With the default [drop = 0.0] this reproduces a dense
    in-place [y_j +. factor *. x_j] loop bit for bit (provided [x]
    stores no [-0.0]). Single allocation, exactly sized. *)
val merged : ?drop:float -> skip:int -> y:t -> x:t -> float -> t

(** [scatter_add ?scale r ~into] adds [scale *. x] (default [scale = 1.0])
    into [into.(j)] for every stored entry, in increasing index order. *)
val scatter_add : ?scale:float -> t -> into:float array -> unit

(** [iter f r] applies [f j v] to each entry in increasing index order. *)
val iter : (int -> float -> unit) -> t -> unit

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a

(** [dot r dense] is [sum_j r_j * dense.(j)]; O(nnz). *)
val dot : t -> float array -> float

(** [raw r] exposes [(idx, v, n)]: the first [n] entries of the parallel
    arrays are the stored entries. Read-only view for allocation-free hot
    loops; invalidated by any mutating operation. *)
val raw : t -> int array * float array * int
