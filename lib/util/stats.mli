(** Small statistics helpers used by the evaluation harness. *)

(** Arithmetic mean. Raises [Invalid_argument] on an empty array (the old
    behaviour fabricated 0.0, which silently skewed downstream summaries
    while {!min}/{!max} on the same input raised) or on any NaN sample —
    the same contract as every other aggregate here. *)
val mean : float array -> float

(** {e Population} standard deviation (divides by [n], not [n-1] — these
    summaries describe the full scenario population swept, not a sample of
    it); 0 for a single sample. Raises [Invalid_argument] on an empty
    array or on any NaN sample (NaN used to propagate silently while every
    order statistic rejected it). *)
val stddev : float array -> float

(** Smallest / largest sample. Raise [Invalid_argument] on an empty array
    (the old behaviour silently returned [infinity] / [neg_infinity]) or on
    any NaN sample (NaN would otherwise win or lose the fold depending on
    operand order and poison downstream summaries). *)
val min : float array -> float

val max : float array -> float

(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty array or on any
    NaN sample (NaN sorts after every real value and would silently poison
    high percentiles). *)
val percentile : float -> float array -> float

(** [quantiles ~ps xs] evaluates {!percentile} at every point of [ps] on a
    single sorted copy of [xs] — the bulk form used by the sweep engine's
    per-algorithm summaries. Raises [Invalid_argument] on an empty array or
    on NaN samples. *)
val quantiles : ps:float list -> float array -> float list

val median : float array -> float

(** Sorted copy, ascending. *)
val sorted : float array -> float array

(** [cdf_points xs] returns the array of [(value, fraction <= value)] pairs
    of the empirical CDF, sorted by value. Raises [Invalid_argument] on NaN
    samples (they have no position in the CDF). *)
val cdf_points : float array -> (float * float) array

(** [histogram ~bins ~lo ~hi xs] counts values per equal-width bin; values
    outside [lo,hi] are clamped to the boundary bins, so the counts always
    sum to [Array.length xs]. A degenerate range ([hi <= lo], zero bin
    width) puts every sample in bucket 0. Raises [Invalid_argument] on
    [bins <= 0] or on NaN samples (they have no bucket). *)
val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
