(** Small statistics helpers used by the evaluation harness. *)

(** Arithmetic mean; 0 for the empty array. *)
val mean : float array -> float

(** {e Population} standard deviation (divides by [n], not [n-1] — these
    summaries describe the full scenario population swept, not a sample of
    it); 0 for arrays of length < 2. *)
val stddev : float array -> float

(** Smallest / largest sample. Raise [Invalid_argument] on an empty array
    (the old behaviour silently returned [infinity] / [neg_infinity]) or on
    any NaN sample (NaN would otherwise win or lose the fold depending on
    operand order and poison downstream summaries). *)
val min : float array -> float

val max : float array -> float

(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty array or on any
    NaN sample (NaN sorts after every real value and would silently poison
    high percentiles). *)
val percentile : float -> float array -> float

(** [quantiles ~ps xs] evaluates {!percentile} at every point of [ps] on a
    single sorted copy of [xs] — the bulk form used by the sweep engine's
    per-algorithm summaries. Raises [Invalid_argument] on an empty array or
    on NaN samples. *)
val quantiles : ps:float list -> float array -> float list

val median : float array -> float

(** Sorted copy, ascending. *)
val sorted : float array -> float array

(** [cdf_points xs] returns the array of [(value, fraction <= value)] pairs
    of the empirical CDF, sorted by value. Raises [Invalid_argument] on NaN
    samples (they have no position in the CDF). *)
val cdf_points : float array -> (float * float) array

(** [histogram ~bins ~lo ~hi xs] counts values per equal-width bin; values
    outside [lo,hi] are clamped to the boundary bins. Raises
    [Invalid_argument] on NaN samples (they have no bucket). *)
val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
