(* NaN poisons order statistics silently ([Float.compare] files NaNs after
   every real value, so high percentiles quietly return NaN while low ones
   look fine); reject it loudly instead. *)
let reject_nan fname xs =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (fname ^ ": NaN sample"))
    xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  reject_nan "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.stddev: empty array";
  reject_nan "Stats.stddev" xs;
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let min xs =
  if Array.length xs = 0 then invalid_arg "Stats.min: empty array";
  reject_nan "Stats.min" xs;
  Array.fold_left Float.min infinity xs

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty array";
  reject_nan "Stats.max" xs;
  Array.fold_left Float.max neg_infinity xs

let sorted xs =
  let out = Array.copy xs in
  Array.sort Float.compare out;
  out

let percentile_sorted p s =
  let n = Array.length s in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let lo = if lo < 0 then 0 else if lo > n - 2 then n - 2 else lo in
    let frac = rank -. float_of_int lo in
    (s.(lo) *. (1.0 -. frac)) +. (s.(lo + 1) *. frac)
  end

let percentile p xs =
  reject_nan "Stats.percentile" xs;
  percentile_sorted p (sorted xs)

let quantiles ~ps xs =
  reject_nan "Stats.quantiles" xs;
  let s = sorted xs in
  List.map (fun p -> percentile_sorted p s) ps

let median xs = percentile 50.0 xs

let cdf_points xs =
  reject_nan "Stats.cdf_points" xs;
  let s = sorted xs in
  let n = Array.length s in
  Array.mapi (fun i v -> (v, float_of_int (i + 1) /. float_of_int n)) s

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  reject_nan "Stats.histogram" xs;
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bucket x =
    if width <= 0.0 then 0
    else begin
      let b = int_of_float ((x -. lo) /. width) in
      if b < 0 then 0 else if b >= bins then bins - 1 else b
    end
  in
  Array.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  counts
