(** Bounded fork/join parallelism over OCaml 5 domains.

    A small work-stealing-free pool: tasks are indexed, workers pull the
    next index from a shared counter, and every result lands in the slot
    of its input - so the output order (and any sequential merge done by
    the caller) is {e deterministic}, identical to a sequential run,
    regardless of how many domains execute or how they interleave. Task
    functions must not touch shared mutable state.

    The pool size defaults to the machine's recommended domain count
    (capped at 8 - these are separation-oracle sized jobs, not HPC), and
    can be pinned globally with {!set_domains} (e.g. [set_domains 1] to
    force sequential execution when comparing against a parallel run) or
    per call with [?domains]. *)

(** Default number of domains used by {!map} and {!init}. *)
val domains : unit -> int

(** Override the default pool size; values are clamped to [\[1, 64\]]. *)
val set_domains : int -> unit

(** [map f a] is [Array.map f a], computed by the pool. Exceptions raised
    by [f] are re-raised in the caller with their original (worker-side)
    backtrace; the one from the lowest index wins. Falls back to plain
    [Array.map] for tiny inputs or a pool of one. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init n f] is [Array.init n f], computed by the pool. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array
