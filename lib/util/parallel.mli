(** Bounded deterministic parallelism over OCaml 5 domains.

    Thin wrappers over the persistent work-stealing pool ({!Pool}):
    tasks are indexed, executors claim chunks of indices from a shared
    counter, and every result lands in the slot of its input - so the
    output order (and any sequential merge done by the caller) is
    {e deterministic}, identical to a sequential run, regardless of how
    many domains execute or how they interleave. Task functions must not
    touch shared mutable state.

    The pool size defaults to the machine's recommended domain count
    (capped at 8 - these are separation-oracle sized jobs, not HPC), and
    can be pinned globally with {!set_domains} (e.g. [set_domains 1] to
    force sequential execution when comparing against a parallel run) or
    bounded per call with [?domains]. *)

(** Current pool size ({!Pool.domains}), used by {!map} and {!init}. *)
val domains : unit -> int

(** Resize the pool ({!Pool.set_domains}); clamped to [\[1, 64\]]. *)
val set_domains : int -> unit

(** [map f a] is [Array.map f a], computed by the pool. Exceptions raised
    by [f] are re-raised in the caller with their original (worker-side)
    backtrace; the one from the lowest index wins. Falls back to plain
    [Array.map] for tiny inputs or a pool of one. [?chunk] sets the
    claim granularity (default {!Pool.chunk_hint}); results never depend
    on it. *)
val map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init n f] is [Array.init n f], computed by the pool. *)
val init : ?domains:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array

(** [chunk_hint n] is {!Pool.chunk_hint} at the current pool size: the
    granularity the chunked-range callers (the CG separation oracles)
    pass explicitly. *)
val chunk_hint : int -> int
