type t = {
  mutable idx : int array;  (* strictly increasing over the first n slots *)
  mutable v : float array;
  mutable n : int;
}

let create ?(cap = 8) () =
  let cap = Int.max cap 1 in
  { idx = Array.make cap 0; v = Array.make cap 0.0; n = 0 }

let nnz r = r.n

let ensure r cap =
  if Array.length r.idx < cap then begin
    let cap' = Int.max cap (2 * Array.length r.idx) in
    let idx = Array.make cap' 0 and v = Array.make cap' 0.0 in
    Array.blit r.idx 0 idx 0 r.n;
    Array.blit r.v 0 v 0 r.n;
    r.idx <- idx;
    r.v <- v
  end

let copy r =
  {
    idx = Array.sub r.idx 0 (Int.max r.n 1);
    v = Array.sub r.v 0 (Int.max r.n 1);
    n = r.n;
  }

let of_pairs ?(drop = 0.0) idx v =
  let k = Array.length idx in
  if Array.length v <> k then invalid_arg "Rowvec.of_pairs: length mismatch";
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> Int.compare idx.(a) idx.(b)) order;
  let r = create ~cap:(Int.max k 1) () in
  Array.iter
    (fun s ->
      let j = idx.(s) and x = v.(s) in
      if r.n > 0 && r.idx.(r.n - 1) = j then r.v.(r.n - 1) <- r.v.(r.n - 1) +. x
      else begin
        r.idx.(r.n) <- j;
        r.v.(r.n) <- x;
        r.n <- r.n + 1
      end)
    order;
  (* squeeze out entries that summed to (near) zero *)
  let w = ref 0 in
  for s = 0 to r.n - 1 do
    if Float.abs r.v.(s) > drop then begin
      r.idx.(!w) <- r.idx.(s);
      r.v.(!w) <- r.v.(s);
      incr w
    end
  done;
  r.n <- !w;
  r

let of_dense ?(drop = 0.0) a =
  let width = Array.length a in
  let count = ref 0 in
  for j = 0 to width - 1 do
    if Float.abs (Array.unsafe_get a j) > drop then incr count
  done;
  let r = create ~cap:(Int.max !count 1) () in
  for j = 0 to width - 1 do
    let x = Array.unsafe_get a j in
    if Float.abs x > drop then begin
      r.idx.(r.n) <- j;
      r.v.(r.n) <- x;
      r.n <- r.n + 1
    end
  done;
  r

let of_sorted idx v n =
  if n = 0 then create ~cap:1 () else { idx; v; n }

(* Position of index [j] in [r.idx], or [-1]. Routing rows average a
   handful of entries, where a forward scan beats binary search (fewer
   mispredicted branches); long simplex rows take the log path. *)
let find r j =
  if r.n <= 16 then begin
    let i = ref 0 in
    while !i < r.n && Array.unsafe_get r.idx !i < j do
      incr i
    done;
    if !i < r.n && Array.unsafe_get r.idx !i = j then !i else -1
  end
  else begin
    let lo = ref 0 and hi = ref (r.n - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Array.unsafe_get r.idx mid in
      if c = j then begin
        res := mid;
        lo := !hi + 1
      end
      else if c < j then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  end

let get r j =
  let s = find r j in
  if s < 0 then 0.0 else r.v.(s)

let remove_at r s =
  Array.blit r.idx (s + 1) r.idx s (r.n - s - 1);
  Array.blit r.v (s + 1) r.v s (r.n - s - 1);
  r.n <- r.n - 1

let clear r j =
  let s = find r j in
  if s >= 0 then remove_at r s

let set ?(drop = 0.0) r j x =
  let s = find r j in
  if s >= 0 then begin
    if Float.abs x <= drop then remove_at r s else r.v.(s) <- x
  end
  else if Float.abs x > drop then begin
    ensure r (r.n + 1);
    (* insertion point: first entry with index > j *)
    let p = ref r.n in
    while !p > 0 && r.idx.(!p - 1) > j do
      decr p
    done;
    Array.blit r.idx !p r.idx (!p + 1) (r.n - !p);
    Array.blit r.v !p r.v (!p + 1) (r.n - !p);
    r.idx.(!p) <- j;
    r.v.(!p) <- x;
    r.n <- r.n + 1
  end

let scale ?(drop = 0.0) r k =
  let w = ref 0 in
  for s = 0 to r.n - 1 do
    let x = r.v.(s) *. k in
    if Float.abs x > drop then begin
      r.idx.(!w) <- r.idx.(s);
      r.v.(!w) <- x;
      incr w
    end
  done;
  r.n <- !w

type scratch = { mutable sidx : int array; mutable sv : float array }

let scratch () = { sidx = Array.make 16 0; sv = Array.make 16 0.0 }

let axpy ?(drop = 0.0) ?scratch:sc ~y ~x factor =
  if x.n <> 0 && factor <> 0.0 then begin
    (* Merge into a spare buffer (worst case y.n + x.n entries), then
       install. With [?scratch] the buffer persists call-to-call and the
       merged buffer is swapped against [y]'s old storage, so the steady
       state allocates nothing — on the simplex pivot hot path this merge
       runs once per (active row x pivot) and per-call allocation
       dominated the whole solve before. *)
    let cap = Int.max (y.n + x.n) 1 in
    let idx, v =
      match sc with
      | None -> (Array.make cap 0, Array.make cap 0.0)
      | Some sc ->
        if Array.length sc.sidx < cap then begin
          let cap' = Int.max cap (2 * Array.length sc.sidx) in
          sc.sidx <- Array.make cap' 0;
          sc.sv <- Array.make cap' 0.0
        end;
        (sc.sidx, sc.sv)
    in
    (* The merge body is written out branch by branch: routing the values
       through a local [push] closure boxes every float crossing the call,
       and that allocation dominated the whole solve. *)
    let w = ref 0 and a = ref 0 and b = ref 0 in
    let yi = y.idx and yv = y.v and xi = x.idx and xv = x.v in
    let yn = y.n and xn = x.n in
    (* Entries surviving the drop test are committed by bumping [w]
       (branchless: the stores are unconditional, [w] advances 0 or 1), which
       avoids a hard-to-predict branch per merged element. *)
    while !a < yn && !b < xn do
      let ja = Array.unsafe_get yi !a and jb = Array.unsafe_get xi !b in
      if ja < jb then begin
        let value = Array.unsafe_get yv !a in
        Array.unsafe_set idx !w ja;
        Array.unsafe_set v !w value;
        w := !w + Bool.to_int (Float.abs value > drop);
        incr a
      end
      else if jb < ja then begin
        let value = -.factor *. Array.unsafe_get xv !b in
        Array.unsafe_set idx !w jb;
        Array.unsafe_set v !w value;
        w := !w + Bool.to_int (Float.abs value > drop);
        incr b
      end
      else begin
        let value =
          Array.unsafe_get yv !a -. (factor *. Array.unsafe_get xv !b)
        in
        Array.unsafe_set idx !w ja;
        Array.unsafe_set v !w value;
        w := !w + Bool.to_int (Float.abs value > drop);
        incr a;
        incr b
      end
    done;
    while !a < yn do
      let value = Array.unsafe_get yv !a in
      if Float.abs value > drop then begin
        Array.unsafe_set idx !w (Array.unsafe_get yi !a);
        Array.unsafe_set v !w value;
        incr w
      end;
      incr a
    done;
    while !b < xn do
      let value = -.factor *. Array.unsafe_get xv !b in
      if Float.abs value > drop then begin
        Array.unsafe_set idx !w (Array.unsafe_get xi !b);
        Array.unsafe_set v !w value;
        incr w
      end;
      incr b
    done;
    (match sc with
    | None ->
      y.idx <- idx;
      y.v <- v
    | Some sc ->
      (* Swap: [y] keeps the merged buffer, the scratch inherits [y]'s old
         storage for the next call (which grows it on demand). Cheaper than
         blitting the merge result back into [y]. *)
      sc.sidx <- y.idx;
      sc.sv <- y.v;
      y.idx <- idx;
      y.v <- v);
    y.n <- !w
  end

let merged ?(drop = 0.0) ~skip ~y ~x factor =
  (* Fresh row [y + factor * x] with index [skip] removed, built in one
     merge pass into one exactly-sized buffer. This is the copy-on-write
     companion to {!axpy} (which mutates [y] in place): the failure-fold
     hot path builds hundreds of small result rows per step, so the
     whole kernel lives here with direct field access — routing a raw
     view out through an accessor costs a tuple allocation per row,
     which showed up as ~15% of the fold. Bit-identity with a dense
     update: [y]-only entries are copied verbatim, [x]-only entries are
     [factor *. x_j] (a dense loop computes [0.0 +. (factor *. x_j)],
     the same bits when [x] never stores [-0.0]), collisions are
     [y_j +. (factor *. x_j)], all in ascending index order. *)
  let yi = y.idx and yv = y.v and yn = y.n in
  let xi = x.idx and xv = x.v and xn = x.n in
  let cap = Int.max (yn + xn) 1 in
  let idx = Array.make cap 0 and v = Array.make cap 0.0 in
  let w = ref 0 and a = ref 0 and b = ref 0 in
  while !a < yn && !b < xn do
    let ja = Array.unsafe_get yi !a and jb = Array.unsafe_get xi !b in
    if ja < jb then begin
      if ja <> skip then begin
        Array.unsafe_set idx !w ja;
        Array.unsafe_set v !w (Array.unsafe_get yv !a);
        incr w
      end;
      incr a
    end
    else if jb < ja then begin
      let value = factor *. Array.unsafe_get xv !b in
      if jb <> skip && Float.abs value > drop then begin
        Array.unsafe_set idx !w jb;
        Array.unsafe_set v !w value;
        incr w
      end;
      incr b
    end
    else begin
      let value = Array.unsafe_get yv !a +. (factor *. Array.unsafe_get xv !b) in
      if ja <> skip && Float.abs value > drop then begin
        Array.unsafe_set idx !w ja;
        Array.unsafe_set v !w value;
        incr w
      end;
      incr a;
      incr b
    end
  done;
  while !a < yn do
    let ja = Array.unsafe_get yi !a in
    if ja <> skip then begin
      Array.unsafe_set idx !w ja;
      Array.unsafe_set v !w (Array.unsafe_get yv !a);
      incr w
    end;
    incr a
  done;
  while !b < xn do
    let jb = Array.unsafe_get xi !b in
    let value = factor *. Array.unsafe_get xv !b in
    if jb <> skip && Float.abs value > drop then begin
      Array.unsafe_set idx !w jb;
      Array.unsafe_set v !w value;
      incr w
    end;
    incr b
  done;
  if !w = 0 then create ~cap:1 () else { idx; v; n = !w }

let scatter_add ?(scale = 1.0) r ~into =
  for s = 0 to r.n - 1 do
    let j = Array.unsafe_get r.idx s in
    Array.unsafe_set into j
      (Array.unsafe_get into j +. (scale *. Array.unsafe_get r.v s))
  done

let raw r = (r.idx, r.v, r.n)

let iter f r =
  for s = 0 to r.n - 1 do
    f (Array.unsafe_get r.idx s) (Array.unsafe_get r.v s)
  done

let fold f r acc =
  let acc = ref acc in
  for s = 0 to r.n - 1 do
    acc := f r.idx.(s) r.v.(s) !acc
  done;
  !acc

let dot r dense =
  let acc = ref 0.0 in
  for s = 0 to r.n - 1 do
    acc := !acc +. (Array.unsafe_get r.v s *. Array.unsafe_get dense (Array.unsafe_get r.idx s))
  done;
  !acc

let to_dense width r =
  let out = Array.make width 0.0 in
  iter (fun j x -> out.(j) <- x) r;
  out
