type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that parses back to exactly [f].
   [%.17g] always round-trips for finite doubles; shorter precisions are
   preferred when they survive the [float_of_string] round trip, so
   artifacts stay human-readable ("0.1", not "0.10000000000000001")
   without ever losing a bit. *)
let number f =
  if not (Float.is_finite f) then "null"
  else begin
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match exact 15 with
      | Some s -> s
      | None -> (
        match exact 16 with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" f)
    in
    assert (float_of_string s = f);
    s
  end

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string buf "\n" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) item)
      fields;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf ~indent:false ~level:0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  emit buf ~indent:true ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string_pretty v);
  close_out oc

(* ---- parsing ----
   Recursive-descent parser for standard JSON. Exists so the repo can
   verify its own artifacts (BENCH_*.json, metrics exports) without an
   external dependency; numbers without '.', 'e' or 'E' that fit an OCaml
   int parse as [Int], everything else as [Float]. *)

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> parse_error !pos (Printf.sprintf "expected %c, got %c" c d)
    | None -> parse_error !pos (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then parse_error !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then parse_error !pos "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then parse_error !pos "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> parse_error !pos ("bad \\u escape " ^ hex)
          in
          (* Escapes we emit are all < 0x80; encode the rest as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> parse_error !pos (Printf.sprintf "bad escape \\%c" c));
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_error start ("bad number " ^ tok)
    else if String.length tok > 1 && tok.[0] = '-'
            && String.for_all (fun c -> c = '0') (String.sub tok 1 (String.length tok - 1))
    then Float (-0.0) (* keep the sign: int_of_string "-0" would lose it *)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> parse_error start ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error !pos "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
