(* Process-wide, domain-safe metrics.

   Every instrument is sharded: a metric owns [n_shards] independent cells
   and a writer picks its cell by [Domain.self () mod n_shards], so the
   sweep's parallel workers (at most 64 domains, see Parallel) never
   contend on a cache line they both write every event. Readers merge the
   shards on demand; reads are racy-but-monotone (a concurrent increment
   may or may not be visible), which is exactly what a progress/metrics
   export needs.

   Float cells (gauges, histogram sums/extrema) are stored as IEEE-754
   bits in an [int64 Atomic.t] and updated with CAS loops - OCaml has no
   atomic float. *)

let n_shards = 64 (* >= Parallel's domain cap, and a power of two *)

let shard_index () = (Domain.self () :> int) land (n_shards - 1)

(* Global on/off. Disabled metrics cost one atomic load per event - the
   same check the enabled path pays - so flipping this measures the
   recording overhead itself, not the check. *)
let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ---- counters ---- *)

type counter = { c_name : string; cells : int Atomic.t array }

let counter_total c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let counter_shards c = Array.map Atomic.get c.cells

let add c n =
  if n <> 0 && Atomic.get enabled_flag then
    ignore (Atomic.fetch_and_add c.cells.(shard_index ()) n)

let incr c = add c 1

(* ---- gauges (last-write-wins float) ---- *)

type gauge = { g_name : string; g_cell : int64 Atomic.t; g_set : bool Atomic.t }

let set_gauge g v =
  if Atomic.get enabled_flag then begin
    Atomic.set g.g_cell (Int64.bits_of_float v);
    Atomic.set g.g_set true
  end

let gauge_value g =
  if Atomic.get g.g_set then Some (Int64.float_of_bits (Atomic.get g.g_cell))
  else None

(* ---- histograms ---- *)

(* Per-shard: bucket counts plus sum/min/max as float bits. Buckets are
   cumulative-upper-bound style: observation [v] lands in the first bucket
   with [v <= bound], or the overflow bucket. *)
type hist_shard = {
  buckets : int Atomic.t array; (* length = Array.length bounds + 1 *)
  count : int Atomic.t;
  sum : int64 Atomic.t;
  h_min : int64 Atomic.t;
  h_max : int64 Atomic.t;
}

type histogram = { h_name : string; bounds : float array; shards : hist_shard array }

type hist_snapshot = {
  hist_bounds : float array;
  hist_counts : int array; (* per bucket, overflow last *)
  hist_count : int;
  hist_sum : float;
  hist_min : float; (* infinity when empty *)
  hist_max : float; (* neg_infinity when empty *)
}

(* Default bounds suit wall-times in seconds: 1us .. ~100s, half-decade
   steps. *)
let default_bounds =
  [| 1e-6; 3.16e-6; 1e-5; 3.16e-5; 1e-4; 3.16e-4; 1e-3; 3.16e-3; 1e-2;
     3.16e-2; 1e-1; 3.16e-1; 1.0; 3.16; 10.0; 31.6; 100.0 |]

let atomic_float_update cell f =
  let rec loop () =
    let old_bits = Atomic.get cell in
    let v = f (Int64.float_of_bits old_bits) in
    let new_bits = Int64.bits_of_float v in
    if Int64.equal old_bits new_bits then ()
    else if not (Atomic.compare_and_set cell old_bits new_bits) then loop ()
  in
  loop ()

let observe h v =
  if Atomic.get enabled_flag && not (Float.is_nan v) then begin
    let sh = h.shards.(shard_index ()) in
    let nb = Array.length h.bounds in
    let b = ref 0 in
    while !b < nb && v > h.bounds.(!b) do Stdlib.incr b done;
    ignore (Atomic.fetch_and_add sh.buckets.(!b) 1);
    ignore (Atomic.fetch_and_add sh.count 1);
    atomic_float_update sh.sum (fun s -> s +. v);
    atomic_float_update sh.h_min (fun m -> Float.min m v);
    atomic_float_update sh.h_max (fun m -> Float.max m v)
  end

let hist_snapshot h =
  let nb = Array.length h.bounds + 1 in
  let counts = Array.make nb 0 in
  let count = ref 0 and sum = ref 0.0 in
  let mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (fun sh ->
      for b = 0 to nb - 1 do
        counts.(b) <- counts.(b) + Atomic.get sh.buckets.(b)
      done;
      count := !count + Atomic.get sh.count;
      sum := !sum +. Int64.float_of_bits (Atomic.get sh.sum);
      mn := Float.min !mn (Int64.float_of_bits (Atomic.get sh.h_min));
      mx := Float.max !mx (Int64.float_of_bits (Atomic.get sh.h_max)))
    h.shards;
  {
    hist_bounds = h.bounds;
    hist_counts = counts;
    hist_count = !count;
    hist_sum = !sum;
    hist_min = !mn;
    hist_max = !mx;
  }

let time h f =
  if Atomic.get enabled_flag then begin
    let t0 = Unix.gettimeofday () in
    let finally () = observe h (Float.max 0.0 (Unix.gettimeofday () -. t0)) in
    Fun.protect ~finally f
  end
  else f ()

(* ---- registry ---- *)

(* Instruments are interned by name: the same name always returns the same
   instrument, so modules can resolve handles lazily at first use and
   tests can look metrics up by name. Creation takes a mutex; the hot
   paths (incr/observe) never do. *)

let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v (* fast path: no lock on re-lookup of an interned name *)
  | None ->
    with_registry (fun () ->
        match Hashtbl.find_opt table name with
        | Some v -> v
        | None ->
          let v = make () in
          Hashtbl.replace table name v;
          v)

let counter name =
  intern counters name (fun () ->
      { c_name = name; cells = Array.init n_shards (fun _ -> Atomic.make 0) })

let gauge name =
  intern gauges name (fun () ->
      { g_name = name; g_cell = Atomic.make 0L; g_set = Atomic.make false })

let histogram ?(bounds = default_bounds) name =
  intern histograms name (fun () ->
      let nb = Array.length bounds + 1 in
      {
        h_name = name;
        bounds;
        shards =
          Array.init n_shards (fun _ ->
              {
                buckets = Array.init nb (fun _ -> Atomic.make 0);
                count = Atomic.make 0;
                sum = Atomic.make (Int64.bits_of_float 0.0);
                h_min = Atomic.make (Int64.bits_of_float infinity);
                h_max = Atomic.make (Int64.bits_of_float neg_infinity);
              });
      })

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells)
        counters;
      Hashtbl.iter
        (fun _ g ->
          Atomic.set g.g_set false;
          Atomic.set g.g_cell 0L)
        gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter
            (fun sh ->
              Array.iter (fun b -> Atomic.set b 0) sh.buckets;
              Atomic.set sh.count 0;
              Atomic.set sh.sum (Int64.bits_of_float 0.0);
              Atomic.set sh.h_min (Int64.bits_of_float infinity);
              Atomic.set sh.h_max (Int64.bits_of_float neg_infinity))
            h.shards)
        histograms)

(* ---- export ---- *)

type snapshot = {
  snap_counters : (string * int) list;
  snap_shards : (string * (int * int) list) list;
      (* per counter: (shard index, count) for nonzero shards, when more
         than one shard is populated *)
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_snapshot) list;
}

let sorted_bindings table =
  with_registry (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  let cs = sorted_bindings counters in
  let snap_counters = List.map (fun (n, c) -> (n, counter_total c)) cs in
  let snap_shards =
    List.filter_map
      (fun (n, c) ->
        let nonzero =
          Array.to_list (Array.mapi (fun i v -> (i, v)) (counter_shards c))
          |> List.filter (fun (_, v) -> v <> 0)
        in
        if List.length nonzero > 1 then Some (n, nonzero) else None)
      cs
  in
  let snap_gauges =
    List.filter_map
      (fun (n, g) -> Option.map (fun v -> (n, v)) (gauge_value g))
      (sorted_bindings gauges)
  in
  let snap_histograms =
    List.filter_map
      (fun (n, h) ->
        let s = hist_snapshot h in
        if s.hist_count = 0 then None else Some (n, s))
      (sorted_bindings histograms)
  in
  { snap_counters; snap_shards; snap_gauges; snap_histograms }

let hist_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.hist_count);
      ("sum", Json.Float s.hist_sum);
      ("mean",
       Json.Float
         (if s.hist_count = 0 then 0.0
          else s.hist_sum /. float_of_int s.hist_count));
      ("min", Json.Float s.hist_min);
      ("max", Json.Float s.hist_max);
      ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) s.hist_bounds)));
      ("buckets", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) s.hist_counts)));
    ]

let to_json () =
  let s = snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.snap_counters));
      ("per_domain",
       Json.Obj
         (List.map
            (fun (n, shards) ->
              ( n,
                Json.Obj
                  (List.map
                     (fun (i, v) -> (string_of_int i, Json.Int v))
                     shards) ))
            s.snap_shards));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.snap_gauges));
      ("histograms",
       Json.Obj (List.map (fun (n, h) -> (n, hist_to_json h)) s.snap_histograms));
    ]

let find_counter name = with_registry (fun () -> Hashtbl.find_opt counters name)

let counter_value name =
  match find_counter name with Some c -> counter_total c | None -> 0

let counter_name c = c.c_name
let gauge_name g = g.g_name
let histogram_name h = h.h_name
