(** Lightweight span tracing with a bounded ring-buffer collector.

    [with_span "lp.solve" ~attrs f] times [f] and records a completed span
    on exit (even when [f] raises). Spans nest lexically per domain — each
    span knows its depth and parent — and land in one global ring that
    keeps the most recent {!set_capacity} spans. Export as a JSON document
    ({!to_json}) or newline-delimited JSON ({!export_ndjson}); both print
    floats with bit-exact round-trip (see {!Json}).

    Recording granularity is per-solve / per-round, never per-pivot: the
    collector takes a mutex per completed span, which is invisible next to
    the work a span wraps. *)

type attr =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type span = {
  name : string;
  attrs : (string * attr) list;
  start : float;  (** [Unix.gettimeofday] at entry *)
  duration : float;  (** seconds *)
  domain : int;  (** id of the domain that ran the span *)
  depth : int;  (** 0 = top-level within its domain *)
  parent : string option;  (** lexically enclosing span, if any *)
  seq : int;  (** global completion order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Replace the ring (default capacity 8192 spans) and clear it. *)
val set_capacity : int -> unit

val reset : unit -> unit

(** Run [f] inside a named span. When tracing is disabled this is [f ()]
    with no clock reads. *)
val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span of the calling domain;
    no-op when no span is open (or tracing is off). *)
val add_attr : string -> attr -> unit

(** Retained spans, oldest first. *)
val spans : unit -> span list

(** Total spans ever recorded / overwritten by ring wrap-around. *)
val recorded : unit -> int

val dropped : unit -> int

(** [(name, count, total_seconds)] per span name, heaviest first. *)
val summary : unit -> (string * int * float) list

(** [{recorded; dropped; spans}] as one JSON document. *)
val to_json : unit -> Json.t

(** One span object per line (ndjson). *)
val export_ndjson : string -> unit
