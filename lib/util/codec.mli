(** Hand-rolled little-endian binary codec and framed snapshot container.

    This is the substrate of the persistent plan store (DESIGN.md §16). It
    deliberately avoids [Marshal]: snapshots written here are stable across
    compiler versions and architectures, because every value is spelled out
    as fixed-width little-endian fields through {!W}/{!R}.

    A snapshot file is a {e frame}:

    {v
      offset  size  field
      0       8     magic (ASCII, identifies the payload kind)
      8       4     format version (u32 LE)
      12      8     payload length in bytes (u64 LE)
      20      4     CRC-32 (IEEE) of the payload bytes (u32 LE)
      24      n     payload
    v}

    Writes are atomic: temp file (pid-salted) + fsync + rename, the same
    discipline as the MCF cache, so a crash mid-write leaves any previous
    snapshot intact. Reads validate magic, version, length and CRC before
    returning a byte of payload. *)

(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a string.
    Test vector: [crc32 "123456789" = 0xCBF43926]. *)
val crc32 : string -> int32

(** Sequential writer over an internal [Buffer]. All integers are
    little-endian; floats are written as their IEEE-754 bit patterns, so
    round-trips are bit-exact (including NaN payloads, infinities and
    signed zeros). *)
module W : sig
  type t

  val create : ?size:int -> unit -> t
  val contents : t -> string
  val u8 : t -> int -> unit
  val i32 : t -> int -> unit

  (** Full-width OCaml [int] (written as i64; readable on any platform). *)
  val int : t -> int -> unit

  val i64 : t -> int64 -> unit
  val float : t -> float -> unit
  val bool : t -> bool -> unit

  (** Length-prefixed (u32) byte string. *)
  val string : t -> string -> unit

  (** Length-prefixed arrays of {!int} / {!float} elements. *)
  val int_array : t -> int array -> unit

  val float_array : t -> float array -> unit
end

(** Sequential reader over a string. Every accessor raises {!Corrupt} on
    truncation or on a length prefix that exceeds the remaining bytes —
    malformed input can never turn into a silent misread or an
    [Out_of_memory] allocation. *)
module R : sig
  type t

  exception Corrupt of string

  val of_string : string -> t

  (** Bytes not yet consumed. *)
  val remaining : t -> int

  val u8 : t -> int
  val i32 : t -> int
  val int : t -> int
  val i64 : t -> int64
  val float : t -> float
  val bool : t -> bool
  val string : t -> string
  val int_array : t -> int array
  val float_array : t -> float array

  (** Raises {!Corrupt} unless the reader is exactly exhausted. *)
  val expect_end : t -> unit
end

(** Frame geometry: the magic is always 8 bytes; the payload starts at
    byte [header_len] = 24. *)
val magic_len : int

val header_len : int

(** [write_framed path ~magic ~version payload] atomically writes the
    framed container. [magic] must be exactly 8 bytes. Creates parent
    directories as needed. *)
val write_framed : string -> magic:string -> version:int -> string -> unit

(** [read_framed path ~magic ~version] returns the payload, or [Error msg]
    describing exactly which validation failed (missing file, short
    header, wrong magic, version mismatch, truncated payload, CRC
    mismatch). *)
val read_framed :
  string -> magic:string -> version:int -> (string, string) result

(** Like {!read_framed} but skips the version check, returning
    [(version, payload)] — for inspection tools that want to report a
    mismatched version rather than fail on it. *)
val read_framed_any_version :
  string -> magic:string -> (int * string, string) result
