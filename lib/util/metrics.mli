(** Process-wide, domain-safe metrics: counters, gauges and histograms.

    Built for the R3 hot paths (simplex pivots, constraint-generation
    rounds, MCF phases, sweep cache traffic): every instrument is sharded
    into {!n_shards} cells and a writer touches only the cell indexed by
    its own domain id, so parallel sweep workers never contend. Readers
    ({!snapshot}, {!to_json}) merge the shards on demand.

    Instruments are interned by name — [counter "lp.pivots"] returns the
    same counter everywhere — so producers resolve handles at module
    initialization and consumers (CLI [--metrics], [r3 profile], the bench
    harness) export the whole registry without coordination.

    Recording is on by default and costs one atomic load plus one sharded
    atomic add per event; {!set_enabled}[ false] reduces every instrument
    to the atomic load alone (the bench harness measures exactly this
    delta). *)

(** Number of shards per instrument (>= the Parallel domain cap). *)
val n_shards : int

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Zero every registered instrument (registry itself is kept). *)
val reset : unit -> unit

(** {2 Counters} *)

type counter

(** Intern (find or create) the counter with this name. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** Merged total across shards. *)
val counter_total : counter -> int

(** Raw per-shard values (index = domain id mod {!n_shards}) — the
    per-domain breakdown the sweep engine reports as task counts. *)
val counter_shards : counter -> int array

(** Merged total of the counter registered under [name]; 0 if absent. *)
val counter_value : string -> int

val counter_name : counter -> string

(** {2 Gauges (last-write-wins float)} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

(** [None] until the first {!set_gauge}. *)
val gauge_value : gauge -> float option

val gauge_name : gauge -> string

(** {2 Histograms} *)

type histogram

type hist_snapshot = {
  hist_bounds : float array;  (** bucket upper bounds, ascending *)
  hist_counts : int array;  (** per bucket; overflow bucket last *)
  hist_count : int;
  hist_sum : float;
  hist_min : float;  (** [infinity] when empty *)
  hist_max : float;  (** [neg_infinity] when empty *)
}

(** Intern a histogram. Default [bounds] are wall-time friendly
    (1us..100s, half-decade steps). [bounds] is only honoured on first
    creation of the name. *)
val histogram : ?bounds:float array -> string -> histogram

(** Record one observation; NaN observations are dropped. *)
val observe : histogram -> float -> unit

(** [time h f] runs [f] and observes its wall time in [h] (even when [f]
    raises). When disabled, just runs [f] — no clock calls. *)
val time : histogram -> (unit -> 'a) -> 'a

val hist_snapshot : histogram -> hist_snapshot
val histogram_name : histogram -> string

(** {2 Export} *)

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_shards : (string * (int * int) list) list;
      (** per counter with >1 populated shard: (shard, count) pairs *)
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_snapshot) list;  (** non-empty only *)
}

val snapshot : unit -> snapshot

(** The whole registry as one JSON object with [counters], [per_domain],
    [gauges] and [histograms] sections (see DESIGN.md §8 for the schema).
    Floats round-trip bit-exactly through {!Json}. *)
val to_json : unit -> Json.t
