(** Minimal JSON emission and parsing (no dependencies) for the bench
    harness's machine-readable outputs (e.g. [BENCH_lp.json]) and the
    metrics/trace exports.

    Numbers are printed with the shortest decimal representation that
    parses back to exactly the same float ([float_of_string] round-trip),
    so every recorded value survives the artifact round-trip bit-exactly.
    Non-finite floats become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Shortest round-trip decimal for a finite float; ["null"] otherwise. *)
val number : float -> string

val to_string : t -> string

(** Pretty-printed with two-space indentation and a trailing newline -
    stable output, suitable for committing. *)
val to_string_pretty : t -> string

val write_file : string -> t -> unit

exception Parse_error of string

(** Parse standard JSON. Numbers without ['.'], ['e'] or ['E'] that fit an
    OCaml [int] become [Int]; all others become [Float]. Raises
    {!Parse_error} on malformed input. *)
val of_string : string -> t

(** [of_string] over a whole file. *)
val read_file : string -> t
