(** Minimal JSON emission (no parsing, no dependencies) for the bench
    harness's machine-readable outputs (e.g. [BENCH_lp.json]). Numbers are
    printed with [%.6g]; non-finite floats become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Pretty-printed with two-space indentation and a trailing newline -
    stable output, suitable for committing. *)
val to_string_pretty : t -> string

val write_file : string -> t -> unit
