let default_domains =
  let recommended = Domain.recommended_domain_count () in
  ref (Int.max 1 (Int.min 8 recommended))

let domains () = !default_domains
let set_domains n = default_domains := Int.max 1 (Int.min 64 n)

(* Each worker repeatedly claims the next unprocessed index; results are
   written into per-index slots, so the assembled output never depends on
   scheduling. The first exception (by input index) is re-raised. *)
let run_indexed ~domains:d n (task : int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let results : 'a option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match task i with
          | v -> results.(i) <- Some v
          | exception e ->
            (* Capture the backtrace in the worker, where it is still the
               raising stack; re-raising with it in the caller preserves
               the original trace across the domain boundary. *)
            errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
      done
    in
    let spawned =
      Array.init (Int.min (d - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function Some v -> v | None -> assert false (* every slot filled *))
      results
  end

let map ?domains:d f a =
  let d = match d with Some d -> Int.max 1 d | None -> !default_domains in
  let n = Array.length a in
  if d = 1 || n <= 1 then Array.map f a
  else run_indexed ~domains:d n (fun i -> f a.(i))

let init ?domains:d n f =
  let d = match d with Some d -> Int.max 1 d | None -> !default_domains in
  if d = 1 || n <= 1 then Array.init n f else run_indexed ~domains:d n f
