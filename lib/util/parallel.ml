(* Thin wrappers over the persistent pool (see pool.ml / DESIGN.md §17).
   The contract is unchanged from the per-call fork/join days: slot-
   indexed results, deterministic output for any domain count, first
   exception by input index re-raised with its worker-side backtrace. *)

let domains = Pool.domains
let set_domains = Pool.set_domains
let chunk_hint n = Pool.chunk_hint n

let map ?domains:d ?chunk f a =
  let d = match d with Some d -> Int.max 1 d | None -> Pool.domains () in
  let n = Array.length a in
  if d = 1 || n <= 1 then Array.map f a
  else Pool.run_indexed ~domains:d ?chunk n (fun i -> f a.(i))

let init ?domains:d ?chunk n f =
  let d = match d with Some d -> Int.max 1 d | None -> Pool.domains () in
  if d = 1 || n <= 1 then Array.init n f
  else Pool.run_indexed ~domains:d ?chunk n f
