(** Persistent work-stealing executor over OCaml 5 domains.

    One process-wide pool of worker domains, started lazily on first use
    and drained at exit. Each worker owns a Chase-Lev deque: it pushes and
    pops its own tasks at the bottom while idle workers steal from the
    top, so dynamically-generated task trees (the sweep's prefix forest,
    constraint-generation rounds) balance themselves instead of being
    statically partitioned. Idle workers park on a condition variable and
    are woken by an epoch counter bumped under the same lock, so a quiet
    pool costs nothing. See DESIGN.md section 17 for the deque layout,
    the parking protocol and the determinism argument.

    Determinism contract: none of the entry points here make results
    depend on scheduling. {!run_indexed} writes every result into the
    slot of its input index; {!submit}/{!await} return the value of one
    closure. Callers assemble outputs in program order, so the output is
    bit-identical for any pool size, including 1.

    Tasks must not touch shared mutable state except through their own
    slot (or the COW routing substrate, which is safe to fold from shared
    states concurrently - DESIGN.md section 9). *)

(** {1 Sizing} *)

(** Current pool size in domains, {e including} the caller: a pool of
    [d] keeps [d - 1] worker domains. Defaults to the machine's
    recommended domain count, capped at 8. *)
val domains : unit -> int

(** Resize the pool; values are clamped to [\[1, 64\]]. Shrinking takes
    effect as soon as the excess workers go idle (they finish in-flight
    tasks, spill any queued ones back to the shared queue, and exit);
    growing spawns the missing workers on the next submission. Safe to
    call at any time, including while tasks are running. *)
val set_domains : int -> unit

(** {1 Futures} *)

type 'a future

(** Queue a closure for execution by the pool and return its future.
    From inside a pool task the job lands on the submitting worker's own
    deque (cheap, lock-free); from outside it goes through the shared
    injector queue. The closure runs exactly once, on some domain. *)
val submit : (unit -> 'a) -> 'a future

(** Wait for a future. While the result is pending the caller {e helps}:
    it runs its own queued tasks, then injector and stolen tasks - so a
    running task may submit subtasks and await them without deadlock
    (the dependency graph of [submit]/[await] is a tree). Exceptions
    raised by the task are re-raised here with the worker-side
    backtrace. *)
val await : 'a future -> 'a

(** {1 Indexed batches} *)

(** [run_indexed n task] is [Array.init n task] computed by the pool:
    executors claim chunks of [\[0, n)] from a shared counter and write
    each result into the slot of its index. The caller participates, and
    at most [?domains - 1] (default: pool size - 1) helper tasks are
    queued. [?chunk] (default {!chunk_hint}) sets the claim granularity;
    results never depend on it. The first exception {e by input index}
    is re-raised with its executor-side backtrace. *)
val run_indexed : ?domains:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array

(** Default claim granularity for a batch of [n]: [n / (8 * domains)],
    at least 1 - about eight chunks per executor, balancing counter
    traffic against load balance. *)
val chunk_hint : ?domains:int -> int -> int

(** {1 Introspection} *)

type stats = {
  workers : int;  (** worker domains currently live *)
  tasks : int;  (** closures submitted since start *)
  steals : int;  (** successful steals from another worker's deque *)
  parks : int;  (** times an idle executor blocked on the condition *)
  max_queue_depth : int;  (** peak depth of any deque or the injector *)
  resizes : int;  (** {!set_domains} calls that changed the size *)
}

(** Snapshot the lifetime counters (also exported as [r3.pool.*]
    metrics; these cells stay live even when {!Metrics.set_enabled} is
    off, so bench overhead runs do not lose them). *)
val stats : unit -> stats

(** {1 Reference executor} *)

(** The retired per-call fork/join executor: spawns [domains - 1] fresh
    domains for every batch and joins them before returning. Kept only
    as the bench baseline the pool is measured against; everything else
    must go through the pool (a root-dune guard bans spawning domains
    outside this file). Same contract as {!run_indexed}. *)
module Forkjoin : sig
  val run_indexed : domains:int -> int -> (int -> 'a) -> 'a array
  val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
end
