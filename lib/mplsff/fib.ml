module G = R3_net.Graph
module Routing = R3_net.Routing

type nhlfe = { out_link : G.link; ratio : float }

type fwd = { label : int; nhlfes : nhlfe array }

type router_fib = { router : G.node; ilm : (int, fwd) Hashtbl.t }

type t = {
  graph : G.t;
  fibs : router_fib array;
  protected_links : G.link array;
}

let label_base = 100

let label_of_link e = label_base + e

let link_of_label l = l - label_base

let of_protection g p =
  if Routing.num_commodities p <> G.num_links g then
    invalid_arg "Fib.of_protection: protection must cover every link";
  let n = G.num_nodes g in
  let fibs = Array.init n (fun router -> { router; ilm = Hashtbl.create 16 }) in
  let m = G.num_links g in
  for l = 0 to m - 1 do
    let row = Routing.row_dense p l in
    let label = label_of_link l in
    for v = 0 to n - 1 do
      (* Ratios over outgoing links; at the protected link's head the link
         itself is excluded (it is the one being bypassed). *)
      let candidates =
        Array.to_list (G.out_links g v)
        |> List.filter (fun e -> e <> l && row.(e) > 1e-12)
      in
      let total = List.fold_left (fun a e -> a +. row.(e)) 0.0 candidates in
      if total > 1e-12 then begin
        let nhlfes =
          candidates
          |> List.map (fun e -> { out_link = e; ratio = row.(e) /. total })
          |> Array.of_list
        in
        Hashtbl.replace fibs.(v).ilm label { label; nhlfes }
      end
    done
  done;
  { graph = g; fibs; protected_links = Array.init m (fun e -> e) }

let update t p = of_protection t.graph p

let max_table_sizes t =
  Array.fold_left
    (fun (best_ilm, best_nh) fib ->
      let ilm = Hashtbl.length fib.ilm in
      let nh =
        Hashtbl.fold (fun _ fwd acc -> acc + Array.length fwd.nhlfes) fib.ilm 0
      in
      (Int.max best_ilm ilm, Int.max best_nh nh))
    (0, 0) t.fibs
