module G = R3_net.Graph
module Routing = R3_net.Routing

type nhlfe = { out_link : G.link; ratio : float }

type fwd = { label : int; nhlfes : nhlfe array }

type router_fib = { router : G.node; ilm : (int, fwd) Hashtbl.t }

type t = {
  graph : G.t;
  fibs : router_fib array;
  protected_links : G.link array;
}

let label_base = 100

let label_of_link e = label_base + e

let link_of_label l = l - label_base

(* One router's whole ILM from (that router's view of) the protection
   routing — the unit of work a router redoes locally when a failure or
   recovery notification arrives. Shared by the full rebuild and the
   per-router incremental update so the two can never drift. *)
let router_ilm g p router =
  let ilm = Hashtbl.create 16 in
  let out = G.out_links g router in
  let m = G.num_links g in
  for l = 0 to m - 1 do
    (* Ratios over outgoing links; at the protected link's head the link
       itself is excluded (it is the one being bypassed). *)
    let candidates =
      Array.to_list out
      |> List.filter (fun e -> e <> l && Routing.get p l e > 1e-12)
    in
    let total =
      List.fold_left (fun a e -> a +. Routing.get p l e) 0.0 candidates
    in
    if total > 1e-12 then begin
      let label = label_of_link l in
      let nhlfes =
        candidates
        |> List.map (fun e -> { out_link = e; ratio = Routing.get p l e /. total })
        |> Array.of_list
      in
      Hashtbl.replace ilm label { label; nhlfes }
    end
  done;
  ilm

let of_protection g p =
  if Routing.num_commodities p <> G.num_links g then
    invalid_arg "Fib.of_protection: protection must cover every link";
  let n = G.num_nodes g in
  let fibs = Array.init n (fun router -> { router; ilm = router_ilm g p router }) in
  { graph = g; fibs; protected_links = Array.init (G.num_links g) (fun e -> e) }

let update t p = of_protection t.graph p

let update_router t ~router p =
  if Routing.num_commodities p <> G.num_links t.graph then
    invalid_arg "Fib.update_router: protection must cover every link";
  let fibs = Array.copy t.fibs in
  fibs.(router) <- { router; ilm = router_ilm t.graph p router };
  { t with fibs }

let fwd_equal a b =
  a.label = b.label
  && Array.length a.nhlfes = Array.length b.nhlfes
  && Array.for_all2
       (fun x y ->
         x.out_link = y.out_link
         && Int64.equal (Int64.bits_of_float x.ratio) (Int64.bits_of_float y.ratio))
       a.nhlfes b.nhlfes

let router_fib_equal a b =
  a.router = b.router
  && Hashtbl.length a.ilm = Hashtbl.length b.ilm
  && Hashtbl.fold
       (fun label fwd acc ->
         acc
         &&
         match Hashtbl.find_opt b.ilm label with
         | Some fwd' -> fwd_equal fwd fwd'
         | None -> false)
       a.ilm true

let equal a b =
  Array.length a.fibs = Array.length b.fibs
  && Array.for_all2 router_fib_equal a.fibs b.fibs

let max_table_sizes t =
  Array.fold_left
    (fun (best_ilm, best_nh) fib ->
      let ilm = Hashtbl.length fib.ilm in
      let nh =
        Hashtbl.fold (fun _ fwd acc -> acc + Array.length fwd.nhlfes) fib.ilm 0
      in
      (Int.max best_ilm ilm, Int.max best_nh nh))
    (0, 0) t.fibs
