(** MPLS-ff forwarding information base (Section 4.2).

    Standard MPLS maps an incoming label through the ILM to a single
    forwarding instruction. MPLS-ff extends the FWD instruction to hold
    {e multiple} NHLFEs, each with a next-hop splitting ratio; a router
    hashes each flow onto one NHLFE. One protection label is allocated per
    protected link, network-wide; the label's NHLFE ratios at router [v]
    encode [p_l(v, j)]. *)

type nhlfe = {
  out_link : R3_net.Graph.link;
  ratio : float;  (** next-hop splitting ratio, normalized per router *)
}

type fwd = { label : int; nhlfes : nhlfe array }

type router_fib = {
  router : R3_net.Graph.node;
  ilm : (int, fwd) Hashtbl.t;  (** incoming label map *)
}

type t = {
  graph : R3_net.Graph.t;
  fibs : router_fib array;  (** indexed by router id *)
  protected_links : R3_net.Graph.link array;
}

(** Protection label of a link (stable, network-wide). *)
val label_of_link : R3_net.Graph.link -> int

val link_of_label : int -> R3_net.Graph.link

(** Build all routers' ILM/NHLFE state from a protection routing: at every
    router on [p_l]'s support (plus the head of [l]), install the label of
    [l] with per-next-hop ratios proportional to [p_l(v, j)], excluding the
    protected link itself at its head (the paper's
    [p_l(i,j) / sum_{j'} p_l(i,j')] with [(i,j') <> l]). Links whose
    protection routes entirely over themselves (stubs) get no entries. *)
val of_protection : R3_net.Graph.t -> R3_net.Routing.t -> t

(** Re-derive ratios after failures from a reconfigured protection routing
    (what routers do locally after each notification). *)
val update : t -> R3_net.Routing.t -> t

(** [update_router t ~router p] re-derives {e one} router's ILM from that
    router's (possibly stale) view [p] of the protection routing — the
    local FIB step the online runtime applies when a notification reaches
    [router]. Other routers' tables are shared with [t] untouched, so
    applying per-router updates in {e any} order, once every router has
    seen the final protection routing, lands on the same FIB as a full
    {!update} (tested in [test/test_online.ml]). *)
val update_router : t -> router:R3_net.Graph.node -> R3_net.Routing.t -> t

(** Structural equality of the forwarding state: same routers, same ILM
    entries, bit-identical splitting ratios. *)
val equal : t -> t -> bool

(** Total entries across routers: [(ilm_entries, nhlfe_entries)] of the
    router with the largest tables — the per-router figure of Table 3. *)
val max_table_sizes : t -> int * int
