module G = R3_net.Graph
module Routing = R3_net.Routing

type network = {
  graph : G.t;
  base : Routing.t;
  pair_index : (G.node * G.node, int) Hashtbl.t;
  fib : Fib.t;
  failed : G.link_set;
  hash_seed : int;
}

let make g ~base ~fib ?failed ?(hash_seed = 42) () =
  let failed = match failed with Some f -> f | None -> G.no_failures g in
  let pair_index = Hashtbl.create 64 in
  Array.iteri (fun k pr -> Hashtbl.replace pair_index pr k) (Routing.pairs base);
  { graph = g; base; pair_index; fib; failed; hash_seed }

type trace = {
  links : G.link list;
  delivered : bool;
  max_stack_depth : int;
  rtt_ms : float;
}

let max_stack = 8

let forward net ~flow ~src ~dst =
  let g = net.graph in
  match Hashtbl.find_opt net.pair_index (src, dst) with
  | None -> Error "forward: unknown OD pair"
  | Some k ->
    let max_hops = 8 * G.num_nodes g in
    let traversed = ref [] in
    let deepest = ref 0 in
    let rec step v stack hops =
      deepest := Int.max !deepest (List.length stack);
      if hops > max_hops then Error "forward: hop budget exceeded"
      else if v = dst && stack = [] then begin
        let links = List.rev !traversed in
        let rtt =
          2.0 *. List.fold_left (fun a e -> a +. G.delay g e) 0.0 links
        in
        Ok { links; delivered = true; max_stack_depth = !deepest; rtt_ms = rtt }
      end
      else begin
        match stack with
        | label :: rest when G.dst g (Fib.link_of_label label) = v ->
          (* Reached the protected link's tail: pop and resume below. *)
          step v rest (hops + 1)
        | label :: _ -> begin
          (* Follow the protection label's NHLFEs at this router. *)
          match Hashtbl.find_opt net.fib.Fib.fibs.(v).Fib.ilm label with
          | None -> Error "forward: no protection entry (dropped)"
          | Some fwd ->
            let salt = Flow_hash.router_salt ~seed:net.hash_seed ~router:v in
            let weights = Array.map (fun n -> n.Fib.ratio) fwd.Fib.nhlfes in
            let idx = Flow_hash.pick ~salt flow weights in
            let e = fwd.Fib.nhlfes.(idx).Fib.out_link in
            if net.failed.(e) then begin
              (* Transient stacking: protect the protection path. *)
              if List.length stack >= max_stack then
                Error "forward: label stack overflow (dropped)"
              else step v (Fib.label_of_link e :: stack) (hops + 1)
            end
            else begin
              traversed := e :: !traversed;
              step (G.dst g e) stack (hops + 1)
            end
        end
        | [] -> begin
          (* Base forwarding: hash over the base splitting ratios here. *)
          let outs = G.out_links g v in
          let weights = Array.map (fun e -> Routing.get net.base k e) outs in
          let total = Array.fold_left ( +. ) 0.0 weights in
          if total <= 1e-12 then Error "forward: no base next hop (dropped)"
          else begin
            let salt = Flow_hash.router_salt ~seed:net.hash_seed ~router:v in
            let idx = Flow_hash.pick ~salt flow weights in
            let e = outs.(idx) in
            if net.failed.(e) then
              step v [ Fib.label_of_link e ] (hops + 1)
            else begin
              traversed := e :: !traversed;
              step (G.dst g e) [] (hops + 1)
            end
          end
        end
      end
    in
    step src [] 0

let split_frequencies net ~rng ~count ~src ~dst =
  let m = G.num_links net.graph in
  let counts = Array.make m 0 in
  let done_ = ref 0 in
  for _ = 1 to count do
    let flow =
      {
        Flow_hash.src_ip = R3_util.Prng.bits rng land 0xFFFFFFFF;
        dst_ip = R3_util.Prng.bits rng land 0xFFFFFFFF;
        src_port = R3_util.Prng.int rng 65536;
        dst_port = R3_util.Prng.int rng 65536;
      }
    in
    match forward net ~flow ~src ~dst with
    | Ok trace ->
      incr done_;
      List.iter (fun e -> counts.(e) <- counts.(e) + 1) trace.links
    | Error _ -> ()
  done;
  let denom = float_of_int (Int.max 1 !done_) in
  Array.map (fun c -> float_of_int c /. denom) counts
