(* Scenario-sweep benchmark: the prefix-sharing engine (Sweep.run) against
   the naive per-scenario path it replaces (the deprecated
   Eval.sorted_curves, which rebuilds every R3 state from the pristine plan
   and re-solves every optimal MCF from scratch). The two must agree
   bit-for-bit; the engine must be decisively faster. Results go to stdout
   and to BENCH_sweep.json so the perf trajectory is tracked in-repo.

   Run as:  dune exec bench/main.exe -- sweep
            dune exec bench/main.exe -- --smoke sweep   (tiny, no JSON) *)

[@@@ocaml.alert "-deprecated"]
(* the naive reference side IS the deprecated API *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Offline = R3_core.Offline
module Eval = R3_sim.Eval
module Scenario = R3_sim.Scenario
module Scenarios = R3_sim.Scenarios
module Sweep = R3_sim.Sweep
module J = R3_util.Json
module H = Harness

let output_path = "BENCH_sweep.json"

(* Environment with both R3 plans over a fixed OSPF base; the offline
   solves are one-off setup, not part of the measurement. *)
let setup ~tag ~seed ~load g =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:load () in
  let pairs, demands = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~weights ~pairs () in
  let structured key k base =
    H.cached_plan key (fun () ->
        let cfg =
          { (Offline.default_config ~f:k) with solve_method = Offline.Constraint_gen }
        in
        R3_core.Structured.compute cfg g tm
          { R3_core.Structured.srlgs = H.bidir_groups g; mlgs = []; k }
          (Offline.Fixed base))
  in
  let plan_exn = function Ok p -> p | Error e -> failwith ("sweep bench: " ^ e) in
  let ospf_r3 = plan_exn (structured (tag ^ "-sweep-ospf") 2 base) in
  let mplsff_r3 =
    let _, gk_base =
      R3_mcf.Concurrent_flow.min_mlu_routing g ~epsilon:0.04 ~pairs ~demands ()
    in
    plan_exn (structured (tag ^ "-sweep-mplsff") 2 gk_base)
  in
  Eval.make_env g ~weights ~pairs ~demands ~ospf_r3 ~mplsff_r3 ()

let bits_equal (a : float array array) (b : float array array) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         Array.length x = Array.length y
         && Array.for_all2
              (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
              x y)
       a b

let check name ok = if not ok then failwith ("sweep bench: " ^ name ^ " MISMATCH")

(* ---- headline: full enumeration, R3 algorithms, bottleneck metric ----

   The R3 rows are where the naive path pays per scenario (full plan
   rebuild + one full routing copy per directed failure); `Bottleneck
   keeps the (identical on both sides) MCF normalizer out of the
   comparison. *)
let headline_case ~repeats ~iters g env scenarios =
  let algorithms = Eval.[ Ospf_r3; Mplsff_r3 ] in
  let raw = List.map Scenario.links scenarios in
  let naive () =
    Eval.sorted_curves env ~algorithms ~scenarios:raw ~metric:`Bottleneck ()
  in
  let sweep d () =
    Sweep.curves ~metric:`Bottleneck ~domains:d env ~algorithms scenarios
  in
  let n_domains = R3_util.Parallel.domains () in
  check "headline curves" (bits_equal (naive ()) (sweep 1 ()));
  check "domain count independence" (bits_equal (sweep 1 ()) (sweep n_domains ()));
  (* Each measurement runs the whole pass [iters] times: one pass sits in
     the low-millisecond range, too close to timer noise on its own. *)
  let best f =
    R3_util.Timer.best_of ~repeats (fun () ->
        for _ = 1 to iters do
          ignore (f ())
        done)
    /. float_of_int iters
  in
  let t_naive = best naive in
  let t_sweep1 = best (sweep 1) in
  let t_sweepn = best (sweep n_domains) in
  let speedup = t_naive /. Float.max t_sweep1 1e-9 in
  (* Observability cost: the same sweep pass with the metrics/trace layer
     recording vs disabled (acceptance bar: within 5%). *)
  let m_on, m_off, m_pct =
    H.metrics_overhead ~repeats (fun () ->
        for _ = 1 to iters do
          ignore (sweep 1 ())
        done)
  in
  let per_iter t = t /. float_of_int iters in
  Printf.printf
    "  bottleneck sweep, %d scenarios x %d R3 algorithms (bit-identical):\n\
    \    naive %.4fs | sweep(1 domain) %.4fs | sweep(%d domains) %.4fs | speedup %.1fx\n\
    \    metrics overhead: on %.4fs | off %.4fs | %+.1f%%\n%!"
    (List.length scenarios) (List.length algorithms) t_naive t_sweep1 n_domains
    t_sweepn speedup (per_iter m_on) (per_iter m_off) m_pct;
  ignore g;
  J.Obj
    [
      ("scenarios", J.Int (List.length scenarios));
      ("algorithms", J.List (List.map (fun a -> J.String (Eval.algorithm_name a)) algorithms));
      ("metric", J.String "bottleneck");
      ("bit_identical", J.Bool true);
      ("naive_seconds", J.Float t_naive);
      ("sweep_seconds_1domain", J.Float t_sweep1);
      ("sweep_seconds_ndomain", J.Float t_sweepn);
      ("parallel_domains", J.Int n_domains);
      ("speedup_1domain", J.Float speedup);
      ("metrics_on_seconds", J.Float (per_iter m_on));
      ("metrics_off_seconds", J.Float (per_iter m_off));
      ("metrics_overhead_pct", J.Float m_pct);
    ]

(* ---- ratio metric: the MCF memo cache, cold vs warm ---- *)
let ratio_case g env scenarios =
  let algorithms = Eval.[ Ospf_r3; Ospf_opt ] in
  let raw = List.map Scenario.links scenarios in
  let naive, t_naive =
    R3_util.Timer.time (fun () ->
        Eval.sorted_curves env ~algorithms ~scenarios:raw ())
  in
  let cache = Eval.mcf_cache env in
  let cold, t_cold =
    R3_util.Timer.time (fun () -> Sweep.run ~cache env ~algorithms scenarios)
  in
  let warm, t_warm =
    R3_util.Timer.time (fun () -> Sweep.run ~cache env ~algorithms scenarios)
  in
  check "ratio curves" (bits_equal naive cold.Sweep.curves);
  check "warm cache curves" (bits_equal cold.Sweep.curves warm.Sweep.curves);
  check "cold misses" (cold.Sweep.mcf_misses = List.length scenarios);
  check "warm hits" (warm.Sweep.mcf_hits = List.length scenarios && warm.Sweep.mcf_misses = 0);
  Printf.printf
    "  ratio sweep, %d scenarios (MCF normalizer): naive %.3fs | cold %.3fs | \
     warm %.3fs (%d cache hits, bit-identical)\n%!"
    (List.length scenarios) t_naive t_cold t_warm warm.Sweep.mcf_hits;
  ignore g;
  J.Obj
    [
      ("scenarios", J.Int (List.length scenarios));
      ("metric", J.String "ratio");
      ("bit_identical", J.Bool true);
      ("naive_seconds", J.Float t_naive);
      ("sweep_cold_seconds", J.Float t_cold);
      ("sweep_warm_seconds", J.Float t_warm);
      ("warm_cache_hits", J.Int warm.Sweep.mcf_hits);
      ("warm_speedup", J.Float (t_cold /. Float.max t_warm 1e-9));
    ]

(* ---- persistent pool vs the retired per-call fork/join executor ----

   Two workloads, one per granularity regime:
   - the Abilene sweep fan-out (few heavy subtree tasks), where fork/join
     was least embarrassed — the pool must be no worse;
   - a pop36 constraint-generation oracle round (many tiny knapsack
     tasks), where per-call domain spawn/join dominated — the pool must
     win outright.
   The oracle round reproduces Offline's separation oracle exactly: for
   each (matrix, link) index, weights [cap l * p_l(e)] fed to the
   knapsack kernel, over a protection-shaped routing (per-column OSPF
   detour flow for the failed link's unit demand). *)
let pool_case ~repeats ~iters env scenarios =
  let algorithms = Eval.[ Ospf_r3; Mplsff_r3 ] in
  (* At least one worker, or both executors degenerate to the same
     sequential loop: on a single-core host this measures the per-call
     domain spawn/join overhead itself, which is what the pool removes. *)
  let n_domains = Int.max 2 (R3_util.Parallel.domains ()) in
  let saved_domains = R3_util.Parallel.domains () in
  R3_util.Parallel.set_domains n_domains;
  Fun.protect ~finally:(fun () -> R3_util.Parallel.set_domains saved_domains)
  @@ fun () ->
  let sweep fanout () =
    (Sweep.run ~metric:`Bottleneck ~domains:n_domains ~fanout env ~algorithms
       scenarios)
      .Sweep.curves
  in
  check "pool vs fork/join sweep curves"
    (bits_equal (sweep `Tasks ()) (sweep `Forkjoin ()));
  let best f =
    R3_util.Timer.best_of ~repeats (fun () ->
        for _ = 1 to iters do
          ignore (f ())
        done)
    /. float_of_int iters
  in
  let t_fj = best (sweep `Forkjoin) in
  let t_pool = best (sweep `Tasks) in
  (* pop36 oracle round *)
  let g36 = Reconfig_bench.pop36 () in
  let m = G.num_links g36 in
  let weights = R3_net.Ospf.unit_weights g36 in
  (* protection-shaped routing: row l is the OSPF detour flow carrying
     link l's unit virtual demand around l (built once, untimed) *)
  let detour =
    Array.init m (fun l ->
        let r =
          R3_net.Ospf.routing g36 ~failed:(G.fail_links g36 [ l ]) ~weights
            ~pairs:[| (G.src g36 l, G.dst g36 l) |] ()
        in
        Array.init m (fun j -> R3_net.Routing.get r 0 j))
  in
  let nh = 4 in
  let n = nh * m in
  let task i =
    let e = i mod m in
    let w = Array.init m (fun l -> G.capacity g36 l *. detour.(l).(e)) in
    fst (R3_core.Virtual_demand.worst_virtual_load_set ~f:2 w)
  in
  let pool_oracle () =
    R3_util.Parallel.init ~chunk:(R3_util.Parallel.chunk_hint n) n task
  in
  let fj_oracle () = R3_util.Pool.Forkjoin.run_indexed ~domains:n_domains n task in
  check "pool vs fork/join oracle results" (pool_oracle () = fj_oracle ());
  let t_fj_o = best fj_oracle in
  let t_pool_o = best pool_oracle in
  let s = R3_util.Pool.stats () in
  Printf.printf
    "  executor (pool vs per-call fork/join, %d domains):\n\
    \    abilene sweep:   fork/join %.4fs | pool %.4fs | speedup %.2fx\n\
    \    pop36 CG oracle: fork/join %.4fs | pool %.4fs | speedup %.2fx\n\
    \    pool: %d workers, %d tasks, %d steals, %d parks, depth<=%d, %d resizes\n%!"
    n_domains t_fj t_pool
    (t_fj /. Float.max t_pool 1e-9)
    t_fj_o t_pool_o
    (t_fj_o /. Float.max t_pool_o 1e-9)
    s.R3_util.Pool.workers s.R3_util.Pool.tasks s.R3_util.Pool.steals
    s.R3_util.Pool.parks s.R3_util.Pool.max_queue_depth s.R3_util.Pool.resizes;
  (* Acceptance bar: pool no worse than fork/join on the coarse sweep
     (10% tolerance — few tasks, timer noise) and strictly faster on the
     fine-grained oracle round. Hard-enforced only on demand, like the
     plan-store gate. *)
  if t_pool > t_fj *. 1.10 || t_pool_o >= t_fj_o then begin
    let msg =
      Printf.sprintf
        "pool vs fork/join: abilene %.4fs vs %.4fs, pop36 oracle %.4fs vs %.4fs"
        t_pool t_fj t_pool_o t_fj_o
    in
    if Sys.getenv_opt "R3_BENCH_ENFORCE_SPEEDUP" <> None then
      failwith ("sweep bench: " ^ msg)
    else H.note "%s — not enforced without R3_BENCH_ENFORCE_SPEEDUP" msg
  end;
  J.Obj
    [
      ("workers", J.Int s.R3_util.Pool.workers);
      ("tasks", J.Int s.R3_util.Pool.tasks);
      ("steals", J.Int s.R3_util.Pool.steals);
      ("parks", J.Int s.R3_util.Pool.parks);
      ("max_queue_depth", J.Int s.R3_util.Pool.max_queue_depth);
      ("resizes", J.Int s.R3_util.Pool.resizes);
      ( "abilene_sweep",
        J.Obj
          [
            ("forkjoin_seconds", J.Float t_fj);
            ("pool_seconds", J.Float t_pool);
            ("speedup", J.Float (t_fj /. Float.max t_pool 1e-9));
          ] );
      ( "pop36_cg_oracle",
        J.Obj
          [
            ("oracle_tasks", J.Int n);
            ("forkjoin_seconds", J.Float t_fj_o);
            ("pool_seconds", J.Float t_pool_o);
            ("speedup", J.Float (t_fj_o /. Float.max t_pool_o 1e-9));
          ] );
    ]

let run () =
  H.section "Scenario sweep: prefix-sharing engine vs naive per-scenario path";
  if !H.smoke then begin
    (* Tiny end-to-end pass for @bench-check: correctness checks only. *)
    let g = Topology.triangle () in
    let env = setup ~tag:"triangle" ~seed:7 ~load:0.3 g in
    let scenarios = Scenarios.enumerate g ~k:1 in
    ignore (headline_case ~repeats:1 ~iters:1 g env scenarios);
    ignore (ratio_case g env scenarios);
    (* The instrumented hot paths must have recorded something by now:
       catches a metrics layer that silently stopped counting. *)
    let module M = R3_util.Metrics in
    check "metrics: lp pivots recorded" (M.counter_value "lp.pivots" > 0);
    check "metrics: mcf runs recorded" (M.counter_value "mcf.runs" > 0);
    check "metrics: sweep scenarios recorded" (M.counter_value "sweep.scenarios" > 0);
    check "metrics: cache hits recorded" (M.counter_value "sweep.cache.hits" > 0);
    check "metrics: cache misses recorded" (M.counter_value "sweep.cache.misses" > 0);
    check "metrics: re-enabled after overhead run" (M.enabled () && R3_util.Trace.enabled ());
    H.note "smoke mode: no %s written" output_path
  end
  else begin
    let g = Topology.abilene () in
    let env = setup ~tag:"abilene" ~seed:7 ~load:0.3 g in
    (* The paper's enumeration unit: every single and double physical
       failure. *)
    let scenarios = Scenarios.enumerate g ~k:1 @ Scenarios.enumerate g ~k:2 in
    let headline = headline_case ~repeats:3 ~iters:10 g env scenarios in
    let ratio = ratio_case g env (Scenarios.enumerate g ~k:1) in
    let pool = pool_case ~repeats:3 ~iters:10 env scenarios in
    let doc =
      J.Obj
        [
          ("bench", J.String "sweep");
          ("topology", J.String "abilene");
          ("nodes", J.Int (G.num_nodes g));
          ("links", J.Int (G.num_links g));
          ("headline", headline);
          ("mcf_cache", ratio);
          ("pool", pool);
          (* Last: the counters the cases above accumulated. *)
          H.metrics_section ();
        ]
    in
    J.write_file output_path doc;
    H.note "wrote %s" output_path
  end
