(* Online-reconfiguration benchmark: the copy-on-write failure-folding
   kernel (Reconfig.fail / apply_failures) under the three Routing storage
   backends. The protection routing is synthetic (one SPF detour path per
   link, no LP solve) so the bench isolates the substrate: dense rows pay
   O(m) per touched row, sparse rows O(nnz), and the two must stay
   bit-identical. Results go to stdout and BENCH_reconfig.json.

   Run as:  dune exec bench/main.exe -- reconfig
            dune exec bench/main.exe -- --smoke reconfig   (tiny, no JSON) *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Routing = R3_net.Routing
module Spf = R3_net.Spf
module Reconfig = R3_core.Reconfig
module Scenario = R3_core.Scenario
module J = R3_util.Json
module H = Harness

let output_path = "BENCH_reconfig.json"

let check name ok = if not ok then failwith ("reconfig bench: " ^ name ^ " MISMATCH")

(* One detour path per link: the SPF route around the link itself, or the
   self row (traffic dropped) when removing the link disconnects its
   endpoints. Row support is one path — the shape LP protections have. *)
let synthetic_protection g ~backend =
  let weights = R3_net.Ospf.unit_weights g in
  let m = G.num_links g in
  let p =
    Routing.create ~backend g
      ~pairs:(Array.init m (fun e -> (G.src g e, G.dst g e)))
  in
  for l = 0 to m - 1 do
    let failed = G.fail_links g [ l ] in
    match Spf.shortest_path g ~failed ~weights ~src:(G.src g l) ~dst:(G.dst g l) () with
    | Some path -> List.iter (fun e -> Routing.set p l e 1.0) path
    | None -> Routing.set p l l 1.0
  done;
  p

let make_state g ~backend ~seed =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, demands = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~backend ~weights ~pairs () in
  let protection = synthetic_protection g ~backend in
  Reconfig.make g ~pairs ~demands ~base ~protection

(* Deterministic 2-physical-failure scenarios (distinct undirected links). *)
let scenarios g ~seed ~count =
  let phys = Array.to_list (R3_sim.Scenarios.physical_links g) in
  let phys = Array.of_list phys in
  let rng = R3_util.Prng.create seed in
  List.init count (fun _ ->
      let a = R3_util.Prng.int rng (Array.length phys) in
      let b = R3_util.Prng.int rng (Array.length phys) in
      if a = b then [ phys.(a) ] else [ phys.(a); phys.(b) ])

let fold_scenario st links =
  List.fold_left
    (fun st e -> Reconfig.fail st (Scenario.of_links st.Reconfig.graph [ e ]))
    st links

(* Throughput of the failure-folding kernel alone: replay every scenario
   from the pristine state. *)
let bench_step ~repeats st scens =
  R3_util.Timer.best_of ~repeats (fun () ->
      List.iter (fun links -> ignore (fold_scenario st links)) scens)

(* Prefix-sharing sweep: step every scenario and evaluate the post-failure
   MLU (exercises add_loads on the stepped base routing as well). *)
let bench_sweep ~repeats st scens =
  R3_util.Timer.best_of ~repeats (fun () ->
      List.iter
        (fun links -> ignore (Reconfig.mlu (fold_scenario st links)))
        scens)

let backends = Routing.Backend.[ Dense; Sparse; Auto ]

let one_topology ~repeats ~seed ~nscen name g =
  let scens = scenarios g ~seed:(seed + 1) ~count:nscen in
  let states =
    List.map (fun b -> (b, make_state g ~backend:b ~seed)) backends
  in
  (* Bit-identity across backends, and apply_failures-vs-step fold
     equivalence, on every scenario. *)
  let dense_st = List.assoc Routing.Backend.Dense states in
  List.iter
    (fun links ->
      let reference = fold_scenario dense_st links in
      List.iter
        (fun (b, st) ->
          check
            (Printf.sprintf "%s %s folded state" name (Routing.Backend.to_string b))
            (Reconfig.states_bit_identical reference (fold_scenario st links));
          let directed =
            List.concat_map
              (fun e ->
                match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])
              links
          in
          check
            (Printf.sprintf "%s %s apply_failures fold" name
               (Routing.Backend.to_string b))
            (Reconfig.states_bit_identical reference
               (Reconfig.apply_failures st directed)))
        states)
    scens;
  let rows =
    List.map
      (fun (b, st) ->
        let t_step = bench_step ~repeats st scens in
        let t_sweep = bench_sweep ~repeats st scens in
        Printf.printf
          "  %-6s %-6s: step %8.2f scen/s | sweep(mlu) %8.2f scen/s\n%!" name
          (Routing.Backend.to_string b)
          (float_of_int nscen /. t_step)
          (float_of_int nscen /. t_sweep);
        (b, t_step, t_sweep))
      states
  in
  let time_of b = List.find (fun (b', _, _) -> b' = b) rows in
  let _, td_step, td_sweep = time_of Routing.Backend.Dense in
  let _, ts_step, ts_sweep = time_of Routing.Backend.Sparse in
  let speedup = td_step /. Float.max ts_step 1e-9 in
  Printf.printf "  %-6s sparse step speedup over dense: %.1fx\n%!" name speedup;
  ( speedup,
    J.Obj
      [
        ("topology", J.String name);
        ("nodes", J.Int (G.num_nodes g));
        ("links", J.Int (G.num_links g));
        ("scenarios", J.Int nscen);
        ("bit_identical", J.Bool true);
        ( "backends",
          J.List
            (List.map
               (fun (b, t_step, t_sweep) ->
                 J.Obj
                   [
                     ("backend", J.String (Routing.Backend.to_string b));
                     ("step_seconds", J.Float t_step);
                     ("sweep_seconds", J.Float t_sweep);
                   ])
               rows) );
        ("sparse_step_speedup", J.Float speedup);
        ("sparse_sweep_speedup", J.Float (td_sweep /. Float.max ts_sweep 1e-9));
      ] )

let pop36 () =
  Topology.random ~seed:36 ~nodes:36 ~undirected_links:80
    ~capacities:[ (10.0, 0.5); (40.0, 0.3); (100.0, 0.2) ]
    ()

let run () =
  H.section "Online reconfiguration: routing storage backends (dense/sparse/auto)";
  if !H.smoke then begin
    (* Tiny end-to-end pass for @bench-check: correctness checks only. *)
    let _, _ = one_topology ~repeats:1 ~seed:7 ~nscen:4 "abilene" (Topology.abilene ()) in
    let module M = R3_util.Metrics in
    check "metrics: sparse rows recorded" (M.counter_value "r3.routing.sparse_rows" > 0);
    check "metrics: dense rows recorded" (M.counter_value "r3.routing.dense_rows" > 0);
    check "metrics: cow ratio recorded"
      (M.gauge_value (M.gauge "r3.reconfig.cow_shared_ratio") <> None);
    H.note "smoke mode: no %s written" output_path
  end
  else begin
    let repeats = 3 in
    let _, abilene = one_topology ~repeats ~seed:7 ~nscen:60 "abilene" (Topology.abilene ()) in
    let speedup, pop = one_topology ~repeats ~seed:7 ~nscen:60 "pop36" (pop36 ()) in
    (* The >= 2x sparse-step target is recorded in the JSON for offline
       tracking; hard-failing on a wall-clock ratio turns a loaded or
       small-core runner into a spurious bench failure, so the assertion
       is opt-in (R3_BENCH_ENFORCE_SPEEDUP=1). *)
    if speedup < 2.0 then
      H.note "WARNING: pop36 sparse step speedup %.2fx is below the 2x target"
        speedup;
    (match Sys.getenv_opt "R3_BENCH_ENFORCE_SPEEDUP" with
    | Some ("" | "0") | None -> ()
    | Some _ -> check "pop36 sparse >= 2x dense on step" (speedup >= 2.0));
    let doc =
      J.Obj
        [
          ("bench", J.String "reconfig");
          ("abilene", abilene);
          ("pop36", pop);
          H.metrics_section ();
        ]
    in
    J.write_file output_path doc;
    H.note "wrote %s" output_path
  end
