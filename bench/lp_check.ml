(* LP engine cross-check behind `dune build @lp-check` (part of
   `dune runtest`): one small constraint-generation instance, solved by
   the sparse-tableau and the LU-factorized revised engines. The optima
   must agree to 1e-9 relative — the bit-level contract the revised
   backend is held to everywhere it replaces the tableau. *)

module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Ospf = R3_net.Ospf
module Offline = R3_core.Offline

let () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 7 in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, _ = Traffic.commodities tm in
  let base = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
  let run backend =
    let cfg =
      {
        (Offline.default_config ~f:1) with
        Offline.solve_method = Offline.Constraint_gen;
        core = R3_core.Config.(default |> with_lp_backend backend);
      }
    in
    match Offline.compute cfg g tm (Offline.Fixed base) with
    | Ok plan -> plan
    | Error e ->
      Printf.eprintf "lp_check: %s backend failed: %s\n"
        (R3_lp.Problem.backend_name backend)
        e;
      exit 1
  in
  let tab = run `Sparse and rev = run `Revised in
  let diff = Float.abs (tab.Offline.mlu -. rev.Offline.mlu) in
  if diff > 1e-9 *. (1.0 +. Float.abs tab.Offline.mlu) then begin
    Printf.eprintf
      "lp_check: engines disagree: tableau MLU %.15g, revised MLU %.15g\n"
      tab.Offline.mlu rev.Offline.mlu;
    exit 1
  end;
  Printf.printf
    "lp_check: tableau %d pivots, revised %d pivots, dMLU %.2g: ok\n"
    tab.Offline.lp_pivots rev.Offline.lp_pivots diff
