(* Bechamel micro-benchmarks: one Test.make per recurring kernel of the
   tables/figures, so regressions in the hot paths show up quantitatively.

   - table2 kernel: one offline precomputation (CG) on the square fixture;
   - table3 kernel: FIB construction + storage accounting;
   - fig3-7 kernels: online rescaling, scenario MLU evaluation, the
     knapsack separation oracle, and the GK optimal-MLU normalizer. *)

open Bechamel
open Toolkit

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Offline = R3_core.Offline

let square_inputs =
  lazy
    (let g = Topology.square () in
     let tm = Traffic.zeros 4 in
     tm.(0).(2) <- 2.0;
     tm.(1).(3) <- 2.0;
     (g, tm))

let abilene_plan =
  lazy
    (let g = Topology.abilene () in
     let rng = R3_util.Prng.create 5 in
     let tm = Traffic.gravity rng g ~load_factor:0.2 () in
     let pairs, demands = Traffic.commodities tm in
     let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
     let cfg =
       { (Offline.default_config ~f:2) with solve_method = Offline.Constraint_gen }
     in
     match Offline.compute cfg g tm (Offline.Fixed base) with
     | Ok plan -> (g, plan, pairs, demands)
     | Error e -> failwith e)

let test_offline_square =
  Test.make ~name:"table2: offline precompute (square, F=1)"
    (Staged.stage (fun () ->
         let g, tm = Lazy.force square_inputs in
         let cfg =
           { (Offline.default_config ~f:1) with
             solve_method = Offline.Constraint_gen }
         in
         match Offline.compute cfg g tm Offline.Joint with
         | Ok plan -> ignore plan.Offline.mlu
         | Error e -> failwith e))

let test_rescaling =
  Test.make ~name:"fig3-7: online reconfiguration (1 bidir failure, Abilene)"
    (Staged.stage (fun () ->
         let _, plan, _, _ = Lazy.force abilene_plan in
         let st = R3_core.Reconfig.of_plan plan in
         let g = plan.R3_core.Offline.graph in
         ignore (R3_core.Reconfig.fail st (R3_core.Scenario.of_links g [ 3 ]))))

let test_scenario_mlu =
  Test.make ~name:"fig3-7: scenario MLU (2 failures, Abilene)"
    (Staged.stage (fun () ->
         let _, plan, _, _ = Lazy.force abilene_plan in
         ignore (R3_core.Verify.scenario_mlu plan [ 3; 11 ])))

let test_knapsack_oracle =
  Test.make ~name:"CG separation oracle (28 links, F=3)"
    (Staged.stage (fun () ->
         let weights = Array.init 28 (fun i -> float_of_int ((i * 37) mod 23)) in
         ignore (R3_core.Virtual_demand.worst_virtual_load_set ~f:3 weights)))

let test_gk_normalizer =
  Test.make ~name:"figs: GK optimal-MLU normalizer (Abilene)"
    (Staged.stage (fun () ->
         let g, _, pairs, demands = Lazy.force abilene_plan in
         ignore (R3_mcf.Concurrent_flow.min_mlu g ~epsilon:0.1 ~pairs ~demands ())))

let test_fib_storage =
  Test.make ~name:"table3: FIB build + storage accounting (Abilene)"
    (Staged.stage (fun () ->
         let g, plan, _, _ = Lazy.force abilene_plan in
         ignore (R3_mplsff.Storage.of_protection g plan.Offline.protection)))

let benchmarks =
  Test.make_grouped ~name:"r3"
    [
      test_offline_square;
      test_rescaling;
      test_scenario_mlu;
      test_knapsack_oracle;
      test_gk_normalizer;
      test_fib_storage;
    ]

(* Bechamel boilerplate: run every test for a fixed small quota and print
   an ols-regressed ns/run table. *)
let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 50) () in
  let raw = Benchmark.all cfg instances benchmarks in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  Analyze.merge ols instances results

let print_results results =
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "\n[%s]\n" measure;
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-55s %12.1f ns/run\n" name est
          | Some ests ->
            Printf.printf "  %-55s %s\n" name
              (String.concat ", " (List.map (Printf.sprintf "%.1f") ests))
          | None -> Printf.printf "  %-55s (no estimate)\n" name)
        tbl)
    results

let main () =
  Harness.section "Bechamel micro-benchmarks (one kernel per table/figure)";
  (* Force the shared fixtures so their construction cost does not leak
     into the per-run estimates. *)
  ignore (Lazy.force square_inputs);
  ignore (Lazy.force abilene_plan);
  print_results (benchmark ())
