(* Online-engine benchmark: event-processing throughput and per-event
   convergence latency of the event-driven reconfiguration runtime, under
   the ideal channel and the fault-injected one (jitter + duplication +
   drop-with-retry). The protection routing is synthetic (one SPF detour
   per link, no LP solve — shared with Reconfig_bench) so the bench
   isolates the engine: delivery expansion, per-router version tracking,
   and the memoized canonical-state folds. Every timed run also asserts
   the terminal state is bit-identical to the batch replay.

   Results go to stdout and BENCH_online.json.

   Run as:  dune exec bench/main.exe -- online
            dune exec bench/main.exe -- --smoke online   (tiny, no JSON) *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Online = R3_sim.Online
module J = R3_util.Json
module H = Harness

let output_path = "BENCH_online.json"

let check name ok = if not ok then failwith ("online bench: " ^ name ^ " MISMATCH")

let channels () =
  [
    Online.Channel.ideal ();
    Online.Channel.faulty Online.Channel.default_faults;
  ]

let quantile p arr = R3_util.Stats.percentile p arr

let one_case ~repeats ~events name g channel =
  let root =
    Reconfig_bench.make_state g ~backend:R3_net.Routing.Backend.Sparse ~seed:11
  in
  let schedule = Online.generate g ~seed:23 ~events ~max_concurrent:2 () in
  let n_events = List.length schedule in
  let run () = Online.run ~channel ~seed:23 root schedule in
  let o = run () in
  let cname = Online.Channel.name channel in
  check (name ^ "/" ^ cname ^ " order independence") o.Online.order_independent;
  let dt = R3_util.Timer.best_of ~repeats (fun () -> ignore (run ())) in
  let conv =
    Array.of_list
      (List.filter
         (fun c -> not (Float.is_nan c))
         (Array.to_list o.Online.stats.Online.convergence_ms))
  in
  check (name ^ "/" ^ cname ^ " convergence recorded") (Array.length conv = n_events);
  let eps = float_of_int n_events /. Float.max dt 1e-9 in
  let p50 = quantile 50.0 conv and p99 = quantile 99.0 conv in
  Printf.printf
    "  %-6s %-6s: %4d events %6d deliveries | %9.0f events/s | convergence \
     p50 %6.1f ms  p99 %6.1f ms\n%!"
    name cname n_events o.Online.stats.Online.deliveries eps p50 p99;
  J.Obj
    [
      ("topology", J.String name);
      ("channel", J.String cname);
      ("events", J.Int n_events);
      ("deliveries", J.Int o.Online.stats.Online.deliveries);
      ("stale", J.Int o.Online.stats.Online.stale);
      ("drops", J.Int o.Online.stats.Online.drops);
      ("retries", J.Int o.Online.stats.Online.retries);
      ("distinct_states", J.Int o.Online.stats.Online.distinct_states);
      ("seconds", J.Float dt);
      ("events_per_s", J.Float eps);
      ("convergence_p50_ms", J.Float p50);
      ("convergence_p99_ms", J.Float p99);
      ("convergence_max_ms", J.Float (R3_util.Stats.max conv));
      ("order_independent", J.Bool o.Online.order_independent);
    ]

let run () =
  H.section "Online runtime: event throughput and convergence latency";
  if !H.smoke then begin
    (* Tiny end-to-end pass for @bench-check: correctness checks only,
       with per-router FIB maintenance switched on. *)
    let g = Topology.abilene () in
    let root =
      Reconfig_bench.make_state g ~backend:R3_net.Routing.Backend.Sparse
        ~seed:11
    in
    let schedule = Online.generate g ~seed:5 ~events:10 ~max_concurrent:2 () in
    List.iter
      (fun channel ->
        let o = Online.run ~channel ~seed:5 ~fibs:true root schedule in
        let cname = Online.Channel.name channel in
        check (cname ^ " order independence") o.Online.order_independent;
        check (cname ^ " fib consistency") o.Online.fib_consistent)
      (channels ());
    let module M = R3_util.Metrics in
    check "metrics: events recorded" (M.counter_value "r3.online.events" > 0);
    check "metrics: deliveries recorded"
      (M.counter_value "r3.online.deliveries" > 0);
    H.note "smoke mode: no %s written" output_path
  end
  else begin
    let repeats = 3 in
    let events = if !H.quick then 200 else 1000 in
    let topologies =
      [ ("abilene", Topology.abilene ()); ("pop36", Reconfig_bench.pop36 ()) ]
    in
    let rows =
      List.concat_map
        (fun (name, g) ->
          List.map (fun ch -> one_case ~repeats ~events name g ch) (channels ()))
        topologies
    in
    let doc =
      J.Obj
        [
          ("bench", J.String "online");
          ("config", R3_core.Config.to_json R3_core.Config.default);
          ( "faults",
            (let f = Online.Channel.default_faults in
             J.Obj
               [
                 ("jitter_ms", J.Float f.Online.Channel.jitter_ms);
                 ("dup_prob", J.Float f.Online.Channel.dup_prob);
                 ("drop_prob", J.Float f.Online.Channel.drop_prob);
                 ("max_retries", J.Int f.Online.Channel.max_retries);
                 ("backoff_ms", J.Float f.Online.Channel.backoff_ms);
               ]) );
          ("cases", J.List rows);
          H.metrics_section ();
        ]
    in
    J.write_file output_path doc;
    H.note "wrote %s" output_path
  end
