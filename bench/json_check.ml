(* Assert that BENCH_*.json artifacts parse with R3_util.Json and that
   every value in them survives serialize -> parse bit-exactly (floats
   compared as IEEE-754 bits). Run from @bench-check so a formatting
   regression in Json.number — or a hand-mangled artifact — fails
   `dune runtest` instead of a later analysis script.

   Usage: json_check.exe [FILE ...]; with no files only the built-in
   self-test over adversarial floats runs. *)

module J = R3_util.Json

(* Structural equality with floats by bits. An [Int]/[Float] pair counts
   as equal when the int converts to exactly that float: the printer emits
   integral floats like [1.0] as "1", which the parser reads back as
   [Int 1] — the bits are intact, only the tag moved. *)
let rec equal a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Int x, J.Int y -> x = y
  | J.Float x, J.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | J.Int x, J.Float y | J.Float y, J.Int x ->
    Int64.equal (Int64.bits_of_float (float_of_int x)) (Int64.bits_of_float y)
  | J.Float x, J.Null | J.Null, J.Float x ->
    (* the printer emits non-finite floats as null, by design *)
    not (Float.is_finite x)
  | J.String x, J.String y -> String.equal x y
  | J.List x, J.List y -> (
    try List.for_all2 equal x y with Invalid_argument _ -> false)
  | J.Obj x, J.Obj y -> (
    try
      List.for_all2
        (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
        x y
    with Invalid_argument _ -> false)
  | _ -> false

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_check: " ^ s);
      exit 1)
    fmt

let check_doc what doc =
  let compact = J.of_string (J.to_string doc) in
  if not (equal doc compact) then fail "%s: compact round-trip mismatch" what;
  let pretty = J.of_string (J.to_string_pretty doc) in
  if not (equal doc pretty) then fail "%s: pretty round-trip mismatch" what

(* Schema assertions for the LP bench artifact: every solver entry must
   carry its backend/pivots/refactorizations metadata, the tableau engine
   never refactorizes, and the engines must agree on the optimum. Keeps a
   bench refactor from silently dropping the fields the perf-trajectory
   analysis keys on. *)

let field what obj k =
  match obj with
  | J.Obj kvs -> (
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> fail "%s: missing field %S" what k)
  | _ -> fail "%s: expected an object around %S" what k

let as_int what = function
  | J.Int i -> i
  | _ -> fail "%s: expected an int" what

let as_num what = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> fail "%s: expected a number" what

let as_str what = function
  | J.String s -> s
  | _ -> fail "%s: expected a string" what

(* One solver entry: {backend; seconds; pivots; refactorizations; mlu}. *)
let check_solver what ~backend j =
  let name = as_str (what ^ ".backend") (field what j "backend") in
  if name <> backend then fail "%s: backend %S, expected %S" what name backend;
  ignore (as_num (what ^ ".seconds") (field what j "seconds"));
  ignore (as_num (what ^ ".lp_seconds") (field what j "lp_seconds"));
  let pivots = as_int (what ^ ".pivots") (field what j "pivots") in
  if pivots < 0 then fail "%s: negative pivots" what;
  let refac =
    as_int (what ^ ".refactorizations") (field what j "refactorizations")
  in
  if backend <> "revised" && refac <> 0 then
    fail "%s: %s engine reports %d refactorizations" what backend refac;
  if backend = "revised" && refac < 1 then
    fail "%s: revised engine never refactorized" what;
  as_num (what ^ ".mlu") (field what j "mlu")

let check_lp_scenario sc =
  let tag = as_str "scenario.topology" (field "scenario" sc "topology") in
  let w what = Printf.sprintf "%s.%s" tag what in
  let dual = field tag sc "dualized" in
  let m_dense = check_solver (w "dualized.dense") ~backend:"dense"
      (field (w "dualized") dual "dense") in
  let m_tab = check_solver (w "dualized.tableau") ~backend:"tableau"
      (field (w "dualized") dual "tableau") in
  let m_rev = check_solver (w "dualized.revised") ~backend:"revised"
      (field (w "dualized") dual "revised") in
  let agree what a b tol =
    if Float.abs (a -. b) > tol *. (1.0 +. Float.abs b) then
      fail "%s: optima disagree: %.12g vs %.12g" what a b
  in
  agree (w "dualized dense/tableau") m_dense m_tab 1e-6;
  agree (w "dualized tableau/revised") m_tab m_rev 1e-9;
  let cg = field tag sc "constraint_gen" in
  let engine name backend =
    let e = field (w "constraint_gen") cg name in
    let cold = check_solver (w ("cg." ^ name ^ ".cold")) ~backend
        (field (w name) e "cold") in
    let warm = check_solver (w ("cg." ^ name ^ ".warm")) ~backend
        (field (w name) e "warm") in
    agree (w ("cg " ^ name ^ " cold/warm")) cold warm 1e-9;
    warm
  in
  let cg_tab = engine "tableau" "tableau" and cg_rev = engine "revised" "revised" in
  agree (w "cg tableau/revised") cg_tab cg_rev 1e-9;
  List.iter
    (fun name ->
      let v = as_num (w ("cg." ^ name)) (field (w "constraint_gen") cg name) in
      if v <= 0.0 then fail "%s: %s is %g, expected > 0" tag name v)
    [ "revised_speedup"; "cold_speedup"; "lp_speedup" ]

(* Schema assertions for the sweep bench artifact: the executor section
   must carry the pool's lifetime counters (all non-negative) and both
   pool-vs-fork/join comparisons with positive timings. Keeps a bench
   refactor from silently dropping the stats the executor trajectory
   keys on. *)

let check_pool_compare what j =
  let fj = as_num (what ^ ".forkjoin_seconds") (field what j "forkjoin_seconds") in
  let pl = as_num (what ^ ".pool_seconds") (field what j "pool_seconds") in
  if fj <= 0.0 || pl <= 0.0 then
    fail "%s: non-positive timing (fork/join %g, pool %g)" what fj pl;
  ignore (as_num (what ^ ".speedup") (field what j "speedup"))

let check_sweep what doc =
  match doc with
  | J.Obj kvs when List.assoc_opt "bench" kvs = Some (J.String "sweep") ->
    let pool = field what doc "pool" in
    List.iter
      (fun k ->
        let v = as_int (what ^ ".pool." ^ k) (field (what ^ ".pool") pool k) in
        if v < 0 then fail "%s: pool.%s is negative (%d)" what k v)
      [ "workers"; "tasks"; "steals"; "parks"; "max_queue_depth"; "resizes" ];
    check_pool_compare (what ^ ".pool.abilene_sweep")
      (field (what ^ ".pool") pool "abilene_sweep");
    check_pool_compare (what ^ ".pool.pop36_cg_oracle")
      (field (what ^ ".pool") pool "pop36_cg_oracle")
  | _ -> ()

let check_lp what doc =
  match doc with
  | J.Obj kvs when List.assoc_opt "bench" kvs = Some (J.String "lp") -> (
    match List.assoc_opt "scenarios" kvs with
    | Some (J.List scs) -> List.iter check_lp_scenario scs
    | _ -> fail "%s: lp bench without a scenarios list" what)
  | _ -> ()

let self_test () =
  let nasty =
    [
      0.1; 0.2; 0.30000000000000004; 1.0 /. 3.0; -0.0; 5e-324 (* min subnormal *);
      1.7976931348623157e308 (* max finite *); 2.2250738585072014e-308; 3.16e-2;
      1e22; 9007199254740993.0; 6.02214076e23; -123.456e-7; Float.pi;
    ]
  in
  check_doc "self-test"
    (J.Obj
       [
         ("floats", J.List (List.map (fun f -> J.Float f) nasty));
         ("nonfinite", J.List [ J.Float nan; J.Float infinity ]);
         (* both print as null *)
         ("ints", J.List [ J.Int max_int; J.Int min_int; J.Int 0; J.Int (-1) ]);
         ("strings", J.List [ J.String "a\"b\\c\nd\te\x01f"; J.String "" ]);
         ("misc", J.List [ J.Null; J.Bool true; J.Bool false; J.Obj []; J.List [] ]);
       ])

let check_file path =
  let doc =
    try J.read_file path with
    | J.Parse_error m -> fail "%s: parse error: %s" path m
    | Sys_error m -> fail "%s" m
  in
  check_doc path doc;
  check_lp path doc;
  check_sweep path doc;
  Printf.printf "json_check: %s ok\n" path

let () =
  self_test ();
  Array.iteri (fun i a -> if i > 0 then check_file a) Sys.argv;
  print_endline "json_check: self-test ok"
