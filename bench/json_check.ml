(* Assert that BENCH_*.json artifacts parse with R3_util.Json and that
   every value in them survives serialize -> parse bit-exactly (floats
   compared as IEEE-754 bits). Run from @bench-check so a formatting
   regression in Json.number — or a hand-mangled artifact — fails
   `dune runtest` instead of a later analysis script.

   Usage: json_check.exe [FILE ...]; with no files only the built-in
   self-test over adversarial floats runs. *)

module J = R3_util.Json

(* Structural equality with floats by bits. An [Int]/[Float] pair counts
   as equal when the int converts to exactly that float: the printer emits
   integral floats like [1.0] as "1", which the parser reads back as
   [Int 1] — the bits are intact, only the tag moved. *)
let rec equal a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Int x, J.Int y -> x = y
  | J.Float x, J.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | J.Int x, J.Float y | J.Float y, J.Int x ->
    Int64.equal (Int64.bits_of_float (float_of_int x)) (Int64.bits_of_float y)
  | J.Float x, J.Null | J.Null, J.Float x ->
    (* the printer emits non-finite floats as null, by design *)
    not (Float.is_finite x)
  | J.String x, J.String y -> String.equal x y
  | J.List x, J.List y -> (
    try List.for_all2 equal x y with Invalid_argument _ -> false)
  | J.Obj x, J.Obj y -> (
    try
      List.for_all2
        (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
        x y
    with Invalid_argument _ -> false)
  | _ -> false

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_check: " ^ s);
      exit 1)
    fmt

let check_doc what doc =
  let compact = J.of_string (J.to_string doc) in
  if not (equal doc compact) then fail "%s: compact round-trip mismatch" what;
  let pretty = J.of_string (J.to_string_pretty doc) in
  if not (equal doc pretty) then fail "%s: pretty round-trip mismatch" what

let self_test () =
  let nasty =
    [
      0.1; 0.2; 0.30000000000000004; 1.0 /. 3.0; -0.0; 5e-324 (* min subnormal *);
      1.7976931348623157e308 (* max finite *); 2.2250738585072014e-308; 3.16e-2;
      1e22; 9007199254740993.0; 6.02214076e23; -123.456e-7; Float.pi;
    ]
  in
  check_doc "self-test"
    (J.Obj
       [
         ("floats", J.List (List.map (fun f -> J.Float f) nasty));
         ("nonfinite", J.List [ J.Float nan; J.Float infinity ]);
         (* both print as null *)
         ("ints", J.List [ J.Int max_int; J.Int min_int; J.Int 0; J.Int (-1) ]);
         ("strings", J.List [ J.String "a\"b\\c\nd\te\x01f"; J.String "" ]);
         ("misc", J.List [ J.Null; J.Bool true; J.Bool false; J.Obj []; J.List [] ]);
       ])

let check_file path =
  let doc =
    try J.read_file path with
    | J.Parse_error m -> fail "%s: parse error: %s" path m
    | Sys_error m -> fail "%s" m
  in
  check_doc path doc;
  Printf.printf "json_check: %s ok\n" path

let () =
  self_test ();
  Array.iteri (fun i a -> if i > 0 then check_file a) Sys.argv;
  print_endline "json_check: self-test ok"
