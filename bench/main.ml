(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # every experiment, quick mode
     dune exec bench/main.exe -- fig5 table2  # selected experiments
     dune exec bench/main.exe -- --full all   # full scenario counts
     dune exec bench/main.exe -- micro        # Bechamel micro suite

   Each experiment regenerates one table or figure of the paper; see
   DESIGN.md for the experiment index and EXPERIMENTS.md for the
   paper-vs-measured record. *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("fig3", Experiments.fig3);
    ("fig4", Experiments.fig4);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11);
    ("fig12", Experiments.fig12);
    ("fig13", Experiments.fig13);
    ("table2", Experiments.table2);
    ("table3", Experiments.table3);
    ("ablation", Experiments.ablation);
    ("lp", Lp_bench.run);
    ("sweep", Sweep_bench.run);
    ("reconfig", Reconfig_bench.run);
    ("online", Online_bench.run);
    ("plan", Plan_bench.run);
    ("micro", Micro.main);
  ]

let run_one name =
  match List.assoc_opt name experiments with
  | Some f ->
    let (), dt = R3_util.Timer.time f in
    Printf.printf "\n[%s completed in %.1fs]\n%!" name dt
  | None ->
    Printf.eprintf "unknown experiment %S; available: %s\n" name
      (String.concat " " (List.map fst experiments));
    exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let flags, names = List.partition (fun a -> String.length a > 0 && a.[0] = '-') args in
  if List.mem "--full" flags then Harness.quick := false;
  if List.mem "--smoke" flags then Harness.smoke := true;
  let names = match names with [] | [ "all" ] -> List.map fst experiments | ns -> ns in
  Printf.printf "R3 reproduction benchmark harness (%s mode)\n"
    (if !Harness.quick then "quick" else "full");
  let (), total = R3_util.Timer.time (fun () -> List.iter run_one names) in
  Printf.printf "\nAll requested experiments done in %.1fs.\n" total
