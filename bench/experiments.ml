(* One experiment per table/figure of the paper's evaluation (Section 5).
   Each function prints the rows/series of its artifact; EXPERIMENTS.md
   records the paper-vs-measured comparison. *)

module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology
module Routing = R3_net.Routing
module Offline = R3_core.Offline
module Eval = R3_sim.Eval
module Scenario = R3_sim.Scenario
module Scenarios = R3_sim.Scenarios
module Sweep = R3_sim.Sweep
module H = Harness

let algorithms =
  [
    Eval.Ospf_cspf_detour;
    Eval.Ospf_recon;
    Eval.Fcp;
    Eval.Path_splice;
    Eval.Ospf_r3;
    Eval.Ospf_opt;
    Eval.Mplsff_r3;
  ]

let alg_names = List.map Eval.algorithm_name algorithms

(* target_mlu is chosen so the offline MLU* over d + X stays below 1 -
   the regime of Theorem 1, where the paper's near-optimal behaviour under
   failures holds. Heavier traffic voids the guarantee and lets rescaling
   compound across failures (documented in EXPERIMENTS.md). *)
let usisp_ctx =
  lazy (H.make_context ~plan_k:2 ~target_mlu:0.3 ~tag:"usisp" ~seed:101 (Topology.usisp_like ()))
let sbc_ctx = lazy (H.make_context ~target_mlu:0.3 ~tag:"sbc" ~seed:103 (Topology.sbc_like ()))
let level3_ctx = lazy (H.make_context ~target_mlu:0.3 ~tag:"level3" ~seed:105 (Topology.level3_like ()))

(* Failure events for the US-ISP-style experiments: synthetic SRLGs and
   MLGs plus every single physical link (Section 5.1). Events are kept
   within the plans' protection envelope (k = 2 physical pairs), matching
   the paper, where protection is computed for the same SRLG/MLG risk
   model the evaluation replays; larger groups are exercised by
   examples/srlg_maintenance.exe and the structured test suite. *)
let usisp_events ctx =
  let srlgs = Topology.synthetic_srlgs ~seed:11 ctx.H.g ~count:8 in
  let mlgs = Topology.synthetic_mlgs ~seed:12 ctx.H.g ~count:5 in
  let groups =
    List.filter (fun grp -> List.length grp <= 2 * ctx.H.plan_k) (srlgs @ mlgs)
  in
  Scenarios.of_groups ctx.H.g groups @ Scenarios.enumerate ctx.H.g ~k:1

let usisp_env ctx ~interval = H.env_for ctx ~interval ()

(* ---------- Table 1 ---------- *)

let table1 () =
  H.section "Table 1: network topologies";
  H.row_format [ 12; 16; 10; 10 ] [ "Network"; "Aggregation"; "#Nodes"; "#D-Links" ];
  List.iter
    (fun { Topology.tag; graph; _ } ->
      let agg = if tag = "abilene" || tag = "generated" then "router-level" else "PoP-level" in
      let nodes, links =
        (* the paper withholds US-ISP's size *)
        if tag = "usisp" then ("-", "-")
        else
          (string_of_int (G.num_nodes graph), string_of_int (G.num_links graph))
      in
      H.row_format [ 12; 16; 10; 10 ] [ tag; agg; nodes; links ])
    (Topology.catalog ());
  H.note "US-ISP row printed as '-' per the paper; the synthetic stand-in has %d nodes / %d d-links"
    (G.num_nodes (Topology.usisp_like ()))
    (G.num_links (Topology.usisp_like ()))

(* ---------- Figure 3 ---------- *)

let fig3 () =
  H.section
    "Figure 3: time series of worst-case normalized MLU, one failure event \
     (SRLG/MLG/single link), US-ISP-like, 24 intervals";
  let ctx = Lazy.force usisp_ctx in
  let events = usisp_events ctx in
  let intervals = List.init 24 (fun h -> h) in
  (* Normalizer: highest optimal no-failure bottleneck over the day. *)
  let opt0 =
    List.map
      (fun interval ->
        let demands = H.interval_demands ctx ~interval in
        (R3_mcf.Concurrent_flow.min_mlu ctx.H.g ~pairs:ctx.H.pairs ~demands ())
          .R3_mcf.Concurrent_flow.mlu)
      intervals
  in
  let normalizer = List.fold_left Float.max 1e-9 opt0 in
  Printf.printf "%-9s" "interval";
  List.iter (fun n -> Printf.printf "%18s" n) alg_names;
  Printf.printf "%18s\n" "optimal";
  List.iter
    (fun interval ->
      let env = usisp_env ctx ~interval in
      let worst alg =
        List.fold_left
          (fun acc ev -> Float.max acc (Eval.scenario_bottleneck env alg ev))
          0.0 events
      in
      let worst_opt =
        List.fold_left (fun acc ev -> Float.max acc (Eval.optimal env ev)) 0.0 events
      in
      Printf.printf "%-9d" interval;
      List.iter (fun alg -> Printf.printf "%18.3f" (worst alg /. normalizer)) algorithms;
      Printf.printf "%18.3f\n%!" (worst_opt /. normalizer))
    intervals

(* ---------- Figure 4 ---------- *)

let fig4 () =
  H.section
    "Figure 4: sorted worst-case performance ratio, one failure event, \
     US-ISP-like, week";
  let ctx = Lazy.force usisp_ctx in
  let events = usisp_events ctx in
  let step = if !H.quick then 12 else 1 in
  let intervals = List.init (168 / step) (fun i -> i * step) in
  (* One env (and one memoized optimum per event) per interval, shared by
     all algorithms — the optimum is a pure function of the interval. *)
  let rows =
    intervals
    |> List.map (fun interval ->
           let env = usisp_env ctx ~interval in
           let cache = Eval.mcf_cache env in
           let opts = List.map (fun ev -> Eval.optimal ~cache env ev) events in
           List.map
             (fun alg ->
               List.fold_left2
                 (fun acc ev opt ->
                   if opt <= 0.0 then acc
                   else Float.max acc (Eval.scenario_bottleneck env alg ev /. opt))
                 1.0 events opts)
             algorithms)
  in
  let curves =
    Array.of_list
      (List.mapi
         (fun i _ ->
           let a = Array.of_list (List.map (fun row -> List.nth row i) rows) in
           Array.sort Float.compare a;
           a)
         algorithms)
  in
  H.print_sorted_curves ~label:"algorithm" alg_names curves;
  H.note "%d intervals (step %d), %d failure events each" (List.length intervals) step
    (List.length events)

(* ---------- Figures 5/6/7 ---------- *)

let multi_failure_figure ~title ~ctx ?env ~two_count ~three_count () =
  H.section title;
  let env = match env with Some e -> e | None -> H.env_for ctx ~interval:14 () in
  let g = ctx.H.g in
  (* Partition scenarios are excluded: the paper's congestion metric is
     defined over demands that keep reachability, and its (much larger)
     topologies essentially never partition under sampled failures. *)
  let two_all = Scenarios.connected g (Scenarios.enumerate g ~k:2) in
  let two =
    if List.length two_all <= two_count then two_all
    else begin
      let arr = Array.of_list two_all in
      Array.to_list (R3_util.Prng.sample (R3_util.Prng.create 21) two_count arr)
    end
  in
  let three =
    Scenarios.connected g (Scenarios.sample g ~k:3 ~count:(2 * three_count) ~seed:22)
    |> List.filteri (fun i _ -> i < three_count)
  in
  (* Prefix-sharing sweep; the optimal-MCF normalizer is memoized across
     the two-failure and three-failure passes (shared one-failure prefixes
     do not arise here, but the plan states and the cache context do). *)
  let cache = Eval.mcf_cache env in
  let run tagname scenarios =
    Printf.printf "\n(%s: %d scenarios)\n" tagname (List.length scenarios);
    let s = Sweep.run ~cache env ~algorithms scenarios in
    H.print_sorted_curves ~label:"algorithm" alg_names s.Sweep.curves;
    let undef = Array.fold_left ( + ) 0 s.Sweep.undefined in
    if undef > 0 then
      H.note "%d undefined performance ratios dropped (optimum 0)" undef
  in
  run "two failures" two;
  run "three failures (sampled)" three

let fig5 () =
  let ctx = Lazy.force usisp_ctx in
  multi_failure_figure
    ~title:"Figure 5: sorted performance ratio under two / three failures, US-ISP-like, peak hour"
    ~ctx ~env:(usisp_env ctx ~interval:14)
    ~two_count:(if !Harness.quick then 150 else 1200)
    ~three_count:(if !Harness.quick then 150 else 1100)
    ()

let fig6 () =
  multi_failure_figure
    ~title:"Figure 6: sorted performance ratio, SBC-like"
    ~ctx:(Lazy.force sbc_ctx)
    ~two_count:(if !Harness.quick then 80 else 600)
    ~three_count:(if !Harness.quick then 80 else 1100)
    ()

let fig7 () =
  multi_failure_figure
    ~title:"Figure 7: sorted performance ratio, Level-3-like"
    ~ctx:(Lazy.force level3_ctx)
    ~two_count:(if !Harness.quick then 80 else 700)
    ~three_count:(if !Harness.quick then 80 else 1100)
    ()

(* ---------- Figure 8: prioritized R3 ---------- *)

let fig8 () =
  H.section
    "Figure 8: prioritized R3 (TPRT/TPP/IP) vs general R3 - sorted \
     normalized bottleneck intensity per class";
  let ctx = Lazy.force usisp_ctx in
  let g = ctx.H.g in
  let rng = R3_util.Prng.create 31 in
  let tprt, tpp, ip = Traffic.split3 rng ctx.H.base_tm ~p1:0.15 ~p2:0.25 in
  (* cumulative demands per protection level *)
  let d1 = Traffic.add (Traffic.add tprt tpp) ip in
  let d2 = Traffic.add tprt tpp in
  let d3 = tprt in
  let base = R3_net.Ospf.routing g ~weights:ctx.H.weights ~pairs:ctx.H.pairs () in
  (* A bounded cut budget: on exhaustion the solver returns the
     best-so-far plan with an audited worst-case MLU, which is all the
     figure needs (relative class differentiation). *)
  let cfg =
    { (Offline.default_config ~f:1) with
      solve_method = Offline.Constraint_gen;
      cg_max_rounds = 12;
    }
  in
  (* Failure budgets are physical: one SRLG per bidirectional pair. *)
  let srlgs = H.bidir_groups g in
  let prioritized =
    H.cached_plan "usisp-prio" (fun () ->
        match
          R3_core.Priority.compute cfg g ~srlgs
            ~classes:
              [
                { R3_core.Priority.demand = d1; f = 1 };
                { R3_core.Priority.demand = d2; f = 2 };
                { R3_core.Priority.demand = d3; f = 4 };
              ]
            (Offline.Fixed base)
        with
        | Ok p -> Ok p.R3_core.Priority.plan
        | Error _ as e -> e)
  in
  let general = H.structured_plan ~key:"usisp-gen-k1" ~k:1 ctx base in
  match (prioritized, general) with
  | Error e, _ | _, Error e -> Printf.printf "fig8 failed: %s\n" e
  | Ok prio_plan, Ok gen_plan ->
    let normalizer =
      (R3_mcf.Concurrent_flow.min_mlu g ~pairs:ctx.H.pairs ~demands:ctx.H.demands ())
        .R3_mcf.Concurrent_flow.mlu
    in
    let class_demands tm = Array.map (fun (a, b) -> tm.(a).(b)) in
    (* Per-scenario per-class bottleneck: class i is congested only by
       traffic of its own priority or higher (strict-priority queueing). *)
    let class_intensities plan scenario =
      let st =
        R3_core.Reconfig.make g ~pairs:plan.Offline.pairs
          ~demands:(class_demands d1 plan.Offline.pairs)
          ~base:plan.Offline.base ~protection:plan.Offline.protection
      in
      let st = R3_core.Reconfig.apply_failures st (Scenario.links scenario) in
      let r' = st.R3_core.Reconfig.base in
      let loads_of tm = Routing.loads g ~demands:(class_demands tm plan.Offline.pairs) r' in
      let l_tprt = loads_of tprt and l_tpp = loads_of tpp and l_ip = loads_of ip in
      let bottleneck loads =
        let worst = ref 0.0 in
        for e = 0 to G.num_links g - 1 do
          if not st.R3_core.Reconfig.failed.(e) then begin
            let u = loads.(e) /. G.capacity g e in
            if u > !worst then worst := u
          end
        done;
        !worst
      in
      let cum2 = Array.mapi (fun e v -> v +. l_tpp.(e)) l_tprt in
      let cum3 = Array.mapi (fun e v -> v +. l_ip.(e)) cum2 in
      (bottleneck l_tprt /. normalizer, bottleneck cum2 /. normalizer, bottleneck cum3 /. normalizer)
    in
    let top_worst k scenarios plan =
      scenarios
      |> List.map (fun s ->
             let _, _, total = class_intensities plan s in
             (total, s))
      |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
      |> List.filteri (fun i _ -> i < k)
      |> List.map snd
    in
    let singles = Scenarios.enumerate g ~k:1 in
    let top = if !H.quick then 50 else 100 in
    let twos =
      top_worst top
        (Scenarios.connected g (Scenarios.sample g ~k:2 ~count:(4 * top) ~seed:41))
        gen_plan
    in
    let fours =
      top_worst top
        (Scenarios.connected g (Scenarios.sample g ~k:4 ~count:(4 * top) ~seed:42))
        gen_plan
    in
    let report name scenarios =
      Printf.printf "\n(%s: %d scenarios; values sorted)\n" name (List.length scenarios);
      let gather plan sel =
        scenarios
        |> List.map (fun s -> sel (class_intensities plan s))
        |> Array.of_list
        |> fun a ->
        Array.sort Float.compare a;
        a
      in
      let fst3 (x, _, _) = x and snd3 (_, x, _) = x and thd3 (_, _, x) = x in
      H.print_sorted_curves ~label:"class/scheme"
        [
          "TPRT general"; "TPRT priority"; "TPP general"; "TPP priority";
          "IP general"; "IP priority";
        ]
        [|
          gather gen_plan fst3; gather prio_plan fst3;
          gather gen_plan snd3; gather prio_plan snd3;
          gather gen_plan thd3; gather prio_plan thd3;
        |]
    in
    report "1-link failures" singles;
    report "worst-case 2-link failures" twos;
    report "worst-case 4-link failures" fours

(* ---------- Figure 9: penalty envelope ---------- *)

let fig9 () =
  H.section
    "Figure 9: normalized MLU with no failure, R3 without/with penalty \
     envelope vs OSPF vs optimal (Abilene-scale joint LP)";
  (* Joint optimization is what the envelope constrains, so this figure
     runs the true joint LP (7); Abilene keeps it within the from-scratch
     simplex's range (DESIGN.md section 5). *)
  let g = Topology.abilene () in
  let ctx = H.make_context ~tag:"abilene9" ~seed:109 ~target_mlu:0.5 g in
  let pairs = ctx.H.pairs in
  let cfg_nope =
    { (Offline.default_config ~f:2) with solve_method = Offline.Constraint_gen }
  in
  let opt_peak =
    (R3_mcf.Concurrent_flow.min_mlu g ~epsilon:0.03 ~pairs ~demands:ctx.H.demands ())
      .R3_mcf.Concurrent_flow.mlu
  in
  let groups = { R3_core.Structured.srlgs = H.bidir_groups g; mlgs = []; k = 2 } in
  let no_pe =
    H.cached_plan "abilene9-nope" (fun () ->
        R3_core.Structured.compute cfg_nope g ctx.H.base_tm groups Offline.Joint)
  in
  let with_pe =
    H.cached_plan "abilene9-pe" (fun () ->
        R3_core.Structured.compute
          { cfg_nope with envelope = Some (1.1, opt_peak) }
          g ctx.H.base_tm groups Offline.Joint)
  in
  match (no_pe, with_pe) with
  | Error e, _ | _, Error e -> Printf.printf "fig9 failed: %s\n" e
  | Ok plan_nope, Ok plan_pe ->
    let intervals =
      List.init (if !H.quick then 42 else 168) (fun i -> i * (if !H.quick then 4 else 1))
    in
    let opt0 =
      List.map
        (fun interval ->
          let demands = H.interval_demands ctx ~interval in
          (R3_mcf.Concurrent_flow.min_mlu g ~epsilon:0.03 ~pairs ~demands ())
            .R3_mcf.Concurrent_flow.mlu)
        intervals
    in
    let normalizer = List.fold_left Float.max 1e-9 opt0 in
    Printf.printf "%-9s%12s%12s%12s%12s\n" "interval" "R3-noPE" "OSPF" "R3(b=1.1)" "optimal";
    List.iteri
      (fun idx interval ->
        let demands_k plan = Array.map (fun (a, b) -> (H.interval_tm ctx ~interval).(a).(b)) plan.Offline.pairs in
        let mlu_of plan =
          Routing.mlu g ~loads:(Routing.loads g ~demands:(demands_k plan) plan.Offline.base)
        in
        let ospf_r = R3_net.Ospf.routing g ~weights:ctx.H.weights ~pairs () in
        let demands = H.interval_demands ctx ~interval in
        let ospf_mlu = Routing.mlu g ~loads:(Routing.loads g ~demands ospf_r) in
        Printf.printf "%-9d%12.3f%12.3f%12.3f%12.3f\n%!" interval
          (mlu_of plan_nope /. normalizer)
          (ospf_mlu /. normalizer)
          (mlu_of plan_pe /. normalizer)
          (List.nth opt0 idx /. normalizer))
      intervals

(* ---------- Figure 10: base-routing robustness ---------- *)

let fig10 () =
  H.section
    "Figure 10: OSPFInvCap+R3 vs OSPF+R3 (optimized weights) - sorted \
     normalized MLU, US-ISP-like peak";
  let ctx = Lazy.force usisp_ctx in
  let g = ctx.H.g in
  let invcap_plan =
    let base =
      R3_net.Ospf.routing g ~weights:(R3_net.Ospf.inv_cap_weights g) ~pairs:ctx.H.pairs ()
    in
    H.structured_plan ~key:"usisp-invcap-r3" ~k:2 ctx base
  in
  match (invcap_plan, H.ospf_r3_plan ctx) with
  | Error e, _ | _, Error e -> Printf.printf "fig10 failed: %s\n" e
  | Ok inv_plan, Ok opt_plan ->
    let normalizer =
      (R3_mcf.Concurrent_flow.min_mlu g ~pairs:ctx.H.pairs ~demands:ctx.H.demands ())
        .R3_mcf.Concurrent_flow.mlu
    in
    let eval plan scenario =
      let st =
        R3_core.Reconfig.make g ~pairs:plan.Offline.pairs
          ~demands:(Array.map (fun (a, b) -> ctx.H.base_tm.(a).(b)) plan.Offline.pairs)
          ~base:plan.Offline.base ~protection:plan.Offline.protection
      in
      R3_core.Reconfig.mlu
        (R3_core.Reconfig.apply_failures st (Scenario.links scenario))
      /. normalizer
    in
    let report name scenarios =
      Printf.printf "\n(%s: %d scenarios)\n" name (List.length scenarios);
      let curve plan =
        scenarios |> List.map (eval plan) |> Array.of_list
        |> fun a ->
        Array.sort Float.compare a;
        a
      in
      H.print_sorted_curves ~label:"base routing"
        [ "OSPFInvCap+R3"; "OSPF+R3" ]
        [| curve inv_plan; curve opt_plan |]
    in
    report "one failure" (Scenarios.enumerate g ~k:1);
    report "two failures"
      (Scenarios.sample g ~k:2 ~count:(if !H.quick then 120 else 1200) ~seed:61)

(* ---------- Figures 11-13: prototype experiments (fluid + MPLS-ff) ---------- *)

let abilene_run scheme_name =
  (* The prototype experiments use plain (hop-count) OSPF as the base -
     the paper's testbed ran standard Abilene IGP, not TE-optimized
     weights - and a load at which reconvergence, but not R3, overloads a
     link under the third failure. *)
  let g = Topology.abilene () in
  let weights = R3_net.Ospf.unit_weights g in
  let rng = R3_util.Prng.create 111 in
  let tm0 = Traffic.gravity rng g ~load_factor:0.4 () in
  (* Abilene's measured matrix is coast-to-coast heavy; emphasize the
     west<->east pairs the failed links carry, as in the paper's testbed
     trace. *)
  let west = [ "Seattle"; "Sunnyvale"; "LosAngeles" ] in
  let east = [ "NewYork"; "Washington"; "Atlanta" ] in
  List.iter
    (fun w ->
      List.iter
        (fun e ->
          let a = G.node_id g w and b = G.node_id g e in
          tm0.(a).(b) <- 3.0 *. tm0.(a).(b);
          tm0.(b).(a) <- 3.0 *. tm0.(b).(a))
        east)
    west;
  let pairs0, demands0 = Traffic.commodities tm0 in
  let r0 = R3_net.Ospf.routing g ~weights ~pairs:pairs0 () in
  let mlu0 = Routing.mlu g ~loads:(Routing.loads g ~demands:demands0 r0) in
  let base_tm = Traffic.scale tm0 (0.5 /. mlu0) in
  let pairs, demands = Traffic.commodities base_tm in
  let ctx =
    { H.g; tag = "abilene11"; base_tm; pairs; demands; weights; plan_k = 1 }
  in
  let id n = G.node_id g n in
  let module F = R3_sim.Fluid in
  let events =
    [
      { F.at_s = 60.0; fail = Option.get (G.find_link g (id "Houston") (id "KansasCity")) };
      { F.at_s = 120.0; fail = Option.get (G.find_link g (id "Chicago") (id "Indianapolis")) };
      { F.at_s = 180.0; fail = Option.get (G.find_link g (id "Sunnyvale") (id "Denver")) };
    ]
  in
  let scheme =
    match scheme_name with
    | `R3 ->
      let plan =
        let base = R3_net.Ospf.routing g ~weights:ctx.H.weights ~pairs:ctx.H.pairs () in
        match H.structured_plan ~key:"abilene11-r3c" ~k:1 ctx base with
        | Ok p -> p
        | Error e -> failwith e
      in
      F.R3_plan plan
    | `Ospf -> F.Ospf { weights = ctx.H.weights; reconvergence_s = 4.0 }
  in
  let config = { F.default_config with F.duration_s = 300.0; dt_s = 1.0 } in
  let run = F.run ~config g ~pairs:ctx.H.pairs ~demands:ctx.H.demands ~scheme ~events () in
  (g, ctx, events, run)

let fig11 () =
  H.section
    "Figure 11: R3 prototype under 3 sequential link failures (Abilene): \
     throughput / link load / egress loss";
  let module F = R3_sim.Fluid in
  let g, _, events, run = abilene_run `R3 in
  let phase_names = [ "normal"; "1 failure"; "2 failures"; "3 failures" ] in
  let cap_total = G.total_capacity g in
  Printf.printf "\n(a) normalized OD throughput (sum over pairs, per phase)\n";
  List.iteri
    (fun i thr ->
      let sum = Array.fold_left ( +. ) 0.0 thr in
      Printf.printf "  %-12s total=%.4f  max-pair=%.5f\n" (List.nth phase_names i)
        (sum /. cap_total)
        (Array.fold_left Float.max 0.0 thr /. cap_total))
    (F.throughput_by_phase run ~events);
  Printf.printf "\n(b) per-link normalized traffic intensity (sorted, per phase)\n";
  List.iteri
    (fun i utils ->
      let s = R3_util.Stats.sorted utils in
      Printf.printf "  %-12s p50=%.3f p90=%.3f max=%.3f\n" (List.nth phase_names i)
        (R3_util.Stats.percentile 50.0 s)
        (R3_util.Stats.percentile 90.0 s)
        (R3_util.Stats.max s))
    (F.utilization_by_phase run ~events);
  Printf.printf "\n(c) aggregated loss rate at egress routers (per phase)\n";
  List.iteri
    (fun i losses ->
      Printf.printf "  %-12s mean=%.4f%% max=%.4f%%\n" (List.nth phase_names i)
        (100.0 *. R3_util.Stats.mean losses)
        (100.0 *. R3_util.Stats.max losses))
    (F.egress_loss_by_phase g run ~events);
  H.note "R3's bottleneck intensity stays bounded across all phases (paper: <= 0.37)"

let fig12 () =
  H.section "Figure 12: RTT of the Denver - LosAngeles flow during the failure run";
  let module F = R3_sim.Fluid in
  let g, _, _, run = abilene_run `R3 in
  let id n = G.node_id g n in
  let series = F.rtt_series run ~src:(id "Denver") ~dst:(id "LosAngeles") in
  Printf.printf "%-10s%12s\n" "time(s)" "RTT(ms)";
  List.iter
    (fun (t, rtt) ->
      if int_of_float t mod 10 = 0 then Printf.printf "%-10.0f%12.2f\n" t rtt)
    series

let fig13 () =
  H.section
    "Figure 13: per-link normalized intensity under 3 failures - MPLS-ff+R3 \
     vs OSPF+recon (sorted)";
  let module F = R3_sim.Fluid in
  let _, _, events, run_r3 = abilene_run `R3 in
  let g, _, _, run_ospf = abilene_run `Ospf in
  let last_phase run =
    match List.rev (F.utilization_by_phase run ~events) with
    | last :: _ -> R3_util.Stats.sorted last
    | [] -> [||]
  in
  let r3 = last_phase run_r3 and ospf = last_phase run_ospf in
  Printf.printf "%-8s%14s%14s\n" "rank" "MPLS-ff+R3" "OSPF+recon";
  let m = Array.length r3 in
  for i = 0 to m - 1 do
    if i mod 2 = 0 || i = m - 1 then
      Printf.printf "%-8d%14.3f%14.3f\n" i r3.(i) ospf.(i)
  done;
  Printf.printf "max: R3 %.3f vs OSPF %.3f\n"
    (R3_util.Stats.max r3) (R3_util.Stats.max ospf);
  ignore g

(* ---------- Table 2: offline precomputation time ---------- *)

let table2 () =
  H.section "Table 2: R3 offline precomputation time (seconds) vs #failures";
  let measure g tm f =
    let pairs, _ = Traffic.commodities tm in
    let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
    (* A pivot budget keeps pathologically degenerate instances from
       dominating the table; they report "inf" (the paper's CPLEX simply
       absorbs such cases). *)
    let cfg =
      { (Offline.default_config ~f) with
        solve_method = Offline.Constraint_gen;
        max_pivots = Some 60_000;
      }
    in
    let result, dt = R3_util.Timer.time (fun () -> Offline.compute cfg g tm (Offline.Fixed base)) in
    match result with Ok _ -> Some dt | Error _ -> None
  in
  let topos =
    [
      ("abilene", Topology.abilene (), [ 1; 2; 3; 4; 5; 6 ]);
      ("usisp", Topology.usisp_like (), if !H.quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6 ]);
      ("level3", Topology.level3_like (), if !H.quick then [ 1 ] else [ 1; 2; 3; 4; 5; 6 ]);
      ("sbc", Topology.sbc_like (), if !H.quick then [ 1 ] else [ 1; 2; 3; 4; 5; 6 ]);
    ]
  in
  Printf.printf "%-12s" "Network";
  List.iter (fun f -> Printf.printf "%10s" (Printf.sprintf "F=%d" f)) [ 1; 2; 3; 4; 5; 6 ];
  print_newline ();
  List.iter
    (fun (name, g, fs) ->
      let rng = R3_util.Prng.create 7 in
      let tm = Traffic.gravity rng g ~load_factor:0.3 () in
      Printf.printf "%-12s" name;
      List.iter
        (fun f ->
          if List.mem f fs then begin
            match measure g tm f with
            | Some dt -> Printf.printf "%10.2f" dt
            | None -> Printf.printf "%10s" "inf"
          end
          else Printf.printf "%10s" "-")
        [ 1; 2; 3; 4; 5; 6 ];
      print_newline ();
      flush stdout)
    topos;
  H.note
    "UUNet/Generated exceed the from-scratch dense simplex (|E|^2 protection \
     variables); the paper used CPLEX. See EXPERIMENTS.md. Times are the \
     constraint-generation solver (equivalent optimum; cross-checked against \
     the dualized LP (7) in the test suite).";
  H.note "quick mode limits Level-3/SBC to F=1; run with --full for all columns"

(* ---------- Table 3: storage overhead ---------- *)

let table3 () =
  H.section "Table 3: router storage overhead of the MPLS-ff implementation";
  Printf.printf "%-12s%8s%10s%12s%12s\n" "Network" "#ILM" "#NHLFE" "FIB" "RIB";
  let human b =
    if b >= 1_048_576 then Printf.sprintf "%.1f MB" (float_of_int b /. 1_048_576.0)
    else Printf.sprintf "%.1f KB" (float_of_int b /. 1_024.0)
  in
  List.iter
    (fun { Topology.tag; graph = g; _ } ->
      (* Protection routing: the R3 plan where the LP is in range; a CSPF
         per-link bypass otherwise (storage shape is what Table 3 reports,
         and it depends on the support structure, not optimality). *)
      let protection =
        let from_plan () =
          let rng = R3_util.Prng.create 7 in
          let tm = Traffic.gravity rng g ~load_factor:0.3 () in
          let pairs, _ = Traffic.commodities tm in
          let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
          (* Bounded solve: the storage shape only needs the support
             structure of a (near-)optimal p, not the exact optimum. *)
          let cfg =
            { (Offline.default_config ~f:2) with
              solve_method = Offline.Constraint_gen;
              max_pivots = Some 60_000;
              cg_max_rounds = 10;
            }
          in
          match
            H.cached_plan (tag ^ "-t3") (fun () -> Offline.compute cfg g tm (Offline.Fixed base))
          with
          | Ok plan -> Some plan.Offline.protection
          | Error _ -> None
        in
        let cspf_bypass () =
          let link_pairs = Array.init (G.num_links g) (fun e -> (G.src g e, G.dst g e)) in
          let p = Routing.create g ~pairs:link_pairs in
          let w = R3_net.Ospf.unit_weights g in
          Array.iteri
            (fun l (a, b) ->
              let failed = G.fail_links g [ l ] in
              match R3_net.Spf.shortest_path g ~failed ~weights:w ~src:a ~dst:b () with
              | Some path -> List.iter (fun e -> Routing.set p (l) (e) 1.0) path
              | None -> Routing.set p (l) (l) 1.0)
            link_pairs;
          p
        in
        if G.num_links g <= 50 then
          match from_plan () with Some p -> p | None -> cspf_bypass ()
        else cspf_bypass ()
      in
      let r = R3_mplsff.Storage.of_protection g protection in
      Printf.printf "%-12s%8d%10d%12s%12s\n%!" tag r.R3_mplsff.Storage.ilm_entries
        r.R3_mplsff.Storage.nhlfe_entries
        (human r.R3_mplsff.Storage.fib_bytes)
        (human r.R3_mplsff.Storage.rib_bytes))
    (Topology.catalog ());
  H.note "Level-3/SBC/UUNet/Generated rows use a CSPF per-link bypass as the protection support (LP out of practical simplex range)"

(* ---------- Ablations (design choices called out in DESIGN.md) ---------- *)

let ablation () =
  H.section "Ablations: solver method, pricing payoff, MPLS-ff vs path-based";
  (* (a) CG vs the paper's dualized LP (7): identical optimum, different
     size/time. *)
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 71 in
  let tm = Traffic.gravity rng g ~load_factor:0.2 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let solve m f =
    let cfg =
      { (Offline.default_config ~f) with
        solve_method = m;
        max_pivots = Some 80_000;
      }
    in
    R3_util.Timer.time (fun () -> Offline.compute cfg g tm (Offline.Fixed base))
  in
  let dual, t_dual = solve Offline.Dualized 1 in
  let cg, t_cg = solve Offline.Constraint_gen 1 in
  (match (dual, cg) with
  | Ok d, Ok c ->
    Printf.printf
      "(a) offline solver, Abilene F=1:\n    dualized LP (7): mlu=%.4f  %d vars x %d rows  %.2fs\n    constraint gen : mlu=%.4f  %d vars x %d rows  %.2fs\n"
      d.Offline.mlu d.Offline.lp_vars d.Offline.lp_rows t_dual c.Offline.mlu
      c.Offline.lp_vars c.Offline.lp_rows t_cg
  | _ -> Printf.printf "(a) solver ablation: dualized LP exceeded its pivot budget (CG is the production path)\n");
  (* (b) MPLS-ff ratio retuning vs path-based LSP churn after one failure
     (the section 4.1 argument for MPLS-ff). *)
  (match cg with
  | Ok plan ->
    let st = R3_core.Reconfig.of_plan plan in
    let st = R3_core.Reconfig.fail st (Scenario.of_links g [ 5 ]) in
    let fresh, total =
      R3_net.Flow_decompose.path_churn g ~before:plan.Offline.protection
        ~after:st.R3_core.Reconfig.protection
    in
    let lsps = R3_net.Flow_decompose.total_paths g plan.Offline.protection in
    Printf.printf
      "(b) path-based MPLS would signal %d LSPs up front and re-signal %d/%d after one failure;\n    MPLS-ff only retunes NHLFE ratios (0 new labels).\n"
      lsps fresh total
  | Error _ -> ());
  (* (c) protection envelope: structured per-pair SRLGs vs arbitrary
     directed failures - the price of the general envelope. *)
  let groups =
    { R3_core.Structured.srlgs = H.bidir_groups g; mlgs = []; k = 1 }
  in
  let cfgk =
    { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
  in
  (match
     ( R3_core.Structured.compute cfgk g tm groups (Offline.Fixed base),
       Offline.compute { cfgk with Offline.f = 2 } g tm (Offline.Fixed base) )
   with
  | Ok s, Ok a ->
    Printf.printf
      "(c) protecting 1 physical failure: mlu=%.4f; 2 arbitrary directed: mlu=%.4f\n"
      s.Offline.mlu a.Offline.mlu
  | _ -> Printf.printf "(c) envelope ablation failed\n")
