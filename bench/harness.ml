(* Shared machinery for the experiment harness: deterministic experiment
   contexts, plan caching (offline LPs are the expensive step - R3's whole
   point is that they run once), and paper-style table printing. *)

module G = R3_net.Graph
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology
module Offline = R3_core.Offline
module Eval = R3_sim.Eval

let quick = ref true

(* Smoke mode (--smoke / @bench-check): tiny fixtures, no JSON artifacts —
   just proves the bench code paths run. *)
let smoke = ref false

(* ---------- plan cache ---------- *)

let cache_version = 7

let cache_dir = ".bench-cache"

(* Cached plans live in the Plan_store snapshot format (versioned,
   CRC-checked — see DESIGN.md §16), so a stale or torn cache entry is
   detected and recomputed instead of misread. *)
let cached_plan key (compute : unit -> (Offline.plan, string) result) =
  let path = Filename.concat cache_dir (Printf.sprintf "v%d-%s.plan" cache_version key) in
  let recompute () =
    match compute () with
    | Ok plan ->
      R3_core.Plan_store.save path plan;
      Ok plan
    | Error _ as e -> e
  in
  if Sys.file_exists path then
    match R3_core.Plan_store.load path with
    | Ok (plan, _config) -> Ok plan
    | Error _ -> recompute ()
  else recompute ()

(* ---------- experiment context ---------- *)

type context = {
  g : G.t;
  tag : string;
  base_tm : Traffic.t;  (** peak traffic matrix *)
  pairs : (G.node * G.node) array;
  demands : float array;  (** peak demands *)
  weights : float array;  (** optimized IGP weights *)
  plan_k : int;  (** physical-failure protection level of the R3 plans *)
}

(* Scale a gravity matrix so the optimized-OSPF MLU at peak is [target]. *)
let scaled_tm g ~seed ~target ~weights =
  let rng = R3_util.Prng.create seed in
  let tm0 = Traffic.gravity rng g ~load_factor:0.4 () in
  let pairs, demands = Traffic.commodities tm0 in
  let r = R3_net.Ospf.routing g ~weights ~pairs () in
  let mlu = R3_net.Routing.mlu g ~loads:(R3_net.Routing.loads g ~demands r) in
  if mlu <= 0.0 then tm0 else Traffic.scale tm0 (target /. mlu)

let make_context ?(target_mlu = 0.5) ?(plan_k = 1) ~tag ~seed g =
  let rng = R3_util.Prng.create (seed + 13) in
  let tm_probe = Traffic.gravity rng g ~load_factor:0.4 () in
  let weights =
    R3_te.Igp_opt.optimize
      ~config:{ R3_te.Igp_opt.default_config with R3_te.Igp_opt.iterations = 250; seed }
      g [ tm_probe ]
  in
  let base_tm = scaled_tm g ~seed ~target:target_mlu ~weights in
  let pairs, demands = Traffic.commodities base_tm in
  { g; tag; base_tm; pairs; demands; weights; plan_k }

(* Real hourly matrices differ in structure, not just total volume; a
   deterministic per-OD lognormal jitter on top of the diurnal profile
   keeps per-interval ratios from collapsing to constants. *)
let interval_factor ctx ~interval k =
  let rng = R3_util.Prng.create ((interval * 7919) + (k * 104729) + 5) in
  ignore ctx;
  Traffic.diurnal_factor ~interval *. exp (0.25 *. R3_util.Prng.gaussian rng)

let interval_demands ctx ~interval =
  Array.mapi (fun k d -> d *. interval_factor ctx ~interval k) ctx.demands

let interval_tm ctx ~interval =
  let n = G.num_nodes ctx.g in
  let tm = Traffic.zeros n in
  Array.iteri
    (fun k (a, b) ->
      tm.(a).(b) <- ctx.demands.(k) *. interval_factor ctx ~interval k)
    ctx.pairs;
  tm

(* Evaluation scenarios fail {e physical} links (both directions together),
   so the matching envelope is the structured one of Section 3.5 with one
   SRLG per bidirectional pair and [k] concurrent events: protecting
   against k physical failures is far less demanding than 2k arbitrary
   directed failures (a degree-2 PoP can survive the former, never the
   latter). *)
let bidir_groups g =
  Array.to_list (R3_sim.Scenarios.physical_links g)
  |> List.map (fun e ->
         match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])

(* Like the paper, the protection envelope carries the operational risk
   model: per-pair SRLGs (any k physical failures) plus whatever
   fiber-sharing SRLGs and maintenance groups the context declares - the
   events the figures then replay. *)
let structured_plan ?(extra_srlgs = []) ?(mlgs = []) ~key ~k ctx base =
  cached_plan key (fun () ->
      let cfg =
        { (Offline.default_config ~f:k) with solve_method = Offline.Constraint_gen }
      in
      let groups =
        { R3_core.Structured.srlgs = bidir_groups ctx.g @ extra_srlgs; mlgs; k }
      in
      R3_core.Structured.compute cfg ctx.g ctx.base_tm groups (Offline.Fixed base))

(* OSPF+R3 plan over the context's peak matrix. *)
let ospf_r3_plan ?k ?(extra_srlgs = []) ?(mlgs = []) ctx =
  let k = Option.value k ~default:ctx.plan_k in
  let base = R3_net.Ospf.routing ctx.g ~weights:ctx.weights ~pairs:ctx.pairs () in
  structured_plan ~extra_srlgs ~mlgs
    ~key:
      (Printf.sprintf "%s-ospfr3-k%d-s%dm%d" ctx.tag k (List.length extra_srlgs)
         (List.length mlgs))
    ~k ctx base

(* MPLS-ff+R3: near-optimal flow base (GK) + protection LP. The paper's
   joint LP (7) is used verbatim on small fixtures (see tests); at
   evaluation scale we substitute the GK base, which preserves the
   "better base => better protected performance" relationship (DESIGN §5). *)
let mplsff_r3_plan ?k ?(extra_srlgs = []) ?(mlgs = []) ctx =
  let k = Option.value k ~default:ctx.plan_k in
  let _, base =
    R3_mcf.Concurrent_flow.min_mlu_routing ctx.g ~epsilon:0.04 ~pairs:ctx.pairs
      ~demands:ctx.demands ()
  in
  structured_plan ~extra_srlgs ~mlgs
    ~key:
      (Printf.sprintf "%s-mplsffr3-k%d-s%dm%d" ctx.tag k (List.length extra_srlgs)
         (List.length mlgs))
    ~k ctx base

let env_for ctx ?(interval = 14) ?(extra_srlgs = []) ?(mlgs = []) () =
  let demands = interval_demands ctx ~interval in
  let ospf_r3 =
    match ospf_r3_plan ~extra_srlgs ~mlgs ctx with Ok p -> Some p | Error _ -> None
  in
  let mplsff_r3 =
    match mplsff_r3_plan ~extra_srlgs ~mlgs ctx with Ok p -> Some p | Error _ -> None
  in
  Eval.make_env ctx.g ~weights:ctx.weights ~pairs:ctx.pairs ~demands ?ospf_r3
    ?mplsff_r3 ()

(* ---------- printing ---------- *)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let row_format widths cells =
  List.iteri
    (fun i c ->
      let w = try List.nth widths i with _ -> 12 in
      Printf.printf "%-*s" w c)
    cells;
  print_newline ()

(* Print sorted per-scenario curves as decile rows, one line per series -
   the textual form of the paper's "sorted by performance ratio" plots. *)
let print_sorted_curves ~label names (curves : float array array) =
  Printf.printf "%-18s" label;
  List.iter (fun p -> Printf.printf "%8s" p)
    [ "p0"; "p10"; "p25"; "p50"; "p75"; "p90"; "p100" ];
  Printf.printf "%8s\n" "mean";
  Array.iteri
    (fun i curve ->
      Printf.printf "%-18s" (List.nth names i);
      if Array.length curve = 0 then print_string "  (no data)"
      else
        List.iter
          (fun p -> Printf.printf "%8.3f" (R3_util.Stats.percentile p curve))
          [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ];
      if Array.length curve > 0 then Printf.printf "%8.3f" (R3_util.Stats.mean curve);
      print_newline ())
    curves;
  flush stdout

let note fmt = Printf.printf ("note: " ^^ fmt ^^ "\n%!")

(* ---------- metrics ---------- *)

(* The BENCH_*.json `metrics` section: whatever the instrumented hot paths
   recorded while the bench ran (pivot counts, CG rounds, MCF phases,
   sweep cache traffic). Build the doc's field list with this last, after
   every case has run. *)
let metrics_section () = ("metrics", R3_util.Metrics.to_json ())

(* Recording overhead of the observability layer: best-of wall time of [f]
   with instruments off vs on. Returns (on_s, off_s, pct); instruments are
   re-enabled afterwards even if [f] raises. *)
let metrics_overhead ~repeats f =
  let best enabled =
    R3_util.Metrics.set_enabled enabled;
    R3_util.Trace.set_enabled enabled;
    Fun.protect
      ~finally:(fun () ->
        R3_util.Metrics.set_enabled true;
        R3_util.Trace.set_enabled true)
      (fun () -> R3_util.Timer.best_of ~repeats f)
  in
  let off = best false in
  let on = best true in
  (on, off, 100.0 *. (on -. off) /. Float.max off 1e-9)
