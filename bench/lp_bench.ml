(* LP-layer benchmark: simplex backends (dense tableau, sparse tableau,
   LU-factorized revised) on the paper's dualized offline LP, and cold vs
   warm-started constraint generation per backend. Results go to stdout
   (paper-style table) and to BENCH_lp.json in the working directory, so
   the perf trajectory is tracked in-repo PR over PR.

   Run as:  dune exec bench/main.exe -- lp          (quick: Abilene + PoP)
            dune exec bench/main.exe -- --full lp   (adds the US-ISP map) *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Ospf = R3_net.Ospf
module Offline = R3_core.Offline
module P = R3_lp.Problem
module J = R3_util.Json

let output_path = "BENCH_lp.json"

let plan_exn = function Ok p -> p | Error e -> failwith ("lp bench: " ^ e)

(* A fixed OSPF base keeps the LP identical across backends: only the
   solver changes. *)
let setup ~seed g =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, _ = Traffic.commodities tm in
  let base = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
  (tm, base)

(* Refactorization counts live in the metrics layer, not the plan; the
   bench is single-threaded so a counter delta brackets one run. *)
let refactor_count () = R3_util.Metrics.counter_value "lp.rev.refactorizations"

(* Seconds spent inside the LP solver proper (first solves + warm
   resolves), from the trace span — the backend-independent oracle and
   model-build time dilutes whole-compute ratios on small instances. *)
let lp_solve_seconds () =
  List.fold_left
    (fun acc (name, _, secs) ->
      if String.equal name "offline.lp_solve" then acc +. secs else acc)
    0.0
    (R3_util.Trace.summary ())

type run = {
  backend : P.backend;
  plan : Offline.plan;
  seconds : float;
  lp_seconds : float;
  refactorizations : int;
}

(* Time one compute; short runs are repeated (identical config, fresh
   state each time) and the minimum kept, so the millisecond-scale CG
   cases aren't at the mercy of one scheduler hiccup. *)
let timed_compute cfg g tm base =
  let r0 = refactor_count () in
  let run () =
    let l0 = lp_solve_seconds () in
    let res, dt =
      R3_util.Timer.time (fun () -> Offline.compute cfg g tm (Offline.Fixed base))
    in
    (plan_exn res, dt, lp_solve_seconds () -. l0)
  in
  let plan, dt0, lp0 = run () in
  let refactorizations = refactor_count () - r0 in
  let best = ref (dt0, lp0) in
  let reps = ref 1 and elapsed = ref dt0 in
  while !reps < 25 && !elapsed < 0.75 do
    let _, dt, lp = run () in
    if dt < fst !best then best := (dt, lp);
    elapsed := !elapsed +. dt;
    incr reps
  done;
  (plan, fst !best, snd !best, refactorizations)

(* Per-solver metadata block shared by both cases: which engine ran, how
   many pivots it spent and how often it rebuilt its factorization. *)
let run_json r extra =
  J.Obj
    ([
       ("backend", J.String (P.backend_name r.backend));
       ("seconds", J.Float r.seconds);
       ("lp_seconds", J.Float r.lp_seconds);
       ("pivots", J.Int r.plan.Offline.lp_pivots);
       ("refactorizations", J.Int r.refactorizations);
       ("mlu", J.Float r.plan.Offline.mlu);
     ]
    @ extra)

(* Paper LP (7), one cold solve per backend. *)
let dualized_case ~f g tm base =
  let run backend =
    let cfg =
      Offline.default_config ~f
      |> Offline.with_core R3_core.Config.(default |> with_lp_backend backend)
    in
    let plan, seconds, lp_seconds, refactorizations =
      timed_compute cfg g tm base
    in
    { backend; plan; seconds; lp_seconds; refactorizations }
  in
  let dense = run `Dense and tableau = run `Sparse and revised = run `Revised in
  let speedup a b = a.seconds /. Float.max b.seconds 1e-9 in
  let mlu_delta =
    Float.max
      (Float.abs (dense.plan.Offline.mlu -. tableau.plan.Offline.mlu))
      (Float.abs (tableau.plan.Offline.mlu -. revised.plan.Offline.mlu))
  in
  Printf.printf
    "  dualized LP (F=%d): %d vars, %d rows | dense %.2fs/%d pv | tableau \
     %.2fs/%d pv | revised %.2fs/%d pv/%d refac | rev speedup %.1fx | dMLU \
     %.2g\n%!"
    f revised.plan.Offline.lp_vars revised.plan.Offline.lp_rows dense.seconds
    dense.plan.Offline.lp_pivots tableau.seconds tableau.plan.Offline.lp_pivots
    revised.seconds revised.plan.Offline.lp_pivots revised.refactorizations
    (speedup tableau revised) mlu_delta;
  J.Obj
    [
      ("lp_vars", J.Int revised.plan.Offline.lp_vars);
      ("lp_rows", J.Int revised.plan.Offline.lp_rows);
      ("dense", run_json dense []);
      ("tableau", run_json tableau []);
      ("revised", run_json revised []);
      ("tableau_speedup", J.Float (speedup dense tableau));
      ("revised_speedup", J.Float (speedup tableau revised));
      ( "lp_speedup",
        J.Float (tableau.lp_seconds /. Float.max revised.lp_seconds 1e-9) );
      ("mlu_delta", J.Float mlu_delta);
    ]

(* Constraint generation: cold re-solve per round vs warm basis repair,
   for the tableau and the revised engines. Two headline numbers:
   revised-warm against tableau-warm (same cuts, same warm policy, only
   the pivoting engine differs) and revised-cold against tableau-cold
   (the pure engine comparison — every round re-solved from scratch, so
   no warm-start repair amortizes the first solve for either side). *)
let cg_case ~f g tm base =
  let run backend warm =
    let cfg =
      {
        (Offline.default_config ~f) with
        Offline.solve_method = Offline.Constraint_gen;
        cg_warm_start = warm;
        core = R3_core.Config.(default |> with_lp_backend backend);
      }
    in
    let plan, seconds, lp_seconds, refactorizations =
      timed_compute cfg g tm base
    in
    { backend; plan; seconds; lp_seconds; refactorizations }
  in
  let engine backend =
    let cold = run backend false and warm = run backend true in
    let pivot_ratio =
      float_of_int cold.plan.Offline.lp_pivots
      /. Float.max (float_of_int warm.plan.Offline.lp_pivots) 1.0
    in
    let json =
      J.Obj
        [
          ("cold", run_json cold [ ("cut_rows", J.Int cold.plan.Offline.lp_rows) ]);
          ("warm", run_json warm [ ("cut_rows", J.Int warm.plan.Offline.lp_rows) ]);
          ("pivot_ratio", J.Float pivot_ratio);
          ("warm_speedup", J.Float (cold.seconds /. Float.max warm.seconds 1e-9));
        ]
    in
    (cold, warm, json)
  in
  let tab_cold, tab_warm, tab_json = engine `Sparse in
  let rev_cold, rev_warm, rev_json = engine `Revised in
  let revised_speedup = tab_warm.seconds /. Float.max rev_warm.seconds 1e-9 in
  let cold_speedup = tab_cold.seconds /. Float.max rev_cold.seconds 1e-9 in
  let lp_speedup =
    tab_warm.lp_seconds /. Float.max rev_warm.lp_seconds 1e-9
  in
  let mlu_delta =
    Float.abs (tab_warm.plan.Offline.mlu -. rev_warm.plan.Offline.mlu)
  in
  Printf.printf
    "  constraint gen (F=%d): tableau warm %.4fs/%d pv | revised warm \
     %.4fs/%d pv/%d refac | revised speedup %.1fx warm / %.1fx cold (lp \
     %.1fx) | dMLU %.2g\n%!"
    f tab_warm.seconds tab_warm.plan.Offline.lp_pivots rev_warm.seconds
    rev_warm.plan.Offline.lp_pivots rev_warm.refactorizations revised_speedup
    cold_speedup lp_speedup mlu_delta;
  J.Obj
    [
      ("tableau", tab_json);
      ("revised", rev_json);
      ("revised_speedup", J.Float revised_speedup);
      ("cold_speedup", J.Float cold_speedup);
      ("lp_speedup", J.Float lp_speedup);
      ("mlu_delta", J.Float mlu_delta);
    ]

let scenario ~tag ~seed ~f g =
  Printf.printf "%s: %d nodes, %d directed links\n%!" tag (G.num_nodes g)
    (G.num_links g);
  let tm, base = setup ~seed g in
  let dualized = dualized_case ~f g tm base in
  let cg = cg_case ~f g tm base in
  J.Obj
    [
      ("topology", J.String tag);
      ("nodes", J.Int (G.num_nodes g));
      ("links", J.Int (G.num_links g));
      ("f", J.Int f);
      ("dualized", dualized);
      ("constraint_gen", cg);
    ]

(* A synthesized PoP-scale topology above the 30-directed-link mark, kept
   apart from the Table 1 catalog so its size can grow independently. *)
let pop g_seed = Topology.random ~seed:g_seed ~nodes:16 ~undirected_links:18
    ~capacities:[ (100.0, 2.0); (400.0, 1.0) ] ()

let run () =
  Harness.section "LP core: simplex backends, cold vs warm CG";
  let scenarios =
    [ scenario ~tag:"abilene" ~seed:7 ~f:1 (Topology.abilene ());
      scenario ~tag:"pop36" ~seed:21 ~f:1 (pop 3) ]
    @ (if !Harness.quick then []
       else [ scenario ~tag:"usisp" ~seed:33 ~f:1 (Topology.usisp_like ()) ])
  in
  let doc =
    J.Obj
      [
        ("bench", J.String "lp");
        ("mode", J.String (if !Harness.quick then "quick" else "full"));
        ("parallel_domains", J.Int (R3_util.Parallel.domains ()));
        ("scenarios", J.List scenarios);
      ]
  in
  J.write_file output_path doc;
  Harness.note "wrote %s" output_path
