(* LP-layer benchmark: dense vs sparse simplex backends on the paper's
   dualized offline LP, and cold vs warm-started constraint generation.
   Results go to stdout (paper-style table) and to BENCH_lp.json in the
   working directory, so the perf trajectory is tracked in-repo PR over PR.

   Run as:  dune exec bench/main.exe -- lp          (quick: Abilene + PoP)
            dune exec bench/main.exe -- --full lp   (adds the US-ISP map) *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Ospf = R3_net.Ospf
module Offline = R3_core.Offline
module J = R3_util.Json

let output_path = "BENCH_lp.json"

let plan_exn = function Ok p -> p | Error e -> failwith ("lp bench: " ^ e)

(* A fixed OSPF base keeps the LP identical across backends: only the
   solver changes. *)
let setup ~seed g =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, _ = Traffic.commodities tm in
  let base = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
  (tm, base)

(* Paper LP (7), solved dense vs sparse. *)
let dualized_case ~f g tm base =
  let run backend =
    let cfg = { (Offline.default_config ~f) with Offline.lp_backend = backend } in
    let res, dt =
      R3_util.Timer.time (fun () -> Offline.compute cfg g tm (Offline.Fixed base))
    in
    (plan_exn res, dt)
  in
  let sparse, t_sparse = run `Sparse in
  let dense, t_dense = run `Dense in
  let speedup = t_dense /. Float.max t_sparse 1e-9 in
  Printf.printf
    "  dualized LP (F=%d): %d vars, %d rows | dense %.2fs / %d pivots | \
     sparse %.2fs / %d pivots | speedup %.1fx | dMLU %.2g\n%!"
    f sparse.Offline.lp_vars sparse.Offline.lp_rows t_dense
    dense.Offline.lp_pivots t_sparse sparse.Offline.lp_pivots speedup
    (Float.abs (dense.Offline.mlu -. sparse.Offline.mlu));
  J.Obj
    [
      ("lp_vars", J.Int sparse.Offline.lp_vars);
      ("lp_rows", J.Int sparse.Offline.lp_rows);
      ( "dense",
        J.Obj
          [
            ("seconds", J.Float t_dense);
            ("pivots", J.Int dense.Offline.lp_pivots);
            ("mlu", J.Float dense.Offline.mlu);
          ] );
      ( "sparse",
        J.Obj
          [
            ("seconds", J.Float t_sparse);
            ("pivots", J.Int sparse.Offline.lp_pivots);
            ("mlu", J.Float sparse.Offline.mlu);
          ] );
      ("sparse_speedup", J.Float speedup);
      ("mlu_delta", J.Float (Float.abs (dense.Offline.mlu -. sparse.Offline.mlu)));
    ]

(* Constraint generation: cold re-solve per round vs warm basis repair.
   Both sides use the sparse backend; only the restart policy differs. *)
let cg_case ~f g tm base =
  let run warm =
    let cfg =
      {
        (Offline.default_config ~f) with
        Offline.solve_method = Offline.Constraint_gen;
        cg_warm_start = warm;
      }
    in
    let res, dt =
      R3_util.Timer.time (fun () -> Offline.compute cfg g tm (Offline.Fixed base))
    in
    (plan_exn res, dt)
  in
  let warm, t_warm = run true in
  let cold, t_cold = run false in
  let pivot_ratio =
    float_of_int cold.Offline.lp_pivots
    /. Float.max (float_of_int warm.Offline.lp_pivots) 1.0
  in
  Printf.printf
    "  constraint gen (F=%d): cold %.2fs / %d pivots | warm %.2fs / %d \
     pivots | pivot ratio %.1fx | dMLU %.2g\n%!"
    f t_cold cold.Offline.lp_pivots t_warm warm.Offline.lp_pivots pivot_ratio
    (Float.abs (cold.Offline.mlu -. warm.Offline.mlu));
  J.Obj
    [
      ( "cold",
        J.Obj
          [
            ("seconds", J.Float t_cold);
            ("pivots", J.Int cold.Offline.lp_pivots);
            ("cut_rows", J.Int cold.Offline.lp_rows);
          ] );
      ( "warm",
        J.Obj
          [
            ("seconds", J.Float t_warm);
            ("pivots", J.Int warm.Offline.lp_pivots);
            ("cut_rows", J.Int warm.Offline.lp_rows);
          ] );
      ("pivot_ratio", J.Float pivot_ratio);
      ("warm_speedup", J.Float (t_cold /. Float.max t_warm 1e-9));
      ("mlu_delta", J.Float (Float.abs (cold.Offline.mlu -. warm.Offline.mlu)));
    ]

let scenario ~tag ~seed ~f g =
  Printf.printf "%s: %d nodes, %d directed links\n%!" tag (G.num_nodes g)
    (G.num_links g);
  let tm, base = setup ~seed g in
  let dualized = dualized_case ~f g tm base in
  let cg = cg_case ~f g tm base in
  J.Obj
    [
      ("topology", J.String tag);
      ("nodes", J.Int (G.num_nodes g));
      ("links", J.Int (G.num_links g));
      ("f", J.Int f);
      ("dualized", dualized);
      ("constraint_gen", cg);
    ]

(* A synthesized PoP-scale topology above the 30-directed-link mark, kept
   apart from the Table 1 catalog so its size can grow independently. *)
let pop g_seed = Topology.random ~seed:g_seed ~nodes:16 ~undirected_links:18
    ~capacities:[ (100.0, 2.0); (400.0, 1.0) ] ()

let run () =
  Harness.section "LP core: dense vs sparse simplex, cold vs warm CG";
  let scenarios =
    [ scenario ~tag:"abilene" ~seed:7 ~f:1 (Topology.abilene ());
      scenario ~tag:"pop36" ~seed:21 ~f:1 (pop 3) ]
    @ (if !Harness.quick then []
       else [ scenario ~tag:"usisp" ~seed:33 ~f:1 (Topology.usisp_like ()) ])
  in
  let doc =
    J.Obj
      [
        ("bench", J.String "lp");
        ("mode", J.String (if !Harness.quick then "quick" else "full"));
        ("parallel_domains", J.Int (R3_util.Parallel.domains ()));
        ("scenarios", J.List scenarios);
      ]
  in
  J.write_file output_path doc;
  Harness.note "wrote %s" output_path
