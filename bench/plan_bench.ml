(* Plan-store benchmark: how much faster is reloading a persisted plan
   snapshot than recomputing it with the constraint-generation LP — the
   number that justifies `r3 precompute --save` + `r3 online --plan`.

   One pop36 case: solve the structured offline plan from scratch (timed),
   persist it through R3_core.Plan_store (timed), reload it (timed,
   best-of), and assert the reload is bit-identical to the original.
   The headline ratio recompute/load goes to BENCH_plan.json; the >10x
   expectation is a warning unless R3_BENCH_ENFORCE_SPEEDUP is set (wall
   clocks on shared CI are too noisy for a hard gate by default).

   Run as:  dune exec bench/main.exe -- plan
            dune exec bench/main.exe -- --smoke plan   (abilene, no JSON) *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Routing = R3_net.Routing
module Offline = R3_core.Offline
module Plan_store = R3_core.Plan_store
module J = R3_util.Json
module H = Harness

let output_path = "BENCH_plan.json"

let check name ok = if not ok then failwith ("plan bench: " ^ name ^ " MISMATCH")

let routing_bits r =
  Array.map (Array.map Int64.bits_of_float) (Routing.to_dense_matrix r)

let plans_bit_identical (a : Offline.plan) (b : Offline.plan) =
  a.Offline.f = b.Offline.f
  && Int64.bits_of_float a.Offline.mlu = Int64.bits_of_float b.Offline.mlu
  && a.Offline.pairs = b.Offline.pairs
  && Array.map Int64.bits_of_float a.Offline.demands
     = Array.map Int64.bits_of_float b.Offline.demands
  && routing_bits a.Offline.base = routing_bits b.Offline.base
  && routing_bits a.Offline.protection = routing_bits b.Offline.protection

(* The same structured CG solve the experiment harness runs: OSPF base on
   unit weights, one SRLG per bidirectional pair, k = 1. *)
let solve g ~seed =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, _ = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~weights ~pairs () in
  let cfg =
    { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
  in
  let groups = { R3_core.Structured.srlgs = H.bidir_groups g; mlgs = []; k = 1 } in
  let compute () =
    R3_core.Structured.compute cfg g tm groups (Offline.Fixed base)
  in
  (cfg, compute)

let tmp_snapshot () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "r3-plan-bench-%d.plan" (Unix.getpid ()))

let one_case ~load_repeats name g ~seed =
  let cfg, compute = solve g ~seed in
  let result, recompute_s = R3_util.Timer.time compute in
  let plan =
    match result with
    | Ok p -> p
    | Error msg -> failwith ("plan bench: offline solve failed: " ^ msg)
  in
  let path = tmp_snapshot () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let (), save_s =
        R3_util.Timer.time (fun () -> Plan_store.save path ~config:cfg plan)
      in
      let bytes = (Unix.stat path).Unix.st_size in
      let reloaded = ref None in
      let load_s =
        R3_util.Timer.best_of ~repeats:load_repeats (fun () ->
            match Plan_store.load ~expect_graph:g path with
            | Ok (p, _) -> reloaded := Some p
            | Error msg -> failwith ("plan bench: reload failed: " ^ msg))
      in
      let plan' = Option.get !reloaded in
      check (name ^ " reload bit-identical") (plans_bit_identical plan plan');
      let speedup = recompute_s /. Float.max load_s 1e-9 in
      Printf.printf
        "  %-6s: recompute %7.3fs | save %7.4fs | load %8.5fs | %7d bytes | \
         load speedup %8.1fx\n%!"
        name recompute_s save_s load_s bytes speedup;
      if speedup <= 10.0 then begin
        let msg =
          Printf.sprintf "%s: load speedup %.1fx <= 10x (recompute %.3fs, load %.5fs)"
            name speedup recompute_s load_s
        in
        if Sys.getenv_opt "R3_BENCH_ENFORCE_SPEEDUP" <> None then failwith msg
        else H.note "%s — not enforced without R3_BENCH_ENFORCE_SPEEDUP" msg
      end;
      J.Obj
        [
          ("topology", J.String name);
          ("nodes", J.Int (G.num_nodes g));
          ("links", J.Int (G.num_links g));
          ("commodities", J.Int (Array.length plan.Offline.pairs));
          ("mlu", J.Float plan.Offline.mlu);
          ("lp_pivots", J.Int plan.Offline.lp_pivots);
          ("recompute_seconds", J.Float recompute_s);
          ("save_seconds", J.Float save_s);
          ("load_seconds", J.Float load_s);
          ("bytes", J.Int bytes);
          ("load_speedup", J.Float speedup);
        ])

let run () =
  H.section "Plan store: snapshot load vs offline CG recompute";
  if !H.smoke then begin
    (* Tiny end-to-end pass for @bench-check: round-trip bit-identity and
       corruption rejection on abilene, no timing, no JSON. *)
    let g = Topology.abilene () in
    let cfg, compute = solve g ~seed:3 in
    let plan =
      match compute () with
      | Ok p -> p
      | Error msg -> failwith ("plan bench: offline solve failed: " ^ msg)
    in
    let path = tmp_snapshot () in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        Plan_store.save path ~config:cfg plan;
        (match Plan_store.load ~expect_graph:g path with
        | Ok (plan', _) ->
          check "smoke reload bit-identical" (plans_bit_identical plan plan')
        | Error msg -> failwith ("plan bench: smoke reload failed: " ^ msg));
        (* Flip one payload byte: the CRC must reject the snapshot. *)
        let ic = open_in_bin path in
        let raw = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let corrupt = Bytes.of_string raw in
        let pos = String.length raw - 9 in
        Bytes.set corrupt pos
          (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0x40));
        let oc = open_out_bin path in
        output_bytes oc corrupt;
        close_out oc;
        match Plan_store.load path with
        | Error _ -> ()
        | Ok _ -> failwith "plan bench: corrupted snapshot was accepted");
    H.note "smoke mode: no %s written" output_path
  end
  else begin
    let load_repeats = if !H.quick then 3 else 7 in
    let rows =
      [ one_case ~load_repeats "pop36" (Reconfig_bench.pop36 ()) ~seed:36 ]
    in
    let doc =
      J.Obj
        [
          ("bench", J.String "plan");
          ("format_version", J.Int Plan_store.version);
          ("config", R3_core.Config.to_json R3_core.Config.default);
          ("cases", J.List rows);
          H.metrics_section ();
        ]
    in
    J.write_file output_path doc;
    H.note "wrote %s" output_path
  end
