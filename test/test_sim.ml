(* Tests for scenario generation, the evaluation engine, and the fluid
   simulator. *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Sc = R3_sim.Scenario
module S = R3_sim.Scenarios
module E = R3_sim.Eval
module F = R3_sim.Fluid

let test_physical_links () =
  let g = Topology.abilene () in
  let phys = S.physical_links g in
  Alcotest.(check int) "14 physical links" 14 (Array.length phys);
  (* the canonical scenario carries both directions *)
  let sc = Sc.of_links g [ phys.(0) ] in
  Alcotest.(check int) "one physical link" 1 (Sc.size sc);
  Alcotest.(check int) "expanded" 2 (List.length (Sc.links sc))

let test_all_k_counts () =
  let g = Topology.abilene () in
  Alcotest.(check int) "single failures" 14 (List.length (S.enumerate g ~k:1));
  Alcotest.(check int) "pairs" (14 * 13 / 2) (List.length (S.enumerate g ~k:2))

let test_sample_distinct () =
  let g = Topology.uunet_like () in
  let samples = S.sample g ~k:3 ~count:100 ~seed:5 in
  Alcotest.(check int) "count" 100 (List.length samples);
  Alcotest.(check int) "distinct" 100
    (List.length (List.sort_uniq Sc.compare samples))

(* Regressions for Scenarios.sample's documented contract; the fuzzer's
   scenario-sampling oracle checks the same properties on random cases. *)
let test_sample_exceeds_total () =
  let g = Topology.abilene () in
  (* Only 14 single-link scenarios exist; asking for more returns the
     whole space, never duplicates or a hang. *)
  let s = S.sample g ~k:1 ~count:100 ~seed:3 in
  Alcotest.(check int) "whole space returned" 14 (List.length s);
  Alcotest.(check int) "distinct" 14 (List.length (List.sort_uniq Sc.compare s))

let test_sample_deterministic () =
  let g = Topology.uunet_like () in
  let a = S.sample g ~k:2 ~count:40 ~seed:9 in
  let b = S.sample g ~k:2 ~count:40 ~seed:9 in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  Alcotest.(check bool) "same seed, same scenarios" true
    (List.for_all2 (fun x y -> Sc.compare x y = 0) a b)

let test_sample_rejection_path_exact () =
  (* abilene: C(14,2) = 91 pair scenarios; count = 60 sits above the
     1.5x enumeration threshold, so rejection sampling runs. The fixed
     guard (100x count draws) must deliver exactly 60 distinct scenarios
     and record no shortfall. *)
  let before =
    R3_util.Metrics.counter_value "sim.scenarios.sample_shortfall"
  in
  let g = Topology.abilene () in
  let s = S.sample g ~k:2 ~count:60 ~seed:21 in
  let after =
    R3_util.Metrics.counter_value "sim.scenarios.sample_shortfall"
  in
  Alcotest.(check int) "exact count" 60 (List.length s);
  Alcotest.(check int) "distinct" 60 (List.length (List.sort_uniq Sc.compare s));
  Alcotest.(check int) "no shortfall recorded" before after

let test_sample_generated_fast () =
  (* Anti-hang regression: C(230, 5) on the generated backbone used to
     be computed with an unmemoized Pascal recursion — minutes of
     additions before the first draw. The multiplicative binom is O(k). *)
  let g = Topology.generated () in
  let s = S.sample g ~k:5 ~count:50 ~seed:17 in
  Alcotest.(check int) "50 scenarios" 50 (List.length s);
  List.iter (fun sc -> Alcotest.(check int) "size 5" 5 (Sc.size sc)) s

let test_connected_only () =
  let g = Topology.abilene () in
  let all = S.enumerate g ~k:2 in
  let conn = S.connected g all in
  (* Cutting both Seattle links partitions, so some scenarios are dropped. *)
  Alcotest.(check bool) "some dropped" true (List.length conn < List.length all);
  Alcotest.(check bool) "most kept" true (List.length conn > List.length all / 2)

let make_env () =
  let g = Topology.usisp_like () in
  let rng = R3_util.Prng.create 51 in
  let tm = Traffic.gravity rng g ~load_factor:0.35 () in
  let pairs, demands = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~weights ~pairs () in
  (* f = 1 keeps the CG solve fast; the engine properties under test do
     not depend on the protection level. *)
  let cfg =
    { (R3_core.Offline.default_config ~f:1) with
      solve_method = R3_core.Offline.Constraint_gen }
  in
  let plan =
    match R3_core.Offline.compute cfg g tm (R3_core.Offline.Fixed base) with
    | Ok p -> p
    | Error m -> Alcotest.failf "plan: %s" m
  in
  (g, E.make_env g ~weights ~pairs ~demands ~ospf_r3:plan ())

let test_eval_algorithms_run () =
  let g, env = make_env () in
  let scenario = Sc.of_links g [ (S.physical_links g).(2) ] in
  List.iter
    (fun alg ->
      match alg with
      | E.Mplsff_r3 -> () (* no plan provided in this env *)
      | _ ->
        let r = E.evaluate ~with_optimal:false env alg scenario in
        if not (r.E.bottleneck >= 0.0) then
          Alcotest.failf "%s returned %g" (E.algorithm_name alg) r.E.bottleneck;
        if not (r.E.delivered >= 0.0 && r.E.delivered <= 1.0 +. 1e-9) then
          Alcotest.failf "%s delivered %g" (E.algorithm_name alg) r.E.delivered)
    E.all_algorithms

let test_eval_r3_close_to_opt () =
  (* R3's reconfigured MLU is never better than the per-scenario optimal
     link detour on the same base (both are link-based protections on the
     OSPF base), and the ratio should be modest. *)
  let g, env = make_env () in
  let scenarios = List.filteri (fun i _ -> i mod 4 = 0) (S.enumerate g ~k:1) in
  List.iter
    (fun scenario ->
      let opt = E.scenario_bottleneck env E.Ospf_opt scenario in
      let r3 = E.scenario_bottleneck env E.Ospf_r3 scenario in
      if r3 < opt -. 1e-6 then
        Alcotest.failf "R3 %.4f beat opt %.4f (impossible)" r3 opt)
    scenarios

let test_optimal_lower_bounds_everything () =
  let g, env = make_env () in
  let scenario = Sc.of_links g [ (S.physical_links g).(4) ] in
  let opt = E.optimal env scenario in
  List.iter
    (fun alg ->
      match alg with
      | E.Mplsff_r3 -> ()
      | _ ->
        let r = E.evaluate env alg scenario in
        (* the MCF normalizer is approximate: allow its epsilon *)
        if r.E.bottleneck < opt /. 1.15 -. 1e-6 then
          Alcotest.failf "%s %.4f below optimal %.4f" (E.algorithm_name alg)
            r.E.bottleneck opt;
        (match r.E.ratio with
        | Some rr ->
          if not (rr > 0.0) then
            Alcotest.failf "%s ratio %g" (E.algorithm_name alg) rr
        | None -> Alcotest.failf "%s ratio undefined" (E.algorithm_name alg)))
    E.all_algorithms

let test_fluid_r3_run () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 61 in
  let tm = Traffic.gravity rng g ~load_factor:0.25 () in
  let pairs, demands = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (R3_core.Offline.default_config ~f:2) with
      solve_method = R3_core.Offline.Constraint_gen }
  in
  let plan =
    match R3_core.Offline.compute cfg g tm (R3_core.Offline.Fixed base) with
    | Ok p -> p
    | Error m -> Alcotest.failf "plan: %s" m
  in
  let id n = G.node_id g n in
  (* The paper's sequence ends with Sunnyvale-Denver, which sits on the
     Denver->LosAngeles probe path and steps its RTT up (Figure 12). *)
  let events =
    [
      { F.at_s = 60.0; fail = Option.get (G.find_link g (id "Houston") (id "KansasCity")) };
      { F.at_s = 120.0; fail = Option.get (G.find_link g (id "Sunnyvale") (id "Denver")) };
    ]
  in
  let config = { F.default_config with F.duration_s = 180.0; dt_s = 2.0 } in
  let run = F.run ~config g ~pairs ~demands ~scheme:(F.R3_plan plan) ~events () in
  Alcotest.(check int) "steps" 90 (List.length run.F.steps);
  (* RTT of the probe pair steps up once its path is hit. *)
  let rtt = F.rtt_series run ~src:(id "Denver") ~dst:(id "LosAngeles") in
  Alcotest.(check bool) "rtt series nonempty" true (List.length rtt > 0);
  let early = List.filter (fun (t, _) -> t < 50.0) rtt in
  let late = List.filter (fun (t, _) -> t > 130.0) rtt in
  let avg l = List.fold_left (fun a (_, v) -> a +. v) 0.0 l /. float_of_int (List.length l) in
  Alcotest.(check bool)
    (Printf.sprintf "rtt increases after on-path failure (%.2f -> %.2f)" (avg early) (avg late))
    true
    (avg late > avg early +. 0.5);
  (* Utilization stays bounded under R3 with mlu<=1 plan. *)
  let phases = F.utilization_by_phase run ~events in
  Alcotest.(check int) "three phases" 3 (List.length phases);
  List.iter
    (fun utils ->
      Array.iter
        (fun u ->
          if u > 1.3 (* plan mlu may exceed 1 slightly with bursts *) then
            Alcotest.failf "excessive utilization %.3f" u)
        utils)
    phases

let test_fluid_ospf_blackholes_then_recovers () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 62 in
  let tm = Traffic.gravity rng g ~load_factor:0.25 () in
  let pairs, demands = Traffic.commodities tm in
  let id n = G.node_id g n in
  let events =
    [ { F.at_s = 30.0; fail = Option.get (G.find_link g (id "Denver") (id "KansasCity")) } ]
  in
  let config = { F.default_config with F.duration_s = 90.0; dt_s = 1.0; burstiness = 0.0 } in
  let scheme = F.Ospf { weights = R3_net.Ospf.unit_weights g; reconvergence_s = 5.0 } in
  let run = F.run ~config g ~pairs ~demands ~scheme ~events () in
  let deliv t =
    let s = List.find (fun s -> s.F.time_s = t) run.F.steps in
    Array.fold_left ( +. ) 0.0 s.F.delivered
  in
  let before = deliv 29.0 and during = deliv 32.0 and after = deliv 60.0 in
  Alcotest.(check bool)
    (Printf.sprintf "blackhole dip (%.1f -> %.1f -> %.1f)" before during after)
    true
    (during < before && after > during)

let suite =
  [
    Alcotest.test_case "physical links" `Quick test_physical_links;
    Alcotest.test_case "all_k counts" `Quick test_all_k_counts;
    Alcotest.test_case "sampling distinct" `Quick test_sample_distinct;
    Alcotest.test_case "sampling caps at the space" `Quick
      test_sample_exceeds_total;
    Alcotest.test_case "sampling deterministic" `Quick test_sample_deterministic;
    Alcotest.test_case "sampling rejection path exact" `Quick
      test_sample_rejection_path_exact;
    Alcotest.test_case "sampling on generated backbone" `Quick
      test_sample_generated_fast;
    Alcotest.test_case "connected_only filter" `Quick test_connected_only;
    Alcotest.test_case "all algorithms run" `Slow test_eval_algorithms_run;
    Alcotest.test_case "R3 never beats opt detour" `Slow test_eval_r3_close_to_opt;
    Alcotest.test_case "optimal lower-bounds all" `Slow test_optimal_lower_bounds_everything;
    Alcotest.test_case "fluid run under R3" `Slow test_fluid_r3_run;
    Alcotest.test_case "fluid OSPF blackhole dip" `Quick test_fluid_ospf_blackholes_then_recovers;
  ]
