(* Tests for the persistent plan store (DESIGN.md §16): the binary codec
   primitives, the framed container's corruption defenses, bit-identical
   plan round-trips, and crash/resume of the online runtime through the
   checkpoint format. *)

module G = R3_net.Graph
module Routing = R3_net.Routing
module Rowvec = R3_util.Rowvec
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Codec = R3_util.Codec
module Offline = R3_core.Offline
module Plan_store = R3_core.Plan_store
module Reconfig = R3_core.Reconfig
module Scenario = R3_core.Scenario
module Online = R3_sim.Online

let plan_exn = function
  | Ok p -> p
  | Error msg -> Alcotest.failf "offline failed: %s" msg

let ok_exn ctx = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" ctx msg

let err_exn ctx = function
  | Ok _ -> Alcotest.failf "%s: expected an error" ctx
  | Error msg -> msg

let tmp_path ext = Filename.temp_file "r3plan" ext

let with_tmp ext f =
  let path = tmp_path ext in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Case-insensitive substring check, for asserting error messages name
   the failing validation without pinning their exact wording. *)
let mentions needle msg =
  let msg = String.lowercase_ascii msg
  and needle = String.lowercase_ascii needle in
  let n = String.length needle and m = String.length msg in
  let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
  n = 0 || at 0

let check_mentions ctx needle msg =
  if not (mentions needle msg) then
    Alcotest.failf "%s: error %S does not mention %S" ctx msg needle

(* ---- codec primitives ---- *)

let test_crc32_vector () =
  (* The standard IEEE check value. *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l (Codec.crc32 "123456789");
  Alcotest.(check int32) "crc32 empty" 0l (Codec.crc32 "")

let test_codec_roundtrip () =
  let w = Codec.W.create () in
  Codec.W.u8 w 0xAB;
  Codec.W.i32 w (-123456);
  Codec.W.int w min_int;
  Codec.W.int w max_int;
  Codec.W.i64 w 0x1122334455667788L;
  Codec.W.bool w true;
  Codec.W.bool w false;
  Codec.W.string w "hello \x00 binary";
  Codec.W.int_array w [| 0; -1; 42; max_int |];
  Codec.W.float_array w [| 1.5; -0.0; infinity; neg_infinity; Float.nan |];
  let r = Codec.R.of_string (Codec.W.contents w) in
  Alcotest.(check int) "u8" 0xAB (Codec.R.u8 r);
  Alcotest.(check int) "i32" (-123456) (Codec.R.i32 r);
  Alcotest.(check int) "int min" min_int (Codec.R.int r);
  Alcotest.(check int) "int max" max_int (Codec.R.int r);
  Alcotest.(check int64) "i64" 0x1122334455667788L (Codec.R.i64 r);
  Alcotest.(check bool) "true" true (Codec.R.bool r);
  Alcotest.(check bool) "false" false (Codec.R.bool r);
  Alcotest.(check string) "string" "hello \x00 binary" (Codec.R.string r);
  Alcotest.(check (array int)) "int array" [| 0; -1; 42; max_int |]
    (Codec.R.int_array r);
  (* Floats must round-trip bit-exactly, including -0.0 and NaN. *)
  let fs = Codec.R.float_array r in
  Alcotest.(check (array int64)) "float bits"
    (Array.map Int64.bits_of_float
       [| 1.5; -0.0; infinity; neg_infinity; Float.nan |])
    (Array.map Int64.bits_of_float fs);
  Codec.R.expect_end r

let test_codec_rejects_malformed () =
  let corrupt f =
    try
      ignore (f ());
      Alcotest.fail "expected Codec.R.Corrupt"
    with Codec.R.Corrupt _ -> ()
  in
  (* Truncated fixed-width field. *)
  corrupt (fun () -> Codec.R.i64 (Codec.R.of_string "abc"));
  (* Length prefix exceeding the remaining bytes must not allocate. *)
  let w = Codec.W.create () in
  Codec.W.i32 w 0x7FFFFFFF;
  corrupt (fun () -> Codec.R.string (Codec.R.of_string (Codec.W.contents w)));
  corrupt (fun () ->
      Codec.R.float_array (Codec.R.of_string (Codec.W.contents w)));
  (* Trailing garbage is an error, not silently ignored. *)
  let w = Codec.W.create () in
  Codec.W.u8 w 1;
  Codec.W.u8 w 2;
  let r = Codec.R.of_string (Codec.W.contents w) in
  ignore (Codec.R.u8 r);
  corrupt (fun () -> Codec.R.expect_end r)

(* ---- framed container ---- *)

let magic = "R3TESTFR"

let test_frame_roundtrip () =
  with_tmp ".bin" (fun path ->
      let payload = "some payload \x00\x01\x02 bytes" in
      Codec.write_framed path ~magic ~version:3 payload;
      Alcotest.(check string) "payload back" payload
        (ok_exn "read" (Codec.read_framed path ~magic ~version:3));
      let v, p = ok_exn "any" (Codec.read_framed_any_version path ~magic) in
      Alcotest.(check int) "version" 3 v;
      Alcotest.(check string) "payload (any version)" payload p)

let test_frame_rejections () =
  with_tmp ".bin" (fun path ->
      let payload = String.init 256 Char.chr in
      Codec.write_framed path ~magic ~version:1 payload;
      let original = read_file path in
      (* CRC: flip one payload byte. *)
      let corrupt = Bytes.of_string original in
      let pos = Codec.header_len + 100 in
      Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xFF));
      write_file path (Bytes.to_string corrupt);
      check_mentions "crc" "crc"
        (err_exn "crc" (Codec.read_framed path ~magic ~version:1));
      (* Version mismatch. *)
      write_file path original;
      check_mentions "version" "version"
        (err_exn "version" (Codec.read_framed path ~magic ~version:2));
      (* Wrong magic. *)
      let msg =
        err_exn "magic" (Codec.read_framed path ~magic:"WRONGMAG" ~version:1)
      in
      ignore msg;
      (* Truncation: cut the file inside the payload. *)
      write_file path (String.sub original 0 (String.length original - 10));
      ignore (err_exn "truncated" (Codec.read_framed path ~magic ~version:1));
      (* Shorter than the header. *)
      write_file path (String.sub original 0 10);
      ignore (err_exn "short" (Codec.read_framed path ~magic ~version:1));
      (* Missing file. *)
      Sys.remove path;
      ignore (err_exn "missing" (Codec.read_framed path ~magic ~version:1)))

(* ---- plan snapshots ---- *)

(* Small square-fixture plan: fast to solve, exercises real LP output. *)
let square_plan ?(backend = R3_net.Routing.Backend.Sparse) () =
  let g = Topology.square () in
  let tm = Traffic.zeros 4 in
  tm.(0).(2) <- 2.0;
  tm.(1).(3) <- 1.5;
  let core = R3_core.Config.(default |> with_routing_backend backend) in
  let cfg = Offline.with_core core (Offline.default_config ~f:1) in
  (g, cfg, plan_exn (Offline.compute cfg g tm Offline.Joint))

let routing_bits r =
  Array.map (Array.map Int64.bits_of_float) (Routing.to_dense_matrix r)

let check_plans_equal (a : Offline.plan) (b : Offline.plan) =
  Alcotest.(check int) "f" a.Offline.f b.Offline.f;
  Alcotest.(check int64) "mlu bits" (Int64.bits_of_float a.Offline.mlu)
    (Int64.bits_of_float b.Offline.mlu);
  Alcotest.(check bool) "pairs" true (a.Offline.pairs = b.Offline.pairs);
  Alcotest.(check bool) "demand bits" true
    (Array.map Int64.bits_of_float a.Offline.demands
    = Array.map Int64.bits_of_float b.Offline.demands);
  Alcotest.(check bool) "base bits" true
    (routing_bits a.Offline.base = routing_bits b.Offline.base);
  Alcotest.(check bool) "protection bits" true
    (routing_bits a.Offline.protection = routing_bits b.Offline.protection);
  Alcotest.(check int) "lp_pivots" a.Offline.lp_pivots b.Offline.lp_pivots

let test_plan_roundtrip () =
  let _, cfg, plan = square_plan () in
  with_tmp ".plan" (fun path ->
      Plan_store.save path ~config:cfg plan;
      let plan', cfg' = ok_exn "load" (Plan_store.load path) in
      check_plans_equal plan plan';
      Alcotest.(check bool) "config round-trips" true (cfg = cfg');
      (* Deterministic encoding: re-saving an untouched reload must
         produce byte-identical snapshots. *)
      let bytes1 = read_file path in
      with_tmp ".plan" (fun path2 ->
          Plan_store.save path2 ~config:cfg' plan';
          Alcotest.(check bool) "re-save byte-identical" true
            (bytes1 = read_file path2));
      (* The reloaded plan must step Reconfig to the same states. *)
      let a = Reconfig.of_plan plan and b = Reconfig.of_plan plan' in
      let g = plan.Offline.graph in
      let sc = Scenario.of_links g [ 0 ] in
      Alcotest.(check bool) "reconfig bits equal after failure" true
        (Reconfig.states_bit_identical (Reconfig.fail a sc)
           (Reconfig.fail b sc)))

let test_plan_roundtrip_dense_backend () =
  let _, cfg, plan = square_plan ~backend:R3_net.Routing.Backend.Dense () in
  with_tmp ".plan" (fun path ->
      Plan_store.save path ~config:cfg plan;
      let plan', _ = ok_exn "load" (Plan_store.load path) in
      check_plans_equal plan plan')

let test_plan_survives_verification () =
  let _, cfg, plan = square_plan () in
  with_tmp ".plan" (fun path ->
      Plan_store.save path ~config:cfg plan;
      let plan', _ = ok_exn "load" (Plan_store.load path) in
      match R3_core.Verify.check_theorem1 ~samples:20 ~seed:3 plan' with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "reloaded plan fails Theorem 1: %s" msg)

let test_plan_wrong_topology_rejected () =
  let _, cfg, plan = square_plan () in
  with_tmp ".plan" (fun path ->
      Plan_store.save path ~config:cfg plan;
      let other = Topology.abilene () in
      check_mentions "expect_graph" "topology"
        (err_exn "expect_graph" (Plan_store.load ~expect_graph:other path));
      (* The right topology is accepted. *)
      ignore
        (ok_exn "same graph"
           (Plan_store.load ~expect_graph:plan.Offline.graph path)))

let test_plan_corruption_rejected () =
  let _, cfg, plan = square_plan () in
  with_tmp ".plan" (fun path ->
      Plan_store.save path ~config:cfg plan;
      let original = read_file path in
      (* Flip a byte deep in the payload: CRC must catch it. *)
      let corrupt = Bytes.of_string original in
      let pos = String.length original - 20 in
      Bytes.set corrupt pos
        (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0x01));
      write_file path (Bytes.to_string corrupt);
      ignore (err_exn "flipped byte" (Plan_store.load path));
      ignore (err_exn "inspect of corrupt" (Plan_store.inspect path));
      (* Bump the version field (offset 8): version mismatch, not a
         misread. *)
      let bumped = Bytes.of_string original in
      Bytes.set bumped Codec.magic_len
        (Char.chr (Char.code (Bytes.get bumped Codec.magic_len) + 1));
      write_file path (Bytes.to_string bumped);
      check_mentions "bumped version" "version"
        (err_exn "bumped version" (Plan_store.load path)))

let test_plan_inspect () =
  let g, cfg, plan = square_plan () in
  with_tmp ".plan" (fun path ->
      Plan_store.save path ~config:cfg plan;
      let info = ok_exn "inspect" (Plan_store.inspect path) in
      Alcotest.(check int) "version" Plan_store.version info.Plan_store.version;
      Alcotest.(check int) "nodes" (G.num_nodes g) info.Plan_store.nodes;
      Alcotest.(check int) "links" (G.num_links g) info.Plan_store.links;
      Alcotest.(check int) "commodities"
        (Array.length plan.Offline.pairs)
        info.Plan_store.commodities;
      Alcotest.(check int) "f" 1 info.Plan_store.f;
      Alcotest.(check int64) "mlu bits" (Int64.bits_of_float plan.Offline.mlu)
        (Int64.bits_of_float info.Plan_store.mlu);
      Alcotest.(check bool) "bytes matches file" true
        (info.Plan_store.bytes = String.length (read_file path)))

let test_traffic_roundtrip () =
  let tm = Traffic.zeros 3 in
  tm.(0).(1) <- 1.25;
  tm.(2).(0) <- 0.5;
  tm.(1).(2) <- -0.0;
  with_tmp ".tm" (fun path ->
      Plan_store.save_traffic path tm;
      let tm' = ok_exn "load_traffic" (Plan_store.load_traffic path) in
      Alcotest.(check bool) "bit-identical" true
        (Array.map (Array.map Int64.bits_of_float) tm
        = Array.map (Array.map Int64.bits_of_float) tm'))

(* ---- routing row-storage accessors (the codec's substrate) ---- *)

let test_row_storage_roundtrip () =
  let g = Topology.square () in
  let m = G.num_links g in
  let mk backend =
    Routing.create ~backend g ~pairs:[| (0, 2); (1, 3) |]
  in
  let r = mk Routing.Backend.Sparse in
  (* Install one dense and one sparse payload, read them back, and
     install them into a fresh routing: bits must survive the trip. *)
  Routing.set_row_storage r 0 (`Dense (Array.init m (fun e -> float_of_int e /. 7.0)));
  Routing.set_row_storage r 1
    (`Sparse (Rowvec.of_sorted [| 1; 3 |] [| 0.25; 0.75 |] 2));
  let r' = mk Routing.Backend.Dense in
  Routing.set_row_storage r' 0 (Routing.row_storage r 0);
  Routing.set_row_storage r' 1 (Routing.row_storage r 1);
  Alcotest.(check bool) "bits survive storage round-trip" true
    (routing_bits r = routing_bits r');
  (* Validation: wrong dense width and out-of-range sparse index. *)
  let expect_invalid name f =
    try
      f ();
      Alcotest.failf "%s: expected Invalid_argument" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "short dense row" (fun () ->
      Routing.set_row_storage r 0 (`Dense [| 1.0 |]));
  expect_invalid "sparse index out of range" (fun () ->
      Routing.set_row_storage r 0
        (`Sparse (Rowvec.of_sorted [| m |] [| 1.0 |] 1)))

(* ---- online checkpoint / resume ---- *)

let online_root () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 11 in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, demands = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let backend = Routing.Backend.Sparse in
  let base = R3_net.Ospf.routing g ~backend ~weights ~pairs () in
  let m = G.num_links g in
  let p =
    Routing.create ~backend g
      ~pairs:(Array.init m (fun e -> (G.src g e, G.dst g e)))
  in
  for l = 0 to m - 1 do
    let failed = G.fail_links g [ l ] in
    (match
       R3_net.Spf.shortest_path g ~failed ~weights ~src:(G.src g l)
         ~dst:(G.dst g l) ()
     with
    | Some path -> List.iter (fun e -> Routing.set p l e 1.0) path
    | None -> Routing.set p l l 1.0)
  done;
  (g, Reconfig.make g ~pairs ~demands ~base ~protection:p)

let stats_equal_modulo_distinct (a : Online.stats) (b : Online.stats) =
  a.Online.events = b.Online.events
  && a.Online.deliveries = b.Online.deliveries
  && a.Online.stale = b.Online.stale
  && Array.map Int64.bits_of_float a.Online.convergence_ms
     = Array.map Int64.bits_of_float b.Online.convergence_ms
  && Int64.bits_of_float a.Online.transient_mlu_peak
     = Int64.bits_of_float b.Online.transient_mlu_peak
  && Int64.bits_of_float a.Online.min_delivered
     = Int64.bits_of_float b.Online.min_delivered
  && a.Online.violation_windows = b.Online.violation_windows

let test_checkpoint_resume_bit_identical () =
  let g, root = online_root () in
  let events = Online.generate g ~seed:7 ~events:16 ~max_concurrent:2 () in
  let channel = Online.Channel.faulty Online.Channel.default_faults in
  let uninterrupted = Online.run ~channel ~seed:7 ~fibs:true root events in
  (* Drive the same run pausing every 25 deliveries, persisting each
     checkpoint through the on-disk format. *)
  with_tmp ".ck" (fun path ->
      let rec go resume pauses =
        match
          Online.run_to ~channel ~seed:7 ~fibs:true ?resume ~stop_after:25 root
            events
        with
        | `Done o -> (o, pauses)
        | `Paused ck ->
          Online.Checkpoint.save path ck;
          let ck' = ok_exn "checkpoint load" (Online.Checkpoint.load path) in
          Alcotest.(check int) "cursor round-trips"
            (Online.Checkpoint.cursor ck)
            (Online.Checkpoint.cursor ck');
          go (Some ck') (pauses + 1)
      in
      let resumed, pauses = go None 0 in
      Alcotest.(check bool) "actually paused at least twice" true (pauses >= 2);
      Alcotest.(check bool) "order independent" true
        resumed.Online.order_independent;
      Alcotest.(check bool) "fib consistent" true resumed.Online.fib_consistent;
      Alcotest.(check bool) "terminal bits identical" true
        (Reconfig.states_bit_identical uninterrupted.Online.terminal
           resumed.Online.terminal);
      Alcotest.(check int64) "quiescent mlu bits"
        (Int64.bits_of_float uninterrupted.Online.quiescent_mlu)
        (Int64.bits_of_float resumed.Online.quiescent_mlu);
      Alcotest.(check bool) "stats identical (modulo distinct_states)" true
        (stats_equal_modulo_distinct uninterrupted.Online.stats
           resumed.Online.stats))

let test_checkpoint_wrong_run_rejected () =
  let g, root = online_root () in
  let events = Online.generate g ~seed:7 ~events:16 ~max_concurrent:2 () in
  let ck =
    match Online.run_to ~seed:7 ~stop_after:10 root events with
    | `Paused ck -> ck
    | `Done _ -> Alcotest.fail "expected a pause"
  in
  (* Same root and events, different channel seed: the digest must refuse. *)
  try
    ignore (Online.run_to ~seed:8 ~resume:ck root events);
    Alcotest.fail "expected Invalid_argument on mismatched seed"
  with Invalid_argument _ -> ()

(* ---- bugfix regressions (Scenario.hash) ---- *)

let test_scenario_hash_mixes_whole_set () =
  (* Hashtbl.hash stops after ~10 meaningful values, so scenarios sharing
     a long prefix used to collide wholesale. Build many scenarios that
     share 10 physical picks and differ only in the 11th: their hashes
     must not all collapse to one bucket. *)
  let g =
    Topology.random ~seed:41 ~nodes:24 ~undirected_links:60
      ~capacities:[ (10.0, 1.0) ]
      ()
  in
  let phys = R3_sim.Scenarios.physical_links g in
  Alcotest.(check bool) "fixture has enough physical links" true
    (Array.length phys > 24);
  let prefix = Array.to_list (Array.sub phys 0 10) in
  let hashes =
    List.init 12 (fun i ->
        Scenario.hash (Scenario.of_physical g (phys.(12 + i) :: prefix)))
  in
  let distinct = List.sort_uniq Int.compare hashes in
  Alcotest.(check bool) "suffix changes reach the hash" true
    (List.length distinct > 1);
  (* Equal scenarios still hash equally, however they were built. *)
  let a = Scenario.of_physical g prefix in
  let b = Scenario.of_physical g (List.rev prefix) in
  Alcotest.(check bool) "hash respects equality" true
    (Scenario.equal a b && Scenario.hash a = Scenario.hash b)

let suite =
  [
    Alcotest.test_case "crc32 test vector" `Quick test_crc32_vector;
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects malformed" `Quick
      test_codec_rejects_malformed;
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame rejections" `Quick test_frame_rejections;
    Alcotest.test_case "plan round-trip bit-identical" `Quick
      test_plan_roundtrip;
    Alcotest.test_case "plan round-trip (dense backend)" `Quick
      test_plan_roundtrip_dense_backend;
    Alcotest.test_case "reloaded plan passes Theorem 1" `Quick
      test_plan_survives_verification;
    Alcotest.test_case "wrong topology rejected" `Quick
      test_plan_wrong_topology_rejected;
    Alcotest.test_case "corruption and version bump rejected" `Quick
      test_plan_corruption_rejected;
    Alcotest.test_case "plan inspect" `Quick test_plan_inspect;
    Alcotest.test_case "traffic matrix round-trip" `Quick
      test_traffic_roundtrip;
    Alcotest.test_case "routing row storage round-trip" `Quick
      test_row_storage_roundtrip;
    Alcotest.test_case "checkpoint resume bit-identical" `Quick
      test_checkpoint_resume_bit_identical;
    Alcotest.test_case "checkpoint for wrong run rejected" `Quick
      test_checkpoint_wrong_run_rejected;
    Alcotest.test_case "scenario hash mixes whole set" `Quick
      test_scenario_hash_mixes_whole_set;
  ]
