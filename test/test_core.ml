(* Tests for the R3 core: offline precomputation (both solve methods),
   online reconfiguration (the Section 3.3 worked example), and the
   theorems as executable properties. *)

module G = R3_net.Graph
module Routing = R3_net.Routing
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology
module Offline = R3_core.Offline
module Reconfig = R3_core.Reconfig
module Verify = R3_core.Verify
module Vd = R3_core.Virtual_demand

let feq ?(tol = 1e-6) a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs b)

let check_f ?tol name expected actual =
  if not (feq ?tol expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

let plan_exn result =
  match result with
  | Ok plan -> plan
  | Error msg -> Alcotest.failf "offline failed: %s" msg

(* Small demand on the square fixture: enough headroom for F=1. *)
let square_tm ~volume =
  let tm = Traffic.zeros 4 in
  tm.(0).(2) <- volume;
  tm.(1).(3) <- volume;
  tm

let test_virtual_demand_membership () =
  let g = Topology.triangle () in
  let m = G.num_links g in
  let x = Array.make m 0.0 in
  Alcotest.(check bool) "zero in X_F" true (Vd.member g ~f:1 x);
  x.(0) <- G.capacity g 0;
  Alcotest.(check bool) "one full link in X_1" true (Vd.member g ~f:1 x);
  x.(1) <- G.capacity g 1;
  Alcotest.(check bool) "two full links not in X_1" false (Vd.member g ~f:1 x);
  Alcotest.(check bool) "two full links in X_2" true (Vd.member g ~f:2 x)

let test_worst_virtual_load () =
  let w = [| 5.0; 1.0; 3.0; 0.0; 4.0 |] in
  check_f "f=1" 5.0 (Vd.worst_virtual_load ~f:1 w);
  check_f "f=2" 9.0 (Vd.worst_virtual_load ~f:2 w);
  check_f "f=3" 12.0 (Vd.worst_virtual_load ~f:3 w);
  check_f "f=10 caps at positives" 13.0 (Vd.worst_virtual_load ~f:10 w);
  let v, set = Vd.worst_virtual_load_set ~f:2 w in
  check_f "set value" 9.0 v;
  Alcotest.(check (list int)) "argmax set" [ 0; 4 ] (List.sort Int.compare set)

(* extreme_points must agree with the membership predicate and the
   knapsack bound: the max over extreme points of a linear functional
   equals worst_virtual_load. *)
let test_extreme_points_vs_knapsack () =
  let g = Topology.square () in
  let m = G.num_links g in
  let points = Vd.extreme_points g ~f:2 in
  Alcotest.(check bool) "all points in X_F" true
    (List.for_all (Vd.member g ~f:2) points);
  let rng = R3_util.Prng.create 3 in
  let p_row = Array.init m (fun _ -> R3_util.Prng.float rng 0.5) in
  let best_extreme =
    List.fold_left
      (fun acc x ->
        let v = ref 0.0 in
        Array.iteri (fun l xv -> v := !v +. (xv *. p_row.(l))) x;
        Float.max acc !v)
      0.0 points
  in
  let weights = Array.init m (fun l -> G.capacity g l *. p_row.(l)) in
  check_f "knapsack = max over extreme points" best_extreme
    (Vd.worst_virtual_load ~f:2 weights)

(* The Section 3.3 worked example: 4 parallel links, p_e1 = p_e2 =
   (0.1, 0.2, 0.3, 0.4). After e1 fails: xi_e1 = (-, 2/9, 3/9, 4/9) and
   p'_e2 = (0, 0.2 + 0.1*2/9, 0.3 + 0.1*3/9, 0.4 + 0.1*4/9). *)
let test_paper_example_rescaling () =
  let g = Topology.parallel_links ~capacities:[ 1.0; 2.0; 3.0; 4.0 ] in
  (* Links 0,2,4,6 are i->j (e1..e4); 1,3,5,7 are the reverses. *)
  let i_to_j = Array.init 8 (fun e -> e) |> Array.to_list
               |> List.filter (fun e -> G.src g e = 0) in
  let e1, e2, e3, e4 =
    match i_to_j with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> Alcotest.fail "expected 4 parallel i->j links"
  in
  let pairs = [| (0, 1) |] in
  let base = Routing.create g ~pairs in
  Routing.set base (0) (e1) 1.0;
  let protection = Routing.create g ~pairs:(Array.init 8 (fun e -> (G.src g e, G.dst g e))) in
  let assign l values =
    List.iter2 (fun e v -> Routing.set protection (l) (e) v) [ e1; e2; e3; e4 ] values
  in
  assign e1 [ 0.1; 0.2; 0.3; 0.4 ];
  assign e2 [ 0.1; 0.2; 0.3; 0.4 ];
  let st = Reconfig.make g ~pairs ~demands:[| 0.5 |] ~base ~protection in
  let xi = Reconfig.detour st e1 in
  check_f "xi(e2)" (2.0 /. 9.0) xi.(e2);
  check_f "xi(e3)" (3.0 /. 9.0) xi.(e3);
  check_f "xi(e4)" (4.0 /. 9.0) xi.(e4);
  check_f "xi(e1)" 0.0 xi.(e1);
  let st' = Reconfig.apply_failures st [ e1 ] in
  let p' = Routing.row_dense st'.Reconfig.protection e2 in
  check_f "p'_e2(e1)" 0.0 p'.(e1);
  check_f "p'_e2(e2)" (0.2 +. (0.1 *. 2.0 /. 9.0)) p'.(e2);
  check_f "p'_e2(e3)" (0.3 +. (0.1 *. 3.0 /. 9.0)) p'.(e3);
  check_f "p'_e2(e4)" (0.4 +. (0.1 *. 4.0 /. 9.0)) p'.(e4);
  (* Base traffic of e1 is detoured the same way. *)
  let r' = Routing.row_dense st'.Reconfig.base 0 in
  check_f "r'(e2)" (2.0 /. 9.0) r'.(e2);
  check_f "r'(e1)" 0.0 r'.(e1);
  (* The updated base routing remains valid. *)
  (match Routing.validate g ~failed:st'.Reconfig.failed st'.Reconfig.base with
  | Ok () -> ()
  | Error m -> Alcotest.fail m)

let test_offline_square_f1 () =
  let g = Topology.square () in
  let tm = square_tm ~volume:2.0 in
  let cfg = Offline.default_config ~f:1 in
  let plan = plan_exn (Offline.compute cfg g tm Offline.Joint) in
  (* Routings must be valid. *)
  (match Routing.validate g plan.Offline.base with
  | Ok () -> ()
  | Error m -> Alcotest.failf "base invalid: %s" m);
  (match Routing.validate g plan.Offline.protection with
  | Ok () -> ()
  | Error m -> Alcotest.failf "protection invalid: %s" m);
  Alcotest.(check bool)
    (Printf.sprintf "congestion-free plan (mlu=%.3f)" plan.Offline.mlu)
    true (plan.Offline.mlu <= 1.0 +. 1e-6);
  (* The LP's MLU must match the independent knapsack verifier. *)
  let base_loads = Routing.loads g ~demands:plan.Offline.demands plan.Offline.base in
  let audited =
    Verify.offline_worst_mlu g ~f:1 ~base_loads ~protection:plan.Offline.protection
  in
  check_f ~tol:1e-4 "LP mlu = audited mlu" audited plan.Offline.mlu

let test_cg_equals_dualized () =
  let g = Topology.square () in
  let tm = square_tm ~volume:2.0 in
  let dual = plan_exn (Offline.compute (Offline.default_config ~f:1) g tm Offline.Joint) in
  let cg =
    plan_exn
      (Offline.compute
         { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
         g tm Offline.Joint)
  in
  check_f ~tol:1e-4 "same optimal MLU" dual.Offline.mlu cg.Offline.mlu

let test_cg_equals_dualized_f2 () =
  let g = Topology.triangle () in
  let tm = Traffic.zeros 3 in
  tm.(0).(1) <- 1.0;
  tm.(1).(2) <- 1.5;
  let dual = plan_exn (Offline.compute (Offline.default_config ~f:2) g tm Offline.Joint) in
  let cg =
    plan_exn
      (Offline.compute
         { (Offline.default_config ~f:2) with solve_method = Offline.Constraint_gen }
         g tm Offline.Joint)
  in
  check_f ~tol:1e-4 "same optimal MLU (f=2)" dual.Offline.mlu cg.Offline.mlu

let test_theorem1_square () =
  let g = Topology.square () in
  let tm = square_tm ~volume:2.0 in
  let plan = plan_exn (Offline.compute (Offline.default_config ~f:1) g tm Offline.Joint) in
  match Verify.check_theorem1 plan with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_theorem1_abilene_fixed_base () =
  (* F = 1 (directed): Abilene has degree-2 nodes, so F >= 2 cannot be
     congestion-free-guaranteed (virtual demands alone exceed the nodes'
     egress capacity) - the paper notes the sufficient condition may be
     unattainable. F = 1 with light load is guaranteed. *)
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 11 in
  let tm = Traffic.gravity rng g ~load_factor:0.1 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
  in
  let plan = plan_exn (Offline.compute cfg g tm (Offline.Fixed base)) in
  Alcotest.(check bool)
    (Printf.sprintf "abilene f=1 congestion-free (mlu=%.3f)" plan.Offline.mlu)
    true (plan.Offline.mlu <= 1.0 +. 1e-6);
  match Verify.check_theorem1 ~samples:120 plan with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_order_independence () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 13 in
  let tm = Traffic.gravity rng g ~load_factor:0.2 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (Offline.default_config ~f:3) with solve_method = Offline.Constraint_gen }
  in
  let plan = plan_exn (Offline.compute cfg g tm (Offline.Fixed base)) in
  match Verify.check_order_independence plan [ 0; 7; 15 ] with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Proposition 1: on parallel-link networks, the canonical R3 protection
   (split every virtual demand across all parallel links in proportion to
   capacity - what Section 3.3 says the offline phase produces) is optimal
   under any number of failures: after failing links with total capacity
   C_f, every surviving link has utilization d / (C - C_f), the flow
   optimum. The LP may return a different (tied) optimum of (3), so the
   per-scenario check uses the canonical plan; the LP's offline MLU* is
   checked against the analytic value (d + F c) / (k c). *)
let canonical_parallel_plan g ~demand ~f =
  let forward = List.filter (fun e -> G.src g e = 0) (List.init (G.num_links g) (fun e -> e)) in
  let total_cap = List.fold_left (fun a e -> a +. G.capacity g e) 0.0 forward in
  let pairs = [| (0, 1) |] in
  let base = Routing.create g ~pairs in
  List.iter (fun e -> Routing.set base 0 e (G.capacity g e /. total_cap)) forward;
  let link_pairs = Array.init (G.num_links g) (fun e -> (G.src g e, G.dst g e)) in
  let p = Routing.create g ~pairs:link_pairs in
  Array.iteri
    (fun l (a, _) ->
      if a = 0 then
        List.iter
          (fun e -> Routing.set p l e (G.capacity g e /. total_cap))
          forward
      else begin
        (* reverse direction: same structure on the reverse links *)
        let backward =
          List.filter (fun e -> G.src g e = 1) (List.init (G.num_links g) (fun e -> e))
        in
        List.iter
          (fun e -> Routing.set p l e (G.capacity g e /. total_cap))
          backward
      end)
    (Routing.pairs p);
  {
    Offline.graph = g;
    f;
    pairs;
    demands = [| demand |];
    base;
    protection = p;
    mlu = 0.0;
    lp_vars = 0;
    lp_rows = 0;
    lp_pivots = 0;
  }

let test_proposition1_parallel () =
  let caps = [ 10.0; 10.0; 10.0; 10.0 ] in
  let g = Topology.parallel_links ~capacities:caps in
  let demand = 12.0 in
  let tm = Traffic.zeros 2 in
  tm.(0).(1) <- demand;
  (* LP offline optimum equals the analytic (d + F c)/(k c) = 0.8. *)
  let plan = plan_exn (Offline.compute (Offline.default_config ~f:2) g tm Offline.Joint) in
  check_f ~tol:1e-4 "offline MLU* analytic" 0.8 plan.Offline.mlu;
  (* Canonical proportional plan is per-scenario optimal for any number
     of failures. *)
  let canon = canonical_parallel_plan g ~demand ~f:2 in
  let forward = List.filter (fun e -> G.src g e = 0) (List.init 8 (fun e -> e)) in
  (match forward with
  | e1 :: e2 :: e3 :: _ ->
    check_f ~tol:1e-6 "one failure optimal" (demand /. 30.0) (Verify.scenario_mlu canon [ e1 ]);
    check_f ~tol:1e-6 "two failures optimal" (demand /. 20.0)
      (Verify.scenario_mlu canon [ e1; e2 ]);
    check_f ~tol:1e-6 "three failures optimal" (demand /. 10.0)
      (Verify.scenario_mlu canon [ e1; e2; e3 ])
  | _ -> Alcotest.fail "expected parallel links")

let test_proposition1_heterogeneous () =
  let caps = [ 1.0; 2.0; 3.0; 4.0 ] in
  let g = Topology.parallel_links ~capacities:caps in
  let demand = 4.0 in
  let canon = canonical_parallel_plan g ~demand ~f:2 in
  let forward = List.filter (fun e -> G.src g e = 0) (List.init 8 (fun e -> e)) in
  List.iter
    (fun e ->
      let remaining = 10.0 -. G.capacity g e in
      check_f ~tol:1e-6
        (Printf.sprintf "fail link cap %g" (G.capacity g e))
        (demand /. remaining)
        (Verify.scenario_mlu canon [ e ]))
    forward

(* Theorem 2 construction (16): from a per-scenario protection p* with no
   congestion under every single-link failure, build p and check that
   d + X_1 is congestion-free, via the knapsack audit. *)
let test_theorem2_construction () =
  let caps = [ 10.0; 10.0; 10.0 ] in
  let g = Topology.parallel_links ~capacities:caps in
  let forward = List.filter (fun e -> G.src g e = 0) (List.init 6 (fun e -> e)) in
  let e1, e2, e3 =
    match forward with [ a; b; c ] -> (a, b, c) | _ -> Alcotest.fail "links"
  in
  let pairs = [| (0, 1) |] in
  let demand = 12.0 in
  (* Base: spread demand evenly -> load 4 per link. *)
  let base = Routing.create g ~pairs in
  List.iter (fun e -> Routing.set base 0 e (1.0 /. 3.0)) [ e1; e2; e3 ];
  (* p*: on failure of any link, split its traffic evenly on the others;
     loads become 4 + 2 = 6 <= 10: no congestion. Construction (16):
     p_e(e) = 1 - load(e)/c_e = 1 - 0.4 = 0.6,
     p_e(l) = p*_e(l) * load(e)/c_e = 0.5 * 0.4 = 0.2. *)
  let link_pairs = Array.init 6 (fun e -> (G.src g e, G.dst g e)) in
  let p = Routing.create g ~pairs:link_pairs in
  List.iter
    (fun e ->
      Routing.set p (e) (e) 0.6;
      List.iter
        (fun l -> if l <> e then Routing.set p e l 0.2)
        [ e1; e2; e3 ])
    [ e1; e2; e3 ];
  (* reverse-direction links: idle, protect trivially via themselves *)
  List.iter
    (fun e ->
      let r = Option.get (G.reverse_link g e) in
      Routing.set p (r) (r) 1.0)
    [ e1; e2; e3 ];
  (match Routing.validate g p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "constructed p invalid: %s" m);
  let base_loads = Routing.loads g ~demands:[| demand |] base in
  let audited = Verify.offline_worst_mlu g ~f:1 ~base_loads ~protection:p in
  Alcotest.(check bool)
    (Printf.sprintf "d + X_1 congestion-free (audited mlu=%.3f)" audited)
    true
    (audited <= 1.0 +. 1e-9)

(* Penalty envelope: with beta close to 1 the no-failure MLU must stay
   within beta * optimal, and the unconstrained-R3 normal MLU can exceed
   the constrained one. *)
let test_penalty_envelope () =
  let g = Topology.square () in
  let tm = square_tm ~volume:3.0 in
  (* Optimal no-failure MLU: route 0->2 on the diagonal (cap 10): depends;
     compute via joint f=0. *)
  let opt_plan = plan_exn (Offline.compute (Offline.default_config ~f:0) g tm Offline.Joint) in
  let mlu_opt = opt_plan.Offline.mlu in
  let beta = 1.1 in
  let cfg = { (Offline.default_config ~f:1) with envelope = Some (beta, mlu_opt) } in
  let plan = plan_exn (Offline.compute cfg g tm Offline.Joint) in
  let normal_loads = Routing.loads g ~demands:plan.Offline.demands plan.Offline.base in
  let normal_mlu = Routing.mlu g ~loads:normal_loads in
  Alcotest.(check bool)
    (Printf.sprintf "normal MLU %.4f within beta*opt %.4f" normal_mlu (beta *. mlu_opt))
    true
    (normal_mlu <= (beta *. mlu_opt) +. 1e-5)

(* Multi-TM (convex hull): plan must be congestion-free for both matrices. *)
let test_multi_tm () =
  let g = Topology.square () in
  let tm1 = square_tm ~volume:2.0 in
  let tm2 = Traffic.zeros 4 in
  tm2.(0).(1) <- 2.5;
  tm2.(2).(0) <- 1.5;
  let cfg = Offline.default_config ~f:1 in
  let plan = plan_exn (Offline.compute_multi cfg g [ tm1; tm2 ] Offline.Joint) in
  Alcotest.(check bool) "hull plan congestion-free" true (plan.Offline.mlu <= 1.0 +. 1e-6);
  (* audit against both matrices *)
  List.iter
    (fun tm ->
      let demands = Array.map (fun (a, b) -> tm.(a).(b)) plan.Offline.pairs in
      let base_loads = Routing.loads g ~demands plan.Offline.base in
      let u = Verify.offline_worst_mlu g ~f:1 ~base_loads ~protection:plan.Offline.protection in
      Alcotest.(check bool) "matrix within guarantee" true (u <= plan.Offline.mlu +. 1e-4))
    [ tm1; tm2 ]

(* Randomized Theorem-1 property on small random topologies. *)
let theorem1_prop =
  QCheck.Test.make ~count:12 ~name:"theorem 1 holds on random small topologies"
    QCheck.(int_bound 1_000)
    (fun seed ->
      let g =
        Topology.random ~seed:(seed + 3) ~nodes:5 ~undirected_links:8
          ~capacities:[ (10.0, 1.0) ] ()
      in
      let rng = R3_util.Prng.create seed in
      let tm = Traffic.gravity rng g ~load_factor:0.15 () in
      let cfg =
        { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
      in
      match Offline.compute cfg g tm Offline.Joint with
      | Error _ -> QCheck.assume_fail () (* partitionable topologies excluded *)
      | Ok plan ->
        if plan.Offline.mlu > 1.0 then QCheck.assume_fail ()
        else begin
          match Verify.check_theorem1 plan with Ok () -> true | Error _ -> false
        end)

(* Order independence as a randomized property (Theorem 3). The theorem
   applies in the regime where reconfiguration drops nothing: once a
   failure pair partitions a destination (p_e(e) reaches 1 mid-sequence),
   the doomed traffic is blackholed at a head router that depends on the
   failure order, so the upstream flows legitimately differ. Such pairs
   are excluded (both orders still agree on every delivered commodity). *)
let order_independence_prop =
  QCheck.Test.make ~count:15 ~name:"rescaling is order independent"
    QCheck.(pair (int_bound 1_000) (pair (int_bound 27) (int_bound 27)))
    (fun (seed, (l1, l2)) ->
      QCheck.assume (l1 <> l2);
      let g = Topology.abilene () in
      let rng = R3_util.Prng.create seed in
      let tm = Traffic.gravity rng g ~load_factor:0.2 () in
      let pairs, _ = Traffic.commodities tm in
      let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
      let cfg =
        { (Offline.default_config ~f:2) with solve_method = Offline.Constraint_gen }
      in
      match Offline.compute cfg g tm (Offline.Fixed base) with
      | Error _ -> QCheck.assume_fail ()
      | Ok plan ->
        let delivered order =
          Reconfig.delivered_fraction
            (Reconfig.apply_failures (Reconfig.of_plan plan) order)
        in
        if delivered [ l1; l2 ] < 0.999 || delivered [ l2; l1 ] < 0.999 then
          QCheck.assume_fail ()
        else begin
          match Verify.check_order_independence plan [ l1; l2 ] with
          | Ok () -> true
          | Error _ -> false
        end)


(* Delay penalty envelope (Section 3.5): bounding each OD pair's mean
   propagation delay by gamma times its shortest-path delay. *)
let test_delay_envelope () =
  let g = Topology.square () in
  let tm = square_tm ~volume:2.0 in
  let cfg =
    { (Offline.default_config ~f:1) with delay_envelope = Some 1.5 }
  in
  let plan = plan_exn (Offline.compute cfg g tm Offline.Joint) in
  Array.iteri
    (fun k (a, b) ->
      let best = R3_net.Spf.min_propagation_delay g ~src:a ~dst:b () in
      let actual = Routing.mean_delay g plan.Offline.base k in
      if actual > (1.5 *. best) +. 1e-6 then
        Alcotest.failf "pair %d->%d: delay %.3f exceeds 1.5 x %.3f" a b actual best)
    plan.Offline.pairs

(* A sufficiently tight delay envelope can be infeasible together with a
   protection requirement; the solver must report it rather than return a
   bogus plan. *)
let test_delay_envelope_tightness () =
  let g = Topology.square () in
  let tm = square_tm ~volume:2.0 in
  let loose = { (Offline.default_config ~f:1) with delay_envelope = Some 10.0 } in
  let loose_mlu = (plan_exn (Offline.compute loose g tm Offline.Joint)).Offline.mlu in
  let tight = { (Offline.default_config ~f:1) with delay_envelope = Some 1.0 } in
  (match Offline.compute tight g tm Offline.Joint with
  | Ok plan ->
    (* gamma = 1 forces shortest-path-only base routing; the protected MLU
       can only get worse (or equal). *)
    Alcotest.(check bool) "tight envelope cannot improve MLU" true
      (plan.Offline.mlu >= loose_mlu -. 1e-6)
  | Error _ -> () (* infeasibility is also an acceptable outcome *))

(* The Domain-parallel separation oracle must produce exactly the plan the
   sequential oracle does: same cuts in the same order, hence bit-identical
   pivot counts, row counts and routing fractions. *)
let test_parallel_oracle_deterministic () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 19 in
  let tm = Traffic.gravity rng g ~load_factor:0.2 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
  in
  let run () = plan_exn (Offline.compute cfg g tm (Offline.Fixed base)) in
  let before = R3_util.Parallel.domains () in
  let par, seq =
    Fun.protect
      ~finally:(fun () -> R3_util.Parallel.set_domains before)
      (fun () ->
        R3_util.Parallel.set_domains 4;
        let par = run () in
        R3_util.Parallel.set_domains 1;
        (par, run ()))
  in
  Alcotest.(check bool) "same MLU (exactly)" true
    (Float.equal par.Offline.mlu seq.Offline.mlu);
  Alcotest.(check int) "same LP rows" seq.Offline.lp_rows par.Offline.lp_rows;
  Alcotest.(check int) "same pivots" seq.Offline.lp_pivots par.Offline.lp_pivots;
  Alcotest.(check bool) "bit-identical protection routing" true
    (Routing.to_dense_matrix par.Offline.protection
    = Routing.to_dense_matrix seq.Offline.protection);
  Alcotest.(check bool) "bit-identical base routing" true
    (Routing.to_dense_matrix par.Offline.base
    = Routing.to_dense_matrix seq.Offline.base)

(* The revised (LU) and sparse-tableau LP engines must drive constraint
   generation to the same protected MLU: identical oracle, identical cut
   policy, only the pivoting engine differs. Checked on the two bench
   topologies (Abilene and the synthetic 36-link PoP). *)
let test_cg_backend_agreement () =
  let check_topo name g seed =
    let rng = R3_util.Prng.create seed in
    let tm = Traffic.gravity rng g ~load_factor:0.3 () in
    let pairs, _ = Traffic.commodities tm in
    let base =
      R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs ()
    in
    let run backend =
      let cfg =
        {
          (Offline.default_config ~f:1) with
          solve_method = Offline.Constraint_gen;
          core = R3_core.Config.(default |> with_lp_backend backend);
        }
      in
      plan_exn (Offline.compute cfg g tm (Offline.Fixed base))
    in
    let tab = run `Sparse and rev = run `Revised in
    if
      Float.abs (tab.Offline.mlu -. rev.Offline.mlu)
      > 1e-9 *. (1.0 +. Float.abs tab.Offline.mlu)
    then
      Alcotest.failf "%s: tableau MLU %.12g vs revised MLU %.12g" name
        tab.Offline.mlu rev.Offline.mlu;
    if rev.Offline.lp_pivots <= 0 then
      Alcotest.failf "%s: revised engine reports no pivots" name
  in
  check_topo "abilene" (Topology.abilene ()) 7;
  check_topo "pop36"
    (Topology.random ~seed:3 ~nodes:16 ~undirected_links:18
       ~capacities:[ (100.0, 2.0); (400.0, 1.0) ] ())
    21

let suite =
  [
    Alcotest.test_case "virtual demand membership" `Quick test_virtual_demand_membership;
    Alcotest.test_case "worst virtual load (knapsack)" `Quick test_worst_virtual_load;
    Alcotest.test_case "extreme points vs knapsack" `Quick test_extreme_points_vs_knapsack;
    Alcotest.test_case "paper example rescaling (Sec 3.3)" `Quick test_paper_example_rescaling;
    Alcotest.test_case "offline square f=1" `Quick test_offline_square_f1;
    Alcotest.test_case "CG = dualized (square)" `Quick test_cg_equals_dualized;
    Alcotest.test_case "CG = dualized (triangle f=2)" `Quick test_cg_equals_dualized_f2;
    Alcotest.test_case "theorem 1 (square, exhaustive)" `Quick test_theorem1_square;
    Alcotest.test_case "theorem 1 (abilene, fixed base)" `Slow test_theorem1_abilene_fixed_base;
    Alcotest.test_case "theorem 3 order independence" `Slow test_order_independence;
    Alcotest.test_case "proposition 1 (parallel links)" `Quick test_proposition1_parallel;
    Alcotest.test_case "proposition 1 (heterogeneous)" `Quick test_proposition1_heterogeneous;
    Alcotest.test_case "theorem 2 construction" `Quick test_theorem2_construction;
    Alcotest.test_case "penalty envelope" `Quick test_penalty_envelope;
    Alcotest.test_case "multi-TM convex hull" `Quick test_multi_tm;
    Alcotest.test_case "delay envelope" `Quick test_delay_envelope;
    Alcotest.test_case "delay envelope tightness" `Quick test_delay_envelope_tightness;
    Alcotest.test_case "parallel oracle deterministic" `Quick
      test_parallel_oracle_deterministic;
    Alcotest.test_case "CG backends agree (abilene, pop36)" `Quick
      test_cg_backend_agreement;
    QCheck_alcotest.to_alcotest theorem1_prop;
    QCheck_alcotest.to_alcotest order_independence_prop;
  ]
