(* Tests for the event-driven online reconfiguration runtime and the
   Reconfig fail/recover scenario-delta API.

   The load-bearing property (the ISSUE's acceptance bar): for randomized
   delivery schedules — including duplicated, reordered, and
   dropped-then-retried notifications — every router's terminal state is
   bit-identical to the batch application of the final failed set, across
   all three routing storage backends; and with a real (LP-computed) plan
   whose MLU* <= 1, the quiescent MLU stays within the plan bound. *)

module G = R3_net.Graph
module Routing = R3_net.Routing
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Spf = R3_net.Spf
module Reconfig = R3_core.Reconfig
module Scenario = R3_core.Scenario
module Online = R3_sim.Online
module Fib = R3_mplsff.Fib

let backends = Routing.Backend.[ Dense; Sparse; Auto ]

(* Synthetic protection (one SPF detour per link, no LP) — same shape as
   the bench fixtures; isolates the engine from the offline phase. *)
let synthetic_protection g ~backend =
  let weights = R3_net.Ospf.unit_weights g in
  let m = G.num_links g in
  let p =
    Routing.create ~backend g
      ~pairs:(Array.init m (fun e -> (G.src g e, G.dst g e)))
  in
  for l = 0 to m - 1 do
    let failed = G.fail_links g [ l ] in
    match
      Spf.shortest_path g ~failed ~weights ~src:(G.src g l) ~dst:(G.dst g l) ()
    with
    | Some path -> List.iter (fun e -> Routing.set p l e 1.0) path
    | None -> Routing.set p l l 1.0
  done;
  p

let make_state ?(backend = Routing.Backend.Sparse) ?(seed = 11) g =
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, demands = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~backend ~weights ~pairs () in
  let protection = synthetic_protection g ~backend in
  Reconfig.make g ~pairs ~demands ~base ~protection

let gen20 () =
  Topology.random ~seed:20 ~nodes:20 ~undirected_links:45
    ~capacities:[ (10.0, 0.5); (40.0, 0.5) ]
    ()

let sc g reps = Scenario.of_physical g reps

let bit_identical = Reconfig.states_bit_identical

(* ---- fail / recover (scenario-delta API) ---- *)

let test_fail_matches_directed_folds () =
  let g = Topology.abilene () in
  let st = make_state g in
  let e = 3 in
  let one = Reconfig.fail st (sc g [ e ]) in
  let r = Option.get (G.reverse_link g e) in
  Alcotest.(check bool) "fail = apply_failures over both directions" true
    (bit_identical one (Reconfig.apply_failures st [ e; r ]));
  Alcotest.(check bool) "apply_failures one at a time = fail" true
    (bit_identical one
       (Reconfig.apply_failures (Reconfig.apply_failures st [ e ]) [ r ]))

let test_fail_idempotent () =
  let g = Topology.abilene () in
  let st = make_state g in
  let once = Reconfig.fail st (sc g [ 0; 5 ]) in
  let twice = Reconfig.fail once (sc g [ 0; 5 ]) in
  Alcotest.(check bool) "re-failing is a no-op" true (bit_identical once twice)

let test_recover_restores_pristine () =
  let g = Topology.abilene () in
  let st = make_state g in
  let failed = Reconfig.fail st (sc g [ 2; 7 ]) in
  let back = Reconfig.recover failed (sc g [ 2; 7 ]) in
  Alcotest.(check bool) "recover all = pristine bits" true (bit_identical st back)

let test_recover_replays_remaining () =
  let g = Topology.abilene () in
  let st = make_state g in
  let failed = Reconfig.fail st (sc g [ 2; 7; 11 ]) in
  let partial = Reconfig.recover failed (sc g [ 7 ]) in
  Alcotest.(check bool) "recover subset = batch of remaining" true
    (bit_identical partial (Reconfig.fail st (sc g [ 2; 11 ])));
  (* recovering a link that is up is a no-op *)
  let noop = Reconfig.recover failed (sc g [ 4 ]) in
  Alcotest.(check bool) "recover of up link is no-op" true
    (bit_identical noop failed)

let test_fail_order_canonical () =
  (* Whatever order deltas arrive in, equal failed sets have equal bits —
     the property the online engine's memoization rests on. *)
  let g = gen20 () in
  let st = make_state g in
  let a = Reconfig.fail (Reconfig.fail st (sc g [ 9 ])) (sc g [ 1 ]) in
  let b = Reconfig.fail (Reconfig.fail st (sc g [ 1 ])) (sc g [ 9 ]) in
  let c = Reconfig.fail st (sc g [ 9; 1 ]) in
  Alcotest.(check bool) "fail commutes to canonical bits (a=c)" true
    (bit_identical a c);
  Alcotest.(check bool) "fail commutes to canonical bits (b=c)" true
    (bit_identical b c)

(* ---- schedule generator ---- *)

let test_generate_deterministic () =
  let g = Topology.abilene () in
  let s1 = Online.generate g ~seed:5 ~events:30 ~max_concurrent:3 () in
  let s2 = Online.generate g ~seed:5 ~events:30 ~max_concurrent:3 () in
  Alcotest.(check bool) "equal seeds, equal schedules" true (s1 = s2);
  let s3 = Online.generate g ~seed:6 ~events:30 ~max_concurrent:3 () in
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s3);
  (* replay: concurrency cap respected, no double-fail / spurious recover *)
  let down = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      (match ev.Online.kind with
      | Online.Fail ->
        Alcotest.(check bool) "fail of up link" false
          (Hashtbl.mem down ev.Online.link);
        Hashtbl.replace down ev.Online.link ()
      | Online.Recover ->
        Alcotest.(check bool) "recover of down link" true
          (Hashtbl.mem down ev.Online.link);
        Hashtbl.remove down ev.Online.link);
      Alcotest.(check bool) "concurrency cap" true (Hashtbl.length down <= 3))
    s1

(* ---- the online engine ---- *)

let faulty = Online.Channel.faulty Online.Channel.default_faults

let test_ideal_channel_delivers_once () =
  let g = Topology.abilene () in
  let root = make_state g in
  let schedule = Online.generate g ~seed:1 ~events:15 () in
  let o = Online.run ~seed:1 root schedule in
  let s = o.Online.stats in
  Alcotest.(check int) "one copy per (event, router)"
    (s.Online.events * G.num_nodes g)
    s.Online.deliveries;
  Alcotest.(check int) "ideal channel drops nothing" 0 s.Online.drops;
  Alcotest.(check bool) "order independent" true o.Online.order_independent;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "every event converged" false (Float.is_nan c);
      (* detection alone takes 30 ms, so convergence can't beat it *)
      Alcotest.(check bool) "convergence >= detection latency" true (c >= 30.0))
    s.Online.convergence_ms

(* The acceptance-bar property: >= 100 seeded random schedules across
   Abilene and a generated topology, fault-injected channel (duplicates,
   reordering, drops with retry), terminal state bit-identical to batch. *)
let test_order_independence_property () =
  List.iter
    (fun g ->
      let root = make_state g in
      for seed = 0 to 59 do
        let schedule =
          Online.generate g ~seed ~events:12 ~max_concurrent:3 ()
        in
        let o = Online.run ~channel:faulty ~seed root schedule in
        if not o.Online.order_independent then
          Alcotest.failf "seed %d: terminal state diverged from batch" seed
      done)
    [ Topology.abilene (); gen20 () ]

let test_backends_bit_identical () =
  let g = gen20 () in
  let roots = List.map (fun b -> make_state ~backend:b g) backends in
  for seed = 0 to 9 do
    let schedule = Online.generate g ~seed ~events:10 ~max_concurrent:3 () in
    let outs =
      List.map (fun root -> Online.run ~channel:faulty ~seed root schedule) roots
    in
    List.iter
      (fun o ->
        Alcotest.(check bool) "order independent" true o.Online.order_independent)
      outs;
    match outs with
    | ref :: rest ->
      List.iter
        (fun o ->
          Alcotest.(check bool) "terminal equal across backends" true
            (bit_identical ref.Online.terminal o.Online.terminal))
        rest
    | [] -> assert false
  done

let test_fib_maintenance () =
  let g = Topology.abilene () in
  let root = make_state g in
  for seed = 0 to 4 do
    let schedule = Online.generate g ~seed ~events:10 ~max_concurrent:2 () in
    let o = Online.run ~channel:faulty ~seed ~fibs:true root schedule in
    Alcotest.(check bool) "per-router FIB updates land on full rebuild" true
      o.Online.fib_consistent
  done;
  (* and directly: update_router order does not matter *)
  let st = Reconfig.fail root (sc g [ 4; 9 ]) in
  let full = Fib.of_protection g st.Reconfig.protection in
  let n = G.num_nodes g in
  let forward = ref (Fib.of_protection g root.Reconfig.protection) in
  for v = 0 to n - 1 do
    forward := Fib.update_router !forward ~router:v st.Reconfig.protection
  done;
  let backward = ref (Fib.of_protection g root.Reconfig.protection) in
  for v = n - 1 downto 0 do
    backward := Fib.update_router !backward ~router:v st.Reconfig.protection
  done;
  Alcotest.(check bool) "ascending order = rebuild" true (Fib.equal !forward full);
  Alcotest.(check bool) "descending order = rebuild" true (Fib.equal !backward full)

(* With an LP-computed plan whose MLU* <= 1, the quiescent MLU after any
   generated schedule (within the f=1 physical budget) obeys Theorem 2.
   f=1 because Abilene has degree-2 PoPs: a 2-physical-failure envelope
   contains disconnecting scenarios, whose virtual demand pushes MLU*
   above 1 at any load. *)
let test_quiescent_mlu_bound () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 3 in
  let tm = Traffic.gravity rng g ~load_factor:0.08 () in
  let pairs, _ = Traffic.commodities tm in
  let base =
    R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs ()
  in
  let f = 1 in
  let cfg =
    {
      (R3_core.Offline.default_config ~f) with
      R3_core.Offline.solve_method = R3_core.Offline.Constraint_gen;
    }
  in
  let srlgs =
    Array.to_list (R3_sim.Scenarios.physical_links g)
    |> List.map (fun e ->
           match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])
  in
  match
    R3_core.Structured.compute cfg g tm
      { R3_core.Structured.srlgs; mlgs = []; k = f }
      (R3_core.Offline.Fixed base)
  with
  | Error m -> Alcotest.failf "precompute failed: %s" m
  | Ok plan ->
    Alcotest.(check bool) "fixture plan is congestion-free" true
      (plan.R3_core.Offline.mlu <= 1.0);
    let root = Reconfig.of_plan plan in
    for seed = 0 to 4 do
      let schedule = Online.generate g ~seed ~events:8 ~max_concurrent:f () in
      let o =
        Online.run ~channel:faulty ~seed ~mlu_bound:plan.R3_core.Offline.mlu
          root schedule
      in
      Alcotest.(check bool) "order independent" true o.Online.order_independent;
      if o.Online.quiescent_mlu > 1.0 +. 1e-9 then
        Alcotest.failf "seed %d: quiescent MLU %.6f breaks the plan bound" seed
          o.Online.quiescent_mlu
    done

let test_stats_and_metrics () =
  let g = Topology.abilene () in
  let root = make_state g in
  let schedule = Online.generate g ~seed:2 ~events:20 ~max_concurrent:3 () in
  let o = Online.run ~channel:faulty ~seed:2 root schedule in
  let s = o.Online.stats in
  Alcotest.(check bool) "duplicates were delivered" true
    (s.Online.deliveries > s.Online.events * G.num_nodes g);
  Alcotest.(check bool) "stale copies ignored" true (s.Online.stale > 0);
  Alcotest.(check bool) "drops were retried" true
    (s.Online.drops > 0 && s.Online.retries = s.Online.drops);
  Alcotest.(check bool) "states are shared across routers" true
    (s.Online.distinct_states < s.Online.deliveries);
  Alcotest.(check bool) "transient peak >= quiescent" true
    (s.Online.transient_mlu_peak >= o.Online.quiescent_mlu -. 1e-12);
  let module M = R3_util.Metrics in
  Alcotest.(check bool) "r3.online.events counted" true
    (M.counter_value "r3.online.events" > 0);
  Alcotest.(check bool) "r3.online.deliveries counted" true
    (M.counter_value "r3.online.deliveries" > 0)

let suite =
  [
    Alcotest.test_case "fail matches directed folds" `Quick
      test_fail_matches_directed_folds;
    Alcotest.test_case "fail is idempotent" `Quick test_fail_idempotent;
    Alcotest.test_case "recover restores pristine bits" `Quick
      test_recover_restores_pristine;
    Alcotest.test_case "recover replays remaining failures" `Quick
      test_recover_replays_remaining;
    Alcotest.test_case "fail folds to canonical bits" `Quick
      test_fail_order_canonical;
    Alcotest.test_case "generate: deterministic, capped, consistent" `Quick
      test_generate_deterministic;
    Alcotest.test_case "ideal channel: one delivery per router" `Quick
      test_ideal_channel_delivers_once;
    Alcotest.test_case "order independence over 120 faulty schedules" `Slow
      test_order_independence_property;
    Alcotest.test_case "terminal states equal across storage backends" `Quick
      test_backends_bit_identical;
    Alcotest.test_case "per-router FIB maintenance" `Quick test_fib_maintenance;
    Alcotest.test_case "quiescent MLU within plan bound (Theorem 2)" `Slow
      test_quiescent_mlu_bound;
    Alcotest.test_case "fault stats and r3.online.* metrics" `Quick
      test_stats_and_metrics;
  ]
