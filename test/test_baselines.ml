(* Tests for the protection baselines of Section 5.1. *)

module G = R3_net.Graph
module Routing = R3_net.Routing
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology
module Ospf = R3_net.Ospf
module B = R3_baselines

let abilene_env ~seed ~load =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:load () in
  let pairs, demands = Traffic.commodities tm in
  let weights = Ospf.unit_weights g in
  let base = Ospf.routing g ~weights ~pairs () in
  (g, weights, pairs, demands, base)

let total_load loads = Array.fold_left ( +. ) 0.0 loads

let test_recon_no_failure_matches_base () =
  let g, weights, pairs, demands, base = abilene_env ~seed:3 ~load:0.3 in
  let o =
    B.Ospf_recon.evaluate g ~weights ~pairs ~demands ()
  in
  let base_loads = Routing.loads g ~demands base in
  Array.iteri
    (fun e l ->
      if Float.abs (l -. base_loads.(e)) > 1e-6 then
        Alcotest.failf "link %d differs: %g vs %g" e l base_loads.(e))
    o.B.Types.loads;
  Alcotest.(check (float 1e-9)) "all delivered" 1.0 o.B.Types.delivered

let test_recon_avoids_failed_links () =
  let g, weights, pairs, demands, _ = abilene_env ~seed:3 ~load:0.3 in
  let failed = G.fail_bidir g [ 0; 5 ] in
  let o = B.Ospf_recon.evaluate g ~failed ~weights ~pairs ~demands () in
  Array.iteri
    (fun e l -> if failed.(e) && l > 1e-9 then Alcotest.failf "load on failed link %d" e)
    o.B.Types.loads

let test_cspf_conserves_traffic () =
  let g, weights, _, demands, base = abilene_env ~seed:7 ~load:0.3 in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "KansasCity") (id "Houston")) in
  let failed = G.fail_bidir g [ e ] in
  let o = B.Cspf_detour.evaluate g ~failed ~weights ~base ~demands () in
  Alcotest.(check (float 1e-9)) "nothing lost (connected)" 1.0 o.B.Types.delivered;
  (* No load left on failed links. *)
  Array.iteri
    (fun l v -> if failed.(l) && v > 1e-9 then Alcotest.failf "load on failed %d" l)
    o.B.Types.loads;
  (* The detour adds load: total link-load cannot shrink. *)
  let base_total = total_load (Routing.loads g ~demands base) in
  Alcotest.(check bool) "detour >= base total" true
    (total_load o.B.Types.loads >= base_total -. 1e-6)

let test_fcp_delivers_when_connected () =
  let g, weights, pairs, demands, _ = abilene_env ~seed:9 ~load:0.3 in
  let id n = G.node_id g n in
  let e1 = Option.get (G.find_link g (id "Chicago") (id "Indianapolis")) in
  let e2 = Option.get (G.find_link g (id "Sunnyvale") (id "Denver")) in
  let failed = G.fail_bidir g [ e1; e2 ] in
  let o = B.Fcp.evaluate g ~failed ~weights ~pairs ~demands () in
  Alcotest.(check (float 1e-6)) "FCP reaches all destinations" 1.0 o.B.Types.delivered;
  Array.iteri
    (fun l v -> if failed.(l) && v > 1e-9 then Alcotest.failf "load on failed %d" l)
    o.B.Types.loads

let test_fcp_drops_partitioned () =
  let g, weights, pairs, demands, _ = abilene_env ~seed:9 ~load:0.3 in
  let id n = G.node_id g n in
  let e1 = Option.get (G.find_link g (id "Seattle") (id "Sunnyvale")) in
  let e2 = Option.get (G.find_link g (id "Seattle") (id "Denver")) in
  let failed = G.fail_bidir g [ e1; e2 ] in
  let o = B.Fcp.evaluate g ~failed ~weights ~pairs ~demands () in
  Alcotest.(check bool) "some demand lost" true (o.B.Types.delivered < 1.0)

let test_path_splicing_normal_equals_slice0 () =
  let g, weights, pairs, demands, _ = abilene_env ~seed:4 ~load:0.3 in
  let failed = G.no_failures g in
  let o = B.Path_splicing.evaluate g ~failed ~weights ~pairs ~demands () in
  Alcotest.(check (float 1e-6)) "no failures: everything arrives" 1.0 o.B.Types.delivered

let test_path_splicing_reroutes () =
  let g, weights, pairs, demands, _ = abilene_env ~seed:4 ~load:0.3 in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "Denver") (id "KansasCity")) in
  let failed = G.fail_bidir g [ e ] in
  let o = B.Path_splicing.evaluate g ~failed ~weights ~pairs ~demands () in
  Alcotest.(check bool)
    (Printf.sprintf "most demand survives (%.3f)" o.B.Types.delivered)
    true
    (o.B.Types.delivered > 0.85);
  Array.iteri
    (fun l v -> if failed.(l) && v > 1e-9 then Alcotest.failf "load on failed %d" l)
    o.B.Types.loads

let test_opt_detour_beats_cspf () =
  let g, weights, _, demands, base = abilene_env ~seed:8 ~load:0.5 in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "Indianapolis") (id "Atlanta")) in
  let failed = G.fail_bidir g [ e ] in
  let cspf = B.Cspf_detour.evaluate g ~failed ~weights ~base ~demands () in
  let cspf_u = B.Types.bottleneck g ~failed cspf in
  match B.Opt_detour.mlu g ~failed ~base ~demands () with
  | Error m -> Alcotest.fail m
  | Ok opt_u ->
    Alcotest.(check bool)
      (Printf.sprintf "opt %.4f <= cspf %.4f" opt_u cspf_u)
      true (opt_u <= cspf_u +. 1e-6)

let test_opt_detour_no_failures_is_base () =
  let g, _, _, demands, base = abilene_env ~seed:8 ~load:0.5 in
  let failed = G.no_failures g in
  match B.Opt_detour.evaluate g ~failed ~base ~demands () with
  | Error m -> Alcotest.fail m
  | Ok o ->
    let base_loads = Routing.loads g ~demands base in
    Array.iteri
      (fun e l ->
        if Float.abs (l -. base_loads.(e)) > 1e-6 then
          Alcotest.failf "link %d: %g vs base %g" e l base_loads.(e))
      o.B.Types.loads

(* Ordering property the paper relies on throughout Figs 3-7:
   opt detour <= any specific detour scheme on the same base. *)
let opt_lower_bound_prop =
  QCheck.Test.make ~count:25 ~name:"opt detour lower-bounds CSPF detour"
    QCheck.(pair (int_bound 500) (int_bound 13))
    (fun (seed, phys) ->
      let g, weights, _, demands, base = abilene_env ~seed ~load:0.4 in
      let phys_links = R3_sim.Scenarios.physical_links g in
      QCheck.assume (phys < Array.length phys_links);
      let scenario =
        R3_sim.Scenario.links (R3_sim.Scenario.of_links g [ phys_links.(phys) ])
      in
      let failed = G.fail_links g scenario in
      let cspf = B.Cspf_detour.evaluate g ~failed ~weights ~base ~demands () in
      match B.Opt_detour.mlu g ~failed ~base ~demands () with
      | Error _ -> false
      | Ok opt_u -> opt_u <= B.Types.bottleneck g ~failed cspf +. 1e-6)

let suite =
  [
    Alcotest.test_case "recon = base without failures" `Quick test_recon_no_failure_matches_base;
    Alcotest.test_case "recon avoids failed links" `Quick test_recon_avoids_failed_links;
    Alcotest.test_case "cspf detour conserves traffic" `Quick test_cspf_conserves_traffic;
    Alcotest.test_case "fcp delivers when connected" `Quick test_fcp_delivers_when_connected;
    Alcotest.test_case "fcp drops partitioned demand" `Quick test_fcp_drops_partitioned;
    Alcotest.test_case "path splicing delivers normally" `Quick test_path_splicing_normal_equals_slice0;
    Alcotest.test_case "path splicing reroutes" `Quick test_path_splicing_reroutes;
    Alcotest.test_case "opt detour beats cspf" `Quick test_opt_detour_beats_cspf;
    Alcotest.test_case "opt detour = base when no failure" `Quick test_opt_detour_no_failures_is_base;
    QCheck_alcotest.to_alcotest opt_lower_bound_prop;
  ]
