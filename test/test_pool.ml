(* The persistent work-stealing executor's contract: deterministic
   results for any pool size (including mid-run resizes), nested
   submission without deadlock, worker-side exception backtraces, and
   bit-identity of the layers that ride on it (sweep, CG) across
   domains in {1, 2, 8}. *)

module Par = R3_util.Parallel
module Pool = R3_util.Pool

let with_domains d f =
  let before = Par.domains () in
  Fun.protect
    ~finally:(fun () -> Par.set_domains before)
    (fun () ->
      Par.set_domains d;
      f ())

(* ---- nested submission ---- *)

let test_nested_no_deadlock () =
  with_domains 4 @@ fun () ->
  (* Recursive splitting: every task submits a subtask and awaits it
     while still running — the help-while-waiting loop must keep making
     progress instead of parking the whole pool. *)
  let rec sum lo hi =
    if hi - lo <= 8 then begin
      let acc = ref 0 in
      for i = lo to hi - 1 do
        acc := !acc + i
      done;
      !acc
    end
    else begin
      let mid = (lo + hi) / 2 in
      let left = Pool.submit (fun () -> sum lo mid) in
      let right = sum mid hi in
      Pool.await left + right
    end
  in
  Alcotest.(check int) "divide and conquer" 499500 (sum 0 1000);
  (* Indexed batches nested inside pool tasks. *)
  let nested =
    Par.init 16 (fun i -> Array.fold_left ( + ) 0 (Par.init 50 (fun j -> i + j)))
  in
  let expected = Array.init 16 (fun i -> (50 * i) + 1225) in
  Alcotest.(check (array int)) "nested batches" expected nested

(* ---- exception + backtrace through futures ---- *)

let[@inline never] deep_raise () = failwith "future boom"

let test_future_exception_backtrace () =
  with_domains 4 @@ fun () ->
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  let fut = Pool.submit (fun () -> deep_raise ()) in
  match Pool.await fut with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "original exception" "future boom" msg;
    let bt = String.lowercase_ascii (Printexc.get_backtrace ()) in
    (* The raising frame lives in this file; a backtrace captured at the
       await re-raise would not mention it. *)
    let has sub =
      let n = String.length sub and m = String.length bt in
      let rec go i = i + n <= m && (String.sub bt i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "raising frame in backtrace: %s" bt)
      true (has "test_pool")

(* ---- resize while idle ---- *)

let test_resize_while_idle () =
  let before = Par.domains () in
  Fun.protect ~finally:(fun () -> Par.set_domains before) @@ fun () ->
  let expected = Array.init 200 (fun i -> (i * 31) mod 101) in
  let batch () = Par.init 200 (fun i -> (i * 31) mod 101) in
  let r0 = Pool.stats () in
  Par.set_domains 3;
  Alcotest.(check (array int)) "batch at 3" expected (batch ());
  (* Pool is idle here; grow... *)
  Par.set_domains 6;
  Alcotest.(check (array int)) "batch at 6" expected (batch ());
  Alcotest.(check int) "workers grown" 5 (Pool.stats ()).Pool.workers;
  (* ...and shrink. The tail workers are unpublished immediately. *)
  Par.set_domains 2;
  Alcotest.(check int) "workers shrunk" 1 (Pool.stats ()).Pool.workers;
  Alcotest.(check (array int)) "batch at 2" expected (batch ());
  let r1 = Pool.stats () in
  Alcotest.(check bool)
    (Printf.sprintf "resizes counted (%d -> %d)" r0.Pool.resizes r1.Pool.resizes)
    true
    (r1.Pool.resizes >= r0.Pool.resizes + 3)

(* ---- seeded stress with uneven task costs ---- *)

let test_stress_uneven_costs () =
  let before = Par.domains () in
  Fun.protect ~finally:(fun () -> Par.set_domains before) @@ fun () ->
  let n = 400 in
  (* Cost per task spans three orders of magnitude, seeded so every run
     and every pool size computes the same floats. *)
  let task i =
    let rng = R3_util.Prng.create ((i * 7919) + 11) in
    let cost = 1 lsl (i mod 11) in
    let acc = ref 0.0 in
    for _ = 1 to cost do
      acc := !acc +. R3_util.Prng.float rng 1.0
    done;
    !acc
  in
  Par.set_domains 1;
  let base = Par.init n task in
  List.iter
    (fun d ->
      Par.set_domains d;
      let got = Par.init n task in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at %d domains" d)
        true (base = got))
    [ 2; 8 ]

let test_chunk_invariance () =
  with_domains 4 @@ fun () ->
  let f i = float_of_int (i * i) /. 7.0 in
  let base = Array.init 333 f in
  List.iter
    (fun chunk ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d" chunk)
        true
        (base = Par.init ~chunk 333 f))
    [ 1; 7; 64; 1000 ]

(* ---- CG bit-identity across pool sizes ---- *)

let plan_exn = function
  | Ok p -> p
  | Error m -> Alcotest.failf "offline solve failed: %s" m

let test_cg_identity_across_domains () =
  let module Offline = R3_core.Offline in
  let module Routing = R3_net.Routing in
  let g = R3_net.Topology.abilene () in
  let rng = R3_util.Prng.create 19 in
  let tm = R3_net.Traffic.gravity rng g ~load_factor:0.2 () in
  let pairs, _ = R3_net.Traffic.commodities tm in
  let base =
    R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs ()
  in
  let cfg =
    { (Offline.default_config ~f:1) with solve_method = Offline.Constraint_gen }
  in
  let run () = plan_exn (Offline.compute cfg g tm (Offline.Fixed base)) in
  let before = Par.domains () in
  Fun.protect ~finally:(fun () -> Par.set_domains before) @@ fun () ->
  Par.set_domains 1;
  let ref_plan = run () in
  List.iter
    (fun d ->
      Par.set_domains d;
      let p = run () in
      Alcotest.(check bool)
        (Printf.sprintf "same MLU at %d domains" d)
        true
        (Float.equal ref_plan.Offline.mlu p.Offline.mlu);
      Alcotest.(check int)
        (Printf.sprintf "same pivots at %d domains" d)
        ref_plan.Offline.lp_pivots p.Offline.lp_pivots;
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical protection at %d domains" d)
        true
        (Routing.to_dense_matrix ref_plan.Offline.protection
        = Routing.to_dense_matrix p.Offline.protection))
    [ 2; 8 ]

(* ---- metrics surface ---- *)

let test_pool_metrics_registered () =
  with_domains 4 @@ fun () ->
  ignore (Par.init 100 (fun i -> i));
  let s = Pool.stats () in
  Alcotest.(check bool) "tasks counted" true (s.Pool.tasks > 0);
  Alcotest.(check bool) "counters non-negative" true
    (s.Pool.steals >= 0 && s.Pool.parks >= 0 && s.Pool.max_queue_depth >= 0
   && s.Pool.resizes >= 0 && s.Pool.workers >= 0);
  Alcotest.(check bool) "r3.pool.tasks exported" true
    (R3_util.Metrics.counter_value "r3.pool.tasks" > 0)

let suite =
  [
    Alcotest.test_case "nested submission no deadlock" `Quick test_nested_no_deadlock;
    Alcotest.test_case "future exception + backtrace" `Quick
      test_future_exception_backtrace;
    Alcotest.test_case "resize while idle" `Quick test_resize_while_idle;
    Alcotest.test_case "stress: uneven costs, domains 1/2/8" `Quick
      test_stress_uneven_costs;
    Alcotest.test_case "chunk size invariance" `Quick test_chunk_invariance;
    Alcotest.test_case "CG identity, domains 1/2/8" `Slow
      test_cg_identity_across_domains;
    Alcotest.test_case "pool metrics registered" `Quick test_pool_metrics_registered;
  ]
