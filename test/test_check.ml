(* Tests for the differential fuzz subsystem (lib/check): generator
   determinism, case serialization and loader error paths, the shrinker,
   and a smoke pass over the oracle registry. The heavier sweep lives in
   the @fuzz-smoke alias (bin/dune); committed-corpus replay is wired
   into runtest from test/dune. *)

module Case = R3_check.Case
module Gen = R3_check.Gen
module Oracle = R3_check.Oracle
module Shrink = R3_check.Shrink

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.case ~oracle:"lp-agree" ~seed in
      let b = Gen.case ~oracle:"lp-agree" ~seed in
      Alcotest.(check string) "same seed, same case" (Case.digest a)
        (Case.digest b);
      Alcotest.(check bool) "generated case is valid" true (Case.valid a))
    [ 1; 7; 42; 123456789 ];
  let a = Gen.case ~oracle:"lp-agree" ~seed:1 in
  let b = Gen.case ~oracle:"lp-agree" ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true
    (Case.digest a <> Case.digest b)

let test_case_json_roundtrip () =
  List.iter
    (fun seed ->
      let c = Gen.case ~oracle:"online-vs-batch" ~seed in
      match Case.of_json (Case.to_json c) with
      | Error m -> Alcotest.failf "round-trip rejected: %s" m
      | Ok c' ->
        Alcotest.(check string) "digest survives JSON" (Case.digest c)
          (Case.digest c'))
    [ 3; 5; 99 ]

let test_case_load_errors () =
  (match Case.load "/nonexistent/r3-no-such-case.json" with
  | Ok _ -> Alcotest.fail "load of a missing file succeeded"
  | Error _ -> ());
  let tmp = Filename.temp_file "r3check-test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let write s =
        let oc = open_out tmp in
        output_string oc s;
        close_out oc
      in
      write "{ not json";
      (match Case.load tmp with
      | Ok _ -> Alcotest.fail "load of malformed JSON succeeded"
      | Error _ -> ());
      write "{\"format\": 1}";
      match Case.load tmp with
      | Ok _ -> Alcotest.fail "load of an incomplete case succeeded"
      | Error _ -> ())

let test_save_load_roundtrip () =
  let c = Gen.case ~oracle:"reorder-independence" ~seed:31 in
  let tmp = Filename.temp_file "r3check-test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Case.save tmp c;
      match Case.load tmp with
      | Error m -> Alcotest.failf "load back: %s" m
      | Ok c' ->
        Alcotest.(check string) "digest survives disk" (Case.digest c)
          (Case.digest c'))

let test_shrink_minimizes () =
  (* Synthetic predicate: a case "fails" while its schedule is nonempty.
     The shrinker must reach the one-event fixpoint without ever keeping
     an invalid candidate. *)
  let c = Gen.case ~oracle:"online-vs-batch" ~seed:12 in
  Alcotest.(check bool) "seed case has several events" true
    (List.length c.Case.events >= 2);
  let fails c = Case.valid c && List.length c.Case.events >= 1 in
  let m = Shrink.minimize ~fails c in
  Alcotest.(check bool) "minimized case still fails" true (fails m);
  Alcotest.(check int) "schedule shrunk to one event" 1
    (List.length m.Case.events);
  Alcotest.(check bool) "minimized case is valid" true (Case.valid m);
  Alcotest.(check bool) "no larger than the input" true
    (Array.length m.Case.links <= Array.length c.Case.links
    && Array.length m.Case.demands <= Array.length c.Case.demands)

let test_registry_consistency () =
  let names = Oracle.names in
  Alcotest.(check int) "names match registry" (List.length Oracle.all)
    (List.length names);
  Alcotest.(check int) "names are distinct" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n ->
      match Oracle.find n with
      | Some o -> Alcotest.(check string) "find returns the named oracle" n o.Oracle.name
      | None -> Alcotest.failf "registered oracle %s not found" n)
    names;
  Alcotest.(check bool) "unknown name rejected" true
    (Oracle.find "no-such-oracle" = None)

let test_oracles_pass_on_generated_cases () =
  List.iter
    (fun o ->
      let case = Gen.case ~oracle:o.Oracle.name ~seed:202 in
      match Oracle.run o case with
      | Ok () -> ()
      | Error m -> Alcotest.failf "oracle %s failed: %s" o.Oracle.name m)
    Oracle.all

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_gen_deterministic;
    Alcotest.test_case "case JSON round-trip" `Quick test_case_json_roundtrip;
    Alcotest.test_case "case load error paths" `Quick test_case_load_errors;
    Alcotest.test_case "case save/load round-trip" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "shrinker reaches fixpoint" `Quick test_shrink_minimizes;
    Alcotest.test_case "oracle registry consistency" `Quick
      test_registry_consistency;
    Alcotest.test_case "oracles pass on generated cases" `Slow
      test_oracles_pass_on_generated_cases;
  ]
