(* The sweep engine's contract: bit-identical to the naive per-scenario
   path, for any domain count, cold or warm cache, in memory or through
   the disk round-trip. *)

module G = R3_net.Graph
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Sc = R3_sim.Scenario
module S = R3_sim.Scenarios
module E = R3_sim.Eval
module Sweep = R3_sim.Sweep
module Mcf_cache = R3_sim.Mcf_cache

let abilene_env ?(demands_scale = 1.0) () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 77 in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, demands = Traffic.commodities tm in
  let demands = Array.map (fun d -> d *. demands_scale) demands in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~weights ~pairs () in
  let cfg =
    { (R3_core.Offline.default_config ~f:2) with
      solve_method = R3_core.Offline.Constraint_gen }
  in
  let srlgs =
    Array.to_list (S.physical_links g)
    |> List.map (fun e ->
           match G.reverse_link g e with Some r -> [ e; r ] | None -> [ e ])
  in
  let plan =
    match
      R3_core.Structured.compute cfg g tm
        { R3_core.Structured.srlgs; mlgs = []; k = 2 }
        (R3_core.Offline.Fixed base)
    with
    | Ok p -> p
    | Error m -> Alcotest.failf "plan: %s" m
  in
  (g, E.make_env g ~weights ~pairs ~demands ~ospf_r3:plan ())

let env = lazy (abilene_env ())

(* The naive reference: one pristine-plan rebuild per (algorithm, scenario),
   computed through the single-scenario API. *)
let naive_curves env ~algorithms ~metric scenarios =
  let values = List.map (fun _ -> ref []) algorithms in
  List.iter
    (fun sc ->
      let opt = match metric with `Ratio -> E.optimal env sc | `Bottleneck -> 1.0 in
      List.iter2
        (fun alg acc ->
          let v = E.scenario_bottleneck env alg sc in
          let v = match metric with `Ratio -> if opt > 0.0 then v /. opt else nan | `Bottleneck -> v in
          if not (Float.is_nan v) then acc := v :: !acc)
        algorithms values)
    scenarios;
  values
  |> List.map (fun acc ->
         let a = Array.of_list !acc in
         Array.sort Float.compare a;
         a)
  |> Array.of_list

let check_bits name (a : float array array) (b : float array array) =
  Alcotest.(check int) (name ^ " series") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      Alcotest.(check int) (Printf.sprintf "%s[%d] length" name i) (Array.length x)
        (Array.length y);
      Array.iteri
        (fun j u ->
          if not (Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float y.(j)))
          then Alcotest.failf "%s[%d][%d]: %h <> %h" name i j u y.(j))
        x)
    a

let r3_algorithms = E.[ Ospf_r3; Ospf_cspf_detour ]

let test_bottleneck_identity_k12 () =
  let g, env = Lazy.force env in
  List.iter
    (fun k ->
      let scenarios = S.enumerate g ~k in
      let fast = Sweep.curves ~metric:`Bottleneck ~domains:1 env ~algorithms:r3_algorithms scenarios in
      let slow = naive_curves env ~algorithms:r3_algorithms ~metric:`Bottleneck scenarios in
      check_bits (Printf.sprintf "k=%d bottleneck" k) slow fast)
    [ 1; 2 ]

let test_ratio_identity_sampled_k3 () =
  let g, env = Lazy.force env in
  let scenarios = S.sample g ~k:3 ~count:6 ~seed:9 in
  let fast = Sweep.curves ~domains:1 env ~algorithms:r3_algorithms scenarios in
  let slow = naive_curves env ~algorithms:r3_algorithms ~metric:`Ratio scenarios in
  check_bits "sampled k=3 ratio" slow fast

let test_domains_agree () =
  let g, env = Lazy.force env in
  let scenarios = S.enumerate g ~k:1 @ S.enumerate g ~k:2 in
  let one = Sweep.run ~metric:`Bottleneck ~domains:1 env ~algorithms:r3_algorithms scenarios in
  let check_against label many =
    check_bits label one.Sweep.curves many.Sweep.curves;
    (* worst witnesses agree, scenario and value *)
    Array.iteri
      (fun i w1 ->
        match (w1, many.Sweep.worst.(i)) with
        | Some (s1, v1), Some (s2, v2) ->
          Alcotest.(check bool) "worst scenario" true (Sc.equal s1 s2);
          Alcotest.(check (float 0.0)) "worst value" v1 v2
        | None, None -> ()
        | _ -> Alcotest.fail "worst witness presence differs")
      one.Sweep.worst
  in
  Alcotest.(check int) "scenario count" (List.length scenarios) one.Sweep.scenario_count;
  (* dynamic pool fan-out across the issue's domain ladder... *)
  List.iter
    (fun d ->
      check_against
        (Printf.sprintf "1 vs %d domains" d)
        (Sweep.run ~metric:`Bottleneck ~domains:d env ~algorithms:r3_algorithms
           scenarios))
    [ 2; 4; 8 ];
  (* ...and the retired fork/join baseline arm must match too *)
  check_against "1 vs fork/join baseline"
    (Sweep.run ~metric:`Bottleneck ~domains:4 ~fanout:`Forkjoin env
       ~algorithms:r3_algorithms scenarios)

let test_cache_warm_identical () =
  let g, env = Lazy.force env in
  let scenarios = S.enumerate g ~k:1 in
  let cache = E.mcf_cache env in
  let cold = Sweep.run ~cache env ~algorithms:r3_algorithms scenarios in
  let warm = Sweep.run ~cache env ~algorithms:r3_algorithms scenarios in
  check_bits "cold vs warm" cold.Sweep.curves warm.Sweep.curves;
  Alcotest.(check int) "cold misses" (List.length scenarios) cold.Sweep.mcf_misses;
  Alcotest.(check int) "warm hits" (List.length scenarios) warm.Sweep.mcf_hits;
  Alcotest.(check int) "warm misses" 0 warm.Sweep.mcf_misses

let test_cache_disk_roundtrip () =
  let g, env = Lazy.force env in
  let scenarios = S.enumerate g ~k:1 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "r3-sweep-cache-test" in
  (* stale files from earlier runs would pre-warm the "cold" side *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let disk () = E.mcf_cache ~dir env in
  let c1 = disk () in
  let cold = Sweep.run ~cache:c1 env ~algorithms:r3_algorithms scenarios in
  (* a fresh cache object reloads the flushed file *)
  let c2 = disk () in
  Alcotest.(check int) "entries reloaded" (List.length scenarios) (Mcf_cache.size c2);
  Alcotest.(check string) "same context" (Mcf_cache.context c1) (Mcf_cache.context c2);
  let warm = Sweep.run ~cache:c2 env ~algorithms:r3_algorithms scenarios in
  check_bits "disk round-trip" cold.Sweep.curves warm.Sweep.curves;
  Alcotest.(check int) "served from disk" (List.length scenarios) warm.Sweep.mcf_hits;
  (* exact float round-trip, entry by entry *)
  List.iter
    (fun sc ->
      match (Mcf_cache.find c1 sc, Mcf_cache.find c2 sc) with
      | Some a, Some b ->
        if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
          Alcotest.failf "entry %s: %h <> %h" (Sc.key sc) a b
      | _ -> Alcotest.failf "entry %s missing" (Sc.key sc))
    scenarios

(* Direct cache behaviors: atomic flush discipline and the NaN dirty-bit
   regression (value equality must be bit-level, or NaN entries re-dirty
   the table on every add and force a rewrite per sweep). *)

let scratch_cache_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let test_cache_flush_atomic () =
  let g = Topology.abilene () in
  let pairs = [| (0, 1) |] and demands = [| 1.0 |] in
  (* nested path: exercises the recursive mkdir *)
  let dir =
    scratch_cache_dir (Filename.concat "r3-cache-flush-test" "nested")
  in
  let fresh () = Mcf_cache.create ~dir ~graph:g ~pairs ~demands ~epsilon:0.05 () in
  let c = fresh () in
  let sc = Sc.of_links g [ (S.physical_links g).(0) ] in
  Mcf_cache.add c sc 1.25;
  Mcf_cache.flush c;
  let files = Sys.readdir dir in
  Array.iter
    (fun f ->
      Alcotest.(check bool) ("no tmp litter: " ^ f) false
        (Filename.check_suffix f ".tmp"))
    files;
  Alcotest.(check int) "exactly the cache file" 1 (Array.length files);
  Alcotest.(check bool) "reloaded bit-exact" true (Mcf_cache.find (fresh ()) sc = Some 1.25);
  (* clean table: a second flush must not rewrite the file *)
  let path = Filename.concat dir files.(0) in
  Sys.remove path;
  Mcf_cache.flush c;
  Alcotest.(check bool) "clean cache does not rewrite" false (Sys.file_exists path)

let test_cache_nan_dirty_regression () =
  let g = Topology.abilene () in
  let pairs = [| (0, 1) |] and demands = [| 1.0 |] in
  let dir = scratch_cache_dir "r3-cache-nan-test" in
  let fresh () = Mcf_cache.create ~dir ~graph:g ~pairs ~demands ~epsilon:0.05 () in
  let c = fresh () in
  let sc = Sc.of_links g [ (S.physical_links g).(0) ] in
  Mcf_cache.add c sc Float.nan;
  Mcf_cache.flush c;
  let files = Sys.readdir dir in
  Alcotest.(check int) "NaN entry flushed" 1 (Array.length files);
  let path = Filename.concat dir files.(0) in
  Sys.remove path;
  (* Re-adding the identical NaN must be a no-op: under [=] it would look
     unequal to itself, re-dirty the table, and rewrite the file. *)
  Mcf_cache.add c sc Float.nan;
  Mcf_cache.flush c;
  Alcotest.(check bool) "identical NaN re-add stays clean" false
    (Sys.file_exists path);
  (* and the NaN value itself survives a disk round-trip as NaN *)
  Mcf_cache.add c sc 2.0;
  Mcf_cache.add c sc Float.nan;
  Mcf_cache.flush c;
  (match Mcf_cache.find (fresh ()) sc with
  | Some v -> Alcotest.(check bool) "NaN reloads as NaN" true (Float.is_nan v)
  | None -> Alcotest.fail "NaN entry missing after reload")

let test_undefined_ratios_counted () =
  (* Zero demand makes the optimum 0 on every scenario: every ratio is
     undefined, none may leak into the curves, and the count must say so. *)
  let g, env = abilene_env ~demands_scale:0.0 () in
  let scenarios = S.enumerate g ~k:1 in
  let s = Sweep.run env ~algorithms:r3_algorithms scenarios in
  Array.iteri
    (fun i c ->
      Alcotest.(check int) "empty curve" 0 (Array.length c);
      Alcotest.(check int) "all undefined" (List.length scenarios) s.Sweep.undefined.(i);
      Alcotest.(check bool) "no witness" true (s.Sweep.worst.(i) = None))
    s.Sweep.curves;
  (* the single-scenario API agrees *)
  let r = E.evaluate env E.Ospf_r3 (List.hd scenarios) in
  Alcotest.(check bool) "evaluate ratio None" true (r.E.ratio = None)

let test_scenario_canonical () =
  let g = Topology.abilene () in
  let phys = S.physical_links g in
  let e = phys.(3) in
  let r = Option.get (G.reverse_link g e) in
  let a = Sc.of_links g [ e ] and b = Sc.of_links g [ r; e; e ] in
  Alcotest.(check bool) "reverse+dup folded" true (Sc.equal a b);
  Alcotest.(check int) "size" 1 (Sc.size a);
  Alcotest.(check string) "key" (Sc.key a) (Sc.key b);
  let c = Sc.of_links g [ phys.(5); phys.(3) ] in
  Alcotest.(check bool) "prefix sorts first" true (Sc.compare a c < 0);
  Alcotest.(check bool) "empty" true (Sc.is_empty (Sc.of_links g []))

(* The deprecated wrappers must keep producing what the new API produces. *)
module Legacy = struct
  [@@@ocaml.alert "-deprecated"]

  let expand = S.expand
  let all_k = S.all_k
  let sample_k = S.sample_k
  let sorted_curves = E.sorted_curves
end

let test_legacy_wrappers_agree () =
  let legacy_expand = Legacy.expand in
  let legacy_all_k = Legacy.all_k in
  let legacy_sample_k = Legacy.sample_k in
  let legacy_sorted_curves = Legacy.sorted_curves in
  let g, env = Lazy.force env in
  let phys = S.physical_links g in
  Alcotest.(check (list int)) "expand"
    (Sc.links (Sc.of_links g [ phys.(2) ]))
    (legacy_expand g [ phys.(2) ]);
  Alcotest.(check int) "all_k count"
    (List.length (S.enumerate g ~k:2))
    (List.length (legacy_all_k g ~k:2));
  List.iter2
    (fun sc raw ->
      Alcotest.(check (list int)) "sample_k draws" (Sc.links sc) raw)
    (S.sample g ~k:2 ~count:10 ~seed:3)
    (legacy_sample_k g ~k:2 ~count:10 ~seed:3);
  let scenarios = S.enumerate g ~k:1 in
  let legacy =
    legacy_sorted_curves env ~algorithms:r3_algorithms
      ~scenarios:(List.map Sc.links scenarios) ~metric:`Bottleneck ()
  in
  check_bits "sorted_curves"
    (Sweep.curves ~metric:`Bottleneck env ~algorithms:r3_algorithms scenarios)
    legacy

let suite =
  [
    Alcotest.test_case "scenario canonical form" `Quick test_scenario_canonical;
    Alcotest.test_case "bottleneck identity k=1,2" `Slow test_bottleneck_identity_k12;
    Alcotest.test_case "ratio identity sampled k=3" `Slow test_ratio_identity_sampled_k3;
    Alcotest.test_case "domain count independence" `Slow test_domains_agree;
    Alcotest.test_case "mcf cache warm = cold" `Slow test_cache_warm_identical;
    Alcotest.test_case "mcf cache disk round-trip" `Slow test_cache_disk_roundtrip;
    Alcotest.test_case "mcf cache atomic flush" `Quick test_cache_flush_atomic;
    Alcotest.test_case "mcf cache NaN dirty bit" `Quick
      test_cache_nan_dirty_regression;
    Alcotest.test_case "undefined ratios counted" `Quick test_undefined_ratios_counted;
    Alcotest.test_case "legacy wrappers agree" `Quick test_legacy_wrappers_agree;
  ]
