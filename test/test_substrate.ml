(* Tests for the sparse routing-state substrate: the shared Rowvec
   kernels and the contract that the Dense, Sparse, and Auto storage
   backends of Routing.t are bit-identical under failure folding. *)

module Rowvec = R3_util.Rowvec
module Prng = R3_util.Prng
module G = R3_net.Graph
module Routing = R3_net.Routing
module Topology = R3_net.Topology
module Traffic = R3_net.Traffic
module Spf = R3_net.Spf
module Reconfig = R3_core.Reconfig
module Scenario = R3_core.Scenario

(* Physical (bidirectional) failure of one link as a singleton delta. *)
let fail_bidir g st e = Reconfig.fail st (Scenario.of_links g [ e ])

let check_f name expected got =
  Alcotest.(check (float 0.0)) name expected got

(* ---- Rowvec kernels ---- *)

let test_rowvec_basics () =
  let r = Rowvec.create () in
  Alcotest.(check int) "empty nnz" 0 (Rowvec.nnz r);
  check_f "empty get" 0.0 (Rowvec.get r 3);
  (* out-of-order insertion, then overwrite and delete-by-zero *)
  Rowvec.set r 5 2.0;
  Rowvec.set r 1 1.0;
  Rowvec.set r 9 3.0;
  Rowvec.set r 5 2.5;
  Alcotest.(check int) "nnz after sets" 3 (Rowvec.nnz r);
  check_f "get 5" 2.5 (Rowvec.get r 5);
  Rowvec.set r 1 0.0;
  Alcotest.(check int) "exact zero removes" 2 (Rowvec.nnz r);
  Rowvec.clear r 9;
  Alcotest.(check int) "clear removes" 1 (Rowvec.nnz r);
  (* ascending iteration order *)
  let r = Rowvec.of_pairs [| 4; 0; 4; 2 |] [| 1.0; 2.0; 0.5; 3.0 |] in
  let order = ref [] in
  Rowvec.iter (fun j x -> order := (j, x) :: !order) r;
  Alcotest.(check (list (pair int (float 0.0))))
    "of_pairs sums duplicates, sorted"
    [ (0, 2.0); (2, 3.0); (4, 1.5) ]
    (List.rev !order)

let test_rowvec_dense_round_trip () =
  (* Exact-zero drop keeps denormals and negatives, drops both zeros. *)
  let a = [| 0.0; 1e-300; -3.5; -0.0; 2.0; 0.0 |] in
  let r = Rowvec.of_dense a in
  Alcotest.(check int) "nnz keeps tiny values" 3 (Rowvec.nnz r);
  let back = Rowvec.to_dense (Array.length a) r in
  (* -0.0 normalizes to +0.0 through the sparse representation *)
  Alcotest.(check bool) "round trip (zeros normalized)" true
    (back = [| 0.0; 1e-300; -3.5; 0.0; 2.0; 0.0 |]);
  (* full row: every entry stored *)
  let full = Array.init 16 (fun i -> float_of_int (i + 1)) in
  let rf = Rowvec.of_dense full in
  Alcotest.(check int) "full row nnz" 16 (Rowvec.nnz rf);
  Alcotest.(check bool) "full round trip" true (Rowvec.to_dense 16 rf = full);
  (* nonzero drop tolerance is strict: |x| > drop keeps *)
  let rd = Rowvec.of_dense ~drop:1e-9 [| 1e-9; 2e-9; -1e-9 |] in
  Alcotest.(check int) "drop strict inequality" 1 (Rowvec.nnz rd)

let test_rowvec_axpy_aliasing () =
  (* y := y - factor * x with y == x must behave as scaling. *)
  let y = Rowvec.of_pairs [| 0; 3; 7 |] [| 1.0; 2.0; 4.0 |] in
  Rowvec.axpy ~y ~x:y 0.5;
  check_f "aliased axpy 0" 0.5 (Rowvec.get y 0);
  check_f "aliased axpy 3" 1.0 (Rowvec.get y 3);
  check_f "aliased axpy 7" 2.0 (Rowvec.get y 7);
  (* exact cancellation drops entries *)
  let y = Rowvec.of_pairs [| 1; 2 |] [| 3.0; 5.0 |] in
  let x = Rowvec.of_pairs [| 1 |] [| 3.0 |] in
  Rowvec.axpy ~y ~x 1.0;
  Alcotest.(check int) "cancelled entry dropped" 1 (Rowvec.nnz y);
  check_f "surviving entry" 5.0 (Rowvec.get y 2)

let test_rowvec_scatter_and_dot () =
  let r = Rowvec.of_pairs [| 1; 4 |] [| 2.0; -1.0 |] in
  let into = [| 10.0; 10.0; 10.0; 10.0; 10.0 |] in
  Rowvec.scatter_add ~scale:2.0 r ~into;
  Alcotest.(check bool) "scatter_add" true
    (into = [| 10.0; 14.0; 10.0; 10.0; 8.0 |]);
  check_f "dot" ((2.0 *. 14.0) +. (-1.0 *. 8.0)) (Rowvec.dot r into)

let test_rowvec_merged_matches_dense () =
  let rng = Prng.create 42 in
  let width = 12 in
  for _ = 1 to 200 do
    let rand_dense () =
      Array.init width (fun _ ->
          if Prng.int rng 3 = 0 then 0.0 else Prng.float rng 1.0)
    in
    let yd = rand_dense () and xd = rand_dense () in
    let skip = Prng.int rng width in
    let factor = Prng.float rng 2.0 in
    let y = Rowvec.of_dense yd and x = Rowvec.of_dense xd in
    let got = Rowvec.to_dense width (Rowvec.merged ~skip ~y ~x factor) in
    (* reference: dense in-place update, entry [skip] zeroed *)
    let expect = Array.copy yd in
    Array.iteri
      (fun j v -> if v <> 0.0 then expect.(j) <- expect.(j) +. (factor *. v))
      xd;
    expect.(skip) <- 0.0;
    Array.iteri
      (fun j e ->
        if Int64.bits_of_float got.(j) <> Int64.bits_of_float (e +. 0.0) then
          Alcotest.failf "merged bit mismatch at %d: %h vs %h" j got.(j) e)
      expect
  done

(* ---- backend bit-identity under failure folding ---- *)

(* Same synthetic protection shape as the reconfig bench: the SPF detour
   path around each link, or the self row when the failure disconnects. *)
let synthetic_protection g ~backend =
  let weights = R3_net.Ospf.unit_weights g in
  let m = G.num_links g in
  let p =
    Routing.create ~backend g
      ~pairs:(Array.init m (fun e -> (G.src g e, G.dst g e)))
  in
  for l = 0 to m - 1 do
    let failed = G.fail_links g [ l ] in
    match
      Spf.shortest_path g ~failed ~weights ~src:(G.src g l) ~dst:(G.dst g l) ()
    with
    | Some path -> List.iter (fun e -> Routing.set p l e 1.0) path
    | None -> Routing.set p l l 1.0
  done;
  p

let make_state g ~backend ~seed =
  let rng = Prng.create seed in
  let tm = Traffic.gravity rng g ~load_factor:0.3 () in
  let pairs, demands = Traffic.commodities tm in
  let weights = R3_net.Ospf.unit_weights g in
  let base = R3_net.Ospf.routing g ~backend ~weights ~pairs () in
  let protection = synthetic_protection g ~backend in
  Reconfig.make g ~pairs ~demands ~base ~protection

let backends = Routing.Backend.[ Dense; Sparse; Auto ]

(* Randomized failure sequences: after every step, all three backends
   must be bit-identical, and folding the whole sequence with
   [apply_failures] must equal the step-by-step fold. *)
let check_backend_identity g ~seed ~rounds ~max_fail =
  let states = List.map (fun b -> make_state g ~backend:b ~seed) backends in
  let rng = Prng.create (seed + 1) in
  let m = G.num_links g in
  for round = 1 to rounds do
    let nfail = 1 + Prng.int rng max_fail in
    let links =
      List.init nfail (fun _ -> (Prng.int rng m, Prng.int rng 2 = 0))
    in
    let fold st =
      List.fold_left
        (fun st (e, bidir) ->
          if bidir then fail_bidir g st e else Reconfig.apply_failures st [ e ])
        st links
    in
    let stepped = List.map fold states in
    let reference = List.hd stepped in
    List.iteri
      (fun i st ->
        if not (Reconfig.states_bit_identical reference st) then
          Alcotest.failf "round %d: backend #%d diverged from dense" round i)
      stepped;
    (* fold equivalence on the plain (unidirectional) sequence *)
    let plain = List.map fst links in
    let folded = List.map (fun st -> Reconfig.apply_failures st plain) states in
    let ref_folded =
      List.fold_left
        (fun st e -> Reconfig.apply_failures st [ e ])
        (List.hd states) plain
    in
    List.iteri
      (fun i st ->
        if not (Reconfig.states_bit_identical ref_folded st) then
          Alcotest.failf "round %d: apply_failures backend #%d diverged" round i)
      folded
  done

let test_backend_identity_abilene () =
  check_backend_identity (Topology.abilene ()) ~seed:3 ~rounds:12 ~max_fail:3

let test_backend_identity_random () =
  let g =
    Topology.random ~seed:17 ~nodes:16 ~undirected_links:30
      ~capacities:[ (10.0, 0.5); (40.0, 0.5) ]
      ()
  in
  check_backend_identity g ~seed:5 ~rounds:8 ~max_fail:4

(* Mutating a routing after a copy-on-write fold must not leak into the
   parent or sibling states (payload sharing stays invisible). *)
let test_cow_isolation () =
  let g = Topology.abilene () in
  let st = make_state g ~backend:Routing.Backend.Sparse ~seed:9 in
  let st_d = make_state g ~backend:Routing.Backend.Dense ~seed:9 in
  let before = Routing.to_dense_matrix st.Reconfig.base in
  let child = fail_bidir g st 0 in
  let child_d = fail_bidir g st_d 0 in
  Alcotest.(check bool) "dense/sparse children agree" true
    (Reconfig.states_bit_identical child_d child);
  (* parent unchanged by the fold *)
  Alcotest.(check bool) "parent base intact" true
    (Routing.to_dense_matrix st.Reconfig.base = before);
  (* writing into the child must not corrupt the parent... *)
  Routing.set child.Reconfig.base 0 1 0.123;
  Alcotest.(check bool) "parent isolated from child writes" true
    (Routing.to_dense_matrix st.Reconfig.base = before);
  (* ...and writing into the parent must not corrupt another child *)
  let child2 = fail_bidir g st 0 in
  Routing.set st.Reconfig.base 0 2 0.456;
  Alcotest.(check bool) "children isolated from parent writes" true
    (Reconfig.states_bit_identical child_d child2)

(* Stepping the same root state from several domains at once (the sweep
   engine's access pattern) must be race-free: the fold seals the parent
   with an atomic generation bump and the column support index is
   published atomically once fully built, so every worker computes the
   same states a sequential run does. *)
let test_parallel_fold_from_shared_root () =
  let g = Topology.abilene () in
  let m = G.num_links g in
  let mk () = make_state g ~backend:Routing.Backend.Sparse ~seed:21 in
  let rng = Prng.create 22 in
  let seqs =
    Array.init 24 (fun _ -> List.init 3 (fun _ -> Prng.int rng m))
  in
  let fold_all st = Array.map (List.fold_left (fail_bidir g) st) seqs in
  let expected = fold_all (mk ()) in
  (* A fresh root, shared by all workers. *)
  let root = mk () in
  let got =
    R3_util.Parallel.map ~domains:4
      (fun links -> List.fold_left (fail_bidir g) root links)
      seqs
  in
  Array.iteri
    (fun i want ->
      if not (Reconfig.states_bit_identical want got.(i)) then
        Alcotest.failf "parallel fold %d diverged from sequential" i)
    expected

(* A failure chain longer than the overlay cap exercises index
   compaction (the child drops the inherited index and rebuilds from its
   own rows); results must stay bit-identical to the dense full scan. *)
let test_long_chain_identity () =
  let g =
    Topology.random ~seed:23 ~nodes:16 ~undirected_links:30
      ~capacities:[ (10.0, 1.0) ]
      ()
  in
  let m = G.num_links g in
  let rng = Prng.create 24 in
  let links = List.init 24 (fun _ -> Prng.int rng m) in
  let final =
    List.map
      (fun b ->
        List.fold_left
          (fun st e -> Reconfig.apply_failures st [ e ])
          (make_state g ~backend:b ~seed:11)
          links)
      backends
  in
  let reference = List.hd final in
  List.iteri
    (fun i st ->
      if not (Reconfig.states_bit_identical reference st) then
        Alcotest.failf "long chain: backend #%d diverged from dense" (i + 1))
    (List.tl final)

(* Auto backend flips a row to dense storage once it outgrows the nnz
   ratio; values must be unaffected. *)
let test_auto_densifies () =
  let g = Topology.abilene () in
  let m = G.num_links g in
  let pairs = [| (0, 5) |] in
  let auto = Routing.create ~backend:Routing.Backend.Auto g ~pairs in
  let dense = Routing.create ~backend:Routing.Backend.Dense g ~pairs in
  for e = 0 to m - 1 do
    let x = 1.0 /. float_of_int (e + 2) in
    Routing.set auto 0 e x;
    Routing.set dense 0 e x
  done;
  Alcotest.(check int) "auto row flipped to dense" 1 (Routing.dense_rows auto);
  Alcotest.(check bool) "auto values match dense" true
    (Routing.row_dense auto 0 = Routing.row_dense dense 0)

let suite =
  [
    Alcotest.test_case "rowvec basics" `Quick test_rowvec_basics;
    Alcotest.test_case "rowvec dense round trip" `Quick
      test_rowvec_dense_round_trip;
    Alcotest.test_case "rowvec axpy aliasing" `Quick test_rowvec_axpy_aliasing;
    Alcotest.test_case "rowvec scatter and dot" `Quick
      test_rowvec_scatter_and_dot;
    Alcotest.test_case "rowvec merged matches dense" `Quick
      test_rowvec_merged_matches_dense;
    Alcotest.test_case "backend bit-identity abilene" `Quick
      test_backend_identity_abilene;
    Alcotest.test_case "backend bit-identity random" `Quick
      test_backend_identity_random;
    Alcotest.test_case "cow isolation" `Quick test_cow_isolation;
    Alcotest.test_case "parallel fold from shared root" `Quick
      test_parallel_fold_from_shared_root;
    Alcotest.test_case "long chain identity" `Quick test_long_chain_identity;
    Alcotest.test_case "auto densifies" `Quick test_auto_densifies;
  ]
