(* Tests for the util substrate: PRNG determinism and distributions,
   statistics helpers. *)

module Prng = R3_util.Prng
module Stats = R3_util.Stats

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.bits a) (Prng.bits b)
  done;
  let c = Prng.create 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits a <> Prng.bits c then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_copy_and_split () =
  let a = Prng.create 9 in
  ignore (Prng.bits a);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.bits a) (Prng.bits b);
  let s1 = Prng.split a in
  let s2 = Prng.split a in
  Alcotest.(check bool) "splits independent" true (Prng.bits s1 <> Prng.bits s2)

let test_prng_int_bounds () =
  let rng = Prng.create 10 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of bounds: %d" v
  done;
  (try
     ignore (Prng.int rng 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_prng_float_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of range: %g" v
  done

let test_prng_uniformity () =
  let rng = Prng.create 12 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if Float.abs (frac -. 0.1) > 0.02 then Alcotest.failf "skewed bucket: %g" frac)
    buckets

let test_prng_shuffle_permutes () =
  let rng = Prng.create 13 in
  let arr = Array.init 50 (fun i -> i) in
  let orig = Array.copy arr in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = orig);
  Alcotest.(check bool) "actually shuffled" true (arr <> orig)

let test_prng_sample_distinct () =
  let rng = Prng.create 14 in
  let arr = Array.init 30 (fun i -> i) in
  let s = Prng.sample rng 10 arr in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.to_list s |> List.sort_uniq Int.compare in
  Alcotest.(check int) "distinct" 10 (List.length sorted)

(* Sampling and shuffling must be deterministic functions of the
   generator state: a copied generator replays the exact draw. The fuzz
   oracles (lib/check) lean on this to reproduce cases from a seed. *)
let test_prng_sample_copy_determinism () =
  let rng = Prng.create 77 in
  ignore (Prng.bits rng);
  let twin = Prng.copy rng in
  let arr = Array.init 40 (fun i -> i * 3) in
  Alcotest.(check (array int))
    "sample replays on a copy"
    (Prng.sample rng 12 arr)
    (Prng.sample twin 12 arr);
  let a = Array.init 25 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle rng a;
  Prng.shuffle twin b;
  Alcotest.(check (array int)) "shuffle replays on a copy" a b

let test_prng_sample_full_permutation () =
  let rng = Prng.create 78 in
  let arr = Array.init 23 (fun i -> 100 - i) in
  let s = Prng.sample rng 23 arr in
  let sorted x =
    let c = Array.copy x in
    Array.sort Int.compare c;
    c
  in
  Alcotest.(check (array int))
    "k = n sample is a permutation" (sorted arr) (sorted s);
  try
    ignore (Prng.sample rng 24 arr);
    Alcotest.fail "k > n accepted"
  with Invalid_argument _ -> ()

let test_pareto_heavy_tail () =
  let rng = Prng.create 15 in
  let n = 5000 in
  let xs = Array.init n (fun _ -> Prng.pareto rng ~alpha:1.2 ~xmin:1.0) in
  Array.iter (fun x -> if x < 1.0 then Alcotest.failf "below xmin: %g" x) xs;
  (* heavy tail: max should dwarf median *)
  Alcotest.(check bool) "heavy tail" true (Stats.max xs > 10.0 *. Stats.median xs)

let test_stats_basics () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min xs);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile 100.0 xs)

let test_stats_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev xs)

let test_cdf_points () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let cdf = Stats.cdf_points xs in
  Alcotest.(check int) "points" 3 (Array.length cdf);
  Alcotest.(check (float 1e-9)) "first value" 1.0 (fst cdf.(0));
  Alcotest.(check (float 1e-9)) "last fraction" 1.0 (snd cdf.(2))

let test_histogram () =
  let xs = [| 0.1; 0.2; 0.55; 0.9; 1.5; -0.5 |] in
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:1.0 xs in
  (* clamping puts 1.5 in the top bin and -0.5 in the bottom *)
  Alcotest.(check int) "bottom bin" 3 h.(0);
  Alcotest.(check int) "top bin" 3 h.(1)

module Par = R3_util.Parallel
module J = R3_util.Json

let test_parallel_map_matches () =
  let a = Array.init 1000 (fun i -> i) in
  let f i = (i * i) mod 97 in
  Alcotest.(check (array int)) "map = Array.map" (Array.map f a) (Par.map f a)

let test_parallel_init_deterministic () =
  let f i = float_of_int i *. 1.5 in
  let one = Par.init ~domains:1 500 f in
  let many = Par.init ~domains:4 500 f in
  Alcotest.(check bool) "bit-identical across pool sizes" true (one = many)

let test_parallel_exception () =
  match
    Par.map ~domains:4
      (fun i -> if i mod 3 = 0 then failwith (string_of_int i) else i)
      (Array.init 100 Fun.id)
  with
  | _ -> Alcotest.fail "expected exception to propagate"
  | exception Failure msg ->
    (* Doc: the exception from the lowest failing index wins. *)
    Alcotest.(check string) "lowest index wins" "0" msg

let test_parallel_set_domains () =
  let before = Par.domains () in
  Fun.protect
    ~finally:(fun () -> Par.set_domains before)
    (fun () ->
      Par.set_domains 1;
      Alcotest.(check int) "pinned to 1" 1 (Par.domains ());
      let a = Array.init 64 (fun i -> i) in
      Alcotest.(check (array int)) "sequential fallback" a (Par.map Fun.id a))

let test_json_to_string () =
  let doc =
    J.Obj
      [
        ("a", J.Int 1);
        ("b", J.List [ J.Float 1.5; J.Bool true; J.Null ]);
        ("s", J.String "x\"y\n");
        ("empty", J.List []);
      ]
  in
  Alcotest.(check string) "compact form"
    {|{"a": 1,"b": [1.5,true,null],"s": "x\"y\n","empty": []}|}
    (J.to_string doc)

let test_json_non_finite () =
  Alcotest.(check string) "nan -> null" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null"
    (J.to_string (J.Float Float.infinity));
  Alcotest.(check string) "finite stays" "0.25" (J.to_string (J.Float 0.25))

let test_json_write_file () =
  let path = Filename.temp_file "r3json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let doc = J.Obj [ ("k", J.List [ J.Int 1; J.Int 2 ]) ] in
      J.write_file path doc;
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "round trip" (J.to_string_pretty doc) contents;
      Alcotest.(check bool) "ends with newline" true
        (String.length contents > 0 && contents.[String.length contents - 1] = '\n'))

let test_stats_nan_rejected () =
  let bad = [| 1.0; Float.nan; 2.0 |] in
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.failf "%s: expected Invalid_argument on NaN" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "percentile" (fun () -> Stats.percentile 50.0 bad);
  expect_invalid "quantiles" (fun () -> Stats.quantiles ~ps:[ 50.0 ] bad);
  expect_invalid "histogram" (fun () ->
      Stats.histogram ~bins:2 ~lo:0.0 ~hi:1.0 bad);
  expect_invalid "min" (fun () -> Stats.min bad);
  expect_invalid "max" (fun () -> Stats.max bad);
  expect_invalid "cdf_points" (fun () -> Stats.cdf_points bad)

(* Regression: min/max of an empty array used to return infinity and
   neg_infinity — fabricated extremes that silently poisoned downstream
   summaries. They must refuse instead. *)
let test_stats_empty_rejected () =
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.failf "%s: expected Invalid_argument on empty array" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "min" (fun () -> Stats.min [||]);
  expect_invalid "max" (fun () -> Stats.max [||])

(* Regression: mean of an empty array used to return NaN while stddev
   returned 0 — inconsistent fabrications. Both refuse now, like
   min/max; stddev of a single sample is 0 by the documented contract. *)
let test_stats_empty_mean_stddev () =
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.failf "%s: expected Invalid_argument on empty array" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "mean" (fun () -> Stats.mean [||]);
  expect_invalid "stddev" (fun () -> Stats.stddev [||]);
  Alcotest.(check (float 0.0)) "stddev of one sample" 0.0
    (Stats.stddev [| 5.0 |])

(* Documented histogram corner: a degenerate range (lo = hi) has zero
   bucket width; every sample lands in bucket 0 instead of dividing by
   zero, and the total count is preserved. *)
let test_histogram_degenerate_range () =
  let h = Stats.histogram ~bins:4 ~lo:3.0 ~hi:3.0 [| 3.0; 3.0; 2.0 |] in
  Alcotest.(check int) "all in bucket 0" 3 h.(0);
  Alcotest.(check int) "total preserved" 3 (Array.fold_left ( + ) 0 h)

(* Regression: wall-clock deltas are clamped at zero, so a backwards NTP
   step can never yield a negative duration. We cannot step the clock in
   a test, but the non-negativity contract itself must hold. *)
let test_timer_non_negative () =
  let (), dt = R3_util.Timer.time (fun () -> ()) in
  Alcotest.(check bool) "time >= 0" true (dt >= 0.0);
  let stop = R3_util.Timer.stopwatch () in
  Alcotest.(check bool) "stopwatch >= 0" true (stop () >= 0.0)

(* Worker exceptions must surface with the worker-side backtrace, not the
   caller's re-raise site. *)
let[@inline never] deep_raise i = failwith ("worker boom " ^ string_of_int i)

let test_parallel_backtrace () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  match
    Par.map ~domains:4
      (fun i -> if i = 5 then deep_raise i else i)
      (Array.init 32 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "original exception" "worker boom 5" msg;
    let bt = String.lowercase_ascii (Printexc.get_backtrace ()) in
    (* The raising frame lives in this file; a backtrace captured at the
       caller's re-raise would not mention it. *)
    Alcotest.(check bool)
      (Printf.sprintf "worker frame in backtrace: %s" bt)
      true
      (let has sub =
         let n = String.length sub and m = String.length bt in
         let rec go i = i + n <= m && (String.sub bt i n = sub || go (i + 1)) in
         go 0
       in
       has "test_util")

let test_json_shortest_roundtrip () =
  Alcotest.(check string) "0.1 stays short" "0.1" (J.number 0.1);
  Alcotest.(check string) "1/3 needs 16 digits" "0.3333333333333333"
    (J.number (1.0 /. 3.0));
  Alcotest.(check string) "integral float drops point" "1" (J.number 1.0);
  (* 0.1 +. 0.2 <> 0.3: the two must print differently *)
  Alcotest.(check bool) "adjacent floats distinguished" true
    (J.number (0.1 +. 0.2) <> J.number 0.3)

let json_number_roundtrip_prop =
  (* Arbitrary IEEE-754 bit patterns: every finite float must survive
     print -> parse bit-exactly; non-finite ones must print as null. *)
  QCheck.Test.make ~count:2000 ~name:"Json.number round-trips any float"
    QCheck.int64 (fun bits ->
      let f = Int64.float_of_bits bits in
      if Float.is_finite f then
        Int64.equal
          (Int64.bits_of_float (float_of_string (J.number f)))
          (Int64.bits_of_float f)
      else String.equal (J.number f) "null")

let test_json_parse () =
  let doc =
    J.of_string
      {| { "a": [1, -2.5, 1e3, true, false, null],
           "s": "x\"y\nAé",
           "nested": { "empty": {}, "l": [[]] } } |}
  in
  (match doc with
  | J.Obj [ ("a", J.List l); ("s", J.String s); ("nested", J.Obj _) ] ->
    Alcotest.(check int) "list length" 6 (List.length l);
    Alcotest.(check string) "escapes decoded" "x\"y\nA\xc3\xa9" s
  | _ -> Alcotest.fail "unexpected parse shape");
  List.iter
    (fun bad ->
      try
        ignore (J.of_string bad);
        Alcotest.failf "expected Parse_error on %S" bad
      with J.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"k\" 1}"; "nan" ]

let test_json_parse_roundtrip () =
  let doc =
    J.Obj
      [
        ("f", J.List [ J.Float 0.1; J.Float (1.0 /. 3.0); J.Float 1e-300 ]);
        ("i", J.List [ J.Int max_int; J.Int min_int ]);
        ("s", J.String "tab\tnl\nquote\"end");
      ]
  in
  let rec equal a b =
    match (a, b) with
    | J.Float x, J.Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | J.List x, J.List y -> List.for_all2 equal x y
    | J.Obj x, J.Obj y ->
      List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) x y
    | x, y -> x = y
  in
  Alcotest.(check bool) "compact" true (equal doc (J.of_string (J.to_string doc)));
  Alcotest.(check bool) "pretty" true
    (equal doc (J.of_string (J.to_string_pretty doc)))

let percentile_monotone_prop =
  QCheck.Test.make ~count:100 ~name:"percentile is monotone in p"
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng copy and split" `Quick test_prng_copy_and_split;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
    Alcotest.test_case "sample/shuffle replay on a copy" `Quick
      test_prng_sample_copy_determinism;
    Alcotest.test_case "full-size sample permutes" `Quick
      test_prng_sample_full_permutation;
    Alcotest.test_case "pareto heavy tail" `Quick test_pareto_heavy_tail;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "cdf points" `Quick test_cdf_points;
    Alcotest.test_case "histogram clamps" `Quick test_histogram;
    Alcotest.test_case "parallel map matches sequential" `Quick
      test_parallel_map_matches;
    Alcotest.test_case "parallel init deterministic" `Quick
      test_parallel_init_deterministic;
    Alcotest.test_case "parallel exception propagation" `Quick
      test_parallel_exception;
    Alcotest.test_case "parallel set_domains" `Quick test_parallel_set_domains;
    Alcotest.test_case "stats reject NaN" `Quick test_stats_nan_rejected;
    Alcotest.test_case "stats reject empty min/max" `Quick
      test_stats_empty_rejected;
    Alcotest.test_case "stats reject empty mean/stddev" `Quick
      test_stats_empty_mean_stddev;
    Alcotest.test_case "histogram degenerate range" `Quick
      test_histogram_degenerate_range;
    Alcotest.test_case "timer non-negative" `Quick test_timer_non_negative;
    Alcotest.test_case "parallel backtrace preserved" `Quick
      test_parallel_backtrace;
    Alcotest.test_case "json to_string" `Quick test_json_to_string;
    Alcotest.test_case "json non-finite numbers" `Quick test_json_non_finite;
    Alcotest.test_case "json write_file" `Quick test_json_write_file;
    Alcotest.test_case "json shortest round-trip" `Quick
      test_json_shortest_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    Alcotest.test_case "json parse round-trip" `Quick test_json_parse_roundtrip;
    QCheck_alcotest.to_alcotest json_number_roundtrip_prop;
    QCheck_alcotest.to_alcotest percentile_monotone_prop;
  ]
