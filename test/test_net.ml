(* Tests for the network substrate: graph invariants, Dijkstra, ECMP-OSPF
   routing validity, traffic generation, topology catalog counts. *)

module G = R3_net.Graph
module Spf = R3_net.Spf
module Ospf = R3_net.Ospf
module Routing = R3_net.Routing
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_graph_basics () =
  let g = Topology.abilene () in
  check_int "nodes" 11 (G.num_nodes g);
  check_int "links" 28 (G.num_links g);
  (* Every link has its reverse in Abilene. *)
  for e = 0 to G.num_links g - 1 do
    match G.reverse_link g e with
    | None -> Alcotest.failf "link %d has no reverse" e
    | Some r ->
      check_int "reverse endpoints" (G.src g e) (G.dst g r);
      check_int "reverse of reverse" e (match G.reverse_link g r with Some x -> x | None -> -1)
  done;
  check "connected" true (G.strongly_connected g ())

let test_find_link () =
  let g = Topology.abilene () in
  let sea = G.node_id g "Seattle" and sun = G.node_id g "Sunnyvale" in
  (match G.find_link g sea sun with
  | Some e ->
    check_int "src" sea (G.src g e);
    check_int "dst" sun (G.dst g e)
  | None -> Alcotest.fail "Seattle->Sunnyvale missing");
  check "no self link" true (G.find_link g sea sea = None)

let test_failures_and_reachability () =
  let g = Topology.abilene () in
  let id n = G.node_id g n in
  (* Cutting both Seattle links isolates Seattle. *)
  let e1 = Option.get (G.find_link g (id "Seattle") (id "Sunnyvale")) in
  let e2 = Option.get (G.find_link g (id "Seattle") (id "Denver")) in
  let failed = G.fail_bidir g [ e1; e2 ] in
  check "partitioned" true (G.partitions_pair g failed (id "Seattle") (id "NewYork"));
  check "rest connected" true (not (G.partitions_pair g failed (id "Denver") (id "NewYork")));
  check "not strongly connected" false (G.strongly_connected g ~failed ())

let test_parallel_links () =
  let g = Topology.parallel_links ~capacities:[ 1.0; 2.0; 3.0; 4.0 ] in
  check_int "links" 8 (G.num_links g);
  (* Each direction has 4 parallel links; each has a distinct reverse. *)
  let seen = Hashtbl.create 8 in
  for e = 0 to 7 do
    match G.reverse_link g e with
    | None -> Alcotest.failf "parallel link %d missing reverse" e
    | Some r ->
      check "reverse distinct" true (not (Hashtbl.mem seen r));
      Hashtbl.replace seen r ()
  done

(* Many parallel links between one node pair: the by-pair buckets must
   keep links in ascending index order (the build conses then reverses
   once; per-link append was quadratic here), so the k-th i->j link pairs
   with the k-th j->i link. *)
let test_many_parallel_links () =
  let p = 64 in
  let links =
    Array.init (2 * p) (fun k ->
        if k < p then (0, 1, float_of_int (k + 1), 1.0)
        else (1, 0, float_of_int (k - p + 1), 1.0))
  in
  let g = G.create ~node_names:[| "i"; "j" |] ~links in
  check_int "links" (2 * p) (G.num_links g);
  for i = 0 to p - 1 do
    check_int "in-order pairing" (p + i)
      (match G.reverse_link g i with Some r -> r | None -> -1);
    check_int "pairing is symmetric" i
      (match G.reverse_link g (p + i) with Some r -> r | None -> -1);
    Alcotest.(check (float 0.0)) "capacity kept"
      (float_of_int (i + 1)) (G.capacity g i)
  done

let test_dijkstra_simple () =
  let g = Topology.square () in
  let w = Ospf.unit_weights g in
  let d = Spf.distances g ~weights:w ~src:0 () in
  Alcotest.(check (float 1e-9)) "self" 0.0 d.(0);
  Alcotest.(check (float 1e-9)) "adjacent" 1.0 d.(1);
  Alcotest.(check (float 1e-9)) "diagonal" 1.0 d.(2)

let test_dijkstra_failed () =
  let g = Topology.square () in
  let w = Ospf.unit_weights g in
  let diag = Option.get (G.find_link g 0 2) in
  let failed = G.fail_bidir g [ diag ] in
  let d = Spf.distances g ~failed ~weights:w ~src:0 () in
  Alcotest.(check (float 1e-9)) "detour around diagonal" 2.0 d.(2)

let test_shortest_path () =
  let g = Topology.abilene () in
  let w = Ospf.unit_weights g in
  let src = G.node_id g "Seattle" and dst = G.node_id g "NewYork" in
  match Spf.shortest_path g ~weights:w ~src ~dst () with
  | None -> Alcotest.fail "no path Seattle->NewYork"
  | Some links ->
    check "path starts at src" true (G.src g (List.hd links) = src);
    let rec ends = function [ e ] -> G.dst g e | _ :: tl -> ends tl | [] -> -1 in
    check_int "path ends at dst" dst (ends links);
    (* consecutive links chain *)
    let rec chained = function
      | a :: b :: tl -> G.dst g a = G.src g b && chained (b :: tl)
      | _ -> true
    in
    check "chained" true (chained links)

let valid_routing g ?failed ?partial t =
  match Routing.validate g ?failed ?partial t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let all_pairs g =
  let n = G.num_nodes g in
  let acc = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto 0 do
      if a <> b then acc := (a, b) :: !acc
    done
  done;
  Array.of_list !acc

let test_ospf_validity () =
  let g = Topology.abilene () in
  let pairs = all_pairs g in
  let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
  valid_routing g t

let test_ospf_validity_under_failure () =
  let g = Topology.abilene () in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "KansasCity") (id "Houston")) in
  let failed = G.fail_bidir g [ e ] in
  let pairs = all_pairs g in
  let t = Ospf.routing g ~failed ~weights:(Ospf.unit_weights g) ~pairs () in
  valid_routing g ~failed t

let test_ospf_ecmp_split () =
  (* In the square with unit weights there are two equal paths a->c
     (direct diagonal is 1 hop; a-b-c is 2) so no split; craft a diamond. *)
  let g =
    G.create
      ~node_names:[| "s"; "u"; "v"; "t" |]
      ~links:
        [|
          (0, 1, 10.0, 1.0); (0, 2, 10.0, 1.0); (1, 3, 10.0, 1.0); (2, 3, 10.0, 1.0);
        |]
  in
  let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs:[| (0, 3) |] () in
  valid_routing g t;
  Alcotest.(check (float 1e-9)) "upper split" 0.5 (Routing.get t (0) (0));
  Alcotest.(check (float 1e-9)) "lower split" 0.5 (Routing.get t (0) (1))

let test_routing_loads_mlu () =
  let g = Topology.triangle () in
  let pairs = [| (0, 1) |] in
  let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
  let loads = Routing.loads g ~demands:[| 5.0 |] t in
  let e01 = Option.get (G.find_link g 0 1) in
  Alcotest.(check (float 1e-9)) "direct load" 5.0 loads.(e01);
  Alcotest.(check (float 1e-9)) "mlu" 0.5 (Routing.mlu g ~loads)

let test_gravity_traffic () =
  let g = Topology.usisp_like () in
  let rng = R3_util.Prng.create 42 in
  let tm = Traffic.gravity rng g ~load_factor:0.4 () in
  check "positive total" true (Traffic.total tm > 0.0);
  let n = G.num_nodes g in
  for a = 0 to n - 1 do
    Alcotest.(check (float 0.0)) "zero diagonal" 0.0 tm.(a).(a);
    for b = 0 to n - 1 do
      check "nonnegative" true (tm.(a).(b) >= 0.0)
    done
  done;
  (* Determinism: same seed gives the same matrix. *)
  let tm2 = Traffic.gravity (R3_util.Prng.create 42) g ~load_factor:0.4 () in
  check "deterministic" true (tm = tm2)

let test_diurnal () =
  let peak = Traffic.diurnal_factor ~interval:14 in
  let trough = Traffic.diurnal_factor ~interval:2 in
  check "peak above trough" true (peak > trough);
  check "bounded" true (peak <= 1.0 +. 1e-9 && trough >= 0.3)

let test_split3 () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 7 in
  let tm = Traffic.gravity rng g ~load_factor:0.5 () in
  let t1, t2, t3 = Traffic.split3 rng tm ~p1:0.15 ~p2:0.25 in
  let recombined = Traffic.add (Traffic.add t1 t2) t3 in
  let n = G.num_nodes g in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Float.abs (recombined.(a).(b) -. tm.(a).(b)) > 1e-9 *. (1.0 +. tm.(a).(b))
      then Alcotest.failf "split3 does not recombine at (%d,%d)" a b
    done
  done

let test_catalog_counts () =
  let expect = [ ("abilene", 11, 28); ("level3", 17, 72); ("sbc", 19, 70);
                 ("uunet", 47, 336); ("generated", 100, 460); ("usisp", 14, 48) ] in
  List.iter
    (fun (tag, nn, nl) ->
      match Topology.find tag with
      | None -> Alcotest.failf "missing topology %s" tag
      | Some { graph; _ } ->
        check_int (tag ^ " nodes") nn (G.num_nodes graph);
        check_int (tag ^ " dlinks") nl (G.num_links graph);
        check (tag ^ " connected") true (G.strongly_connected graph ()))
    expect

let test_srlg_groups () =
  let g = Topology.usisp_like () in
  let srlgs = Topology.synthetic_srlgs ~seed:5 g ~count:10 in
  check "got groups" true (List.length srlgs > 0);
  List.iter
    (fun grp ->
      check "nonempty" true (grp <> []);
      (* closed under reversal *)
      List.iter
        (fun e ->
          match G.reverse_link g e with
          | Some r -> check "reverse in group" true (List.mem r grp)
          | None -> ())
        grp)
    srlgs

(* OSPF routings are always valid on random connected topologies. *)
let ospf_validity_prop =
  QCheck.Test.make ~count:40 ~name:"OSPF ECMP routing is always valid"
    QCheck.(pair (int_bound 5_000) (int_range 5 14))
    (fun (seed, n) ->
      let g =
        Topology.random ~seed ~nodes:n
          ~undirected_links:(Int.min (n * (n - 1) / 2) (n + (n / 2)))
          ~capacities:[ (100.0, 1.0) ] ()
      in
      let pairs = all_pairs g in
      let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
      match Routing.validate g t with Ok () -> true | Error _ -> false)

(* Under any single bidirectional failure, OSPF reconvergence remains valid
   (with partial rows allowed for partitioned pairs). *)
let ospf_failure_prop =
  QCheck.Test.make ~count:40 ~name:"OSPF reconvergence valid under failures"
    QCheck.(pair (int_bound 5_000) (int_bound 27))
    (fun (seed, e) ->
      let g = Topology.abilene () in
      let rng = R3_util.Prng.create seed in
      let e2 = R3_util.Prng.int rng 28 in
      let failed = G.fail_bidir g [ e; e2 ] in
      let pairs = all_pairs g in
      let t = Ospf.routing g ~failed ~weights:(Ospf.unit_weights g) ~pairs () in
      match Routing.validate g ~failed ~partial:true t with
      | Ok () -> true
      | Error _ -> false)


(* ---- flow decomposition (paper section 4.1) ---- *)

module Fd = R3_net.Flow_decompose

let test_decompose_single_path () =
  let g = Topology.triangle () in
  let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs:[| (0, 1) |] () in
  let paths, circulation = Fd.decompose g t 0 in
  Alcotest.(check int) "one path" 1 (List.length paths);
  Alcotest.(check (float 1e-9)) "no circulation" 0.0 circulation;
  let p = List.hd paths in
  Alcotest.(check (float 1e-9)) "full weight" 1.0 p.Fd.weight

let test_decompose_ecmp_split () =
  let g =
    G.create
      ~node_names:[| "s"; "u"; "v"; "t" |]
      ~links:
        [| (0, 1, 10.0, 1.0); (0, 2, 10.0, 1.0); (1, 3, 10.0, 1.0); (2, 3, 10.0, 1.0) |]
  in
  let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs:[| (0, 3) |] () in
  let paths, _ = Fd.decompose g t 0 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  let total = List.fold_left (fun a p -> a +. p.Fd.weight) 0.0 paths in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 total;
  (* recomposition reproduces the fractions *)
  let frac = Fd.recompose g paths in
  Array.iteri
    (fun e v ->
      if Float.abs (v -. (Routing.get t (0) (e))) > 1e-9 then
        Alcotest.failf "recompose mismatch on link %d" e)
    frac

let test_decompose_strips_cycles () =
  let g = Topology.triangle () in
  let t = Routing.create g ~pairs:[| (0, 1) |] in
  let direct = Option.get (G.find_link g 0 1) in
  Routing.set t (0) (direct) 1.0;
  (* add a pure cycle b->c->b on top *)
  let bc = Option.get (G.find_link g 1 2) and cb = Option.get (G.find_link g 2 1) in
  Routing.set t (0) (bc) 0.3;
  Routing.set t (0) (cb) 0.3;
  let paths, circulation = Fd.decompose g t 0 in
  Alcotest.(check bool) "cycle flow removed" true (circulation > 0.29);
  Alcotest.(check int) "single real path" 1 (List.length paths)

(* Decomposition weights always sum to the delivered fraction, on arbitrary
   OSPF routings over random topologies. *)
let decompose_total_prop =
  QCheck.Test.make ~count:30 ~name:"decomposition conserves delivered flow"
    QCheck.(pair (int_bound 2_000) (int_range 5 10))
    (fun (seed, n) ->
      let g =
        Topology.random ~seed ~nodes:n
          ~undirected_links:(Int.min (n * (n - 1) / 2) (2 * n))
          ~capacities:[ (100.0, 1.0) ] ()
      in
      let pairs = all_pairs g in
      let t = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
      Array.to_list (Array.init (Array.length pairs) (fun k -> k))
      |> List.for_all (fun k ->
             let paths, _ = Fd.decompose g t k in
             let total = List.fold_left (fun a p -> a +. p.Fd.weight) 0.0 paths in
             Float.abs (total -. 1.0) < 1e-6))

(* The paper's section 4.1 argument: after a failure, the rescaled
   protection decomposes to a *different* path set, so a path-based MPLS
   implementation would re-signal LSPs while MPLS-ff only retunes ratios. *)
let test_path_churn_after_rescaling () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 29 in
  let tm = Traffic.gravity rng g ~load_factor:0.15 () in
  let pairs, _ = Traffic.commodities tm in
  let base = Ospf.routing g ~weights:(Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (R3_core.Offline.default_config ~f:1) with
      solve_method = R3_core.Offline.Constraint_gen }
  in
  match R3_core.Offline.compute cfg g tm (R3_core.Offline.Fixed base) with
  | Error m -> Alcotest.fail m
  | Ok plan ->
    let st = R3_core.Reconfig.of_plan plan in
    let st' = R3_core.Reconfig.fail st (R3_core.Scenario.of_links g [ 5 ]) in
    let fresh, total =
      Fd.path_churn g ~before:plan.R3_core.Offline.protection
        ~after:st'.R3_core.Reconfig.protection
    in
    Alcotest.(check bool) "some paths exist" true (total > 0);
    Alcotest.(check bool)
      (Printf.sprintf "rescaling creates new LSPs (%d/%d fresh)" fresh total)
      true (fresh > 0)

let suite =
  [
    Alcotest.test_case "graph basics (abilene)" `Quick test_graph_basics;
    Alcotest.test_case "find_link" `Quick test_find_link;
    Alcotest.test_case "failures and reachability" `Quick test_failures_and_reachability;
    Alcotest.test_case "parallel links" `Quick test_parallel_links;
    Alcotest.test_case "many parallel links" `Quick test_many_parallel_links;
    Alcotest.test_case "dijkstra simple" `Quick test_dijkstra_simple;
    Alcotest.test_case "dijkstra with failures" `Quick test_dijkstra_failed;
    Alcotest.test_case "shortest path chaining" `Quick test_shortest_path;
    Alcotest.test_case "ospf routing validity" `Quick test_ospf_validity;
    Alcotest.test_case "ospf validity under failure" `Quick test_ospf_validity_under_failure;
    Alcotest.test_case "ospf ECMP split" `Quick test_ospf_ecmp_split;
    Alcotest.test_case "loads and MLU" `Quick test_routing_loads_mlu;
    Alcotest.test_case "gravity traffic" `Quick test_gravity_traffic;
    Alcotest.test_case "diurnal profile" `Quick test_diurnal;
    Alcotest.test_case "split3 recombines" `Quick test_split3;
    Alcotest.test_case "catalog matches Table 1" `Quick test_catalog_counts;
    Alcotest.test_case "srlg groups" `Quick test_srlg_groups;
    Alcotest.test_case "decompose single path" `Quick test_decompose_single_path;
    Alcotest.test_case "decompose ECMP split" `Quick test_decompose_ecmp_split;
    Alcotest.test_case "decompose strips cycles" `Quick test_decompose_strips_cycles;
    Alcotest.test_case "path churn after rescaling (Sec 4.1)" `Quick test_path_churn_after_rescaling;
    QCheck_alcotest.to_alcotest decompose_total_prop;
    QCheck_alcotest.to_alcotest ospf_validity_prop;
    QCheck_alcotest.to_alcotest ospf_failure_prop;
  ]
