(* Tests for the LP substrate: the two-phase simplex and the problem
   builder. Includes hand-checked instances and randomized property tests
   against a brute-force vertex enumerator for tiny LPs. *)

module P = R3_lp.Problem

let close ?(tol = 1e-6) a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs b)

let check_close name expected actual =
  if not (close expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

let solve_exn p =
  match P.solve p with
  | P.Optimal s -> s
  | P.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | P.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | P.Iteration_limit -> Alcotest.fail "unexpected: iteration limit"

(* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic; opt 36) *)
let test_textbook_max () =
  let p = P.create ~name:"textbook" () in
  let x = P.var p "x" and y = P.var p "y" in
  P.constr p [ (1.0, x) ] P.Le 4.0;
  P.constr p [ (2.0, y) ] P.Le 12.0;
  P.constr p [ (3.0, x); (2.0, y) ] P.Le 18.0;
  P.maximize p [ (3.0, x); (5.0, y) ];
  let s = solve_exn p in
  check_close "objective" 36.0 s.P.objective;
  check_close "x" 2.0 (s.P.value x);
  check_close "y" 6.0 (s.P.value y)

(* min x + y s.t. x + 2y >= 4, 3x + y >= 6 ; opt at intersection (1.6,1.2) *)
let test_min_ge () =
  let p = P.create () in
  let x = P.var p "x" and y = P.var p "y" in
  P.constr p [ (1.0, x); (2.0, y) ] P.Ge 4.0;
  P.constr p [ (3.0, x); (1.0, y) ] P.Ge 6.0;
  P.minimize p [ (1.0, x); (1.0, y) ];
  let s = solve_exn p in
  check_close "objective" 2.8 s.P.objective

let test_equality () =
  let p = P.create () in
  let x = P.var p "x" and y = P.var p "y" and z = P.var p "z" in
  P.constr p [ (1.0, x); (1.0, y); (1.0, z) ] P.Eq 10.0;
  P.constr p [ (1.0, x); (-1.0, y) ] P.Eq 2.0;
  P.minimize p [ (1.0, x); (2.0, y); (3.0, z) ];
  (* Push everything out of z: z=0, x-y=2, x+y=10 -> x=6,y=4 -> 6+8=14 *)
  let s = solve_exn p in
  check_close "objective" 14.0 s.P.objective;
  check_close "z" 0.0 (s.P.value z)

let test_infeasible () =
  let p = P.create () in
  let x = P.var p "x" in
  P.constr p [ (1.0, x) ] P.Le 1.0;
  P.constr p [ (1.0, x) ] P.Ge 2.0;
  P.minimize p [ (1.0, x) ];
  match P.solve p with
  | P.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = P.create () in
  let x = P.var p "x" and y = P.var p "y" in
  P.constr p [ (1.0, x); (-1.0, y) ] P.Le 1.0;
  P.maximize p [ (1.0, x) ];
  match P.solve p with
  | P.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_free_var () =
  let p = P.create () in
  let x = P.free_var p "x" in
  let y = P.var p "y" in
  P.constr p [ (1.0, x); (1.0, y) ] P.Ge (-5.0);
  P.constr p [ (1.0, x) ] P.Ge (-7.0);
  P.minimize p [ (1.0, x); (1.0, y) ];
  (* x + y is bounded below at -5 by the first row; x itself may go to -7. *)
  let s = solve_exn p in
  check_close "objective" (-5.0) s.P.objective;
  let xv = s.P.value x in
  if xv < -7.0 -. 1e-7 then Alcotest.failf "x below its bound: %g" xv

let test_bounds () =
  let p = P.create () in
  let x = P.var p ~lb:2.0 ~ub:5.0 "x" in
  let y = P.var p ~lb:1.0 ~ub:4.0 "y" in
  P.constr p [ (1.0, x); (1.0, y) ] P.Le 7.0;
  P.maximize p [ (2.0, x); (1.0, y) ];
  let s = solve_exn p in
  (* x=5 (ub), then y=2 from the row: obj = 12 *)
  check_close "objective" 12.0 s.P.objective;
  check_close "x" 5.0 (s.P.value x)

let test_degenerate () =
  (* Classic Beale-style degeneracy trigger; must terminate and find 0.05. *)
  let p = P.create () in
  let x1 = P.var p "x1" and x2 = P.var p "x2" and x3 = P.var p "x3" in
  P.constr p [ (0.25, x1); (-8.0, x2); (-1.0, x3) ] P.Le 0.0;
  P.constr p [ (0.5, x1); (-12.0, x2); (-0.5, x3) ] P.Le 0.0;
  P.constr p [ (1.0, x3) ] P.Le 1.0;
  P.maximize p [ (0.75, x1); (-150.0, x2); (0.02, x3) ];
  (* With x2 = 0 the rows force x1 <= x3 <= 1, so the optimum is
     0.75 + 0.02 = 0.77 at (1, 0, 1); buying slack via x2 never pays
     (18 extra objective per 150 of cost). *)
  match P.solve p with
  | P.Optimal s -> check_close "objective" 0.77 s.P.objective
  | P.Unbounded -> Alcotest.fail "beale: reported unbounded"
  | P.Infeasible -> Alcotest.fail "beale: reported infeasible"
  | P.Iteration_limit -> Alcotest.fail "beale: cycled to iteration limit"

(* The revised (LU-factorized) backend must survive the same degeneracy
   trap: Harris ratio test + Devex with the Bland fallback terminate. *)
let test_degenerate_revised () =
  let p = P.create () in
  let x1 = P.var p "x1" and x2 = P.var p "x2" and x3 = P.var p "x3" in
  P.constr p [ (0.25, x1); (-8.0, x2); (-1.0, x3) ] P.Le 0.0;
  P.constr p [ (0.5, x1); (-12.0, x2); (-0.5, x3) ] P.Le 0.0;
  P.constr p [ (1.0, x3) ] P.Le 1.0;
  P.maximize p [ (0.75, x1); (-150.0, x2); (0.02, x3) ];
  match P.solve ~backend:`Revised p with
  | P.Optimal s -> check_close "objective" 0.77 s.P.objective
  | P.Unbounded -> Alcotest.fail "beale/revised: reported unbounded"
  | P.Infeasible -> Alcotest.fail "beale/revised: reported infeasible"
  | P.Iteration_limit -> Alcotest.fail "beale/revised: cycled to iteration limit"

let test_duplicate_terms () =
  let p = P.create () in
  let x = P.var p "x" in
  (* 1x + 2x = 3x <= 9 -> x <= 3 *)
  P.constr p [ (1.0, x); (2.0, x) ] P.Le 9.0;
  P.maximize p [ (1.0, x) ];
  let s = solve_exn p in
  check_close "x" 3.0 (s.P.value x)

let test_zero_objective () =
  let p = P.create () in
  let x = P.var p "x" in
  P.constr p [ (1.0, x) ] P.Ge 3.0;
  P.constr p [ (1.0, x) ] P.Le 4.0;
  P.minimize p [];
  let s = solve_exn p in
  check_close "objective" 0.0 s.P.objective;
  let v = s.P.value x in
  if v < 3.0 -. 1e-7 || v > 4.0 +. 1e-7 then
    Alcotest.failf "x out of range: %g" v

(* Transportation problem with known optimum. Supplies [20;30], demands
   [10;25;15], costs below; optimal cost computed by hand = 20*1+0*3 ... use
   a small instance solved exactly: 2 sources x 3 sinks. *)
let test_transportation () =
  let supply = [| 20.0; 30.0 |] in
  let demand = [| 10.0; 25.0; 15.0 |] in
  let cost = [| [| 2.0; 3.0; 1.0 |]; [| 5.0; 4.0; 8.0 |] |] in
  let p = P.create ~name:"transport" () in
  let xv = Array.init 2 (fun i -> Array.init 3 (fun j -> P.var p (Printf.sprintf "x%d%d" i j))) in
  for i = 0 to 1 do
    P.constr p (List.init 3 (fun j -> (1.0, xv.(i).(j)))) P.Le supply.(i)
  done;
  for j = 0 to 2 do
    P.constr p (List.init 2 (fun i -> (1.0, xv.(i).(j)))) P.Eq demand.(j)
  done;
  let obj = ref [] in
  for i = 0 to 1 do
    for j = 0 to 2 do
      obj := (cost.(i).(j), xv.(i).(j)) :: !obj
    done
  done;
  P.minimize p !obj;
  let s = solve_exn p in
  (* Source 0 serves sink2 (15 @1) and sink0 (5 @2)... optimal assignment:
     x02=15, x00=5, x10=5, x11=25 -> 15+10+25+100 = 150. Check against a
     brute-force-verified value. *)
  check_close "objective" 150.0 s.P.objective

(* Random LPs: any Optimal answer must be primal feasible, and must not be
   beaten by any random feasible point we can construct. *)
let feasibility_prop =
  QCheck.Test.make ~count:200 ~name:"random LP optimal point is feasible"
    QCheck.(pair (int_bound 10_000) (pair (int_range 1 4) (int_range 1 5)))
    (fun (seed, (nv, nc)) ->
      let rng = R3_util.Prng.create (seed + 17) in
      let p = P.create () in
      let vars = Array.init nv (fun i -> P.var p (Printf.sprintf "v%d" i)) in
      let rows =
        Array.init nc (fun _ ->
            let terms =
              Array.to_list vars
              |> List.map (fun v -> (R3_util.Prng.uniform rng (-2.0) 3.0, v))
            in
            let rhs = R3_util.Prng.uniform rng 0.5 10.0 in
            P.constr p terms P.Le rhs;
            (terms, rhs))
      in
      let obj =
        Array.to_list vars |> List.map (fun v -> (R3_util.Prng.uniform rng 0.1 2.0, v))
      in
      P.maximize p obj;
      match P.solve p with
      | P.Optimal s ->
        (* x = 0 is feasible (all rhs > 0), so objective >= 0. *)
        s.P.objective >= -1e-7
        && List.for_all
             (fun (terms, rhs) ->
               let lhs =
                 List.fold_left (fun a (c, v) -> a +. (c *. s.P.value v)) 0.0 terms
               in
               lhs <= rhs +. 1e-6 *. (1.0 +. Float.abs rhs))
             (Array.to_list rows)
        && List.for_all (fun v -> s.P.value v >= -1e-7) (Array.to_list vars)
      | P.Unbounded -> true (* possible when a column has all coefs <= 0 *)
      | P.Infeasible -> false (* x=0 is always feasible here *)
      | P.Iteration_limit -> false)

(* Self-duality check: solve a random primal and its explicit dual; strong
   duality requires equal objectives. Primal: max c x, Ax <= b, x >= 0.
   Dual: min b y, A^T y >= c, y >= 0. *)
let duality_prop =
  QCheck.Test.make ~count:100 ~name:"strong duality on random bounded LPs"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = R3_util.Prng.create (seed + 99) in
      let nv = 1 + R3_util.Prng.int rng 4 and nc = 1 + R3_util.Prng.int rng 4 in
      let a = Array.init nc (fun _ -> Array.init nv (fun _ -> R3_util.Prng.uniform rng 0.1 3.0)) in
      let b = Array.init nc (fun _ -> R3_util.Prng.uniform rng 1.0 10.0) in
      let c = Array.init nv (fun _ -> R3_util.Prng.uniform rng 0.1 3.0) in
      (* all-positive A ensures both primal boundedness and dual feasibility *)
      let primal = P.create () in
      let xs = Array.init nv (fun i -> P.var primal (Printf.sprintf "x%d" i)) in
      for i = 0 to nc - 1 do
        P.constr primal (List.init nv (fun j -> (a.(i).(j), xs.(j)))) P.Le b.(i)
      done;
      P.maximize primal (List.init nv (fun j -> (c.(j), xs.(j))));
      let dual = P.create () in
      let ys = Array.init nc (fun i -> P.var dual (Printf.sprintf "y%d" i)) in
      for j = 0 to nv - 1 do
        P.constr dual (List.init nc (fun i -> (a.(i).(j), ys.(i)))) P.Ge c.(j)
      done;
      P.minimize dual (List.mapi (fun i v -> (b.(i), v)) (Array.to_list ys));
      match (P.solve primal, P.solve dual) with
      | P.Optimal sp, P.Optimal sd -> close ~tol:1e-5 sp.P.objective sd.P.objective
      | _ -> false)

(* --- LU factorization engine vs a dense Gaussian reference ----------- *)

module Lu = R3_lp.Lu
module Prng = R3_util.Prng

(* Dense partial-pivoting Gaussian elimination: the oracle the sparse
   LU's FTRAN/BTRAN and eta file are checked against. *)
let gauss_solve a b =
  let m = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let perm = Array.init m (fun i -> i) in
  for k = 0 to m - 1 do
    let best = ref k in
    for i = k + 1 to m - 1 do
      if Float.abs a.(perm.(i)).(k) > Float.abs a.(perm.(!best)).(k) then
        best := i
    done;
    let t = perm.(k) in
    perm.(k) <- perm.(!best);
    perm.(!best) <- t;
    let p = a.(perm.(k)).(k) in
    for i = k + 1 to m - 1 do
      let f = a.(perm.(i)).(k) /. p in
      if f <> 0.0 then begin
        for j = k to m - 1 do
          a.(perm.(i)).(j) <- a.(perm.(i)).(j) -. (f *. a.(perm.(k)).(j))
        done;
        b.(perm.(i)) <- b.(perm.(i)) -. (f *. b.(perm.(k)))
      end
    done
  done;
  let x = Array.make m 0.0 in
  for k = m - 1 downto 0 do
    let s = ref b.(perm.(k)) in
    for j = k + 1 to m - 1 do
      s := !s -. (a.(perm.(k)).(j) *. x.(j))
    done;
    x.(k) <- !s /. a.(perm.(k)).(k)
  done;
  x

let mat_transpose a =
  let m = Array.length a in
  Array.init m (fun i -> Array.init m (fun j -> a.(j).(i)))

let mat_col a k =
  let m = Array.length a in
  let idx = ref [] and v = ref [] in
  for i = m - 1 downto 0 do
    if a.(i).(k) <> 0.0 then begin
      idx := i :: !idx;
      v := a.(i).(k) :: !v
    end
  done;
  (Array.of_list !idx, Array.of_list !v, List.length !idx)

(* Well-conditioned sparse-ish test matrix: dominant diagonal plus ~30%
   random off-diagonal fill. *)
let random_matrix rng m =
  Array.init m (fun i ->
      Array.init m (fun j ->
          if i = j then 1.0 +. Prng.uniform rng 0.0 2.0
          else if Prng.uniform rng 0.0 1.0 < 0.3 then Prng.uniform rng (-2.0) 2.0
          else 0.0))

let check_vec label tol x y =
  let err = ref 0.0 in
  Array.iteri (fun i xi -> err := Float.max !err (Float.abs (xi -. y.(i)))) x;
  if !err > tol then Alcotest.failf "%s: max err %.3e > %.1e" label !err tol

(* Randomized FTRAN/BTRAN against the dense oracle, including eta-file
   chains: after every basis-column replacement recorded via [update],
   solves must still match a from-scratch dense solve of the replaced
   matrix to 1e-9 (1e-8 after long eta chains). *)
let test_lu_solves () =
  let rng = Prng.create 7 in
  for trial = 0 to 79 do
    let m = 1 + Prng.int rng 28 in
    let a = random_matrix rng m in
    let lu = Lu.create () in
    Lu.refactor lu ~m ~col:(fun k -> mat_col a k);
    let b = Array.init m (fun _ -> Prng.uniform rng (-1.0) 1.0) in
    let w = Array.copy b in
    ignore (Lu.ftran lu w);
    check_vec (Printf.sprintf "ftran m=%d trial=%d" m trial) 1e-9 w
      (gauss_solve a b);
    let c = Array.init m (fun _ -> Prng.uniform rng (-1.0) 1.0) in
    let y = Array.copy c in
    ignore (Lu.btran lu y);
    check_vec (Printf.sprintf "btran m=%d trial=%d" m trial) 1e-9 y
      (gauss_solve (mat_transpose a) c);
    (* Eta chain: replace a few columns, keeping pivots comfortable. *)
    for _s = 1 to 1 + Prng.int rng 8 do
      let r = Prng.int rng m in
      let col =
        Array.init m (fun _ ->
            if Prng.uniform rng 0.0 1.0 < 0.4 then Prng.uniform rng (-2.0) 2.0
            else 0.0)
      in
      let w = Array.copy col in
      ignore (Lu.ftran lu w);
      if Float.abs w.(r) > 0.1 then begin
        Lu.update lu ~r ~w;
        for i = 0 to m - 1 do
          a.(i).(r) <- col.(i)
        done
      end
    done;
    let b2 = Array.init m (fun _ -> Prng.uniform rng (-1.0) 1.0) in
    let w2 = Array.copy b2 in
    ignore (Lu.ftran lu w2);
    check_vec (Printf.sprintf "eta-ftran m=%d trial=%d" m trial) 1e-8 w2
      (gauss_solve a b2);
    let c2 = Array.init m (fun _ -> Prng.uniform rng (-1.0) 1.0) in
    let y2 = Array.copy c2 in
    ignore (Lu.btran lu y2);
    check_vec (Printf.sprintf "eta-btran m=%d trial=%d" m trial) 1e-8 y2
      (gauss_solve (mat_transpose a) c2)
  done

(* One [Lu.t] reused across refactorizations at growing (and shrinking)
   dimensions: the persistent factor arrays and scratch must resize and
   old state must not leak into the new factorization. *)
let test_lu_reuse_growth () =
  let rng = Prng.create 11 in
  let lu = Lu.create () in
  List.iter
    (fun m ->
      let a = random_matrix rng m in
      Lu.refactor lu ~m ~col:(fun k -> mat_col a k);
      let b = Array.init m (fun _ -> Prng.uniform rng (-1.0) 1.0) in
      let w = Array.copy b in
      ignore (Lu.ftran lu w);
      check_vec (Printf.sprintf "regrow ftran m=%d" m) 1e-9 w (gauss_solve a b);
      let c = Array.init m (fun _ -> Prng.uniform rng (-1.0) 1.0) in
      let y = Array.copy c in
      ignore (Lu.btran lu y);
      check_vec
        (Printf.sprintf "regrow btran m=%d" m)
        1e-9 y
        (gauss_solve (mat_transpose a) c))
    [ 4; 31; 12; 50; 3 ]

(* Backend agreement: on random LPs the dense reference and the sparse
   production backend must report the same status, and at [Optimal] the
   same objective (within tolerance) with a primal-feasible sparse point. *)
let backends_agree_prop =
  QCheck.Test.make ~count:100 ~name:"dense, sparse and revised backends agree"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = R3_util.Prng.create (seed + 31) in
      let nv = 2 + R3_util.Prng.int rng 5 and nc = 2 + R3_util.Prng.int rng 6 in
      let p = P.create () in
      let vars = Array.init nv (fun i -> P.var p (Printf.sprintf "v%d" i)) in
      let rows =
        Array.init nc (fun _ ->
            let terms =
              Array.to_list vars
              |> List.map (fun v -> (R3_util.Prng.uniform rng (-2.0) 3.0, v))
            in
            (* x = 0 satisfies every row, so the LP is always feasible:
               Le rows get a positive rhs, Ge rows a negative one. *)
            let cmp, rhs =
              if R3_util.Prng.int rng 4 = 0 then
                (P.Ge, R3_util.Prng.uniform rng (-8.0) (-0.5))
              else (P.Le, R3_util.Prng.uniform rng 0.5 10.0)
            in
            P.constr p terms cmp rhs;
            (terms, cmp, rhs))
      in
      P.maximize p
        (Array.to_list vars
        |> List.map (fun v -> (R3_util.Prng.uniform rng 0.1 2.0, v)));
      let feasible s =
        Array.for_all
          (fun (terms, cmp, rhs) ->
            let lhs =
              List.fold_left (fun a (c, v) -> a +. (c *. s.P.value v)) 0.0 terms
            in
            let tol = 1e-6 *. (1.0 +. Float.abs rhs) in
            match cmp with
            | P.Le -> lhs <= rhs +. tol
            | P.Ge -> lhs >= rhs -. tol
            | P.Eq -> Float.abs (lhs -. rhs) <= tol)
          rows
      in
      match
        ( P.solve ~backend:`Dense p,
          P.solve ~backend:`Sparse p,
          P.solve ~backend:`Revised p )
      with
      | P.Optimal d, P.Optimal s, P.Optimal r ->
        close ~tol:1e-6 d.P.objective s.P.objective
        (* the two sparse engines run the same pivoting discipline and
           must land much closer than the generic cross-backend bound *)
        && close ~tol:1e-9 s.P.objective r.P.objective
        && feasible s && feasible r
      | P.Unbounded, P.Unbounded, P.Unbounded -> true
      | P.Infeasible, P.Infeasible, P.Infeasible -> true
      | P.Iteration_limit, P.Iteration_limit, P.Iteration_limit -> true
      | _ -> false (* statuses disagree *))

(* Warm-started sessions: after any number of added cut rows, a warm
   [resolve] must agree (status and objective) with a cold solve of the
   same augmented system. Exercises the dual-simplex repair path of
   {!R3_lp.Simplex.Session} exactly as constraint generation uses it. *)
let warm_equals_cold_prop backend name =
  let module S = R3_lp.Simplex in
  QCheck.Test.make ~count:60 ~name
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = R3_util.Prng.create (seed + 77) in
      let nv = 2 + R3_util.Prng.int rng 4 in
      let nc0 = 2 + R3_util.Prng.int rng 4 in
      (* min of a nonnegative objective over x >= 0: always bounded, and
         x = 0 is feasible for the base system below. *)
      let obj = Array.init nv (fun _ -> R3_util.Prng.uniform rng 0.1 2.0) in
      let random_row () =
        let idx = Array.init nv Fun.id in
        let coef = Array.init nv (fun _ -> R3_util.Prng.uniform rng (-1.0) 2.0) in
        ((idx, coef), S.Le, R3_util.Prng.uniform rng 0.5 10.0)
      in
      (* A couple of Ge rows with positive coefficients push the optimum
         away from the origin so cuts have something to fight. *)
      let ge_row () =
        let idx = Array.init nv Fun.id in
        let coef = Array.init nv (fun _ -> R3_util.Prng.uniform rng 0.1 1.0) in
        ((idx, coef), S.Ge, R3_util.Prng.uniform rng 0.5 5.0)
      in
      let base =
        List.init nc0 (fun i -> if i mod 2 = 0 then ge_row () else random_row ())
      in
      let rows l = Array.of_list (List.map (fun (r, _, _) -> r) l) in
      let cmps l = Array.of_list (List.map (fun (_, c, _) -> c) l) in
      let rhs l = Array.of_list (List.map (fun (_, _, b) -> b) l) in
      let sess =
        S.Session.create ~backend ~obj ~rows:(rows base) ~cmps:(cmps base)
          ~rhs:(rhs base) ()
      in
      let acc = ref (List.rev base) in
      let rounds = 1 + R3_util.Prng.int rng 3 in
      let ok = ref true in
      for _ = 1 to rounds do
        let cuts = List.init (1 + R3_util.Prng.int rng 2) (fun _ -> random_row ()) in
        List.iter
          (fun (r, c, b) ->
            S.Session.add_row sess r c b;
            acc := (r, c, b) :: !acc)
          cuts;
        let warm = S.Session.resolve sess in
        let l = List.rev !acc in
        let cold =
          S.solve ~backend ~obj ~rows:(rows l) ~cmps:(cmps l) ~rhs:(rhs l) ()
        in
        (match (warm.S.status, cold.S.status) with
        | S.Optimal, S.Optimal ->
          if not (close ~tol:1e-6 warm.S.objective cold.S.objective) then
            ok := false
        | S.Iteration_limit, _ when not (S.Session.warm_ok sess) ->
          (* Documented contract: an unusable warm state reports
             [Iteration_limit] and the caller falls back to a cold solve,
             which is exactly the reference we just computed. *)
          ()
        | a, b -> if a <> b then ok := false)
      done;
      !ok)

(* Warm starts must pay off on the revised engine: repairing the carried
   LU after a handful of cuts should cost far fewer pivots than re-solving
   the augmented LP from a slack basis — this is the whole point of
   carrying the factorization across [resolve] for constraint generation. *)
let test_warm_fewer_pivots_revised () =
  let module S = R3_lp.Simplex in
  let rng = Prng.create 5 in
  let nv = 40 in
  let obj = Array.init nv (fun _ -> Prng.uniform rng 0.5 2.0) in
  let row lo hi =
    (Array.init nv Fun.id, Array.init nv (fun _ -> Prng.uniform rng lo hi))
  in
  (* Ge rows with positive coefficients keep the optimum off the origin,
     so the added cuts have an active solution to invalidate. *)
  let base =
    List.init 30 (fun i ->
        if i mod 2 = 0 then (row 0.1 1.0, S.Ge, Prng.uniform rng 1.0 5.0)
        else (row (-1.0) 2.0, S.Le, Prng.uniform rng 5.0 20.0))
  in
  let rows l = Array.of_list (List.map (fun (r, _, _) -> r) l) in
  let cmps l = Array.of_list (List.map (fun (_, c, _) -> c) l) in
  let rhs l = Array.of_list (List.map (fun (_, _, b) -> b) l) in
  let sess =
    S.Session.create ~backend:`Revised ~obj ~rows:(rows base)
      ~cmps:(cmps base) ~rhs:(rhs base) ()
  in
  (match (S.Session.outcome sess).S.status with
  | S.Optimal -> ()
  | _ -> Alcotest.fail "base solve not optimal");
  let cold_pivots_base = S.Session.pivots sess in
  let cuts =
    List.init 4 (fun _ -> (row (-0.5) 1.5, S.Le, Prng.uniform rng 4.0 15.0))
  in
  List.iter (fun (r, c, b) -> S.Session.add_row sess r c b) cuts;
  let warm = S.Session.resolve sess in
  (match warm.S.status with
  | S.Optimal -> ()
  | _ -> Alcotest.fail "warm resolve not optimal");
  let warm_extra = S.Session.pivots sess - cold_pivots_base in
  let l = base @ cuts in
  let cold =
    S.solve ~backend:`Revised ~obj ~rows:(rows l) ~cmps:(cmps l) ~rhs:(rhs l)
      ()
  in
  (match cold.S.status with
  | S.Optimal -> ()
  | _ -> Alcotest.fail "cold solve not optimal");
  if not (close ~tol:1e-9 warm.S.objective cold.S.objective) then
    Alcotest.failf "warm %.12g vs cold %.12g" warm.S.objective cold.S.objective;
  if warm_extra >= cold.S.pivots then
    Alcotest.failf "warm repair spent %d pivots, cold solve only %d" warm_extra
      cold.S.pivots;
  if S.Session.refactorizations sess < 1 then
    Alcotest.fail "revised session never factorized its basis"

(* Deterministic end-to-end run of the Problem-level incremental API. *)
let test_problem_session () =
  let p = P.create () in
  let x = P.var p "x" and y = P.var p "y" in
  P.constr p [ (1.0, x) ] P.Le 4.0;
  P.constr p [ (2.0, y) ] P.Le 12.0;
  P.constr p [ (3.0, x); (2.0, y) ] P.Le 18.0;
  P.maximize p [ (3.0, x); (5.0, y) ];
  let s = P.session p in
  (match P.resolve s with
  | P.Optimal sol -> check_close "initial objective" 36.0 sol.P.objective
  | _ -> Alcotest.fail "initial solve not optimal");
  (* Cut off the optimum (2, 6): force x + y <= 6; new optimum 30 at
     (0, 6), where the cut and 2y <= 12 are both active. *)
  P.constr p [ (1.0, x); (1.0, y) ] P.Le 6.0;
  (match P.resolve s with
  | P.Optimal sol ->
    check_close "after cut 1" 30.0 sol.P.objective;
    check_close "row satisfied" 6.0 (sol.P.value x +. sol.P.value y)
  | _ -> Alcotest.fail "resolve after cut not optimal");
  (* Second round: squeeze y directly. Optimum x<=4 active: 12 + 10 = 22. *)
  P.constr p [ (1.0, y) ] P.Le 2.0;
  (match P.resolve s with
  | P.Optimal sol -> check_close "after cut 2" 22.0 sol.P.objective
  | _ -> Alcotest.fail "resolve after cut 2 not optimal");
  if P.session_pivots s <= 0 then Alcotest.fail "session spent no pivots"

let suite =
  [
    Alcotest.test_case "textbook max" `Quick test_textbook_max;
    Alcotest.test_case "min with >= rows" `Quick test_min_ge;
    Alcotest.test_case "equality rows" `Quick test_equality;
    Alcotest.test_case "infeasible detected" `Quick test_infeasible;
    Alcotest.test_case "unbounded detected" `Quick test_unbounded;
    Alcotest.test_case "free variable" `Quick test_free_var;
    Alcotest.test_case "variable bounds" `Quick test_bounds;
    Alcotest.test_case "degenerate (Beale)" `Quick test_degenerate;
    Alcotest.test_case "degenerate (Beale, revised)" `Quick
      test_degenerate_revised;
    Alcotest.test_case "LU ftran/btran vs dense oracle" `Quick test_lu_solves;
    Alcotest.test_case "LU reuse across dimensions" `Quick
      test_lu_reuse_growth;
    Alcotest.test_case "warm revised session beats cold" `Quick
      test_warm_fewer_pivots_revised;
    Alcotest.test_case "duplicate terms summed" `Quick test_duplicate_terms;
    Alcotest.test_case "zero objective / pure feasibility" `Quick test_zero_objective;
    Alcotest.test_case "transportation instance" `Quick test_transportation;
    Alcotest.test_case "incremental session (Problem API)" `Quick
      test_problem_session;
    QCheck_alcotest.to_alcotest feasibility_prop;
    QCheck_alcotest.to_alcotest duality_prop;
    QCheck_alcotest.to_alcotest backends_agree_prop;
    QCheck_alcotest.to_alcotest
      (warm_equals_cold_prop `Sparse "warm session = cold solve (tableau)");
    QCheck_alcotest.to_alcotest
      (warm_equals_cold_prop `Revised "warm session = cold solve (revised)");
  ]
