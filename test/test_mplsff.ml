(* Tests for the MPLS-ff forwarding plane: hashing, ILM/NHLFE construction,
   packet forwarding with label stacking, and Table-3 storage accounting. *)

module G = R3_net.Graph
module Routing = R3_net.Routing
module Traffic = R3_net.Traffic
module Topology = R3_net.Topology
module M = R3_mplsff

let random_flow rng =
  {
    R3_mplsff.Flow_hash.src_ip = R3_util.Prng.bits rng land 0xFFFFFFFF;
    dst_ip = R3_util.Prng.bits rng land 0xFFFFFFFF;
    src_port = R3_util.Prng.int rng 65536;
    dst_port = R3_util.Prng.int rng 65536;
  }

let test_hash_deterministic () =
  let rng = R3_util.Prng.create 1 in
  let flow = random_flow rng in
  let salt = M.Flow_hash.router_salt ~seed:9 ~router:3 in
  Alcotest.(check int) "same flow same hash" (M.Flow_hash.hash6 ~salt flow)
    (M.Flow_hash.hash6 ~salt flow);
  let salt2 = M.Flow_hash.router_salt ~seed:9 ~router:4 in
  (* Different routers generally hash differently; check over many flows
     that they are not identical everywhere. *)
  let rng = R3_util.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 100 do
    let f = random_flow rng in
    if M.Flow_hash.hash6 ~salt f <> M.Flow_hash.hash6 ~salt:salt2 f then differs := true
  done;
  Alcotest.(check bool) "router salt decorrelates" true !differs

let test_hash_range () =
  let rng = R3_util.Prng.create 3 in
  let salt = M.Flow_hash.router_salt ~seed:1 ~router:0 in
  for _ = 1 to 500 do
    let h = M.Flow_hash.hash6 ~salt (random_flow rng) in
    if h < 0 || h > 63 then Alcotest.failf "hash out of range: %d" h
  done

let test_pick_distribution () =
  let rng = R3_util.Prng.create 4 in
  let salt = M.Flow_hash.router_salt ~seed:5 ~router:2 in
  let weights = [| 0.25; 0.75 |] in
  let counts = [| 0; 0 |] in
  let n = 4000 in
  for _ = 1 to n do
    let i = M.Flow_hash.pick ~salt (random_flow rng) weights in
    counts.(i) <- counts.(i) + 1
  done;
  let frac = float_of_int counts.(1) /. float_of_int n in
  (* 6-bit hash quantizes to 1/64 steps; allow generous tolerance. *)
  Alcotest.(check bool)
    (Printf.sprintf "split ~0.75 (got %.3f)" frac)
    true
    (Float.abs (frac -. 0.75) < 0.06)

let abilene_plan () =
  let g = Topology.abilene () in
  let rng = R3_util.Prng.create 21 in
  let tm = Traffic.gravity rng g ~load_factor:0.15 () in
  let pairs, _ = Traffic.commodities tm in
  let base = R3_net.Ospf.routing g ~weights:(R3_net.Ospf.unit_weights g) ~pairs () in
  let cfg =
    { (R3_core.Offline.default_config ~f:1) with
      solve_method = R3_core.Offline.Constraint_gen }
  in
  match R3_core.Offline.compute cfg g tm (R3_core.Offline.Fixed base) with
  | Ok plan -> (g, plan)
  | Error m -> Alcotest.failf "plan failed: %s" m

let test_fib_construction () =
  let g, plan = abilene_plan () in
  let fib = M.Fib.of_protection g plan.R3_core.Offline.protection in
  let ilm, nhlfe = M.Fib.max_table_sizes fib in
  Alcotest.(check bool) "ILM bounded by links" true (ilm <= G.num_links g);
  Alcotest.(check bool) "has entries" true (ilm > 0 && nhlfe >= ilm);
  (* Ratios at every router sum to 1 per label. *)
  Array.iter
    (fun rf ->
      Hashtbl.iter
        (fun _ fwd ->
          let s = Array.fold_left (fun a n -> a +. n.M.Fib.ratio) 0.0 fwd.M.Fib.nhlfes in
          if Float.abs (s -. 1.0) > 1e-6 then
            Alcotest.failf "ratios sum to %g at router %d" s rf.M.Fib.router)
        rf.M.Fib.ilm)
    fib.M.Fib.fibs

let test_forwarding_no_failure () =
  let g, plan = abilene_plan () in
  let fib = M.Fib.of_protection g plan.R3_core.Offline.protection in
  let net = M.Forward.make g ~base:plan.R3_core.Offline.base ~fib () in
  let rng = R3_util.Prng.create 31 in
  let src = G.node_id g "Seattle" and dst = G.node_id g "Atlanta" in
  for _ = 1 to 50 do
    match M.Forward.forward net ~flow:(random_flow rng) ~src ~dst with
    | Ok trace ->
      Alcotest.(check bool) "delivered" true trace.M.Forward.delivered;
      Alcotest.(check int) "no labels used" 0 trace.M.Forward.max_stack_depth
    | Error m -> Alcotest.fail m
  done

let test_forwarding_with_failure_uses_labels () =
  let g, plan = abilene_plan () in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "KansasCity") (id "Indianapolis")) in
  let failed = G.fail_bidir g [ e ] in
  (* Routers have rescaled their local p (Theorem 3 lets them do so
     independently); forwarding uses updated ratios. *)
  let st = R3_core.Reconfig.of_plan plan in
  let st = R3_core.Reconfig.fail st (R3_core.Scenario.of_links g [ e ]) in
  let fib = M.Fib.of_protection g st.R3_core.Reconfig.protection in
  (* Base routing NOT updated at ingress: packets crossing the failed link
     are label-protected mid-path. *)
  let net = M.Forward.make g ~base:plan.R3_core.Offline.base ~fib ~failed () in
  let rng = R3_util.Prng.create 33 in
  let delivered = ref 0 and labeled = ref 0 and total = ref 0 in
  Array.iter
    (fun (a, b) ->
      for _ = 1 to 5 do
        incr total;
        match M.Forward.forward net ~flow:(random_flow rng) ~src:a ~dst:b with
        | Ok t ->
          incr delivered;
          if t.M.Forward.max_stack_depth > 0 then incr labeled;
          List.iter
            (fun l -> if failed.(l) then Alcotest.fail "traversed failed link")
            t.M.Forward.links
        | Error m -> Alcotest.failf "drop: %s" m
      done)
    plan.R3_core.Offline.pairs;
  Alcotest.(check int) "all packets delivered" !total !delivered;
  Alcotest.(check bool) "some packets were label-protected" true (!labeled > 0)

let test_split_frequencies_match_protection () =
  (* On the 4-parallel-link fixture with a known protection routing, the
     hash-based splitter's empirical frequencies converge to the NHLFE
     ratios. *)
  let g = Topology.parallel_links ~capacities:[ 1.0; 1.0; 1.0; 1.0 ] in
  let forward_links =
    List.filter (fun e -> G.src g e = 0) (List.init 8 (fun e -> e))
  in
  let e1 = List.hd forward_links in
  let pairs = [| (0, 1) |] in
  let base = Routing.create g ~pairs in
  Routing.set base (0) (e1) 1.0;
  let p = Routing.create g ~pairs:(Array.init 8 (fun e -> (G.src g e, G.dst g e))) in
  List.iteri
    (fun i e ->
      Routing.set p e1 e [| 0.0; 0.2; 0.3; 0.5 |].(i))
    forward_links;
  let failed = G.fail_links g [ e1 ] in
  let fib = M.Fib.of_protection g p in
  let net = M.Forward.make g ~base ~fib ~failed () in
  let rng = R3_util.Prng.create 35 in
  let freq = M.Forward.split_frequencies net ~rng ~count:6000 ~src:0 ~dst:1 in
  List.iteri
    (fun i e ->
      let expected = [| 0.0; 0.2; 0.3; 0.5 |].(i) in
      if expected > 0.0 then begin
        let got = freq.(e) in
        if Float.abs (got -. expected) > 0.08 then
          Alcotest.failf "link %d: expected %.2f got %.3f" e expected got
      end)
    forward_links

let test_storage_accounting () =
  let g, plan = abilene_plan () in
  let report = M.Storage.of_protection g plan.R3_core.Offline.protection in
  Alcotest.(check bool) "ILM <= 28" true (report.M.Storage.ilm_entries <= 28);
  Alcotest.(check bool) "FIB < 16 KB" true (report.M.Storage.fib_bytes < 16_384);
  (* RIB model: |E|^2 * 104 bytes = 784 * 104 < 83 KB, Table 3's bound. *)
  Alcotest.(check int) "RIB bytes" (28 * 28 * 104) report.M.Storage.rib_bytes;
  Alcotest.(check bool) "RIB < 83 KB" true (report.M.Storage.rib_bytes < 83 * 1024)

let test_notification_flooding () =
  let g = Topology.abilene () in
  let id n = G.node_id g n in
  let e = Option.get (G.find_link g (id "Denver") (id "KansasCity")) in
  let failed = G.fail_bidir g [ e ] in
  let times = M.Notify.arrival_times g ~failed ~link:e in
  let head = id "Denver" in
  Alcotest.(check (float 1e-9)) "head detects first"
    M.Notify.default_config.M.Notify.detection_ms times.(head);
  Array.iteri
    (fun v t ->
      if t < times.(head) -. 1e-9 then
        Alcotest.failf "router %d notified before detection" v;
      if t = infinity then Alcotest.failf "router %d never notified" v)
    times;
  let conv = M.Notify.convergence_time g ~failed ~link:e in
  Alcotest.(check bool) "convergence bounded" true (conv < 100.0)

let suite =
  [
    Alcotest.test_case "hash determinism and salts" `Quick test_hash_deterministic;
    Alcotest.test_case "hash range" `Quick test_hash_range;
    Alcotest.test_case "pick follows weights" `Quick test_pick_distribution;
    Alcotest.test_case "fib construction" `Quick test_fib_construction;
    Alcotest.test_case "forwarding without failures" `Quick test_forwarding_no_failure;
    Alcotest.test_case "forwarding protects via labels" `Quick test_forwarding_with_failure_uses_labels;
    Alcotest.test_case "hash splits match NHLFE ratios" `Quick test_split_frequencies_match_protection;
    Alcotest.test_case "storage accounting (Table 3)" `Quick test_storage_accounting;
    Alcotest.test_case "notification flooding" `Quick test_notification_flooding;
  ]
