let () =
  Alcotest.run "r3"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("metrics", Test_metrics.suite);
      ("lp", Test_lp.suite);
      ("net", Test_net.suite);
      ("substrate", Test_substrate.suite);
      ("core", Test_core.suite);
      ("plan_store", Test_plan_store.suite);
      ("extensions", Test_extensions.suite);
      ("mcf", Test_mcf.suite);
      ("te", Test_te.suite);
      ("baselines", Test_baselines.suite);
      ("mplsff", Test_mplsff.suite);
      ("sim", Test_sim.suite);
      ("sweep", Test_sweep.suite);
      ("online", Test_online.suite);
      ("check", Test_check.suite);
    ]
