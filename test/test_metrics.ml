(* Tests for the observability layer: R3_util.Metrics (sharded counters,
   gauges, histograms) and R3_util.Trace (nested spans, ring buffer). *)

module M = R3_util.Metrics
module T = R3_util.Trace
module Par = R3_util.Parallel
module J = R3_util.Json

let test_counter_basics () =
  M.reset ();
  let c = M.counter "test.counter.basics" in
  Alcotest.(check int) "starts at 0" 0 (M.counter_total c);
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "incr + add" 42 (M.counter_total c);
  Alcotest.(check bool) "interned: same handle" true
    (M.counter "test.counter.basics" == c);
  Alcotest.(check int) "lookup by name" 42
    (M.counter_value "test.counter.basics");
  Alcotest.(check int) "absent name reads 0" 0 (M.counter_value "no.such")

let test_counter_merge_order_independent () =
  (* The merged total must not depend on how work spreads over domains. *)
  let totals =
    List.map
      (fun d ->
        M.reset ();
        let c = M.counter "test.counter.merge" in
        ignore (Par.init ~domains:d 1000 (fun i -> M.add c (i mod 7)));
        M.counter_total c)
      [ 1; 2; 4 ]
  in
  match totals with
  | [ a; b; c ] ->
    Alcotest.(check int) "1 vs 2 domains" a b;
    Alcotest.(check int) "2 vs 4 domains" b c;
    Alcotest.(check int) "shards sum to total" a
      (Array.fold_left ( + ) 0 (M.counter_shards (M.counter "test.counter.merge")))
  | _ -> assert false

let test_gauge () =
  M.reset ();
  let g = M.gauge "test.gauge" in
  Alcotest.(check bool) "unset reads None" true (M.gauge_value g = None);
  M.set_gauge g 2.5;
  M.set_gauge g 7.25;
  Alcotest.(check bool) "last write wins" true (M.gauge_value g = Some 7.25)

let test_histogram () =
  M.reset ();
  let h = M.histogram ~bounds:[| 1.0; 10.0 |] "test.hist" in
  List.iter (M.observe h) [ 0.5; 5.0; 50.0; 2.0 ];
  M.observe h Float.nan;
  (* dropped *)
  let s = M.hist_snapshot h in
  Alcotest.(check int) "count (NaN dropped)" 4 s.M.hist_count;
  Alcotest.(check (float 1e-9)) "sum" 57.5 s.M.hist_sum;
  Alcotest.(check (float 1e-9)) "min" 0.5 s.M.hist_min;
  Alcotest.(check (float 1e-9)) "max" 50.0 s.M.hist_max;
  Alcotest.(check (array int)) "bucketing" [| 1; 2; 1 |] s.M.hist_counts

let test_disabled_records_nothing () =
  M.reset ();
  let c = M.counter "test.disabled" in
  M.set_enabled false;
  Fun.protect ~finally:(fun () -> M.set_enabled true) @@ fun () ->
  M.incr c;
  M.add c 10;
  Alcotest.(check int) "nothing recorded" 0 (M.counter_total c)

let test_metrics_json_shape () =
  M.reset ();
  M.incr (M.counter "test.json.counter");
  M.set_gauge (M.gauge "test.json.gauge") 1.5;
  M.observe (M.histogram "test.json.hist") 0.01;
  (match M.to_json () with
  | J.Obj fields ->
    List.iter
      (fun k ->
        Alcotest.(check bool) (k ^ " section present") true
          (List.mem_assoc k fields))
      [ "counters"; "per_domain"; "gauges"; "histograms" ]
  | _ -> Alcotest.fail "to_json must be an object");
  (* and the whole document must survive the JSON round-trip *)
  let s = J.to_string (M.to_json ()) in
  Alcotest.(check string) "round-trip stable" s (J.to_string (J.of_string s))

let test_span_nesting () =
  T.reset ();
  let v =
    T.with_span "outer" (fun () ->
        T.with_span "inner" ~attrs:[ ("k", T.Int 3) ] (fun () -> 42))
  in
  Alcotest.(check int) "value through spans" 42 v;
  match T.spans () with
  | [ inner; outer ] ->
    (* inner completes first, so it is recorded first *)
    Alcotest.(check string) "inner name" "inner" inner.T.name;
    Alcotest.(check int) "inner depth" 1 inner.T.depth;
    Alcotest.(check bool) "inner parent" true (inner.T.parent = Some "outer");
    Alcotest.(check bool) "inner attrs" true (inner.T.attrs = [ ("k", T.Int 3) ]);
    Alcotest.(check string) "outer name" "outer" outer.T.name;
    Alcotest.(check int) "outer depth" 0 outer.T.depth;
    Alcotest.(check bool) "outer parent" true (outer.T.parent = None);
    Alcotest.(check bool) "outer spans inner" true
      (outer.T.duration >= inner.T.duration)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_records_on_raise () =
  T.reset ();
  (try T.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  match T.spans () with
  | [ s ] -> Alcotest.(check string) "recorded despite raise" "raises" s.T.name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_add_attr () =
  T.reset ();
  T.with_span "attributed" (fun () -> T.add_attr "late" (T.Bool true));
  (match T.spans () with
  | [ s ] -> Alcotest.(check bool) "late attr kept" true (s.T.attrs = [ ("late", T.Bool true) ])
  | _ -> Alcotest.fail "expected 1 span");
  (* outside any span: must be a silent no-op *)
  T.add_attr "orphan" T.(Int 1)

let test_ring_wraparound () =
  T.set_capacity 4;
  Fun.protect ~finally:(fun () -> T.set_capacity 8192) @@ fun () ->
  for i = 1 to 10 do
    T.with_span (Printf.sprintf "s%d" i) Fun.id
  done;
  Alcotest.(check int) "recorded counts all" 10 (T.recorded ());
  Alcotest.(check int) "dropped = overflow" 6 (T.dropped ());
  Alcotest.(check (list string)) "newest 4 kept, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ]
    (List.map (fun s -> s.T.name) (T.spans ()))

let test_trace_disabled () =
  T.reset ();
  T.set_enabled false;
  Fun.protect ~finally:(fun () -> T.set_enabled true) @@ fun () ->
  let v = T.with_span "invisible" (fun () -> 7) in
  Alcotest.(check int) "f still runs" 7 v;
  Alcotest.(check int) "nothing recorded" 0 (T.recorded ())

let test_trace_summary () =
  T.reset ();
  T.with_span "a" Fun.id;
  T.with_span "a" Fun.id;
  T.with_span "b" Fun.id;
  let summary = T.summary () in
  Alcotest.(check int) "two names" 2 (List.length summary);
  let count_of n =
    List.find_map (fun (name, c, _) -> if name = n then Some c else None) summary
  in
  Alcotest.(check bool) "a counted twice" true (count_of "a" = Some 2);
  Alcotest.(check bool) "b counted once" true (count_of "b" = Some 1)

let test_spans_across_domains () =
  T.reset ();
  ignore
    (Par.init ~domains:4 8 (fun i -> T.with_span "worker.span" (fun () -> i)));
  Alcotest.(check int) "all workers recorded" 8 (T.recorded ());
  List.iter
    (fun s -> Alcotest.(check int) "top-level in its domain" 0 s.T.depth)
    (T.spans ())

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter merge order-independent" `Quick
      test_counter_merge_order_independent;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "metrics json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span records on raise" `Quick test_span_records_on_raise;
    Alcotest.test_case "add_attr" `Quick test_add_attr;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
    Alcotest.test_case "trace summary" `Quick test_trace_summary;
    Alcotest.test_case "spans across domains" `Quick test_spans_across_domains;
  ]
